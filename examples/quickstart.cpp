//===- examples/quickstart.cpp - The paper's expression-tree example ------===//
//
// The running example of the paper (Figs. 1-4): evaluate an expression
// tree, then modify a leaf and update the result with change propagation
// instead of re-evaluating.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "apps/ExpTrees.h"

#include <cstdio>

using namespace ceal;
using namespace ceal::apps;

namespace {

/// Mutator-side constructors, mirroring the paper's buildTree.
ExpNode *leaf(Runtime &RT, double Num) {
  auto *N = static_cast<ExpNode *>(RT.arena().allocate(sizeof(ExpNode)));
  *N = ExpNode{ExpNode::Leaf, ExpNode::Plus, Num, nullptr, nullptr};
  return N;
}

ExpNode *node(Runtime &RT, ExpNode::OpType Op, ExpNode *L, ExpNode *R) {
  auto *N = static_cast<ExpNode *>(RT.arena().allocate(sizeof(ExpNode)));
  *N = ExpNode{ExpNode::Node, Op, 0.0, RT.modref<ExpNode *>(L),
               RT.modref<ExpNode *>(R)};
  return N;
}

} // namespace

int main() {
  Runtime RT;

  // exp = "(3 +c 4) -b (1 -f 2)  +a  (5 -i 6)"  — the paper's Fig. 3.
  ExpNode *C = node(RT, ExpNode::Plus, leaf(RT, 3), leaf(RT, 4));
  ExpNode *F = node(RT, ExpNode::Minus, leaf(RT, 1), leaf(RT, 2));
  ExpNode *B = node(RT, ExpNode::Minus, C, F);
  ExpNode *LeafK = leaf(RT, 6);
  ExpNode *I = node(RT, ExpNode::Minus, leaf(RT, 5), LeafK);
  ExpNode *A = node(RT, ExpNode::Plus, B, I);

  Modref *Tree = RT.modref<ExpNode *>(A);
  Modref *Result = RT.modref();

  // run_core(eval, tree, result) — the initial run builds the trace.
  RT.runCore<&evalExpCore>(Tree, Result);
  std::printf("initial evaluation: %g\n", RT.derefT<double>(Result));

  // subtree = buildTree("6 +l 7"); modify(k, subtree); propagate().
  ExpNode *Subtree = node(RT, ExpNode::Plus, leaf(RT, 6), leaf(RT, 7));
  RT.modifyT<ExpNode *>(I->Right, Subtree);
  RT.propagate();
  std::printf("after substituting (6 + 7) for leaf k: %g\n",
              RT.derefT<double>(Result));

  // Change propagation re-executed only the path from the changed leaf
  // to the root, not the whole tree:
  std::printf("reads re-executed by propagation: %llu (tree has %zu "
              "traced reads)\n",
              static_cast<unsigned long long>(RT.stats().ReadsReexecuted),
              static_cast<size_t>(RT.stats().ReadsTraced));
  return 0;
}
