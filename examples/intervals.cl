// Interval accumulation over a modifiable list — a small CL source for
// the cealc / cl-lint command-line tools (the shipped samples live in
// src/cl/Samples.cpp; this one exercises the file-input path).
//
//   cealc examples/intervals.cl -O --stats
//   cl-lint examples/intervals.cl
//
// Cell layout: [0] lo, [1] hi, [2] tail modref. The core tracks the
// running sum of positive interval widths and the count of intervals
// kept, writing both into output modifiables.

func ivsum(modref* l, modref* wsum, modref* cnt) {
  var int z;
  e: z := 0; tail ivloop(l, z, z, wsum, cnt);
}

func ivloop(modref* l, int acc, int n, modref* wsum, modref* cnt) {
  var int* c;
  var int lo; var int hi; var int w; var int ok;
  var int acc2; var int n2;
  var modref* t;
  var int i0; var int i1; var int i2;
  rd: c := read l; goto br;
  br: if c then goto cons else goto nil;
  nil: write(wsum, acc); goto fin;
  fin: write(cnt, n); goto stop;
  stop: done;
  cons: i0 := 0; goto g1;
  g1: i1 := 1; goto g2;
  g2: i2 := 2; goto g3;
  g3: lo := c[i0]; goto g4;
  g4: hi := c[i1]; goto g5;
  g5: t := modref(c, i2); goto g6;
  g6: w := sub(hi, lo); goto g7;
  g7: ok := gt(w, i0); goto g8;
  g8: if ok then goto keep else goto skip;
  keep: acc2 := add(acc, w); goto bump;
  bump: n2 := add(n, i1); tail ivloop(t, acc2, n2, wsum, cnt);
  skip: n2 := add(n, i0); tail ivloop(t, acc, n2, wsum, cnt);
}
