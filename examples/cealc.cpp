//===- examples/cealc.cpp - The compiler driver ---------------------------===//
//
// A command-line front end mirroring the paper's cealc: parse CL, verify,
// normalize (Sec. 5), and translate to C (Sec. 6).
//
//   cealc [options] [file.cl]         reads stdin if no file is given
//     --emit=c|c-basic|cl|cl-normal   output kind (default: c, refined)
//     -O, --optimize                  run the analysis-driven pass
//                                     pipeline around NORMALIZE
//     --stats                         print pipeline statistics to stderr
//     --sample=NAME                   use a built-in sample program
//                                     (exptrees, listprims, quicksort,
//                                      mergesort, quickhull, testdriver)
//
//===----------------------------------------------------------------------===//

#include "cl/Parser.h"
#include "cl/Printer.h"
#include "cl/Samples.h"
#include "cl/Verifier.h"
#include "normalize/Normalize.h"
#include "normalize/Optimize.h"
#include "support/Timer.h"
#include "translate/EmitC.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace ceal;

int main(int argc, char **argv) {
  std::string Emit = "c";
  bool Stats = false;
  bool Optimize = false;
  std::string Sample;
  std::string Path;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A.rfind("--emit=", 0) == 0)
      Emit = A.substr(7);
    else if (A == "--stats")
      Stats = true;
    else if (A == "-O" || A == "--optimize")
      Optimize = true;
    else if (A.rfind("--sample=", 0) == 0)
      Sample = A.substr(9);
    else if (A == "--help" || A == "-h") {
      std::fprintf(stderr,
                   "usage: cealc [--emit=c|c-basic|cl|cl-normal] [-O] "
                   "[--stats] [--sample=NAME | file.cl]\n");
      return 0;
    } else
      Path = A;
  }

  std::string Source;
  if (!Sample.empty()) {
    for (const auto &[Name, Src] : cl::samples::allPrograms())
      if (Name == Sample)
        Source = Src;
    if (Source.empty()) {
      std::fprintf(stderr, "cealc: unknown sample '%s'\n", Sample.c_str());
      return 1;
    }
  } else if (!Path.empty()) {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "cealc: cannot open '%s'\n", Path.c_str());
      return 1;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Source = SS.str();
  } else {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    Source = SS.str();
  }

  Timer Total;
  auto Parsed = cl::parseProgram(Source);
  if (!Parsed) {
    std::fprintf(stderr, "cealc: %s\n", Parsed.Error.c_str());
    return 1;
  }
  auto Diags = cl::verifyProgram(*Parsed.Prog);
  if (!Diags.empty()) {
    for (const std::string &D : Diags)
      std::fprintf(stderr, "cealc: %s\n", D.c_str());
    return 1;
  }
  if (Emit == "cl") {
    std::fputs(cl::printProgram(*Parsed.Prog).c_str(), stdout);
    return 0;
  }

  normalize::NormalizeResult Norm;
  optimize::OptStats Pre, Post;
  if (Optimize) {
    optimize::PipelineResult R = optimize::runPassPipeline(*Parsed.Prog);
    Norm.Prog = std::move(R.Prog);
    Norm.Stats = R.NStats;
    Pre = R.Pre;
    Post = R.Post;
  } else {
    Norm = normalize::normalizeProgram(*Parsed.Prog);
  }
  if (Emit == "cl-normal") {
    std::fputs(cl::printProgram(Norm.Prog).c_str(), stdout);
  } else if (Emit == "c" || Emit == "c-basic") {
    auto Out = translate::emitC(Norm.Prog, Emit == "c"
                                               ? translate::Mode::Refined
                                               : translate::Mode::Basic);
    std::fputs(Out.Code.c_str(), stdout);
    if (Stats)
      std::fprintf(stderr, "cealc: %zu monomorphized closure_make "
                           "instances, %zu bytes of C\n",
                   Out.MonomorphInstances, Out.EmittedBytes);
  } else {
    std::fprintf(stderr, "cealc: unknown --emit kind '%s'\n", Emit.c_str());
    return 1;
  }
  if (Stats) {
    if (Optimize)
      std::fprintf(
          stderr,
          "cealc: opt: %zu redundant reads, %zu dead writes, %zu dead "
          "ops, %zu const args rematerialized, %zu params pruned; "
          "read-tail env words %zu -> %zu\n",
          Pre.RedundantReadsElim + Post.RedundantReadsElim,
          Pre.DeadWritesElim + Post.DeadWritesElim,
          Pre.DeadReadsElim + Pre.DeadAssignsElim + Pre.DeadAllocsElim +
              Post.DeadReadsElim + Post.DeadAssignsElim +
              Post.DeadAllocsElim,
          Post.ConstArgsRemat, Post.ParamsPruned, Post.ReadEnvWordsBefore,
          Post.ReadEnvWordsAfter);
    std::fprintf(
        stderr,
        "cealc: %zu blocks in, %zu blocks out, %zu fresh functions, "
        "max live %zu, %.2f ms\n",
        Norm.Stats.InputBlocks, Norm.Stats.OutputBlocks,
        Norm.Stats.FreshFunctions, Norm.Stats.MaxLive, Total.milliseconds());
  }
  return 0;
}
