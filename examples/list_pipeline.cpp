//===- examples/list_pipeline.cpp - Incremental dataflow over lists -------===//
//
// A three-stage pipeline — filter, then map, then a sum reduction — over
// a modifiable list, kept up to date under a stream of insertions and
// deletions. This is the kind of workload the paper's introduction
// motivates: data evolves by small modifications, and recomputing from
// scratch wastes nearly all of its work.
//
//===----------------------------------------------------------------------===//

#include "apps/ListApps.h"
#include "support/Random.h"
#include "support/Timer.h"

#include <cstdio>

using namespace ceal;
using namespace ceal::apps;

namespace {

// Keep even "transaction amounts", double them, and total the result.
bool keepEven(Word X, Word) { return (X & 1) == 0; }
Word doubleIt(Word X, Word) { return 2 * X; }
Word sumUp(Word A, Word B, Word) { return A + B; }

Word expectedTotal(const std::vector<Word> &Values) {
  Word Total = 0;
  for (Word V : Values)
    if (keepEven(V, 0))
      Total += doubleIt(V, 0);
  return Total;
}

} // namespace

int main() {
  Rng R(2026);
  constexpr size_t N = 50000;
  std::vector<Word> Amounts(N);
  for (Word &A : Amounts)
    A = R.below(10000);

  Runtime RT;
  ListHandle Input = buildList(RT, Amounts);
  Modref *Evens = RT.modref();
  Modref *Doubled = RT.modref();
  Modref *Total = RT.modref();

  Timer Initial;
  RT.runCore<&filterCore>(Input.Head, Evens, &keepEven, Word(0));
  RT.runCore<&mapCore>(Evens, Doubled, &doubleIt, Word(0));
  RT.runCore<&reduceCore>(Doubled, Total, &sumUp, Word(0), Word(0));
  std::printf("initial run over %zu elements: %.3fs, total = %llu\n", N,
              Initial.seconds(),
              static_cast<unsigned long long>(RT.deref(Total)));

  // A stream of 1000 edits: delete a random element, propagate, restore
  // it, propagate. Every propagation updates all three stages.
  Timer Updates;
  size_t Edits = 0;
  for (int I = 0; I < 500; ++I) {
    size_t Index = R.below(N);
    detachCell(RT, Input, Index);
    RT.propagate();
    reattachCell(RT, Input, Index);
    RT.propagate();
    Edits += 2;
  }
  double PerUpdate = Updates.seconds() / double(Edits);
  std::printf("%zu pipeline updates: %.4fs total, %.2e s each\n", Edits,
              Updates.seconds(), PerUpdate);
  std::printf("speedup over from-scratch: %.0fx\n",
              Initial.seconds() / PerUpdate);

  // Sanity: the incremental total matches a from-scratch recompute.
  Word Expected = expectedTotal(readList(RT, Input.Head));
  if (RT.deref(Total) != Expected) {
    std::printf("MISMATCH: %llu != %llu\n",
                static_cast<unsigned long long>(RT.deref(Total)),
                static_cast<unsigned long long>(Expected));
    return 1;
  }
  std::printf("incremental total verified against recomputation.\n");
  return 0;
}
