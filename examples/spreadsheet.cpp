//===- examples/spreadsheet.cpp - Writing your own core functions ---------===//
//
// A miniature spreadsheet: a grid of input cells, a computed sum per
// row, a grand total, and a max-of-row-sums cell. Each computed cell is
// a small hand-written core function in the compiled closure style the
// CEAL compiler emits (paper Sec. 6.2) — this example shows how to build
// new self-adjusting computations directly against the runtime API:
//
//  * core functions return `Closure *` and end by returning the result
//    of `readTail<...>` (a traced read whose body is the rest of the
//    function chain) or nullptr;
//  * results flow through destination modifiables;
//  * the mutator edits cells with `modify` and calls `propagate`.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"
#include "support/Random.h"

#include <cstdio>
#include <vector>

using namespace ceal;

namespace {

constexpr size_t Rows = 40;
constexpr size_t Cols = 26;

/// Sums Cells[0..Count) into Dst: read a cell, add, move right.
Closure *sumGot(Runtime &RT, Word V, Modref **Cells, Word Index, Word Count,
                Word Acc, Modref *Dst) {
  Acc += V;
  if (Index + 1 == Count) {
    RT.write(Dst, Acc);
    return nullptr;
  }
  return RT.readTail<&sumGot>(Cells[Index + 1], Cells, Index + 1, Count, Acc,
                              Dst);
}

Closure *sumRow(Runtime &RT, Modref **Cells, Word Count, Modref *Dst) {
  return RT.readTail<&sumGot>(Cells[0], Cells, Word(0), Count, Word(0), Dst);
}

/// Folds max over a column of modifiables the same way.
Closure *maxGot(Runtime &RT, Word V, Modref **Cells, Word Index, Word Count,
                Word Acc, Modref *Dst) {
  if (V > Acc)
    Acc = V;
  if (Index + 1 == Count) {
    RT.write(Dst, Acc);
    return nullptr;
  }
  return RT.readTail<&maxGot>(Cells[Index + 1], Cells, Index + 1, Count, Acc,
                              Dst);
}

Closure *maxOver(Runtime &RT, Modref **Cells, Word Count, Modref *Dst) {
  return RT.readTail<&maxGot>(Cells[0], Cells, Word(0), Count, Word(0), Dst);
}

} // namespace

int main() {
  Runtime RT;
  Rng R(7);

  // The grid: Rows x Cols input cells.
  std::vector<std::vector<Modref *>> Grid(Rows);
  for (auto &Row : Grid)
    for (size_t C = 0; C < Cols; ++C)
      Row.push_back(RT.modref<Word>(R.below(100)));

  // One computed sum per row, a grand total, and a max-of-rows cell.
  std::vector<Modref *> RowSums;
  for (size_t Ri = 0; Ri < Rows; ++Ri) {
    Modref *Sum = RT.modref();
    RT.runCore<&sumRow>(Grid[Ri].data(), Word(Cols), Sum);
    RowSums.push_back(Sum);
  }
  Modref *Total = RT.modref();
  RT.runCore<&sumRow>(RowSums.data(), Word(Rows), Total);
  Modref *MaxRow = RT.modref();
  RT.runCore<&maxOver>(RowSums.data(), Word(Rows), MaxRow);

  std::printf("spreadsheet %zux%zu: total=%llu, max row sum=%llu\n", Rows,
              Cols, (unsigned long long)RT.deref(Total),
              (unsigned long long)RT.deref(MaxRow));

  // Interactive-style edits: poke random cells and watch the dependent
  // cells update through change propagation.
  for (int Edit = 0; Edit < 5; ++Edit) {
    size_t Ri = R.below(Rows), Ci = R.below(Cols);
    Word NewVal = R.below(100000);
    RT.modify(Grid[Ri][Ci], NewVal);
    uint64_t Before = RT.stats().ReadsReexecuted;
    RT.propagate();
    std::printf("set %c%zu = %-6llu -> total=%-8llu max=%-8llu "
                "(%llu reads re-executed of %llu traced)\n",
                char('A' + Ci), Ri + 1, (unsigned long long)NewVal,
                (unsigned long long)RT.deref(Total),
                (unsigned long long)RT.deref(MaxRow),
                (unsigned long long)(RT.stats().ReadsReexecuted - Before),
                (unsigned long long)RT.stats().ReadsTraced);
  }

  // Verify against a full recompute.
  Word Expect = 0, ExpectMax = 0;
  for (size_t Ri = 0; Ri < Rows; ++Ri) {
    Word RowSum = 0;
    for (size_t Ci = 0; Ci < Cols; ++Ci)
      RowSum += RT.deref(Grid[Ri][Ci]);
    Expect += RowSum;
    if (RowSum > ExpectMax)
      ExpectMax = RowSum;
  }
  if (RT.deref(Total) != Expect || RT.deref(MaxRow) != ExpectMax) {
    std::printf("MISMATCH against recomputation!\n");
    return 1;
  }
  std::printf("verified against full recomputation.\n");
  return 0;
}
