//===- tests/OracleHarnessTest.cpp - Full-app propagation oracle ----------===//
//
// The acceptance suite for change propagation: every benchmark app runs
// through 50 random change sequences with the trace sanitizer at
// every-propagation level, and after each propagation the self-adjusting
// output must match a from-scratch conventional recomputation word for
// word. Failures report the sequence seed and a shrunk step list.
//
// The pressure suites re-run the list apps under the SaSML-style bounded
// heap: propagation must still match the oracle when simulated
// collections fire mid-propagation, and the out-of-memory path must leave
// the trace structurally sound.
//
//===----------------------------------------------------------------------===//

#include "baseline/SaSmlSim.h"
#include "tests/support/OracleModels.h"

#include <gtest/gtest.h>

#include <memory>

using namespace ceal;
using namespace ceal::harness;

namespace {

template <typename ModelT, typename... Args>
ModelFactory factory(Args... As) {
  return [=] { return std::make_unique<ModelT>(As...); };
}

} // namespace

//===----------------------------------------------------------------------===//
// All apps, audited at every propagation
//===----------------------------------------------------------------------===//

TEST(OracleHarness, ListPrimitives) {
  EXPECT_EQ(runOracleHarness(factory<ListModel>()), "");
}

TEST(OracleHarness, ExpTrees) {
  EXPECT_EQ(runOracleHarness(factory<ExpTreeModel>()), "");
}

TEST(OracleHarness, TreeContraction) {
  EXPECT_EQ(runOracleHarness(factory<TreeContractionModel>()), "");
}

TEST(OracleHarness, Quickhull) {
  EXPECT_EQ(runOracleHarness(factory<QuickhullModel>()), "");
}

TEST(OracleHarness, Diameter) {
  EXPECT_EQ(runOracleHarness(factory<DiameterModel>()), "");
}

TEST(OracleHarness, Distance) {
  EXPECT_EQ(runOracleHarness(factory<DistanceModel>()), "");
}

//===----------------------------------------------------------------------===//
// Construction fast path: legacy sweep and multi-group append coverage
//===----------------------------------------------------------------------===//

TEST(OracleHarnessFastPath, LegacyConstructionPathStillMatchesOracle) {
  // The kill switch must keep working: with the fast path disabled the
  // runtime uses the original eager-memo, density-balanced construction,
  // and every propagation still matches the conventional recomputation.
  HarnessOptions Opt;
  Opt.Sequences = 12;
  Opt.Config.DisableConstructionFastPath = true;
  EXPECT_EQ(runOracleHarness(factory<ListModel>(), Opt), "");
}

TEST(OracleHarnessFastPath, LargeListsExerciseMultiGroupAppend) {
  // Lists long enough that one construction spans many order-maintenance
  // groups (GroupTarget members each), so the append-mode fresh-group
  // path and the bulk memo build run for real before the churn starts —
  // the default small-list sweeps mostly stay inside the first group.
  HarnessOptions Opt;
  Opt.Sequences = 10;
  EXPECT_EQ(runOracleHarness(factory<ListModel>(200, 256), Opt), "");
}

//===----------------------------------------------------------------------===//
// Propagation under simulated-GC heap pressure (SaSML-style config)
//===----------------------------------------------------------------------===//

namespace {

/// The SaSML cost shape minus the per-node spin (which only slows the
/// test): closure traffic, fat nodes, and a bounded collected heap.
Runtime::Config pressureConfig(size_t HeapLimitBytes) {
  Runtime::Config C =
      baseline::sasmlConfig(HeapLimitBytes, AuditLevel::EveryPropagation);
  C.SimSpinPerNode = 0;
  return C;
}

} // namespace

TEST(OracleHarnessPressure, MatchesBaselineWhenGcRunsMidPropagation) {
  HarnessOptions Opt;
  Opt.Sequences = 10;
  // Big lists + fat nodes so allocation outruns the headroom and the
  // simulated collector scans during setup and propagation.
  Opt.Config = pressureConfig(6u << 20);
  Opt.SequenceCheck = [](Runtime &RT) -> std::string {
    if (RT.stats().GcScans == 0)
      return "expected the simulated GC to run (raise list size or lower "
             "HeapLimitBytes)";
    if (RT.outOfMemory())
      return "heap limit too tight: hit out-of-memory in the GC suite";
    return "";
  };
  EXPECT_EQ(runOracleHarness(factory<ListModel>(56, 64), Opt), "");
}

TEST(OracleHarnessPressure, OutOfMemoryKeepsTraceSoundAndOutputsRight) {
  HarnessOptions Opt;
  Opt.Sequences = 10;
  // A limit below the live trace: the runtime must report out-of-memory,
  // and the audit run after every propagation shows the overflow did not
  // corrupt the trace (outputs stay correct because the simulation keeps
  // serving allocations past the limit).
  Opt.Config = pressureConfig(256u << 10);
  Opt.SequenceCheck = [](Runtime &RT) -> std::string {
    if (!RT.outOfMemory())
      return "expected the bounded heap to overflow";
    return "";
  };
  EXPECT_EQ(runOracleHarness(factory<ListModel>(56, 64), Opt), "");
}
