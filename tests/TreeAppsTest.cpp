//===- tests/TreeAppsTest.cpp - exptrees and tcon correctness -------------===//

#include "apps/ExpTrees.h"
#include "apps/TreeContraction.h"
#include "support/Random.h"
#include "tests/support/OracleModels.h"

#include <gtest/gtest.h>

#include <memory>

using namespace ceal;
using namespace ceal::apps;

//===----------------------------------------------------------------------===//
// exptrees
//===----------------------------------------------------------------------===//

TEST(ExpTrees, InitialRunMatchesConventional) {
  Rng R(1);
  Runtime RT;
  ExpTree T = buildExpTree(RT, R, 256);
  Modref *Res = RT.modref();
  RT.runCore<&evalExpCore>(T.Root, Res);
  EXPECT_DOUBLE_EQ(RT.derefT<double>(Res), evalExpConventional(RT, T.Root));
}

TEST(ExpTrees, LeafUpdatesPropagate) {
  // Ported onto the oracle harness: random leaf replacements, audited
  // propagation, conventional re-evaluation after every step.
  harness::HarnessOptions Opt;
  Opt.Sequences = 5;
  Opt.Changes = 10;
  Opt.BaseSeed = 2;
  EXPECT_EQ(harness::runOracleHarness(
                [] { return std::make_unique<harness::ExpTreeModel>(); },
                Opt),
            "");
}

TEST(ExpTrees, UpdateCostIsPathLength) {
  Rng R(3);
  Runtime RT;
  ExpTree T = buildExpTree(RT, R, 4096); // Balanced: depth 12.
  Modref *Res = RT.modref();
  RT.runCore<&evalExpCore>(T.Root, Res);
  uint64_t Before = RT.stats().ReadsReexecuted;
  replaceLeaf(RT, T, 2048, 123.0);
  RT.propagate();
  uint64_t Reexecs = RT.stats().ReadsReexecuted - Before;
  // One read per node on the leaf-to-root path (plus the leaf's parent
  // read): about depth + 1, not thousands.
  EXPECT_LE(Reexecs, 16u);
  EXPECT_GE(Reexecs, 2u);
}

TEST(ExpTrees, SingleLeafTree) {
  Rng R(4);
  Runtime RT;
  ExpTree T = buildExpTree(RT, R, 1);
  Modref *Res = RT.modref();
  RT.runCore<&evalExpCore>(T.Root, Res);
  EXPECT_DOUBLE_EQ(RT.derefT<double>(Res), T.Leaves[0]->Num);
  replaceLeaf(RT, T, 0, 7.5);
  RT.propagate();
  EXPECT_DOUBLE_EQ(RT.derefT<double>(Res), 7.5);
}

//===----------------------------------------------------------------------===//
// Tree contraction
//===----------------------------------------------------------------------===//

namespace {

Word runContraction(Runtime &RT, TcForest &F, Modref *Dst) {
  RT.runCore<&treeContractCore>(F.Live.Head, F.Table0, Word(F.N), Dst);
  return RT.deref(Dst);
}

} // namespace

TEST(TreeContraction, SingleNode) {
  Rng R(10);
  Runtime RT;
  TcForest F = buildRandomTree(RT, R, 1);
  Modref *Dst = RT.modref();
  Word Got = runContraction(RT, F, Dst);
  EXPECT_EQ(Got, tcContractConventional(F.Adj));
  EXPECT_EQ(Got & 0xffffffffu, 1u) << "one component";
}

TEST(TreeContraction, SmallChainAndStar) {
  Runtime RT;
  Rng R(11);
  // A chain 0 <- 1 <- 2 <- ... built by hand via the builder's forest
  // plus edge surgery is awkward; random trees of small sizes cover both
  // shapes statistically instead.
  for (size_t N : {2u, 3u, 5u, 9u, 17u}) {
    Runtime Local;
    TcForest F = buildRandomTree(Local, R, N);
    Modref *Dst = Local.modref();
    EXPECT_EQ(runContraction(Local, F, Dst), tcContractConventional(F.Adj))
        << "N=" << N;
  }
}

TEST(TreeContraction, RandomTreesMatchConventional) {
  Rng R(12);
  for (uint64_t Seed = 0; Seed < 6; ++Seed) {
    Runtime RT;
    Rng TreeR(100 + Seed);
    TcForest F = buildRandomTree(RT, TreeR, 200);
    Modref *Dst = RT.modref();
    EXPECT_EQ(runContraction(RT, F, Dst), tcContractConventional(F.Adj))
        << "seed " << Seed;
  }
}

TEST(TreeContraction, EdgeDeleteInsertSweep) {
  // Ported onto the oracle harness: random edge deletions/reinsertions
  // from a pool, audited propagation, conventional contraction after
  // every step.
  harness::HarnessOptions Opt;
  Opt.Sequences = 5;
  Opt.Changes = 12;
  Opt.BaseSeed = 13;
  EXPECT_EQ(
      harness::runOracleHarness(
          [] { return std::make_unique<harness::TreeContractionModel>(); },
          Opt),
      "");
}

TEST(TreeContraction, ComponentCountTracksEdgeDeletes) {
  // The harness checks values; this keeps the structural assertion the
  // old sweep made: deleting one edge splits the forest in two, and
  // reinserting it rejoins it.
  Rng R(13);
  Runtime RT;
  TcForest F = buildRandomTree(RT, R, 150);
  Modref *Dst = RT.modref();
  EXPECT_EQ(runContraction(RT, F, Dst), tcContractConventional(F.Adj));

  auto Edges = F.edges();
  for (int Edit = 0; Edit < 5; ++Edit) {
    auto [P, C] = Edges[R.below(Edges.size())];
    tcDeleteEdge(RT, F, P, C);
    RT.propagate();
    ASSERT_EQ(RT.deref(Dst) & 0xffffffffu, 2u)
        << "after deleting (" << P << "," << C << ")";
    tcInsertEdge(RT, F, P, C);
    RT.propagate();
    ASSERT_EQ(RT.deref(Dst) & 0xffffffffu, 1u)
        << "after reinserting (" << P << "," << C << ")";
  }
}

TEST(TreeContraction, UpdateIsSublinear) {
  Rng R(14);
  Runtime RT;
  TcForest F = buildRandomTree(RT, R, 4096);
  Modref *Dst = RT.modref();
  runContraction(RT, F, Dst);
  uint64_t FromScratchReads = RT.stats().ReadsTraced;

  auto Edges = F.edges();
  uint64_t Before = RT.stats().ReadsTraced + RT.stats().ReadsReexecuted;
  int Updates = 0;
  for (int I = 0; I < 10; ++I, Updates += 2) {
    auto [P, C] = Edges[R.below(Edges.size())];
    tcDeleteEdge(RT, F, P, C);
    RT.propagate();
    tcInsertEdge(RT, F, P, C);
    RT.propagate();
  }
  uint64_t Work = RT.stats().ReadsTraced + RT.stats().ReadsReexecuted - Before;
  // An edit touches O(log n) rounds with O(1) nodes each (in
  // expectation); it must be far below one from-scratch run.
  EXPECT_LT(Work / Updates, FromScratchReads / 20);
}
