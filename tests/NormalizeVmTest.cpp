//===- tests/NormalizeVmTest.cpp - NORMALIZE + VM end-to-end --------------===//
//
// The compiler pipeline's correctness contract, tested in layers:
//
//  1. Structure: NORMALIZE output is in normal form, verifies, and obeys
//     the size bounds of Theorem 3; it is idempotent.
//  2. Semantics: for every sample program (and for random programs), the
//     conventional interpretation of the normalized program equals that
//     of the original, and the self-adjusting VM's from-scratch run
//     equals both.
//  3. Self-adjustment: after mutator modifications, propagate yields the
//     same observables as a conventional from-scratch run on the
//     modified input — the paper's change-propagation guarantee.
//
//===----------------------------------------------------------------------===//

#include "cl/Builder.h"
#include "cl/Parser.h"
#include "cl/Printer.h"
#include "cl/Samples.h"
#include "cl/Verifier.h"
#include "interp/Vm.h"
#include "normalize/Normalize.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace ceal;
using namespace ceal::cl;
using namespace ceal::interp;
using namespace ceal::normalize;

namespace {

Program parseOrDie(const std::string &Src) {
  auto R = parseProgram(Src);
  EXPECT_TRUE(R) << R.Error;
  return std::move(*R.Prog);
}

//===----------------------------------------------------------------------===//
// Input builders (mutator-side structures for both executors)
//===----------------------------------------------------------------------===//

/// A modifiable list in the VM's heap. Cell layout: [0] head, [1] tail.
struct VmList {
  Modref *Head = nullptr;
  std::vector<Word *> Cells;
  std::vector<Modref *> Tails; ///< Tails[i] holds cell i+1 (or 0).

  Modref *tailRefBefore(size_t I) const { return I == 0 ? Head : Tails[I - 1]; }
};

VmList buildVmList(Vm &M, const std::vector<int64_t> &Vals) {
  VmList L;
  L.Head = M.metaModref();
  Modref *Cur = L.Head;
  for (int64_t V : Vals) {
    auto *Blk = static_cast<Word *>(M.metaAlloc(16));
    Modref *Tail = M.metaModref();
    Blk[0] = toWord(V);
    Blk[1] = toWord(Tail);
    M.metaWrite(Cur, toWord(Blk));
    L.Cells.push_back(Blk);
    L.Tails.push_back(Tail);
    Cur = Tail;
  }
  return L;
}

std::vector<int64_t> readVmList(Vm &M, Modref *Out) {
  std::vector<int64_t> Result;
  Word W = M.metaRead(Out);
  while (W) {
    Word *Blk = fromWord<Word *>(W);
    Result.push_back(fromWord<int64_t>(Blk[0]));
    W = M.metaRead(fromWord<Modref *>(Blk[1]));
  }
  return Result;
}

/// The same list in the conventional interpreter's heap (cells are plain
/// one-word "modifiables").
Word *buildConvList(ConvInterp &CI, const std::vector<int64_t> &Vals) {
  Word *Head = CI.newCell(0);
  Word *Cur = Head;
  for (int64_t V : Vals) {
    auto *Blk = static_cast<Word *>(CI.alloc(16));
    Word *Tail = CI.newCell(0);
    Blk[0] = toWord(V);
    Blk[1] = toWord(Tail);
    *Cur = toWord(Blk);
    Cur = Tail;
  }
  return Head;
}

std::vector<int64_t> readConvList(Word *Out) {
  std::vector<int64_t> Result;
  Word W = *Out;
  while (W) {
    Word *Blk = fromWord<Word *>(W);
    Result.push_back(fromWord<int64_t>(Blk[0]));
    W = *fromWord<Word *>(Blk[1]);
  }
  return Result;
}

/// Runs one of the list cores conventionally and returns the output list.
std::vector<int64_t> convListRun(const Program &P, const std::string &Entry,
                                 const std::vector<int64_t> &In) {
  ConvInterp CI(P);
  Word *Head = buildConvList(CI, In);
  Word *Out = CI.newCell(0);
  CI.run(Entry, {toWord(Head), toWord(Out)});
  return readConvList(Out);
}

} // namespace

//===----------------------------------------------------------------------===//
// Structural properties of NORMALIZE
//===----------------------------------------------------------------------===//

TEST(Normalize, SamplesReachNormalForm) {
  for (const auto &[Name, Source] : samples::allPrograms()) {
    Program P = parseOrDie(Source);
    NormalizeResult R = normalizeProgram(P);
    EXPECT_TRUE(isNormalForm(R.Prog)) << Name;
    EXPECT_TRUE(verifyProgram(R.Prog).empty()) << Name;
    // Theorem 3: block count grows by at most one synthetic entry per
    // function; fresh functions number at most the block count.
    EXPECT_LE(R.Stats.OutputBlocks,
              R.Stats.InputBlocks + P.Funcs.size())
        << Name;
    EXPECT_LE(R.Stats.FreshFunctions, R.Stats.InputBlocks) << Name;
    // Theorem 3 size bound: O(m + n * ML(P)) words, with a concrete
    // constant that the proof's accounting supports.
    size_t Bound = R.Stats.InputWords +
                   (R.Stats.InputBlocks + P.Funcs.size() + 1) *
                       (2 * R.Stats.MaxLive + 8);
    EXPECT_LE(R.Stats.OutputWords, Bound) << Name;
  }
}

TEST(Normalize, Idempotent) {
  for (const auto &[Name, Source] : samples::allPrograms()) {
    Program P = parseOrDie(Source);
    NormalizeResult Once = normalizeProgram(P);
    NormalizeResult Twice = normalizeProgram(Once.Prog);
    EXPECT_EQ(Twice.Stats.FreshFunctions, 0u)
        << Name << ": normal-form programs need no fresh functions";
    EXPECT_EQ(Twice.Stats.OutputBlocks, Once.Stats.OutputBlocks) << Name;
  }
}

TEST(Normalize, PaperExampleStructure) {
  // For the expression evaluator, normalization creates one fresh
  // function per read entry (the paper's read_r, read_a, read_b of
  // Fig. 5).
  Program P = parseOrDie(samples::ExpTrees);
  NormalizeResult R = normalizeProgram(P);
  EXPECT_EQ(R.Stats.FreshFunctions, 3u);
  ASSERT_EQ(R.Prog.Funcs.size(), 4u);
  // Every read block now tails (Fig. 5's highlighted lines).
  for (const Function &F : R.Prog.Funcs)
    for (const BasicBlock &B : F.Blocks)
      if (B.K == BasicBlock::Cmd && B.C.K == Command::Read) {
        EXPECT_EQ(B.J.K, Jump::Tail);
      }
}

//===----------------------------------------------------------------------===//
// Conventional semantics preservation
//===----------------------------------------------------------------------===//

TEST(Normalize, PreservesConventionalSemanticsOnLists) {
  Rng R(7);
  std::vector<int64_t> In;
  for (int I = 0; I < 64; ++I)
    In.push_back(static_cast<int64_t>(R.below(1000)));

  Program Orig = parseOrDie(samples::ListPrims);
  Program Norm = normalizeProgram(Orig).Prog;
  for (const char *Entry : {"map", "filter", "reverse"}) {
    auto A = convListRun(Orig, Entry, In);
    auto B = convListRun(Norm, Entry, In);
    EXPECT_EQ(A, B) << Entry;
  }
  // sum writes a scalar, not a list; compare it directly too.
  {
    ConvInterp CA(Orig), CB(Norm);
    Word *HA = buildConvList(CA, In), *HB = buildConvList(CB, In);
    Word *OA = CA.newCell(0), *OB = CB.newCell(0);
    CA.run("sum", {toWord(HA), toWord(OA)});
    CB.run("sum", {toWord(HB), toWord(OB)});
    EXPECT_EQ(*OA, *OB);
    int64_t Expected = 0;
    for (int64_t V : In)
      Expected += V;
    EXPECT_EQ(fromWord<int64_t>(*OA), Expected);
  }
}

TEST(Normalize, PreservesConventionalSemanticsOnSorts) {
  Rng R(8);
  std::vector<int64_t> In;
  for (int I = 0; I < 80; ++I)
    In.push_back(static_cast<int64_t>(R.below(500)));
  std::vector<int64_t> Expected = In;
  std::sort(Expected.begin(), Expected.end());

  for (const char *Which : {"quicksort", "mergesort"}) {
    Program Orig = parseOrDie(Which == std::string("quicksort")
                                  ? samples::Quicksort
                                  : samples::Mergesort);
    Program Norm = normalizeProgram(Orig).Prog;
    const char *Entry = Which == std::string("quicksort") ? "qsort" : "msort";
    EXPECT_EQ(convListRun(Orig, Entry, In), Expected) << Which;
    EXPECT_EQ(convListRun(Norm, Entry, In), Expected) << Which;
  }
}

//===----------------------------------------------------------------------===//
// The self-adjusting VM: from-scratch runs and change propagation
//===----------------------------------------------------------------------===//

TEST(Vm, MapFromScratchAndPropagate) {
  Program Norm = normalizeProgram(parseOrDie(samples::ListPrims)).Prog;
  Rng R(9);
  std::vector<int64_t> In;
  for (int I = 0; I < 120; ++I)
    In.push_back(static_cast<int64_t>(R.below(100000)));

  Runtime RT;
  Vm M(RT, Norm);
  VmList L = buildVmList(M, In);
  Modref *Out = M.metaModref();
  M.runCore("map", {toWord(L.Head), toWord(Out)});
  EXPECT_EQ(readVmList(M, Out), convListRun(Norm, "map", In));

  // Delete + reinsert random cells; compare against conventional runs on
  // the edited input each time.
  for (int Edit = 0; Edit < 25; ++Edit) {
    size_t I = R.below(L.Cells.size());
    Word After = M.metaRead(L.Tails[I]);
    M.metaWrite(L.tailRefBefore(I), After); // Delete cell I.
    M.propagate();
    std::vector<int64_t> Cur;
    {
      Word W = M.metaRead(L.Head);
      while (W) {
        Word *Blk = fromWord<Word *>(W);
        Cur.push_back(fromWord<int64_t>(Blk[0]));
        W = M.metaRead(fromWord<Modref *>(Blk[1]));
      }
    }
    ASSERT_EQ(readVmList(M, Out), convListRun(Norm, "map", Cur))
        << "edit " << Edit;
    M.metaWrite(L.tailRefBefore(I), toWord(L.Cells[I])); // Reinsert.
    M.propagate();
    ASSERT_EQ(readVmList(M, Out), convListRun(Norm, "map", In))
        << "edit " << Edit;
  }
}

TEST(Vm, MapUpdatesAreIncremental) {
  Program Norm = normalizeProgram(parseOrDie(samples::ListPrims)).Prog;
  std::vector<int64_t> In;
  for (int I = 0; I < 2000; ++I)
    In.push_back(I * 13);
  Runtime RT;
  Vm M(RT, Norm);
  VmList L = buildVmList(M, In);
  Modref *Out = M.metaModref();
  M.runCore("map", {toWord(L.Head), toWord(Out)});

  uint64_t Before = RT.stats().ReadsTraced + RT.stats().ReadsReexecuted;
  for (size_t I = 300; I < 320; ++I) {
    Word After = M.metaRead(L.Tails[I]);
    M.metaWrite(L.tailRefBefore(I), After);
    M.propagate();
    M.metaWrite(L.tailRefBefore(I), toWord(L.Cells[I]));
    M.propagate();
  }
  uint64_t Work = RT.stats().ReadsTraced + RT.stats().ReadsReexecuted - Before;
  EXPECT_LT(Work, 600u) << "compiled CL map must splice, not recompute";
  EXPECT_GE(RT.stats().MemoReadHits, 20u);
}

TEST(Vm, FilterReverseSumPropagate) {
  Program Norm = normalizeProgram(parseOrDie(samples::ListPrims)).Prog;
  Rng R(10);
  std::vector<int64_t> In;
  for (int I = 0; I < 60; ++I)
    In.push_back(static_cast<int64_t>(R.below(3000)));

  for (const char *Entry : {"filter", "reverse", "sum"}) {
    Runtime RT;
    Vm M(RT, Norm);
    VmList L = buildVmList(M, In);
    Modref *Out = M.metaModref();
    M.runCore(Entry, {toWord(L.Head), toWord(Out)});

    for (int Edit = 0; Edit < 12; ++Edit) {
      size_t I = R.below(L.Cells.size());
      Word After = M.metaRead(L.Tails[I]);
      M.metaWrite(L.tailRefBefore(I), After);
      M.propagate();
      std::vector<int64_t> Cur;
      Word W = M.metaRead(L.Head);
      while (W) {
        Word *Blk = fromWord<Word *>(W);
        Cur.push_back(fromWord<int64_t>(Blk[0]));
        W = M.metaRead(fromWord<Modref *>(Blk[1]));
      }
      if (Entry == std::string("sum")) {
        int64_t Expected = 0;
        for (int64_t V : Cur)
          Expected += V;
        ASSERT_EQ(fromWord<int64_t>(M.metaRead(Out)), Expected)
            << Entry << " edit " << Edit;
      } else {
        ASSERT_EQ(readVmList(M, Out), convListRun(Norm, Entry, Cur))
            << Entry << " edit " << Edit;
      }
      M.metaWrite(L.tailRefBefore(I), toWord(L.Cells[I]));
      M.propagate();
    }
  }
}

TEST(Vm, SortsPropagate) {
  Rng R(11);
  std::vector<int64_t> In;
  for (int I = 0; I < 48; ++I)
    In.push_back(static_cast<int64_t>(R.below(2000)));

  struct Case {
    const char *Source;
    const char *Entry;
  };
  for (const Case &C : {Case{samples::Quicksort, "qsort"},
                        Case{samples::Mergesort, "msort"}}) {
    Program Norm = normalizeProgram(parseOrDie(C.Source)).Prog;
    Runtime RT;
    Vm M(RT, Norm);
    VmList L = buildVmList(M, In);
    Modref *Out = M.metaModref();
    M.runCore(C.Entry, {toWord(L.Head), toWord(Out)});
    std::vector<int64_t> Expected = In;
    std::sort(Expected.begin(), Expected.end());
    ASSERT_EQ(readVmList(M, Out), Expected) << C.Entry;

    for (int Edit = 0; Edit < 10; ++Edit) {
      size_t I = R.below(L.Cells.size());
      Word After = M.metaRead(L.Tails[I]);
      M.metaWrite(L.tailRefBefore(I), After);
      M.propagate();
      std::vector<int64_t> Smaller;
      for (size_t J = 0; J < In.size(); ++J)
        if (J != I)
          Smaller.push_back(In[J]);
      // Careful: deleting cell I unlinks exactly one element.
      std::sort(Smaller.begin(), Smaller.end());
      ASSERT_EQ(readVmList(M, Out), Smaller) << C.Entry << " edit " << Edit;
      M.metaWrite(L.tailRefBefore(I), toWord(L.Cells[I]));
      M.propagate();
      ASSERT_EQ(readVmList(M, Out), Expected) << C.Entry << " edit " << Edit;
    }
  }
}

TEST(Vm, ExpTreesPropagate) {
  Program Norm = normalizeProgram(parseOrDie(samples::ExpTrees)).Prog;
  Runtime RT;
  Vm M(RT, Norm);

  // Build the paper's tree: ((3+4)-(1-2))+(5-6), expecting 7.
  auto MakeLeaf = [&](int64_t V) {
    auto *N = static_cast<Word *>(M.metaAlloc(32));
    N[0] = 1;
    N[1] = toWord(V);
    return N;
  };
  auto MakeNode = [&](int64_t Op, Word *L, Word *R) {
    auto *N = static_cast<Word *>(M.metaAlloc(32));
    Modref *LM = M.metaModref(), *RM = M.metaModref();
    M.metaWrite(LM, toWord(L));
    M.metaWrite(RM, toWord(R));
    N[0] = 0;
    N[1] = toWord(Op);
    N[2] = toWord(LM);
    N[3] = toWord(RM);
    return N;
  };
  Word *D = MakeNode(0, MakeLeaf(3), MakeLeaf(4));
  Word *F = MakeNode(1, MakeLeaf(1), MakeLeaf(2));
  Word *B = MakeNode(1, D, F);
  Word *I = MakeNode(1, MakeLeaf(5), MakeLeaf(6));
  Word *A = MakeNode(0, B, I);
  Modref *Root = M.metaModref();
  M.metaWrite(Root, toWord(A));
  Modref *Res = M.metaModref();
  M.runCore("eval", {toWord(Root), toWord(Res)});
  EXPECT_EQ(fromWord<int64_t>(M.metaRead(Res)), 7);

  // The paper's update: leaf 6 becomes (6+7); the result becomes 0.
  Word *Sub = MakeNode(0, MakeLeaf(6), MakeLeaf(7));
  M.metaWrite(fromWord<Modref *>(I[3]), toWord(Sub));
  M.propagate();
  EXPECT_EQ(fromWord<int64_t>(M.metaRead(Res)), 0);
}

TEST(Vm, QuickhullMatchesConventional) {
  Program Orig = parseOrDie(samples::Quickhull);
  Program Norm = normalizeProgram(Orig).Prog;
  Rng R(12);

  // Integer points; read hulls back as coordinate sequences.
  std::vector<std::pair<int64_t, int64_t>> Pts;
  for (int I = 0; I < 60; ++I)
    Pts.push_back({static_cast<int64_t>(R.below(1000)),
                   static_cast<int64_t>(R.below(1000))});

  // Conventional run.
  ConvInterp CI(Norm);
  Word *CHead = CI.newCell(0);
  {
    Word *Cur = CHead;
    for (auto [X, Y] : Pts) {
      auto *P = static_cast<Word *>(CI.alloc(16));
      P[0] = toWord(X);
      P[1] = toWord(Y);
      auto *Blk = static_cast<Word *>(CI.alloc(16));
      Word *Tail = CI.newCell(0);
      Blk[0] = toWord(P);
      Blk[1] = toWord(Tail);
      *Cur = toWord(Blk);
      Cur = Tail;
    }
  }
  Word *COut = CI.newCell(0);
  CI.run("qh", {toWord(CHead), toWord(COut)});
  std::vector<std::pair<int64_t, int64_t>> ConvHull;
  for (Word W = *COut; W;) {
    Word *Blk = fromWord<Word *>(W);
    Word *P = fromWord<Word *>(Blk[0]);
    ConvHull.push_back(
        {fromWord<int64_t>(P[0]), fromWord<int64_t>(P[1])});
    W = *fromWord<Word *>(Blk[1]);
  }
  ASSERT_GE(ConvHull.size(), 3u);

  // Self-adjusting run.
  Runtime RT;
  Vm M(RT, Norm);
  Modref *Head = M.metaModref();
  std::vector<Modref *> Tails;
  {
    Modref *Cur = Head;
    for (auto [X, Y] : Pts) {
      auto *P = static_cast<Word *>(M.metaAlloc(16));
      P[0] = toWord(X);
      P[1] = toWord(Y);
      auto *Blk = static_cast<Word *>(M.metaAlloc(16));
      Modref *Tail = M.metaModref();
      Blk[0] = toWord(P);
      Blk[1] = toWord(Tail);
      M.metaWrite(Cur, toWord(Blk));
      Tails.push_back(Tail);
      Cur = Tail;
    }
  }
  Modref *Out = M.metaModref();
  M.runCore("qh", {toWord(Head), toWord(Out)});
  auto ReadHull = [&] {
    std::vector<std::pair<int64_t, int64_t>> Hull;
    for (Word W = M.metaRead(Out); W;) {
      Word *Blk = fromWord<Word *>(W);
      Word *P = fromWord<Word *>(Blk[0]);
      Hull.push_back({fromWord<int64_t>(P[0]), fromWord<int64_t>(P[1])});
      W = M.metaRead(fromWord<Modref *>(Blk[1]));
    }
    return Hull;
  };
  EXPECT_EQ(ReadHull(), ConvHull);

  // Cumulatively delete several points (including the min-x candidate at
  // index 0); compare against a conventional run on the remaining set
  // each time. Indices are non-adjacent so each edit point stays linked.
  std::set<size_t> Deleted;
  for (size_t Del : {size_t(0), size_t(7), size_t(23), size_t(41)}) {
    Deleted.insert(Del);
    Word After = M.metaRead(Tails[Del]);
    Modref *Before = Del == 0 ? Head : Tails[Del - 1];
    M.metaWrite(Before, After);
    M.propagate();

    ConvInterp CJ(Norm);
    Word *H2 = CJ.newCell(0);
    Word *Cur = H2;
    for (size_t J = 0; J < Pts.size(); ++J) {
      if (Deleted.count(J))
        continue;
      auto *P = static_cast<Word *>(CJ.alloc(16));
      P[0] = toWord(Pts[J].first);
      P[1] = toWord(Pts[J].second);
      auto *Blk = static_cast<Word *>(CJ.alloc(16));
      Word *Tail = CJ.newCell(0);
      Blk[0] = toWord(P);
      Blk[1] = toWord(Tail);
      *Cur = toWord(Blk);
      Cur = Tail;
    }
    Word *O2 = CJ.newCell(0);
    CJ.run("qh", {toWord(H2), toWord(O2)});
    std::vector<std::pair<int64_t, int64_t>> Hull2;
    for (Word W = *O2; W;) {
      Word *Blk = fromWord<Word *>(W);
      Word *P = fromWord<Word *>(Blk[0]);
      Hull2.push_back({fromWord<int64_t>(P[0]), fromWord<int64_t>(P[1])});
      W = *fromWord<Word *>(Blk[1]);
    }
    ASSERT_EQ(ReadHull(), Hull2) << "after deleting point " << Del;
  }
}

//===----------------------------------------------------------------------===//
// Random-program property test
//===----------------------------------------------------------------------===//

namespace {

/// Generates random terminating CL programs: a DAG of functions (tails
/// and calls only target higher function indices), DAG control flow
/// inside each function (gotos only target higher block ids), scalar
/// arithmetic, and reads/writes over four shared modifiables.
Program randomProgram(Rng &R) {
  ProgramBuilder PB;
  unsigned NumFuncs = 2 + static_cast<unsigned>(R.below(3));
  std::vector<FuncBuilder> Fbs;
  for (unsigned I = 0; I < NumFuncs; ++I)
    Fbs.push_back(PB.beginFunc("f" + std::to_string(I)));

  for (unsigned FI = 0; FI < NumFuncs; ++FI) {
    FuncBuilder &FB = Fbs[FI];
    std::vector<VarId> Ints, Mods;
    Ints.push_back(FB.param("a", Type::intTy()));
    Ints.push_back(FB.param("b", Type::intTy()));
    for (int I = 0; I < 4; ++I)
      Mods.push_back(FB.param("m" + std::to_string(I),
                              Type::ptrTo(Type::modrefTy())));
    for (int I = 0; I < 3; ++I)
      Ints.push_back(FB.local("t" + std::to_string(I), Type::intTy()));

    unsigned NumBlocks = 3 + static_cast<unsigned>(R.below(8));
    std::vector<BlockId> Blocks;
    for (unsigned B = 0; B < NumBlocks; ++B)
      Blocks.push_back(FB.block());

    auto RandInt = [&] { return Ints[R.below(Ints.size())]; };
    auto RandMod = [&] { return Mods[R.below(Mods.size())]; };
    auto ArgsFor = [&]() {
      // Callee signature: (int, int, modref*, modref*, modref*, modref*).
      return std::vector<VarId>{RandInt(), RandInt(), RandMod(), RandMod(),
                                RandMod(), RandMod()};
    };
    auto RandomJump = [&](unsigned B) -> Jump {
      bool CanGoto = B + 1 < NumBlocks;
      bool CanTail = FI + 1 < NumFuncs;
      if (CanTail && (!CanGoto || R.below(100) < 25)) {
        FuncId Target =
            FI + 1 + static_cast<FuncId>(R.below(NumFuncs - FI - 1));
        return Jump::tailCall(Target, ArgsFor());
      }
      if (CanGoto) {
        BlockId Target =
            B + 1 + static_cast<BlockId>(R.below(NumBlocks - B - 1));
        return Jump::gotoBlock(Target);
      }
      return Jump(); // Patched to done below (unreachable here).
    };

    for (unsigned B = 0; B < NumBlocks; ++B) {
      bool IsLast = B + 1 == NumBlocks;
      bool CanJump = !IsLast || FI + 1 < NumFuncs;
      if (IsLast && !CanJump) {
        FB.setDone(Blocks[B]);
        continue;
      }
      uint64_t Kind = R.below(100);
      if (IsLast && Kind >= 25) {
        FB.setDone(Blocks[B]);
        continue;
      }
      if (Kind < 12 && !IsLast) {
        FB.setCond(Blocks[B], RandInt(), RandomJump(B), RandomJump(B));
        continue;
      }
      Command C;
      uint64_t CK = R.below(100);
      if (CK < 25) {
        C = FuncBuilder::assign(
            RandInt(), Expr::makeConst(static_cast<int64_t>(R.below(64))));
      } else if (CK < 45) {
        OpKind Ops[] = {OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Lt,
                        OpKind::Eq, OpKind::Div, OpKind::Mod};
        OpKind Op = Ops[R.below(7)];
        C = FuncBuilder::assign(RandInt(),
                                Expr::makePrim(Op, {RandInt(), RandInt()}));
      } else if (CK < 65) {
        C = FuncBuilder::write(RandMod(), RandInt());
      } else if (CK < 85) {
        C = FuncBuilder::read(RandInt(), RandMod());
      } else if (FI + 1 < NumFuncs) {
        FuncId Target =
            FI + 1 + static_cast<FuncId>(R.below(NumFuncs - FI - 1));
        C = FuncBuilder::call(Target, ArgsFor());
      } else {
        C = FuncBuilder::nop();
      }
      FB.setCmd(Blocks[B], std::move(C), RandomJump(B));
    }
  }
  return PB.take();
}

} // namespace

TEST(Vm, RandomProgramsPreserveSemanticsAndPropagate) {
  int Ran = 0;
  for (uint64_t Seed = 1; Seed <= 120; ++Seed) {
    Rng R(Seed * 7919);
    Program P = randomProgram(R);
    ASSERT_TRUE(verifyProgram(P).empty()) << "seed " << Seed;
    Program Norm = normalizeProgram(P).Prog;
    ASSERT_TRUE(isNormalForm(Norm)) << "seed " << Seed;

    auto RunConv = [&](const Program &Prog,
                       const std::vector<int64_t> &Init) {
      ConvInterp CI(Prog);
      std::vector<Word *> Cells;
      for (int64_t V : Init)
        Cells.push_back(CI.newCell(toWord(V)));
      CI.run("f0", {toWord(int64_t(3)), toWord(int64_t(5)),
                    toWord(Cells[0]), toWord(Cells[1]), toWord(Cells[2]),
                    toWord(Cells[3])});
      std::vector<int64_t> Final;
      for (Word *C : Cells)
        Final.push_back(fromWord<int64_t>(*C));
      return Final;
    };

    std::vector<int64_t> Init = {int64_t(R.below(50)), int64_t(R.below(50)),
                                 int64_t(R.below(50)), int64_t(R.below(50))};
    std::vector<int64_t> OrigOut = RunConv(P, Init);
    std::vector<int64_t> NormOut = RunConv(Norm, Init);
    ASSERT_EQ(OrigOut, NormOut)
        << "normalization changed semantics, seed " << Seed;

    // Self-adjusting run + three rounds of input modification.
    Runtime RT;
    Vm M(RT, Norm);
    std::vector<Modref *> Ms;
    for (int64_t V : Init) {
      Modref *Mr = M.metaModref();
      M.metaWrite(Mr, toWord(V));
      Ms.push_back(Mr);
    }
    M.runCore("f0", {toWord(int64_t(3)), toWord(int64_t(5)), toWord(Ms[0]),
                     toWord(Ms[1]), toWord(Ms[2]), toWord(Ms[3])});
    auto VmOut = [&] {
      std::vector<int64_t> Final;
      for (Modref *Mr : Ms)
        Final.push_back(fromWord<int64_t>(M.metaRead(Mr)));
      return Final;
    };
    ASSERT_EQ(VmOut(), OrigOut) << "VM initial run differs, seed " << Seed;

    std::vector<int64_t> Cur = Init;
    for (int Round = 0; Round < 3; ++Round) {
      size_t Which = R.below(4);
      Cur[Which] = static_cast<int64_t>(R.below(50));
      // Careful: the conventional oracle's observable is the *final*
      // value; modifying an input that the program overwrites first has
      // no effect, which the equality cut may exploit.
      M.metaWrite(Ms[Which], toWord(Cur[Which]));
      M.propagate();
      ASSERT_EQ(VmOut(), RunConv(Norm, Cur))
          << "propagate diverged, seed " << Seed << " round " << Round;
    }
    ++Ran;
  }
  EXPECT_EQ(Ran, 120);
}

//===----------------------------------------------------------------------===//
// The rounds-based CL reduction (listreduce sample)
//===----------------------------------------------------------------------===//

TEST(Vm, ListReduceSumsAndUpdatesIncrementally) {
  Program Norm = normalizeProgram(parseOrDie(samples::ListReduce)).Prog;
  Rng R(21);
  std::vector<int64_t> In;
  for (int I = 0; I < 1500; ++I)
    In.push_back(static_cast<int64_t>(R.below(100000)));

  Runtime RT;
  Vm M(RT, Norm);
  VmList L = buildVmList(M, In);
  Modref *Out = M.metaModref();
  M.runCore("lrsum", {toWord(L.Head), toWord(Out)});
  int64_t Expected = 0;
  for (int64_t V : In)
    Expected += V;
  EXPECT_EQ(fromWord<int64_t>(M.metaRead(Out)), Expected);

  // Edits stay consistent and touch only O(log n) of the trace.
  uint64_t Before = RT.stats().ReadsTraced + RT.stats().ReadsReexecuted;
  int Edits = 0;
  for (int Round = 0; Round < 20; ++Round, Edits += 2) {
    size_t I = R.below(In.size());
    Word After = M.metaRead(L.Tails[I]);
    M.metaWrite(L.tailRefBefore(I), After);
    M.propagate();
    ASSERT_EQ(fromWord<int64_t>(M.metaRead(Out)), Expected - In[I])
        << "round " << Round;
    M.metaWrite(L.tailRefBefore(I), toWord(L.Cells[I]));
    M.propagate();
    ASSERT_EQ(fromWord<int64_t>(M.metaRead(Out)), Expected)
        << "round " << Round;
  }
  uint64_t Work = RT.stats().ReadsTraced + RT.stats().ReadsReexecuted - Before;
  EXPECT_LT(Work / Edits, 500u) << "rounds-based reduce must be incremental";
}
