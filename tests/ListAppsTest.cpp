//===- tests/ListAppsTest.cpp - List benchmark correctness ---------------===//
//
// Each self-adjusting list primitive is checked three ways:
//  1. initial run matches the conventional implementation,
//  2. every random edit + propagate matches a from-scratch conventional
//     recomputation of the edited input (the paper's correctness
//     guarantee for change propagation),
//  3. updates are *incremental*: the work counters stay far below
//     input size for single-element edits where the paper promises it.
//
//===----------------------------------------------------------------------===//

#include "apps/ListApps.h"
#include "apps/ListConv.h"
#include "support/Random.h"
#include "tests/support/OracleModels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>

using namespace ceal;
using namespace ceal::apps;

namespace {

Word mapPaper(Word X, Word) { return X / 3 + X / 7 + X / 9; }
bool filterPaper(Word X, Word) { return (mapPaper(X, 0) & 1) == 0; }
Word combineMin(Word A, Word B, Word) { return A < B ? A : B; }
Word combineSum(Word A, Word B, Word) { return A + B; }
int cmpWord(Word A, Word B) { return A < B ? -1 : (A > B ? 1 : 0); }
int cmpStr(Word A, Word B) {
  return std::strcmp(reinterpret_cast<const char *>(A),
                     reinterpret_cast<const char *>(B));
}

std::vector<Word> randomWords(Rng &R, size_t N, Word Bound = 1000000) {
  std::vector<Word> V(N);
  for (Word &W : V)
    W = R.below(Bound);
  return V;
}

/// Oracle versions computed with the conventional implementations.
std::vector<Word> oracleSorted(std::vector<Word> V) {
  std::sort(V.begin(), V.end());
  return V;
}

} // namespace

//===----------------------------------------------------------------------===//
// Initial runs match the conventional implementations.
//===----------------------------------------------------------------------===//

TEST(ListApps, MapMatchesConventional) {
  Rng R(1);
  std::vector<Word> In = randomWords(R, 300);
  Runtime RT;
  ListHandle L = buildList(RT, In);
  Modref *Dst = RT.modref();
  RT.runCore<&mapCore>(L.Head, Dst, &mapPaper, Word(0));

  Arena A;
  conv::PCell *CIn = conv::buildList(A, In);
  EXPECT_EQ(readList(RT, Dst),
            conv::toVector(conv::mapList(A, CIn, &mapPaper, 0)));
}

TEST(ListApps, FilterMatchesConventional) {
  Rng R(2);
  std::vector<Word> In = randomWords(R, 300);
  Runtime RT;
  ListHandle L = buildList(RT, In);
  Modref *Dst = RT.modref();
  RT.runCore<&filterCore>(L.Head, Dst, &filterPaper, Word(0));

  Arena A;
  conv::PCell *CIn = conv::buildList(A, In);
  EXPECT_EQ(readList(RT, Dst),
            conv::toVector(conv::filterList(A, CIn, &filterPaper, 0)));
}

TEST(ListApps, ReverseMatchesConventional) {
  Rng R(3);
  std::vector<Word> In = randomWords(R, 257);
  Runtime RT;
  ListHandle L = buildList(RT, In);
  Modref *Dst = RT.modref();
  RT.runCore<&reverseCore>(L.Head, Dst);

  std::vector<Word> Expected(In.rbegin(), In.rend());
  EXPECT_EQ(readList(RT, Dst), Expected);
}

TEST(ListApps, ReduceMinAndSum) {
  Rng R(4);
  std::vector<Word> In = randomWords(R, 513);
  Runtime RT;
  ListHandle L = buildList(RT, In);
  Modref *MinDst = RT.modref();
  Modref *SumDst = RT.modref();
  RT.runCore<&reduceCore>(L.Head, MinDst, &combineMin, Word(0),
                          Word(UINT64_MAX));
  RT.runCore<&reduceCore>(L.Head, SumDst, &combineSum, Word(0), Word(0));
  EXPECT_EQ(RT.deref(MinDst), *std::min_element(In.begin(), In.end()));
  Word Sum = 0;
  for (Word V : In)
    Sum += V;
  EXPECT_EQ(RT.deref(SumDst), Sum);
}

TEST(ListApps, ReduceEmptyAndSingleton) {
  Runtime RT;
  ListHandle Empty = buildList(RT, {});
  Modref *D1 = RT.modref();
  RT.runCore<&reduceCore>(Empty.Head, D1, &combineSum, Word(0), Word(99));
  EXPECT_EQ(RT.deref(D1), 99u) << "empty reduce yields the identity";

  ListHandle One = buildList(RT, {42});
  Modref *D2 = RT.modref();
  RT.runCore<&reduceCore>(One.Head, D2, &combineSum, Word(0), Word(0));
  EXPECT_EQ(RT.deref(D2), 42u);
}

TEST(ListApps, QuicksortSortsRandomWords) {
  Rng R(5);
  std::vector<Word> In = randomWords(R, 400);
  Runtime RT;
  ListHandle L = buildList(RT, In);
  Modref *Dst = RT.modref();
  RT.runCore<&quicksortCore>(L.Head, Dst, &cmpWord);
  EXPECT_EQ(readList(RT, Dst), oracleSorted(In));
}

TEST(ListApps, MergesortSortsRandomWords) {
  Rng R(6);
  std::vector<Word> In = randomWords(R, 400);
  Runtime RT;
  ListHandle L = buildList(RT, In);
  Modref *Dst = RT.modref();
  RT.runCore<&mergesortCore>(L.Head, Dst, &cmpWord);
  EXPECT_EQ(readList(RT, Dst), oracleSorted(In));
}

TEST(ListApps, SortsHandleDuplicatesAndTinyLists) {
  for (const std::vector<Word> &In :
       {std::vector<Word>{}, std::vector<Word>{1}, std::vector<Word>{2, 1},
        std::vector<Word>{5, 5, 5, 5}, std::vector<Word>{3, 1, 3, 1, 3}}) {
    Runtime RT;
    ListHandle L = buildList(RT, In);
    Modref *DQ = RT.modref();
    Modref *DM = RT.modref();
    RT.runCore<&quicksortCore>(L.Head, DQ, &cmpWord);
    RT.runCore<&mergesortCore>(L.Head, DM, &cmpWord);
    EXPECT_EQ(readList(RT, DQ), oracleSorted(In));
    EXPECT_EQ(readList(RT, DM), oracleSorted(In));
  }
}

TEST(ListApps, QuicksortSortsStrings) {
  // The paper sorts lists of random 32-character strings.
  Rng R(7);
  std::vector<std::string> Strs;
  std::vector<Word> In;
  for (int I = 0; I < 200; ++I) {
    std::string S;
    for (int J = 0; J < 32; ++J)
      S.push_back('a' + static_cast<char>(R.below(26)));
    Strs.push_back(std::move(S));
  }
  for (const std::string &S : Strs)
    In.push_back(reinterpret_cast<Word>(S.c_str()));
  Runtime RT;
  ListHandle L = buildList(RT, In);
  Modref *Dst = RT.modref();
  RT.runCore<&quicksortCore>(L.Head, Dst, &cmpStr);

  std::vector<std::string> Expected = Strs;
  std::sort(Expected.begin(), Expected.end());
  std::vector<Word> Got = readList(RT, Dst);
  ASSERT_EQ(Got.size(), Expected.size());
  for (size_t I = 0; I < Got.size(); ++I)
    EXPECT_EQ(reinterpret_cast<const char *>(Got[I]), Expected[I]);
}

//===----------------------------------------------------------------------===//
// Edit sweeps, ported onto the shared oracle harness: each sequence runs
// all seven primitives under random LIFO detach/reattach edits with the
// trace sanitizer at every-propagation level, comparing word-for-word
// against the conventional oracles. A failure prints the sequence seed
// and a shrunk change list for replay.
//===----------------------------------------------------------------------===//

TEST(ListEditSweep, SmallListsStayConsistent) {
  harness::HarnessOptions Opt;
  Opt.Sequences = 6;
  Opt.Changes = 12;
  Opt.BaseSeed = 101;
  EXPECT_EQ(harness::runOracleHarness(
                [] { return std::make_unique<harness::ListModel>(0, 64); },
                Opt),
            "");
}

TEST(ListEditSweep, MediumListsStayConsistent) {
  harness::HarnessOptions Opt;
  Opt.Sequences = 3;
  Opt.Changes = 10;
  Opt.BaseSeed = 303;
  EXPECT_EQ(harness::runOracleHarness(
                [] { return std::make_unique<harness::ListModel>(100, 200); },
                Opt),
            "");
}

//===----------------------------------------------------------------------===//
// Incrementality: single-element edits must not re-run the whole core.
//===----------------------------------------------------------------------===//

TEST(ListApps, MapUpdateIsConstantWork) {
  Rng R(8);
  std::vector<Word> In = randomWords(R, 4000);
  Runtime RT;
  ListHandle L = buildList(RT, In);
  Modref *Dst = RT.modref();
  RT.runCore<&mapCore>(L.Head, Dst, &mapPaper, Word(0));

  uint64_t Before = RT.stats().ReadsTraced + RT.stats().ReadsReexecuted;
  for (size_t I = 500; I < 520; ++I) {
    detachCell(RT, L, I);
    RT.propagate();
    reattachCell(RT, L, I);
    RT.propagate();
  }
  uint64_t Work = RT.stats().ReadsTraced + RT.stats().ReadsReexecuted - Before;
  // 40 propagations; each should cost O(1) reads, far below list size.
  EXPECT_LT(Work, 400u);
}

TEST(ListApps, ReduceUpdateIsLogarithmicWork) {
  Rng R(9);
  std::vector<Word> In = randomWords(R, 8192);
  Runtime RT;
  ListHandle L = buildList(RT, In);
  Modref *Dst = RT.modref();
  RT.runCore<&reduceCore>(L.Head, Dst, &combineSum, Word(0), Word(0));
  uint64_t Before = RT.stats().ReadsTraced + RT.stats().ReadsReexecuted;
  int Updates = 0;
  for (size_t I = 100; I < 8100; I += 400, Updates += 2) {
    detachCell(RT, L, I);
    RT.propagate();
    reattachCell(RT, L, I);
    RT.propagate();
  }
  uint64_t Work = RT.stats().ReadsTraced + RT.stats().ReadsReexecuted - Before;
  // Each update should touch ~O(log n) runs, not the whole list. Allow a
  // generous constant.
  EXPECT_LT(Work / Updates, 60 * 13u);
}

TEST(ListApps, QuicksortUpdateIsPolylogWork) {
  Rng R(10);
  std::vector<Word> In = randomWords(R, 4096);
  Runtime RT;
  ListHandle L = buildList(RT, In);
  Modref *Dst = RT.modref();
  RT.runCore<&quicksortCore>(L.Head, Dst, &cmpWord);
  uint64_t Before = RT.stats().ReadsTraced + RT.stats().ReadsReexecuted;
  int Updates = 0;
  for (size_t I = 64; I < 4000; I += 256, Updates += 2) {
    detachCell(RT, L, I);
    RT.propagate();
    reattachCell(RT, L, I);
    RT.propagate();
  }
  uint64_t Work = RT.stats().ReadsTraced + RT.stats().ReadsReexecuted - Before;
  // O(log^2 n) expected per update; n=4096 -> log^2 = 144. Allow slack.
  EXPECT_LT(Work / Updates, 3000u) << "quicksort update not incremental";
}
