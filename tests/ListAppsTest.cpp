//===- tests/ListAppsTest.cpp - List benchmark correctness ---------------===//
//
// Each self-adjusting list primitive is checked three ways:
//  1. initial run matches the conventional implementation,
//  2. every random edit + propagate matches a from-scratch conventional
//     recomputation of the edited input (the paper's correctness
//     guarantee for change propagation),
//  3. updates are *incremental*: the work counters stay far below
//     input size for single-element edits where the paper promises it.
//
//===----------------------------------------------------------------------===//

#include "apps/ListApps.h"
#include "apps/ListConv.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

using namespace ceal;
using namespace ceal::apps;

namespace {

Word mapPaper(Word X, Word) { return X / 3 + X / 7 + X / 9; }
bool filterPaper(Word X, Word) { return (mapPaper(X, 0) & 1) == 0; }
Word combineMin(Word A, Word B, Word) { return A < B ? A : B; }
Word combineSum(Word A, Word B, Word) { return A + B; }
int cmpWord(Word A, Word B) { return A < B ? -1 : (A > B ? 1 : 0); }
int cmpStr(Word A, Word B) {
  return std::strcmp(reinterpret_cast<const char *>(A),
                     reinterpret_cast<const char *>(B));
}

std::vector<Word> randomWords(Rng &R, size_t N, Word Bound = 1000000) {
  std::vector<Word> V(N);
  for (Word &W : V)
    W = R.below(Bound);
  return V;
}

/// Oracle versions computed with the conventional implementations.
std::vector<Word> oracleSorted(std::vector<Word> V) {
  std::sort(V.begin(), V.end());
  return V;
}

struct EditSweepParam {
  uint64_t Seed;
  size_t N;
  int Edits;
};

class ListEditSweep : public ::testing::TestWithParam<EditSweepParam> {};

} // namespace

//===----------------------------------------------------------------------===//
// Initial runs match the conventional implementations.
//===----------------------------------------------------------------------===//

TEST(ListApps, MapMatchesConventional) {
  Rng R(1);
  std::vector<Word> In = randomWords(R, 300);
  Runtime RT;
  ListHandle L = buildList(RT, In);
  Modref *Dst = RT.modref();
  RT.runCore<&mapCore>(L.Head, Dst, &mapPaper, Word(0));

  Arena A;
  conv::PCell *CIn = conv::buildList(A, In);
  EXPECT_EQ(readList(RT, Dst),
            conv::toVector(conv::mapList(A, CIn, &mapPaper, 0)));
}

TEST(ListApps, FilterMatchesConventional) {
  Rng R(2);
  std::vector<Word> In = randomWords(R, 300);
  Runtime RT;
  ListHandle L = buildList(RT, In);
  Modref *Dst = RT.modref();
  RT.runCore<&filterCore>(L.Head, Dst, &filterPaper, Word(0));

  Arena A;
  conv::PCell *CIn = conv::buildList(A, In);
  EXPECT_EQ(readList(RT, Dst),
            conv::toVector(conv::filterList(A, CIn, &filterPaper, 0)));
}

TEST(ListApps, ReverseMatchesConventional) {
  Rng R(3);
  std::vector<Word> In = randomWords(R, 257);
  Runtime RT;
  ListHandle L = buildList(RT, In);
  Modref *Dst = RT.modref();
  RT.runCore<&reverseCore>(L.Head, Dst);

  std::vector<Word> Expected(In.rbegin(), In.rend());
  EXPECT_EQ(readList(RT, Dst), Expected);
}

TEST(ListApps, ReduceMinAndSum) {
  Rng R(4);
  std::vector<Word> In = randomWords(R, 513);
  Runtime RT;
  ListHandle L = buildList(RT, In);
  Modref *MinDst = RT.modref();
  Modref *SumDst = RT.modref();
  RT.runCore<&reduceCore>(L.Head, MinDst, &combineMin, Word(0),
                          Word(UINT64_MAX));
  RT.runCore<&reduceCore>(L.Head, SumDst, &combineSum, Word(0), Word(0));
  EXPECT_EQ(RT.deref(MinDst), *std::min_element(In.begin(), In.end()));
  Word Sum = 0;
  for (Word V : In)
    Sum += V;
  EXPECT_EQ(RT.deref(SumDst), Sum);
}

TEST(ListApps, ReduceEmptyAndSingleton) {
  Runtime RT;
  ListHandle Empty = buildList(RT, {});
  Modref *D1 = RT.modref();
  RT.runCore<&reduceCore>(Empty.Head, D1, &combineSum, Word(0), Word(99));
  EXPECT_EQ(RT.deref(D1), 99u) << "empty reduce yields the identity";

  ListHandle One = buildList(RT, {42});
  Modref *D2 = RT.modref();
  RT.runCore<&reduceCore>(One.Head, D2, &combineSum, Word(0), Word(0));
  EXPECT_EQ(RT.deref(D2), 42u);
}

TEST(ListApps, QuicksortSortsRandomWords) {
  Rng R(5);
  std::vector<Word> In = randomWords(R, 400);
  Runtime RT;
  ListHandle L = buildList(RT, In);
  Modref *Dst = RT.modref();
  RT.runCore<&quicksortCore>(L.Head, Dst, &cmpWord);
  EXPECT_EQ(readList(RT, Dst), oracleSorted(In));
}

TEST(ListApps, MergesortSortsRandomWords) {
  Rng R(6);
  std::vector<Word> In = randomWords(R, 400);
  Runtime RT;
  ListHandle L = buildList(RT, In);
  Modref *Dst = RT.modref();
  RT.runCore<&mergesortCore>(L.Head, Dst, &cmpWord);
  EXPECT_EQ(readList(RT, Dst), oracleSorted(In));
}

TEST(ListApps, SortsHandleDuplicatesAndTinyLists) {
  for (const std::vector<Word> &In :
       {std::vector<Word>{}, std::vector<Word>{1}, std::vector<Word>{2, 1},
        std::vector<Word>{5, 5, 5, 5}, std::vector<Word>{3, 1, 3, 1, 3}}) {
    Runtime RT;
    ListHandle L = buildList(RT, In);
    Modref *DQ = RT.modref();
    Modref *DM = RT.modref();
    RT.runCore<&quicksortCore>(L.Head, DQ, &cmpWord);
    RT.runCore<&mergesortCore>(L.Head, DM, &cmpWord);
    EXPECT_EQ(readList(RT, DQ), oracleSorted(In));
    EXPECT_EQ(readList(RT, DM), oracleSorted(In));
  }
}

TEST(ListApps, QuicksortSortsStrings) {
  // The paper sorts lists of random 32-character strings.
  Rng R(7);
  std::vector<std::string> Strs;
  std::vector<Word> In;
  for (int I = 0; I < 200; ++I) {
    std::string S;
    for (int J = 0; J < 32; ++J)
      S.push_back('a' + static_cast<char>(R.below(26)));
    Strs.push_back(std::move(S));
  }
  for (const std::string &S : Strs)
    In.push_back(reinterpret_cast<Word>(S.c_str()));
  Runtime RT;
  ListHandle L = buildList(RT, In);
  Modref *Dst = RT.modref();
  RT.runCore<&quicksortCore>(L.Head, Dst, &cmpStr);

  std::vector<std::string> Expected = Strs;
  std::sort(Expected.begin(), Expected.end());
  std::vector<Word> Got = readList(RT, Dst);
  ASSERT_EQ(Got.size(), Expected.size());
  for (size_t I = 0; I < Got.size(); ++I)
    EXPECT_EQ(reinterpret_cast<const char *>(Got[I]), Expected[I]);
}

//===----------------------------------------------------------------------===//
// Edit sweeps: delete + propagate + reinsert + propagate on every
// primitive, checked against conventional recomputation.
//===----------------------------------------------------------------------===//

TEST_P(ListEditSweep, AllPrimitivesStayConsistent) {
  const EditSweepParam P = GetParam();
  Rng R(P.Seed);
  std::vector<Word> In = randomWords(R, P.N);

  Runtime RT;
  ListHandle L = buildList(RT, In);
  Modref *DMap = RT.modref(), *DFil = RT.modref(), *DRev = RT.modref(),
         *DMin = RT.modref(), *DSum = RT.modref(), *DQs = RT.modref(),
         *DMs = RT.modref();
  RT.runCore<&mapCore>(L.Head, DMap, &mapPaper, Word(0));
  RT.runCore<&filterCore>(L.Head, DFil, &filterPaper, Word(0));
  RT.runCore<&reverseCore>(L.Head, DRev);
  RT.runCore<&reduceCore>(L.Head, DMin, &combineMin, Word(0),
                          Word(UINT64_MAX));
  RT.runCore<&reduceCore>(L.Head, DSum, &combineSum, Word(0), Word(0));
  RT.runCore<&quicksortCore>(L.Head, DQs, &cmpWord);
  RT.runCore<&mergesortCore>(L.Head, DMs, &cmpWord);

  auto CheckAll = [&](const char *When) {
    std::vector<Word> Cur = readList(RT, L.Head);
    Arena A;
    conv::PCell *CIn = conv::buildList(A, Cur);
    ASSERT_EQ(readList(RT, DMap),
              conv::toVector(conv::mapList(A, CIn, &mapPaper, 0)))
        << When;
    ASSERT_EQ(readList(RT, DFil),
              conv::toVector(conv::filterList(A, CIn, &filterPaper, 0)))
        << When;
    std::vector<Word> Rev(Cur.rbegin(), Cur.rend());
    ASSERT_EQ(readList(RT, DRev), Rev) << When;
    ASSERT_EQ(RT.deref(DMin),
              conv::reduceList(CIn, &combineMin, 0, UINT64_MAX))
        << When;
    ASSERT_EQ(RT.deref(DSum), conv::reduceList(CIn, &combineSum, 0, 0))
        << When;
    ASSERT_EQ(readList(RT, DQs), oracleSorted(Cur)) << When;
    ASSERT_EQ(readList(RT, DMs), oracleSorted(Cur)) << When;
  };

  CheckAll("initial");
  for (int Edit = 0; Edit < P.Edits; ++Edit) {
    size_t Index = R.below(L.Cells.size());
    detachCell(RT, L, Index);
    RT.propagate();
    CheckAll("after delete");
    reattachCell(RT, L, Index);
    RT.propagate();
    CheckAll("after reinsert");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, ListEditSweep,
    ::testing::Values(EditSweepParam{101, 64, 8}, EditSweepParam{202, 128, 6},
                      EditSweepParam{303, 200, 5},
                      EditSweepParam{404, 33, 12},
                      EditSweepParam{505, 7, 10}));

//===----------------------------------------------------------------------===//
// Incrementality: single-element edits must not re-run the whole core.
//===----------------------------------------------------------------------===//

TEST(ListApps, MapUpdateIsConstantWork) {
  Rng R(8);
  std::vector<Word> In = randomWords(R, 4000);
  Runtime RT;
  ListHandle L = buildList(RT, In);
  Modref *Dst = RT.modref();
  RT.runCore<&mapCore>(L.Head, Dst, &mapPaper, Word(0));

  uint64_t Before = RT.stats().ReadsTraced + RT.stats().ReadsReexecuted;
  for (size_t I = 500; I < 520; ++I) {
    detachCell(RT, L, I);
    RT.propagate();
    reattachCell(RT, L, I);
    RT.propagate();
  }
  uint64_t Work = RT.stats().ReadsTraced + RT.stats().ReadsReexecuted - Before;
  // 40 propagations; each should cost O(1) reads, far below list size.
  EXPECT_LT(Work, 400u);
}

TEST(ListApps, ReduceUpdateIsLogarithmicWork) {
  Rng R(9);
  std::vector<Word> In = randomWords(R, 8192);
  Runtime RT;
  ListHandle L = buildList(RT, In);
  Modref *Dst = RT.modref();
  RT.runCore<&reduceCore>(L.Head, Dst, &combineSum, Word(0), Word(0));
  uint64_t Before = RT.stats().ReadsTraced + RT.stats().ReadsReexecuted;
  int Updates = 0;
  for (size_t I = 100; I < 8100; I += 400, Updates += 2) {
    detachCell(RT, L, I);
    RT.propagate();
    reattachCell(RT, L, I);
    RT.propagate();
  }
  uint64_t Work = RT.stats().ReadsTraced + RT.stats().ReadsReexecuted - Before;
  // Each update should touch ~O(log n) runs, not the whole list. Allow a
  // generous constant.
  EXPECT_LT(Work / Updates, 60 * 13u);
}

TEST(ListApps, QuicksortUpdateIsPolylogWork) {
  Rng R(10);
  std::vector<Word> In = randomWords(R, 4096);
  Runtime RT;
  ListHandle L = buildList(RT, In);
  Modref *Dst = RT.modref();
  RT.runCore<&quicksortCore>(L.Head, Dst, &cmpWord);
  uint64_t Before = RT.stats().ReadsTraced + RT.stats().ReadsReexecuted;
  int Updates = 0;
  for (size_t I = 64; I < 4000; I += 256, Updates += 2) {
    detachCell(RT, L, I);
    RT.propagate();
    reattachCell(RT, L, I);
    RT.propagate();
  }
  uint64_t Work = RT.stats().ReadsTraced + RT.stats().ReadsReexecuted - Before;
  // O(log^2 n) expected per update; n=4096 -> log^2 = 144. Allow slack.
  EXPECT_LT(Work / Updates, 3000u) << "quicksort update not incremental";
}
