//===- tests/ModTypedTest.cpp - Typed modifiable facade -------------------===//
//
// Tests for Mod<T> (the Sec. 10 "typed modifiables" extension): typed
// reads/writes with doubles and pointers, closure transport, and mixing
// with the untyped API.
//
//===----------------------------------------------------------------------===//

#include "runtime/Mod.h"

#include <gtest/gtest.h>

using namespace ceal;

namespace {

Closure *scaleGot(Runtime &RT, double V, Mod<double> Out, double Factor) {
  Out.write(RT, V * Factor);
  return nullptr;
}

Closure *scaleCore(Runtime &RT, Mod<double> In, Mod<double> Out,
                   double Factor) {
  return In.readTail<&scaleGot>(RT, Out, Factor);
}

struct Payload {
  int64_t A, B;
};

Closure *sumFieldsGot(Runtime &RT, Payload *P, Mod<int64_t> Out) {
  Out.write(RT, P->A + P->B);
  return nullptr;
}

Closure *sumFieldsCore(Runtime &RT, Mod<Payload *> In, Mod<int64_t> Out) {
  return In.readTail<&sumFieldsGot>(RT, Out);
}

/// A two-stage typed pipeline exercising core-level Mod creation.
Closure *stage2Got(Runtime &RT, double V, Mod<double> Final) {
  Final.write(RT, V + 0.5);
  return nullptr;
}

Closure *stage1Got(Runtime &RT, double V, Mod<double> Mid, Mod<double> Final) {
  Mid.write(RT, V * 2.0);
  return Mid.readTail<&stage2Got>(RT, Final);
}

Closure *twoStageCore(Runtime &RT, Mod<double> In, Mod<double> Final) {
  Mod<double> Mid = Mod<double>::coreCreate(RT, In.raw());
  return In.readTail<&stage1Got>(RT, Mid, Final);
}

} // namespace

TEST(ModTyped, DoubleRoundTrip) {
  Runtime RT;
  auto In = Mod<double>::create(RT, 1.25);
  auto Out = Mod<double>::create(RT);
  RT.runCore<&scaleCore>(In, Out, 4.0);
  EXPECT_DOUBLE_EQ(Out.deref(RT), 5.0);

  In.modify(RT, -2.5);
  RT.propagate();
  EXPECT_DOUBLE_EQ(Out.deref(RT), -10.0);
}

TEST(ModTyped, PointerContent) {
  Runtime RT;
  Payload P1{3, 4}, P2{10, 20};
  auto In = Mod<Payload *>::create(RT, &P1);
  auto Out = Mod<int64_t>::create(RT);
  RT.runCore<&sumFieldsCore>(In, Out);
  EXPECT_EQ(Out.deref(RT), 7);
  In.modify(RT, &P2);
  RT.propagate();
  EXPECT_EQ(Out.deref(RT), 30);
}

TEST(ModTyped, CoreCreatedIntermediate) {
  Runtime RT;
  auto In = Mod<double>::create(RT, 3.0);
  auto Final = Mod<double>::create(RT);
  RT.runCore<&twoStageCore>(In, Final);
  EXPECT_DOUBLE_EQ(Final.deref(RT), 6.5);
  for (double V : {1.0, -7.25, 1024.0}) {
    In.modify(RT, V);
    RT.propagate();
    EXPECT_DOUBLE_EQ(Final.deref(RT), V * 2.0 + 0.5);
  }
}

TEST(ModTyped, InteroperatesWithUntypedApi) {
  Runtime RT;
  auto M = Mod<int64_t>::create(RT, 11);
  // The raw handle is the same modifiable.
  EXPECT_EQ(RT.derefT<int64_t>(M.raw()), 11);
  RT.modifyT<int64_t>(M.raw(), 42);
  EXPECT_EQ(M.deref(RT), 42);
}

TEST(ModTyped, EqualityCutAppliesToTypedWrites) {
  Runtime RT;
  auto In = Mod<double>::create(RT, 2.0);
  auto Out = Mod<double>::create(RT);
  RT.runCore<&scaleCore>(In, Out, 3.0);
  In.modify(RT, 2.0); // Same bits: no re-execution.
  RT.propagate();
  EXPECT_EQ(RT.stats().ReadsReexecuted, 0u);
}
