//===- tests/TranslateTest.cpp - CL -> C translation tests ----------------===//

#include "cl/Parser.h"
#include "cl/Samples.h"
#include "normalize/Normalize.h"
#include "translate/EmitC.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace ceal;
using namespace ceal::cl;
using namespace ceal::normalize;
using namespace ceal::translate;

namespace {

Program normalizedSample(const char *Source) {
  auto R = parseProgram(Source);
  EXPECT_TRUE(R) << R.Error;
  return normalizeProgram(*R.Prog).Prog;
}

/// Runs `gcc -fsyntax-only` on the emitted C; returns the exit status.
int syntaxCheck(const std::string &Code, const std::string &Tag) {
  std::string Path = "/tmp/ceal_emit_" + Tag + ".c";
  std::ofstream(Path) << Code;
  std::string Cmd = "gcc -std=gnu11 -fsyntax-only " + Path + " 2>/tmp/ceal_emit_" +
                    Tag + ".log";
  return std::system(Cmd.c_str());
}

} // namespace

TEST(EmitC, RefinedOutputIsValidC) {
  for (const auto &[Name, Source] : samples::allPrograms()) {
    Program P = normalizedSample(Source.c_str());
    EmitResult R = emitC(P, Mode::Refined);
    EXPECT_GT(R.EmittedBytes, 500u) << Name;
    EXPECT_EQ(syntaxCheck(R.Code, Name + "_refined"), 0)
        << Name << ": emitted C does not compile";
  }
}

TEST(EmitC, BasicOutputIsValidC) {
  for (const auto &[Name, Source] : samples::allPrograms()) {
    Program P = normalizedSample(Source.c_str());
    EmitResult R = emitC(P, Mode::Basic);
    EXPECT_EQ(syntaxCheck(R.Code, Name + "_basic"), 0)
        << Name << ": emitted C does not compile";
  }
}

TEST(EmitC, RefinedTailsAreDirectCalls) {
  Program P = normalizedSample(samples::ListPrims);
  EmitResult Refined = emitC(P, Mode::Refined);
  EmitResult Basic = emitC(P, Mode::Basic);
  // The refined translation replaces `return closure_make_f(...)` with
  // `return f_f(...)` on non-read tails, so it needs strictly fewer
  // monomorphized makers and emits `return f_...` direct calls.
  EXPECT_LT(Refined.MonomorphInstances, Basic.MonomorphInstances);
  EXPECT_NE(Refined.Code.find("return f_"), std::string::npos);
  // Reads still go through closures in both modes.
  EXPECT_NE(Refined.Code.find("modref_read("), std::string::npos);
  EXPECT_NE(Basic.Code.find("modref_read("), std::string::npos);
}

TEST(EmitC, ReadsUseSubstitutionPlaceholder) {
  Program P = normalizedSample(samples::ExpTrees);
  EmitResult R = emitC(P, Mode::Refined);
  // Every read emits a closure whose read-destination slot is the
  // substitution placeholder.
  EXPECT_NE(R.Code.find("/*subst*/0"), std::string::npos);
  EXPECT_NE(R.Code.find("allocate(sizeof(modref_t)"), std::string::npos);
}

TEST(EmitC, SizeWithinTheorem5Bound) {
  // Theorem 5: the generated C is O(m + n * ML(P)) words. Check a
  // generous concrete constant over all samples (chars as word proxy).
  for (const auto &[Name, Source] : samples::allPrograms()) {
    auto Parsed = parseProgram(Source);
    ASSERT_TRUE(Parsed) << Parsed.Error;
    NormalizeResult N = normalizeProgram(*Parsed.Prog);
    EmitResult R = emitC(N.Prog, Mode::Refined);
    size_t WordBound =
        N.Stats.InputWords +
        (N.Stats.InputBlocks + Parsed.Prog->Funcs.size() + 4) *
            (2 * N.Stats.MaxLive + 10);
    // ~24 characters per emitted word is ample for this C dialect.
    EXPECT_LT(R.EmittedBytes, WordBound * 24) << Name;
  }
}

TEST(EmitC, PassthroughPrintsOriginal) {
  auto Parsed = parseProgram(samples::ExpTrees);
  ASSERT_TRUE(Parsed) << Parsed.Error;
  EmitResult R = emitPassthrough(*Parsed.Prog);
  EXPECT_NE(R.Code.find("func eval"), std::string::npos);
  EXPECT_EQ(R.MonomorphInstances, 0u);
}

TEST(EmitC, CompilationTimeScalesNearLinearly) {
  // Fig. 15's property in miniature: pipeline time grows with output
  // size, without a superlinear blowup. We only check the ratio here;
  // bench/fig15 measures the curve.
  auto Small = parseProgram(samples::ExpTrees);
  auto Large = parseProgram(samples::allPrograms().back().second);
  ASSERT_TRUE(Small);
  ASSERT_TRUE(Large);
  EmitResult RS = emitC(normalizeProgram(*Small.Prog).Prog, Mode::Refined);
  EmitResult RL = emitC(normalizeProgram(*Large.Prog).Prog, Mode::Refined);
  EXPECT_GT(RL.EmittedBytes, 3 * RS.EmittedBytes);
}
