//===- tests/ModrefEffectsTest.cpp - Interprocedural effect summaries -----===//
//
// Fixed-point behavior of computeModrefEffects on the call-graph shapes
// that historically break effect analyses:
//
//  * Mutually tail-recursive functions — effects must flow around the
//    cycle in both directions (no under-approximation) and the solver
//    must terminate (no divergence).
//  * Argument-permuting cycles — a tail that swaps its arguments each
//    iteration must saturate to the union, not oscillate.
//  * Memoized call chains — Allocates and the writes-other effect of a
//    keyed modref() allocation must survive through nested `call`s.
//  * Alloc initializers — callee parameter effects map through the
//    implicit leading block parameter (ArgOffset = 1).
//
//===----------------------------------------------------------------------===//

#include "analysis/ModrefEffects.h"
#include "cl/Parser.h"

#include <gtest/gtest.h>

using namespace ceal;
using namespace ceal::analysis;
using namespace ceal::cl;

namespace {

std::vector<FuncEffects> effectsOf(const char *Src) {
  auto R = parseProgram(Src);
  EXPECT_TRUE(R) << R.Error;
  if (!R)
    return {};
  return computeModrefEffects(*R.Prog);
}

} // namespace

//===----------------------------------------------------------------------===//
// Mutual recursion
//===----------------------------------------------------------------------===//

// ping reads s directly; pong writes d directly; each tails the other
// with the same argument order. The fixed point must give BOTH functions
// reads{s} and writes{d}: ping only learns its write effect from pong
// (and vice versa), so a missing bit means the cycle was not iterated to
// convergence.
TEST(ModrefEffects, MutualRecursionPropagatesBothWays) {
  auto FX = effectsOf(R"(
func ping(modref* s, modref* d) {
  var int x;
  e: x := read s; tail pong(s, d);
}
func pong(modref* s, modref* d) {
  var int y;
  e: y := 1; goto w;
  w: write(d, y); tail ping(s, d);
}
)");
  ASSERT_EQ(FX.size(), 2u);
  for (const FuncEffects &E : FX) {
    EXPECT_TRUE(E.ReadsParams.test(0));
    EXPECT_FALSE(E.ReadsParams.test(1));
    EXPECT_TRUE(E.WritesParams.test(1));
    EXPECT_FALSE(E.WritesParams.test(0));
    EXPECT_FALSE(E.ReadsOther);
    EXPECT_FALSE(E.WritesOther);
    EXPECT_FALSE(E.Allocates);
  }
}

// spin reads its first parameter and tails flip with the arguments
// SWAPPED; flip tails spin in order. Each trip around the cycle moves
// the read effect to the other parameter, so the only fixed point is
// "reads both" — and the solver must reach it rather than oscillate.
TEST(ModrefEffects, ArgumentPermutingCycleSaturates) {
  auto FX = effectsOf(R"(
func spin(modref* a, modref* b) {
  var int x;
  e: x := read a; tail flip(b, a);
}
func flip(modref* a, modref* b) {
  e: nop; tail spin(a, b);
}
)");
  ASSERT_EQ(FX.size(), 2u);
  for (const FuncEffects &E : FX) {
    EXPECT_TRUE(E.ReadsParams.test(0));
    EXPECT_TRUE(E.ReadsParams.test(1));
    EXPECT_TRUE(E.writesNothing());
    EXPECT_FALSE(E.Allocates);
  }
}

// A three-function cycle where only the innermost member touches a
// modref: every member must still pick up the effect.
TEST(ModrefEffects, ThreeCycleReachesEveryMember) {
  auto FX = effectsOf(R"(
func a3(modref* m) {
  e: nop; tail b3(m);
}
func b3(modref* m) {
  e: nop; tail c3(m);
}
func c3(modref* m) {
  var int v; var int ok;
  e: v := read m; goto t;
  t: ok := gt(v, v); goto br;
  br: if ok then goto rec else goto fin;
  rec: nop; tail a3(m);
  fin: done;
}
)");
  ASSERT_EQ(FX.size(), 3u);
  for (const FuncEffects &E : FX) {
    EXPECT_TRUE(E.ReadsParams.test(0));
    EXPECT_TRUE(E.writesNothing());
  }
}

//===----------------------------------------------------------------------===//
// Memoized call chains
//===----------------------------------------------------------------------===//

// mkcell performs a keyed modref() allocation and writes the fresh cell.
// The write of a local allocation must be reported as WritesOther (a
// keyed allocation can memo-match a cell the caller holds during change
// propagation), and both Allocates and WritesOther must survive through
// two levels of `call`.
TEST(ModrefEffects, MemoizedCallChainConservatism) {
  auto FX = effectsOf(R"(
func mkcell(modref* out, int k) {
  var modref* m;
  var int z;
  e: m := modref(k); goto s;
  s: z := 7; goto w;
  w: write(m, z); goto pub;
  pub: write(out, z); goto fin;
  fin: done;
}
func mid(modref* out, int k) {
  e: call mkcell(out, k); goto fin;
  fin: done;
}
func chain(modref* sink, int key) {
  e: call mid(sink, key); goto fin;
  fin: done;
}
)");
  ASSERT_EQ(FX.size(), 3u);
  // Direct effects of mkcell.
  EXPECT_TRUE(FX[0].Allocates);
  EXPECT_TRUE(FX[0].WritesOther);
  EXPECT_TRUE(FX[0].WritesParams.test(0));
  EXPECT_FALSE(FX[0].ReadsOther);
  EXPECT_TRUE(FX[0].readsNothing());
  // Both call levels inherit the summary, with the out-parameter write
  // re-mapped onto their own first parameter each time.
  for (size_t F : {size_t(1), size_t(2)}) {
    EXPECT_TRUE(FX[F].Allocates) << "func " << F;
    EXPECT_TRUE(FX[F].WritesOther) << "func " << F;
    EXPECT_TRUE(FX[F].WritesParams.test(0)) << "func " << F;
    EXPECT_TRUE(FX[F].readsNothing()) << "func " << F;
  }
}

// Memo keys are identity, not accesses: passing a modref as a modref()
// key must not count as reading or writing it.
TEST(ModrefEffects, MemoKeysAreNotAccesses) {
  auto FX = effectsOf(R"(
func keyed(modref* p, int i) {
  var modref* m;
  e: m := modref(p, i); goto fin;
  fin: done;
}
)");
  ASSERT_EQ(FX.size(), 1u);
  EXPECT_TRUE(FX[0].Allocates);
  EXPECT_TRUE(FX[0].readsNothing());
  EXPECT_TRUE(FX[0].writesNothing());
}

//===----------------------------------------------------------------------===//
// Alloc initializers
//===----------------------------------------------------------------------===//

// alloc(sz, init, args...) invokes init with the fresh block as an
// implicit leading parameter (ArgOffset = 1). init3 reads its second
// parameter (the caller's src) and stores into the block; the caller
// must see ReadsParams{src} plus Allocates, and the block store must
// contribute no modref effect.
TEST(ModrefEffects, AllocInitializerMapsOffsetParams) {
  auto FX = effectsOf(R"(
func init3(int* blk, modref* src) {
  var int v; var int i0;
  e: v := read src; goto s;
  s: i0 := 0; goto st;
  st: blk[i0] := v; goto fin;
  fin: done;
}
func build(modref* src, int sz) {
  var int* p;
  e: p := alloc(sz, init3, src); goto fin;
  fin: done;
}
)");
  ASSERT_EQ(FX.size(), 2u);
  // init3 itself: reads param 1 only.
  EXPECT_FALSE(FX[0].ReadsParams.test(0));
  EXPECT_TRUE(FX[0].ReadsParams.test(1));
  EXPECT_TRUE(FX[0].writesNothing());
  EXPECT_FALSE(FX[0].Allocates);
  // build: Allocates, and init3's src read mapped onto build's param 0.
  EXPECT_TRUE(FX[1].Allocates);
  EXPECT_TRUE(FX[1].ReadsParams.test(0));
  EXPECT_FALSE(FX[1].ReadsParams.test(1));
  EXPECT_FALSE(FX[1].ReadsOther);
  EXPECT_TRUE(FX[1].writesNothing());
}

// A recursive initializer: the init function allocates a smaller block
// with itself as initializer and writes a modref parameter. Exercises
// the Alloc edge participating in a cycle.
TEST(ModrefEffects, RecursiveAllocInitializer) {
  auto FX = effectsOf(R"(
func fill(int* blk, int n, modref* note) {
  var int* q;
  var int ok; var int i1; var int n2;
  e: ok := gt(n, n); goto br;
  br: if ok then goto rec else goto w;
  rec: i1 := 1; goto dec;
  dec: n2 := sub(n, i1); goto mk;
  mk: q := alloc(n2, fill, n2, note); goto fin;
  w: write(note, n); goto fin;
  fin: done;
}
func top(int sz, modref* log) {
  var int* p;
  e: p := alloc(sz, fill, sz, log); goto fin;
  fin: done;
}
)");
  ASSERT_EQ(FX.size(), 2u);
  EXPECT_TRUE(FX[0].Allocates);
  EXPECT_TRUE(FX[0].WritesParams.test(2));
  EXPECT_TRUE(FX[1].Allocates);
  EXPECT_TRUE(FX[1].WritesParams.test(1));
  EXPECT_FALSE(FX[1].WritesOther);
  EXPECT_TRUE(FX[1].readsNothing());
}

//===----------------------------------------------------------------------===//
// Purity and origin mixing
//===----------------------------------------------------------------------===//

TEST(ModrefEffects, PureArithmeticIsEffectFree) {
  auto FX = effectsOf(R"(
func pure(int a, int b) {
  var int c;
  e: c := add(a, b); goto fin;
  fin: done;
}
)");
  ASSERT_EQ(FX.size(), 1u);
  EXPECT_TRUE(FX[0].readsNothing());
  EXPECT_TRUE(FX[0].writesNothing());
  EXPECT_FALSE(FX[0].Allocates);
}

// A modref loaded out of memory is an "other" origin: reading it must
// set ReadsOther, not any parameter bit, even when a parameter modref is
// also read through the same variable on another path (flow-insensitive
// union of origins).
TEST(ModrefEffects, MixedOriginVariableUnionsEffects) {
  auto FX = effectsOf(R"(
func pick(modref* p, int* mem, int which) {
  var modref* t;
  var int v; var int i0;
  e: if which then goto fromp else goto fromm;
  fromp: t := p; goto rd;
  fromm: i0 := 0; goto ld;
  ld: t := mem[i0]; goto rd;
  rd: v := read t; goto fin;
  fin: done;
}
)");
  ASSERT_EQ(FX.size(), 1u);
  EXPECT_TRUE(FX[0].ReadsParams.test(0));
  EXPECT_TRUE(FX[0].ReadsOther);
  EXPECT_TRUE(FX[0].writesNothing());
}
