//===- tests/OrderListTest.cpp - Order-maintenance tests ------------------===//
//
// Unit and property tests for the order-maintenance list, including a
// randomized comparison against an exact oracle (a std::list whose
// iterator order defines the truth).
//
//===----------------------------------------------------------------------===//

#include "om/OrderList.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <vector>

using namespace ceal;

TEST(OrderList, BaseIsMinimum) {
  OrderList L;
  OmNode *A = L.insertAfter(L.base());
  EXPECT_TRUE(OrderList::precedes(L.base(), A));
  EXPECT_FALSE(OrderList::precedes(A, L.base()));
  EXPECT_FALSE(OrderList::precedes(A, A));
  EXPECT_EQ(L.size(), 2u);
}

TEST(OrderList, InsertAfterOrdersChain) {
  OrderList L;
  OmNode *A = L.insertAfter(L.base());
  OmNode *B = L.insertAfter(A);
  OmNode *C = L.insertAfter(A); // Between A and B.
  EXPECT_TRUE(OrderList::precedes(A, C));
  EXPECT_TRUE(OrderList::precedes(C, B));
  EXPECT_TRUE(OrderList::precedes(A, B));
  L.verifyInvariants();
}

TEST(OrderList, PayloadIsPreserved) {
  OrderList L;
  OmNode *A = L.insertAfter(L.base(), OmItem(42));
  EXPECT_EQ(A->Item, OmItem(42));
}

TEST(OrderList, RemoveKeepsOrder) {
  OrderList L;
  OmNode *A = L.insertAfter(L.base());
  OmNode *B = L.insertAfter(A);
  OmNode *C = L.insertAfter(B);
  L.remove(B);
  EXPECT_TRUE(OrderList::precedes(A, C));
  EXPECT_EQ(OrderList::next(A), C);
  EXPECT_EQ(L.size(), 3u);
  L.verifyInvariants();
}

TEST(OrderList, SequentialInsertionIsTotalOrder) {
  OrderList L;
  std::vector<OmNode *> Nodes;
  OmNode *Cur = L.base();
  for (int I = 0; I < 10000; ++I) {
    Cur = L.insertAfter(Cur);
    Nodes.push_back(Cur);
  }
  for (size_t I = 1; I < Nodes.size(); I += 97)
    EXPECT_TRUE(OrderList::precedes(Nodes[I - 1], Nodes[I]));
  L.verifyInvariants();
}

TEST(OrderList, PathologicalFrontInsertion) {
  // Always inserting at the same position maximizes relabeling pressure.
  OrderList L;
  std::vector<OmNode *> Nodes;
  for (int I = 0; I < 20000; ++I)
    Nodes.push_back(L.insertAfter(L.base()));
  // Later-created nodes come earlier in the order.
  for (size_t I = 1; I < Nodes.size(); I += 131)
    EXPECT_TRUE(OrderList::precedes(Nodes[I], Nodes[I - 1]));
  L.verifyInvariants();
}

TEST(OrderList, FrontInsertionTriggersRangeRelabel) {
  // Inserting at one spot exhausts the local label gaps, forcing first
  // group splits and eventually the expensive range redistribution; the
  // structure must come out of the cascade still totally ordered.
  OrderList L;
  std::vector<OmNode *> Nodes;
  int Inserted = 0;
  while (L.rangeRelabelCount() == 0 && Inserted < 2000000) {
    Nodes.push_back(L.insertAfter(L.base()));
    ++Inserted;
  }
  ASSERT_GT(L.rangeRelabelCount(), 0u)
      << "front insertion never saturated the group-label space";
  L.verifyInvariants();
  // Later-created nodes precede earlier ones (all inserted after base).
  for (size_t I = 1; I < Nodes.size(); I += 251)
    EXPECT_TRUE(OrderList::precedes(Nodes[I], Nodes[I - 1]));
  // The structure still absorbs fresh inserts after the cascade.
  OmNode *A = L.insertAfter(L.base());
  OmNode *B = L.insertAfter(A);
  EXPECT_TRUE(OrderList::precedes(A, B));
  EXPECT_TRUE(OrderList::precedes(B, Nodes.back()));
  L.verifyInvariants();
}

TEST(OrderList, RemoveFirstAndLastNodeOfAGroup) {
  // Build enough nodes for many level-two groups, then delete group
  // boundary members: the group's First pointer and the predecessor
  // chain must be repaired in both cases.
  OrderList L;
  std::vector<OmNode *> Nodes;
  OmNode *Cur = L.base();
  for (int I = 0; I < 4096; ++I) {
    Cur = L.insertAfter(Cur);
    Nodes.push_back(Cur);
  }

  // A node that *leads* a group (and is not base).
  auto IsGroupFirst = [](OmNode *N) { return N->Group->First == N; };
  // A node that *ends* a group: successor absent or in another group.
  auto IsGroupLast = [](OmNode *N) {
    return !N->Next || N->Next->Group != N->Group;
  };

  size_t Removed = 0;
  for (size_t I = 0; I < Nodes.size() && Removed < 64; ++I) {
    OmNode *N = Nodes[I];
    if (!N)
      continue;
    if (IsGroupFirst(N) || IsGroupLast(N)) {
      OmNode *Before = N->Prev;
      OmNode *After = N->Next;
      L.remove(N);
      Nodes[I] = nullptr;
      ++Removed;
      if (Before && After)
        EXPECT_TRUE(OrderList::precedes(Before, After));
      L.verifyInvariants();
    }
  }
  EXPECT_GE(Removed, 2u) << "no group boundaries found to delete";

  // Residual order is intact.
  OmNode *Prev = nullptr;
  for (OmNode *N : Nodes) {
    if (!N)
      continue;
    if (Prev)
      EXPECT_TRUE(OrderList::precedes(Prev, N));
    Prev = N;
  }
}

TEST(OrderList, InterleavedInsertDeleteStressChecksEveryOp) {
  // Tight interleaving with invariants verified after *every* operation:
  // catches transient corruption that end-of-run checks miss.
  Rng R(4242);
  OrderList L;
  std::vector<OmNode *> Live{L.base()};
  for (int Op = 0; Op < 3000; ++Op) {
    bool DoRemove = Live.size() > 1 && R.below(100) < 40;
    if (DoRemove) {
      size_t Idx = 1 + R.below(Live.size() - 1);
      L.remove(Live[Idx]);
      Live[Idx] = Live.back();
      Live.pop_back();
    } else {
      Live.push_back(L.insertAfter(Live[R.below(Live.size())]));
    }
    L.verifyInvariants();
  }
  EXPECT_EQ(L.size(), Live.size());
}

namespace {

/// Oracle for randomized testing: a std::list of node ids whose sequence
/// order is the ground truth.
class OrderOracle {
public:
  using Pos = std::list<int>::iterator;

  OrderOracle() { Positions[0] = Seq.insert(Seq.end(), 0); }

  int insertAfter(int After) {
    int Id = NextId++;
    auto It = Positions.at(After);
    Positions[Id] = Seq.insert(std::next(It), Id);
    return Id;
  }

  void remove(int Id) {
    Seq.erase(Positions.at(Id));
    Positions.erase(Id);
  }

  bool precedes(int A, int B) const {
    for (int Id : Seq) {
      if (Id == A)
        return true;
      if (Id == B)
        return false;
    }
    ADD_FAILURE() << "ids not present";
    return false;
  }

  std::vector<int> ids() const {
    std::vector<int> Result;
    for (auto &Entry : Positions)
      Result.push_back(Entry.first);
    return Result;
  }

private:
  std::list<int> Seq;
  std::map<int, Pos> Positions;
  int NextId = 1;
};

struct RandomOpsParam {
  uint64_t Seed;
  int NumOps;
  int RemoveWeight; // Out of 100.
};

class OrderListRandomTest : public ::testing::TestWithParam<RandomOpsParam> {};

} // namespace

TEST_P(OrderListRandomTest, MatchesOracle) {
  const RandomOpsParam P = GetParam();
  Rng R(P.Seed);
  OrderList L;
  OrderOracle Oracle;
  std::map<int, OmNode *> NodeById;
  NodeById[0] = L.base();

  for (int Op = 0; Op < P.NumOps; ++Op) {
    std::vector<int> Ids = Oracle.ids();
    bool DoRemove =
        Ids.size() > 1 && static_cast<int>(R.below(100)) < P.RemoveWeight;
    if (DoRemove) {
      int Victim;
      do {
        Victim = Ids[R.below(Ids.size())];
      } while (Victim == 0);
      Oracle.remove(Victim);
      L.remove(NodeById.at(Victim));
      NodeById.erase(Victim);
    } else {
      int After = Ids[R.below(Ids.size())];
      int Id = Oracle.insertAfter(After);
      NodeById[Id] = L.insertAfter(NodeById.at(After));
    }
    if (Op % 64 == 0) {
      L.verifyInvariants();
      // Spot-check a handful of random order queries against the oracle.
      std::vector<int> Cur = Oracle.ids();
      for (int Q = 0; Q < 8 && Cur.size() >= 2; ++Q) {
        int A = Cur[R.below(Cur.size())];
        int B = Cur[R.below(Cur.size())];
        if (A == B)
          continue;
        EXPECT_EQ(Oracle.precedes(A, B),
                  OrderList::precedes(NodeById.at(A), NodeById.at(B)))
            << "seed=" << P.Seed << " op=" << Op;
      }
    }
  }
  L.verifyInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    RandomOps, OrderListRandomTest,
    ::testing::Values(RandomOpsParam{1, 800, 0}, RandomOpsParam{2, 800, 25},
                      RandomOpsParam{3, 800, 45}, RandomOpsParam{4, 2000, 30},
                      RandomOpsParam{5, 2000, 10}, RandomOpsParam{6, 400, 60},
                      RandomOpsParam{7, 3000, 33},
                      RandomOpsParam{8, 3000, 5}));

TEST(OrderList, HeavyMixedChurn) {
  // Large-scale smoke test: interleave bursts of localized insertion with
  // random deletion; verify invariants at the end.
  Rng R(99);
  OrderList L;
  std::vector<OmNode *> Live{L.base()};
  for (int Round = 0; Round < 50; ++Round) {
    OmNode *Spot = Live[R.below(Live.size())];
    for (int I = 0; I < 500; ++I) {
      Spot = L.insertAfter(Spot);
      Live.push_back(Spot);
    }
    for (int I = 0; I < 200 && Live.size() > 1; ++I) {
      size_t Idx = 1 + R.below(Live.size() - 1);
      L.remove(Live[Idx]);
      Live[Idx] = Live.back();
      Live.pop_back();
    }
  }
  L.verifyInvariants();
  EXPECT_EQ(L.size(), Live.size());
}

//===----------------------------------------------------------------------===//
// Append mode (construction-time monotone insertion policy)
//===----------------------------------------------------------------------===//

TEST(OrderListAppend, MonotoneAppendNeverRelabels) {
  // The whole point of append mode: a monotone run of tail insertions —
  // the trace of an initial run — must never rewrite an existing label,
  // so both relabel counters stay at zero from start to finalize.
  OrderList L;
  L.beginAppend();
  EXPECT_TRUE(L.inAppendMode());
  std::vector<OmNode *> Nodes;
  OmNode *Cur = L.base();
  for (int I = 0; I < 50000; ++I) {
    Cur = L.insertAfter(Cur);
    Nodes.push_back(Cur);
    // Structural invariants hold continuously, not just after finalize.
    if (I % 8192 == 0)
      L.verifyInvariants();
  }
  EXPECT_EQ(L.relabelCount(), 0u)
      << "monotone append paid a split or relabel";
  EXPECT_EQ(L.rangeRelabelCount(), 0u);
  L.finalizeAppend();
  EXPECT_FALSE(L.inAppendMode());
  L.verifyInvariants();
  for (size_t I = 1; I < Nodes.size(); I += 173)
    EXPECT_TRUE(OrderList::precedes(Nodes[I - 1], Nodes[I]));
  EXPECT_TRUE(OrderList::precedes(L.base(), Nodes.front()));
}

TEST(OrderListAppend, MidGroupReentryPeelsSuffix) {
  // Build a list under the normal policy so groups sit at their
  // post-split occupancy, then enter append mode and insert at mid-group
  // positions (the re-traced interval case): appendSlow must peel the
  // in-group suffix into a fresh group and keep the total order exact.
  OrderList L;
  std::vector<OmNode *> Order{L.base()};
  OmNode *Cur = L.base();
  for (int I = 0; I < 1000; ++I) {
    Cur = L.insertAfter(Cur);
    Order.push_back(Cur);
  }

  L.beginAppend();
  Rng R(314);
  for (int Burst = 0; Burst < 40; ++Burst) {
    // Re-enter at a random interior position and append a short monotone
    // run there, exactly like re-tracing a revoked interval.
    size_t At = 1 + R.below(Order.size() - 2);
    OmNode *Spot = Order[At];
    for (int I = 0; I < 8; ++I) {
      Spot = L.insertAfter(Spot);
      Order.insert(Order.begin() + static_cast<long>(++At), Spot);
    }
    L.verifyInvariants();
  }
  // Range redistribution must not have been needed: peels open fresh
  // groups without touching the Bender machinery.
  EXPECT_EQ(L.rangeRelabelCount(), 0u);
  L.finalizeAppend();
  L.verifyInvariants();
  for (size_t I = 1; I < Order.size(); ++I)
    ASSERT_TRUE(OrderList::precedes(Order[I - 1], Order[I]))
        << "order broken at position " << I;
}

TEST(OrderListAppend, RandomOpsInAndAfterAppendMatchOracle) {
  // Append mode is a policy switch, not a restricted interface: arbitrary
  // insert-after positions and removals stay legal while it is active.
  // Drive random operations against the exact oracle with the mode on,
  // finalize mid-stream, and keep going — the order answers must agree
  // throughout, and the relabeling policy flip must leave no seam.
  Rng R(77);
  OrderList L;
  OrderOracle Oracle;
  std::map<int, OmNode *> NodeById;
  NodeById[0] = L.base();
  L.beginAppend();

  for (int Op = 0; Op < 3000; ++Op) {
    if (Op == 1500) {
      L.finalizeAppend();
      L.verifyInvariants();
    }
    std::vector<int> Ids = Oracle.ids();
    bool DoRemove = Ids.size() > 1 && R.below(100) < 30;
    if (DoRemove) {
      int Victim;
      do {
        Victim = Ids[R.below(Ids.size())];
      } while (Victim == 0);
      Oracle.remove(Victim);
      L.remove(NodeById.at(Victim));
      NodeById.erase(Victim);
    } else {
      int After = Ids[R.below(Ids.size())];
      int Id = Oracle.insertAfter(After);
      NodeById[Id] = L.insertAfter(NodeById.at(After));
    }
    if (Op % 64 == 0) {
      L.verifyInvariants();
      std::vector<int> Cur = Oracle.ids();
      for (int Q = 0; Q < 8 && Cur.size() >= 2; ++Q) {
        int A = Cur[R.below(Cur.size())];
        int B = Cur[R.below(Cur.size())];
        if (A == B)
          continue;
        EXPECT_EQ(Oracle.precedes(A, B),
                  OrderList::precedes(NodeById.at(A), NodeById.at(B)))
            << "op=" << Op << (L.inAppendMode() ? " (appending)" : "");
      }
    }
  }
  L.verifyInvariants();
}

TEST(OrderListAppend, RemoveDuringAppendKeepsInvariants) {
  // Interleaved removals are explicitly allowed while appending (revoked
  // trace intervals die mid-construction); the structure must stay sound
  // at every step, including group-emptying removals.
  Rng R(2026);
  OrderList L;
  L.beginAppend();
  std::vector<OmNode *> Live{L.base()};
  OmNode *Cur = L.base();
  for (int I = 0; I < 5000; ++I) {
    Cur = L.insertAfter(Cur);
    Live.push_back(Cur);
    if (Live.size() > 2 && R.below(100) < 20) {
      // Remove a random node other than base and the append cursor.
      size_t Idx = 1 + R.below(Live.size() - 2);
      L.remove(Live[Idx]);
      Live.erase(Live.begin() + static_cast<long>(Idx));
    }
    if (I % 512 == 0)
      L.verifyInvariants();
  }
  L.finalizeAppend();
  L.verifyInvariants();
  EXPECT_EQ(L.size(), Live.size());
  for (size_t I = 1; I < Live.size(); I += 37)
    EXPECT_TRUE(OrderList::precedes(Live[I - 1], Live[I]));
}
