//===- tests/SnapshotFuzzTest.cpp - Corruption-injection fuzz suite -------===//
//
// The full corruption fuzz run over the snapshot loader: 1024 seeded
// mutations of each of two valid checkpoint images (a small and a
// mid-size computation), alternating the copying and the fully-verified
// mmap load paths. Every mutant must come back as a diagnostic error —
// never Ok, never a crash, never a sanitizer trip (CI runs this suite's
// tier-1 slice under ASan/UBSan; the full run is nightly).
//
// The mutation strategies live in tests/support/SnapshotCorruption.h and
// are guaranteed-detectable by construction, so Status::Ok is always a
// loader bug, not fuzz noise.
//
//===----------------------------------------------------------------------===//

#include "apps/ListApps.h"
#include "runtime/Runtime.h"
#include "runtime/Snapshot.h"
#include "tests/support/SnapshotCorruption.h"
#include "tests/support/SnapshotHarness.h"

#include <gtest/gtest.h>

using namespace ceal;
using namespace ceal::harness;

namespace {

Word mapPaper(Word X, Word) { return X / 3 + X / 7 + X / 9; }
Word combineSum(Word A, Word B, Word) { return A + B; }

/// Builds a valid checkpoint of an \p N-element map+reduce computation
/// and returns its bytes; the source runtime dies before return so
/// loaders can claim the recorded bases.
std::vector<uint8_t> checkpointBytes(const std::string &Path, size_t N) {
  Runtime RT{Runtime::Config{}};
  std::vector<Word> In;
  for (size_t I = 0; I < N; ++I)
    In.push_back((I * 2654435761u) % 100000);
  apps::ListHandle L = apps::buildList(RT, In);
  Modref *DstMap = RT.modref();
  Modref *DstSum = RT.modref();
  RT.runCore<&apps::mapCore>(L.Head, DstMap, &mapPaper, Word(0));
  RT.runCore<&apps::reduceCore>(L.Head, DstSum, &combineSum, Word(0),
                                Word(0));
  Snapshot::SaveOptions Opt;
  Opt.Roots = {L.Head, DstMap, DstSum};
  Snapshot::SaveResult SR = Snapshot::save(RT, Path, Opt);
  EXPECT_TRUE(SR.ok()) << Snapshot::statusName(SR.St) << ": "
                       << SR.Diagnostic;
  return slurpFile(Path);
}

void fuzzImage(const std::vector<uint8_t> &Valid, uint64_t SeedBase,
               int Cases) {
  TempFile Mutated;
  for (int I = 0; I < Cases; ++I) {
    uint64_t Seed = SeedBase + static_cast<uint64_t>(I);
    std::string Desc;
    std::vector<uint8_t> Mutant = mutateSnapshot(Valid, Seed, &Desc);
    ASSERT_TRUE(spitFile(Mutated.Path, Mutant));
    Runtime RT{Runtime::Config{}};
    bool UseMmap = (Seed & 1) != 0;
    // The mmap side runs with VerifyTrace on: the guaranteed-detection
    // property belongs to the *verified* loaders (the fast warm start
    // explicitly trusts the arena payload; see WarmStartOptions).
    Snapshot::WarmStartOptions Verified;
    Verified.VerifyTrace = true;
    Snapshot::LoadResult LR =
        UseMmap ? Snapshot::mmapWarmStart(RT, Mutated.Path, Verified)
                : Snapshot::load(RT, Mutated.Path);
    EXPECT_NE(LR.St, Snapshot::Status::Ok)
        << "seed " << Seed << " (" << Desc << ", "
        << (UseMmap ? "mmap" : "copy") << ") loaded successfully";
    if (LR.St != Snapshot::Status::Ok) {
      EXPECT_FALSE(LR.Diagnostic.empty())
          << "seed " << Seed << ": error without a diagnostic";
    }
  }
}

} // namespace

TEST(SnapshotFuzz, SmallImage1024) {
  TempFile Valid;
  std::vector<uint8_t> Bytes = checkpointBytes(Valid.Path, 16);
  ASSERT_FALSE(Bytes.empty());
  fuzzImage(Bytes, /*SeedBase=*/1000, /*Cases=*/1024);
}

TEST(SnapshotFuzz, MidImage1024) {
  TempFile Valid;
  std::vector<uint8_t> Bytes = checkpointBytes(Valid.Path, 300);
  ASSERT_FALSE(Bytes.empty());
  fuzzImage(Bytes, /*SeedBase=*/500000, /*Cases=*/1024);
}
