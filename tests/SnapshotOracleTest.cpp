//===- tests/SnapshotOracleTest.cpp - Snapshot round-trip oracle ----------===//
//
// The checkpoint/restore acceptance suite: every benchmark app runs
// seeded change sequences through the snapshot harness, which replays
// each sequence to a rotating split point, checkpoints, destroys the
// runtime, restores the file into a fresh one (rotating between the
// copying load and the mmap warm start), and finishes the sequence there
// — asserting after every step that the reloaded runtime's trace-shape
// digest and output are identical to a continuously-running oracle's,
// and that the conventional recomputation still agrees.
//
//===----------------------------------------------------------------------===//

#include "tests/support/OracleModels.h"
#include "tests/support/SnapshotHarness.h"

#include <gtest/gtest.h>

#include <memory>

using namespace ceal;
using namespace ceal::harness;

namespace {

template <typename ModelT, typename... Args>
ModelFactory factory(Args... As) {
  return [=] { return std::make_unique<ModelT>(As...); };
}

} // namespace

TEST(SnapshotOracle, ListPrimitives) {
  EXPECT_EQ(runSnapshotHarness(factory<ListModel>()), "");
}

TEST(SnapshotOracle, ExpressionTrees) {
  EXPECT_EQ(runSnapshotHarness(factory<ExpTreeModel>()), "");
}

TEST(SnapshotOracle, TreeContraction) {
  EXPECT_EQ(runSnapshotHarness(factory<TreeContractionModel>()), "");
}

TEST(SnapshotOracle, Quickhull) {
  EXPECT_EQ(runSnapshotHarness(factory<QuickhullModel>()), "");
}

TEST(SnapshotOracle, Diameter) {
  EXPECT_EQ(runSnapshotHarness(factory<DiameterModel>()), "");
}

TEST(SnapshotOracle, Distance) {
  EXPECT_EQ(runSnapshotHarness(factory<DistanceModel>()), "");
}
