//===- tests/InterferenceTest.cpp - Parallel-safety interference ----------===//
//
// Unit tests for computeInterference: region-class construction
// (allocation sites, input structures, the unknown wildcard), parameter
// binding through call sites, and the Disjoint / Ordered / Conflicting
// classification of entry pairs that cl-lint's interference report and
// the parallel-safety story are built on.
//
//===----------------------------------------------------------------------===//

#include "analysis/Interference.h"
#include "cl/Parser.h"

#include <gtest/gtest.h>

using namespace ceal;
using namespace ceal::analysis;
using namespace ceal::cl;

namespace {

struct Built {
  Program Prog;
  InterferenceSummary S;
};

Built build(const char *Src) {
  auto R = parseProgram(Src);
  EXPECT_TRUE(R) << R.Error;
  Built B;
  B.Prog = std::move(*R.Prog);
  B.S = computeInterference(B.Prog);
  return B;
}

const EntryPoint &entry(const Built &B, const std::string &Name) {
  for (const EntryPoint &E : B.S.Entries)
    if (E.name(B.Prog) == Name)
      return E;
  ADD_FAILURE() << "no entry named " << Name;
  static EntryPoint None;
  return None;
}

} // namespace

//===----------------------------------------------------------------------===//
// Region classes
//===----------------------------------------------------------------------===//

TEST(Interference, ClassesCoverSitesInputsAndUnknown) {
  Built B = build(R"(
func mk(modref* out, int k) {
  var modref* m; var int z;
  e: m := modref(k); goto s;
  s: z := 1; goto w;
  w: write(m, z); goto f;
  f: done;
}
)");
  // One site (block 'e'), one input (param out; k is not a pointer),
  // plus the trailing unknown class.
  ASSERT_EQ(B.S.numClasses(), 3u);
  EXPECT_EQ(B.S.UnknownClass, B.S.numClasses() - 1);
  EXPECT_EQ(B.S.Classes.back().K, RegionClass::Unknown);
  bool SawSite = false, SawInput = false;
  for (const RegionClass &C : B.S.Classes) {
    SawSite |= C.K == RegionClass::Site;
    SawInput |= C.K == RegionClass::Input;
  }
  EXPECT_TRUE(SawSite);
  EXPECT_TRUE(SawInput);
  // Non-pointer parameter k has an empty binding set.
  ASSERT_EQ(B.S.ParamBind[0].size(), 2u);
  EXPECT_TRUE(B.S.ParamBind[0][1].none());
  // The function writes its local site, not its input parameter's class.
  const EntryPoint &E = entry(B, "fn:mk");
  size_t SiteClass = SIZE_MAX;
  for (size_t C = 0; C < B.S.numClasses(); ++C)
    if (B.S.Classes[C].K == RegionClass::Site)
      SiteClass = C;
  ASSERT_NE(SiteClass, SIZE_MAX);
  EXPECT_TRUE(E.Writes.test(SiteClass));
}

TEST(Interference, ReadContinuationsAreInstantiated) {
  Built B = build(R"(
func sumtwo(modref* a, modref* b, modref* out) {
  var int x; var int y; var int s;
  r1: x := read a; goto r2;
  r2: y := read b; goto ad;
  ad: s := add(x, y); goto w;
  w: write(out, s); goto f;
  f: done;
}
)");
  // fn:sumtwo plus one read continuation per read block.
  const EntryPoint &Fn = entry(B, "fn:sumtwo");
  const EntryPoint &R2 = entry(B, "read:sumtwo:r2");
  EXPECT_FALSE(Fn.IsReadEntry);
  EXPECT_TRUE(R2.IsReadEntry);
  // Re-entering at r2 no longer reads a, but still reads b and writes
  // out.
  size_t InA = SIZE_MAX, InB = SIZE_MAX, InOut = SIZE_MAX;
  for (size_t C = 0; C < B.S.numClasses(); ++C) {
    const RegionClass &RC = B.S.Classes[C];
    if (RC.K != RegionClass::Input)
      continue;
    if (RC.P == 0)
      InA = C;
    else if (RC.P == 1)
      InB = C;
    else if (RC.P == 2)
      InOut = C;
  }
  ASSERT_NE(InA, SIZE_MAX);
  ASSERT_NE(InB, SIZE_MAX);
  ASSERT_NE(InOut, SIZE_MAX);
  EXPECT_TRUE(Fn.Reads.test(InA));
  EXPECT_FALSE(R2.Reads.test(InA));
  EXPECT_TRUE(R2.Reads.test(InB));
  EXPECT_TRUE(R2.Writes.test(InOut));
}

//===----------------------------------------------------------------------===//
// Entry-pair classification
//===----------------------------------------------------------------------===//

TEST(Interference, IndependentWritersAreDisjoint) {
  Built B = build(R"(
func wleft(modref* l) {
  var int z;
  e: z := 1; goto w;
  w: write(l, z); goto f;
  f: done;
}
func wright(modref* r) {
  var int z;
  e: z := 2; goto w;
  w: write(r, z); goto f;
  f: done;
}
)");
  PairRelation Rel =
      B.S.classify(entry(B, "fn:wleft"), entry(B, "fn:wright"));
  EXPECT_EQ(Rel, PairRelation::Disjoint);
}

TEST(Interference, ReaderWriterOfSharedStructureAreOrdered) {
  Built B = build(R"(
func reader(modref* m) {
  var int v;
  e: v := read m; goto f;
  f: done;
}
func writer(modref* m) {
  var int z;
  e: z := 1; goto w;
  w: write(m, z); goto f;
  f: done;
}
func driver(modref* s) {
  e: call reader(s); goto c2;
  c2: call writer(s); goto f;
  f: done;
}
)");
  // The driver binds the same structure to both: the pair overlaps in
  // exactly one direction.
  EXPECT_EQ(B.S.classify(entry(B, "fn:reader"), entry(B, "fn:writer")),
            PairRelation::Ordered);
  // Two readers never conflict.
  EXPECT_EQ(B.S.classify(entry(B, "fn:reader"), entry(B, "fn:reader")),
            PairRelation::Disjoint);
}

TEST(Interference, SharedWritersConflict) {
  Built B = build(R"(
func wa(modref* m) {
  var int z;
  e: z := 1; goto w;
  w: write(m, z); goto f;
  f: done;
}
func wb(modref* m) {
  var int z;
  e: z := 2; goto w;
  w: write(m, z); goto f;
  f: done;
}
func driver(modref* s) {
  e: call wa(s); goto c2;
  c2: call wb(s); goto f;
  f: done;
}
)");
  EXPECT_EQ(B.S.classify(entry(B, "fn:wa"), entry(B, "fn:wb")),
            PairRelation::Conflicting);
}

TEST(Interference, UnknownOverlapsEverything) {
  Built B = build(R"(
func wild(int a, int b) {
  var modref* t; var int z;
  e: t := add(a, b); goto z1;
  z1: z := 1; goto w;
  w: write(t, z); goto f;
  f: done;
}
func tame(modref* m) {
  var int v;
  e: v := read m; goto f;
  f: done;
}
)");
  const EntryPoint &Wild = entry(B, "fn:wild");
  EXPECT_TRUE(Wild.Writes.test(B.S.UnknownClass));
  // An unknown write is never disjoint from any non-empty effect set.
  EXPECT_NE(B.S.classify(Wild, entry(B, "fn:tame")),
            PairRelation::Disjoint);
  // The write-site record carries the unknown bit cl-lint keys on.
  ASSERT_EQ(B.S.Funcs[0].Writes.size(), 1u);
  EXPECT_TRUE(B.S.Funcs[0].Writes[0].Global.test(B.S.UnknownClass));
}

TEST(Interference, TailRecursionBindsParamsAcrossCycle) {
  // A list-walker that tails itself on the loaded tail: the recursive
  // binding must stabilize (container-collapsed contents) and the walk
  // must read its own input class.
  Built B = build(R"(
func walk(modref* l, modref* out) {
  var int* c; var int v; var int i0;
  var modref* t;
  rd: c := read l; goto br;
  br: if c then goto cons else goto nil;
  nil: v := 0; goto wz;
  wz: write(out, v); goto f;
  f: done;
  cons: i0 := 0; goto ld;
  ld: t := c[i0]; goto rec;
  rec: nop; tail walk(t, out);
}
)");
  size_t InL = SIZE_MAX, InOut = SIZE_MAX;
  for (size_t C = 0; C < B.S.numClasses(); ++C) {
    const RegionClass &RC = B.S.Classes[C];
    if (RC.K != RegionClass::Input)
      continue;
    (RC.P == 0 ? InL : InOut) = C;
  }
  ASSERT_NE(InL, SIZE_MAX);
  ASSERT_NE(InOut, SIZE_MAX);
  const EntryPoint &Fn = entry(B, "fn:walk");
  EXPECT_TRUE(Fn.Reads.test(InL));
  EXPECT_TRUE(Fn.Writes.test(InOut));
  // Self-tail rebinds l to the list's contents — which collapse back to
  // the input class, so the binding set stays small and the effect sets
  // never mention classes of other functions.
  EXPECT_TRUE(B.S.ParamBind[0][0].test(InL));
}
