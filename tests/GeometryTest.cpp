//===- tests/GeometryTest.cpp - Geometry benchmark correctness ------------===//

#include "apps/Geometry.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ceal;
using namespace ceal::apps;

namespace {

std::vector<const Point *> hullFromRuntime(Runtime &RT, Modref *Dst) {
  std::vector<const Point *> Result;
  for (auto *C = RT.derefT<Cell *>(Dst); C; C = RT.derefT<Cell *>(C->Tail))
    Result.push_back(fromWord<const Point *>(C->Head));
  return Result;
}

std::vector<const Point *> asConst(const std::vector<Point *> &Pts) {
  return {Pts.begin(), Pts.end()};
}

std::vector<const Point *> activePoints(Runtime &RT, const ListHandle &L) {
  std::vector<const Point *> Result;
  for (auto *C = RT.derefT<Cell *>(L.Head); C; C = RT.derefT<Cell *>(C->Tail))
    Result.push_back(fromWord<const Point *>(C->Head));
  return Result;
}

} // namespace

TEST(Geometry, QuickhullMatchesConventional) {
  Rng R(41);
  Runtime RT;
  std::vector<Point *> Pts = randomPoints(RT, R, 400);
  ListHandle L = buildPointList(RT, Pts);
  Modref *Dst = RT.modref();
  RT.runCore<&quickhullCore>(L.Head, Dst);
  EXPECT_EQ(hullFromRuntime(RT, Dst), conv::quickhull(asConst(Pts)));
}

TEST(Geometry, QuickhullTinyInputs) {
  Rng R(42);
  for (size_t N : {0u, 1u, 2u, 3u, 4u}) {
    Runtime RT;
    std::vector<Point *> Pts = randomPoints(RT, R, N);
    ListHandle L = buildPointList(RT, Pts);
    Modref *Dst = RT.modref();
    RT.runCore<&quickhullCore>(L.Head, Dst);
    EXPECT_EQ(hullFromRuntime(RT, Dst), conv::quickhull(asConst(Pts)))
        << "N=" << N;
  }
}

TEST(Geometry, QuickhullCollinearPoints) {
  Runtime RT;
  std::vector<Point *> Pts;
  for (int I = 0; I < 10; ++I) {
    auto *P = static_cast<Point *>(RT.arena().allocate(sizeof(Point)));
    P->X = I * 0.1;
    P->Y = I * 0.2; // All on one line.
    Pts.push_back(P);
  }
  ListHandle L = buildPointList(RT, Pts);
  Modref *Dst = RT.modref();
  RT.runCore<&quickhullCore>(L.Head, Dst);
  EXPECT_EQ(hullFromRuntime(RT, Dst), conv::quickhull(asConst(Pts)));
}

TEST(Geometry, QuickhullEditSweep) {
  Rng R(43);
  Runtime RT;
  std::vector<Point *> Pts = randomPoints(RT, R, 250);
  ListHandle L = buildPointList(RT, Pts);
  Modref *Dst = RT.modref();
  RT.runCore<&quickhullCore>(L.Head, Dst);
  for (int Edit = 0; Edit < 40; ++Edit) {
    size_t Index = R.below(L.Cells.size());
    detachCell(RT, L, Index);
    RT.propagate();
    ASSERT_EQ(hullFromRuntime(RT, Dst),
              conv::quickhull(activePoints(RT, L)))
        << "after deleting index " << Index;
    reattachCell(RT, L, Index);
    RT.propagate();
    ASSERT_EQ(hullFromRuntime(RT, Dst),
              conv::quickhull(activePoints(RT, L)))
        << "after reinserting index " << Index;
  }
}

TEST(Geometry, QuickhullDeletingHullVertexUpdates) {
  // Force a structural change: delete the extreme point itself.
  Rng R(44);
  Runtime RT;
  std::vector<Point *> Pts = randomPoints(RT, R, 100);
  // Add a far-out point that must be on the hull.
  auto *Far = static_cast<Point *>(RT.arena().allocate(sizeof(Point)));
  Far->X = 10.0;
  Far->Y = 0.5;
  Pts.push_back(Far);
  ListHandle L = buildPointList(RT, Pts);
  Modref *Dst = RT.modref();
  RT.runCore<&quickhullCore>(L.Head, Dst);
  std::vector<const Point *> Hull = hullFromRuntime(RT, Dst);
  EXPECT_NE(std::find(Hull.begin(), Hull.end(), Far), Hull.end());

  detachCell(RT, L, Pts.size() - 1);
  RT.propagate();
  std::vector<const Point *> Hull2 = hullFromRuntime(RT, Dst);
  EXPECT_EQ(std::find(Hull2.begin(), Hull2.end(), Far), Hull2.end());
  EXPECT_EQ(Hull2, conv::quickhull(activePoints(RT, L)));
}

TEST(Geometry, DiameterMatchesAndUpdates) {
  Rng R(45);
  Runtime RT;
  std::vector<Point *> Pts = randomPoints(RT, R, 300);
  ListHandle L = buildPointList(RT, Pts);
  Modref *Dst = RT.modref();
  RT.runCore<&diameterCore>(L.Head, Dst);
  EXPECT_DOUBLE_EQ(RT.derefT<double>(Dst), conv::diameter2(asConst(Pts)));

  for (int Edit = 0; Edit < 20; ++Edit) {
    size_t Index = R.below(L.Cells.size());
    detachCell(RT, L, Index);
    RT.propagate();
    ASSERT_DOUBLE_EQ(RT.derefT<double>(Dst),
                     conv::diameter2(activePoints(RT, L)));
    reattachCell(RT, L, Index);
    RT.propagate();
    ASSERT_DOUBLE_EQ(RT.derefT<double>(Dst),
                     conv::diameter2(activePoints(RT, L)));
  }
}

TEST(Geometry, DistanceMatchesAndUpdates) {
  // Two unit squares separated by a gap, as in the paper's setup.
  Rng R(46);
  Runtime RT;
  std::vector<Point *> A = randomPoints(RT, R, 200, 0.0);
  std::vector<Point *> B = randomPoints(RT, R, 200, 2.5);
  ListHandle LA = buildPointList(RT, A);
  ListHandle LB = buildPointList(RT, B);
  Modref *Dst = RT.modref();
  RT.runCore<&distanceCore>(LA.Head, LB.Head, Dst);
  EXPECT_DOUBLE_EQ(RT.derefT<double>(Dst),
                   conv::distance2(asConst(A), asConst(B)));

  for (int Edit = 0; Edit < 16; ++Edit) {
    bool EditA = R.flip();
    ListHandle &L = EditA ? LA : LB;
    size_t Index = R.below(L.Cells.size());
    detachCell(RT, L, Index);
    RT.propagate();
    ASSERT_DOUBLE_EQ(
        RT.derefT<double>(Dst),
        conv::distance2(activePoints(RT, LA), activePoints(RT, LB)));
    reattachCell(RT, L, Index);
    RT.propagate();
    ASSERT_DOUBLE_EQ(
        RT.derefT<double>(Dst),
        conv::distance2(activePoints(RT, LA), activePoints(RT, LB)));
  }
}

TEST(Geometry, QuickhullUpdateIsSublinear) {
  Rng R(47);
  Runtime RT;
  std::vector<Point *> Pts = randomPoints(RT, R, 4000);
  ListHandle L = buildPointList(RT, Pts);
  Modref *Dst = RT.modref();
  RT.runCore<&quickhullCore>(L.Head, Dst);
  uint64_t Before = RT.stats().ReadsTraced + RT.stats().ReadsReexecuted;
  int Updates = 0;
  for (size_t I = 100; I < 3900; I += 500, Updates += 2) {
    detachCell(RT, L, I);
    RT.propagate();
    reattachCell(RT, L, I);
    RT.propagate();
  }
  uint64_t Work = RT.stats().ReadsTraced + RT.stats().ReadsReexecuted - Before;
  // Interior points mostly touch a filter chain and a few reduce runs;
  // the whole computation performs >> 100k reads from scratch.
  EXPECT_LT(Work / Updates, 2500u);
}
