//===- tests/support/OracleHarness.h - Propagation oracle driver -*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic change-propagation oracle: drive any benchmark app through N
/// random change sequences, and after every propagation compare the
/// self-adjusting output word-for-word against a from-scratch conventional
/// recomputation (the paper's correctness statement for propagate) while
/// the trace sanitizer (TraceAudit) checks the runtime's structural
/// invariants.
///
/// An app plugs in as an AppModel: how to build the input and run the
/// core(s), how to apply one random meta-level change, how to read the
/// self-adjusting output, and how to compute the expected output
/// conventionally. The harness owns sequencing, seeding, auditing,
/// comparison, and shrinking.
///
/// Seeding: sequence s uses Seed = mixSeed(BaseSeed, s); within it, setup
/// draws from stream 0 and change step k from stream k+1 (gen::mixSeed).
/// Streams are independent, so replaying any subset of steps reproduces
/// their draws exactly — which is what makes the shrinker sound: it
/// re-runs the sequence with chunks of steps removed (ddmin-style) and
/// reports the smallest step set that still fails, plus the seed to
/// replay it.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_TESTS_SUPPORT_ORACLEHARNESS_H
#define CEAL_TESTS_SUPPORT_ORACLEHARNESS_H

#include "runtime/Runtime.h"
#include "runtime/TraceAudit.h"
#include "tests/support/Generators.h"

#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace ceal {
namespace harness {

/// One benchmark app under oracle test. Models are stateful: the harness
/// constructs a fresh model (and a fresh Runtime) per sequence.
class AppModel {
public:
  virtual ~AppModel() = default;

  /// Builds the input structures and runs the core(s) from scratch.
  virtual void setup(Runtime &RT, Rng &R) = 0;

  /// Applies one random meta-level change (insert/delete/modify). The
  /// harness propagates afterwards; models must keep whatever mutator
  /// state they need for expected().
  virtual void applyChange(Runtime &RT, Rng &R) = 0;

  /// The self-adjusting output, read through the meta interface.
  virtual std::vector<Word> output(Runtime &RT) = 0;

  /// The expected output, recomputed from scratch conventionally from the
  /// current (edited) input.
  virtual std::vector<Word> expected(Runtime &RT) = 0;

  /// A copy of this model's *mutator* state (what expected() computes
  /// from), independent of any Runtime. The snapshot round-trip harness
  /// clones the continuously-running model at the checkpoint so the
  /// reloaded runtime gets a model whose bookkeeping matches the restored
  /// trace. Models whose state is memberwise-copyable implement this with
  /// their copy constructor; the default (null) opts the model out of
  /// snapshot harness runs.
  virtual std::unique_ptr<AppModel> clone() const { return nullptr; }
};

using ModelFactory = std::function<std::unique_ptr<AppModel>()>;

/// A Runtime::Config with the sanitizer fully on — the default for oracle
/// runs, so every propagation is audited.
inline Runtime::Config auditedConfig() {
  Runtime::Config C;
  C.Audit = AuditLevel::EveryPropagation;
  return C;
}

struct HarnessOptions {
  /// Independent random change sequences (each gets a fresh model).
  int Sequences = 50;
  /// Change+propagate steps per sequence.
  int Changes = 8;
  /// Root seed; sequence s runs with mixSeed(BaseSeed, s).
  uint64_t BaseSeed = 0xcea1;
  /// Runtime configuration for every sequence (audit on by default; note
  /// the Runtime's own hooks abort on violation, while the harness's
  /// explicit inspect() reports gracefully first).
  Runtime::Config Config = auditedConfig();
  /// Minimize the failing step set before reporting.
  bool Shrink = true;
  /// Optional extra per-sequence check, run after the last step (e.g.
  /// "the simulated GC actually ran"). Return "" for pass.
  std::function<std::string(Runtime &)> SequenceCheck;
};

namespace detail {

inline std::string describeMismatch(const std::vector<Word> &Got,
                                    const std::vector<Word> &Want) {
  std::ostringstream OS;
  if (Got.size() != Want.size())
    OS << "output has " << Got.size() << " words, expected " << Want.size();
  for (size_t I = 0; I < Got.size() && I < Want.size(); ++I)
    if (Got[I] != Want[I]) {
      if (OS.tellp() > 0)
        OS << "; ";
      OS << "word " << I << " is 0x" << std::hex << Got[I] << ", expected 0x"
         << Want[I];
      break;
    }
  return OS.str();
}

/// Audits + compares; returns "" or a description prefixed with \p When.
inline std::string checkState(Runtime &RT, AppModel &Model, const char *When,
                              int Step) {
  TraceAudit::Report Audit = TraceAudit::inspect(RT);
  std::ostringstream OS;
  if (!Audit.ok())
    OS << When << " (step " << Step << "): trace audit found "
       << Audit.Violations.size() << " violation(s):\n"
       << Audit.summary();
  std::vector<Word> Got = Model.output(RT);
  std::vector<Word> Want = Model.expected(RT);
  if (Got != Want) {
    if (OS.tellp() > 0)
      OS << "\n";
    OS << When << " (step " << Step
       << "): output mismatch: " << describeMismatch(Got, Want);
  }
  return OS.str();
}

} // namespace detail

/// Runs one sequence applying exactly the change steps listed in \p Steps
/// (indices into [0, Opt.Changes), ascending). Returns "" on success or a
/// failure description. Exposed for replaying a shrunk failure by hand.
inline std::string runSequence(const ModelFactory &Make,
                               const HarnessOptions &Opt, uint64_t Seed,
                               const std::vector<int> &Steps) {
  Runtime RT(Opt.Config);
  std::unique_ptr<AppModel> Model = Make();
  {
    Rng SetupRng(gen::mixSeed(Seed, 0));
    Model->setup(RT, SetupRng);
  }
  if (std::string Err = detail::checkState(RT, *Model, "after setup", -1);
      !Err.empty())
    return Err;
  for (int Step : Steps) {
    Rng ChangeRng(gen::mixSeed(Seed, static_cast<uint64_t>(Step) + 1));
    Model->applyChange(RT, ChangeRng);
    RT.propagate();
    if (std::string Err =
            detail::checkState(RT, *Model, "after propagate", Step);
        !Err.empty())
      return Err;
  }
  if (Opt.SequenceCheck)
    if (std::string Err = Opt.SequenceCheck(RT); !Err.empty())
      return "sequence check: " + Err;
  return "";
}

namespace detail {

/// ddmin-style minimization: repeatedly drop chunks of steps while the
/// failure reproduces. Each candidate subset is a full fresh replay, which
/// per-step seed streams make faithful.
inline std::vector<int> shrinkSteps(const ModelFactory &Make,
                                    const HarnessOptions &Opt, uint64_t Seed,
                                    std::vector<int> Steps) {
  auto Fails = [&](const std::vector<int> &Subset) {
    return !runSequence(Make, Opt, Seed, Subset).empty();
  };
  size_t Chunk = Steps.size() / 2;
  while (Chunk > 0) {
    bool Removed = false;
    for (size_t Begin = 0; Begin + Chunk <= Steps.size();) {
      std::vector<int> Candidate;
      Candidate.reserve(Steps.size() - Chunk);
      Candidate.insert(Candidate.end(), Steps.begin(),
                       Steps.begin() + static_cast<ptrdiff_t>(Begin));
      Candidate.insert(Candidate.end(),
                       Steps.begin() + static_cast<ptrdiff_t>(Begin + Chunk),
                       Steps.end());
      if (Fails(Candidate)) {
        Steps = std::move(Candidate);
        Removed = true; // Retry the same Begin against the shorter list.
      } else {
        Begin += Chunk;
      }
    }
    if (!Removed || Chunk == 1)
      Chunk /= 2;
    else
      Chunk = std::min(Chunk, Steps.size() / 2);
    if (Chunk == 0 && Steps.size() > 1 && Removed)
      Chunk = 1;
  }
  return Steps;
}

} // namespace detail

/// Runs Opt.Sequences independent random change sequences. Returns "" if
/// every propagation matched the oracle and passed the audit; otherwise a
/// report with the sequence seed, the (shrunk) failing step list, and the
/// failure description — everything needed to replay via runSequence().
inline std::string runOracleHarness(const ModelFactory &Make,
                                    const HarnessOptions &Opt = {}) {
  for (int Seq = 0; Seq < Opt.Sequences; ++Seq) {
    uint64_t Seed = gen::mixSeed(Opt.BaseSeed, static_cast<uint64_t>(Seq));
    std::vector<int> Steps(static_cast<size_t>(Opt.Changes));
    for (int I = 0; I < Opt.Changes; ++I)
      Steps[static_cast<size_t>(I)] = I;
    std::string Err = runSequence(Make, Opt, Seed, Steps);
    if (Err.empty())
      continue;
    if (Opt.Shrink) {
      std::vector<int> Shrunk =
          detail::shrinkSteps(Make, Opt, Seed, Steps);
      Err = runSequence(Make, Opt, Seed, Shrunk);
      if (Err.empty()) // Unstable failure; fall back to the full set.
        Shrunk = Steps, Err = runSequence(Make, Opt, Seed, Steps);
      std::ostringstream OS;
      OS << "sequence " << Seq << " (" << gen::seedTag(Seed)
         << ") failed; minimal steps {";
      for (size_t I = 0; I < Shrunk.size(); ++I)
        OS << (I ? "," : "") << Shrunk[I];
      OS << "} of " << Opt.Changes << ": " << Err;
      return OS.str();
    }
    return "sequence " + std::to_string(Seq) + " (" + gen::seedTag(Seed) +
           ") failed: " + Err;
  }
  return "";
}

} // namespace harness
} // namespace ceal

#endif // CEAL_TESTS_SUPPORT_ORACLEHARNESS_H
