//===- tests/support/OracleModels.h - AppModels for the oracle ---*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AppModel implementations for every benchmark application: the list
/// primitives (map, filter, reverse, the reductions, both sorts), the
/// expression trees, tree contraction, and the geometry cores (quickhull,
/// diameter, distance). Each pairs a self-adjusting core with its
/// conventional oracle from src/apps or src/baseline.
///
/// List edits follow a LIFO detach/reattach discipline: reattaching always
/// undoes the most recent detach, so a reattached cell's stored tail still
/// points at its then-successor and the spine returns to a consistent
/// state (the same discipline the per-app sweeps used, generalized to
/// nesting).
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_TESTS_SUPPORT_ORACLEMODELS_H
#define CEAL_TESTS_SUPPORT_ORACLEMODELS_H

#include "apps/ExpTrees.h"
#include "apps/Geometry.h"
#include "apps/ListApps.h"
#include "apps/ListConv.h"
#include "apps/TreeContraction.h"
#include "tests/support/OracleHarness.h"

#include <algorithm>
#include <cstring>

namespace ceal {
namespace harness {

//===----------------------------------------------------------------------===//
// List edit plan: random detach/reattach with LIFO reattachment
//===----------------------------------------------------------------------===//

/// Mutator-side edit driver for one modifiable list. Detaching requires
/// the cell's construction predecessor to be attached (so the written
/// tail modifiable is on the live spine); reattachment is LIFO.
struct ListEditor {
  apps::ListHandle L;
  std::vector<bool> Attached;
  std::vector<size_t> DetachStack;
  /// Never detach below this many live cells (geometry cores want
  /// non-degenerate point sets).
  size_t MinLive = 0;

  void init(apps::ListHandle Handle) {
    L = std::move(Handle);
    Attached.assign(L.Cells.size(), true);
    DetachStack.clear();
  }

  size_t liveCount() const {
    return L.Cells.size() - DetachStack.size();
  }

  void randomEdit(Runtime &RT, Rng &R) {
    bool CanReattach = !DetachStack.empty();
    bool WantDetach = !CanReattach || R.flip();
    if (WantDetach && liveCount() > MinLive) {
      std::vector<size_t> Eligible;
      for (size_t I = 0; I < L.Cells.size(); ++I)
        if (Attached[I] && (I == 0 || Attached[I - 1]))
          Eligible.push_back(I);
      if (!Eligible.empty()) {
        size_t Index = Eligible[R.below(Eligible.size())];
        apps::detachCell(RT, L, Index);
        Attached[Index] = false;
        DetachStack.push_back(Index);
        return;
      }
    }
    if (CanReattach) {
      size_t Index = DetachStack.back();
      DetachStack.pop_back();
      apps::reattachCell(RT, L, Index);
      Attached[Index] = true;
    }
    // Neither edit possible (empty list): a no-op change is still a valid
    // propagation to check.
  }
};

//===----------------------------------------------------------------------===//
// List primitives
//===----------------------------------------------------------------------===//

/// All seven list primitives over one shared input list; the output is
/// every result list/value concatenated with length prefixes, so a
/// mismatch pinpoints the primitive by offset.
class ListModel : public AppModel {
public:
  /// Input sizes are drawn uniformly from [MinN, MaxN]; the heap-pressure
  /// suites pin the range so the trace reliably exceeds the heap limit.
  explicit ListModel(size_t MinN = 0, size_t MaxN = 64)
      : MinN(MinN), MaxN(MaxN) {}

  static Word mapPaper(Word X, Word) { return X / 3 + X / 7 + X / 9; }
  static bool filterPaper(Word X, Word) { return (mapPaper(X, 0) & 1) == 0; }
  static Word combineMin(Word A, Word B, Word) { return A < B ? A : B; }
  static Word combineSum(Word A, Word B, Word) { return A + B; }
  static int cmpWord(Word A, Word B) { return A < B ? -1 : (A > B ? 1 : 0); }

  void setup(Runtime &RT, Rng &R) override {
    std::vector<Word> In =
        gen::randomWords(R, MinN + R.below(MaxN - MinN + 1));
    Edit.init(apps::buildList(RT, In));
    for (Modref *&D : Dst)
      D = RT.modref();
    RT.runCore<&apps::mapCore>(Edit.L.Head, Dst[0], &mapPaper, Word(0));
    RT.runCore<&apps::filterCore>(Edit.L.Head, Dst[1], &filterPaper, Word(0));
    RT.runCore<&apps::reverseCore>(Edit.L.Head, Dst[2]);
    RT.runCore<&apps::reduceCore>(Edit.L.Head, Dst[3], &combineMin, Word(0),
                                  Word(UINT64_MAX));
    RT.runCore<&apps::reduceCore>(Edit.L.Head, Dst[4], &combineSum, Word(0),
                                  Word(0));
    RT.runCore<&apps::quicksortCore>(Edit.L.Head, Dst[5], &cmpWord);
    RT.runCore<&apps::mergesortCore>(Edit.L.Head, Dst[6], &cmpWord);
  }

  void applyChange(Runtime &RT, Rng &R) override { Edit.randomEdit(RT, R); }

  std::vector<Word> output(Runtime &RT) override {
    std::vector<Word> Out;
    for (int I : {0, 1, 2, 5, 6})
      appendList(Out, apps::readList(RT, Dst[static_cast<size_t>(I)]));
    Out.push_back(RT.deref(Dst[3]));
    Out.push_back(RT.deref(Dst[4]));
    return Out;
  }

  std::vector<Word> expected(Runtime &RT) override {
    std::vector<Word> Cur = apps::readList(RT, Edit.L.Head);
    Arena A;
    apps::conv::PCell *In = apps::conv::buildList(A, Cur);
    std::vector<Word> Out;
    appendList(Out, apps::conv::toVector(
                        apps::conv::mapList(A, In, &mapPaper, 0)));
    appendList(Out, apps::conv::toVector(
                        apps::conv::filterList(A, In, &filterPaper, 0)));
    std::vector<Word> Rev(Cur.rbegin(), Cur.rend());
    appendList(Out, Rev);
    std::vector<Word> Sorted = Cur;
    std::sort(Sorted.begin(), Sorted.end());
    appendList(Out, Sorted);
    appendList(Out, Sorted);
    Out.push_back(apps::conv::reduceList(In, &combineMin, 0, UINT64_MAX));
    Out.push_back(apps::conv::reduceList(In, &combineSum, 0, 0));
    return Out;
  }

  std::unique_ptr<AppModel> clone() const override {
    return std::make_unique<ListModel>(*this);
  }

private:
  static void appendList(std::vector<Word> &Out, const std::vector<Word> &L) {
    Out.push_back(L.size());
    Out.insert(Out.end(), L.begin(), L.end());
  }

  size_t MinN, MaxN;
  ListEditor Edit;
  Modref *Dst[7] = {};
};

//===----------------------------------------------------------------------===//
// Expression trees
//===----------------------------------------------------------------------===//

class ExpTreeModel : public AppModel {
public:
  void setup(Runtime &RT, Rng &R) override {
    Tree = apps::buildExpTree(RT, R, 1 + R.below(64));
    Res = RT.modref();
    RT.runCore<&apps::evalExpCore>(Tree.Root, Res);
  }

  void applyChange(Runtime &RT, Rng &R) override {
    size_t Index = R.below(Tree.Leaves.size());
    apps::replaceLeaf(RT, Tree, Index, R.unit() * 10.0 - 5.0);
  }

  std::vector<Word> output(Runtime &RT) override { return {RT.deref(Res)}; }

  std::vector<Word> expected(Runtime &RT) override {
    // The core evaluates the same operation tree in the same association
    // order, so the doubles are bitwise identical.
    return {toWord(apps::evalExpConventional(RT, Tree.Root))};
  }

  std::unique_ptr<AppModel> clone() const override {
    return std::make_unique<ExpTreeModel>(*this);
  }

private:
  apps::ExpTree Tree;
  Modref *Res = nullptr;
};

//===----------------------------------------------------------------------===//
// Tree contraction
//===----------------------------------------------------------------------===//

class TreeContractionModel : public AppModel {
public:
  void setup(Runtime &RT, Rng &R) override {
    Forest = apps::buildRandomTree(RT, R, 1 + R.below(64));
    Dst = RT.modref();
    RT.runCore<&apps::treeContractCore>(Forest.Live.Head, Forest.Table0,
                                        Word(Forest.N), Dst);
  }

  void applyChange(Runtime &RT, Rng &R) override {
    // Deleted edges can be reinserted in any order: each deletion freed
    // its parent slot and made its child a root, and no other edit can
    // claim either (inserts come only from this pool).
    bool WantInsert = !Deleted.empty() && R.flip();
    if (!WantInsert) {
      auto Edges = Forest.edges();
      if (!Edges.empty()) {
        auto [P, C] = Edges[R.below(Edges.size())];
        apps::tcDeleteEdge(RT, Forest, P, C);
        Deleted.push_back({P, C});
        return;
      }
    }
    if (!Deleted.empty()) {
      size_t Pick = R.below(Deleted.size());
      auto [P, C] = Deleted[Pick];
      Deleted[Pick] = Deleted.back();
      Deleted.pop_back();
      apps::tcInsertEdge(RT, Forest, P, C);
    }
  }

  std::vector<Word> output(Runtime &RT) override { return {RT.deref(Dst)}; }

  std::vector<Word> expected(Runtime &) override {
    return {apps::tcContractConventional(Forest.Adj)};
  }

  std::unique_ptr<AppModel> clone() const override {
    return std::make_unique<TreeContractionModel>(*this);
  }

private:
  apps::TcForest Forest;
  Modref *Dst = nullptr;
  std::vector<std::pair<Word, Word>> Deleted;
};

//===----------------------------------------------------------------------===//
// Geometry
//===----------------------------------------------------------------------===//

/// Shared base: a point list under LIFO edits, plus helpers to read the
/// active points back for the conventional oracles.
class GeometryModelBase : public AppModel {
protected:
  std::vector<const apps::Point *> activePoints(Runtime &RT,
                                                const ListEditor &E) {
    std::vector<const apps::Point *> Pts;
    for (Word W : apps::readList(RT, E.L.Head))
      Pts.push_back(fromWord<const apps::Point *>(W));
    return Pts;
  }

  ListEditor makePointList(Runtime &RT, Rng &R, size_t MinN, size_t MaxN,
                           double ShiftX) {
    size_t N = MinN + R.below(MaxN - MinN + 1);
    std::vector<apps::Point *> Pts = apps::randomPoints(RT, R, N, ShiftX);
    ListEditor E;
    E.init(apps::buildPointList(RT, Pts));
    E.MinLive = 3; // Keep the hulls non-degenerate.
    return E;
  }
};

class QuickhullModel : public GeometryModelBase {
public:
  void setup(Runtime &RT, Rng &R) override {
    Edit = makePointList(RT, R, 8, 56, 0.0);
    Dst = RT.modref();
    RT.runCore<&apps::quickhullCore>(Edit.L.Head, Dst);
  }

  void applyChange(Runtime &RT, Rng &R) override { Edit.randomEdit(RT, R); }

  std::vector<Word> output(Runtime &RT) override {
    return apps::readList(RT, Dst);
  }

  std::vector<Word> expected(Runtime &RT) override {
    // conv::quickhull uses the same deterministic tie-breaks, so hull
    // vertex sequences compare pointer-for-pointer.
    std::vector<Word> Out;
    for (const apps::Point *P : apps::conv::quickhull(activePoints(RT, Edit)))
      Out.push_back(toWord(P));
    return Out;
  }

  std::unique_ptr<AppModel> clone() const override {
    return std::make_unique<QuickhullModel>(*this);
  }

private:
  ListEditor Edit;
  Modref *Dst = nullptr;
};

class DiameterModel : public GeometryModelBase {
public:
  void setup(Runtime &RT, Rng &R) override {
    Edit = makePointList(RT, R, 12, 56, 0.0);
    Dst = RT.modref();
    RT.runCore<&apps::diameterCore>(Edit.L.Head, Dst);
  }

  void applyChange(Runtime &RT, Rng &R) override { Edit.randomEdit(RT, R); }

  std::vector<Word> output(Runtime &RT) override { return {RT.deref(Dst)}; }

  std::vector<Word> expected(Runtime &RT) override {
    return {toWord(apps::conv::diameter2(activePoints(RT, Edit)))};
  }

  std::unique_ptr<AppModel> clone() const override {
    return std::make_unique<DiameterModel>(*this);
  }

private:
  ListEditor Edit;
  Modref *Dst = nullptr;
};

class DistanceModel : public GeometryModelBase {
public:
  void setup(Runtime &RT, Rng &R) override {
    // Two well-separated squares, as in the paper's distance inputs.
    EditA = makePointList(RT, R, 12, 40, 0.0);
    EditB = makePointList(RT, R, 12, 40, 3.0);
    Dst = RT.modref();
    RT.runCore<&apps::distanceCore>(EditA.L.Head, EditB.L.Head, Dst);
  }

  void applyChange(Runtime &RT, Rng &R) override {
    (R.flip() ? EditA : EditB).randomEdit(RT, R);
  }

  std::vector<Word> output(Runtime &RT) override { return {RT.deref(Dst)}; }

  std::vector<Word> expected(Runtime &RT) override {
    return {toWord(apps::conv::distance2(activePoints(RT, EditA),
                                         activePoints(RT, EditB)))};
  }

  std::unique_ptr<AppModel> clone() const override {
    return std::make_unique<DistanceModel>(*this);
  }

private:
  ListEditor EditA, EditB;
  Modref *Dst = nullptr;
};

} // namespace harness
} // namespace ceal

#endif // CEAL_TESTS_SUPPORT_ORACLEMODELS_H
