//===- tests/support/Generators.h - Shared randomized-test inputs -*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One Rng-driven generator vocabulary for every randomized suite (parser
/// fuzzing, the oracle harness, workload builders), so seeds mean the same
/// thing everywhere and a failure message always carries enough to replay:
/// construct `Rng(<printed seed>)` and call the same generator.
///
/// Derived seeds come from mixSeed(Base, Step): each step of a change
/// sequence gets an independent stream, so any *subset* of steps replays
/// identically — the property the harness's shrinker relies on.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_TESTS_SUPPORT_GENERATORS_H
#define CEAL_TESTS_SUPPORT_GENERATORS_H

#include "runtime/Word.h"
#include "support/Random.h"

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace ceal {
namespace gen {

/// Derives an independent seed for sub-stream \p Step of \p Base. Streams
/// for different steps share no state, so replaying steps {3, 7} of a
/// sequence produces exactly the draws those steps made in the full run.
inline uint64_t mixSeed(uint64_t Base, uint64_t Step) {
  uint64_t State = Base * 0x9e3779b97f4a7c15ULL + (Step + 1);
  return splitMix64(State);
}

/// "seed=0x1234" — the replay handle printed with every failure.
inline std::string seedTag(uint64_t Seed) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "seed=0x%llx", (unsigned long long)Seed);
  return Buf;
}

/// Uniform random words below \p Bound.
inline std::vector<Word> randomWords(Rng &R, size_t N, Word Bound = 1000000) {
  std::vector<Word> V(N);
  for (Word &W : V)
    W = R.below(Bound);
  return V;
}

//===----------------------------------------------------------------------===//
// Source fuzzing (parser/verifier robustness)
//===----------------------------------------------------------------------===//

/// Character alphabet for source mutation: CL punctuation, identifier
/// characters, and keyword fragments, weighted to keep some mutants
/// parseable.
inline const char *sourceAlphabet() {
  return "abcxyz019(){}[];:=*,_ \n\tfunc goto tail read";
}

/// Mutates \p Base with 1..\p MaxEdits random character edits (replace,
/// delete a short span, insert) drawn from sourceAlphabet().
inline std::string mutateSource(Rng &R, const std::string &Base,
                                int MaxEdits = 8) {
  std::string Mutated = Base;
  const char *Alphabet = sourceAlphabet();
  size_t AlphabetLen = std::char_traits<char>::length(Alphabet);
  int Edits = 1 + static_cast<int>(R.below(static_cast<uint64_t>(MaxEdits)));
  for (int E = 0; E < Edits && !Mutated.empty(); ++E) {
    size_t Pos = R.below(Mutated.size());
    switch (R.below(3)) {
    case 0:
      Mutated[Pos] = Alphabet[R.below(AlphabetLen)];
      break;
    case 1:
      Mutated.erase(Pos, 1 + R.below(4));
      break;
    default:
      Mutated.insert(Pos, 1, Alphabet[R.below(AlphabetLen)]);
      break;
    }
  }
  return Mutated;
}

/// The CL token vocabulary used for random token-soup inputs.
inline const std::vector<const char *> &clTokens() {
  static const std::vector<const char *> Tokens = {
      "func",   "goto", "tail", "read", "write", "alloc",
      "modref", "call", "done", "if",   "then",  "else",
      "var",    "int",  "x",    "y",    "f",     "(",
      ")",      "{",    "}",    "[",    "]",     ";",
      ":",      ":=",   "*",    ",",    "42",    "-3"};
  return Tokens;
}

/// A random whitespace-joined token soup of \p MinLen..\p MaxLen tokens.
inline std::string tokenSoup(Rng &R, size_t MinLen = 5, size_t MaxLen = 125) {
  const auto &Tokens = clTokens();
  std::string Soup;
  size_t Len = MinLen + R.below(MaxLen - MinLen);
  for (size_t I = 0; I < Len; ++I) {
    Soup += Tokens[R.below(Tokens.size())];
    Soup += ' ';
  }
  return Soup;
}

} // namespace gen
} // namespace ceal

#endif // CEAL_TESTS_SUPPORT_GENERATORS_H
