//===- tests/support/Generators.h - Shared randomized-test inputs -*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One Rng-driven generator vocabulary for every randomized suite (parser
/// fuzzing, the oracle harness, workload builders), so seeds mean the same
/// thing everywhere and a failure message always carries enough to replay:
/// construct `Rng(<printed seed>)` and call the same generator.
///
/// Derived seeds come from mixSeed(Base, Step): each step of a change
/// sequence gets an independent stream, so any *subset* of steps replays
/// identically — the property the harness's shrinker relies on.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_TESTS_SUPPORT_GENERATORS_H
#define CEAL_TESTS_SUPPORT_GENERATORS_H

#include "cl/Builder.h"
#include "runtime/Word.h"
#include "support/Random.h"

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace ceal {
namespace gen {

/// Derives an independent seed for sub-stream \p Step of \p Base. Streams
/// for different steps share no state, so replaying steps {3, 7} of a
/// sequence produces exactly the draws those steps made in the full run.
inline uint64_t mixSeed(uint64_t Base, uint64_t Step) {
  uint64_t State = Base * 0x9e3779b97f4a7c15ULL + (Step + 1);
  return splitMix64(State);
}

/// "seed=0x1234" — the replay handle printed with every failure.
inline std::string seedTag(uint64_t Seed) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "seed=0x%llx", (unsigned long long)Seed);
  return Buf;
}

/// Uniform random words below \p Bound.
inline std::vector<Word> randomWords(Rng &R, size_t N, Word Bound = 1000000) {
  std::vector<Word> V(N);
  for (Word &W : V)
    W = R.below(Bound);
  return V;
}

//===----------------------------------------------------------------------===//
// Source fuzzing (parser/verifier robustness)
//===----------------------------------------------------------------------===//

/// Character alphabet for source mutation: CL punctuation, identifier
/// characters, and keyword fragments, weighted to keep some mutants
/// parseable.
inline const char *sourceAlphabet() {
  return "abcxyz019(){}[];:=*,_ \n\tfunc goto tail read";
}

/// Mutates \p Base with 1..\p MaxEdits random character edits (replace,
/// delete a short span, insert) drawn from sourceAlphabet().
inline std::string mutateSource(Rng &R, const std::string &Base,
                                int MaxEdits = 8) {
  std::string Mutated = Base;
  const char *Alphabet = sourceAlphabet();
  size_t AlphabetLen = std::char_traits<char>::length(Alphabet);
  int Edits = 1 + static_cast<int>(R.below(static_cast<uint64_t>(MaxEdits)));
  for (int E = 0; E < Edits && !Mutated.empty(); ++E) {
    size_t Pos = R.below(Mutated.size());
    switch (R.below(3)) {
    case 0:
      Mutated[Pos] = Alphabet[R.below(AlphabetLen)];
      break;
    case 1:
      Mutated.erase(Pos, 1 + R.below(4));
      break;
    default:
      Mutated.insert(Pos, 1, Alphabet[R.below(AlphabetLen)]);
      break;
    }
  }
  return Mutated;
}

/// The CL token vocabulary used for random token-soup inputs.
inline const std::vector<const char *> &clTokens() {
  static const std::vector<const char *> Tokens = {
      "func",   "goto", "tail", "read", "write", "alloc",
      "modref", "call", "done", "if",   "then",  "else",
      "var",    "int",  "x",    "y",    "f",     "(",
      ")",      "{",    "}",    "[",    "]",     ";",
      ":",      ":=",   "*",    ",",    "42",    "-3"};
  return Tokens;
}

/// A random whitespace-joined token soup of \p MinLen..\p MaxLen tokens.
inline std::string tokenSoup(Rng &R, size_t MinLen = 5, size_t MaxLen = 125) {
  const auto &Tokens = clTokens();
  std::string Soup;
  size_t Len = MinLen + R.below(MaxLen - MinLen);
  for (size_t I = 0; I < Len; ++I) {
    Soup += Tokens[R.below(Tokens.size())];
    Soup += ' ';
  }
  return Soup;
}

/// Generates a program that allocates a 4-word block (initialized from
/// the int parameters by a random initializer body), loads random slots,
/// mixes them with arithmetic and reads, writes results into output
/// modifiables, and chains to further functions — all forward-only, so
/// it terminates.
inline cl::Program randomHeapProgram(Rng &R) {
  using cl::ProgramBuilder;
  using cl::FuncBuilder;
  using cl::VarId;
  using cl::BlockId;
  using cl::FuncId;
  using cl::Type;
  using cl::Expr;
  using cl::Jump;
  using cl::Command;
  using cl::OpKind;
  ProgramBuilder PB;
  unsigned NumFuncs = 2 + static_cast<unsigned>(R.below(2));
  std::vector<FuncBuilder> Fbs;
  // Function 0..NumFuncs-1: computation; function NumFuncs: initializer.
  for (unsigned I = 0; I < NumFuncs; ++I)
    Fbs.push_back(PB.beginFunc("f" + std::to_string(I)));
  FuncBuilder Init = PB.beginFunc("blkinit");

  // The initializer: blkinit(blk, a, b) { blk[0..3] := derived values }.
  {
    VarId Blk = Init.param("blk", Type::ptrTo(Type::intTy()));
    VarId A = Init.param("a", Type::intTy());
    VarId B = Init.param("b", Type::intTy());
    VarId Idx = Init.local("i", Type::intTy());
    VarId Tmp = Init.local("t", Type::intTy());
    std::vector<BlockId> Blocks;
    for (int I = 0; I < 9; ++I)
      Blocks.push_back(Init.block());
    for (int Slot = 0; Slot < 4; ++Slot) {
      Init.setCmd(Blocks[2 * Slot],
                  FuncBuilder::assign(Idx, Expr::makeConst(Slot)),
                  Jump::gotoBlock(Blocks[2 * Slot + 1]));
      Expr Val = Slot % 2 ? Expr::makePrim(OpKind::Add, {A, B})
                          : Expr::makePrim(OpKind::Mul, {A, B});
      (void)Tmp;
      Init.setCmd(Blocks[2 * Slot + 1], FuncBuilder::store(Blk, Idx, Val),
                  Jump::gotoBlock(Blocks[2 * Slot + 2]));
    }
    Init.setDone(Blocks[8]);
  }

  for (unsigned FI = 0; FI < NumFuncs; ++FI) {
    FuncBuilder &FB = Fbs[FI];
    std::vector<VarId> Ints, Mods;
    Ints.push_back(FB.param("a", Type::intTy()));
    Ints.push_back(FB.param("b", Type::intTy()));
    for (int I = 0; I < 3; ++I)
      Mods.push_back(FB.param("m" + std::to_string(I),
                              Type::ptrTo(Type::modrefTy())));
    VarId Blk = FB.local("blk", Type::ptrTo(Type::intTy()));
    VarId Sz = FB.local("sz", Type::intTy());
    VarId Idx = FB.local("ix", Type::intTy());
    for (int I = 0; I < 2; ++I)
      Ints.push_back(FB.local("t" + std::to_string(I), Type::intTy()));

    unsigned NumBlocks = 6 + static_cast<unsigned>(R.below(6));
    std::vector<BlockId> Blocks;
    for (unsigned B = 0; B < NumBlocks; ++B)
      Blocks.push_back(FB.block());

    auto RandInt = [&] { return Ints[R.below(Ints.size())]; };
    auto RandMod = [&] { return Mods[R.below(Mods.size())]; };
    auto NextJump = [&](unsigned B) {
      if (B + 1 < NumBlocks)
        return Jump::gotoBlock(
            Blocks[B + 1 + R.below(NumBlocks - B - 1)]);
      return Jump::gotoBlock(Blocks[B]); // Unused (last block is done).
    };

    // Fixed prologue: sz := 32; blk := alloc(sz, blkinit, a, b);
    FB.setCmd(Blocks[0], FuncBuilder::assign(Sz, Expr::makeConst(32)),
              Jump::gotoBlock(Blocks[1]));
    FB.setCmd(Blocks[1],
              FuncBuilder::alloc(Blk, Sz, Init.id(), {Ints[0], Ints[1]}),
              Jump::gotoBlock(Blocks[2]));

    for (unsigned B = 2; B + 1 < NumBlocks; ++B) {
      Command C;
      switch (R.below(6)) {
      case 0:
        C = FuncBuilder::assign(Idx,
                                Expr::makeConst(int64_t(R.below(4))));
        break;
      case 1:
        C = FuncBuilder::assign(RandInt(), Expr::makeIndex(Blk, Idx));
        break;
      case 2:
        C = FuncBuilder::write(RandMod(), RandInt());
        break;
      case 3:
        C = FuncBuilder::read(RandInt(), RandMod());
        break;
      case 4:
        C = FuncBuilder::assign(
            RandInt(), Expr::makePrim(OpKind::Add, {RandInt(), RandInt()}));
        break;
      default:
        C = FuncBuilder::nop();
        break;
      }
      FB.setCmd(Blocks[B], std::move(C), NextJump(B));
    }
    // Epilogue: either done or a tail to a later function.
    if (FI + 1 < NumFuncs && R.flip()) {
      FuncId Target =
          FI + 1 + static_cast<FuncId>(R.below(NumFuncs - FI - 1));
      FB.setCmd(Blocks[NumBlocks - 1], FuncBuilder::nop(),
                Jump::tailCall(Target, {Ints[0], Ints[1], Mods[0], Mods[1],
                                        Mods[2]}));
    } else {
      FB.setDone(Blocks[NumBlocks - 1]);
    }
  }
  return PB.take();
}

} // namespace gen
} // namespace ceal

#endif // CEAL_TESTS_SUPPORT_GENERATORS_H
