//===- tests/support/SnapshotHarness.h - Snapshot round-trip oracle -*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The snapshot round-trip oracle: for any AppModel, compare a runtime
/// that was checkpointed, destroyed, and reloaded from disk against one
/// that ran continuously.
///
/// Phase A runs the whole edit sequence in one runtime, recording the
/// trace-shape digest and output after setup and after every step. Phase
/// B replays the same seeded sequence in a second runtime up to a split
/// point, checkpoints, *destroys the runtime* (freeing its address
/// space), restores the checkpoint into a third runtime (copying load or
/// mmap warm start), and finishes the remaining steps there — asserting
/// at every point that the digest and output match phase A's records and
/// the model's conventional expectation.
///
/// The model crosses the checkpoint by clone(): mutator state is
/// memberwise-copyable and its raw arena pointers stay valid because the
/// loader claims the exact region bases the saver recorded.
///
/// Seeding mirrors OracleHarness (setup = stream 0, step k = stream
/// k + 1), so the same ddmin shrinker applies to failing step lists.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_TESTS_SUPPORT_SNAPSHOTHARNESS_H
#define CEAL_TESTS_SUPPORT_SNAPSHOTHARNESS_H

#include "runtime/Snapshot.h"
#include "tests/support/OracleHarness.h"

#include <algorithm>
#include <cstdio>
#include <unistd.h>

namespace ceal {
namespace harness {

/// A mkstemp-backed file deleted on scope exit.
struct TempFile {
  std::string Path;
  TempFile() {
    char Buf[] = "/tmp/ceal-snapshot-XXXXXX";
    int Fd = ::mkstemp(Buf);
    if (Fd >= 0)
      ::close(Fd);
    Path = Buf;
  }
  ~TempFile() { ::unlink(Path.c_str()); }
  TempFile(const TempFile &) = delete;
  TempFile &operator=(const TempFile &) = delete;
};

struct SnapshotHarnessOptions {
  /// Independent seeded sequences; each rotates the split point and the
  /// load path.
  int Sequences = 12;
  /// Change+propagate steps per sequence.
  int Changes = 8;
  uint64_t BaseSeed = 0xcea15a9;
  Runtime::Config Config = auditedConfig();
  bool Shrink = true;
};

/// Output words may be arena pointers (quickhull's hull is a list of
/// Point *s), which differ between two runtimes at different region
/// bases even when the results agree. For cross-runtime comparison,
/// re-encode each word as a (was-in-region, offset-or-raw) pair — the
/// same normalization the trace-shape digest applies.
inline std::vector<Word> normalizedOutput(Runtime &RT, AppModel &M) {
  const uint64_t Base =
      reinterpret_cast<uint64_t>(RT.arena().regionBase());
  const uint64_t Size = RT.arena().regionBytes();
  std::vector<Word> Raw = M.output(RT), Out;
  Out.reserve(Raw.size() * 2);
  for (Word W : Raw) {
    bool InRegion = W >= Base && W - Base < Size;
    Out.push_back(InRegion ? 1 : 0);
    Out.push_back(InRegion ? W - Base : W);
  }
  return Out;
}

/// Runs one checkpoint/restore sequence: steps [0, SplitAt) before the
/// checkpoint, the rest after the reload. Returns "" on success.
inline std::string runSnapshotSequence(const ModelFactory &Make,
                                       const SnapshotHarnessOptions &Opt,
                                       uint64_t Seed,
                                       const std::vector<int> &Steps,
                                       size_t SplitAt, bool UseMmap) {
  SplitAt = std::min(SplitAt, Steps.size());

  // Phase A: the continuously-running oracle. Record digest + output at
  // every point (index 0 = after setup, k + 1 = after step k).
  std::vector<uint64_t> Digests;
  std::vector<std::vector<Word>> Outputs;
  Runtime OracleRT(Opt.Config);
  std::unique_ptr<AppModel> Oracle = Make();
  {
    Rng SetupRng(gen::mixSeed(Seed, 0));
    Oracle->setup(OracleRT, SetupRng);
  }
  if (std::string Err = detail::checkState(OracleRT, *Oracle,
                                           "oracle after setup", -1);
      !Err.empty())
    return Err;
  Digests.push_back(Snapshot::traceShapeDigest(OracleRT));
  Outputs.push_back(normalizedOutput(OracleRT, *Oracle));
  for (int Step : Steps) {
    Rng ChangeRng(gen::mixSeed(Seed, static_cast<uint64_t>(Step) + 1));
    Oracle->applyChange(OracleRT, ChangeRng);
    OracleRT.propagate();
    if (std::string Err = detail::checkState(OracleRT, *Oracle,
                                             "oracle after propagate", Step);
        !Err.empty())
      return Err;
    Digests.push_back(Snapshot::traceShapeDigest(OracleRT));
    Outputs.push_back(normalizedOutput(OracleRT, *Oracle));
  }

  // Phase B: replay to the split point, checkpoint, destroy the runtime.
  TempFile Tmp;
  std::unique_ptr<AppModel> Resumed;
  uint64_t SaveDigest = 0;
  {
    Runtime SaveRT(Opt.Config);
    std::unique_ptr<AppModel> Model = Make();
    {
      Rng SetupRng(gen::mixSeed(Seed, 0));
      Model->setup(SaveRT, SetupRng);
    }
    if (Snapshot::traceShapeDigest(SaveRT) != Digests[0])
      return "replay diverged from the oracle at setup (nondeterministic "
             "model?)";
    for (size_t K = 0; K < SplitAt; ++K) {
      int Step = Steps[K];
      Rng ChangeRng(gen::mixSeed(Seed, static_cast<uint64_t>(Step) + 1));
      Model->applyChange(SaveRT, ChangeRng);
      SaveRT.propagate();
      if (Snapshot::traceShapeDigest(SaveRT) != Digests[K + 1])
        return "replay diverged from the oracle at step " +
               std::to_string(Step);
    }
    std::string Why;
    if (!Snapshot::readyToSave(SaveRT, &Why))
      return "runtime not checkpointable at the split point: " + Why;
    Snapshot::SaveResult SR = Snapshot::save(SaveRT, Tmp.Path);
    if (!SR.ok())
      return std::string("save failed: ") + Snapshot::statusName(SR.St) +
             ": " + SR.Diagnostic;
    SaveDigest = Snapshot::traceShapeDigest(SaveRT);
    Resumed = Model->clone();
    if (!Resumed)
      return "model does not implement clone()";
  } // SaveRT destroyed: its region bases are free for the loader to claim.

  // Phase C: restore into a fresh runtime and finish the sequence there.
  Runtime LoadRT(Opt.Config);
  Snapshot::LoadResult LR = UseMmap ? Snapshot::mmapWarmStart(LoadRT, Tmp.Path)
                                    : Snapshot::load(LoadRT, Tmp.Path);
  if (!LR.ok())
    return std::string(UseMmap ? "mmapWarmStart" : "load") +
           " failed: " + Snapshot::statusName(LR.St) + ": " + LR.Diagnostic;
  if (Snapshot::traceShapeDigest(LoadRT) != SaveDigest)
    return "round-trip digest mismatch: the reloaded trace's shape differs "
           "from the saved one";
  if (normalizedOutput(LoadRT, *Resumed) != Outputs[SplitAt])
    return "restored output differs from the oracle's at the split point";
  for (size_t K = SplitAt; K < Steps.size(); ++K) {
    int Step = Steps[K];
    Rng ChangeRng(gen::mixSeed(Seed, static_cast<uint64_t>(Step) + 1));
    Resumed->applyChange(LoadRT, ChangeRng);
    LoadRT.propagate();
    if (std::string Err = detail::checkState(LoadRT, *Resumed,
                                             "after reload propagate", Step);
        !Err.empty())
      return Err;
    if (Snapshot::traceShapeDigest(LoadRT) != Digests[K + 1])
      return "trace-shape divergence vs the continuous oracle after reload, "
             "step " +
             std::to_string(Step);
    if (normalizedOutput(LoadRT, *Resumed) != Outputs[K + 1])
      return "output divergence vs the continuous oracle after reload, "
             "step " +
             std::to_string(Step);
  }
  return "";
}

namespace detail {

/// ddmin over the step list, holding SplitAt's *relative* position: the
/// split index is clamped, so shrinking keeps a checkpoint in the middle
/// of the surviving steps.
inline std::vector<int>
shrinkSnapshotSteps(const ModelFactory &Make, const SnapshotHarnessOptions &Opt,
                    uint64_t Seed, std::vector<int> Steps, size_t SplitAt,
                    bool UseMmap) {
  double Frac =
      Steps.empty() ? 0.0 : double(SplitAt) / double(Steps.size());
  auto Fails = [&](const std::vector<int> &Subset) {
    size_t Split = static_cast<size_t>(Frac * double(Subset.size()) + 0.5);
    return !runSnapshotSequence(Make, Opt, Seed, Subset, Split, UseMmap)
                .empty();
  };
  size_t Chunk = Steps.size() / 2;
  while (Chunk > 0) {
    bool Removed = false;
    for (size_t Begin = 0; Begin + Chunk <= Steps.size();) {
      std::vector<int> Candidate;
      Candidate.reserve(Steps.size() - Chunk);
      Candidate.insert(Candidate.end(), Steps.begin(),
                       Steps.begin() + static_cast<ptrdiff_t>(Begin));
      Candidate.insert(Candidate.end(),
                       Steps.begin() + static_cast<ptrdiff_t>(Begin + Chunk),
                       Steps.end());
      if (Fails(Candidate)) {
        Steps = std::move(Candidate);
        Removed = true;
      } else {
        Begin += Chunk;
      }
    }
    Chunk = (!Removed || Chunk == 1) ? Chunk / 2
                                     : std::min(Chunk, Steps.size() / 2);
  }
  return Steps;
}

} // namespace detail

/// Runs Opt.Sequences independent sequences, rotating the split point
/// (checkpoint right after setup / mid-sequence / after the last step)
/// and the load path (copying load / mmap warm start). Returns "" if
/// every round trip matched, else a replayable report.
inline std::string runSnapshotHarness(const ModelFactory &Make,
                                      const SnapshotHarnessOptions &Opt = {}) {
  for (int Seq = 0; Seq < Opt.Sequences; ++Seq) {
    uint64_t Seed = gen::mixSeed(Opt.BaseSeed, static_cast<uint64_t>(Seq));
    std::vector<int> Steps(static_cast<size_t>(Opt.Changes));
    for (int I = 0; I < Opt.Changes; ++I)
      Steps[static_cast<size_t>(I)] = I;
    size_t SplitAt = Seq % 3 == 0   ? 0
                     : Seq % 3 == 1 ? Steps.size() / 2
                                    : Steps.size();
    bool UseMmap = (Seq & 1) != 0;
    std::string Err = runSnapshotSequence(Make, Opt, Seed, Steps, SplitAt,
                                          UseMmap);
    if (Err.empty())
      continue;
    std::ostringstream OS;
    OS << "sequence " << Seq << " (" << gen::seedTag(Seed) << ", split "
       << SplitAt << "/" << Steps.size() << ", "
       << (UseMmap ? "mmap" : "copy") << ")";
    if (Opt.Shrink) {
      std::vector<int> Shrunk = detail::shrinkSnapshotSteps(
          Make, Opt, Seed, Steps, SplitAt, UseMmap);
      size_t Split = Steps.empty()
                         ? 0
                         : static_cast<size_t>(double(SplitAt) /
                                                   double(Steps.size()) *
                                                   double(Shrunk.size()) +
                                               0.5);
      std::string ShrunkErr =
          runSnapshotSequence(Make, Opt, Seed, Shrunk, Split, UseMmap);
      if (!ShrunkErr.empty()) {
        OS << " failed; minimal steps {";
        for (size_t I = 0; I < Shrunk.size(); ++I)
          OS << (I ? "," : "") << Shrunk[I];
        OS << "} split " << Split << ": " << ShrunkErr;
        return OS.str();
      }
    }
    OS << " failed: " << Err;
    return OS.str();
  }
  return "";
}

} // namespace harness
} // namespace ceal

#endif // CEAL_TESTS_SUPPORT_SNAPSHOTHARNESS_H
