//===- tests/support/SnapshotCorruption.h - Snapshot fuzz engine -*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The corruption engine behind the snapshot fuzz suites: seeded
/// mutations of a valid checkpoint file that are *guaranteed detectable*
/// — every strategy either breaks a checksum it does not repair, or
/// repairs the checksums and breaks an invariant the loader (or the
/// load-time trace validator) provably checks. The property under test:
/// the loader returns a diagnostic error on every mutant, and never
/// crashes or trips a sanitizer.
///
/// Strategies (selected by seed):
///   0. bit flip anywhere in the file (full-byte checksum coverage
///      catches it wherever it lands);
///   1. truncation to any shorter length;
///   2. section length-field inflation with the header resealed (breaks
///      section-table contiguity);
///   3. checksum-preserving payload swap of the two memo sections, their
///      table checksums swapped and the header resealed (the section
///      kind preambles catch it);
///   4. orphaning a non-empty memo bucket with both checksums resealed
///      (the load validator's membership count catches it).
///
/// Tests can also use the reseal helpers directly to build targeted
/// negative-path inputs (patch a field, reseal, expect a specific
/// Status).
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_TESTS_SUPPORT_SNAPSHOTCORRUPTION_H
#define CEAL_TESTS_SUPPORT_SNAPSHOTCORRUPTION_H

#include "runtime/Snapshot.h"
#include "support/Checksum.h"
#include "support/Random.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace ceal {
namespace harness {

inline std::vector<uint8_t> slurpFile(const std::string &Path) {
  std::vector<uint8_t> B;
  if (std::FILE *F = std::fopen(Path.c_str(), "rb")) {
    std::fseek(F, 0, SEEK_END);
    long N = std::ftell(F);
    std::fseek(F, 0, SEEK_SET);
    B.resize(N > 0 ? static_cast<size_t>(N) : 0);
    if (!B.empty() && std::fread(B.data(), 1, B.size(), F) != B.size())
      B.clear();
    std::fclose(F);
  }
  return B;
}

inline bool spitFile(const std::string &Path, const std::vector<uint8_t> &B) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  bool Ok = B.empty() || std::fwrite(B.data(), 1, B.size(), F) == B.size();
  return (std::fclose(F) == 0) && Ok;
}

/// A mutable view of the header inside a file image.
inline Snapshot::FileHeader *headerOf(std::vector<uint8_t> &B) {
  return B.size() >= sizeof(Snapshot::FileHeader)
             ? reinterpret_cast<Snapshot::FileHeader *>(B.data())
             : nullptr;
}

/// Recomputes the header-block checksum (whole 4096-byte block, checksum
/// field zeroed) after a header patch.
inline void resealHeader(std::vector<uint8_t> &B) {
  Snapshot::FileHeader *H = headerOf(B);
  if (!H || B.size() < Snapshot::HeaderBytes)
    return;
  H->HeaderChecksum = 0;
  H->HeaderChecksum = Checksum64::of(B.data(), Snapshot::HeaderBytes);
}

/// Recomputes section \p Index's table checksum after a payload patch.
/// Does not reseal the header; call resealHeader() after.
inline void resealSection(std::vector<uint8_t> &B, size_t Index) {
  Snapshot::FileHeader *H = headerOf(B);
  if (!H || Index >= Snapshot::NumSections)
    return;
  Snapshot::SectionEntry &E = H->Sections[Index];
  if (E.Offset + E.Length <= B.size())
    E.Checksum = Checksum64::of(B.data() + E.Offset, E.Length);
}

/// One seeded, guaranteed-detectable mutation of a valid snapshot image.
/// Returns the mutant and a one-line description for failure messages.
inline std::vector<uint8_t> mutateSnapshot(std::vector<uint8_t> B,
                                           uint64_t Seed,
                                           std::string *Desc = nullptr) {
  uint64_t State = Seed ^ 0xc0bb1e5ULL;
  Rng R(splitMix64(State));
  Snapshot::FileHeader *H = headerOf(B);
  auto Describe = [&](const std::string &S) {
    if (Desc)
      *Desc = S;
  };
  unsigned Strategy = H ? unsigned(R.below(5)) : 0;
  switch (Strategy) {
  case 1: { // Truncation (any cut strictly shorter than the file).
    size_t Cut = R.below(B.size());
    Describe("truncate to " + std::to_string(Cut) + " bytes");
    B.resize(Cut);
    return B;
  }
  case 2: { // Length-field inflation, header resealed.
    size_t Index = R.below(Snapshot::NumSections);
    uint64_t Delta = 8 * (1 + R.below(64));
    Describe("inflate section " + std::to_string(Index) + " length by " +
             std::to_string(Delta));
    H->Sections[Index].Length += Delta;
    resealHeader(B);
    return B;
  }
  case 3: { // Checksum-preserving payload swap of the memo sections.
    Snapshot::SectionEntry &RE = H->Sections[1]; // MEMO_READ
    Snapshot::SectionEntry &AE = H->Sections[2]; // MEMO_ALLOC
    if (RE.Length == AE.Length && AE.Offset + AE.Length <= B.size()) {
      Describe("swap memo payloads, swap their checksums, reseal header");
      std::vector<uint8_t> Tmp(B.begin() + static_cast<ptrdiff_t>(RE.Offset),
                               B.begin() +
                                   static_cast<ptrdiff_t>(RE.Offset +
                                                          RE.Length));
      std::memmove(B.data() + RE.Offset, B.data() + AE.Offset, AE.Length);
      std::memcpy(B.data() + AE.Offset, Tmp.data(), Tmp.size());
      std::swap(RE.Checksum, AE.Checksum);
      resealHeader(B);
      return B;
    }
    break; // Unequal lengths: fall through to a bit flip.
  }
  case 4: { // Orphan a non-empty memo bucket, both checksums resealed.
    size_t Index = 1 + R.below(2); // MEMO_READ or MEMO_ALLOC
    Snapshot::SectionEntry &E = H->Sections[Index];
    // Payload: 8-byte preamble, 8-byte bucket count, then the bucket
    // head offsets.
    if (E.Offset + 16 <= B.size()) {
      uint64_t Buckets;
      std::memcpy(&Buckets, B.data() + E.Offset + 8, 8);
      std::vector<size_t> NonEmpty;
      for (uint64_t I = 0; I < Buckets; ++I) {
        size_t At = E.Offset + 16 + I * 8;
        if (At + 8 > B.size() || At + 8 > E.Offset + E.Length)
          break;
        uint64_t Head;
        std::memcpy(&Head, B.data() + At, 8);
        if (Head != 0)
          NonEmpty.push_back(At);
      }
      if (!NonEmpty.empty()) {
        size_t At = NonEmpty[R.below(NonEmpty.size())];
        Describe("orphan memo bucket at file offset " + std::to_string(At) +
                 ", reseal section " + std::to_string(Index) + " + header");
        uint64_t Zero = 0;
        std::memcpy(B.data() + At, &Zero, 8);
        resealSection(B, Index);
        resealHeader(B);
        return B;
      }
    }
    break; // No non-empty bucket: fall through to a bit flip.
  }
  default:
    break;
  }
  // Strategy 0 and every fallback: flip one bit anywhere. Every file byte
  // is covered by the header-block checksum or a section checksum, and
  // none is resealed here.
  size_t Byte = R.below(B.size());
  unsigned Bit = unsigned(R.below(8));
  Describe("flip bit " + std::to_string(Bit) + " of byte " +
           std::to_string(Byte));
  B[Byte] ^= uint8_t(1u << Bit);
  return B;
}

} // namespace harness
} // namespace ceal

#endif // CEAL_TESTS_SUPPORT_SNAPSHOTCORRUPTION_H
