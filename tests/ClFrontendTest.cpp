//===- tests/ClFrontendTest.cpp - CL parser/printer/verifier tests --------===//

#include "cl/Builder.h"
#include "cl/Parser.h"
#include "cl/Printer.h"
#include "cl/Samples.h"
#include "cl/Verifier.h"

#include <gtest/gtest.h>

using namespace ceal;
using namespace ceal::cl;

TEST(ClParser, MinimalFunction) {
  auto R = parseProgram("func f() { e: done; }");
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(R.Prog->Funcs.size(), 1u);
  EXPECT_EQ(R.Prog->Funcs[0].Name, "f");
  EXPECT_EQ(R.Prog->Funcs[0].Blocks.size(), 1u);
  EXPECT_EQ(R.Prog->Funcs[0].Blocks[0].K, BasicBlock::Done);
}

TEST(ClParser, AllCommandForms) {
  const char *Src = R"(
func init(int* blk, int v) {
  var int i0;
  e0: i0 := 0; goto e1;
  e1: blk[i0] := v; goto e2;
  e2: done;
}
func main(modref* m, int n) {
  var int x; var int y; var int* p; var modref* r;
  b0: nop; goto b1;
  b1: x := 5; goto b2;
  b2: y := add(x, n); goto b3;
  b3: r := modref(); goto b4;
  b4: write(r, y); goto b5;
  b5: x := read m; goto b6;
  b6: p := alloc(x, init, y); goto b7;
  b7: y := p[i0q]; goto b8;
  b8: p[i0q] := x; goto b9;
  b9: call init(p, y); goto b10;
  b10: if x then goto b11 else tail main(r, y);
  b11: done;
}
)";
  // b7 references i0q which is undeclared: expect a parse error first.
  auto Bad = parseProgram(Src);
  EXPECT_FALSE(Bad);
  EXPECT_NE(Bad.Error.find("unknown variable"), std::string::npos);

  std::string Fixed(Src);
  // Declare the missing variable.
  size_t Pos = Fixed.find("var modref* r;");
  Fixed.insert(Pos, "var int i0q; ");
  auto Good = parseProgram(Fixed);
  ASSERT_TRUE(Good) << Good.Error;
  EXPECT_TRUE(verifyProgram(*Good.Prog).empty());
}

TEST(ClParser, ReportsUsefulErrors) {
  struct Case {
    const char *Src;
    const char *Fragment;
  };
  const Case Cases[] = {
      {"func f() { e: goto nowhere; }", "unknown variable"},
      {"func f() { e: nop; goto missing; }", "undefined label"},
      {"func f() { e: nop; tail g(); }", "unknown function"},
      {"func f(int x, int x) { e: done; }", "duplicate"},
      {"func f() { e: x := 5; goto e; }", "unknown variable"},
      {"func f() { e: done; } func f() { e: done; }", "duplicate function"},
      {"", "empty program"},
      {"func f() { }", "no blocks"},
  };
  for (const Case &C : Cases) {
    auto R = parseProgram(C.Src);
    EXPECT_FALSE(R) << C.Src;
    EXPECT_NE(R.Error.find(C.Fragment), std::string::npos)
        << "error was: " << R.Error << "\nfor: " << C.Src;
  }
}

TEST(ClPrinter, RoundTripsAllSamples) {
  for (const auto &[Name, Source] : samples::allPrograms()) {
    auto First = parseProgram(Source);
    ASSERT_TRUE(First) << Name << ": " << First.Error;
    EXPECT_TRUE(verifyProgram(*First.Prog).empty()) << Name;
    std::string Printed = printProgram(*First.Prog);
    auto Second = parseProgram(Printed);
    ASSERT_TRUE(Second) << Name << " (reparse): " << Second.Error;
    EXPECT_EQ(Printed, printProgram(*Second.Prog)) << Name;
  }
}

TEST(ClVerifier, CatchesArityMismatch) {
  ProgramBuilder PB;
  FuncBuilder G = PB.beginFunc("g");
  G.param("x", Type::intTy());
  BlockId GB = G.block();
  G.setDone(GB);

  FuncBuilder F = PB.beginFunc("f");
  VarId X = F.param("x", Type::intTy());
  BlockId FB = F.block();
  // Tail to g with two args although g takes one.
  F.setCmd(FB, FuncBuilder::nop(), Jump::tailCall(G.id(), {X, X}));
  Program P = PB.take();
  auto Diags = verifyProgram(P);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_NE(Diags[0].find("passes 2 arguments"), std::string::npos);
}

TEST(ClVerifier, CatchesReadOfNonModref) {
  auto R = parseProgram(R"(
func f(int x) {
  var int y;
  e: y := read x; tail f(y);
}
)");
  ASSERT_TRUE(R) << R.Error;
  auto Diags = verifyProgram(*R.Prog);
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags[0].find("read of non-modref"), std::string::npos);
}

TEST(ClVerifier, NormalFormPredicate) {
  auto NotNormal = parseProgram(R"(
func f(modref* m) {
  var int x;
  e: x := read m; goto g;
  g: done;
}
)");
  ASSERT_TRUE(NotNormal) << NotNormal.Error;
  EXPECT_FALSE(isNormalForm(*NotNormal.Prog));

  auto Normal = parseProgram(R"(
func f(modref* m) {
  var int x;
  e: x := read m; tail g(x);
}
func g(int x) {
  e: done;
}
)");
  ASSERT_TRUE(Normal) << Normal.Error;
  EXPECT_TRUE(isNormalForm(*Normal.Prog));
}

TEST(ClIr, SizeInWordsIsMonotone) {
  auto Small = parseProgram("func f() { e: done; }");
  auto Big = parseProgram(samples::ListPrims);
  ASSERT_TRUE(Small);
  ASSERT_TRUE(Big);
  EXPECT_LT(Small.Prog->sizeInWords(), Big.Prog->sizeInWords());
  EXPECT_GT(Big.Prog->blockCount(), 50u);
}
