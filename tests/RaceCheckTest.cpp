//===- tests/RaceCheckTest.cpp - Determinacy-race detector ----------------===//
//
// Unit tests for runtime/RaceCheck: interval partitioning of the dirty
// set, conflict detection across intervals, the zero-conflict guarantee
// for independent edits, and the detector's non-interference with
// propagation results. Uses hand-built cores whose trace shapes are
// known exactly, so cluster counts and conflicts can be asserted
// deterministically.
//
//===----------------------------------------------------------------------===//

#include "apps/ListApps.h"
#include "runtime/RaceCheck.h"
#include "runtime/Runtime.h"
#include "runtime/TraceAudit.h"
#include "support/Random.h"
#include "tests/support/Generators.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

using namespace ceal;
using namespace ceal::apps;

namespace {

Word double1(Word X, Word) { return X * 2 + 1; }

//===----------------------------------------------------------------------===//
// A two-sided core with a seeded cross-interval dependence.
//
// side1 reads A and writes the intermediate X; side2 reads B, then reads
// X, then writes Out. The two sides run as separate calls, so their
// trace intervals are disjoint — after editing both A and B the dirty
// set splits into two clusters, and side2's re-read of X observes a
// value side1's interval wrote: a determinacy race by construction.
//===----------------------------------------------------------------------===//

Closure *side1Got(Runtime &RT, Word AV, Modref *X) {
  RT.writeT(X, AV * 2);
  return nullptr;
}
Closure *side1(Runtime &RT, Modref *A, Modref *X) {
  return RT.readTail<&side1Got>(A, X);
}
Closure *side2GotX(Runtime &RT, Word XV, Word BV, Modref *Out) {
  RT.writeT(Out, XV + BV);
  return nullptr;
}
Closure *side2GotB(Runtime &RT, Word BV, Modref *X, Modref *Out) {
  return RT.readTail<&side2GotX>(X, BV, Out);
}
Closure *side2(Runtime &RT, Modref *B, Modref *X, Modref *Out) {
  return RT.readTail<&side2GotB>(B, X, Out);
}
Closure *conflictCore(Runtime &RT, Modref *A, Modref *B, Modref *X,
                      Modref *Out) {
  RT.callFn<&side1>(A, X);
  RT.callFn<&side2>(B, X, Out);
  return nullptr;
}

// The independent twin: side2 never touches X, so the same two-edit
// experiment must partition with zero conflicts.
Closure *indepGotB(Runtime &RT, Word BV, Modref *Out) {
  RT.writeT(Out, BV + 7);
  return nullptr;
}
Closure *indepSide2(Runtime &RT, Modref *B, Modref *Out) {
  return RT.readTail<&indepGotB>(B, Out);
}
Closure *indepCore(Runtime &RT, Modref *A, Modref *B, Modref *X,
                   Modref *Out) {
  RT.callFn<&side1>(A, X);
  RT.callFn<&indepSide2>(B, Out);
  return nullptr;
}

struct TwoSided {
  Runtime RT;
  Modref *A, *B, *X, *Out;

  explicit TwoSided(const Runtime::Config &C) : RT(C) {
    A = RT.modref(Word(10));
    B = RT.modref(Word(100));
    X = RT.modref();
    Out = RT.modref();
  }
};

Runtime::Config detectorOn(unsigned Intervals = 8) {
  Runtime::Config C;
  C.RaceCheck = true;
  C.RaceCheckIntervals = Intervals;
  return C;
}

} // namespace

//===----------------------------------------------------------------------===//
// Report plumbing
//===----------------------------------------------------------------------===//

TEST(RaceCheck, OffByDefaultReportsNothing) {
  TwoSided F{Runtime::Config()};
  F.RT.runCore<&conflictCore>(F.A, F.B, F.X, F.Out);
  F.RT.modify(F.A, 11);
  F.RT.propagate();
  const RaceReport &R = F.RT.raceReport();
  EXPECT_EQ(R.Intervals, 0u);
  EXPECT_EQ(R.TaggedReads, 0u);
  EXPECT_EQ(R.conflictCount(), 0u);
}

TEST(RaceCheck, SingleEditIsTriviallyPartitionable) {
  TwoSided F{detectorOn()};
  F.RT.runCore<&conflictCore>(F.A, F.B, F.X, F.Out);
  F.RT.modify(F.A, 11);
  F.RT.propagate();
  const RaceReport &R = F.RT.raceReport();
  EXPECT_EQ(R.InitialDirtyReads, 1u);
  EXPECT_EQ(R.Clusters, 1u);
  EXPECT_EQ(R.Intervals, 1u);
  EXPECT_GT(R.TaggedWrites, 0u);
  // side1's changed write of X drags side2's read into the cascade.
  EXPECT_GE(R.CascadeInvalidations, 1u);
  // One interval cannot conflict with itself.
  EXPECT_EQ(R.conflictCount(), 0u);
  EXPECT_TRUE(R.partitionable());
}

//===----------------------------------------------------------------------===//
// Seeded cross-interval conflict
//===----------------------------------------------------------------------===//

TEST(RaceCheck, CrossIntervalReadOfForeignWriteIsReported) {
  TwoSided F{detectorOn()};
  F.RT.runCore<&conflictCore>(F.A, F.B, F.X, F.Out);
  EXPECT_EQ(F.RT.deref(F.Out), 10u * 2 + 100u);

  // Both sides dirty: two disjoint call intervals, two clusters.
  F.RT.modify(F.A, 13);
  F.RT.modify(F.B, 200);
  F.RT.propagate();

  const RaceReport &R = F.RT.raceReport();
  EXPECT_EQ(R.InitialDirtyReads, 2u);
  EXPECT_EQ(R.Clusters, 2u);
  EXPECT_EQ(R.Intervals, 2u);
  // side2's re-read of X crosses into side1's interval.
  EXPECT_GE(R.RwConflicts, 1u);
  EXPECT_FALSE(R.partitionable());
  ASSERT_FALSE(R.Conflicts.empty());
  EXPECT_EQ(R.Conflicts[0].K, RaceConflict::RW);
  EXPECT_NE(R.Conflicts[0].IntervalA, R.Conflicts[0].IntervalB);
  // The race is a diagnosis, not a wrong answer: sequential propagation
  // still computes the correct result.
  EXPECT_EQ(F.RT.deref(F.Out), 13u * 2 + 200u);
}

TEST(RaceCheck, IndependentSidesArePartitionable) {
  TwoSided F{detectorOn()};
  F.RT.runCore<&indepCore>(F.A, F.B, F.X, F.Out);
  F.RT.modify(F.A, 13);
  F.RT.modify(F.B, 200);
  F.RT.propagate();

  const RaceReport &R = F.RT.raceReport();
  EXPECT_EQ(R.InitialDirtyReads, 2u);
  EXPECT_EQ(R.Clusters, 2u);
  EXPECT_EQ(R.Intervals, 2u);
  EXPECT_EQ(R.conflictCount(), 0u);
  EXPECT_TRUE(R.partitionable());
  EXPECT_EQ(F.RT.deref(F.Out), 200u + 7);
  EXPECT_EQ(F.RT.deref(F.X), 13u * 2);
}

TEST(RaceCheck, IntervalCapClampsPartition) {
  // With MaxIntervals = 1 the same conflicting workload collapses into
  // one interval — and the conflict disappears, because a single
  // sequential worker cannot race with itself.
  TwoSided F{detectorOn(1)};
  F.RT.runCore<&conflictCore>(F.A, F.B, F.X, F.Out);
  F.RT.modify(F.A, 13);
  F.RT.modify(F.B, 200);
  F.RT.propagate();
  const RaceReport &R = F.RT.raceReport();
  EXPECT_EQ(R.Clusters, 2u);
  EXPECT_EQ(R.Intervals, 1u);
  EXPECT_EQ(R.conflictCount(), 0u);
}

//===----------------------------------------------------------------------===//
// Toggling and non-interference on a real app
//===----------------------------------------------------------------------===//

TEST(RaceCheck, ToggleBetweenPhasesAndMatchOracle) {
  Rng R(5);
  std::vector<Word> In = gen::randomWords(R, 200);
  Runtime RT;
  ListHandle L = buildList(RT, In);
  Modref *Dst = RT.modref();
  RT.runCore<&mapCore>(L.Head, Dst, &double1, Word(0));

  auto Expect = [&](const std::vector<Word> &Src) {
    std::vector<Word> Out;
    for (Word W : Src)
      Out.push_back(double1(W, 0));
    return Out;
  };
  EXPECT_EQ(readList(RT, Dst), Expect(In));

  // Detector on for a batch of edits; results must match the oracle
  // exactly (the detector observes, never steers).
  RT.setRaceCheck(true);
  detachCell(RT, L, 50);
  detachCell(RT, L, 120);
  RT.propagate();
  std::vector<Word> Cut = In;
  Cut.erase(Cut.begin() + 120);
  Cut.erase(Cut.begin() + 50);
  EXPECT_EQ(readList(RT, Dst), Expect(Cut));
  const RaceReport &Rep = RT.raceReport();
  EXPECT_GT(Rep.InitialDirtyReads, 0u);
  // Tail-chained list traversals nest all read intervals into one
  // overlap cluster: the honest verdict is "one interval, no split".
  EXPECT_EQ(Rep.Clusters, 1u);
  EXPECT_TRUE(Rep.partitionable());

  // Toggle off again: the next propagation leaves the retained report
  // untouched and records nothing new.
  RT.setRaceCheck(false);
  reattachCell(RT, L, 120);
  reattachCell(RT, L, 50);
  RT.propagate();
  EXPECT_EQ(readList(RT, Dst), Expect(In));
}

TEST(RaceCheck, AuditPassAcceptsDetectorReports) {
  // TraceAudit's race-state pass cross-checks the retained report after
  // both a clean and a conflicting propagation.
  TwoSided F{detectorOn()};
  F.RT.runCore<&conflictCore>(F.A, F.B, F.X, F.Out);
  TraceAudit::Report Audit = TraceAudit::inspect(F.RT);
  EXPECT_TRUE(Audit.ok()) << Audit.summary();

  F.RT.modify(F.A, 13);
  F.RT.modify(F.B, 200);
  F.RT.propagate();
  Audit = TraceAudit::inspect(F.RT);
  EXPECT_TRUE(Audit.ok()) << Audit.summary();
  EXPECT_FALSE(F.RT.raceReport().partitionable());
}

TEST(RaceCheck, ReportJsonIsWellFormed) {
  TwoSided F{detectorOn()};
  F.RT.runCore<&conflictCore>(F.A, F.B, F.X, F.Out);
  F.RT.modify(F.A, 13);
  F.RT.modify(F.B, 200);
  F.RT.propagate();
  std::ostringstream OS;
  F.RT.raceReport().writeJson(OS);
  const std::string J = OS.str();
  EXPECT_NE(J.find("\"intervals\": 2"), std::string::npos) << J;
  EXPECT_NE(J.find("\"partitionable\": false"), std::string::npos) << J;
  EXPECT_NE(J.find("\"kind\": \"rw\""), std::string::npos) << J;
}

//===----------------------------------------------------------------------===//
// Duplicate heap entries must not double-count in the clustering
//===----------------------------------------------------------------------===//

namespace ceal {
/// Test-only access to the runtime's dirty heap (friend of Runtime), to
/// plant the transient duplicate entries the heap tolerates.
struct RuntimeTestPeer {
  static std::vector<ReadNode *> &heap(Runtime &RT) { return RT.Main.Heap; }
};
} // namespace ceal

TEST(RaceCheck, DuplicateHeapEntriesClusterOnce) {
  // Regression: clusterPending used to feed duplicate heap entries
  // straight into the timestamp sort, where heapLess ties on identical
  // nodes kept them adjacent-but-distinct — the read landed in the
  // overlap merge twice, inflating the dirty count and, at a cluster
  // boundary, splitting one read across two clusters.
  TwoSided F{detectorOn()};
  F.RT.runCore<&conflictCore>(F.A, F.B, F.X, F.Out);
  F.RT.modify(F.A, 21);
  F.RT.modify(F.B, 300);

  std::vector<ReadNode *> &Heap = RuntimeTestPeer::heap(F.RT);
  ASSERT_EQ(Heap.size(), 2u);
  // Raw-duplicate both entries, bypassing heapPush (whose bookkeeping
  // forbids re-queuing) the same way transient armed-phase duplicates
  // arise.
  Heap.push_back(Heap[0]);
  Heap.push_back(Heap[1]);

  DirtyClustering C = RaceCheck::clusterDirty(F.RT);
  EXPECT_EQ(C.Sorted.size(), 2u);
  EXPECT_EQ(C.NumClusters, 2u);

  // End to end with the duplicates still queued: the armed detector
  // reports the deduplicated counts, the duplicate pops skip clean, and
  // the propagation result is untouched.
  F.RT.propagate();
  const RaceReport &R = F.RT.raceReport();
  EXPECT_EQ(R.InitialDirtyReads, 2u);
  EXPECT_EQ(R.Clusters, 2u);
  EXPECT_EQ(F.RT.deref(F.Out), 21u * 2 + 300u);
}
