//===- tests/RuntimePerfTest.cpp - Profiler and hot-path regressions ------===//
//
// Regression coverage for the propagation profiler and the constant-factor
// pass that came with it: the governing-write cache and insertion hint
// (validated against TraceAudit's independent walk), the zero-cost-when-off
// profiler contract, and the latent-bug fixes (simulated-GC mark underflow
// after a stats reset, hard narrowing checks in allocate/makeRaw, the
// allocation-free VM modref path, deref's meta-phase precondition).
//
//===----------------------------------------------------------------------===//

#include "apps/ListApps.h"
#include "runtime/TraceAudit.h"
#include "support/Random.h"
#include "tests/support/Generators.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace ceal;
using namespace ceal::apps;

namespace {

Word mapFn(Word X, Word) { return X * 3 + 1; }
Word combineMin(Word A, Word B, Word) { return A < B ? A : B; }

/// Builds a mapped list and runs a few delete/reinsert propagation
/// rounds; the shared workload for the profiler and cache tests.
struct EditedMapRun {
  Runtime RT;
  ListHandle L;
  Modref *Dst;

  explicit EditedMapRun(Runtime::Config C = {}, size_t N = 64,
                        size_t Edits = 8)
      : RT(C) {
    Rng R(7);
    L = buildList(RT, gen::randomWords(R, N));
    Dst = RT.modref();
    RT.runCore<&mapCore>(L.Head, Dst, &mapFn, Word(0));
    for (size_t E = 0; E < Edits; ++E) {
      size_t Index = R.below(N);
      detachCell(RT, L, Index);
      RT.propagate();
      reattachCell(RT, L, Index);
      RT.propagate();
    }
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Governing-write cache and insertion hint
//===----------------------------------------------------------------------===//

// TraceAudit recomputes every use's governing write with a full walk and
// compares it against the O(1) cache, and checks the insertion hint is a
// list member; a clean report across runs and propagations is the
// correctness statement for the hot-path pass.
TEST(GoverningCache, AuditCleanAcrossMapEdits) {
  EditedMapRun W;
  TraceAudit::Report Rep = TraceAudit::inspect(W.RT);
  EXPECT_TRUE(Rep.ok()) << (Rep.Violations.empty() ? ""
                                                   : Rep.Violations.front());
}

TEST(GoverningCache, AuditCleanAcrossMultiWriteReduce) {
  // reduceCore rewrites per-round accumulators, producing use lists with
  // several writes interleaved with reads — the shape that exercises
  // revokeWrite's cache retargeting.
  Runtime RT;
  Rng R(11);
  size_t N = 48;
  ListHandle L = buildList(RT, gen::randomWords(R, N));
  Modref *Dst = RT.modref();
  RT.runCore<&reduceCore>(L.Head, Dst, &combineMin, Word(0), ~Word(0));
  for (size_t E = 0; E < 6; ++E) {
    size_t Index = R.below(N);
    detachCell(RT, L, Index);
    RT.propagate();
    reattachCell(RT, L, Index);
    RT.propagate();
  }
  TraceAudit::Report Rep = TraceAudit::inspect(RT);
  EXPECT_TRUE(Rep.ok()) << (Rep.Violations.empty() ? ""
                                                   : Rep.Violations.front());
}

TEST(GoverningCache, DerefMatchesInitialAfterPropagation) {
  // deref is now O(1) off the tail's cache; cross-check it against the
  // mutator-visible semantics (latest write, else initial).
  Runtime RT;
  Modref *M = RT.modref<int64_t>(41);
  EXPECT_EQ(RT.derefT<int64_t>(M), 41);
  RT.modifyT<int64_t>(M, 42);
  EXPECT_EQ(RT.derefT<int64_t>(M), 42);
}

TEST(InsertHint, AppendOnlyRunsScanZeroSteps) {
  // An initial run appends every use at its list's tail; with the
  // insertion cursor the placement scan must never step.
  Runtime RT;
  Rng R(13);
  ListHandle L = buildList(RT, gen::randomWords(R, 128));
  Modref *Dst = RT.modref();
  RT.runCore<&mapCore>(L.Head, Dst, &mapFn, Word(0));
  EXPECT_EQ(RT.stats().UseScanSteps, 0u);
}

//===----------------------------------------------------------------------===//
// Propagation profiler
//===----------------------------------------------------------------------===//

TEST(Profiler, PopulatesWhenEnabled) {
  Runtime::Config Cfg;
  Cfg.EnableProfile = true;
  EditedMapRun W(Cfg);
  const PropagationProfile &P = W.RT.profile();
  EXPECT_TRUE(P.Enabled);
  EXPECT_GE(P.RunCoreCalls, 1u);
  EXPECT_GT(P.QueuePops, 0u);
  EXPECT_GT(P.ReexecCalls, 0u);
  EXPECT_GT(P.MemoLookups, 0u);
  EXPECT_GT(P.RunCoreNs, 0u);
  EXPECT_GT(P.PropagateNs, 0u);
  EXPECT_EQ(P.ReexecWork.Count, P.ReexecCalls);
  EXPECT_GT(P.UseScan.Count, 0u);
}

TEST(Profiler, InertWhenDisabled) {
  EditedMapRun W; // Default config: profiler off.
  const PropagationProfile &P = W.RT.profile();
  EXPECT_FALSE(P.Enabled);
  EXPECT_EQ(P.RunCoreCalls, 0u);
  EXPECT_EQ(P.QueuePops, 0u);
  EXPECT_EQ(P.ReexecCalls, 0u);
  EXPECT_EQ(P.MemoLookups, 0u);
  EXPECT_EQ(P.RunCoreNs + P.PropagateNs + P.ReexecNs + P.RevokeNs +
                P.MemoLookupNs + P.QueueNs,
            0u);
  EXPECT_EQ(P.ReexecWork.Count, 0u);
  EXPECT_EQ(P.UseScan.Count, 0u);
}

TEST(Profiler, ResetPreservesEnabled) {
  Runtime::Config Cfg;
  Cfg.EnableProfile = true;
  EditedMapRun W(Cfg);
  ASSERT_GT(W.RT.profile().QueuePops, 0u);
  W.RT.resetProfile();
  EXPECT_TRUE(W.RT.profile().Enabled);
  EXPECT_EQ(W.RT.profile().QueuePops, 0u);
  EXPECT_EQ(W.RT.profile().ReexecWork.Count, 0u);
}

TEST(Profiler, HistogramBucketsPowersOfTwo) {
  ProfileHistogram H;
  H.record(0); // Bucket 0.
  H.record(1); // Bucket 1: [1, 2).
  H.record(2); // Bucket 2: [2, 4).
  H.record(3);
  H.record(1000);
  EXPECT_EQ(H.Count, 5u);
  EXPECT_EQ(H.Sum, 1006u);
  EXPECT_EQ(H.Max, 1000u);
  EXPECT_DOUBLE_EQ(H.mean(), 1006.0 / 5.0);
  EXPECT_EQ(H.Buckets[0], 1u);
  EXPECT_EQ(H.Buckets[1], 1u);
  EXPECT_EQ(H.Buckets[2], 2u);
  EXPECT_EQ(H.Buckets[10], 1u); // 1000 is in [512, 1024).
}

TEST(Profiler, JsonWriterEmitsPhasesAndHistograms) {
  Runtime::Config Cfg;
  Cfg.EnableProfile = true;
  EditedMapRun W(Cfg);
  std::ostringstream Out;
  W.RT.profile().writeJson(Out);
  std::string J = Out.str();
  EXPECT_EQ(J.front(), '{');
  EXPECT_EQ(J.back(), '}');
  for (const char *Key :
       {"\"enabled\": true", "\"propagate_ns\"", "\"reexec_ns\"",
        "\"revoke_ns\"", "\"memo_lookup_ns\"", "\"queue_ns\"",
        "\"reexec_work_hist\"", "\"use_scan_hist\"", "\"buckets\""})
    EXPECT_NE(J.find(Key), std::string::npos) << Key;
}

//===----------------------------------------------------------------------===//
// Simulated-GC mark vs. stats resets
//===----------------------------------------------------------------------===//

TEST(SimulatedGc, StatsResetDoesNotForcePerAllocationScans) {
  // Force at least one collection so GcAllocMark moves off zero, then
  // reset the stats. Before the fix, Arena::resetStats() zeroed
  // TotalAllocated while the mark kept its old value, so the headroom
  // subtraction wrapped and every later allocation "collected".
  std::vector<Word> In;
  Rng R(17);
  for (int I = 0; I < 1500; ++I)
    In.push_back(R.below(1000));

  Runtime Probe;
  {
    ListHandle L = buildList(Probe, In);
    Modref *D = Probe.modref();
    Probe.runCore<&mapCore>(L.Head, D, &mapFn, Word(0));
  }
  size_t Live = Probe.maxLiveBytes();

  Runtime::Config Cfg;
  Cfg.HeapLimitBytes = Live + Live / 4;
  Runtime RT(Cfg);
  ListHandle L = buildList(RT, In);
  Modref *D = RT.modref();
  RT.runCore<&mapCore>(L.Head, D, &mapFn, Word(0));
  ASSERT_FALSE(RT.outOfMemory());
  ASSERT_GE(RT.stats().GcScans, 1u) << "workload too small to trigger GC";

  RT.resetStats();
  ASSERT_EQ(RT.stats().GcScans, 0u);
  // A handful of small edits allocates far less than the post-reset
  // headroom; any scan here means the mark wrapped.
  for (size_t E = 0; E < 4; ++E) {
    size_t Index = R.below(In.size());
    detachCell(RT, L, Index);
    RT.propagate();
    reattachCell(RT, L, Index);
    RT.propagate();
  }
  EXPECT_EQ(RT.stats().GcScans, 0u);
}

TEST(SimulatedGc, BareArenaResetIsClampedDefensively) {
  // Resetting only the arena statistics (not via Runtime::resetStats)
  // leaves the mark ahead of the cumulative counter; maybeSimulateGc must
  // re-anchor instead of wrapping.
  std::vector<Word> In;
  Rng R(19);
  for (int I = 0; I < 1500; ++I)
    In.push_back(R.below(1000));

  Runtime Probe;
  {
    ListHandle L = buildList(Probe, In);
    Modref *D = Probe.modref();
    Probe.runCore<&mapCore>(L.Head, D, &mapFn, Word(0));
  }
  size_t Live = Probe.maxLiveBytes();

  Runtime::Config Cfg;
  Cfg.HeapLimitBytes = Live + Live / 4;
  Runtime RT(Cfg);
  ListHandle L = buildList(RT, In);
  Modref *D = RT.modref();
  RT.runCore<&mapCore>(L.Head, D, &mapFn, Word(0));
  ASSERT_GE(RT.stats().GcScans, 1u);

  RT.arena().resetStats();
  uint64_t ScansAfterReset = RT.stats().GcScans;
  for (size_t E = 0; E < 4; ++E) {
    size_t Index = R.below(In.size());
    detachCell(RT, L, Index);
    RT.propagate();
    reattachCell(RT, L, Index);
    RT.propagate();
  }
  EXPECT_EQ(RT.stats().GcScans, ScansAfterReset);
}

//===----------------------------------------------------------------------===//
// Narrowing limits fail hard in every build type
//===----------------------------------------------------------------------===//

namespace {

Closure *noInit(Runtime &, void *) { return nullptr; }

Closure *hugeAllocBody(Runtime &RT, Word) {
  RT.alloc<&noInit>(size_t(UINT32_MAX));
  return nullptr;
}

} // namespace

TEST(NarrowingChecksDeathTest, OversizedTracedAllocationAborts) {
  EXPECT_DEATH(
      {
        Runtime RT;
        RT.runCore<&hugeAllocBody>(Word(0));
      },
      "32-bit size limit");
}

TEST(NarrowingChecksDeathTest, OversizedClosureArityAborts) {
  EXPECT_DEATH(
      {
        Runtime RT;
        std::vector<Word> Args(size_t(UINT16_MAX) + 1, 0);
        RT.makeRaw(nullptr, Args.data(), Args.size());
      },
      "16-bit frame limit");
}

//===----------------------------------------------------------------------===//
// Dynamic-keyed modifiables allocate nothing transient
//===----------------------------------------------------------------------===//

namespace {

Closure *noopCore(Runtime &, Word) { return nullptr; }

Closure *dynModrefCore(Runtime &RT, Word NumKeys) {
  Word Keys[8];
  for (Word I = 0; I < NumKeys; ++I)
    Keys[I] = 100 + I;
  RT.coreModrefDynamic(Keys, size_t(NumKeys));
  return nullptr;
}

} // namespace

TEST(DynamicModref, ArenaAllocationsIndependentOfKeyCount) {
  // Per call: the init closure, the AllocNode, and the modref block —
  // built in place, no transient key frame. The entry closure of runCore
  // is the only other arena allocation; subtract it via a no-op run.
  Runtime RT;
  size_t Before = RT.arena().allocationCount();
  RT.runCore<&noopCore>(Word(0));
  size_t NoopDelta = RT.arena().allocationCount() - Before;

  Before = RT.arena().allocationCount();
  RT.runCore<&dynModrefCore>(Word(2));
  size_t TwoKeys = RT.arena().allocationCount() - Before - NoopDelta;

  Before = RT.arena().allocationCount();
  RT.runCore<&dynModrefCore>(Word(8));
  size_t EightKeys = RT.arena().allocationCount() - Before - NoopDelta;

  EXPECT_EQ(TwoKeys, 3u);
  EXPECT_EQ(EightKeys, 3u);
}

//===----------------------------------------------------------------------===//
// deref is a mutator operation
//===----------------------------------------------------------------------===//

#ifndef NDEBUG
namespace {

Closure *derefInCore(Runtime &RT, Word MRef) {
  // Illegal: deref from core code bypasses the traced-read protocol.
  RT.deref(fromWord<Modref *>(MRef));
  return nullptr;
}

} // namespace

TEST(PhaseChecksDeathTest, DerefFromCoreAsserts) {
  EXPECT_DEATH(
      {
        Runtime RT;
        Modref *M = RT.modref<int64_t>(1);
        RT.runCore<&derefInCore>(toWord(M));
      },
      "deref is a mutator operation");
}
#endif
