//===- tests/GeometryOracleTest.cpp - Independent geometry oracles --------===//
//
// The main geometry tests compare the self-adjusting cores against the
// conventional implementations, but those share combine functions; these
// tests check both against *independent* oracles: gift-wrapping (a
// different hull algorithm) and the convexity/containment properties
// every correct hull must satisfy.
//
//===----------------------------------------------------------------------===//

#include "apps/Geometry.h"
#include "support/Random.h"
#include "tests/support/OracleModels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

using namespace ceal;
using namespace ceal::apps;

namespace {

/// Gift-wrapping (Jarvis march) — an algorithm with no code in common
/// with quickhull. The successor choice keeps every point to the right
/// of each hull edge, so the walk is clockwise, matching quickhullCore's
/// output order.
std::vector<const Point *>
giftWrap(const std::vector<const Point *> &Pts) {
  if (Pts.size() < 2)
    return Pts;
  const Point *Start = Pts[0];
  for (const Point *P : Pts)
    if (P->X < Start->X || (P->X == Start->X && P->Y < Start->Y))
      Start = P;
  std::vector<const Point *> Hull;
  const Point *Cur = Start;
  do {
    Hull.push_back(Cur);
    const Point *Next = nullptr;
    for (const Point *Cand : Pts) {
      if (Cand == Cur)
        continue;
      if (!Next) {
        Next = Cand;
        continue;
      }
      double O = orient(Cur, Next, Cand);
      if (O > 0 ||
          (O == 0 && dist2(Cur, Cand) > dist2(Cur, Next)))
        Next = Cand; // Cand lies left of the tentative edge: swing out.
    }
    Cur = Next;
    if (Hull.size() > Pts.size() + 1) {
      ADD_FAILURE() << "gift wrapping failed to terminate";
      return Hull;
    }
  } while (Cur != Start && Cur);
  return Hull;
}

std::vector<const Point *> hullFromRuntime(Runtime &RT, Modref *Dst) {
  std::vector<const Point *> Result;
  for (auto *C = RT.derefT<Cell *>(Dst); C; C = RT.derefT<Cell *>(C->Tail))
    Result.push_back(fromWord<const Point *>(C->Head));
  return Result;
}

/// Hull sanity: quickhullCore emits vertices in clockwise order (min-x
/// first, then across the top), so consecutive turns are right turns and
/// all points lie on or right of each directed edge.
void expectValidHull(const std::vector<const Point *> &Hull,
                     const std::vector<Point *> &Pts) {
  ASSERT_GE(Hull.size(), 3u);
  size_t H = Hull.size();
  for (size_t I = 0; I < H; ++I) {
    const Point *A = Hull[I], *B = Hull[(I + 1) % H],
                *C = Hull[(I + 2) % H];
    EXPECT_LT(orient(A, B, C), 0.0) << "hull not strictly convex at " << I;
  }
  for (const Point *P : Pts)
    for (size_t I = 0; I < H; ++I) {
      const Point *A = Hull[I], *B = Hull[(I + 1) % H];
      EXPECT_LE(orient(A, B, P), 0.0)
          << "point outside hull edge " << I;
    }
  // No duplicate vertices.
  std::set<const Point *> Unique(Hull.begin(), Hull.end());
  EXPECT_EQ(Unique.size(), Hull.size());
}

} // namespace

TEST(GeometryOracle, SelfAdjustingHullIsValidAndMatchesGiftWrap) {
  for (uint64_t Seed : {1ull, 2ull, 3ull, 4ull}) {
    Rng R(Seed);
    Runtime RT;
    std::vector<Point *> Pts = randomPoints(RT, R, 150);
    ListHandle L = buildPointList(RT, Pts);
    Modref *Dst = RT.modref();
    RT.runCore<&quickhullCore>(L.Head, Dst);
    std::vector<const Point *> Hull = hullFromRuntime(RT, Dst);
    expectValidHull(Hull, Pts);

    // Both walks are clockwise from the min-x vertex; compare as a
    // rotation to be robust to the starting choice.
    std::vector<const Point *> Wrap =
        giftWrap({Pts.begin(), Pts.end()});
    ASSERT_EQ(Hull.size(), Wrap.size()) << "seed " << Seed;
    auto It = std::find(Wrap.begin(), Wrap.end(), Hull[0]);
    ASSERT_NE(It, Wrap.end());
    std::rotate(Wrap.begin(), It, Wrap.end());
    EXPECT_EQ(Hull, Wrap) << "seed " << Seed;
  }
}

namespace {

/// The edit sweep ported onto the oracle harness, against the
/// *independent* oracle: expected() is the gift-wrap hull of the active
/// points, and output() additionally asserts convexity/containment.
/// Both hulls are clockwise cycles; rotating each to its smallest vertex
/// pointer makes the word-for-word comparison rotation-invariant.
class ValidHullModel : public harness::AppModel {
public:
  void setup(Runtime &RT, Rng &R) override {
    std::vector<Point *> Pts = randomPoints(RT, R, 30 + R.below(91));
    Edit.init(buildPointList(RT, Pts));
    Edit.MinLive = 3;
    Dst = RT.modref();
    RT.runCore<&quickhullCore>(Edit.L.Head, Dst);
  }

  void applyChange(Runtime &RT, Rng &R) override { Edit.randomEdit(RT, R); }

  std::vector<Word> output(Runtime &RT) override {
    std::vector<const Point *> Hull = hullFromRuntime(RT, Dst);
    expectValidHull(Hull, activePts(RT));
    return normalized(Hull);
  }

  std::vector<Word> expected(Runtime &RT) override {
    std::vector<Point *> Active = activePts(RT);
    return normalized(giftWrap({Active.begin(), Active.end()}));
  }

private:
  std::vector<Point *> activePts(Runtime &RT) {
    std::vector<Point *> Active;
    for (Word W : readList(RT, Edit.L.Head))
      Active.push_back(fromWord<Point *>(W));
    return Active;
  }

  static std::vector<Word> normalized(std::vector<const Point *> Hull) {
    if (!Hull.empty())
      std::rotate(Hull.begin(),
                  std::min_element(Hull.begin(), Hull.end()), Hull.end());
    std::vector<Word> Out;
    for (const Point *P : Hull)
      Out.push_back(toWord(P));
    return Out;
  }

  harness::ListEditor Edit;
  Modref *Dst = nullptr;
};

} // namespace

TEST(GeometryOracle, HullStaysValidUnderEdits) {
  harness::HarnessOptions Opt;
  Opt.Sequences = 5;
  Opt.Changes = 10;
  Opt.BaseSeed = 9;
  EXPECT_EQ(harness::runOracleHarness(
                [] { return std::make_unique<ValidHullModel>(); }, Opt),
            "");
}

TEST(GeometryOracle, DiameterMatchesBruteForceOverAllPairs) {
  Rng R(11);
  Runtime RT;
  std::vector<Point *> Pts = randomPoints(RT, R, 90);
  ListHandle L = buildPointList(RT, Pts);
  Modref *Dst = RT.modref();
  RT.runCore<&diameterCore>(L.Head, Dst);
  double Best = 0;
  for (const Point *P : Pts)
    for (const Point *Q : Pts)
      Best = std::max(Best, dist2(P, Q));
  EXPECT_DOUBLE_EQ(RT.derefT<double>(Dst), Best);
}

TEST(GeometryOracle, DistanceMatchesBruteForceOverAllPairs) {
  // For DISJOINT CONVEX sets, the min vertex-vertex distance our core
  // computes is compared against the brute force over hull vertices;
  // with well-separated squares it equals the min over all input pairs
  // only when the closest pair are hull vertices — which brute force
  // over hulls confirms independently via gift wrapping.
  Rng R(12);
  Runtime RT;
  std::vector<Point *> A = randomPoints(RT, R, 80, 0.0);
  std::vector<Point *> B = randomPoints(RT, R, 80, 3.0);
  ListHandle LA = buildPointList(RT, A);
  ListHandle LB = buildPointList(RT, B);
  Modref *Dst = RT.modref();
  RT.runCore<&distanceCore>(LA.Head, LB.Head, Dst);

  std::vector<const Point *> HA = giftWrap({A.begin(), A.end()});
  std::vector<const Point *> HB = giftWrap({B.begin(), B.end()});
  double Best = 1e300;
  for (const Point *P : HA)
    for (const Point *Q : HB)
      Best = std::min(Best, dist2(P, Q));
  EXPECT_DOUBLE_EQ(RT.derefT<double>(Dst), Best);
}
