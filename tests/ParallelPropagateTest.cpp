//===- tests/ParallelPropagateTest.cpp - Parallel propagation oracle ------===//
//
// The parallel change-propagation correctness bar: a propagation that
// runs over certified interval groups on worker threads must be
// OBSERVATIONALLY IDENTICAL to the sequential one — same outputs and
// the same placement-abstract trace-shape digest after every step, on
// every app, including steps after a parallel phase (a divergence can
// surface one step late through memo-table state). The twin-run sweep
// below drives each oracle model through the same seeded change
// sequence twice, sequential vs. parallel, in lockstep.
//
// Also covered: the dynamic-conflict demotion (a seeded three-sided
// core whose groups genuinely couple goes sticky-sequential), the
// benign-spillover classification (forwards outside every region do
// not demote), and the post-join trace audit at every AuditLevel.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"
#include "runtime/Snapshot.h"
#include "runtime/TraceAudit.h"
#include "tests/support/OracleHarness.h"
#include "tests/support/OracleModels.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <vector>

using namespace ceal;
using namespace ceal::harness;

namespace {

/// The twin-run comparison needs full control over which runtime is
/// parallel; CEAL_PARALLEL_PROPAGATE would override both sides.
struct ClearParallelEnv : ::testing::Environment {
  void SetUp() override { ::unsetenv("CEAL_PARALLEL_PROPAGATE"); }
};
const ::testing::Environment *const Registrar =
    ::testing::AddGlobalTestEnvironment(new ClearParallelEnv);

Runtime::Config parallelConfig(unsigned Threads,
                               AuditLevel Audit = AuditLevel::EveryPropagation) {
  Runtime::Config C;
  C.Audit = Audit;
  C.ParallelPropagate = true;
  C.ParallelThreads = Threads;
  return C;
}

/// Replays one seeded change sequence and returns the trace-shape digest
/// after setup and after every propagation, plus the outputs alongside.
struct StepTrace {
  std::vector<uint64_t> Digests;
  std::vector<std::vector<Word>> Outputs;
};

StepTrace replay(const ModelFactory &Make, uint64_t Seed, int Changes,
                 const Runtime::Config &Cfg) {
  StepTrace T;
  Runtime RT(Cfg);
  std::unique_ptr<AppModel> Model = Make();
  {
    Rng SetupRng(gen::mixSeed(Seed, 0));
    Model->setup(RT, SetupRng);
  }
  T.Digests.push_back(Snapshot::traceShapeDigest(RT));
  T.Outputs.push_back(Model->output(RT));
  for (int Step = 0; Step < Changes; ++Step) {
    Rng ChangeRng(gen::mixSeed(Seed, static_cast<uint64_t>(Step) + 1));
    Model->applyChange(RT, ChangeRng);
    RT.propagate();
    TraceAudit::Report Audit = TraceAudit::inspect(RT);
    EXPECT_TRUE(Audit.ok()) << "step " << Step << ": " << Audit.summary();
    EXPECT_EQ(Model->output(RT), Model->expected(RT)) << "step " << Step;
    T.Digests.push_back(Snapshot::traceShapeDigest(RT));
    T.Outputs.push_back(Model->output(RT));
  }
  return T;
}

/// The oracle proper: sequential and parallel replays of the same seeds
/// must agree on every digest and every output at every step.
void twinRunSweep(const char *Name, const ModelFactory &Make,
                  unsigned Threads, int Sequences = 6, int Changes = 8,
                  uint64_t BaseSeed = 0xcea1bea7) {
  for (int Seq = 0; Seq < Sequences; ++Seq) {
    uint64_t Seed = gen::mixSeed(BaseSeed, static_cast<uint64_t>(Seq));
    StepTrace S = replay(Make, Seed, Changes, auditedConfig());
    StepTrace P = replay(Make, Seed, Changes, parallelConfig(Threads));
    ASSERT_EQ(S.Digests.size(), P.Digests.size());
    for (size_t I = 0; I < S.Digests.size(); ++I) {
      EXPECT_EQ(S.Outputs[I], P.Outputs[I])
          << Name << " seq " << Seq << " step " << int(I) - 1 << " ("
          << Threads << " threads)";
      ASSERT_EQ(S.Digests[I], P.Digests[I])
          << Name << " seq " << Seq << " step " << int(I) - 1 << " ("
          << Threads
          << " threads): parallel propagation produced a trace shape "
             "sequential propagation would not have";
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Twin-run digest oracle across the apps, at 2 and 4 threads
//===----------------------------------------------------------------------===//

TEST(ParallelPropagate, ListAppsMatchSequential2) {
  twinRunSweep("list", [] { return std::make_unique<ListModel>(8, 48); }, 2);
}
TEST(ParallelPropagate, ListAppsMatchSequential4) {
  twinRunSweep("list", [] { return std::make_unique<ListModel>(8, 48); }, 4);
}
TEST(ParallelPropagate, ExpTreesMatchSequential2) {
  twinRunSweep("exptrees", [] { return std::make_unique<ExpTreeModel>(); }, 2);
}
TEST(ParallelPropagate, ExpTreesMatchSequential4) {
  twinRunSweep("exptrees", [] { return std::make_unique<ExpTreeModel>(); }, 4);
}
TEST(ParallelPropagate, TreeContractionMatchesSequential2) {
  twinRunSweep("rctree",
               [] { return std::make_unique<TreeContractionModel>(); }, 2);
}
TEST(ParallelPropagate, TreeContractionMatchesSequential4) {
  twinRunSweep("rctree",
               [] { return std::make_unique<TreeContractionModel>(); }, 4);
}
TEST(ParallelPropagate, QuickhullMatchesSequential2) {
  twinRunSweep("quickhull", [] { return std::make_unique<QuickhullModel>(); },
               2);
}
TEST(ParallelPropagate, QuickhullMatchesSequential4) {
  twinRunSweep("quickhull", [] { return std::make_unique<QuickhullModel>(); },
               4);
}
TEST(ParallelPropagate, DiameterMatchesSequential2) {
  twinRunSweep("diameter", [] { return std::make_unique<DiameterModel>(); },
               2);
}
TEST(ParallelPropagate, DistanceMatchesSequential4) {
  twinRunSweep("distance", [] { return std::make_unique<DistanceModel>(); },
               4);
}

//===----------------------------------------------------------------------===//
// Post-join audit at every AuditLevel
//===----------------------------------------------------------------------===//

TEST(ParallelPropagate, AuditPassesAtEveryLevel) {
  for (AuditLevel L : {AuditLevel::Off, AuditLevel::Checkpoints,
                       AuditLevel::EveryPropagation}) {
    // EveryPropagation audits inside propagate() (abort on violation);
    // the explicit inspect() in replay() covers the other levels.
    StepTrace T = replay([] { return std::make_unique<ListModel>(8, 48); },
                         0x5eed, 6, parallelConfig(4, L));
    EXPECT_EQ(T.Digests.size(), 7u);
  }
}

//===----------------------------------------------------------------------===//
// Seeded dynamic-conflict demotion and benign-spillover classification
//===----------------------------------------------------------------------===//

namespace {

// A three-sided core driven below in two wirings.
//
// Coupled wiring (sticky): side1 reads A and writes the intermediate X;
// side3 reads C and then X, writing Out2. Editing A and C dirties both
// side intervals — two disjoint clusters, two groups — but re-executing
// side1 writes X, invalidating side3's nested X-read, which lies INSIDE
// side3's certified region: a cross-group effect. The phase must
// forward it (correctness) and demote to sticky-sequential
// (performance).
//
// Spillover wiring (benign): side2 reads B and then X, writing Out, and
// the edits touch A and C where side3 never reads X. Side2 is not dirty,
// so its interval lies OUTSIDE every certified region; side1's write of
// X forwards side2's read, but that is exactly what sequential cascade
// invalidation does — no demotion.

Closure *ppSide1Got(Runtime &RT, Word AV, Modref *X) {
  RT.writeT(X, AV * 2);
  return nullptr;
}
Closure *ppSide1(Runtime &RT, Modref *A, Modref *X) {
  return RT.readTail<&ppSide1Got>(A, X);
}
Closure *ppReadXGot(Runtime &RT, Word XV, Word Base, Modref *Out) {
  RT.writeT(Out, XV + Base);
  return nullptr;
}
Closure *ppReadThenXGot(Runtime &RT, Word BV, Modref *X, Modref *Out) {
  return RT.readTail<&ppReadXGot>(X, BV, Out);
}
Closure *ppReadThenX(Runtime &RT, Modref *B, Modref *X, Modref *Out) {
  return RT.readTail<&ppReadThenXGot>(B, X, Out);
}
Closure *ppIndepGot(Runtime &RT, Word CV, Modref *Out2) {
  RT.writeT(Out2, CV + 9);
  return nullptr;
}
Closure *ppIndep(Runtime &RT, Modref *C, Modref *Out2) {
  return RT.readTail<&ppIndepGot>(C, Out2);
}

/// Coupled: side3 = reads C then X.
Closure *coupledCore(Runtime &RT, Modref *A, Modref *B, Modref *C, Modref *X,
                     Modref *Out, Modref *Out2) {
  (void)B;
  (void)Out;
  RT.callFn<&ppSide1>(A, X);
  RT.callFn<&ppReadThenX>(C, X, Out2);
  return nullptr;
}

/// Spillover: side2 (not edited) reads B then X; side3 independent.
Closure *spilloverCore(Runtime &RT, Modref *A, Modref *B, Modref *C,
                       Modref *X, Modref *Out, Modref *Out2) {
  RT.callFn<&ppSide1>(A, X);
  RT.callFn<&ppReadThenX>(B, X, Out);
  RT.callFn<&ppIndep>(C, Out2);
  return nullptr;
}

struct ThreeSided {
  Runtime RT;
  Modref *A, *B, *C, *X, *Out, *Out2;

  explicit ThreeSided(const Runtime::Config &Cfg) : RT(Cfg) {
    A = RT.modref(Word(10));
    B = RT.modref(Word(100));
    C = RT.modref(Word(1000));
    X = RT.modref();
    Out = RT.modref();
    Out2 = RT.modref();
  }
};

Runtime::Config profiledParallel(unsigned Threads) {
  Runtime::Config Cfg = parallelConfig(Threads);
  Cfg.EnableProfile = true;
  return Cfg;
}

} // namespace

TEST(ParallelPropagate, CrossGroupConflictForwardsAndDemotesSticky) {
  ThreeSided F{profiledParallel(2)};
  F.RT.runCore<&coupledCore>(F.A, F.B, F.C, F.X, F.Out, F.Out2);
  EXPECT_EQ(F.RT.deref(F.Out2), 1000u + 10u * 2);

  // Both side intervals dirty: two clusters, a parallel phase — whose
  // groups couple through X at run time.
  F.RT.modify(F.A, 13);
  F.RT.modify(F.C, 2000);
  F.RT.propagate();
  const PropagationProfile &P = F.RT.profile();
  EXPECT_EQ(P.ParallelRuns, 1u);
  EXPECT_EQ(P.ParallelConflicts, 1u);
  EXPECT_GE(P.ForwardedReads, 1u);
  // Correctness is never traded: the forwarded read re-ran in the
  // post-join drain against side1's new value of X.
  EXPECT_EQ(F.RT.deref(F.Out2), 2000u + 13u * 2);

  // Sticky: the same edit pair now refuses the parallel phase up front.
  F.RT.modify(F.A, 17);
  F.RT.modify(F.C, 3000);
  F.RT.propagate();
  EXPECT_EQ(F.RT.profile().ParallelRuns, 1u);
  EXPECT_GE(F.RT.profile().ParallelFallbacks, 1u);
  EXPECT_EQ(F.RT.deref(F.Out2), 3000u + 17u * 2);
}

TEST(ParallelPropagate, SpilloverOutsideRegionsDoesNotDemote) {
  ThreeSided F{profiledParallel(2)};
  F.RT.runCore<&spilloverCore>(F.A, F.B, F.C, F.X, F.Out, F.Out2);
  EXPECT_EQ(F.RT.deref(F.Out), 100u + 10u * 2);

  F.RT.modify(F.A, 13);
  F.RT.modify(F.C, 2000);
  F.RT.propagate();
  const PropagationProfile &P = F.RT.profile();
  EXPECT_EQ(P.ParallelRuns, 1u);
  EXPECT_EQ(P.ParallelConflicts, 0u);
  EXPECT_GE(P.ForwardedReads, 1u);
  EXPECT_EQ(F.RT.deref(F.Out), 100u + 13u * 2);
  EXPECT_EQ(F.RT.deref(F.Out2), 2000u + 9u);

  // Not sticky: the next eligible propagation still runs parallel.
  F.RT.modify(F.A, 17);
  F.RT.modify(F.C, 3000);
  F.RT.propagate();
  EXPECT_EQ(F.RT.profile().ParallelRuns, 2u);
  EXPECT_EQ(F.RT.profile().ParallelConflicts, 0u);
  EXPECT_EQ(F.RT.deref(F.Out), 100u + 17u * 2);
  EXPECT_EQ(F.RT.deref(F.Out2), 3000u + 9u);
}
