//===- tests/RuntimeExtrasTest.cpp - Codec/memo/trace edge cases ----------===//

#include "apps/ListApps.h"
#include "om/OrderList.h"
#include "runtime/MemoTable.h"
#include "runtime/Runtime.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ceal;

//===----------------------------------------------------------------------===//
// Word codec
//===----------------------------------------------------------------------===//

TEST(WordCodec, RoundTripsScalars) {
  EXPECT_EQ(fromWord<int64_t>(toWord<int64_t>(-1)), -1);
  EXPECT_EQ(fromWord<int32_t>(toWord<int32_t>(-7)), -7);
  EXPECT_EQ(fromWord<uint8_t>(toWord<uint8_t>(255)), 255);
  EXPECT_EQ(fromWord<bool>(toWord<bool>(true)), true);
  EXPECT_DOUBLE_EQ(fromWord<double>(toWord<double>(3.14159)), 3.14159);
  EXPECT_FLOAT_EQ(fromWord<float>(toWord<float>(-2.5f)), -2.5f);
  int X = 9;
  EXPECT_EQ(fromWord<int *>(toWord<int *>(&X)), &X);

  // NaN bit patterns survive (memcpy semantics, not value semantics).
  double Nan = std::nan("0x5ca1ab1e");
  EXPECT_EQ(toWord<double>(Nan), toWord<double>(Nan));

  // Distinct small types zero-extend (no sign smearing into the word).
  EXPECT_EQ(toWord<int32_t>(-1), 0xffffffffull);
}

//===----------------------------------------------------------------------===//
// MemoTable
//===----------------------------------------------------------------------===//

namespace {
struct FakeNode {
  MemoLinks<FakeNode> Memo;
  int Tag = 0;
};
} // namespace

TEST(MemoTable, InsertFindRemove) {
  // Chain links are arena handles, so the nodes must live in the arena
  // the table is bound to.
  Arena A;
  MemoTable<FakeNode> T(A);
  std::vector<FakeNode *> Nodes(500);
  Rng R(5);
  for (int I = 0; I < 500; ++I) {
    auto *N = new (A.allocate(sizeof(FakeNode))) FakeNode();
    N->Memo.Hash = uint32_t(R.below(64)); // Deliberately collision-heavy.
    N->Tag = I;
    Nodes[I] = N;
    T.insert(N);
  }
  EXPECT_EQ(T.size(), 500u);
  // Every node findable through its chain.
  for (int I = 0; I < 500; ++I) {
    bool Found = false;
    for (FakeNode *N = T.chainHead(Nodes[I]->Memo.Hash); N; N = T.next(N))
      Found |= N == Nodes[I];
    EXPECT_TRUE(Found) << I;
  }
  // Remove half, verify the rest remain reachable.
  for (int I = 0; I < 500; I += 2)
    T.remove(Nodes[I]);
  EXPECT_EQ(T.size(), 250u);
  for (int I = 1; I < 500; I += 2) {
    bool Found = false;
    for (FakeNode *N = T.chainHead(Nodes[I]->Memo.Hash); N; N = T.next(N))
      Found |= N == Nodes[I];
    EXPECT_TRUE(Found) << I;
  }
  for (int I = 0; I < 500; I += 2) {
    for (FakeNode *N = T.chainHead(Nodes[I]->Memo.Hash); N; N = T.next(N))
      EXPECT_NE(N, Nodes[I]);
  }
  for (FakeNode *N : Nodes)
    A.deallocate(N, sizeof(FakeNode));
}

//===----------------------------------------------------------------------===//
// Order-maintenance regression guards
//===----------------------------------------------------------------------===//

TEST(OrderListPerf, AppendRelabelsStayAmortizedConstant) {
  OrderList L;
  OmNode *Cur = L.base();
  for (int I = 0; I < 200000; ++I)
    Cur = L.insertAfter(Cur);
  // Group splits are cheap and bounded; the expensive range
  // redistribution must essentially never fire for appends (the
  // group-gap pathology fixed in OrderList::insertAfter).
  EXPECT_LT(L.rangeRelabelCount(), 8u);
  EXPECT_LT(L.relabelCount(), 200000u / 8);
}

TEST(OrderList, WalkVisitsInOrder) {
  OrderList L;
  Rng R(9);
  std::vector<OmNode *> Seq{L.base()};
  for (int I = 0; I < 500; ++I) {
    size_t At = R.below(Seq.size());
    OmNode *N = L.insertAfter(Seq[At]);
    Seq.insert(Seq.begin() + At + 1, N);
  }
  size_t Index = 0;
  for (OmNode *N = L.base(); N; N = OrderList::next(N), ++Index) {
    ASSERT_LT(Index, Seq.size());
    EXPECT_EQ(N, Seq[Index]);
  }
  EXPECT_EQ(Index, Seq.size());
}

//===----------------------------------------------------------------------===//
// Runtime edge cases
//===----------------------------------------------------------------------===//

namespace {

Closure *writeConst(Runtime &RT, Word V, Modref *Dst) {
  RT.write(Dst, V + 1);
  return nullptr;
}
Closure *plusOneCore(Runtime &RT, Modref *Src, Modref *Dst) {
  return RT.readTail<&writeConst>(Src, Dst);
}

Closure *longChainGot(Runtime &RT, Word V, Modref **Cells, Word Index,
                      Word Count, Modref *Dst) {
  if (Index + 1 == Count) {
    RT.write(Dst, V);
    return nullptr;
  }
  return RT.readTail<&longChainGot>(Cells[Index + 1], Cells, Index + 1, Count,
                                    Dst);
}
Closure *longChainCore(Runtime &RT, Modref **Cells, Word Count, Modref *Dst) {
  return RT.readTail<&longChainGot>(Cells[0], Cells, Word(0), Count, Dst);
}

} // namespace

TEST(RuntimeExtras, ReadOfUnwrittenModrefSeesZero) {
  Runtime RT;
  Modref *Src = RT.modref(); // Never written: initial value 0.
  Modref *Dst = RT.modref();
  RT.runCore<&plusOneCore>(Src, Dst);
  EXPECT_EQ(RT.deref(Dst), 1u);
}

TEST(RuntimeExtras, MetaFreeReclaimsUnusedModifiable) {
  Runtime RT;
  size_t Before = RT.liveBytes();
  Modref *M = RT.modref<int64_t>(5);
  EXPECT_GT(RT.liveBytes(), Before);
  RT.metaFree(M);
  EXPECT_EQ(RT.liveBytes(), Before);
}

TEST(RuntimeExtras, SequentialCoresShareInputs) {
  // Three separate run_core invocations over one input; all update on one
  // propagate (the paper's mutator may create several cores).
  Runtime RT;
  Modref *Src = RT.modref<int64_t>(10);
  Modref *D1 = RT.modref(), *D2 = RT.modref(), *D3 = RT.modref();
  RT.runCore<&plusOneCore>(Src, D1);
  RT.runCore<&plusOneCore>(Src, D2);
  RT.runCore<&plusOneCore>(D1, D3); // Chains across cores.
  EXPECT_EQ(RT.deref(D3), 12u);
  RT.modifyT<int64_t>(Src, 100);
  RT.propagate();
  EXPECT_EQ(RT.deref(D1), 101u);
  EXPECT_EQ(RT.deref(D2), 101u);
  EXPECT_EQ(RT.deref(D3), 102u);
}

TEST(RuntimeExtras, DeepTailChainDoesNotGrowStack) {
  // 300k chained reads: with read trampolining the C stack stays flat;
  // a recursive implementation would overflow long before this.
  Runtime RT;
  constexpr size_t N = 300000;
  std::vector<Modref *> Cells(N);
  for (size_t I = 0; I < N; ++I)
    Cells[I] = RT.modref<Word>(I);
  Modref *Dst = RT.modref();
  RT.runCore<&longChainCore>(Cells.data(), Word(N), Dst);
  EXPECT_EQ(RT.deref(Dst), N - 1);
  RT.modifyT<Word>(Cells[N - 1], 777);
  RT.propagate();
  EXPECT_EQ(RT.deref(Dst), 777u);
}

TEST(RuntimeExtras, PropagateWithoutChangesIsFree) {
  Runtime RT;
  Modref *Src = RT.modref<int64_t>(3);
  Modref *Dst = RT.modref();
  RT.runCore<&plusOneCore>(Src, Dst);
  uint64_t Before = RT.stats().ReadsReexecuted;
  for (int I = 0; I < 10; ++I)
    RT.propagate();
  EXPECT_EQ(RT.stats().ReadsReexecuted, Before);
}

TEST(RuntimeExtras, ManyModifiesCoalesceIntoOnePropagation) {
  Runtime RT;
  Modref *Src = RT.modref<int64_t>(0);
  Modref *Dst = RT.modref();
  RT.runCore<&plusOneCore>(Src, Dst);
  for (int64_t V = 1; V <= 100; ++V)
    RT.modifyT<int64_t>(Src, V);
  RT.propagate();
  EXPECT_EQ(RT.derefT<int64_t>(Dst), 101);
  // One read, re-executed once despite 100 modifications.
  EXPECT_EQ(RT.stats().ReadsReexecuted, 1u);
}

//===----------------------------------------------------------------------===//
// Randomized multi-write stress against a semantic oracle
//===----------------------------------------------------------------------===//

namespace {

/// Core: writes Dst1 = f(In), then Dst2 = g(Dst1 value), with an
/// intermediate rewrite of Dst1 — exercising the multi-write governance.
Closure *mwGot2(Runtime &RT, Word V, Modref *Dst2) {
  RT.write(Dst2, V * 3);
  return nullptr;
}
Closure *mwGot1(Runtime &RT, Word V, Modref *Dst1, Modref *Dst2) {
  RT.write(Dst1, V + 1);
  RT.write(Dst1, V + 2); // Overwrites before anyone reads.
  return RT.readTail<&mwGot2>(Dst1, Dst2);
}
Closure *mwCore(Runtime &RT, Modref *In, Modref *Dst1, Modref *Dst2) {
  return RT.readTail<&mwGot1>(In, Dst1, Dst2);
}

} // namespace

TEST(RuntimeExtras, MultiWriteStress) {
  Rng R(31);
  Runtime RT;
  Modref *In = RT.modref<Word>(0);
  Modref *D1 = RT.modref(), *D2 = RT.modref();
  RT.runCore<&mwCore>(In, D1, D2);
  for (int Round = 0; Round < 200; ++Round) {
    Word V = R.below(1000);
    RT.modify(In, V);
    RT.propagate();
    ASSERT_EQ(RT.deref(D1), V + 2) << Round;
    ASSERT_EQ(RT.deref(D2), (V + 2) * 3) << Round;
  }
}
