//===- tests/TraceAuditTest.cpp - Trace sanitizer unit tests --------------===//
//
// Two directions: traces the runtime builds must audit clean (at every
// level, across runs and propagations), and deliberately corrupted state
// must be *detected* — each corruption test breaks one structure through
// public types (Modref, ReadNode are plain structs) and asserts inspect()
// reports it rather than crashing.
//
//===----------------------------------------------------------------------===//

#include "apps/ListApps.h"
#include "runtime/TraceAudit.h"
#include "support/Random.h"
#include "tests/support/Generators.h"

#include <gtest/gtest.h>

#include <tuple>

using namespace ceal;
using namespace ceal::apps;

namespace {

Word mapId(Word X, Word) { return X * 2 + 1; }

/// A small runtime with a mapped list: enough structure to exercise every
/// audit pass (reads, writes, allocs, memo entries, use lists).
struct Fixture {
  Runtime RT;
  ListHandle L;
  Modref *Dst;

  explicit Fixture(Runtime::Config C = {}, size_t N = 24) : RT(C) {
    Rng R(42);
    L = buildList(RT, gen::randomWords(R, N));
    Dst = RT.modref();
    RT.runCore<&mapCore>(L.Head, Dst, &mapId, Word(0));
  }

  /// The first traced read in some cell's use list.
  ReadNode *someRead() {
    Arena &A = RT.arena();
    for (Cell *C : L.Cells)
      for (Use *U = A.ptr(C->Tail->Head); U; U = A.ptr(U->NextUse))
        if (U->Kind == TraceKind::Read)
          return static_cast<ReadNode *>(U);
    return nullptr;
  }
};

/// True if some violation message contains \p Needle.
bool reports(const TraceAudit::Report &Rep, const char *Needle) {
  for (const std::string &V : Rep.Violations)
    if (V.find(Needle) != std::string::npos)
      return true;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Clean traces audit clean
//===----------------------------------------------------------------------===//

TEST(TraceAudit, FreshRunAuditsClean) {
  Fixture F;
  TraceAudit::Report Rep = TraceAudit::inspect(F.RT);
  EXPECT_TRUE(Rep.ok()) << Rep.summary();
  EXPECT_GT(Rep.Reads, 0u);
  EXPECT_GT(Rep.Writes, 0u);
  EXPECT_GT(Rep.Timestamps, Rep.Reads);
  EXPECT_GT(Rep.TraceBytes, 0u);
}

TEST(TraceAudit, CleanAcrossEditsAndPropagations) {
  Fixture F;
  Rng R(7);
  for (int Edit = 0; Edit < 12; ++Edit) {
    size_t I = R.below(F.L.Cells.size());
    detachCell(F.RT, F.L, I);
    F.RT.propagate();
    TraceAudit::Report Rep = TraceAudit::inspect(F.RT);
    ASSERT_TRUE(Rep.ok()) << "after delete: " << Rep.summary();
    reattachCell(F.RT, F.L, I);
    F.RT.propagate();
    Rep = TraceAudit::inspect(F.RT);
    ASSERT_TRUE(Rep.ok()) << "after reinsert: " << Rep.summary();
  }
}

TEST(TraceAudit, EveryPropagationHooksRunOnCleanTraces) {
  Runtime::Config C;
  C.Audit = AuditLevel::EveryPropagation;
  // Constructing, running, editing, propagating with the hooks live must
  // not abort.
  Fixture F(C);
  detachCell(F.RT, F.L, 3);
  F.RT.propagate();
  reattachCell(F.RT, F.L, 3);
  F.RT.propagate();
  EXPECT_EQ(F.RT.derefT<Cell *>(F.L.Head), F.L.Cells[0]);
}

TEST(TraceAudit, CheckpointLevelAuditsOnlyOnRequest) {
  Runtime::Config C;
  C.Audit = AuditLevel::Checkpoints;
  Fixture F(C);
  F.RT.auditNow("explicit checkpoint"); // Clean: must not abort.
  SUCCEED();
}

TEST(TraceAudit, CheckpointsCleanWithFastPathReserveAndChurn) {
  // The construction fast path (OM append mode, raw-init nodes, deferred
  // memo build) plus an input-size reservation, audited the way the
  // benchmarks run: checkpoint after the from-scratch run, then through
  // edit/propagate churn that revisits the half-open groups and the
  // bulk-built memo index.
  Runtime::Config C;
  C.Audit = AuditLevel::Checkpoints;
  Runtime RT(C);
  const size_t N = 512;
  RT.reserveTrace(4 * N);
  Rng R(11);
  ListHandle L = buildList(RT, gen::randomWords(R, N));
  Modref *Dst = RT.modref();
  RT.runCore<&mapCore>(L.Head, Dst, &mapId, Word(0));
  RT.auditNow("after fast-path construction");
  TraceAudit::Report Rep = TraceAudit::inspect(RT);
  ASSERT_TRUE(Rep.ok()) << Rep.summary();
  ASSERT_GT(Rep.Reads, N) << "trace unexpectedly small";

  for (int Edit = 0; Edit < 16; ++Edit) {
    size_t I = R.below(L.Cells.size());
    detachCell(RT, L, I);
    RT.propagate();
    reattachCell(RT, L, I);
    RT.propagate();
    RT.auditNow("after churn round");
  }
  Rep = TraceAudit::inspect(RT);
  EXPECT_TRUE(Rep.ok()) << Rep.summary();
}

TEST(TraceAudit, FastPathTraceMatchesLegacyShape) {
  // The fast path is a constant-factor optimization: with it on or off,
  // the same program must trace the same reads, writes, allocations, and
  // timestamps, and both traces must audit clean.
  auto Shape = [](bool Disable) {
    Runtime::Config C;
    C.DisableConstructionFastPath = Disable;
    Fixture F(C, 64);
    TraceAudit::Report Rep = TraceAudit::inspect(F.RT);
    EXPECT_TRUE(Rep.ok()) << Rep.summary();
    return std::tuple(Rep.Reads, Rep.Writes, Rep.Allocs, Rep.Timestamps);
  };
  EXPECT_EQ(Shape(false), Shape(true));
}

TEST(TraceAudit, TraceShapeIsLayoutIndependent) {
  // Golden trace-shape signature for a fixed workload (seeded Fixture,
  // N = 64). The compressed and CEAL_WIDE_TRACE builds both run this
  // test, so if either layout changes what gets traced — rather than
  // just how the nodes are packed — one of the two builds diverges from
  // the golden and fails. This is the cross-build analogue of
  // FastPathTraceMatchesLegacyShape above.
  Fixture F({}, 64);
  TraceAudit::Report Rep = TraceAudit::inspect(F.RT);
  ASSERT_TRUE(Rep.ok()) << Rep.summary();
  EXPECT_EQ(Rep.Reads, 65u);
  EXPECT_EQ(Rep.Writes, 65u);
  EXPECT_EQ(Rep.Allocs, 128u);
  EXPECT_EQ(Rep.Timestamps, 324u);
}

TEST(TraceAudit, OffLevelIgnoresEvenCorruptedState) {
  Fixture F; // Audit defaults to Off.
  ReadNode *R = F.someRead();
  ASSERT_NE(R, nullptr);
  Word Saved = R->SeenValue;
  R->SeenValue ^= 1;
  F.RT.auditNow("should be a no-op");
  R->SeenValue = Saved;
  SUCCEED();
}

//===----------------------------------------------------------------------===//
// Corruption detection
//===----------------------------------------------------------------------===//

TEST(TraceAudit, DetectsEqualityCutViolation) {
  Fixture F;
  ReadNode *R = F.someRead();
  ASSERT_NE(R, nullptr);
  ASSERT_FALSE(R->isDirty());
  R->SeenValue ^= 1; // Clean read no longer agrees with its governing write.
  EXPECT_TRUE(reports(TraceAudit::inspect(F.RT), "equality cut"));
  R->SeenValue ^= 1;
}

TEST(TraceAudit, DetectsUseListLinkCorruption) {
  Fixture F;
  ReadNode *R = F.someRead();
  ASSERT_NE(R, nullptr);
  Handle<Use> Saved = R->PrevUse;
  // Break the back-link: point the read's PrevUse at itself.
  R->PrevUse = F.RT.arena().handle(static_cast<Use *>(R));
  EXPECT_TRUE(reports(TraceAudit::inspect(F.RT), "uselist"));
  R->PrevUse = Saved;
}

#ifndef CEAL_WIDE_TRACE
TEST(TraceAudit, DetectsOutOfBoundsHandle) {
  // A trace edge whose handle decodes past the arena's bump frontier must
  // be reported, not dereferenced (the compressed layouts make every edge
  // a 32-bit offset, so a stray write can forge one cheaply).
  Fixture F;
  ReadNode *R = F.someRead();
  ASSERT_NE(R, nullptr);
  Handle<Use> Saved = R->PrevUse;
  R->PrevUse = Handle<Use>(0x3fffffffu); // Far beyond the bump frontier.
  EXPECT_TRUE(reports(TraceAudit::inspect(F.RT),
                      "outside the trace arena"));
  R->PrevUse = Saved;
}
#endif

TEST(TraceAudit, DetectsDirtyFlagWithoutQueueEntry) {
  Fixture F;
  ReadNode *R = F.someRead();
  ASSERT_NE(R, nullptr);
  R->setDirty(true); // Dirty but never pushed on the propagation queue.
  TraceAudit::Report Rep = TraceAudit::inspect(F.RT);
  EXPECT_TRUE(reports(Rep, "dirty flag and queue membership disagree") ||
              reports(Rep, "dirty reads"))
      << Rep.summary();
  R->setDirty(false);
}

TEST(TraceAudit, DetectsMemoHashCorruption) {
  Fixture F;
  ReadNode *R = F.someRead();
  ASSERT_NE(R, nullptr);
  uint32_t Saved = R->Memo.Hash;
  R->Memo.Hash ^= 0x8000; // Now chained in a bucket its hash denies, and
                          // the stored hash no longer matches its key.
  EXPECT_TRUE(reports(TraceAudit::inspect(F.RT), "memo"));
  R->Memo.Hash = Saved;
}

TEST(TraceAudit, DetectsUntrackedArenaAllocationAsLeak) {
  Fixture F;
  void *Block = F.RT.arena().allocate(64); // Bypasses metaAlloc tracking.
  EXPECT_TRUE(reports(TraceAudit::inspect(F.RT), "leak"));
  F.RT.arena().deallocate(Block, 64);
  EXPECT_TRUE(TraceAudit::inspect(F.RT).ok());
}

TEST(TraceAudit, DetectsDoubleFreeAsNegativeDelta) {
  Fixture F;
  // Tracked allocation released behind the tracker's back: live bytes
  // drop below what the trace plus meta accounting can explain.
  void *Block = F.RT.metaAlloc(64);
  F.RT.arena().deallocate(Block, 64);
  EXPECT_TRUE(reports(TraceAudit::inspect(F.RT), "double free"));
  // Restore the books for teardown.
  void *Again = F.RT.arena().allocate(64);
  EXPECT_TRUE(TraceAudit::inspect(F.RT).ok());
  F.RT.metaRelease(Again, 64);
}

TEST(TraceAuditDeathTest, EnforceAbortsWithBanner) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Fixture F;
  ReadNode *R = F.someRead();
  ASSERT_NE(R, nullptr);
  R->SeenValue ^= 1;
  EXPECT_DEATH(TraceAudit::enforce(F.RT, "in the death test"),
               "TraceAudit.*violation.*in the death test");
  R->SeenValue ^= 1;
}
