//===- tests/AnalysisTest.cpp - Dominators, liveness, program graphs ------===//
//
// The dominator algorithms are validated three ways: against hand-worked
// examples (including the paper's expression-tree graph of Figs. 8-9),
// against each other, and against an O(V*E) brute-force oracle on random
// rooted digraphs. Liveness is validated against a brute-force
// path-based definition.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"
#include "analysis/Liveness.h"
#include "analysis/ProgramGraph.h"
#include "cl/Parser.h"
#include "cl/Samples.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace ceal;
using namespace ceal::analysis;
using namespace ceal::cl;

namespace {

RootedGraph makeGraph(uint32_t N,
                      std::initializer_list<std::pair<uint32_t, uint32_t>> Es) {
  RootedGraph G;
  G.Root = 0;
  G.Succs.assign(N, {});
  G.Preds.assign(N, {});
  for (auto [A, B] : Es) {
    G.Succs[A].push_back(B);
    G.Preds[B].push_back(A);
  }
  return G;
}

/// Brute-force dominators: node d dominates n iff removing d makes n
/// unreachable from the root.
std::vector<uint32_t> bruteForceIdom(const RootedGraph &G) {
  size_t N = G.size();
  auto ReachableWithout = [&](uint32_t Removed) {
    std::vector<bool> Seen(N, false);
    if (G.Root == Removed)
      return Seen;
    std::vector<uint32_t> Stack{G.Root};
    Seen[G.Root] = true;
    while (!Stack.empty()) {
      uint32_t V = Stack.back();
      Stack.pop_back();
      for (uint32_t S : G.Succs[V]) {
        if (S == Removed || Seen[S])
          continue;
        Seen[S] = true;
        Stack.push_back(S);
      }
    }
    return Seen;
  };
  std::vector<bool> Reach = ReachableWithout(InvalidNode);
  // Dominators[n] = set of d that dominate n.
  std::vector<std::vector<bool>> Dom(N, std::vector<bool>(N, false));
  for (uint32_t D = 0; D < N; ++D) {
    std::vector<bool> Without = ReachableWithout(D);
    for (uint32_t V = 0; V < N; ++V)
      if (Reach[V] && (!Without[V] || D == V))
        Dom[V][D] = true;
  }
  std::vector<uint32_t> Idom(N, InvalidNode);
  Idom[G.Root] = G.Root;
  for (uint32_t V = 0; V < N; ++V) {
    if (!Reach[V] || V == G.Root)
      continue;
    // The immediate dominator is the strict dominator dominated by all
    // other strict dominators.
    for (uint32_t D = 0; D < N; ++D) {
      if (!Dom[V][D] || D == V)
        continue;
      bool IsImmediate = true;
      for (uint32_t E = 0; E < N && IsImmediate; ++E)
        if (E != V && E != D && Dom[V][E] && !Dom[D][E])
          IsImmediate = false;
      if (IsImmediate) {
        Idom[V] = D;
        break;
      }
    }
  }
  return Idom;
}

RootedGraph randomRootedGraph(Rng &R, uint32_t N, double EdgeProb) {
  RootedGraph G;
  G.Root = 0;
  G.Succs.assign(N, {});
  G.Preds.assign(N, {});
  auto Add = [&](uint32_t A, uint32_t B) {
    G.Succs[A].push_back(B);
    G.Preds[B].push_back(A);
  };
  // A random spine keeps most nodes reachable; extra random edges create
  // joins, splits, and cycles.
  for (uint32_t V = 1; V < N; ++V)
    if (R.unit() < 0.8)
      Add(R.below(V), V);
  for (uint32_t A = 0; A < N; ++A)
    for (uint32_t B = 1; B < N; ++B)
      if (A != B && R.unit() < EdgeProb)
        Add(A, B);
  return G;
}

} // namespace

//===----------------------------------------------------------------------===//
// Dominators
//===----------------------------------------------------------------------===//

TEST(Dominators, DiamondGraph) {
  //    0 -> 1 -> {2,3} -> 4
  RootedGraph G =
      makeGraph(5, {{0, 1}, {1, 2}, {1, 3}, {2, 4}, {3, 4}});
  auto Idom = computeDominatorsIterative(G);
  EXPECT_EQ(Idom[1], 0u);
  EXPECT_EQ(Idom[2], 1u);
  EXPECT_EQ(Idom[3], 1u);
  EXPECT_EQ(Idom[4], 1u); // Joins below the branch: idom is the branch.
}

TEST(Dominators, LoopGraph) {
  // 0 -> 1 -> 2 -> 3 -> 1 (back edge), 3 -> 4.
  RootedGraph G =
      makeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 1}, {3, 4}});
  auto Idom = computeDominatorsIterative(G);
  EXPECT_EQ(Idom[2], 1u);
  EXPECT_EQ(Idom[3], 2u);
  EXPECT_EQ(Idom[4], 3u);
}

TEST(Dominators, UnreachableNodesGetInvalid) {
  RootedGraph G = makeGraph(4, {{0, 1}, {2, 3}}); // 2,3 unreachable.
  auto Idom = computeDominatorsIterative(G);
  EXPECT_EQ(Idom[1], 0u);
  EXPECT_EQ(Idom[2], InvalidNode);
  EXPECT_EQ(Idom[3], InvalidNode);
  auto Idom2 = computeDominatorsSemiNca(G);
  EXPECT_EQ(Idom, Idom2);
}

TEST(Dominators, PaperExpressionTreeGraph) {
  // The rooted graph of the paper's Fig. 8 for the eval function
  // (nodes: 0=root, 1=eval, and line-numbered blocks 2..18 compressed to
  // the control-relevant ones). We reproduce its stated dominator facts:
  // the units are defined by nodes {1(eval), 3, 11, 12, 18}.
  auto R = parseProgram(samples::ExpTrees);
  ASSERT_TRUE(R) << R.Error;
  const Function &F = R.Prog->Funcs[0];
  ProgramGraph G = buildProgramGraph(F);
  auto Idom = computeDominatorsIterative(RootedGraph::fromProgramGraph(G));
  auto Children = dominatorTreeChildren(Idom, ProgramGraph::Root);

  // Read entries (kk, n7, n8 in our CL source) must be unit-defining
  // (children of the root), as in Fig. 9.
  auto BlockByLabel = [&](const char *L) -> uint32_t {
    for (BlockId B = 0; B < F.Blocks.size(); ++B)
      if (F.Blocks[B].Label == L)
        return ProgramGraph::blockNode(B);
    ADD_FAILURE() << "no label " << L;
    return 0;
  };
  std::vector<uint32_t> RootKids = Children[ProgramGraph::Root];
  auto Contains = [&](uint32_t N) {
    return std::find(RootKids.begin(), RootKids.end(), N) != RootKids.end();
  };
  EXPECT_TRUE(Contains(ProgramGraph::FuncNode));
  EXPECT_TRUE(Contains(BlockByLabel("kk")));
  EXPECT_TRUE(Contains(BlockByLabel("n7")));
  EXPECT_TRUE(Contains(BlockByLabel("n8")));
  EXPECT_EQ(RootKids.size(), 4u);
}

struct DomRandomParam {
  uint64_t Seed;
  uint32_t Nodes;
  double EdgeProb;
};

class DominatorRandomTest : public ::testing::TestWithParam<DomRandomParam> {};

TEST_P(DominatorRandomTest, BothAlgorithmsMatchBruteForce) {
  auto P = GetParam();
  Rng R(P.Seed);
  for (int Trial = 0; Trial < 20; ++Trial) {
    RootedGraph G = randomRootedGraph(R, P.Nodes, P.EdgeProb);
    auto Brute = bruteForceIdom(G);
    auto Iter = computeDominatorsIterative(G);
    auto Nca = computeDominatorsSemiNca(G);
    ASSERT_EQ(Iter, Brute) << "iterative mismatch, seed=" << P.Seed
                           << " trial=" << Trial;
    ASSERT_EQ(Nca, Brute) << "semi-NCA mismatch, seed=" << P.Seed
                          << " trial=" << Trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, DominatorRandomTest,
    ::testing::Values(DomRandomParam{1, 8, 0.05}, DomRandomParam{2, 8, 0.2},
                      DomRandomParam{3, 16, 0.05},
                      DomRandomParam{4, 16, 0.15},
                      DomRandomParam{5, 30, 0.05},
                      DomRandomParam{6, 30, 0.1},
                      DomRandomParam{7, 50, 0.03},
                      DomRandomParam{8, 5, 0.4}));

//===----------------------------------------------------------------------===//
// Program graphs
//===----------------------------------------------------------------------===//

TEST(ProgramGraph, ReadEntriesGetRootEdges) {
  auto R = parseProgram(R"(
func f(modref* m, modref* d) {
  var int x;
  e: x := read m; goto g;
  g: write(d, x); goto h;
  h: done;
}
)");
  ASSERT_TRUE(R) << R.Error;
  ProgramGraph G = buildProgramGraph(R.Prog->Funcs[0]);
  // Nodes: 0 root, 1 func, 2 e, 3 g, 4 h.
  EXPECT_TRUE(G.IsReadEntry[3]);
  EXPECT_FALSE(G.IsReadEntry[2]);
  EXPECT_FALSE(G.IsReadEntry[4]);
  // Root edges: -> func node and -> read entry g.
  EXPECT_EQ(G.Succs[ProgramGraph::Root].size(), 2u);
}

//===----------------------------------------------------------------------===//
// Liveness
//===----------------------------------------------------------------------===//

TEST(Liveness, StraightLine) {
  auto R = parseProgram(R"(
func f(int a, int b, modref* d) {
  var int x; var int y;
  e: x := add(a, b); goto g;
  g: y := mul(x, x); goto h;
  h: write(d, y); goto i;
  i: done;
}
)");
  ASSERT_TRUE(R) << R.Error;
  const Function &F = R.Prog->Funcs[0];
  LivenessInfo L = computeLiveness(F);
  // At e: a, b, d live. At g: x, d. At h: y, d. At i: nothing.
  EXPECT_EQ(L.liveAt(0), (std::vector<VarId>{0, 1, 2}));
  EXPECT_EQ(L.liveAt(1), (std::vector<VarId>{2, 3}));
  EXPECT_EQ(L.liveAt(2), (std::vector<VarId>{2, 4}));
  EXPECT_TRUE(L.liveAt(3).empty());
  EXPECT_EQ(L.maxLive(), 3u);
}

TEST(Liveness, LoopKeepsInductionVariablesLive) {
  auto R = parseProgram(R"(
func f(int n, modref* d) {
  var int i; var int c;
  init: i := 0; goto test;
  test: c := lt(i, n); goto br;
  br: if c then goto body else goto out;
  body: i := add(i, n); goto test;
  out: write(d, i); goto fin;
  fin: done;
}
)");
  ASSERT_TRUE(R) << R.Error;
  LivenessInfo L = computeLiveness(R.Prog->Funcs[0]);
  // At test: i, n, d all live (loop).
  std::vector<VarId> AtTest = L.liveAt(1);
  EXPECT_EQ(AtTest, (std::vector<VarId>{0, 1, 2}));
}

TEST(Liveness, DefWithoutUseKillsLiveness) {
  auto R = parseProgram(R"(
func f(int a, modref* d) {
  var int x;
  e: x := 1; goto g;
  g: x := a; goto h;
  h: write(d, x); goto i;
  i: done;
}
)");
  ASSERT_TRUE(R) << R.Error;
  LivenessInfo L = computeLiveness(R.Prog->Funcs[0]);
  // x is dead at e's start (redefined at g before any use).
  for (VarId V : L.liveAt(0))
    EXPECT_NE(V, 2u) << "x must not be live at entry";
}

TEST(Liveness, TailArgsAreUses) {
  auto R = parseProgram(R"(
func f(int a, int b) {
  e: nop; tail f(b, a);
}
)");
  ASSERT_TRUE(R) << R.Error;
  LivenessInfo L = computeLiveness(R.Prog->Funcs[0]);
  EXPECT_EQ(L.liveAt(0), (std::vector<VarId>{0, 1}));
}
