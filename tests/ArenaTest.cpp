//===- tests/ArenaTest.cpp - Arena allocator tests ------------------------===//

#include "support/Arena.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

using namespace ceal;

TEST(Arena, AllocateAndReuse) {
  Arena A;
  void *P1 = A.allocate(32);
  ASSERT_NE(P1, nullptr);
  A.deallocate(P1, 32);
  void *P2 = A.allocate(32);
  EXPECT_EQ(P1, P2) << "freelist should recycle same-class blocks";
}

TEST(Arena, LiveByteAccounting) {
  Arena A;
  EXPECT_EQ(A.liveBytes(), 0u);
  void *P = A.allocate(100); // Rounds to 104 (8-byte classes).
  EXPECT_EQ(A.liveBytes(), 104u);
  void *Q = A.allocate(16);
  EXPECT_EQ(A.liveBytes(), 120u);
  A.deallocate(P, 100);
  EXPECT_EQ(A.liveBytes(), 16u);
  EXPECT_EQ(A.maxLiveBytes(), 120u);
  A.deallocate(Q, 16);
  EXPECT_EQ(A.liveBytes(), 0u);
  EXPECT_EQ(A.maxLiveBytes(), 120u);
}

TEST(Arena, LargeBlocksAccountAndRecycle) {
  Arena A;
  void *P = A.allocate(1 << 16);
  ASSERT_NE(P, nullptr);
  std::memset(P, 0xab, 1 << 16);
  EXPECT_EQ(A.liveBytes(), size_t(1) << 16);
  A.deallocate(P, 1 << 16);
  EXPECT_EQ(A.liveBytes(), 0u);
  // Large blocks stay inside the region and recycle by exact size, so
  // user blocks holding interior trace structures keep stable addresses.
  void *Q = A.allocate(1 << 16);
  EXPECT_EQ(Q, P);
  A.deallocate(Q, 1 << 16);
}

TEST(Arena, DistinctBlocksDoNotOverlap) {
  Arena A;
  std::vector<char *> Blocks;
  for (int I = 0; I < 1000; ++I) {
    auto *P = static_cast<char *>(A.allocate(48));
    std::memset(P, I & 0xff, 48);
    Blocks.push_back(P);
  }
  for (int I = 0; I < 1000; ++I)
    for (int J = 0; J < 48; ++J)
      ASSERT_EQ(Blocks[I][J], static_cast<char>(I & 0xff));
}

TEST(Arena, ReservePreallocatesOneContiguousChunk) {
  // reserve() is an input-size hint: a burst that fits the reservation
  // must be served by pure pointer bumps from one chunk (consecutive
  // same-class blocks are adjacent), with no accounting side effects.
  Arena A;
  constexpr size_t Bytes = 1 << 18;
  A.reserve(Bytes);
  EXPECT_EQ(A.liveBytes(), 0u) << "reserve must not count as allocation";
  EXPECT_EQ(A.allocationCount(), 0u);
  char *Prev = static_cast<char *>(A.allocate(64));
  for (size_t Used = 64; Used + 64 <= Bytes; Used += 64) {
    auto *P = static_cast<char *>(A.allocate(64));
    ASSERT_EQ(P, Prev + 64) << "chunk refill inside a reserved burst";
    Prev = P;
  }
  EXPECT_EQ(A.liveBytes(), Bytes);
}

TEST(Arena, ReserveIsIdempotentWhenSpaceRemains) {
  // A second reserve within the first one's headroom must not abandon
  // the current chunk: the next allocation still comes from it.
  Arena A;
  A.reserve(1 << 16);
  auto *P = static_cast<char *>(A.allocate(64));
  A.reserve(1 << 10); // Far below the remaining headroom.
  auto *Q = static_cast<char *>(A.allocate(64));
  EXPECT_EQ(Q, P + 64);
}

TEST(Arena, HandleRoundTrip) {
  // Every block — small, class-boundary, large — must mint a non-null
  // handle that resolves back to the same address; null round-trips too.
  Arena A;
  EXPECT_EQ(A.ptr(Handle<int>()), nullptr);
  EXPECT_FALSE(A.handle<int>(nullptr));
  std::vector<std::pair<int *, Handle<int>>> Minted;
  for (size_t Size : {8u, 24u, 512u, 4096u}) {
    auto *P = static_cast<int *>(A.allocate(Size));
    Handle<int> H = A.handle(P);
    ASSERT_TRUE(static_cast<bool>(H));
    EXPECT_EQ(A.ptr(H), P);
    Minted.push_back({P, H});
  }
  // Handles are stable identities: distinct blocks, distinct handles.
  for (size_t I = 0; I < Minted.size(); ++I)
    for (size_t J = I + 1; J < Minted.size(); ++J)
      EXPECT_NE(Minted[I].second, Minted[J].second);
}

#ifndef CEAL_WIDE_TRACE
TEST(Arena, HandleBoundsTrackBumpFrontier) {
  Arena A;
  auto *P = static_cast<char *>(A.allocate(64));
  Handle<char> H = A.handle(P);
  EXPECT_TRUE(A.handleInBounds(H.Bits));
  // An offset past everything ever bump-allocated must be rejected —
  // this is the auditor's decode-time check against corrupt handles.
  EXPECT_FALSE(A.handleInBounds(
      static_cast<uint32_t>(A.bumpUsedBytes() / Arena::HandleGrain + 8)));
  A.deallocate(P, 64);
}
#endif

TEST(ArenaDeathTest, RegionOverflowIsACheckedFailure) {
  // Minting past the configured handle space must die with the fatal
  // check, not wrap the bump pointer into reused offsets.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Arena A(size_t(1) << 16); // 64 KB region: ~16 blocks of 4 KB.
        for (int I = 0; I < 32; ++I)
          A.allocate(4096);
      },
      "region exhausted");
}

TEST(ArenaDeathTest, ReserveBeyondRegionFailsFast) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Arena A(size_t(1) << 16);
        A.reserve(size_t(1) << 20);
      },
      "region exhausted");
}

TEST(Arena, RandomizedChurn) {
  Arena A;
  Rng R(7);
  std::vector<std::pair<void *, size_t>> Live;
  for (int Op = 0; Op < 20000; ++Op) {
    if (Live.empty() || R.below(100) < 60) {
      size_t Size = 1 + R.below(700);
      Live.push_back({A.allocate(Size), Size});
    } else {
      size_t Idx = R.below(Live.size());
      A.deallocate(Live[Idx].first, Live[Idx].second);
      Live[Idx] = Live.back();
      Live.pop_back();
    }
  }
  for (auto &Entry : Live)
    A.deallocate(Entry.first, Entry.second);
  EXPECT_EQ(A.liveBytes(), 0u);
  EXPECT_GT(A.allocationCount(), 0u);
}
