//===- tests/SnapshotTest.cpp - Snapshot format and loader hardening ------===//
//
// The snapshot subsystem's unit suite: round trips over both load paths
// (copying load and mmap warm start), the trace-shape digest, root
// persistence, and — the bulk — the corruption-hardened load path: every
// documented failure mode is provoked with a targeted patch of a valid
// checkpoint image and must come back as its own Status code with the
// runtime left usable. A 64-case seeded corruption smoke (the tier-1
// slice of the full fuzz suite) closes the file.
//
//===----------------------------------------------------------------------===//

#include "apps/ListApps.h"
#include "runtime/Runtime.h"
#include "runtime/Snapshot.h"
#include "runtime/TraceAudit.h"
#include "tests/support/OracleModels.h"
#include "tests/support/SnapshotCorruption.h"
#include "tests/support/SnapshotHarness.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace ceal;
using namespace ceal::harness;

namespace {

using St = Snapshot::Status;

Word mapPaper(Word X, Word) { return X / 3 + X / 7 + X / 9; }

Runtime::Config testConfig() {
  Runtime::Config C;
  C.Audit = AuditLevel::EveryPropagation;
  return C;
}

/// A checkpoint of a small map-over-list computation, its source runtime
/// already destroyed (so a loader can claim the recorded bases), plus
/// everything a test needs to patch and replay it.
struct Checkpoint {
  TempFile Tmp;
  std::vector<uint8_t> Bytes;
  std::vector<const void *> SavedRoots;
  uint64_t SavedDigest = 0;
  std::vector<Word> Input;
};

void makeCheckpoint(Checkpoint &C, size_t N = 24) {
  for (size_t I = 0; I < N; ++I)
    C.Input.push_back((I * 2654435761u) % 1000);
  Runtime RT(testConfig());
  apps::ListHandle L = apps::buildList(RT, C.Input);
  Modref *Dst = RT.modref();
  RT.runCore<&apps::mapCore>(L.Head, Dst, &mapPaper, Word(0));
  Snapshot::SaveOptions Opt;
  Opt.Roots = {L.Head, Dst};
  Snapshot::SaveResult SR = Snapshot::save(RT, C.Tmp.Path, Opt);
  EXPECT_TRUE(SR.ok()) << Snapshot::statusName(SR.St) << ": "
                       << SR.Diagnostic;
  C.Bytes = slurpFile(C.Tmp.Path);
  EXPECT_EQ(C.Bytes.size(), SR.FileBytes);
  C.SavedRoots = Opt.Roots;
  C.SavedDigest = Snapshot::traceShapeDigest(RT);
}

/// Writes \p B over the checkpoint's temp file and loads it into a fresh
/// runtime; returns the status (and optionally the diagnostic). The mmap
/// side runs fully verified — the negative-path guarantees belong to the
/// verified loaders (the fast warm start trusts the arena payload by
/// contract; see WarmStartOptions).
St tryLoad(Checkpoint &C, const std::vector<uint8_t> &B, bool UseMmap = false,
           std::string *Diag = nullptr) {
  EXPECT_TRUE(spitFile(C.Tmp.Path, B));
  Runtime RT(testConfig());
  Snapshot::WarmStartOptions Verified;
  Verified.VerifyTrace = true;
  Snapshot::LoadResult LR = UseMmap
                                ? Snapshot::mmapWarmStart(RT, C.Tmp.Path,
                                                          Verified)
                                : Snapshot::load(RT, C.Tmp.Path);
  if (Diag)
    *Diag = LR.Diagnostic;
  return LR.St;
}

/// Patches a u64 field at absolute file offset \p Off.
void pokeU64(std::vector<uint8_t> &B, size_t Off, uint64_t V) {
  ASSERT_LE(Off + 8, B.size());
  std::memcpy(B.data() + Off, &V, 8);
}

uint64_t peekU64(const std::vector<uint8_t> &B, size_t Off) {
  uint64_t V = 0;
  std::memcpy(&V, B.data() + Off, 8);
  return V;
}

/// Absolute file offset of a MetaFixed field (the META section payload
/// starts with the 8-byte kind preamble).
size_t metaOff(std::vector<uint8_t> &B, size_t FieldOff) {
  return static_cast<size_t>(headerOf(B)->Sections[0].Offset) + 8 + FieldOff;
}

} // namespace

//===----------------------------------------------------------------------===//
// Round trips
//===----------------------------------------------------------------------===//

namespace {

/// Saves, destroys the source runtime, reloads on the given path, and
/// checks digest, roots, output, and continued propagation.
void roundTrip(bool UseMmap) {
  Checkpoint C;
  makeCheckpoint(C);
  Runtime RT(testConfig());
  Snapshot::LoadResult LR = UseMmap ? Snapshot::mmapWarmStart(RT, C.Tmp.Path)
                                    : Snapshot::load(RT, C.Tmp.Path);
  ASSERT_TRUE(LR.ok()) << Snapshot::statusName(LR.St) << ": "
                       << LR.Diagnostic;

  // Same addresses, same shape, same output.
  ASSERT_EQ(LR.Roots.size(), C.SavedRoots.size());
  for (size_t I = 0; I < LR.Roots.size(); ++I)
    EXPECT_EQ(LR.Roots[I], C.SavedRoots[I]);
  EXPECT_EQ(Snapshot::traceShapeDigest(RT), C.SavedDigest);
  EXPECT_TRUE(TraceAudit::inspect(RT).ok());

  Modref *Head = static_cast<Modref *>(LR.Roots[0]);
  Modref *Dst = static_cast<Modref *>(LR.Roots[1]);
  std::vector<Word> Want;
  for (Word W : C.Input)
    Want.push_back(mapPaper(W, 0));
  EXPECT_EQ(apps::readList(RT, Dst), Want);

  // The restored trace must still propagate. The simplest structural
  // edit that exercises it without the harness: detach the head cell by
  // writing its tail into Head.
  apps::Cell *HeadCell = reinterpret_cast<apps::Cell *>(RT.deref(Head));
  ASSERT_NE(HeadCell, nullptr);
  RT.modify(Head, RT.deref(HeadCell->Tail));
  RT.propagate();
  EXPECT_TRUE(TraceAudit::inspect(RT).ok());
  Want.erase(Want.begin());
  EXPECT_EQ(apps::readList(RT, Dst), Want);
}

} // namespace

TEST(Snapshot, RoundTripCopyLoad) { roundTrip(false); }
TEST(Snapshot, RoundTripMmapWarmStart) { roundTrip(true); }

TEST(Snapshot, EmptyRuntimeRoundTrip) {
  TempFile Tmp;
  {
    Runtime RT(testConfig());
    Snapshot::SaveResult SR = Snapshot::save(RT, Tmp.Path);
    ASSERT_TRUE(SR.ok()) << SR.Diagnostic;
  }
  Runtime RT(testConfig());
  Snapshot::LoadResult LR = Snapshot::load(RT, Tmp.Path);
  ASSERT_TRUE(LR.ok()) << Snapshot::statusName(LR.St) << ": "
                       << LR.Diagnostic;
  // The restored pristine runtime must still run a computation.
  apps::ListHandle L = apps::buildList(RT, {1, 2, 3});
  Modref *Dst = RT.modref();
  RT.runCore<&apps::mapCore>(L.Head, Dst, &mapPaper, Word(0));
  EXPECT_EQ(apps::readList(RT, Dst).size(), 3u);
}

TEST(Snapshot, DigestIsDeterministicAndShapeSensitive) {
  auto DigestOf = [](size_t N) {
    Runtime RT(testConfig());
    std::vector<Word> In;
    for (size_t I = 0; I < N; ++I)
      In.push_back(I * 7);
    apps::ListHandle L = apps::buildList(RT, In);
    Modref *Dst = RT.modref();
    RT.runCore<&apps::mapCore>(L.Head, Dst, &mapPaper, Word(0));
    return Snapshot::traceShapeDigest(RT);
  };
  EXPECT_EQ(DigestOf(16), DigestOf(16));
  EXPECT_NE(DigestOf(16), DigestOf(17));
}

TEST(Snapshot, ReadyToSaveReportsWhy) {
  Runtime RT(testConfig());
  std::string Why;
  EXPECT_TRUE(Snapshot::readyToSave(RT, &Why)) << Why;
}

//===----------------------------------------------------------------------===//
// Save-side failures
//===----------------------------------------------------------------------===//

TEST(Snapshot, SaveRejectsBadRoots) {
  Runtime RT(testConfig());
  apps::ListHandle L = apps::buildList(RT, {1, 2, 3});
  Modref *Dst = RT.modref();
  RT.runCore<&apps::mapCore>(L.Head, Dst, &mapPaper, Word(0));
  TempFile Tmp;

  Snapshot::SaveOptions Null;
  Null.Roots = {nullptr};
  EXPECT_EQ(Snapshot::save(RT, Tmp.Path, Null).St, St::BadState);

  int Stack = 0;
  Snapshot::SaveOptions Foreign;
  Foreign.Roots = {&Stack};
  EXPECT_EQ(Snapshot::save(RT, Tmp.Path, Foreign).St, St::BadState);
}

TEST(Snapshot, SaveReportsIoError) {
  Runtime RT(testConfig());
  Snapshot::SaveResult SR =
      Snapshot::save(RT, "/nonexistent-dir/ceal-snapshot");
  EXPECT_EQ(SR.St, St::IoError);
  EXPECT_FALSE(SR.Diagnostic.empty());
}

TEST(Snapshot, LoadIntoNonPristineRuntimeIsBadState) {
  Checkpoint C;
  makeCheckpoint(C);
  Runtime RT(testConfig());
  apps::ListHandle L = apps::buildList(RT, {4, 5});
  Modref *Dst = RT.modref();
  RT.runCore<&apps::mapCore>(L.Head, Dst, &mapPaper, Word(0));
  EXPECT_EQ(Snapshot::load(RT, C.Tmp.Path).St, St::BadState);
}

//===----------------------------------------------------------------------===//
// Negative paths: every failure mode is its own Status
//===----------------------------------------------------------------------===//

TEST(Snapshot, LoadReportsIoError) {
  Runtime RT(testConfig());
  EXPECT_EQ(Snapshot::load(RT, "/nonexistent-dir/ceal-snapshot").St,
            St::IoError);
}

TEST(Snapshot, ZeroLengthFileIsTruncated) {
  Checkpoint C;
  makeCheckpoint(C);
  EXPECT_EQ(tryLoad(C, {}), St::Truncated);
}

TEST(Snapshot, ShortTailIsTruncated) {
  Checkpoint C;
  makeCheckpoint(C);
  std::vector<uint8_t> B = C.Bytes;
  B.resize(B.size() - 7);
  EXPECT_EQ(tryLoad(C, B), St::Truncated);
}

TEST(Snapshot, WrongMagicIsBadMagic) {
  Checkpoint C;
  makeCheckpoint(C);
  std::vector<uint8_t> B = C.Bytes;
  headerOf(B)->MagicWord = 0x00c0ffee00c0ffeeULL;
  resealHeader(B);
  EXPECT_EQ(tryLoad(C, B), St::BadMagic);
}

TEST(Snapshot, ByteswappedMagicIsBadEndian) {
  Checkpoint C;
  makeCheckpoint(C);
  std::vector<uint8_t> B = C.Bytes;
  uint64_t M = headerOf(B)->MagicWord, Sw = 0;
  for (int I = 0; I < 8; ++I)
    Sw = (Sw << 8) | ((M >> (8 * I)) & 0xff);
  headerOf(B)->MagicWord = Sw;
  EXPECT_EQ(tryLoad(C, B), St::BadEndian);
}

TEST(Snapshot, EndianTagMismatchIsBadEndian) {
  Checkpoint C;
  makeCheckpoint(C);
  std::vector<uint8_t> B = C.Bytes;
  headerOf(B)->Endian = 0x04030201;
  resealHeader(B);
  EXPECT_EQ(tryLoad(C, B), St::BadEndian);
}

TEST(Snapshot, FutureVersionIsBadVersion) {
  Checkpoint C;
  makeCheckpoint(C);
  std::vector<uint8_t> B = C.Bytes;
  headerOf(B)->Version = Snapshot::FormatVersion + 1;
  resealHeader(B);
  EXPECT_EQ(tryLoad(C, B), St::BadVersion);
}

TEST(Snapshot, LayoutFingerprintMismatchIsBadLayout) {
  Checkpoint C;
  makeCheckpoint(C);
  std::vector<uint8_t> B = C.Bytes;
  headerOf(B)->LayoutFingerprint ^= 1;
  resealHeader(B);
  EXPECT_EQ(tryLoad(C, B), St::BadLayout);
}

TEST(Snapshot, HeaderCorruptionIsBadHeader) {
  Checkpoint C;
  makeCheckpoint(C);
  std::vector<uint8_t> B = C.Bytes;
  B[sizeof(Snapshot::FileHeader) + 17] ^= 0x40; // header-block padding
  EXPECT_EQ(tryLoad(C, B), St::BadHeader);
}

TEST(Snapshot, TrailingGarbageIsBadSectionTable) {
  Checkpoint C;
  makeCheckpoint(C);
  std::vector<uint8_t> B = C.Bytes;
  B.insert(B.end(), 8, uint8_t(0xAB));
  EXPECT_EQ(tryLoad(C, B), St::BadSectionTable);
}

TEST(Snapshot, InflatedSectionLengthIsBadSectionTable) {
  Checkpoint C;
  makeCheckpoint(C);
  std::vector<uint8_t> B = C.Bytes;
  headerOf(B)->Sections[0].Length += 8;
  resealHeader(B);
  EXPECT_EQ(tryLoad(C, B), St::BadSectionTable);
}

TEST(Snapshot, PayloadCorruptionIsBadChecksum) {
  Checkpoint C;
  makeCheckpoint(C);
  std::vector<uint8_t> B = C.Bytes;
  B[static_cast<size_t>(headerOf(B)->Sections[0].Offset) + 9] ^= 0x01;
  EXPECT_EQ(tryLoad(C, B), St::BadChecksum);
}

TEST(Snapshot, MemoPayloadSwapIsBadSectionKind) {
  Checkpoint C;
  makeCheckpoint(C);
  std::vector<uint8_t> B = C.Bytes;
  Snapshot::FileHeader *H = headerOf(B);
  ASSERT_EQ(H->Sections[1].Length, H->Sections[2].Length)
      << "memo sections expected symmetric at this scale";
  std::vector<uint8_t> Tmp(
      B.begin() + static_cast<ptrdiff_t>(H->Sections[1].Offset),
      B.begin() +
          static_cast<ptrdiff_t>(H->Sections[1].Offset +
                                 H->Sections[1].Length));
  std::memmove(B.data() + H->Sections[1].Offset,
               B.data() + H->Sections[2].Offset, H->Sections[2].Length);
  std::memcpy(B.data() + H->Sections[2].Offset, Tmp.data(), Tmp.size());
  std::swap(H->Sections[1].Checksum, H->Sections[2].Checksum);
  resealHeader(B);
  EXPECT_EQ(tryLoad(C, B), St::BadSectionKind);
}

TEST(Snapshot, ZeroOmSizeIsBadMeta) {
  Checkpoint C;
  makeCheckpoint(C);
  std::vector<uint8_t> B = C.Bytes;
  pokeU64(B, metaOff(B, offsetof(Snapshot::MetaFixed, OmSize)), 0);
  resealSection(B, 0);
  resealHeader(B);
  EXPECT_EQ(tryLoad(C, B), St::BadMeta);
}

TEST(Snapshot, OverflowingLargeCountsAreBadMeta) {
  // Two huge counts that wrap to a small sum must not sneak past the
  // large-freelist table bound and drive the pair reader off the META
  // section.
  Checkpoint C;
  makeCheckpoint(C);
  std::vector<uint8_t> B = C.Bytes;
  uint64_t Huge = uint64_t(1) << 63;
  pokeU64(B,
          metaOff(B, offsetof(Snapshot::MetaFixed, MemA) +
                         offsetof(Snapshot::ArenaMeta, LargeCount)),
          Huge);
  pokeU64(B,
          metaOff(B, offsetof(Snapshot::MetaFixed, OmA) +
                         offsetof(Snapshot::ArenaMeta, LargeCount)),
          Huge);
  resealSection(B, 0);
  resealHeader(B);
  EXPECT_EQ(tryLoad(C, B), St::BadMeta);
}

TEST(Snapshot, CursorPastArenaIsHandleOutOfBounds) {
  Checkpoint C;
  makeCheckpoint(C);
  std::vector<uint8_t> B = C.Bytes;
  uint64_t Past = headerOf(B)->OmBumpUsed + 1024;
  pokeU64(B, metaOff(B, offsetof(Snapshot::MetaFixed, CursorOff)), Past);
  resealSection(B, 0);
  resealHeader(B);
  EXPECT_EQ(tryLoad(C, B), St::HandleOutOfBounds);
}

TEST(Snapshot, MovedAnchorIsCodeMoved) {
  Checkpoint C;
  makeCheckpoint(C);
  std::vector<uint8_t> B = C.Bytes;
  headerOf(B)->AnchorAddr += 0x10000;
  resealHeader(B);
  EXPECT_EQ(tryLoad(C, B), St::CodeMoved);
}

TEST(Snapshot, BoxBytesMismatchIsConfigMismatch) {
  Checkpoint C;
  makeCheckpoint(C);
  Runtime::Config Cfg = testConfig();
  Cfg.BoxBytesPerNode += 8;
  Runtime RT(Cfg);
  EXPECT_EQ(Snapshot::load(RT, C.Tmp.Path).St, St::ConfigMismatch);
}

TEST(Snapshot, BrokenAccountingIsAuditFailed) {
  Checkpoint C;
  makeCheckpoint(C);
  std::vector<uint8_t> B = C.Bytes;
  uint64_t Off = metaOff(B, offsetof(Snapshot::MetaFixed, MetaBytes));
  pokeU64(B, Off, peekU64(B, Off) + 8);
  resealSection(B, 0);
  resealHeader(B);
  std::string Diag;
  EXPECT_EQ(tryLoad(C, B, /*UseMmap=*/false, &Diag), St::AuditFailed);
  EXPECT_FALSE(Diag.empty());
}

TEST(Snapshot, FailedLoadLeavesRuntimeUsable) {
  Checkpoint C;
  makeCheckpoint(C);
  // A post-claim failure (AuditFailed) is the hard case: the loader has
  // already replaced the arena regions and must restore a pristine,
  // usable runtime.
  std::vector<uint8_t> B = C.Bytes;
  uint64_t Off = metaOff(B, offsetof(Snapshot::MetaFixed, MetaBytes));
  pokeU64(B, Off, peekU64(B, Off) + 8);
  resealSection(B, 0);
  resealHeader(B);
  TempFile Bad;
  ASSERT_TRUE(spitFile(Bad.Path, B));

  Runtime RT(testConfig());
  Snapshot::LoadResult LR = Snapshot::load(RT, Bad.Path);
  ASSERT_EQ(LR.St, St::AuditFailed) << LR.Diagnostic;
  EXPECT_TRUE(LR.Roots.empty());

  // Still pristine: a good checkpoint must now load into the same
  // runtime and produce the right output.
  ASSERT_TRUE(spitFile(C.Tmp.Path, C.Bytes));
  Snapshot::LoadResult Good = Snapshot::load(RT, C.Tmp.Path);
  ASSERT_TRUE(Good.ok()) << Snapshot::statusName(Good.St) << ": "
                         << Good.Diagnostic;
  Modref *Dst = static_cast<Modref *>(Good.Roots[1]);
  std::vector<Word> Want;
  for (Word W : C.Input)
    Want.push_back(mapPaper(W, 0));
  EXPECT_EQ(apps::readList(RT, Dst), Want);
}

//===----------------------------------------------------------------------===//
// Fast warm start: the trusted-file contract
//===----------------------------------------------------------------------===//

namespace {

/// Loads \p B on the *default* (trusted-file) mmap warm start.
St tryFastMmap(Checkpoint &C, const std::vector<uint8_t> &B) {
  EXPECT_TRUE(spitFile(C.Tmp.Path, B));
  Runtime RT(testConfig());
  return Snapshot::mmapWarmStart(RT, C.Tmp.Path).St;
}

} // namespace

TEST(Snapshot, FastWarmStartStillChecksStructure) {
  // The fast path skips arena *content* verification only; the header,
  // META, memo-index and root sections plus every offset the loader
  // installs stay fully checked, so structural corruption comes back
  // with the same codes as on the verified paths.
  Checkpoint C;
  makeCheckpoint(C);

  std::vector<uint8_t> B = C.Bytes;
  B.resize(B.size() - 7);
  EXPECT_EQ(tryFastMmap(C, B), St::Truncated);

  B = C.Bytes;
  headerOf(B)->MagicWord = 0x00c0ffee00c0ffeeULL;
  resealHeader(B);
  EXPECT_EQ(tryFastMmap(C, B), St::BadMagic);

  B = C.Bytes;
  B[sizeof(Snapshot::FileHeader) + 17] ^= 0x40; // header-block padding
  EXPECT_EQ(tryFastMmap(C, B), St::BadHeader);

  B = C.Bytes;
  B[static_cast<size_t>(headerOf(B)->Sections[0].Offset) + 9] ^= 0x01;
  EXPECT_EQ(tryFastMmap(C, B), St::BadChecksum);

  B = C.Bytes;
  uint64_t Past = headerOf(B)->OmBumpUsed + 1024;
  pokeU64(B, metaOff(B, offsetof(Snapshot::MetaFixed, CursorOff)), Past);
  resealSection(B, 0);
  resealHeader(B);
  EXPECT_EQ(tryFastMmap(C, B), St::HandleOutOfBounds);
}

TEST(Snapshot, FastWarmStartTrustsArenaPayload) {
  // The flip side of the contract: a byte flip inside the mapped arena
  // payload is exactly what the fast path does NOT check (that skip is
  // the O(metadata) payoff) and exactly what VerifyTrace catches. The
  // patched byte sits in the MEM section's trailing page padding —
  // covered by the section checksum, but past the bump cursor, so
  // nothing ever reads it and the fast-loaded runtime stays correct.
  Checkpoint C;
  makeCheckpoint(C);
  std::vector<uint8_t> B = C.Bytes;
  Snapshot::FileHeader *H = headerOf(B);
  const size_t IMem = 4;
  ASSERT_LT(H->MemBumpUsed, H->Sections[IMem].Length)
      << "checkpoint expected to carry MEM tail padding at this scale";
  B[static_cast<size_t>(H->Sections[IMem].Offset + H->MemBumpUsed)] ^= 0x01;

  // Both verified paths reject it as content corruption...
  EXPECT_EQ(tryLoad(C, B, /*UseMmap=*/false), St::BadChecksum);
  EXPECT_EQ(tryLoad(C, B, /*UseMmap=*/true), St::BadChecksum);

  // ...and the trusted fast path accepts it and still runs.
  ASSERT_TRUE(spitFile(C.Tmp.Path, B));
  Runtime RT(testConfig());
  Snapshot::LoadResult LR = Snapshot::mmapWarmStart(RT, C.Tmp.Path);
  ASSERT_TRUE(LR.ok()) << Snapshot::statusName(LR.St) << ": "
                       << LR.Diagnostic;
  EXPECT_EQ(Snapshot::traceShapeDigest(RT), C.SavedDigest);
  Modref *Dst = static_cast<Modref *>(LR.Roots[1]);
  std::vector<Word> Want;
  for (Word W : C.Input)
    Want.push_back(mapPaper(W, 0));
  EXPECT_EQ(apps::readList(RT, Dst), Want);
}

//===----------------------------------------------------------------------===//
// Corruption smoke (tier-1 slice of the fuzz suite)
//===----------------------------------------------------------------------===//

TEST(Snapshot, CorruptionSmoke64) {
  Checkpoint C;
  makeCheckpoint(C);
  for (uint64_t Seed = 0; Seed < 64; ++Seed) {
    std::string Desc;
    std::vector<uint8_t> Mutant = mutateSnapshot(C.Bytes, Seed, &Desc);
    std::string Diag;
    St S = tryLoad(C, Mutant, /*UseMmap=*/(Seed & 1) != 0, &Diag);
    EXPECT_NE(S, St::Ok) << "seed " << Seed << " (" << Desc
                         << ") loaded successfully";
  }
}

//===----------------------------------------------------------------------===//
// In-process harness smoke (the full matrix lives in SnapshotOracleTest)
//===----------------------------------------------------------------------===//

TEST(Snapshot, ListHarnessSmoke) {
  SnapshotHarnessOptions Opt;
  Opt.Sequences = 3;
  Opt.Changes = 4;
  EXPECT_EQ(runSnapshotHarness(
                [] { return std::make_unique<ListModel>(8, 24); }, Opt),
            "");
}
