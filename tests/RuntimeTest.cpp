//===- tests/RuntimeTest.cpp - Self-adjusting runtime tests ---------------===//
//
// Exercises the run-time system with small core programs written in the
// "compiled" closure style the CEAL compiler emits (paper Sec. 6.2):
// traced reads hand their continuation to the trampoline, results flow
// through destination-passing style, and the mutator drives everything
// through modify/propagate.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <vector>

using namespace ceal;

namespace {

//===----------------------------------------------------------------------===//
// Core: copy one modifiable into another.
//===----------------------------------------------------------------------===//

Closure *copyBody(Runtime &RT, Word V, Modref *Dst) {
  RT.write(Dst, V);
  return nullptr;
}

Closure *copyCore(Runtime &RT, Modref *Src, Modref *Dst) {
  return RT.readTail<&copyBody>(Src, Dst);
}

//===----------------------------------------------------------------------===//
// Core: two-stage pipeline a -> b -> c (b is an intermediate modifiable).
//===----------------------------------------------------------------------===//

Closure *stage2(Runtime &RT, Word V, Modref *C) {
  RT.write(C, V * 10);
  return nullptr;
}

Closure *stage1(Runtime &RT, Word V, Modref *B, Modref *C) {
  RT.write(B, V + 1);
  return RT.readTail<&stage2>(B, C);
}

Closure *pipelineCore(Runtime &RT, Modref *A, Modref *B, Modref *C) {
  return RT.readTail<&stage1>(A, B, C);
}

//===----------------------------------------------------------------------===//
// Core: multi-write modifiable with two interleaved consumers.
//
//   m := in + 1;  call consume(m, out1);  m := in + 2;  read m -> out2
//
// The first consumer must be governed by the first write even though a
// later write to the same modifiable follows it in time.
//===----------------------------------------------------------------------===//

Closure *consumeBody(Runtime &RT, Word V, Modref *Out) {
  RT.write(Out, V);
  return nullptr;
}

Closure *consume(Runtime &RT, Modref *M, Modref *Out) {
  return RT.readTail<&consumeBody>(M, Out);
}

Closure *multiWriteGot(Runtime &RT, Word In, Modref *M, Modref *Out1,
                       Modref *Out2) {
  RT.write(M, In + 1);
  RT.callFn<&consume>(M, Out1);
  RT.write(M, In + 2);
  return RT.readTail<&consumeBody>(M, Out2);
}

Closure *multiWriteCore(Runtime &RT, Modref *In, Modref *M, Modref *Out1,
                        Modref *Out2) {
  return RT.readTail<&multiWriteGot>(In, M, Out1, Out2);
}

//===----------------------------------------------------------------------===//
// Core: expression-tree evaluator (the paper's running example, Figs 1-5).
//===----------------------------------------------------------------------===//

struct TreeNode {
  bool IsLeaf;
  char Op;        // '+' or '-'.
  int64_t Num;    // Leaf payload.
  Modref *Left;   // Holds TreeNode *.
  Modref *Right;  // Holds TreeNode *.
};

Closure *evalGotB(Runtime &RT, Word B, Word A, TreeNode *T, Modref *Res) {
  int64_t AV = fromWord<int64_t>(A), BV = fromWord<int64_t>(B);
  RT.writeT(Res, T->Op == '+' ? AV + BV : AV - BV);
  return nullptr;
}

Closure *evalGotA(Runtime &RT, Word A, Modref *Mb, TreeNode *T, Modref *Res) {
  return RT.readTail<&evalGotB>(Mb, A, T, Res);
}

Closure *evalCore(Runtime &RT, Modref *Root, Modref *Res);

Closure *evalNode(Runtime &RT, TreeNode *T, Modref *Res) {
  if (T->IsLeaf) {
    RT.writeT(Res, T->Num);
    return nullptr;
  }
  Modref *Ma = RT.coreModref(T, 0);
  Modref *Mb = RT.coreModref(T, 1);
  RT.callFn<&evalCore>(T->Left, Ma);
  RT.callFn<&evalCore>(T->Right, Mb);
  return RT.readTail<&evalGotA>(Ma, Mb, T, Res);
}

Closure *evalCore(Runtime &RT, Modref *Root, Modref *Res) {
  return RT.readTail<&evalNode>(Root, Res);
}

/// Mutator-side tree construction helpers.
TreeNode *makeLeaf(Runtime &, std::vector<TreeNode *> &Pool, int64_t Num) {
  auto *N = new TreeNode{true, 0, Num, nullptr, nullptr};
  Pool.push_back(N);
  return N;
}

TreeNode *makeOp(Runtime &RT, std::vector<TreeNode *> &Pool, char Op,
                 TreeNode *L, TreeNode *R) {
  auto *N = new TreeNode{false, Op, 0, RT.modref<TreeNode *>(L),
                         RT.modref<TreeNode *>(R)};
  Pool.push_back(N);
  return N;
}

//===----------------------------------------------------------------------===//
// Core: list map (the splice workhorse).
//===----------------------------------------------------------------------===//

struct Cell {
  Word Head;
  Modref *Tail; // Holds Cell *.
};

Closure *cellInit(Runtime &, void *Block, Word Head, Modref *Tail) {
  auto *C = static_cast<Cell *>(Block);
  C->Head = Head;
  C->Tail = Tail;
  return nullptr;
}

Word mapFn(Word X) { return 3 * X + 7; }

Closure *mapGot(Runtime &RT, Cell *C, Modref *Dst) {
  if (!C) {
    RT.writeT(Dst, static_cast<Cell *>(nullptr));
    return nullptr;
  }
  Modref *OutTail = RT.coreModref(C);
  auto *Out = static_cast<Cell *>(
      RT.alloc<&cellInit>(sizeof(Cell), mapFn(C->Head), OutTail));
  RT.writeT(Dst, Out);
  return RT.readTail<&mapGot>(C->Tail, OutTail);
}

Closure *mapCore(Runtime &RT, Modref *Src, Modref *Dst) {
  return RT.readTail<&mapGot>(Src, Dst);
}

//===----------------------------------------------------------------------===//
// Core: list sum (an accumulator chain; no memo reuse on suffix changes).
//===----------------------------------------------------------------------===//

Closure *sumGot(Runtime &RT, Cell *C, Word Acc, Modref *Dst) {
  if (!C) {
    RT.write(Dst, Acc);
    return nullptr;
  }
  return RT.readTail<&sumGot>(C->Tail, Acc + C->Head, Dst);
}

Closure *sumCore(Runtime &RT, Modref *Src, Modref *Dst) {
  return RT.readTail<&sumGot>(Src, Word(0), Dst);
}

/// Builds a mutator-level modifiable list; returns the head modifiable and
/// exposes the cells for surgery.
Modref *buildList(Runtime &RT, const std::vector<Word> &Values,
                  std::vector<Cell *> *CellsOut = nullptr) {
  Modref *Head = RT.modref<Cell *>(nullptr);
  Modref *Cur = Head;
  for (Word V : Values) {
    auto *C = new Cell{V, RT.modref<Cell *>(nullptr)};
    RT.modifyT(Cur, C);
    if (CellsOut)
      CellsOut->push_back(C);
    Cur = C->Tail;
  }
  return Head;
}

/// Reads a runtime list back into a vector through the meta interface.
std::vector<Word> readListBack(Runtime &RT, Modref *Head) {
  std::vector<Word> Result;
  for (auto *C = RT.derefT<Cell *>(Head); C; C = RT.derefT<Cell *>(C->Tail))
    Result.push_back(C->Head);
  return Result;
}

} // namespace

//===----------------------------------------------------------------------===//
// Tests
//===----------------------------------------------------------------------===//

TEST(Runtime, CopyInitialRun) {
  Runtime RT;
  Modref *Src = RT.modref<int64_t>(41);
  Modref *Dst = RT.modref();
  RT.runCore<&copyCore>(Src, Dst);
  EXPECT_EQ(RT.derefT<int64_t>(Dst), 41);
  EXPECT_EQ(RT.stats().ReadsTraced, 1u);
  EXPECT_EQ(RT.stats().WritesTraced, 1u);
}

TEST(Runtime, CopyPropagatesModification) {
  Runtime RT;
  Modref *Src = RT.modref<int64_t>(1);
  Modref *Dst = RT.modref();
  RT.runCore<&copyCore>(Src, Dst);
  RT.modifyT<int64_t>(Src, 5);
  RT.propagate();
  EXPECT_EQ(RT.derefT<int64_t>(Dst), 5);
  EXPECT_EQ(RT.stats().ReadsReexecuted, 1u);
}

TEST(Runtime, EqualityCutSkipsCleanReads) {
  Runtime RT;
  Modref *Src = RT.modref<int64_t>(7);
  Modref *Dst = RT.modref();
  RT.runCore<&copyCore>(Src, Dst);
  RT.modifyT<int64_t>(Src, 7); // Unchanged value: nothing to do.
  RT.propagate();
  EXPECT_EQ(RT.stats().ReadsReexecuted, 0u);
  // A modify-away and modify-back pair between propagates is also cut,
  // but only at re-execution time.
  RT.modifyT<int64_t>(Src, 9);
  RT.modifyT<int64_t>(Src, 7);
  RT.propagate();
  EXPECT_EQ(RT.stats().ReadsReexecuted, 0u);
  EXPECT_EQ(RT.stats().ReadsSkippedClean, 1u);
  EXPECT_EQ(RT.derefT<int64_t>(Dst), 7);
}

TEST(Runtime, PipelinePropagatesTransitively) {
  Runtime RT;
  Modref *A = RT.modref<int64_t>(4);
  Modref *B = RT.modref();
  Modref *C = RT.modref();
  RT.runCore<&pipelineCore>(A, B, C);
  EXPECT_EQ(RT.derefT<int64_t>(B), 5);
  EXPECT_EQ(RT.derefT<int64_t>(C), 50);
  RT.modifyT<int64_t>(A, 9);
  RT.propagate();
  EXPECT_EQ(RT.derefT<int64_t>(B), 10);
  EXPECT_EQ(RT.derefT<int64_t>(C), 100);
}

TEST(Runtime, MultiWriteModifiableGovernsReadersByTime) {
  Runtime RT;
  Modref *In = RT.modref<int64_t>(100);
  Modref *M = RT.modref();
  Modref *Out1 = RT.modref();
  Modref *Out2 = RT.modref();
  RT.runCore<&multiWriteCore>(In, M, Out1, Out2);
  EXPECT_EQ(RT.derefT<int64_t>(Out1), 101);
  EXPECT_EQ(RT.derefT<int64_t>(Out2), 102);
  // deref sees the final write.
  EXPECT_EQ(RT.derefT<int64_t>(M), 102);

  RT.modifyT<int64_t>(In, 200);
  RT.propagate();
  EXPECT_EQ(RT.derefT<int64_t>(Out1), 201);
  EXPECT_EQ(RT.derefT<int64_t>(Out2), 202);
}

TEST(Runtime, ExpressionTreePaperExample) {
  // exp = "((3 + 4) - (1 - 2)) + (5 - 6)" — the tree of paper Fig. 4.
  Runtime RT;
  std::vector<TreeNode *> Pool;
  TreeNode *D = makeOp(RT, Pool, '+', makeLeaf(RT, Pool, 3),
                       makeLeaf(RT, Pool, 4));
  TreeNode *F = makeOp(RT, Pool, '-', makeLeaf(RT, Pool, 1),
                       makeLeaf(RT, Pool, 2));
  TreeNode *B = makeOp(RT, Pool, '-', D, F);
  TreeNode *LeafK = makeLeaf(RT, Pool, 6);
  TreeNode *I = makeOp(RT, Pool, '-', makeLeaf(RT, Pool, 5), LeafK);
  TreeNode *A = makeOp(RT, Pool, '+', B, I);

  Modref *Root = RT.modref<TreeNode *>(A);
  Modref *Res = RT.modref();
  RT.runCore<&evalCore>(Root, Res);
  EXPECT_EQ(RT.derefT<int64_t>(Res), 7);

  // Substitute "(6 + 7)" for leaf k, as the paper's mutator does; the
  // result becomes ((3+4)-(1-2)) + (5-13) = 8 - 8 = 0.
  TreeNode *Sub = makeOp(RT, Pool, '+', makeLeaf(RT, Pool, 6),
                         makeLeaf(RT, Pool, 7));
  RT.modifyT<TreeNode *>(I->Right, Sub);
  RT.propagate();
  EXPECT_EQ(RT.derefT<int64_t>(Res), 0);

  // Only the path from the changed leaf to the root is re-evaluated:
  // node i and node a, plus the fresh subtree — far fewer reads than the
  // whole tree.
  EXPECT_LE(RT.stats().ReadsReexecuted, 6u);
  for (TreeNode *N : Pool)
    delete N;
}

TEST(Runtime, MapInitialRun) {
  Runtime RT;
  std::vector<Word> In = {1, 2, 3, 4, 5};
  Modref *Src = buildList(RT, In);
  Modref *Dst = RT.modref();
  RT.runCore<&mapCore>(Src, Dst);
  std::vector<Word> Expected;
  for (Word V : In)
    Expected.push_back(mapFn(V));
  EXPECT_EQ(readListBack(RT, Dst), Expected);
}

TEST(Runtime, MapInsertSplicesInsteadOfRecomputing) {
  Runtime RT;
  std::vector<Word> In;
  for (Word I = 0; I < 1000; ++I)
    In.push_back(I);
  std::vector<Cell *> Cells;
  Modref *Src = buildList(RT, In, &Cells);
  Modref *Dst = RT.modref();
  RT.runCore<&mapCore>(Src, Dst);

  // Insert a new element after position 100.
  auto *NewCell = new Cell{7777, RT.modref<Cell *>(nullptr)};
  RT.modifyT(NewCell->Tail, RT.derefT<Cell *>(Cells[100]->Tail));
  RT.modifyT(Cells[100]->Tail, NewCell);

  uint64_t ReexecBefore = RT.stats().ReadsReexecuted;
  uint64_t FreshBefore = RT.stats().ReadsTraced;
  RT.propagate();

  std::vector<Word> Expected;
  for (Word I = 0; I <= 100; ++I)
    Expected.push_back(mapFn(I));
  Expected.push_back(mapFn(7777));
  for (Word I = 101; I < 1000; ++I)
    Expected.push_back(mapFn(I));
  EXPECT_EQ(readListBack(RT, Dst), Expected);

  // The splice makes the update O(1): one re-execution, a handful of
  // fresh reads, and at least one memo hit — not ~900 re-processed cells.
  EXPECT_EQ(RT.stats().ReadsReexecuted - ReexecBefore, 1u);
  EXPECT_LE(RT.stats().ReadsTraced - FreshBefore, 4u);
  EXPECT_GE(RT.stats().MemoReadHits, 1u);
  delete NewCell;
}

TEST(Runtime, MapDeleteRevokesAndReuses) {
  Runtime RT;
  std::vector<Word> In;
  for (Word I = 0; I < 500; ++I)
    In.push_back(I);
  std::vector<Cell *> Cells;
  Modref *Src = buildList(RT, In, &Cells);
  Modref *Dst = RT.modref();
  RT.runCore<&mapCore>(Src, Dst);

  // Delete element 250 by bypassing its cell.
  RT.modifyT(Cells[249]->Tail, Cells[251]);
  RT.propagate();

  std::vector<Word> Expected;
  for (Word I = 0; I < 500; ++I)
    if (I != 250)
      Expected.push_back(mapFn(I));
  EXPECT_EQ(readListBack(RT, Dst), Expected);
  EXPECT_GE(RT.stats().MemoReadHits, 1u);
  EXPECT_GE(RT.stats().NodesRevoked, 1u);

  // Reinsert it.
  RT.modifyT(Cells[249]->Tail, Cells[250]);
  RT.propagate();
  std::vector<Word> Expected2;
  for (Word I = 0; I < 500; ++I)
    Expected2.push_back(mapFn(I));
  EXPECT_EQ(readListBack(RT, Dst), Expected2);
}

TEST(Runtime, MapThenSumPipeline) {
  // Two cores over the same input: map feeds a list that sum consumes.
  Runtime RT;
  std::vector<Word> In = {10, 20, 30, 40};
  std::vector<Cell *> Cells;
  Modref *Src = buildList(RT, In, &Cells);
  Modref *Mid = RT.modref();
  Modref *Out = RT.modref();
  RT.runCore<&mapCore>(Src, Mid);
  RT.runCore<&sumCore>(Mid, Out);

  auto ExpectedSum = [&](const std::vector<Word> &Vs) {
    Word Acc = 0;
    for (Word V : Vs)
      Acc += mapFn(V);
    return Acc;
  };
  EXPECT_EQ(RT.deref(Out), ExpectedSum(In));

  // Delete the second element; both cores must update consistently.
  RT.modifyT(Cells[0]->Tail, Cells[2]);
  RT.propagate();
  EXPECT_EQ(RT.deref(Out), ExpectedSum({10, 30, 40}));

  // Put it back, and replace the head cell with one carrying value 11
  // (cell heads are plain words, so value changes are cell replacements).
  RT.modifyT(Cells[0]->Tail, Cells[1]);
  auto *Repl = new Cell{11, RT.modref<Cell *>(Cells[1])};
  RT.modifyT(Src, Repl);
  RT.propagate();
  EXPECT_EQ(RT.deref(Out), ExpectedSum({11, 20, 30, 40}));
  delete Repl;
}

TEST(Runtime, RandomizedListEditingMatchesOracle) {
  // Property test: after every random edit + propagate, the mapped output
  // equals a from-scratch recomputation on the current input.
  for (uint64_t Seed : {11ull, 22ull, 33ull}) {
    Rng R(Seed);
    Runtime RT;
    std::vector<Word> In;
    for (Word I = 0; I < 200; ++I)
      In.push_back(R.below(1000));
    std::vector<Cell *> Cells;
    Modref *Src = buildList(RT, In, &Cells);
    Modref *Dst = RT.modref();
    RT.runCore<&mapCore>(Src, Dst);

    // Maintain a mirror of the list as (modref chain) for edits.
    for (int Edit = 0; Edit < 60; ++Edit) {
      // Pick a random position's tail modref and either delete the
      // following cell or insert a fresh one.
      std::vector<Word> Cur = readListBack(RT, Src);
      size_t Pos = R.below(Cur.size() + 1);
      Modref *TailRef = Src;
      Cell *Walk = RT.derefT<Cell *>(Src);
      for (size_t I = 0; I < Pos && Walk; ++I) {
        TailRef = Walk->Tail;
        Walk = RT.derefT<Cell *>(Walk->Tail);
      }
      if (R.flip() && Walk) {
        // Delete the cell after TailRef.
        RT.modifyT(TailRef, RT.derefT<Cell *>(Walk->Tail));
      } else {
        // Insert before Walk.
        auto *Fresh = new Cell{R.below(1000), RT.modref<Cell *>(Walk)};
        RT.modifyT(TailRef, Fresh);
      }
      RT.propagate();
      std::vector<Word> Input = readListBack(RT, Src);
      std::vector<Word> Expected;
      for (Word V : Input)
        Expected.push_back(mapFn(V));
      ASSERT_EQ(readListBack(RT, Dst), Expected)
          << "seed=" << Seed << " edit=" << Edit;
    }
  }
}

TEST(Runtime, AllocStealingPreservesPointerIdentity) {
  Runtime RT;
  std::vector<Word> In = {1, 2, 3, 4, 5, 6};
  std::vector<Cell *> Cells;
  Modref *Src = buildList(RT, In, &Cells);
  Modref *Dst = RT.modref();
  RT.runCore<&mapCore>(Src, Dst);

  // Record the output cells for the untouched suffix.
  std::vector<Cell *> OutBefore;
  for (auto *C = RT.derefT<Cell *>(Dst); C; C = RT.derefT<Cell *>(C->Tail))
    OutBefore.push_back(C);

  // Delete element 1 (index 1); the suffix 3..6 should keep its cells.
  RT.modifyT(Cells[0]->Tail, Cells[2]);
  RT.propagate();
  std::vector<Cell *> OutAfter;
  for (auto *C = RT.derefT<Cell *>(Dst); C; C = RT.derefT<Cell *>(C->Tail))
    OutAfter.push_back(C);
  ASSERT_EQ(OutAfter.size(), OutBefore.size() - 1);
  // Cell for input value 3 onwards must be pointer-identical (stolen).
  for (size_t I = 1; I < OutAfter.size(); ++I)
    EXPECT_EQ(OutAfter[I], OutBefore[I + 1]) << "index " << I;
}

TEST(Runtime, DerefSeesLatestWrite) {
  Runtime RT;
  Modref *M = RT.modref<int64_t>(3);
  EXPECT_EQ(RT.derefT<int64_t>(M), 3);
  RT.modifyT<int64_t>(M, 4);
  EXPECT_EQ(RT.derefT<int64_t>(M), 4);
}

TEST(Runtime, TraceMemoryIsReclaimedOnDelete) {
  Runtime RT;
  std::vector<Word> In;
  for (Word I = 0; I < 2000; ++I)
    In.push_back(I);
  std::vector<Cell *> Cells;
  Modref *Src = buildList(RT, In, &Cells);
  Modref *Dst = RT.modref();
  RT.runCore<&mapCore>(Src, Dst);
  size_t LiveFull = RT.liveBytes();

  // Cut the list to its first 10 elements: ~99% of the trace is revoked.
  RT.modifyT(Cells[9]->Tail, static_cast<Cell *>(nullptr));
  RT.propagate();
  size_t LiveCut = RT.liveBytes();
  EXPECT_LT(LiveCut, LiveFull / 10);
  std::vector<Word> Expected;
  for (Word I = 0; I < 10; ++I)
    Expected.push_back(mapFn(I));
  EXPECT_EQ(readListBack(RT, Dst), Expected);
}
