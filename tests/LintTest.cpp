//===- tests/LintTest.cpp - CEAL-specific lints on seeded defects ---------===//
//
// One purpose-built bad program per lint, each asserting the check slug,
// severity, and exact block location of the expected diagnostic — plus
// the other half of the contract: the shipped samples are clean (zero
// errors, zero warnings), so cl-lint can gate CI on them.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lints.h"
#include "cl/Parser.h"
#include "cl/Printer.h"
#include "cl/Samples.h"
#include "normalize/Normalize.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace ceal;
using namespace ceal::analysis;
using namespace ceal::cl;

namespace {

Program parseOrDie(const std::string &Src) {
  auto R = parseProgram(Src);
  EXPECT_TRUE(R) << R.Error;
  return std::move(*R.Prog);
}

LintReport lint(const std::string &Src, LintOptions O = {}) {
  Program P = parseOrDie(Src);
  return runLints(P, O);
}

/// The diagnostics matching \p Check.
std::vector<Diagnostic> ofCheck(const LintReport &R, const std::string &Check) {
  std::vector<Diagnostic> Out;
  for (const Diagnostic &D : R.Diags)
    if (D.Check == Check)
      Out.push_back(D);
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Seeded defects, one per lint
//===----------------------------------------------------------------------===//

TEST(Lint, VerifyErrorIsLocated) {
  // Reading a plain int variable is a verifier error; the diagnostic
  // must carry the function and the offending block.
  LintReport R = lint(R"(
func bad_verify(modref* m) {
  var int x; var int y;
  e: x := 1; goto r;
  r: y := read x; goto f;
  f: done;
}
)");
  auto Ds = ofCheck(R, "verify");
  ASSERT_EQ(Ds.size(), 1u);
  EXPECT_EQ(Ds[0].Sev, Severity::Error);
  EXPECT_EQ(Ds[0].Function, 0u);
  EXPECT_EQ(Ds[0].Block, 1u); // Block 'r'.
  EXPECT_EQ(Ds[0].Index, 0u);
  EXPECT_NE(Ds[0].Message.find("read of non-modref*"), std::string::npos);
  EXPECT_EQ(R.errorCount(), 1u);
}

TEST(Lint, ReadNotTailRequiresNormalForm) {
  const char *Src = R"(
func bad_rnt(modref* m, modref* out) {
  var int x;
  r: x := read m; goto w;
  w: write(out, x); goto f;
  f: done;
}
)";
  // Without the flag the program is fine (reads may goto in source CL).
  EXPECT_EQ(lint(Src).errorCount(), 0u);
  LintOptions O;
  O.RequireNormalForm = true;
  LintReport R = lint(Src, O);
  auto Ds = ofCheck(R, "read-not-tail");
  ASSERT_EQ(Ds.size(), 1u);
  EXPECT_EQ(Ds[0].Sev, Severity::Error);
  EXPECT_EQ(Ds[0].Block, 0u); // Block 'r'.
}

TEST(Lint, UseBeforeDef) {
  LintReport R = lint(R"(
func bad_ubd(modref* out) {
  var int x; var int y; var int c;
  e: c := 0; goto br;
  br: if c then goto la else goto lb;
  la: x := 1; goto w;
  lb: y := 2; goto w;
  w: write(out, x); goto f;
  f: done;
}
)");
  auto Ds = ofCheck(R, "use-before-def");
  ASSERT_EQ(Ds.size(), 1u);
  EXPECT_EQ(Ds[0].Sev, Severity::Warning);
  EXPECT_EQ(Ds[0].Block, 4u); // Block 'w': x undefined via 'lb'.
  EXPECT_NE(Ds[0].Message.find("'x'"), std::string::npos);
}

TEST(Lint, RedundantRead) {
  LintReport R = lint(R"(
func bad_rr(modref* m, modref* out) {
  var int a; var int b; var int s;
  r1: a := read m; goto r2;
  r2: b := read m; goto ad;
  ad: s := add(a, b); goto w;
  w: write(out, s); goto f;
  f: done;
}
)");
  auto Ds = ofCheck(R, "redundant-read");
  ASSERT_EQ(Ds.size(), 1u);
  EXPECT_EQ(Ds[0].Sev, Severity::Warning);
  EXPECT_EQ(Ds[0].Block, 1u); // Block 'r2', provided by 'r1'.
  EXPECT_NE(Ds[0].Message.find("block 'r1'"), std::string::npos);
}

TEST(Lint, DeadWrite) {
  LintReport R = lint(R"(
func bad_dw(modref* out) {
  var int a; var int b;
  e: a := 1; goto w1;
  w1: write(out, a); goto e2;
  e2: b := 2; goto w2;
  w2: write(out, b); goto f;
  f: done;
}
)");
  auto Ds = ofCheck(R, "dead-write");
  ASSERT_EQ(Ds.size(), 1u);
  EXPECT_EQ(Ds[0].Sev, Severity::Warning);
  EXPECT_EQ(Ds[0].Block, 1u); // 'w1' is surely overwritten by 'w2'.
}

TEST(Lint, UnusedAlloc) {
  LintReport R = lint(R"(
func init0(int* blk) {
  f: done;
}
func bad_ua(modref* out) {
  var int* p; var int sz; var int z;
  e: sz := 4; goto al;
  al: p := alloc(sz, init0); goto z1;
  z1: z := 7; goto w;
  w: write(out, z); goto f;
  f: done;
}
)");
  auto Ds = ofCheck(R, "unused-alloc");
  ASSERT_EQ(Ds.size(), 1u);
  EXPECT_EQ(Ds[0].Sev, Severity::Warning);
  EXPECT_EQ(Ds[0].Function, 1u); // bad_ua.
  EXPECT_EQ(Ds[0].Block, 1u);    // Block 'al'.
}

TEST(Lint, MemoKeyWrite) {
  LintReport R = lint(R"(
func bad_mkw(modref* m, modref* out) {
  var modref* k; var int v; var int r;
  e: v := 5; goto mk;
  mk: k := modref(m); goto w1;
  w1: write(m, v); goto rd;
  rd: r := read k; goto w2;
  w2: write(out, r); goto f;
  f: done;
}
)");
  auto Ds = ofCheck(R, "memo-key-write");
  ASSERT_EQ(Ds.size(), 1u);
  EXPECT_EQ(Ds[0].Sev, Severity::Warning);
  EXPECT_EQ(Ds[0].Block, 2u); // 'w1' writes through an escaped key.
  EXPECT_NE(Ds[0].Message.find("'m'"), std::string::npos);
}

TEST(Lint, LoopHeaderLiveSet) {
  const char *Src = R"(
func bad_ll(modref* out) {
  var int i; var int a; var int b; var int n; var int c;
  e: i := 0; goto e2;
  e2: a := 1; goto e3;
  e3: b := 2; goto e4;
  e4: n := 10; goto h;
  h: c := lt(i, n); goto br;
  br: if c then goto body else goto x;
  body: i := add(i, a); goto h;
  x: write(out, b); goto f;
  f: done;
}
)";
  LintOptions O;
  O.LoopLiveThreshold = 2;
  LintReport R = lint(Src, O);
  auto Ds = ofCheck(R, "loop-live");
  ASSERT_EQ(Ds.size(), 1u);
  EXPECT_EQ(Ds[0].Sev, Severity::Warning);
  EXPECT_EQ(Ds[0].Block, 4u); // Header 'h'.
  EXPECT_NE(Ds[0].Message.find("ML(P)"), std::string::npos);
  // Above the default threshold the same program is quiet.
  EXPECT_TRUE(ofCheck(lint(Src), "loop-live").empty());
}

TEST(Lint, DeadCodeAndUnreachableNotes) {
  LintReport R = lint(R"(
func bad_notes(modref* out) {
  var int a; var int z;
  e: a := 1; goto w;
  w: write(out, a); goto f;
  f: done;
  orphan: z := 9; goto f;
}
)");
  auto Unreach = ofCheck(R, "unreachable");
  ASSERT_EQ(Unreach.size(), 1u);
  EXPECT_EQ(Unreach[0].Sev, Severity::Note);
  EXPECT_EQ(Unreach[0].Block, 3u); // 'orphan'.
}

TEST(Lint, ParallelUnsafeWrite) {
  // A pointer produced by arithmetic has no region class: the write may
  // land anywhere, so no interval partition can claim it.
  LintReport R = lint(R"(
func bad_puw(int a, int b) {
  var modref* t; var int z;
  e: t := add(a, b); goto z1;
  z1: z := 1; goto w;
  w: write(t, z); goto f;
  f: done;
}
)");
  auto Ds = ofCheck(R, "parallel-unsafe-write");
  ASSERT_EQ(Ds.size(), 1u);
  EXPECT_EQ(Ds[0].Sev, Severity::Warning);
  EXPECT_EQ(Ds[0].Block, 2u); // Block 'w'.
  EXPECT_NE(Ds[0].Message.find("unknown region class"), std::string::npos);
}

TEST(Lint, CrossRegionAlias) {
  // Both reaching definitions of t survive to the write, one per
  // parameter: the write straddles two region roots.
  LintReport R = lint(R"(
func bad_cra(modref* p, modref* q, int which) {
  var modref* t; var int z;
  e: if which then goto a else goto b;
  a: t := p; goto w;
  b: t := q; goto w;
  w: z := 1; goto wr;
  wr: write(t, z); goto f;
  f: done;
}
)");
  auto Ds = ofCheck(R, "cross-region-alias");
  ASSERT_EQ(Ds.size(), 1u);
  EXPECT_EQ(Ds[0].Sev, Severity::Warning);
  EXPECT_EQ(Ds[0].Block, 4u); // Block 'wr'.
  EXPECT_NE(Ds[0].Message.find("parameter 'p'"), std::string::npos);
  EXPECT_NE(Ds[0].Message.find("parameter 'q'"), std::string::npos);
  // The flow-sensitive half of the contract: a re-binding on a single
  // path is NOT an alias — only one definition reaches the write.
  LintReport Clean = lint(R"(
func ok_cra(modref* p, modref* q, int which) {
  var modref* t; var int z;
  e: t := p; goto re;
  re: t := q; goto w;
  w: z := 1; goto wr;
  wr: write(t, z); goto f;
  f: done;
}
)");
  EXPECT_TRUE(ofCheck(Clean, "cross-region-alias").empty());
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

TEST(Lint, RenderedDiagnosticIsSourceAnchored) {
  Program P = parseOrDie(R"(
func bad_rr(modref* m, modref* out) {
  var int a; var int b; var int s;
  r1: a := read m; goto r2;
  r2: b := read m; goto ad;
  ad: s := add(a, b); goto w;
  w: write(out, s); goto f;
  f: done;
}
)");
  LintReport R = runLints(P, {});
  auto Ds = ofCheck(R, "redundant-read");
  ASSERT_EQ(Ds.size(), 1u);
  std::string Text = renderDiagnostic(P, Ds[0]);
  EXPECT_NE(Text.find("warning[redundant-read]"), std::string::npos) << Text;
  EXPECT_NE(Text.find("function 'bad_rr'"), std::string::npos) << Text;
  EXPECT_NE(Text.find("block 'r2'"), std::string::npos) << Text;
  EXPECT_NE(Text.find("b := read m"), std::string::npos) << Text;
}

//===----------------------------------------------------------------------===//
// The other half: shipped samples are clean
//===----------------------------------------------------------------------===//

TEST(Lint, ShippedSamplesAreClean) {
  for (const auto &[Name, Source] : samples::allPrograms()) {
    LintReport R = lint(Source);
    size_t Warnings = 0;
    for (const Diagnostic &D : R.Diags)
      if (D.Sev != Severity::Note)
        ++Warnings;
    EXPECT_EQ(R.errorCount(), 0u) << Name;
    EXPECT_EQ(Warnings, 0u) << Name;
  }
}

TEST(Lint, NormalizedSamplesPassNormalFormLint) {
  // After NORMALIZE every read tails, so the strict gate holds too.
  for (const auto &[Name, Source] : samples::allPrograms()) {
    Program P = parseOrDie(Source);
    Program Norm = ceal::normalize::normalizeProgram(P).Prog;
    LintOptions O;
    O.RequireNormalForm = true;
    LintReport R = runLints(Norm, O);
    EXPECT_TRUE(ofCheck(R, "read-not-tail").empty()) << Name;
    EXPECT_EQ(R.errorCount(), 0u) << Name;
  }
}
