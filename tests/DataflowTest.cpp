//===- tests/DataflowTest.cpp - BitVec, solver, dominator edge cases ------===//
//
// Unit tests for the dataflow framework underneath the analyses:
//
//  * BitVec: word-boundary behavior, meet operations, iteration order.
//  * solveDataflow on hand-built edge-case CFGs — unreachable blocks,
//    self-loops, and irreducible graphs — for both meets and both
//    directions, checked against fixpoints worked by hand.
//  * Dominators on the same pathological shapes, cross-checking the
//    iterative and semi-NCA algorithms.
//  * Liveness determinism: liveAt returns variables in ascending id
//    order regardless of CFG shape (closure layouts depend on it).
//
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"
#include "analysis/Dominators.h"
#include "analysis/Liveness.h"
#include "cl/Parser.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace ceal;
using namespace ceal::analysis;
using namespace ceal::cl;

namespace {

BitVec bv(size_t N, std::initializer_list<uint32_t> Bits) {
  BitVec V(N);
  for (uint32_t B : Bits)
    V.set(B);
  return V;
}

/// A BlockCfg assembled by hand; entry 0, exits as given.
BlockCfg makeCfg(size_t N,
                 std::initializer_list<std::pair<uint32_t, uint32_t>> Es,
                 std::initializer_list<uint32_t> Exits) {
  BlockCfg G;
  G.Succs.assign(N, {});
  G.Preds.assign(N, {});
  G.Entries = {0};
  G.Exits.assign(Exits.begin(), Exits.end());
  for (auto [A, B] : Es) {
    G.Succs[A].push_back(B);
    G.Preds[B].push_back(A);
  }
  G.Reachable.assign(N, false);
  std::vector<uint32_t> Stack{0};
  G.Reachable[0] = true;
  while (!Stack.empty()) {
    uint32_t V = Stack.back();
    Stack.pop_back();
    for (uint32_t S : G.Succs[V])
      if (!G.Reachable[S]) {
        G.Reachable[S] = true;
        Stack.push_back(S);
      }
  }
  return G;
}

} // namespace

//===----------------------------------------------------------------------===//
// BitVec
//===----------------------------------------------------------------------===//

TEST(BitVec, WordBoundaries) {
  // Sizes straddling the 64-bit word boundary.
  for (size_t N : {1u, 63u, 64u, 65u, 128u, 130u}) {
    BitVec V(N);
    EXPECT_TRUE(V.none());
    EXPECT_EQ(V.count(), 0u);
    V.set(0);
    V.set(static_cast<uint32_t>(N - 1));
    EXPECT_TRUE(V.test(0));
    EXPECT_TRUE(V.test(static_cast<uint32_t>(N - 1)));
    EXPECT_EQ(V.count(), N == 1 ? 1u : 2u);
    V.setAll();
    EXPECT_EQ(V.count(), N);
    // setAll must not set bits past size(): clearing the valid range
    // leaves nothing behind.
    for (uint32_t B = 0; B < N; ++B)
      V.reset(B);
    EXPECT_TRUE(V.none());
  }
}

TEST(BitVec, MeetOperationsReportChange) {
  BitVec A = bv(100, {1, 50, 99});
  BitVec B = bv(100, {1, 70});
  BitVec U = A;
  EXPECT_TRUE(U.unionWith(B));      // 70 is new.
  EXPECT_FALSE(U.unionWith(B));     // Fixpoint.
  EXPECT_EQ(U, bv(100, {1, 50, 70, 99}));
  BitVec I = A;
  EXPECT_TRUE(I.intersectWith(B));  // 50, 99 drop.
  EXPECT_FALSE(I.intersectWith(B));
  EXPECT_EQ(I, bv(100, {1}));
  BitVec S = A;
  S.subtract(B);
  EXPECT_EQ(S, bv(100, {50, 99}));
}

#ifndef NDEBUG
TEST(BitVecDeathTest, MismatchedSizesAssert) {
  // The binary set operations index the operand's words by this->size();
  // a smaller operand would be an out-of-bounds read, so mismatched
  // sizes must be rejected up front.
  BitVec A = bv(100, {1});
  BitVec B = bv(64, {1});
  EXPECT_DEATH(A.unionWith(B), "sizes must match");
  EXPECT_DEATH(A.intersectWith(B), "sizes must match");
  EXPECT_DEATH(A.subtract(B), "sizes must match");
}
#endif

TEST(BitVec, IterationAscending) {
  BitVec V = bv(200, {199, 0, 64, 63, 65, 3});
  std::vector<uint32_t> Got = V.bits();
  std::vector<uint32_t> Want = {0, 3, 63, 64, 65, 199};
  EXPECT_EQ(Got, Want);
  std::vector<uint32_t> Each;
  V.forEach([&](uint32_t B) { Each.push_back(B); });
  EXPECT_EQ(Each, Want);
}

//===----------------------------------------------------------------------===//
// The solver on edge-case CFGs
//===----------------------------------------------------------------------===//

TEST(Dataflow, SelfLoopForwardUnion) {
  // 0 -> 1, 1 -> 1 (self-loop), 1 -> 2. Gen at each block is its own id.
  BlockCfg G = makeCfg(3, {{0, 1}, {1, 1}, {1, 2}}, {2});
  DataflowProblem P;
  P.Dir = Direction::Forward;
  P.M = Meet::Union;
  P.DomainSize = 3;
  P.Transfer.resize(3);
  for (uint32_t B = 0; B < 3; ++B) {
    P.Transfer[B].Gen = bv(3, {B});
    P.Transfer[B].Kill = BitVec(3);
  }
  P.Boundary = BitVec(3);
  DataflowResult R = solveDataflow(G, P);
  EXPECT_EQ(R.In[1], bv(3, {0, 1})); // Its own Out flows around the loop.
  EXPECT_EQ(R.Out[1], bv(3, {0, 1}));
  EXPECT_EQ(R.In[2], bv(3, {0, 1}));
}

TEST(Dataflow, UnreachableBlocksKeepTopUnderIntersect) {
  // Block 2 is disconnected; under an intersect meet it must stay at
  // top (the solver never visits an edge into it), and consumers filter
  // on Reachable.
  BlockCfg G = makeCfg(3, {{0, 1}}, {1});
  DataflowProblem P;
  P.Dir = Direction::Forward;
  P.M = Meet::Intersect;
  P.DomainSize = 4;
  P.Transfer.resize(3);
  for (uint32_t B = 0; B < 3; ++B) {
    P.Transfer[B].Gen = BitVec(4);
    P.Transfer[B].Kill = BitVec(4);
  }
  P.Transfer[0].Gen = bv(4, {0});
  P.Boundary = BitVec(4); // Entry starts empty.
  DataflowResult R = solveDataflow(G, P);
  EXPECT_FALSE(G.Reachable[2]);
  EXPECT_EQ(R.In[1], bv(4, {0}));
  EXPECT_EQ(R.In[2].count(), 4u); // Top.
}

TEST(Dataflow, BoundaryNodeWithPredecessorsMeetsBoth) {
  // The entry has a back edge into it: 0 -> 1 -> 0, 1 -> 2. Under a
  // forward intersect with a full boundary, facts killed around the
  // loop must drain out of In[0] too — the boundary is a virtual edge,
  // not a clamp.
  BlockCfg G = makeCfg(3, {{0, 1}, {1, 0}, {1, 2}}, {2});
  DataflowProblem P;
  P.Dir = Direction::Forward;
  P.M = Meet::Intersect;
  P.DomainSize = 2;
  P.Transfer.resize(3);
  for (uint32_t B = 0; B < 3; ++B) {
    P.Transfer[B].Gen = BitVec(2);
    P.Transfer[B].Kill = BitVec(2);
  }
  P.Transfer[1].Kill = bv(2, {1}); // The loop body kills fact 1.
  P.Boundary = bv(2, {0, 1});
  DataflowResult R = solveDataflow(G, P);
  EXPECT_EQ(R.In[0], bv(2, {0})); // Fact 1 lost via the back edge.
  EXPECT_EQ(R.In[2], bv(2, {0}));
}

TEST(Dataflow, IrreducibleGraphConverges) {
  // The classic irreducible shape: 0 -> {1, 2}, 1 <-> 2, both exit to 3.
  // No natural loop header; the solver must still reach the unique
  // greatest fixpoint.
  BlockCfg G = makeCfg(4, {{0, 1}, {0, 2}, {1, 2}, {2, 1}, {1, 3}, {2, 3}},
                       {3});
  DataflowProblem P;
  P.Dir = Direction::Forward;
  P.M = Meet::Union;
  P.DomainSize = 4;
  P.Transfer.resize(4);
  for (uint32_t B = 0; B < 4; ++B) {
    P.Transfer[B].Gen = bv(4, {B});
    P.Transfer[B].Kill = BitVec(4);
  }
  P.Boundary = BitVec(4);
  DataflowResult R = solveDataflow(G, P);
  EXPECT_EQ(R.In[1], bv(4, {0, 1, 2})); // Via 0 and via the 2 -> 1 edge.
  EXPECT_EQ(R.In[2], bv(4, {0, 1, 2}));
  EXPECT_EQ(R.In[3], bv(4, {0, 1, 2}));
}

TEST(Dataflow, BackwardIntersectMultipleExits) {
  // Diamond with two exits: 0 -> 1 -> 3(exit), 0 -> 2(exit). Backward
  // intersect with empty boundary at exits: everything must drain.
  BlockCfg G = makeCfg(4, {{0, 1}, {0, 2}, {1, 3}}, {2, 3});
  DataflowProblem P;
  P.Dir = Direction::Backward;
  P.M = Meet::Intersect;
  P.DomainSize = 3;
  P.Transfer.resize(4);
  for (uint32_t B = 0; B < 4; ++B) {
    P.Transfer[B].Gen = BitVec(3);
    P.Transfer[B].Kill = BitVec(3);
  }
  P.Transfer[1].Gen = bv(3, {1}); // Only the 0 -> 1 path generates.
  P.Boundary = BitVec(3);
  DataflowResult R = solveDataflow(G, P);
  // Backward: In of a block is its flow-out toward predecessors.
  EXPECT_EQ(R.In[1], bv(3, {1}));
  EXPECT_TRUE(R.In[0].none()); // Intersect of {1} (via 1) and {} (via 2).
}

TEST(Dataflow, FindLoopHeadersSelfAndNested) {
  // 0 -> 1 -> 2 -> 1 (loop), 2 -> 2 (self-loop), 2 -> 3.
  BlockCfg G = makeCfg(4, {{0, 1}, {1, 2}, {2, 1}, {2, 2}, {2, 3}}, {3});
  std::vector<BlockId> H = findLoopHeaders(G);
  EXPECT_EQ(H, (std::vector<BlockId>{1, 2}));
}

//===----------------------------------------------------------------------===//
// Dominators on pathological shapes
//===----------------------------------------------------------------------===//

namespace {

RootedGraph makeRooted(uint32_t N,
                       std::initializer_list<std::pair<uint32_t, uint32_t>> Es) {
  RootedGraph G;
  G.Root = 0;
  G.Succs.assign(N, {});
  G.Preds.assign(N, {});
  for (auto [A, B] : Es) {
    G.Succs[A].push_back(B);
    G.Preds[B].push_back(A);
  }
  return G;
}

} // namespace

TEST(Dominators, UnreachableNodesGetInvalid) {
  RootedGraph G = makeRooted(4, {{0, 1}, {2, 3}, {3, 2}});
  auto It = computeDominatorsIterative(G);
  auto Nca = computeDominatorsSemiNca(G);
  EXPECT_EQ(It, Nca);
  EXPECT_EQ(It[0], 0u);
  EXPECT_EQ(It[1], 0u);
  EXPECT_EQ(It[2], InvalidNode);
  EXPECT_EQ(It[3], InvalidNode);
}

TEST(Dominators, SelfLoopDoesNotSelfDominate) {
  RootedGraph G = makeRooted(3, {{0, 1}, {1, 1}, {1, 2}});
  auto It = computeDominatorsIterative(G);
  auto Nca = computeDominatorsSemiNca(G);
  EXPECT_EQ(It, Nca);
  EXPECT_EQ(It[1], 0u); // The self-edge must not make 1 its own idom.
  EXPECT_EQ(It[2], 1u);
}

TEST(Dominators, IrreducibleIdomFallsToRoot) {
  // 0 -> 1, 0 -> 2, 1 <-> 2: neither 1 nor 2 dominates the other, so
  // both have idom 0 despite each being the other's predecessor.
  RootedGraph G = makeRooted(3, {{0, 1}, {0, 2}, {1, 2}, {2, 1}});
  auto It = computeDominatorsIterative(G);
  auto Nca = computeDominatorsSemiNca(G);
  EXPECT_EQ(It, Nca);
  EXPECT_EQ(It[1], 0u);
  EXPECT_EQ(It[2], 0u);
}

//===----------------------------------------------------------------------===//
// Liveness determinism
//===----------------------------------------------------------------------===//

TEST(Liveness, LiveAtAscendingVarOrder) {
  // Closure environment layouts take liveAt's order verbatim; it must
  // be ascending VarId no matter in which order the solver discovered
  // liveness. Declare variables so that later-declared ones become live
  // first on some path.
  const char *Src = R"(
func f(modref* m) {
  var int a; var int b; var int c; var int d; var int z;
  e: z := 0; goto l1;
  l1: d := 1; goto l2;
  l2: c := 2; goto l3;
  l3: b := 3; goto l4;
  l4: a := 4; goto body;
  body: z := add(a, b); goto b2;
  b2: z := add(z, c); goto b3;
  b3: z := add(z, d); goto w;
  w: write(m, z); goto fin;
  fin: done;
}
)";
  auto R = parseProgram(Src);
  ASSERT_TRUE(R) << R.Error;
  const Function &F = R.Prog->Funcs[0];
  LivenessInfo L = computeLiveness(F);
  for (BlockId B = 0; B < F.Blocks.size(); ++B) {
    std::vector<VarId> Vs = L.liveAt(B);
    EXPECT_TRUE(std::is_sorted(Vs.begin(), Vs.end()))
        << "block " << F.Blocks[B].Label;
    EXPECT_EQ(Vs.size(), L.liveCountAt(B));
  }
  // At 'body', a..d and m are live (z is redefined). Param m is id 0.
  std::vector<VarId> AtBody = L.liveAt(5);
  ASSERT_EQ(AtBody.size(), 5u);
  EXPECT_EQ(AtBody.front(), 0u);
  EXPECT_EQ(L.maxLive(), 5u);
}
