//===- tests/CompiledCTest.cpp - Run compiled CEAL output -----------------===//
//
// The full pipeline, machine code included: CL source -> cealc
// (normalize + translate) -> gcc -> shared object -> dlopen -> execute
// against the RTS shim -> modify inputs -> change propagation. This is
// what the paper ships: compiled self-adjusting C programs running
// against the run-time library.
//
//===----------------------------------------------------------------------===//

#include "cl/Parser.h"
#include "cl/Samples.h"
#include "normalize/Normalize.h"
#include "normalize/Optimize.h"
#include "support/Random.h"
#include "translate/EmitC.h"
#include "translate/RtsShim.h"

#include <gtest/gtest.h>

#include <dlfcn.h>

#include <cstdlib>
#include <fstream>

using namespace ceal;
using namespace ceal::cl;
using namespace ceal::normalize;
using namespace ceal::translate;

namespace {

/// Compiles \p Source's normalized translation into a shared object and
/// returns the dlopen handle (null on failure). With \p Optimize, the
/// analysis-driven pass pipeline runs around NORMALIZE first.
void *compileToSharedObject(const char *Source, const std::string &Tag,
                            bool Optimize = false) {
  auto Parsed = parseProgram(Source);
  EXPECT_TRUE(Parsed) << Parsed.Error;
  if (!Parsed)
    return nullptr;
  Program Norm = Optimize ? optimize::runPassPipeline(*Parsed.Prog).Prog
                          : normalizeProgram(*Parsed.Prog).Prog;
  EmitResult R = emitC(Norm, Mode::Refined, Linkage::External);
  std::string CPath = "/tmp/ceal_dl_" + Tag + ".c";
  std::string SoPath = "/tmp/libceal_dl_" + Tag + ".so";
  std::ofstream(CPath) << R.Code;
  std::string Cmd = "gcc -std=gnu11 -O1 -shared -fPIC " + CPath + " -o " +
                    SoPath + " 2>/tmp/ceal_dl_" + Tag + ".log";
  if (std::system(Cmd.c_str()) != 0) {
    ADD_FAILURE() << "gcc failed; see /tmp/ceal_dl_" << Tag << ".log";
    return nullptr;
  }
  void *Handle = dlopen(SoPath.c_str(), RTLD_NOW);
  EXPECT_NE(Handle, nullptr) << dlerror();
  return Handle;
}

} // namespace

TEST(CompiledC, MapRunsAndSelfAdjusts) {
  void *Handle = compileToSharedObject(samples::ListPrims, "listprims");
  ASSERT_NE(Handle, nullptr);
  void *MapFn = dlsym(Handle, "f_map");
  ASSERT_NE(MapFn, nullptr) << dlerror();

  Runtime RT;
  shim::setRuntime(&RT);

  // Build a modifiable input list ([0] head word, [1] tail modref).
  Rng R(5);
  constexpr size_t N = 400;
  std::vector<int64_t> In;
  Modref *Head = RT.modref();
  std::vector<Modref *> Tails;
  std::vector<Word *> Cells;
  Modref *Cur = Head;
  for (size_t I = 0; I < N; ++I) {
    int64_t V = static_cast<int64_t>(R.below(100000));
    In.push_back(V);
    auto *Blk = static_cast<Word *>(RT.arena().allocate(16));
    Modref *Tail = RT.modref();
    Blk[0] = toWord(V);
    Blk[1] = toWord(Tail);
    RT.modifyT(Cur, Blk);
    Cells.push_back(Blk);
    Tails.push_back(Tail);
    Cur = Tail;
  }
  Modref *Out = RT.modref();

  // run_core(f_map, l, d) — on real machine code this time.
  RT.run(shim::makeEntryClosure(RT, MapFn, {toWord(Head), toWord(Out)}));

  auto ReadOut = [&] {
    std::vector<int64_t> Result;
    for (Word W = RT.deref(Out); W;) {
      Word *Blk = fromWord<Word *>(W);
      Result.push_back(fromWord<int64_t>(Blk[0]));
      W = RT.deref(fromWord<Modref *>(Blk[1]));
    }
    return Result;
  };
  auto Expect = [&](const std::vector<int64_t> &Vals) {
    std::vector<int64_t> E;
    for (int64_t V : Vals)
      E.push_back(V / 3 + V / 7 + V / 9);
    return E;
  };
  ASSERT_EQ(ReadOut(), Expect(In));

  // Delete + reinsert elements; machine-code closures re-execute and the
  // memoized suffix splices.
  for (size_t I : {size_t(10), size_t(200), size_t(399)}) {
    Modref *Before = I == 0 ? Head : Tails[I - 1];
    RT.modify(Before, RT.deref(Tails[I]));
    RT.propagate();
    std::vector<int64_t> Smaller;
    for (size_t J = 0; J < N; ++J)
      if (J != I)
        Smaller.push_back(In[J]);
    ASSERT_EQ(ReadOut(), Expect(Smaller)) << "after deleting " << I;
    RT.modify(Before, toWord(Cells[I]));
    RT.propagate();
    ASSERT_EQ(ReadOut(), Expect(In)) << "after reinserting " << I;
  }
  EXPECT_GE(RT.stats().MemoReadHits, 3u)
      << "compiled code must splice through the memo";
  shim::setRuntime(nullptr);
}

TEST(CompiledC, ExpTreesPaperExampleInMachineCode) {
  void *Handle = compileToSharedObject(samples::ExpTrees, "exptrees");
  ASSERT_NE(Handle, nullptr);
  void *EvalFn = dlsym(Handle, "f_eval");
  ASSERT_NE(EvalFn, nullptr) << dlerror();

  Runtime RT;
  shim::setRuntime(&RT);

  // Node: [0] kind(1=leaf) [1] op/num [2] left mr [3] right mr.
  auto Leaf = [&](int64_t V) {
    auto *Nd = static_cast<Word *>(RT.arena().allocate(32));
    Nd[0] = 1;
    Nd[1] = toWord(V);
    return Nd;
  };
  auto Node = [&](int64_t Op, Word *L, Word *Rn) {
    auto *Nd = static_cast<Word *>(RT.arena().allocate(32));
    Modref *LM = RT.modref(), *RM = RT.modref();
    RT.modifyT(LM, L);
    RT.modifyT(RM, Rn);
    Nd[0] = 0;
    Nd[1] = toWord(Op);
    Nd[2] = toWord(LM);
    Nd[3] = toWord(RM);
    return Nd;
  };
  Word *B = Node(1, Node(0, Leaf(3), Leaf(4)), Node(1, Leaf(1), Leaf(2)));
  Word *I = Node(1, Leaf(5), Leaf(6));
  Word *A = Node(0, B, I);
  Modref *Root = RT.modref();
  RT.modifyT(Root, A);
  Modref *Res = RT.modref();

  RT.run(shim::makeEntryClosure(RT, EvalFn, {toWord(Root), toWord(Res)}));
  EXPECT_EQ(fromWord<int64_t>(RT.deref(Res)), 7);

  // The paper's Fig. 3 mutator: substitute (6+7) for leaf k; result 0.
  Word *Sub = Node(0, Leaf(6), Leaf(7));
  RT.modifyT(fromWord<Modref *>(I[3]), Sub);
  RT.propagate();
  EXPECT_EQ(fromWord<int64_t>(RT.deref(Res)), 0);
  shim::setRuntime(nullptr);
}

TEST(CompiledC, QuicksortSortsInMachineCode) {
  void *Handle = compileToSharedObject(samples::Quicksort, "quicksort");
  ASSERT_NE(Handle, nullptr);
  void *QsortFn = dlsym(Handle, "f_qsort");
  ASSERT_NE(QsortFn, nullptr) << dlerror();

  Runtime RT;
  shim::setRuntime(&RT);
  Rng R(6);
  constexpr size_t N = 150;
  std::vector<int64_t> In;
  Modref *Head = RT.modref();
  std::vector<Modref *> Tails;
  Modref *Cur = Head;
  for (size_t I = 0; I < N; ++I) {
    int64_t V = static_cast<int64_t>(R.below(10000));
    In.push_back(V);
    auto *Blk = static_cast<Word *>(RT.arena().allocate(16));
    Modref *Tail = RT.modref();
    Blk[0] = toWord(V);
    Blk[1] = toWord(Tail);
    RT.modifyT(Cur, Blk);
    Tails.push_back(Tail);
    Cur = Tail;
  }
  Modref *Out = RT.modref();
  RT.run(shim::makeEntryClosure(RT, QsortFn, {toWord(Head), toWord(Out)}));

  std::vector<int64_t> Result;
  for (Word W = RT.deref(Out); W;) {
    Word *Blk = fromWord<Word *>(W);
    Result.push_back(fromWord<int64_t>(Blk[0]));
    W = RT.deref(fromWord<Modref *>(Blk[1]));
  }
  std::vector<int64_t> Expected = In;
  std::sort(Expected.begin(), Expected.end());
  EXPECT_EQ(Result, Expected);
  shim::setRuntime(nullptr);
}

//===----------------------------------------------------------------------===//
// The optimized pipeline in machine code
//===----------------------------------------------------------------------===//

TEST(CompiledC, OptimizedMapSelfAdjustsIdentically) {
  void *Handle =
      compileToSharedObject(samples::ListPrims, "listprims_opt", true);
  ASSERT_NE(Handle, nullptr);
  void *MapFn = dlsym(Handle, "f_map");
  ASSERT_NE(MapFn, nullptr) << dlerror();

  Runtime RT;
  shim::setRuntime(&RT);
  Rng R(15);
  constexpr size_t N = 300;
  std::vector<int64_t> In;
  Modref *Head = RT.modref();
  std::vector<Modref *> Tails;
  std::vector<Word *> Cells;
  Modref *Cur = Head;
  for (size_t I = 0; I < N; ++I) {
    int64_t V = static_cast<int64_t>(R.below(100000));
    In.push_back(V);
    auto *Blk = static_cast<Word *>(RT.arena().allocate(16));
    Modref *Tail = RT.modref();
    Blk[0] = toWord(V);
    Blk[1] = toWord(Tail);
    RT.modifyT(Cur, Blk);
    Cells.push_back(Blk);
    Tails.push_back(Tail);
    Cur = Tail;
  }
  Modref *Out = RT.modref();
  RT.run(shim::makeEntryClosure(RT, MapFn, {toWord(Head), toWord(Out)}));

  auto ReadOut = [&] {
    std::vector<int64_t> Result;
    for (Word W = RT.deref(Out); W;) {
      Word *Blk = fromWord<Word *>(W);
      Result.push_back(fromWord<int64_t>(Blk[0]));
      W = RT.deref(fromWord<Modref *>(Blk[1]));
    }
    return Result;
  };
  auto Expect = [&](const std::vector<int64_t> &Vals) {
    std::vector<int64_t> E;
    for (int64_t V : Vals)
      E.push_back(V / 3 + V / 7 + V / 9);
    return E;
  };
  ASSERT_EQ(ReadOut(), Expect(In));

  for (size_t I : {size_t(7), size_t(150), size_t(299)}) {
    Modref *Before = I == 0 ? Head : Tails[I - 1];
    RT.modify(Before, RT.deref(Tails[I]));
    RT.propagate();
    std::vector<int64_t> Smaller;
    for (size_t J = 0; J < N; ++J)
      if (J != I)
        Smaller.push_back(In[J]);
    ASSERT_EQ(ReadOut(), Expect(Smaller)) << "after deleting " << I;
    RT.modify(Before, toWord(Cells[I]));
    RT.propagate();
    ASSERT_EQ(ReadOut(), Expect(In)) << "after reinserting " << I;
  }
  EXPECT_GE(RT.stats().MemoReadHits, 3u)
      << "slimmed memo keys must still splice through the memo";
  shim::setRuntime(nullptr);
}

TEST(CompiledC, OptimizedExpTreesPaperExample) {
  void *Handle =
      compileToSharedObject(samples::ExpTrees, "exptrees_opt", true);
  ASSERT_NE(Handle, nullptr);
  void *EvalFn = dlsym(Handle, "f_eval");
  ASSERT_NE(EvalFn, nullptr) << dlerror();

  Runtime RT;
  shim::setRuntime(&RT);
  auto Leaf = [&](int64_t V) {
    auto *Nd = static_cast<Word *>(RT.arena().allocate(32));
    Nd[0] = 1;
    Nd[1] = toWord(V);
    return Nd;
  };
  auto Node = [&](int64_t Op, Word *L, Word *Rn) {
    auto *Nd = static_cast<Word *>(RT.arena().allocate(32));
    Modref *LM = RT.modref(), *RM = RT.modref();
    RT.modifyT(LM, L);
    RT.modifyT(RM, Rn);
    Nd[0] = 0;
    Nd[1] = toWord(Op);
    Nd[2] = toWord(LM);
    Nd[3] = toWord(RM);
    return Nd;
  };
  Word *B = Node(1, Node(0, Leaf(3), Leaf(4)), Node(1, Leaf(1), Leaf(2)));
  Word *I = Node(1, Leaf(5), Leaf(6));
  Word *A = Node(0, B, I);
  Modref *Root = RT.modref();
  RT.modifyT(Root, A);
  Modref *Res = RT.modref();

  RT.run(shim::makeEntryClosure(RT, EvalFn, {toWord(Root), toWord(Res)}));
  EXPECT_EQ(fromWord<int64_t>(RT.deref(Res)), 7);

  Word *Sub = Node(0, Leaf(6), Leaf(7));
  RT.modifyT(fromWord<Modref *>(I[3]), Sub);
  RT.propagate();
  EXPECT_EQ(fromWord<int64_t>(RT.deref(Res)), 0);
  shim::setRuntime(nullptr);
}
