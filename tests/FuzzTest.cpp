//===- tests/FuzzTest.cpp - Parser fuzzing and heap-program properties ----===//
//
// Two robustness suites:
//
//  * Parser fuzzing: mutate valid CL sources at the character level and
//    splice random token soup; the parser must either succeed or report
//    a diagnostic — never crash — and anything it accepts must verify or
//    be rejected by the verifier without crashing either.
//
//  * Heap-program properties: random CL programs that allocate blocks,
//    store into them during initialization, and load from them later —
//    exercising alloc/store/index through NORMALIZE, the conventional
//    interpreter, the VM, and change propagation.
//
//===----------------------------------------------------------------------===//

#include "cl/Builder.h"
#include "cl/Parser.h"
#include "cl/Printer.h"
#include "cl/Samples.h"
#include "cl/Verifier.h"
#include "interp/Vm.h"
#include "normalize/Normalize.h"
#include "support/Random.h"
#include "tests/support/Generators.h"

#include <gtest/gtest.h>

using namespace ceal;
using namespace ceal::cl;
using namespace ceal::interp;
using namespace ceal::normalize;

//===----------------------------------------------------------------------===//
// Parser fuzzing
//===----------------------------------------------------------------------===//

TEST(ParserFuzz, CharacterMutationsNeverCrash) {
  const uint64_t BaseSeed = 1234;
  std::string Base = samples::ListPrims;
  int Accepted = 0, Rejected = 0;
  for (uint64_t Trial = 0; Trial < 400; ++Trial) {
    // Per-trial stream: any failing trial replays alone from its seed.
    uint64_t Seed = gen::mixSeed(BaseSeed, Trial);
    Rng R(Seed);
    std::string Mutated = gen::mutateSource(R, Base);
    auto Result = parseProgram(Mutated);
    if (Result) {
      ++Accepted;
      // Whatever parses must be printable and verifiable without crashes.
      std::string Printed = printProgram(*Result.Prog);
      EXPECT_FALSE(Printed.empty()) << gen::seedTag(Seed);
      (void)verifyProgram(*Result.Prog);
    } else {
      ++Rejected;
      EXPECT_FALSE(Result.Error.empty()) << gen::seedTag(Seed);
    }
  }
  // Most mutations must be caught; a few survive harmlessly (e.g. edits
  // inside comments or label names).
  EXPECT_GT(Rejected, 200);
  EXPECT_GT(Accepted, 0);
}

TEST(ParserFuzz, RandomTokenSoupNeverCrashes) {
  const uint64_t BaseSeed = 99;
  for (uint64_t Trial = 0; Trial < 300; ++Trial) {
    uint64_t Seed = gen::mixSeed(BaseSeed, Trial);
    Rng R(Seed);
    std::string Soup = gen::tokenSoup(R);
    auto Result = parseProgram(Soup);
    if (!Result) {
      EXPECT_FALSE(Result.Error.empty()) << gen::seedTag(Seed);
    }
  }
}

//===----------------------------------------------------------------------===//
// Random heap programs (generator shared via tests/support/Generators.h)
//===----------------------------------------------------------------------===//

TEST(HeapProgramFuzz, NormalizationAndVmAgreeWithOracle) {
  int Ran = 0;
  for (uint64_t Seed = 1; Seed <= 80; ++Seed) {
    Rng R(Seed * 104729);
    Program P = gen::randomHeapProgram(R);
    ASSERT_TRUE(verifyProgram(P).empty()) << "seed " << Seed;
    Program Norm = normalizeProgram(P).Prog;

    auto RunConv = [&](const Program &Prog, const std::vector<int64_t> &In) {
      ConvInterp CI(Prog);
      std::vector<Word *> Cells;
      for (int64_t V : In)
        Cells.push_back(CI.newCell(toWord(V)));
      CI.run("f0", {toWord(int64_t(4)), toWord(int64_t(9)),
                    toWord(Cells[0]), toWord(Cells[1]), toWord(Cells[2])});
      std::vector<int64_t> Out;
      for (Word *C : Cells)
        Out.push_back(fromWord<int64_t>(*C));
      return Out;
    };
    std::vector<int64_t> Init = {int64_t(R.below(30)), int64_t(R.below(30)),
                                 int64_t(R.below(30))};
    std::vector<int64_t> Want = RunConv(P, Init);
    ASSERT_EQ(RunConv(Norm, Init), Want) << "seed " << Seed;

    Runtime RT;
    Vm M(RT, Norm);
    std::vector<Modref *> Ms;
    for (int64_t V : Init) {
      Ms.push_back(M.metaModref());
      M.metaWrite(Ms.back(), toWord(V));
    }
    M.runCore("f0", {toWord(int64_t(4)), toWord(int64_t(9)), toWord(Ms[0]),
                     toWord(Ms[1]), toWord(Ms[2])});
    auto VmOut = [&] {
      std::vector<int64_t> Out;
      for (Modref *Mr : Ms)
        Out.push_back(fromWord<int64_t>(M.metaRead(Mr)));
      return Out;
    };
    ASSERT_EQ(VmOut(), Want) << "seed " << Seed;

    std::vector<int64_t> Cur = Init;
    for (int Round = 0; Round < 2; ++Round) {
      size_t Which = R.below(3);
      Cur[Which] = int64_t(R.below(30));
      M.metaWrite(Ms[Which], toWord(Cur[Which]));
      M.propagate();
      ASSERT_EQ(VmOut(), RunConv(Norm, Cur))
          << "seed " << Seed << " round " << Round;
    }
    ++Ran;
  }
  EXPECT_EQ(Ran, 80);
}
