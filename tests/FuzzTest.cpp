//===- tests/FuzzTest.cpp - Parser fuzzing and heap-program properties ----===//
//
// Two robustness suites:
//
//  * Parser fuzzing: mutate valid CL sources at the character level and
//    splice random token soup; the parser must either succeed or report
//    a diagnostic — never crash — and anything it accepts must verify or
//    be rejected by the verifier without crashing either.
//
//  * Heap-program properties: random CL programs that allocate blocks,
//    store into them during initialization, and load from them later —
//    exercising alloc/store/index through NORMALIZE, the conventional
//    interpreter, the VM, and change propagation.
//
//===----------------------------------------------------------------------===//

#include "cl/Builder.h"
#include "cl/Parser.h"
#include "cl/Printer.h"
#include "cl/Samples.h"
#include "cl/Verifier.h"
#include "interp/Vm.h"
#include "normalize/Normalize.h"
#include "support/Random.h"
#include "tests/support/Generators.h"

#include <gtest/gtest.h>

using namespace ceal;
using namespace ceal::cl;
using namespace ceal::interp;
using namespace ceal::normalize;

//===----------------------------------------------------------------------===//
// Parser fuzzing
//===----------------------------------------------------------------------===//

TEST(ParserFuzz, CharacterMutationsNeverCrash) {
  const uint64_t BaseSeed = 1234;
  std::string Base = samples::ListPrims;
  int Accepted = 0, Rejected = 0;
  for (uint64_t Trial = 0; Trial < 400; ++Trial) {
    // Per-trial stream: any failing trial replays alone from its seed.
    uint64_t Seed = gen::mixSeed(BaseSeed, Trial);
    Rng R(Seed);
    std::string Mutated = gen::mutateSource(R, Base);
    auto Result = parseProgram(Mutated);
    if (Result) {
      ++Accepted;
      // Whatever parses must be printable and verifiable without crashes.
      std::string Printed = printProgram(*Result.Prog);
      EXPECT_FALSE(Printed.empty()) << gen::seedTag(Seed);
      (void)verifyProgram(*Result.Prog);
    } else {
      ++Rejected;
      EXPECT_FALSE(Result.Error.empty()) << gen::seedTag(Seed);
    }
  }
  // Most mutations must be caught; a few survive harmlessly (e.g. edits
  // inside comments or label names).
  EXPECT_GT(Rejected, 200);
  EXPECT_GT(Accepted, 0);
}

TEST(ParserFuzz, RandomTokenSoupNeverCrashes) {
  const uint64_t BaseSeed = 99;
  for (uint64_t Trial = 0; Trial < 300; ++Trial) {
    uint64_t Seed = gen::mixSeed(BaseSeed, Trial);
    Rng R(Seed);
    std::string Soup = gen::tokenSoup(R);
    auto Result = parseProgram(Soup);
    if (!Result) {
      EXPECT_FALSE(Result.Error.empty()) << gen::seedTag(Seed);
    }
  }
}

//===----------------------------------------------------------------------===//
// Random heap programs
//===----------------------------------------------------------------------===//

namespace {

/// Generates a program that allocates a 4-word block (initialized from
/// the int parameters by a random initializer body), loads random slots,
/// mixes them with arithmetic and reads, writes results into output
/// modifiables, and chains to further functions — all forward-only, so
/// it terminates.
Program randomHeapProgram(Rng &R) {
  ProgramBuilder PB;
  unsigned NumFuncs = 2 + static_cast<unsigned>(R.below(2));
  std::vector<FuncBuilder> Fbs;
  // Function 0..NumFuncs-1: computation; function NumFuncs: initializer.
  for (unsigned I = 0; I < NumFuncs; ++I)
    Fbs.push_back(PB.beginFunc("f" + std::to_string(I)));
  FuncBuilder Init = PB.beginFunc("blkinit");

  // The initializer: blkinit(blk, a, b) { blk[0..3] := derived values }.
  {
    VarId Blk = Init.param("blk", Type::ptrTo(Type::intTy()));
    VarId A = Init.param("a", Type::intTy());
    VarId B = Init.param("b", Type::intTy());
    VarId Idx = Init.local("i", Type::intTy());
    VarId Tmp = Init.local("t", Type::intTy());
    std::vector<BlockId> Blocks;
    for (int I = 0; I < 9; ++I)
      Blocks.push_back(Init.block());
    for (int Slot = 0; Slot < 4; ++Slot) {
      Init.setCmd(Blocks[2 * Slot],
                  FuncBuilder::assign(Idx, Expr::makeConst(Slot)),
                  Jump::gotoBlock(Blocks[2 * Slot + 1]));
      Expr Val = Slot % 2 ? Expr::makePrim(OpKind::Add, {A, B})
                          : Expr::makePrim(OpKind::Mul, {A, B});
      (void)Tmp;
      Init.setCmd(Blocks[2 * Slot + 1], FuncBuilder::store(Blk, Idx, Val),
                  Jump::gotoBlock(Blocks[2 * Slot + 2]));
    }
    Init.setDone(Blocks[8]);
  }

  for (unsigned FI = 0; FI < NumFuncs; ++FI) {
    FuncBuilder &FB = Fbs[FI];
    std::vector<VarId> Ints, Mods;
    Ints.push_back(FB.param("a", Type::intTy()));
    Ints.push_back(FB.param("b", Type::intTy()));
    for (int I = 0; I < 3; ++I)
      Mods.push_back(FB.param("m" + std::to_string(I),
                              Type::ptrTo(Type::modrefTy())));
    VarId Blk = FB.local("blk", Type::ptrTo(Type::intTy()));
    VarId Sz = FB.local("sz", Type::intTy());
    VarId Idx = FB.local("ix", Type::intTy());
    for (int I = 0; I < 2; ++I)
      Ints.push_back(FB.local("t" + std::to_string(I), Type::intTy()));

    unsigned NumBlocks = 6 + static_cast<unsigned>(R.below(6));
    std::vector<BlockId> Blocks;
    for (unsigned B = 0; B < NumBlocks; ++B)
      Blocks.push_back(FB.block());

    auto RandInt = [&] { return Ints[R.below(Ints.size())]; };
    auto RandMod = [&] { return Mods[R.below(Mods.size())]; };
    auto NextJump = [&](unsigned B) {
      if (B + 1 < NumBlocks)
        return Jump::gotoBlock(
            Blocks[B + 1 + R.below(NumBlocks - B - 1)]);
      return Jump::gotoBlock(Blocks[B]); // Unused (last block is done).
    };

    // Fixed prologue: sz := 32; blk := alloc(sz, blkinit, a, b);
    FB.setCmd(Blocks[0], FuncBuilder::assign(Sz, Expr::makeConst(32)),
              Jump::gotoBlock(Blocks[1]));
    FB.setCmd(Blocks[1],
              FuncBuilder::alloc(Blk, Sz, Init.id(), {Ints[0], Ints[1]}),
              Jump::gotoBlock(Blocks[2]));

    for (unsigned B = 2; B + 1 < NumBlocks; ++B) {
      Command C;
      switch (R.below(6)) {
      case 0:
        C = FuncBuilder::assign(Idx,
                                Expr::makeConst(int64_t(R.below(4))));
        break;
      case 1:
        C = FuncBuilder::assign(RandInt(), Expr::makeIndex(Blk, Idx));
        break;
      case 2:
        C = FuncBuilder::write(RandMod(), RandInt());
        break;
      case 3:
        C = FuncBuilder::read(RandInt(), RandMod());
        break;
      case 4:
        C = FuncBuilder::assign(
            RandInt(), Expr::makePrim(OpKind::Add, {RandInt(), RandInt()}));
        break;
      default:
        C = FuncBuilder::nop();
        break;
      }
      FB.setCmd(Blocks[B], std::move(C), NextJump(B));
    }
    // Epilogue: either done or a tail to a later function.
    if (FI + 1 < NumFuncs && R.flip()) {
      FuncId Target =
          FI + 1 + static_cast<FuncId>(R.below(NumFuncs - FI - 1));
      FB.setCmd(Blocks[NumBlocks - 1], FuncBuilder::nop(),
                Jump::tailCall(Target, {Ints[0], Ints[1], Mods[0], Mods[1],
                                        Mods[2]}));
    } else {
      FB.setDone(Blocks[NumBlocks - 1]);
    }
  }
  return PB.take();
}

} // namespace

TEST(HeapProgramFuzz, NormalizationAndVmAgreeWithOracle) {
  int Ran = 0;
  for (uint64_t Seed = 1; Seed <= 80; ++Seed) {
    Rng R(Seed * 104729);
    Program P = randomHeapProgram(R);
    ASSERT_TRUE(verifyProgram(P).empty()) << "seed " << Seed;
    Program Norm = normalizeProgram(P).Prog;

    auto RunConv = [&](const Program &Prog, const std::vector<int64_t> &In) {
      ConvInterp CI(Prog);
      std::vector<Word *> Cells;
      for (int64_t V : In)
        Cells.push_back(CI.newCell(toWord(V)));
      CI.run("f0", {toWord(int64_t(4)), toWord(int64_t(9)),
                    toWord(Cells[0]), toWord(Cells[1]), toWord(Cells[2])});
      std::vector<int64_t> Out;
      for (Word *C : Cells)
        Out.push_back(fromWord<int64_t>(*C));
      return Out;
    };
    std::vector<int64_t> Init = {int64_t(R.below(30)), int64_t(R.below(30)),
                                 int64_t(R.below(30))};
    std::vector<int64_t> Want = RunConv(P, Init);
    ASSERT_EQ(RunConv(Norm, Init), Want) << "seed " << Seed;

    Runtime RT;
    Vm M(RT, Norm);
    std::vector<Modref *> Ms;
    for (int64_t V : Init) {
      Ms.push_back(M.metaModref());
      M.metaWrite(Ms.back(), toWord(V));
    }
    M.runCore("f0", {toWord(int64_t(4)), toWord(int64_t(9)), toWord(Ms[0]),
                     toWord(Ms[1]), toWord(Ms[2])});
    auto VmOut = [&] {
      std::vector<int64_t> Out;
      for (Modref *Mr : Ms)
        Out.push_back(fromWord<int64_t>(M.metaRead(Mr)));
      return Out;
    };
    ASSERT_EQ(VmOut(), Want) << "seed " << Seed;

    std::vector<int64_t> Cur = Init;
    for (int Round = 0; Round < 2; ++Round) {
      size_t Which = R.below(3);
      Cur[Which] = int64_t(R.below(30));
      M.metaWrite(Ms[Which], toWord(Cur[Which]));
      M.propagate();
      ASSERT_EQ(VmOut(), RunConv(Norm, Cur))
          << "seed " << Seed << " round " << Round;
    }
    ++Ran;
  }
  EXPECT_EQ(Ran, 80);
}
