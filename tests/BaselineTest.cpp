//===- tests/BaselineTest.cpp - SaSML-simulator behaviour -----------------===//

#include "apps/ListApps.h"
#include "baseline/SaSmlSim.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace ceal;
using namespace ceal::apps;

namespace {

Word mapFn(Word X, Word) { return X / 3 + X / 7 + X / 9; }

std::vector<Word> randomInput(size_t N) {
  Rng R(321);
  std::vector<Word> V(N);
  for (Word &W : V)
    W = R.below(1000000);
  return V;
}

} // namespace

TEST(Baseline, ProducesIdenticalResults) {
  std::vector<Word> In = randomInput(400);
  Runtime Plain;
  Runtime Sasml(baseline::sasmlConfig());
  ListHandle LP = buildList(Plain, In);
  ListHandle LS = buildList(Sasml, In);
  Modref *DP = Plain.modref(), *DS = Sasml.modref();
  Plain.runCore<&mapCore>(LP.Head, DP, &mapFn, Word(0));
  Sasml.runCore<&mapCore>(LS.Head, DS, &mapFn, Word(0));
  EXPECT_EQ(readList(Plain, DP), readList(Sasml, DS));

  for (size_t I : {3u, 100u, 399u}) {
    detachCell(Plain, LP, I);
    detachCell(Sasml, LS, I);
    Plain.propagate();
    Sasml.propagate();
    ASSERT_EQ(readList(Plain, DP), readList(Sasml, DS));
    reattachCell(Plain, LP, I);
    reattachCell(Sasml, LS, I);
    Plain.propagate();
    Sasml.propagate();
    ASSERT_EQ(readList(Plain, DP), readList(Sasml, DS));
  }
}

TEST(Baseline, UsesSubstantiallyMoreSpace) {
  std::vector<Word> In = randomInput(2000);
  Runtime Plain;
  Runtime Sasml(baseline::sasmlConfig());
  ListHandle LP = buildList(Plain, In);
  ListHandle LS = buildList(Sasml, In);
  Modref *DP = Plain.modref(), *DS = Sasml.modref();
  Plain.runCore<&mapCore>(LP.Head, DP, &mapFn, Word(0));
  Sasml.runCore<&mapCore>(LS.Head, DS, &mapFn, Word(0));
  double Ratio = double(Sasml.maxLiveBytes()) / double(Plain.maxLiveBytes());
  // Table 2 measures SaSML at ~3-5x the space; the simulator must land
  // in a plausible band.
  EXPECT_GT(Ratio, 2.0);
  EXPECT_LT(Ratio, 8.0);
}

TEST(Baseline, BoundedHeapTriggersGcScans) {
  std::vector<Word> In = randomInput(3000);
  // Budget: just above the live size of this trace, so the collector
  // must run but the program still fits.
  Runtime Probe(baseline::sasmlConfig());
  {
    ListHandle L = buildList(Probe, In);
    Modref *D = Probe.modref();
    Probe.runCore<&mapCore>(L.Head, D, &mapFn, Word(0));
  }
  size_t Live = Probe.maxLiveBytes();

  Runtime Tight(baseline::sasmlConfig(Live + Live / 4));
  ListHandle L = buildList(Tight, In);
  Modref *D = Tight.modref();
  Tight.runCore<&mapCore>(L.Head, D, &mapFn, Word(0));
  EXPECT_FALSE(Tight.outOfMemory());
  EXPECT_GE(Tight.stats().GcScans, 1u);
  EXPECT_EQ(readList(Tight, D).size(), In.size());
}

TEST(Baseline, ReportsOutOfMemoryWhenLiveExceedsHeap) {
  std::vector<Word> In = randomInput(3000);
  Runtime Probe(baseline::sasmlConfig());
  {
    ListHandle L = buildList(Probe, In);
    Modref *D = Probe.modref();
    Probe.runCore<&mapCore>(L.Head, D, &mapFn, Word(0));
  }
  size_t Live = Probe.maxLiveBytes();

  Runtime Tiny(baseline::sasmlConfig(Live / 2));
  ListHandle L = buildList(Tiny, In);
  Modref *D = Tiny.modref();
  Tiny.runCore<&mapCore>(L.Head, D, &mapFn, Word(0));
  EXPECT_TRUE(Tiny.outOfMemory());
}

TEST(Baseline, GcPressureGrowsAsHeapShrinks) {
  std::vector<Word> In = randomInput(2500);
  Runtime Probe(baseline::sasmlConfig());
  {
    ListHandle L = buildList(Probe, In);
    Modref *D = Probe.modref();
    Probe.runCore<&mapCore>(L.Head, D, &mapFn, Word(0));
  }
  size_t Live = Probe.maxLiveBytes();

  uint64_t PrevScans = 0;
  for (double Factor : {8.0, 2.0, 1.2}) {
    Runtime RT(baseline::sasmlConfig(size_t(Live * Factor)));
    ListHandle L = buildList(RT, In);
    Modref *D = RT.modref();
    RT.runCore<&mapCore>(L.Head, D, &mapFn, Word(0));
    ASSERT_FALSE(RT.outOfMemory()) << "factor " << Factor;
    EXPECT_GE(RT.stats().GcScans, PrevScans) << "factor " << Factor;
    PrevScans = RT.stats().GcScans;
  }
  EXPECT_GT(PrevScans, 0u);
}
