//===- tests/SimdKernelsTest.cpp - SIMD kernel differential tests ---------===//
//
// Every ISA variant compiled into this binary is checked against the
// scalar reference, which defines each kernel's semantics. Inputs are
// seeded-random and sweep the hostile shapes: unaligned bases, tail
// lengths through 0..63, non-lane-multiple batch counts, shuffled and
// reversed relabel chains, and speculation windows that do and do not
// admit the batched path. The streaming checksum additionally must be
// invariant under re-chunking, since snapshot save feeds it
// section-by-section while verified load feeds it in I/O-sized spans.
//
// The whole suite is also re-run by ctest once per variant with
// CEAL_SIMD forced (tests/CMakeLists.txt), which drives the *dispatched*
// production paths — Checksum64 and friends — through every table.
//
//===----------------------------------------------------------------------===//

#include "support/Checksum.h"
#include "support/Random.h"
#include "support/simd/Simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

using namespace ceal;

namespace {

/// All variants present in this binary AND runnable on this CPU —
/// exactly the tables the dispatcher could ever select here.
std::vector<simd::Variant> availableVariants() {
  std::vector<simd::Variant> Vs;
  for (unsigned I = 0; I < simd::NumVariants; ++I) {
    auto V = static_cast<simd::Variant>(I);
    if (simd::variantOps(V))
      Vs.push_back(V);
  }
  return Vs;
}

TEST(SimdDispatch, ScalarAlwaysAvailable) {
  EXPECT_TRUE(simd::variantCompiled(simd::Variant::Scalar));
  EXPECT_TRUE(simd::cpuSupports(simd::Variant::Scalar));
  EXPECT_NE(simd::variantOps(simd::Variant::Scalar), nullptr);
}

TEST(SimdDispatch, SelectedIsRunnable) {
  simd::Variant S = simd::selected();
  EXPECT_TRUE(simd::variantCompiled(S));
  EXPECT_TRUE(simd::cpuSupports(S));
  EXPECT_LE(static_cast<unsigned>(S),
            static_cast<unsigned>(simd::maxSupported()));
}

TEST(SimdDispatch, EnvOverrideIsACeiling) {
  // Dispatch resolves once at first use, so this checks the already-made
  // decision against the environment it was made under; the per-variant
  // forced ctest entries supply the different environments.
  const char *Env = std::getenv("CEAL_SIMD");
  if (!Env || std::string(Env) == "auto")
    GTEST_SKIP() << "no CEAL_SIMD override in this run";
  const std::string Want = Env;
  static const char *Names[] = {"scalar", "sse42", "avx2", "avx512"};
  for (unsigned I = 0; I < simd::NumVariants; ++I)
    if (Want == Names[I]) {
      EXPECT_LE(static_cast<unsigned>(simd::selected()), I)
          << "CEAL_SIMD=" << Want << " must cap the selected variant";
      return;
    }
  // Unknown value: dispatcher warns once and falls back to auto.
  SUCCEED();
}

TEST(SimdDispatch, CountersAccumulate) {
  auto &C = simd::counters(simd::Kernel::ChecksumBlocks);
  uint64_t Calls0 = C.Calls.load(), Bytes0 = C.Bytes.load();
  uint64_t Lanes[simd::HashLanes] = {};
  unsigned char Data[3 * simd::ChecksumBlockBytes] = {};
  simd::checksumBlocks(Lanes, Data, 3);
  EXPECT_EQ(C.Calls.load(), Calls0 + 1);
  EXPECT_EQ(C.Bytes.load(), Bytes0 + 3 * simd::ChecksumBlockBytes);
}

//===----------------------------------------------------------------------===//
// Differential checks: every available variant vs the scalar table
//===----------------------------------------------------------------------===//

TEST(SimdKernels, ChecksumBlocksMatchesScalar) {
  Rng R(0xC0FFEE);
  const simd::Ops &S = *simd::variantOps(simd::Variant::Scalar);
  for (size_t NBlocks : {size_t(0), size_t(1), size_t(2), size_t(3),
                         size_t(7), size_t(32), size_t(101)}) {
    for (size_t Mis : {0u, 1u, 3u, 7u, 13u}) { // unaligned data bases
      std::vector<unsigned char> Buf(NBlocks * simd::ChecksumBlockBytes + 16);
      for (unsigned char &B : Buf)
        B = static_cast<unsigned char>(R.next());
      std::vector<uint64_t> Seed(simd::HashLanes);
      for (uint64_t &L : Seed)
        L = R.next();
      std::vector<uint64_t> Ref = Seed;
      S.ChecksumBlocks(Ref.data(), Buf.data() + Mis, NBlocks);
      for (simd::Variant V : availableVariants()) {
        std::vector<uint64_t> Got = Seed;
        simd::variantOps(V)->ChecksumBlocks(Got.data(), Buf.data() + Mis,
                                            NBlocks);
        EXPECT_EQ(Got, Ref) << "variant " << simd::variantName(V)
                            << " blocks=" << NBlocks << " mis=" << Mis;
      }
    }
  }
}

TEST(SimdKernels, HashBatchMatchesScalar) {
  Rng R(0xBA7C4);
  const simd::Ops &S = *simd::variantOps(simd::Variant::Scalar);
  for (size_t NWords : {size_t(0), size_t(1), size_t(2), size_t(5),
                        size_t(16), size_t(63)}) {
    std::vector<uint64_t> W(NWords * simd::HashLanes);
    for (uint64_t &X : W)
      X = R.next();
    std::vector<uint64_t> Seed(simd::HashLanes);
    for (uint64_t &L : Seed)
      L = R.next();
    std::vector<uint64_t> Ref = Seed;
    S.HashBatch(Ref.data(), W.data(), NWords);
    for (simd::Variant V : availableVariants()) {
      std::vector<uint64_t> Got = Seed;
      simd::variantOps(V)->HashBatch(Got.data(), W.data(), NWords);
      EXPECT_EQ(Got, Ref) << "variant " << simd::variantName(V)
                          << " words=" << NWords;
    }
  }
}

TEST(SimdKernels, BoundsCheckMatchesScalarAllTails) {
  Rng R(0xB0);
  const simd::Ops &S = *simd::variantOps(simd::Variant::Scalar);
  // Every length 0..64+: exercises the full tail space of the widest
  // variant (16-lane AVX-512 masks) with margin.
  for (size_t N = 0; N <= 70; ++N) {
    std::vector<uint32_t> A(N + 4); // slack for unaligned starts
    for (uint32_t &V : A)
      V = static_cast<uint32_t>(R.next());
    for (size_t Start : {size_t(0), size_t(1), size_t(3)}) {
      const uint32_t *P = A.data() + Start;
      for (uint32_t Limit :
           {0u, 1u, 0x7fffffffu, 0x80000000u, 0xffffffffu,
            N ? P[R.below(N)] : 0u}) {
        size_t Ref = S.BoundsCheckU32(P, N, Limit);
        for (simd::Variant V : availableVariants())
          EXPECT_EQ(simd::variantOps(V)->BoundsCheckU32(P, N, Limit), Ref)
              << "variant " << simd::variantName(V) << " n=" << N
              << " start=" << Start << " limit=" << Limit;
      }
    }
  }
  // Planted matches at every position of one vector's width.
  for (size_t Pos = 0; Pos < 20; ++Pos) {
    std::vector<uint32_t> A(20, 5);
    A[Pos] = 100;
    for (simd::Variant V : availableVariants())
      EXPECT_EQ(simd::variantOps(V)->BoundsCheckU32(A.data(), 20, 50), Pos)
          << "variant " << simd::variantName(V);
  }
}

TEST(SimdKernels, BucketIndexMatchesScalar) {
  Rng R(0xB1C2E7);
  struct Node {
    uint32_t Pad;
    uint32_t Hash;
    uint64_t Pad2;
  };
  for (size_t N : {size_t(0), size_t(1), size_t(3), size_t(4), size_t(7),
                   size_t(8), size_t(9), size_t(63), size_t(200)}) {
    std::vector<Node> Nodes(N ? N : 1);
    std::vector<const void *> Ptrs(N);
    for (size_t I = 0; I < N; ++I) {
      Nodes[I].Hash = static_cast<uint32_t>(R.next());
      Ptrs[I] = &Nodes[I];
    }
    // Shuffled pointer order: gathers must follow the pointers, not
    // assume contiguity.
    for (size_t I = N; I > 1; --I)
      std::swap(Ptrs[I - 1], Ptrs[R.below(I)]);
    for (uint32_t Mask : {0x3fu, 0xffffu, 0x7fffffffu}) {
      std::vector<uint32_t> Ref(N), Got(N);
      simd::variantOps(simd::Variant::Scalar)
          ->BucketIndex(Ptrs.data(), N, offsetof(Node, Hash), Mask,
                        Ref.data());
      for (simd::Variant V : availableVariants()) {
        std::fill(Got.begin(), Got.end(), 0xdeadbeefu);
        simd::variantOps(V)->BucketIndex(Ptrs.data(), N, offsetof(Node, Hash),
                                         Mask, Got.data());
        EXPECT_EQ(Got, Ref) << "variant " << simd::variantName(V)
                            << " n=" << N << " mask=" << Mask;
      }
    }
  }
}

TEST(SimdKernels, OmRelabelMatchesScalar) {
  Rng R(0x0E7ABE1);
  struct Node {
    Node *Prev;
    Node *Next;
    void *Group;
    uint64_t Label;
    uint64_t Item;
  };
  const size_t NextOff = offsetof(Node, Next);
  const size_t LabelOff = offsetof(Node, Label);
  for (size_t N : {size_t(1), size_t(2), size_t(7), size_t(8), size_t(9),
                   size_t(16), size_t(33), size_t(100)}) {
    for (int Shape = 0; Shape < 3; ++Shape) { // contiguous/reversed/shuffled
      std::vector<size_t> Order(N);
      std::iota(Order.begin(), Order.end(), size_t(0));
      if (Shape == 1)
        std::reverse(Order.begin(), Order.end());
      if (Shape == 2)
        for (size_t I = N; I > 1; --I)
          std::swap(Order[I - 1], Order[R.below(I)]);
      auto Build = [&](std::vector<Node> &Nodes) -> Node * {
        Nodes.assign(N, Node{});
        for (size_t I = 0; I + 1 < N; ++I)
          Nodes[Order[I]].Next = &Nodes[Order[I + 1]];
        // Poisoned terminal Next: never followed for a correct Count,
        // and never a valid speculation candidate.
        Nodes[Order[N - 1]].Next = reinterpret_cast<Node *>(0xdead0000);
        return &Nodes[Order[0]];
      };
      uint64_t Base = R.next(), Gap = R.next() | 1;
      std::vector<Node> RefNodes;
      Node *RefFirst = Build(RefNodes);
      simd::variantOps(simd::Variant::Scalar)
          ->OmRelabel(RefFirst, N, Base, Gap, NextOff, LabelOff, nullptr,
                      nullptr);
      for (simd::Variant V : availableVariants()) {
        for (bool Window : {false, true}) {
          std::vector<Node> GotNodes;
          Node *GotFirst = Build(GotNodes);
          simd::variantOps(V)->OmRelabel(
              GotFirst, N, Base, Gap, NextOff, LabelOff,
              Window ? GotNodes.data() : nullptr,
              Window ? GotNodes.data() + N : nullptr);
          for (size_t I = 0; I < N; ++I)
            ASSERT_EQ(GotNodes[I].Label, RefNodes[I].Label)
                << "variant " << simd::variantName(V) << " n=" << N
                << " shape=" << Shape << " window=" << Window
                << " node=" << I;
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Checksum64 stream properties (production consumer of ChecksumBlocks)
//===----------------------------------------------------------------------===//

TEST(Checksum64, ChunkSplitInvariance) {
  Rng R(0x5EED);
  std::vector<unsigned char> Data(100000);
  for (unsigned char &B : Data)
    B = static_cast<unsigned char>(R.next());
  const uint64_t OneShot = Checksum64::of(Data.data(), Data.size());
  for (int Trial = 0; Trial < 20; ++Trial) {
    Checksum64 C;
    size_t Pos = 0;
    while (Pos < Data.size()) {
      size_t Take = std::min<size_t>(Data.size() - Pos, R.below(4096) + 1);
      C.update(Data.data() + Pos, Take);
      Pos += Take;
    }
    EXPECT_EQ(C.digest(), OneShot) << "trial " << Trial;
  }
  // Byte-at-a-time, the worst-case carry path.
  Checksum64 C;
  for (size_t I = 0; I < 1000; ++I)
    C.update(&Data[I], 1);
  EXPECT_EQ(C.digest(), Checksum64::of(Data.data(), 1000));
}

TEST(Checksum64, AllTailLengths) {
  // Every residual length 0..63 against a fresh one-shot (covers the
  // partial-word digest fold on both sides of a word boundary).
  Rng R(0x7A11);
  std::vector<unsigned char> Data(simd::ChecksumBlockBytes + 64);
  for (unsigned char &B : Data)
    B = static_cast<unsigned char>(R.next());
  for (size_t Tail = 0; Tail < 64; ++Tail) {
    size_t Len = simd::ChecksumBlockBytes + Tail;
    Checksum64 A;
    A.update(Data.data(), simd::ChecksumBlockBytes);
    A.update(Data.data() + simd::ChecksumBlockBytes, Tail);
    EXPECT_EQ(A.digest(), Checksum64::of(Data.data(), Len)) << Tail;
  }
}

TEST(Checksum64, LengthAndContentSensitivity) {
  unsigned char Z[128] = {};
  EXPECT_NE(Checksum64::of(Z, 0), Checksum64::of(Z, 1));
  EXPECT_NE(Checksum64::of(Z, 64), Checksum64::of(Z, 128));
  unsigned char A[64] = {}, B[64] = {};
  B[63] = 1;
  EXPECT_NE(Checksum64::of(A, 64), Checksum64::of(B, 64));
  // Streaming digest() is non-destructive: a prefix digest then more
  // data must equal the one-shot of the whole.
  Checksum64 C;
  C.update(A, 64);
  (void)C.digest();
  C.update(B, 64);
  unsigned char Both[128];
  std::memcpy(Both, A, 64);
  std::memcpy(Both + 64, B, 64);
  EXPECT_EQ(C.digest(), Checksum64::of(Both, 128));
}

} // namespace
