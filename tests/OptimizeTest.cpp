//===- tests/OptimizeTest.cpp - Analysis-driven pass pipeline -------------===//
//
// The optimization pipeline's correctness contract, tested in layers:
//
//  1. Structure: runPassPipeline output verifies, is in normal form, and
//     a second slimming pass finds nothing more (the pipeline reaches a
//     fixpoint).
//  2. Semantics: for every sample program (and for random programs), the
//     conventional interpretation of the optimized program equals that
//     of the original, the VM's from-scratch run equals both, and change
//     propagation on the optimized program tracks the oracle.
//  3. The point of the exercise: closure environments shrink — both the
//     static read-tail word count and the VM's dynamic per-closure
//     environment accounting — on the list benchmarks and the paper's
//     expression trees, and no program gets bigger.
//
//===----------------------------------------------------------------------===//

#include "cl/Parser.h"
#include "cl/Samples.h"
#include "cl/Verifier.h"
#include "interp/Vm.h"
#include "normalize/Normalize.h"
#include "normalize/Optimize.h"
#include "support/Random.h"
#include "tests/support/Generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

using namespace ceal;
using namespace ceal::cl;
using namespace ceal::interp;
using namespace ceal::normalize;
using namespace ceal::optimize;

namespace {

Program parseOrDie(const std::string &Src) {
  auto R = parseProgram(Src);
  EXPECT_TRUE(R) << R.Error;
  return std::move(*R.Prog);
}

//===--------------------------------------------------------------------===//
// List harnesses (same layout as NormalizeVmTest: [0] head, [1] tail)
//===--------------------------------------------------------------------===//

Word *buildConvList(ConvInterp &CI, const std::vector<int64_t> &Vals) {
  Word *Head = CI.newCell(0);
  Word *Cur = Head;
  for (int64_t V : Vals) {
    auto *Blk = static_cast<Word *>(CI.alloc(16));
    Word *Tail = CI.newCell(0);
    Blk[0] = toWord(V);
    Blk[1] = toWord(Tail);
    *Cur = toWord(Blk);
    Cur = Tail;
  }
  return Head;
}

std::vector<int64_t> readConvList(Word *Out) {
  std::vector<int64_t> Result;
  Word W = *Out;
  while (W) {
    Word *Blk = fromWord<Word *>(W);
    Result.push_back(fromWord<int64_t>(Blk[0]));
    W = *fromWord<Word *>(Blk[1]);
  }
  return Result;
}

std::vector<int64_t> convListRun(const Program &P, const std::string &Entry,
                                 const std::vector<int64_t> &In) {
  ConvInterp CI(P);
  Word *Head = buildConvList(CI, In);
  Word *Out = CI.newCell(0);
  CI.run(Entry, {toWord(Head), toWord(Out)});
  return readConvList(Out);
}

struct VmList {
  Modref *Head = nullptr;
  std::vector<Word *> Cells;
  std::vector<Modref *> Tails;
};

VmList buildVmList(Vm &M, const std::vector<int64_t> &Vals) {
  VmList L;
  L.Head = M.metaModref();
  Modref *Cur = L.Head;
  for (int64_t V : Vals) {
    auto *Blk = static_cast<Word *>(M.metaAlloc(16));
    Modref *Tail = M.metaModref();
    Blk[0] = toWord(V);
    Blk[1] = toWord(Tail);
    M.metaWrite(Cur, toWord(Blk));
    L.Cells.push_back(Blk);
    L.Tails.push_back(Tail);
    Cur = Tail;
  }
  return L;
}

std::vector<int64_t> readVmList(Vm &M, Modref *Out) {
  std::vector<int64_t> Result;
  Word W = M.metaRead(Out);
  while (W) {
    Word *Blk = fromWord<Word *>(W);
    Result.push_back(fromWord<int64_t>(Blk[0]));
    W = M.metaRead(fromWord<Modref *>(Blk[1]));
  }
  return Result;
}

} // namespace

//===----------------------------------------------------------------------===//
// Structure
//===----------------------------------------------------------------------===//

TEST(Optimize, PipelineOutputIsValidNormalForm) {
  for (const auto &[Name, Source] : samples::allPrograms()) {
    Program P = parseOrDie(Source);
    PipelineResult R = runPassPipeline(P);
    EXPECT_TRUE(verifyProgram(R.Prog).empty()) << Name;
    EXPECT_TRUE(isNormalForm(R.Prog)) << Name;
    EXPECT_EQ(readTailEnvWords(R.Prog), R.Post.ReadEnvWordsAfter) << Name;
  }
}

TEST(Optimize, PreNormalizeCleanupPreservesValidity) {
  for (const auto &[Name, Source] : samples::allPrograms()) {
    Program P = parseOrDie(Source);
    optimizeProgram(P);
    EXPECT_TRUE(verifyProgram(P).empty()) << Name;
  }
}

TEST(Optimize, SlimmingReachesFixpoint) {
  for (const auto &[Name, Source] : samples::allPrograms()) {
    Program P = parseOrDie(Source);
    PipelineResult R = runPassPipeline(P);
    // Slimming again (treating every function as fair game would be
    // wrong, so use the same boundary: no function is internal — the
    // fresh ones already were slimmed, and re-running over them via the
    // recorded boundary must find nothing new).
    Program Again = R.Prog;
    OptStats S = slimClosures(Again, parseOrDie(Source).Funcs.size());
    EXPECT_EQ(S.ConstArgsRemat, 0u) << Name;
    EXPECT_EQ(S.ParamsPruned, 0u) << Name;
    EXPECT_EQ(S.ReadEnvWordsBefore, S.ReadEnvWordsAfter) << Name;
  }
}

//===----------------------------------------------------------------------===//
// The win: closure environments shrink
//===----------------------------------------------------------------------===//

TEST(Optimize, ReadEnvironmentsShrinkOnListBenchmarks) {
  auto EnvWords = [](const char *Source) {
    Program P = parseOrDie(Source);
    PipelineResult R = runPassPipeline(P);
    return std::pair<size_t, size_t>(R.Post.ReadEnvWordsBefore,
                                     R.Post.ReadEnvWordsAfter);
  };
  // The acceptance bar: a strict reduction on at least two list
  // benchmarks, plus the paper's expression trees.
  for (const char *Src : {samples::ListReduce, samples::Mergesort,
                          samples::ExpTrees, samples::Quickhull}) {
    auto [Before, After] = EnvWords(Src);
    EXPECT_LT(After, Before);
  }
  // And nothing regresses.
  for (const auto &[Name, Source] : samples::allPrograms()) {
    Program P = parseOrDie(Source);
    PipelineResult R = runPassPipeline(P);
    EXPECT_LE(R.Post.ReadEnvWordsAfter, R.Post.ReadEnvWordsBefore) << Name;
  }
}

TEST(Optimize, VmClosureEnvWordsShrink) {
  // Dynamic counterpart of the static count: run the same workload on
  // the normalize-only and the optimized program and compare the VM's
  // closure-environment accounting.
  auto RunSum = [](const Program &Prog, uint64_t &Made, uint64_t &Words) {
    Runtime RT;
    Vm M(RT, Prog);
    std::vector<int64_t> In;
    Rng R(11);
    for (int I = 0; I < 48; ++I)
      In.push_back(static_cast<int64_t>(R.below(1000)));
    VmList L = buildVmList(M, In);
    Modref *Out = M.metaModref();
    M.runCore("lrsum", {toWord(L.Head), toWord(Out)});
    int64_t Expected = 0;
    for (int64_t V : In)
      Expected += V;
    EXPECT_EQ(fromWord<int64_t>(M.metaRead(Out)), Expected);
    Made = M.closuresMade();
    Words = M.closureEnvWords();
  };
  Program Orig = parseOrDie(samples::ListReduce);
  Program Norm = normalizeProgram(Orig).Prog;
  Program Opt = runPassPipeline(Orig).Prog;
  uint64_t BaseMade = 0, BaseWords = 0, OptMade = 0, OptWords = 0;
  RunSum(Norm, BaseMade, BaseWords);
  RunSum(Opt, OptMade, OptWords);
  // listreduce's run boundaries come from a hash coin over cell heap
  // addresses, so the *number* of closures is layout-dependent and not
  // comparable between the two programs. Slimming's claim is about the
  // environment, so compare words *per closure* (cross-multiplied to
  // stay in integers): Opt's average environment is strictly smaller.
  ASSERT_GT(BaseMade, 0u);
  ASSERT_GT(OptMade, 0u);
  EXPECT_LT(OptWords * BaseMade, BaseWords * OptMade);

  // exptrees has no such coin — its trace shape is deterministic — so
  // the totals themselves must shrink there.
  auto RunEval = [](const Program &Prog, uint64_t &Made, uint64_t &Words) {
    Runtime RT;
    Vm M(RT, Prog);
    auto MakeLeaf = [&](int64_t V) {
      auto *N = static_cast<Word *>(M.metaAlloc(32));
      N[0] = 1;
      N[1] = toWord(V);
      return N;
    };
    auto MakeNode = [&](int64_t Op, Word *L, Word *R) {
      auto *N = static_cast<Word *>(M.metaAlloc(32));
      Modref *LM = M.metaModref(), *RM = M.metaModref();
      M.metaWrite(LM, toWord(L));
      M.metaWrite(RM, toWord(R));
      N[0] = 0;
      N[1] = toWord(Op);
      N[2] = toWord(LM);
      N[3] = toWord(RM);
      return N;
    };
    Word *T = MakeNode(0, MakeNode(1, MakeNode(0, MakeLeaf(3), MakeLeaf(4)),
                                   MakeNode(1, MakeLeaf(1), MakeLeaf(2))),
                       MakeNode(1, MakeLeaf(5), MakeLeaf(6)));
    Modref *Root = M.metaModref();
    M.metaWrite(Root, toWord(T));
    Modref *Res = M.metaModref();
    M.runCore("eval", {toWord(Root), toWord(Res)});
    EXPECT_EQ(fromWord<int64_t>(M.metaRead(Res)), 7);
    Made = M.closuresMade();
    Words = M.closureEnvWords();
  };
  Program EOrig = parseOrDie(samples::ExpTrees);
  Program ENorm = normalizeProgram(EOrig).Prog;
  Program EOpt = runPassPipeline(EOrig).Prog;
  uint64_t EBaseMade = 0, EBaseWords = 0, EOptMade = 0, EOptWords = 0;
  RunEval(ENorm, EBaseMade, EBaseWords);
  RunEval(EOpt, EOptMade, EOptWords);
  EXPECT_LT(EOptWords, EBaseWords);
  // Slimming drops arguments (and dead-code elimination may drop whole
  // closures); it never adds any.
  EXPECT_LE(EOptMade, EBaseMade);
}

//===----------------------------------------------------------------------===//
// Semantics: conventional, VM, and propagation
//===----------------------------------------------------------------------===//

TEST(Optimize, PreservesConventionalSemanticsOnLists) {
  Rng R(21);
  std::vector<int64_t> In;
  for (int I = 0; I < 64; ++I)
    In.push_back(static_cast<int64_t>(R.below(1000)));

  Program Orig = parseOrDie(samples::ListPrims);
  Program Opt = runPassPipeline(Orig).Prog;
  for (const char *Entry : {"map", "filter", "reverse"})
    EXPECT_EQ(convListRun(Opt, Entry, In), convListRun(Orig, Entry, In))
        << Entry;
}

TEST(Optimize, PreservesConventionalSemanticsOnSorts) {
  Rng R(22);
  std::vector<int64_t> In;
  for (int I = 0; I < 80; ++I)
    In.push_back(static_cast<int64_t>(R.below(500)));
  std::vector<int64_t> Expected = In;
  std::sort(Expected.begin(), Expected.end());

  for (const char *Src : {samples::Quicksort, samples::Mergesort}) {
    Program Orig = parseOrDie(Src);
    Program Opt = runPassPipeline(Orig).Prog;
    const char *Entry = Src == samples::Quicksort ? "qsort" : "msort";
    EXPECT_EQ(convListRun(Opt, Entry, In), Expected) << Entry;
  }
}

TEST(Optimize, MapPropagatesOnOptimizedProgram) {
  Program Opt = runPassPipeline(parseOrDie(samples::ListPrims)).Prog;
  Rng R(23);
  std::vector<int64_t> In;
  for (int I = 0; I < 40; ++I)
    In.push_back(static_cast<int64_t>(R.below(1000)));

  Runtime RT;
  Vm M(RT, Opt);
  VmList L = buildVmList(M, In);
  Modref *Out = M.metaModref();
  M.runCore("map", {toWord(L.Head), toWord(Out)});

  Program Orig = parseOrDie(samples::ListPrims);
  EXPECT_EQ(readVmList(M, Out), convListRun(Orig, "map", In));

  // Delete and reinsert random cells (cells are plain memory, so edits
  // go through the modrefs that own them), comparing against a
  // conventional run on the edited input each time.
  for (int Round = 0; Round < 6; ++Round) {
    size_t Which = R.below(In.size());
    Modref *Owner = Which == 0 ? L.Head : L.Tails[Which - 1];
    M.metaWrite(Owner, M.metaRead(L.Tails[Which])); // Delete cell.
    M.propagate();
    std::vector<int64_t> Cur = In;
    Cur.erase(Cur.begin() + static_cast<ptrdiff_t>(Which));
    EXPECT_EQ(readVmList(M, Out), convListRun(Orig, "map", Cur))
        << "round " << Round;
    M.metaWrite(Owner, toWord(L.Cells[Which])); // Reinsert.
    M.propagate();
    EXPECT_EQ(readVmList(M, Out), convListRun(Orig, "map", In))
        << "round " << Round;
  }
}

TEST(Optimize, ExpTreesPropagatesOnOptimizedProgram) {
  Program Opt = runPassPipeline(parseOrDie(samples::ExpTrees)).Prog;
  Runtime RT;
  Vm M(RT, Opt);

  auto MakeLeaf = [&](int64_t V) {
    auto *N = static_cast<Word *>(M.metaAlloc(32));
    N[0] = 1;
    N[1] = toWord(V);
    return N;
  };
  auto MakeNode = [&](int64_t Op, Word *L, Word *R) {
    auto *N = static_cast<Word *>(M.metaAlloc(32));
    Modref *LM = M.metaModref(), *RM = M.metaModref();
    M.metaWrite(LM, toWord(L));
    M.metaWrite(RM, toWord(R));
    N[0] = 0;
    N[1] = toWord(Op);
    N[2] = toWord(LM);
    N[3] = toWord(RM);
    return N;
  };
  // The paper's tree: ((3+4)-(1-2))+(5-6), expecting 7.
  Word *D = MakeNode(0, MakeLeaf(3), MakeLeaf(4));
  Word *F = MakeNode(1, MakeLeaf(1), MakeLeaf(2));
  Word *B = MakeNode(1, D, F);
  Word *I = MakeNode(1, MakeLeaf(5), MakeLeaf(6));
  Word *A = MakeNode(0, B, I);
  Modref *Root = M.metaModref();
  M.metaWrite(Root, toWord(A));
  Modref *Res = M.metaModref();
  M.runCore("eval", {toWord(Root), toWord(Res)});
  EXPECT_EQ(fromWord<int64_t>(M.metaRead(Res)), 7);

  // The paper's update: leaf 6 becomes (6+7); the result becomes 0.
  Word *Sub = MakeNode(0, MakeLeaf(6), MakeLeaf(7));
  M.metaWrite(fromWord<Modref *>(I[3]), toWord(Sub));
  M.propagate();
  EXPECT_EQ(fromWord<int64_t>(M.metaRead(Res)), 0);
}

//===----------------------------------------------------------------------===//
// Regressions: same-round interactions between the applied rewrites
//===----------------------------------------------------------------------===//

TEST(Optimize, RedundantReadKeepsDeadProviderAlive) {
  // The provider's destination y is dead in the *pre-rewrite* program,
  // so the provider read lands in DeadReads; rewriting the redundant
  // read to `x := y` makes y live, and deleting the provider in the same
  // round would leave x reading a never-assigned (zero) variable.
  Program P = parseOrDie(R"(
func f(modref* m, modref* out) {
  var int x; var int y;
  b0: y := read m; goto b1;
  b1: x := read m; goto b2;
  b2: write(out, x); goto b3;
  b3: done;
}
)");
  Program Orig = P;
  OptStats S = optimizeProgram(P);
  EXPECT_TRUE(verifyProgram(P).empty());
  EXPECT_EQ(S.RedundantReadsElim, 1u);

  auto Run = [](const Program &Prog) {
    ConvInterp CI(Prog);
    Word *M = CI.newCell(toWord(int64_t(42)));
    Word *Out = CI.newCell(0);
    CI.run("f", {toWord(M), toWord(Out)});
    return fromWord<int64_t>(*Out);
  };
  EXPECT_EQ(Run(Orig), 42);
  EXPECT_EQ(Run(P), 42);
}

TEST(Optimize, ChainedRedundantReadsUseSnapshotProviders) {
  // c1 is redundant with c0 (same destination, so it becomes a nop,
  // losing its Dst) *and* is the provider for c2. The rewrite of c2 must
  // use c1's destination as it was before c1 was rewritten.
  Program P = parseOrDie(R"(
func g(modref* m, modref* o1, modref* o2) {
  var int x; var int y;
  c0: x := read m; goto c1;
  c1: x := read m; goto c2;
  c2: y := read m; goto c3;
  c3: write(o1, x); goto c4;
  c4: write(o2, y); goto c5;
  c5: done;
}
)");
  Program Orig = P;
  optimizeProgram(P);
  EXPECT_TRUE(verifyProgram(P).empty());

  auto Run = [](const Program &Prog) {
    ConvInterp CI(Prog);
    Word *M = CI.newCell(toWord(int64_t(99)));
    Word *O1 = CI.newCell(0);
    Word *O2 = CI.newCell(0);
    CI.run("g", {toWord(M), toWord(O1), toWord(O2)});
    return std::pair(fromWord<int64_t>(*O1), fromWord<int64_t>(*O2));
  };
  EXPECT_EQ(Run(Orig), std::pair(int64_t(99), int64_t(99)));
  EXPECT_EQ(Run(P), std::pair(int64_t(99), int64_t(99)));
}

TEST(Optimize, SelfRecursiveTailSiteSurvivesRemat) {
  // Both tail sites of sr pass the constant 7 for parameter c, so c is
  // rematerialized in a fresh entry block. The self-recursive site's
  // recorded block index predates that insertion; erasing its argument
  // must account for the shift or the recursive tail keeps a stale,
  // arity-mismatched argument list.
  Program P = parseOrDie(R"(
func sg(modref* m, modref* out) {
  var int seven;
  g0: seven := 7; tail sr(seven, m, out);
}
func sr(int c, modref* m, modref* out) {
  var int x; var int k; var int y; var int one;
  r0: x := read m; goto r1;
  r1: if x then goto rec else goto fin;
  rec: k := 7; goto r2;
  r2: one := 1; goto r3;
  r3: y := sub(x, one); goto r4;
  r4: write(m, y); tail sr(k, m, out);
  fin: write(out, c); goto r5;
  r5: done;
}
)");
  Program Orig = P;
  OptStats S = slimClosures(P, 0);
  EXPECT_TRUE(verifyProgram(P).empty());
  EXPECT_EQ(S.ConstArgsRemat, 1u);

  auto Run = [](const Program &Prog) {
    ConvInterp CI(Prog);
    Word *M = CI.newCell(toWord(int64_t(3)));
    Word *Out = CI.newCell(0);
    CI.run("sg", {toWord(M), toWord(Out)});
    return std::pair(fromWord<int64_t>(*M), fromWord<int64_t>(*Out));
  };
  EXPECT_EQ(Run(Orig), std::pair(int64_t(0), int64_t(7)));
  EXPECT_EQ(Run(P), std::pair(int64_t(0), int64_t(7)));
}

TEST(Optimize, RandomProgramsAgreeWithOracle) {
  int Ran = 0;
  for (uint64_t Seed = 1; Seed <= 60; ++Seed) {
    Rng R(Seed * 15485863);
    Program P = gen::randomHeapProgram(R);
    ASSERT_TRUE(verifyProgram(P).empty()) << "seed " << Seed;
    PipelineResult PR = runPassPipeline(P);
    ASSERT_TRUE(verifyProgram(PR.Prog).empty()) << "seed " << Seed;
    ASSERT_TRUE(isNormalForm(PR.Prog)) << "seed " << Seed;

    auto RunConv = [&](const Program &Prog, const std::vector<int64_t> &In) {
      ConvInterp CI(Prog);
      std::vector<Word *> Cells;
      for (int64_t V : In)
        Cells.push_back(CI.newCell(toWord(V)));
      CI.run("f0", {toWord(int64_t(4)), toWord(int64_t(9)),
                    toWord(Cells[0]), toWord(Cells[1]), toWord(Cells[2])});
      std::vector<int64_t> Out;
      for (Word *C : Cells)
        Out.push_back(fromWord<int64_t>(*C));
      return Out;
    };
    std::vector<int64_t> Init = {int64_t(R.below(30)), int64_t(R.below(30)),
                                 int64_t(R.below(30))};
    std::vector<int64_t> Want = RunConv(P, Init);
    ASSERT_EQ(RunConv(PR.Prog, Init), Want) << "seed " << Seed;

    Runtime RT;
    Vm M(RT, PR.Prog);
    std::vector<Modref *> Ms;
    for (int64_t V : Init) {
      Ms.push_back(M.metaModref());
      M.metaWrite(Ms.back(), toWord(V));
    }
    M.runCore("f0", {toWord(int64_t(4)), toWord(int64_t(9)), toWord(Ms[0]),
                     toWord(Ms[1]), toWord(Ms[2])});
    auto VmOut = [&] {
      std::vector<int64_t> Out;
      for (Modref *Mr : Ms)
        Out.push_back(fromWord<int64_t>(M.metaRead(Mr)));
      return Out;
    };
    ASSERT_EQ(VmOut(), Want) << "seed " << Seed;

    std::vector<int64_t> Cur = Init;
    for (int Round = 0; Round < 2; ++Round) {
      size_t Which = R.below(3);
      Cur[Which] = int64_t(R.below(30));
      M.metaWrite(Ms[Which], toWord(Cur[Which]));
      M.propagate();
      ASSERT_EQ(VmOut(), RunConv(PR.Prog, Cur))
          << "seed " << Seed << " round " << Round;
    }
    ++Ran;
  }
  EXPECT_EQ(Ran, 60);
}
