file(REMOVE_RECURSE
  "CMakeFiles/spreadsheet.dir/spreadsheet.cpp.o"
  "CMakeFiles/spreadsheet.dir/spreadsheet.cpp.o.d"
  "spreadsheet"
  "spreadsheet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spreadsheet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
