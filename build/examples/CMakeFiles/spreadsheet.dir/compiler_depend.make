# Empty compiler generated dependencies file for spreadsheet.
# This may be replaced when dependencies are built.
