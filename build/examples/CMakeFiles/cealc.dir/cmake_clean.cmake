file(REMOVE_RECURSE
  "CMakeFiles/cealc.dir/cealc.cpp.o"
  "CMakeFiles/cealc.dir/cealc.cpp.o.d"
  "cealc"
  "cealc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cealc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
