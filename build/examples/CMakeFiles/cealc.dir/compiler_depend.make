# Empty compiler generated dependencies file for cealc.
# This may be replaced when dependencies are built.
