file(REMOVE_RECURSE
  "CMakeFiles/list_pipeline.dir/list_pipeline.cpp.o"
  "CMakeFiles/list_pipeline.dir/list_pipeline.cpp.o.d"
  "list_pipeline"
  "list_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/list_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
