# Empty dependencies file for list_pipeline.
# This may be replaced when dependencies are built.
