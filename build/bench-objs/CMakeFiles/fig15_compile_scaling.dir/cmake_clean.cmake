file(REMOVE_RECURSE
  "../bench/fig15_compile_scaling"
  "../bench/fig15_compile_scaling.pdb"
  "CMakeFiles/fig15_compile_scaling.dir/fig15_compile_scaling.cpp.o"
  "CMakeFiles/fig15_compile_scaling.dir/fig15_compile_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_compile_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
