# Empty compiler generated dependencies file for fig15_compile_scaling.
# This may be replaced when dependencies are built.
