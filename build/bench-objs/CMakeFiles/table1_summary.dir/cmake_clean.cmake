file(REMOVE_RECURSE
  "../bench/table1_summary"
  "../bench/table1_summary.pdb"
  "CMakeFiles/table1_summary.dir/table1_summary.cpp.o"
  "CMakeFiles/table1_summary.dir/table1_summary.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
