# Empty dependencies file for rt_microbench.
# This may be replaced when dependencies are built.
