file(REMOVE_RECURSE
  "../bench/rt_microbench"
  "../bench/rt_microbench.pdb"
  "CMakeFiles/rt_microbench.dir/rt_microbench.cpp.o"
  "CMakeFiles/rt_microbench.dir/rt_microbench.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
