file(REMOVE_RECURSE
  "../bench/table3_compiler"
  "../bench/table3_compiler.pdb"
  "CMakeFiles/table3_compiler.dir/table3_compiler.cpp.o"
  "CMakeFiles/table3_compiler.dir/table3_compiler.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
