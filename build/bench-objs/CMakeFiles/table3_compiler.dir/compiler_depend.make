# Empty compiler generated dependencies file for table3_compiler.
# This may be replaced when dependencies are built.
