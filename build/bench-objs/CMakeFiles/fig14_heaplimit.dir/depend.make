# Empty dependencies file for fig14_heaplimit.
# This may be replaced when dependencies are built.
