file(REMOVE_RECURSE
  "../bench/fig14_heaplimit"
  "../bench/fig14_heaplimit.pdb"
  "CMakeFiles/fig14_heaplimit.dir/fig14_heaplimit.cpp.o"
  "CMakeFiles/fig14_heaplimit.dir/fig14_heaplimit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_heaplimit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
