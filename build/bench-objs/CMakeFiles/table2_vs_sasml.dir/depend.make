# Empty dependencies file for table2_vs_sasml.
# This may be replaced when dependencies are built.
