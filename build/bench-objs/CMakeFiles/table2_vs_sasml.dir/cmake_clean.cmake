file(REMOVE_RECURSE
  "../bench/table2_vs_sasml"
  "../bench/table2_vs_sasml.pdb"
  "CMakeFiles/table2_vs_sasml.dir/table2_vs_sasml.cpp.o"
  "CMakeFiles/table2_vs_sasml.dir/table2_vs_sasml.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_vs_sasml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
