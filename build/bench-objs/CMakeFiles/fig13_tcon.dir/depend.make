# Empty dependencies file for fig13_tcon.
# This may be replaced when dependencies are built.
