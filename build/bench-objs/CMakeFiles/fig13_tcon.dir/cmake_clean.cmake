file(REMOVE_RECURSE
  "../bench/fig13_tcon"
  "../bench/fig13_tcon.pdb"
  "CMakeFiles/fig13_tcon.dir/fig13_tcon.cpp.o"
  "CMakeFiles/fig13_tcon.dir/fig13_tcon.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_tcon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
