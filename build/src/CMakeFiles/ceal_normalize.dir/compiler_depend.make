# Empty compiler generated dependencies file for ceal_normalize.
# This may be replaced when dependencies are built.
