file(REMOVE_RECURSE
  "CMakeFiles/ceal_normalize.dir/normalize/Normalize.cpp.o"
  "CMakeFiles/ceal_normalize.dir/normalize/Normalize.cpp.o.d"
  "libceal_normalize.a"
  "libceal_normalize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceal_normalize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
