file(REMOVE_RECURSE
  "libceal_normalize.a"
)
