file(REMOVE_RECURSE
  "libceal_support.a"
)
