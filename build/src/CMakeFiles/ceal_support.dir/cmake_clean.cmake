file(REMOVE_RECURSE
  "CMakeFiles/ceal_support.dir/support/Arena.cpp.o"
  "CMakeFiles/ceal_support.dir/support/Arena.cpp.o.d"
  "libceal_support.a"
  "libceal_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceal_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
