# Empty compiler generated dependencies file for ceal_support.
# This may be replaced when dependencies are built.
