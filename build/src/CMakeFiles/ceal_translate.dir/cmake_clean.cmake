file(REMOVE_RECURSE
  "CMakeFiles/ceal_translate.dir/translate/EmitC.cpp.o"
  "CMakeFiles/ceal_translate.dir/translate/EmitC.cpp.o.d"
  "CMakeFiles/ceal_translate.dir/translate/RtsShim.cpp.o"
  "CMakeFiles/ceal_translate.dir/translate/RtsShim.cpp.o.d"
  "libceal_translate.a"
  "libceal_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceal_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
