# Empty compiler generated dependencies file for ceal_translate.
# This may be replaced when dependencies are built.
