file(REMOVE_RECURSE
  "libceal_translate.a"
)
