
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cl/Builder.cpp" "src/CMakeFiles/ceal_cl.dir/cl/Builder.cpp.o" "gcc" "src/CMakeFiles/ceal_cl.dir/cl/Builder.cpp.o.d"
  "/root/repo/src/cl/Ir.cpp" "src/CMakeFiles/ceal_cl.dir/cl/Ir.cpp.o" "gcc" "src/CMakeFiles/ceal_cl.dir/cl/Ir.cpp.o.d"
  "/root/repo/src/cl/Lexer.cpp" "src/CMakeFiles/ceal_cl.dir/cl/Lexer.cpp.o" "gcc" "src/CMakeFiles/ceal_cl.dir/cl/Lexer.cpp.o.d"
  "/root/repo/src/cl/Parser.cpp" "src/CMakeFiles/ceal_cl.dir/cl/Parser.cpp.o" "gcc" "src/CMakeFiles/ceal_cl.dir/cl/Parser.cpp.o.d"
  "/root/repo/src/cl/Printer.cpp" "src/CMakeFiles/ceal_cl.dir/cl/Printer.cpp.o" "gcc" "src/CMakeFiles/ceal_cl.dir/cl/Printer.cpp.o.d"
  "/root/repo/src/cl/Samples.cpp" "src/CMakeFiles/ceal_cl.dir/cl/Samples.cpp.o" "gcc" "src/CMakeFiles/ceal_cl.dir/cl/Samples.cpp.o.d"
  "/root/repo/src/cl/Verifier.cpp" "src/CMakeFiles/ceal_cl.dir/cl/Verifier.cpp.o" "gcc" "src/CMakeFiles/ceal_cl.dir/cl/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ceal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
