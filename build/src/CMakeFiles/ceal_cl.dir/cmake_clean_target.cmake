file(REMOVE_RECURSE
  "libceal_cl.a"
)
