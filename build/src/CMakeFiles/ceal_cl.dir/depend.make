# Empty dependencies file for ceal_cl.
# This may be replaced when dependencies are built.
