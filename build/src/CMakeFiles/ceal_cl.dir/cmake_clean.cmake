file(REMOVE_RECURSE
  "CMakeFiles/ceal_cl.dir/cl/Builder.cpp.o"
  "CMakeFiles/ceal_cl.dir/cl/Builder.cpp.o.d"
  "CMakeFiles/ceal_cl.dir/cl/Ir.cpp.o"
  "CMakeFiles/ceal_cl.dir/cl/Ir.cpp.o.d"
  "CMakeFiles/ceal_cl.dir/cl/Lexer.cpp.o"
  "CMakeFiles/ceal_cl.dir/cl/Lexer.cpp.o.d"
  "CMakeFiles/ceal_cl.dir/cl/Parser.cpp.o"
  "CMakeFiles/ceal_cl.dir/cl/Parser.cpp.o.d"
  "CMakeFiles/ceal_cl.dir/cl/Printer.cpp.o"
  "CMakeFiles/ceal_cl.dir/cl/Printer.cpp.o.d"
  "CMakeFiles/ceal_cl.dir/cl/Samples.cpp.o"
  "CMakeFiles/ceal_cl.dir/cl/Samples.cpp.o.d"
  "CMakeFiles/ceal_cl.dir/cl/Verifier.cpp.o"
  "CMakeFiles/ceal_cl.dir/cl/Verifier.cpp.o.d"
  "libceal_cl.a"
  "libceal_cl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceal_cl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
