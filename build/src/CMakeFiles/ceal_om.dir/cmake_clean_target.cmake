file(REMOVE_RECURSE
  "libceal_om.a"
)
