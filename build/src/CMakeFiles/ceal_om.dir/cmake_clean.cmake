file(REMOVE_RECURSE
  "CMakeFiles/ceal_om.dir/om/OrderList.cpp.o"
  "CMakeFiles/ceal_om.dir/om/OrderList.cpp.o.d"
  "libceal_om.a"
  "libceal_om.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceal_om.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
