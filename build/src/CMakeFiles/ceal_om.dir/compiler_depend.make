# Empty compiler generated dependencies file for ceal_om.
# This may be replaced when dependencies are built.
