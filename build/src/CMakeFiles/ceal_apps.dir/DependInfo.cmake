
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/ExpTrees.cpp" "src/CMakeFiles/ceal_apps.dir/apps/ExpTrees.cpp.o" "gcc" "src/CMakeFiles/ceal_apps.dir/apps/ExpTrees.cpp.o.d"
  "/root/repo/src/apps/Geometry.cpp" "src/CMakeFiles/ceal_apps.dir/apps/Geometry.cpp.o" "gcc" "src/CMakeFiles/ceal_apps.dir/apps/Geometry.cpp.o.d"
  "/root/repo/src/apps/ListApps.cpp" "src/CMakeFiles/ceal_apps.dir/apps/ListApps.cpp.o" "gcc" "src/CMakeFiles/ceal_apps.dir/apps/ListApps.cpp.o.d"
  "/root/repo/src/apps/ListConv.cpp" "src/CMakeFiles/ceal_apps.dir/apps/ListConv.cpp.o" "gcc" "src/CMakeFiles/ceal_apps.dir/apps/ListConv.cpp.o.d"
  "/root/repo/src/apps/TreeContraction.cpp" "src/CMakeFiles/ceal_apps.dir/apps/TreeContraction.cpp.o" "gcc" "src/CMakeFiles/ceal_apps.dir/apps/TreeContraction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ceal_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ceal_om.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ceal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
