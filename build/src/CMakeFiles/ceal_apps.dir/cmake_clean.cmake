file(REMOVE_RECURSE
  "CMakeFiles/ceal_apps.dir/apps/ExpTrees.cpp.o"
  "CMakeFiles/ceal_apps.dir/apps/ExpTrees.cpp.o.d"
  "CMakeFiles/ceal_apps.dir/apps/Geometry.cpp.o"
  "CMakeFiles/ceal_apps.dir/apps/Geometry.cpp.o.d"
  "CMakeFiles/ceal_apps.dir/apps/ListApps.cpp.o"
  "CMakeFiles/ceal_apps.dir/apps/ListApps.cpp.o.d"
  "CMakeFiles/ceal_apps.dir/apps/ListConv.cpp.o"
  "CMakeFiles/ceal_apps.dir/apps/ListConv.cpp.o.d"
  "CMakeFiles/ceal_apps.dir/apps/TreeContraction.cpp.o"
  "CMakeFiles/ceal_apps.dir/apps/TreeContraction.cpp.o.d"
  "libceal_apps.a"
  "libceal_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceal_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
