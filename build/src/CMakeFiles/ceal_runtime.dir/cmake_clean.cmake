file(REMOVE_RECURSE
  "CMakeFiles/ceal_runtime.dir/runtime/Runtime.cpp.o"
  "CMakeFiles/ceal_runtime.dir/runtime/Runtime.cpp.o.d"
  "libceal_runtime.a"
  "libceal_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceal_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
