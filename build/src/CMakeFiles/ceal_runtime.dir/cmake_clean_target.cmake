file(REMOVE_RECURSE
  "libceal_runtime.a"
)
