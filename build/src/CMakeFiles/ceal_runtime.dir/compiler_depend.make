# Empty compiler generated dependencies file for ceal_runtime.
# This may be replaced when dependencies are built.
