file(REMOVE_RECURSE
  "libceal_analysis.a"
)
