# Empty dependencies file for ceal_analysis.
# This may be replaced when dependencies are built.
