file(REMOVE_RECURSE
  "CMakeFiles/ceal_analysis.dir/analysis/Dominators.cpp.o"
  "CMakeFiles/ceal_analysis.dir/analysis/Dominators.cpp.o.d"
  "CMakeFiles/ceal_analysis.dir/analysis/Liveness.cpp.o"
  "CMakeFiles/ceal_analysis.dir/analysis/Liveness.cpp.o.d"
  "CMakeFiles/ceal_analysis.dir/analysis/ProgramGraph.cpp.o"
  "CMakeFiles/ceal_analysis.dir/analysis/ProgramGraph.cpp.o.d"
  "libceal_analysis.a"
  "libceal_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceal_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
