file(REMOVE_RECURSE
  "CMakeFiles/ceal_interp.dir/interp/Vm.cpp.o"
  "CMakeFiles/ceal_interp.dir/interp/Vm.cpp.o.d"
  "libceal_interp.a"
  "libceal_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceal_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
