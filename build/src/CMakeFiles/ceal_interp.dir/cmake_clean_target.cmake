file(REMOVE_RECURSE
  "libceal_interp.a"
)
