# Empty dependencies file for ceal_interp.
# This may be replaced when dependencies are built.
