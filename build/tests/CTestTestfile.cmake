# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/arena_test[1]_include.cmake")
include("/root/repo/build/tests/orderlist_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/listapps_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_test[1]_include.cmake")
include("/root/repo/build/tests/treeapps_test[1]_include.cmake")
include("/root/repo/build/tests/clfrontend_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/normalizevm_test[1]_include.cmake")
include("/root/repo/build/tests/translate_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/modtyped_test[1]_include.cmake")
include("/root/repo/build/tests/runtimeextras_test[1]_include.cmake")
include("/root/repo/build/tests/geometryoracle_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/compiledc_test[1]_include.cmake")
