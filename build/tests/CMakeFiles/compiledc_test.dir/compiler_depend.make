# Empty compiler generated dependencies file for compiledc_test.
# This may be replaced when dependencies are built.
