
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/CompiledCTest.cpp" "tests/CMakeFiles/compiledc_test.dir/CompiledCTest.cpp.o" "gcc" "tests/CMakeFiles/compiledc_test.dir/CompiledCTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ceal_translate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ceal_normalize.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ceal_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ceal_cl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ceal_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ceal_om.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ceal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
