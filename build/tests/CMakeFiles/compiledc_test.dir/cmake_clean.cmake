file(REMOVE_RECURSE
  "CMakeFiles/compiledc_test.dir/CompiledCTest.cpp.o"
  "CMakeFiles/compiledc_test.dir/CompiledCTest.cpp.o.d"
  "compiledc_test"
  "compiledc_test.pdb"
  "compiledc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiledc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
