file(REMOVE_RECURSE
  "CMakeFiles/normalizevm_test.dir/NormalizeVmTest.cpp.o"
  "CMakeFiles/normalizevm_test.dir/NormalizeVmTest.cpp.o.d"
  "normalizevm_test"
  "normalizevm_test.pdb"
  "normalizevm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/normalizevm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
