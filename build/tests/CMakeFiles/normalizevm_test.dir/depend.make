# Empty dependencies file for normalizevm_test.
# This may be replaced when dependencies are built.
