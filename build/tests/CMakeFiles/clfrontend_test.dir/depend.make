# Empty dependencies file for clfrontend_test.
# This may be replaced when dependencies are built.
