file(REMOVE_RECURSE
  "CMakeFiles/clfrontend_test.dir/ClFrontendTest.cpp.o"
  "CMakeFiles/clfrontend_test.dir/ClFrontendTest.cpp.o.d"
  "clfrontend_test"
  "clfrontend_test.pdb"
  "clfrontend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clfrontend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
