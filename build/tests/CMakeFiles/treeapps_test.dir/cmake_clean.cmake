file(REMOVE_RECURSE
  "CMakeFiles/treeapps_test.dir/TreeAppsTest.cpp.o"
  "CMakeFiles/treeapps_test.dir/TreeAppsTest.cpp.o.d"
  "treeapps_test"
  "treeapps_test.pdb"
  "treeapps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treeapps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
