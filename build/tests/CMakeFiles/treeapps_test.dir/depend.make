# Empty dependencies file for treeapps_test.
# This may be replaced when dependencies are built.
