# Empty dependencies file for modtyped_test.
# This may be replaced when dependencies are built.
