file(REMOVE_RECURSE
  "CMakeFiles/modtyped_test.dir/ModTypedTest.cpp.o"
  "CMakeFiles/modtyped_test.dir/ModTypedTest.cpp.o.d"
  "modtyped_test"
  "modtyped_test.pdb"
  "modtyped_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modtyped_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
