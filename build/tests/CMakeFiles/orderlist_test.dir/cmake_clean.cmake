file(REMOVE_RECURSE
  "CMakeFiles/orderlist_test.dir/OrderListTest.cpp.o"
  "CMakeFiles/orderlist_test.dir/OrderListTest.cpp.o.d"
  "orderlist_test"
  "orderlist_test.pdb"
  "orderlist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orderlist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
