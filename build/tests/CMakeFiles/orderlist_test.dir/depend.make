# Empty dependencies file for orderlist_test.
# This may be replaced when dependencies are built.
