file(REMOVE_RECURSE
  "CMakeFiles/geometryoracle_test.dir/GeometryOracleTest.cpp.o"
  "CMakeFiles/geometryoracle_test.dir/GeometryOracleTest.cpp.o.d"
  "geometryoracle_test"
  "geometryoracle_test.pdb"
  "geometryoracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geometryoracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
