# Empty dependencies file for geometryoracle_test.
# This may be replaced when dependencies are built.
