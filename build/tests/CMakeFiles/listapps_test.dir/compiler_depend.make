# Empty compiler generated dependencies file for listapps_test.
# This may be replaced when dependencies are built.
