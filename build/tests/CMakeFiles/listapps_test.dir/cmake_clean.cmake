file(REMOVE_RECURSE
  "CMakeFiles/listapps_test.dir/ListAppsTest.cpp.o"
  "CMakeFiles/listapps_test.dir/ListAppsTest.cpp.o.d"
  "listapps_test"
  "listapps_test.pdb"
  "listapps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/listapps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
