# Empty dependencies file for runtimeextras_test.
# This may be replaced when dependencies are built.
