file(REMOVE_RECURSE
  "CMakeFiles/runtimeextras_test.dir/RuntimeExtrasTest.cpp.o"
  "CMakeFiles/runtimeextras_test.dir/RuntimeExtrasTest.cpp.o.d"
  "runtimeextras_test"
  "runtimeextras_test.pdb"
  "runtimeextras_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtimeextras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
