# cpu_features.cmake - compile-time gates for the SIMD kernel library.
#
# Decides which per-ISA kernel translation units (src/support/simd/) are
# compiled into ceal_support. Each variant needs two things: an x86
# target, and a compiler that accepts the ISA flags and intrinsics. The
# *runtime* decision — whether the executing CPU may run a variant — is
# made separately by CPUID probing in SimdDispatch.cpp; this module only
# guarantees that on non-x86 or feature-poor toolchains the build falls
# back to scalar-only with no source changes (no unconditional
# intrinsics anywhere).
#
# Outputs (cache-visible):
#   CEAL_SIMD_HAVE_SSE42 / _AVX2 / _AVX512  - TRUE when the variant TU builds
#   CEAL_SIMD_SSE42_FLAGS / ...             - per-TU compile options
#
# The CEAL_SIMD option switches the whole mechanism off (scalar-only
# build regardless of host); the CEAL_SIMD=scalar environment variable
# is the runtime kill switch for a binary that was built with variants.

include(CheckCXXSourceCompiles)

option(CEAL_SIMD "Build SSE4.2/AVX2/AVX-512 kernel variants on x86" ON)

set(CEAL_SIMD_HAVE_SSE42 FALSE)
set(CEAL_SIMD_HAVE_AVX2 FALSE)
set(CEAL_SIMD_HAVE_AVX512 FALSE)
set(CEAL_SIMD_SSE42_FLAGS "-msse4.2")
set(CEAL_SIMD_AVX2_FLAGS "-mavx2")
# F: foundation; DQ: vpmullq (the 64-bit multiply the mixer needs);
# BW/VL narrow-width ops on 128/256-bit registers for the tails.
set(CEAL_SIMD_AVX512_FLAGS "-mavx512f;-mavx512dq;-mavx512bw;-mavx512vl")

set(CEAL_SIMD_X86 FALSE)
if(CMAKE_SYSTEM_PROCESSOR MATCHES "^(x86_64|amd64|AMD64|i[3-6]86|x86)$")
  set(CEAL_SIMD_X86 TRUE)
endif()

# Each probe compiles a representative intrinsic under the variant's
# flags, so a toolchain that knows the flag but lacks the header (or
# vice versa) still degrades cleanly.
function(ceal_simd_probe out_var flags source)
  set(CMAKE_REQUIRED_FLAGS "${flags}")
  check_cxx_source_compiles("${source}" ${out_var})
  set(${out_var} "${${out_var}}" PARENT_SCOPE)
endfunction()

if(CEAL_SIMD AND CEAL_SIMD_X86)
  ceal_simd_probe(CEAL_SIMD_PROBE_SSE42 "-msse4.2" "
    #include <nmmintrin.h>
    #include <smmintrin.h>
    int main() {
      __m128i A = _mm_set1_epi32(2);
      A = _mm_mullo_epi32(A, _mm_max_epu32(A, A));
      return _mm_extract_epi32(A, 0) == 4 ? 0 : 1;
    }")
  ceal_simd_probe(CEAL_SIMD_PROBE_AVX2 "-mavx2" "
    #include <immintrin.h>
    int main() {
      __m256i A = _mm256_set1_epi64x(3);
      A = _mm256_add_epi64(A, _mm256_mul_epu32(A, A));
      return static_cast<int>(_mm256_extract_epi64(A, 0) - 12);
    }")
  string(REPLACE ";" " " _ceal_avx512_flags_sp "${CEAL_SIMD_AVX512_FLAGS}")
  ceal_simd_probe(CEAL_SIMD_PROBE_AVX512 "${_ceal_avx512_flags_sp}" "
    #include <immintrin.h>
    int main() {
      __m512i A = _mm512_set1_epi64(3);
      A = _mm512_mullo_epi64(A, A);
      __mmask16 M = _mm512_cmpge_epu32_mask(A, _mm512_set1_epi32(1));
      return M == 0xffff ? 0 : 1;
    }")
  if(CEAL_SIMD_PROBE_SSE42)
    set(CEAL_SIMD_HAVE_SSE42 TRUE)
  endif()
  if(CEAL_SIMD_PROBE_AVX2)
    set(CEAL_SIMD_HAVE_AVX2 TRUE)
  endif()
  if(CEAL_SIMD_PROBE_AVX512)
    set(CEAL_SIMD_HAVE_AVX512 TRUE)
  endif()
endif()

set(_ceal_simd_variants "scalar")
foreach(v SSE42 AVX2 AVX512)
  if(CEAL_SIMD_HAVE_${v})
    string(TOLOWER ${v} _vl)
    list(APPEND _ceal_simd_variants ${_vl})
  endif()
endforeach()
message(STATUS "CEAL SIMD kernel variants: ${_ceal_simd_variants}")
