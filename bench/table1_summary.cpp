//===- bench/table1_summary.cpp - Reproduces Table 1 ----------------------===//
//
// "Summary of measurements with CEAL": for every benchmark, the
// conventional and self-adjusting from-scratch times, the overhead, the
// average update time under the delete/reinsert test mutator, the
// speedup, and the maximum live space.
//
// The paper runs the simple list benchmarks at n = 10M and the complex
// ones at 1M on a 2 GHz Xeon with 32 GB; the defaults here are scaled to
// a single-core container (run with --scale=10 or more on a bigger
// machine; shapes — overheads in the 3-20x band, speedups of orders of
// magnitude growing with n — are size-stable).
//
//===----------------------------------------------------------------------===//

#include "AppBench.h"

#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

using namespace ceal;
using namespace ceal::bench;

int main(int argc, char **argv) {
  BenchArgs Args(argc, argv);

  // Paper sizes: 10M for the simple list primitives and exptrees, 1M for
  // the rest. We keep the same 10:1 ratio at container-friendly sizes.
  size_t NBig = Args.scaled(100000);
  size_t NSmall = Args.scaled(10000);

  std::vector<Measurement> Rows;
  std::printf("Table 1: summary of measurements with CEAL\n");
  std::printf("(paper: Xeon 2GHz, n=10M/1M; here: scaled by --scale, "
              "updates sampled at %zu positions)\n\n",
              Args.Samples);

  // With --profile the propagation profiler runs during the update loops
  // and each JSON row carries its phase breakdown (expect a few percent
  // of timer overhead on the update column; leave it off for numbers
  // meant to be compared against unprofiled runs).
  Runtime::Config Cfg;
  Cfg.EnableProfile = Args.Profile;

  Rows.push_back(benchList(ListKind::Filter, NBig, Args.Samples, Cfg));
  Rows.push_back(benchList(ListKind::Map, NBig, Args.Samples, Cfg));
  Rows.push_back(benchList(ListKind::Reverse, NBig, Args.Samples, Cfg));
  Rows.push_back(benchList(ListKind::Minimum, NBig, Args.Samples, Cfg));
  Rows.push_back(benchList(ListKind::Sum, NBig, Args.Samples, Cfg));
  Rows.push_back(benchList(ListKind::Quicksort, NSmall, Args.Samples, Cfg));
  Rows.push_back(benchGeometry(GeoKind::Quickhull, NSmall, Args.Samples, Cfg));
  Rows.push_back(benchGeometry(GeoKind::Diameter, NSmall, Args.Samples, Cfg));
  Rows.push_back(benchExpTrees(NBig, Args.Samples, Cfg));
  Rows.push_back(benchList(ListKind::Mergesort, NSmall, Args.Samples, Cfg));
  Rows.push_back(benchGeometry(GeoKind::Distance, NSmall, Args.Samples, Cfg));
  Rows.push_back(benchTreeContraction(NSmall, Args.Samples, Cfg));

  std::printf("%-12s %8s | %9s %9s %6s | %11s %9s | %9s | %9s %8s\n",
              "Application", "n", "Cnv.(s)", "Self.(s)", "O.H.", "Ave.Update",
              "Speedup", "Max Live", "Warm(s)", "Snap");
  std::printf("%.*s\n", 117,
              "-----------------------------------------------------------"
              "-----------------------------------------------------------");
  double OhSum = 0, SpSum = 0;
  for (const Measurement &M : Rows) {
    std::printf("%-12s %8s | %9.4f %9.4f %6.1f | %11.3e %9.2e | %9s | "
                "%9.5f %8s\n",
                M.Name.c_str(), fmtCount(M.N).c_str(), M.ConvSeconds,
                M.SelfSeconds, M.overhead(), M.AvgUpdateSeconds, M.speedup(),
                fmtBytes(M.MaxLiveBytes).c_str(), M.WarmStartSeconds,
                fmtBytes(M.SnapshotBytes).c_str());
    OhSum += M.overhead();
    SpSum += M.speedup();
  }
  std::printf("\naverage overhead: %.1f   average speedup: %.2e\n",
              OhSum / double(Rows.size()), SpSum / double(Rows.size()));

  // Kernel accounting (--profile): how much of each app's propagation
  // time is memo-index probing — the share the batched-hash and
  // bucket-index kernels attack. The PLDI'09 profile attributed roughly
  // 38% of propagation to memo lookups on the list benchmarks; this
  // table tracks where this runtime stands PR over PR.
  if (Args.Profile) {
    std::printf("\nKernel accounting (memo-lookup share of propagation)\n");
    std::printf("%-12s %12s %12s %7s\n", "Application", "memo(ms)",
                "propagate(ms)", "share");
    for (const Measurement &M : Rows) {
      double Share = M.Prof.PropagateNs
                         ? double(M.Prof.MemoLookupNs) /
                               double(M.Prof.PropagateNs)
                         : 0.0;
      std::printf("%-12s %12.3f %12.3f %6.1f%%\n", M.Name.c_str(),
                  double(M.Prof.MemoLookupNs) * 1e-6,
                  double(M.Prof.PropagateNs) * 1e-6, 100.0 * Share);
    }
  }

  // Parallel-safety audit (runtime/RaceCheck): batched-edit propagations
  // partitioned into OM-timestamp interval groups; a conflict-free app
  // is provably partitionable at this instance.
  size_t SafetyRounds = std::max<size_t>(4, Args.Samples / 8);
  std::vector<ParallelSafetyRow> Safety;
  Safety.push_back(
      parallelSafetyList(ListKind::Filter, NBig, SafetyRounds, Cfg));
  Safety.push_back(parallelSafetyList(ListKind::Map, NBig, SafetyRounds, Cfg));
  Safety.push_back(
      parallelSafetyList(ListKind::Minimum, NBig, SafetyRounds, Cfg));
  Safety.push_back(
      parallelSafetyList(ListKind::Quicksort, NSmall, SafetyRounds, Cfg));
  Safety.push_back(parallelSafetyExpTrees(NBig, SafetyRounds, Cfg));
  Safety.push_back(
      parallelSafetyGeometry(GeoKind::Quickhull, NSmall, SafetyRounds, Cfg));
  Safety.push_back(parallelSafetyTreeContraction(NSmall, SafetyRounds, Cfg));

  std::printf("\nParallel safety (interval race detector, batched edits)\n");
  std::printf("%-12s %5s %5s | %6s %6s %8s | %8s %8s\n", "Application",
              "intv", "clus", "ww", "rw", "cascade", "overhead", "verdict");
  for (const ParallelSafetyRow &S : Safety)
    std::printf("%-12s %5u %5u | %6llu %6llu %8llu | %8.2f %8s\n",
                S.Name.c_str(), S.MaxIntervals, S.MaxClusters,
                static_cast<unsigned long long>(S.WwConflicts),
                static_cast<unsigned long long>(S.RwConflicts),
                static_cast<unsigned long long>(S.CascadeConflicts),
                S.detectorOverhead(),
                S.Partitionable ? "parallel" : "conflict");

  // Parallel propagation scaling (runtime/ParallelPropagate): the same
  // batched-edit loop at 1/2/4 worker threads; the trace-shape digest
  // must match the 1-thread row or a parallel phase diverged from
  // sequential propagation.
  std::vector<ParallelPropagateRow> ParRows;
  for (unsigned T : {1u, 2u, 4u})
    ParRows.push_back(parallelPropagateQuickhull(NSmall, SafetyRounds, T));
  for (unsigned T : {1u, 2u, 4u})
    ParRows.push_back(parallelPropagateExpTrees(NBig, SafetyRounds, T));
  for (ParallelPropagateRow &R : ParRows)
    for (const ParallelPropagateRow &Base : ParRows)
      if (Base.Name == R.Name && Base.Threads == 1)
        R.DigestMatchesSequential = R.TraceDigest == Base.TraceDigest;

  std::printf("\nParallel propagation (batched edits, host_cpus=%u)\n",
              std::thread::hardware_concurrency());
  std::printf("%-12s %3s | %8s %8s %8s | %10s %6s\n", "Application", "thr",
              "par-runs", "fallback", "conflict", "loop(s)", "digest");
  for (const ParallelPropagateRow &R : ParRows)
    std::printf("%-12s %3u | %8llu %8llu %8llu | %10.4f %6s\n",
                R.Name.c_str(), R.Threads,
                static_cast<unsigned long long>(R.ParallelRuns),
                static_cast<unsigned long long>(R.Fallbacks),
                static_cast<unsigned long long>(R.Conflicts),
                R.UpdateLoopSeconds,
                R.DigestMatchesSequential ? "match" : "DIFF");

  // Machine-readable mirror of the table for CI tracking.
  {
    std::ofstream Json("BENCH_table1.json");
    Json << "{\n  \"rows\": [\n";
    for (size_t I = 0; I < Rows.size(); ++I) {
      const Measurement &M = Rows[I];
      Json << "    {\"name\": \"" << M.Name << "\", \"n\": " << M.N
           << ", \"conv_seconds\": " << M.ConvSeconds
           << ", \"self_seconds\": " << M.SelfSeconds
           << ", \"overhead\": " << M.overhead()
           << ", \"fromscratch_overhead\": " << M.overhead()
           << ", \"avg_update_seconds\": " << M.AvgUpdateSeconds
           << ", \"speedup\": " << M.speedup()
           << ", \"max_live_bytes\": " << M.MaxLiveBytes
           << ",\n     \"warm_start_seconds\": " << M.WarmStartSeconds
           << ", \"snapshot_bytes\": " << M.SnapshotBytes
           << ", \"warm_speedup\": " << M.warmSpeedup()
           << ",\n     \"memory\": ";
      M.Mem.writeJson(Json);
      if (M.HasProfile) {
        Json << ",\n     \"construction_profile\": ";
        M.BuildProf.writeJson(Json);
        Json << ",\n     \"profile\": ";
        M.Prof.writeJson(Json);
        Json << ",\n     \"memo_lookup_share\": "
             << (M.Prof.PropagateNs ? double(M.Prof.MemoLookupNs) /
                                          double(M.Prof.PropagateNs)
                                    : 0.0);
      }
      Json << "}" << (I + 1 < Rows.size() ? ",\n" : "\n");
    }
    Json << "  ],\n  \"parallel_safety\": [\n";
    for (size_t I = 0; I < Safety.size(); ++I) {
      Json << "    ";
      Safety[I].writeJson(Json);
      Json << (I + 1 < Safety.size() ? ",\n" : "\n");
    }
    Json << "  ],\n  \"parallel_propagate\": {\n    \"host_cpus\": "
         << std::thread::hardware_concurrency() << ",\n    \"apps\": [\n";
    for (size_t I = 0; I < ParRows.size(); ++I) {
      Json << "    ";
      ParRows[I].writeJson(Json);
      Json << (I + 1 < ParRows.size() ? ",\n" : "\n");
    }
    Json << "    ]\n  },\n  \"average_overhead\": " << OhSum / double(Rows.size())
         << ",\n  \"average_speedup\": " << SpSum / double(Rows.size())
         << "\n}\n";
    std::printf("wrote BENCH_table1.json\n");
  }
  return 0;
}
