//===- bench/rt_microbench.cpp - Runtime primitive microbenchmarks --------===//
//
// google-benchmark microbenchmarks for the primitives whose constant
// factors determine the paper's overhead column: order-maintenance
// insertion, closure creation, traced reads/writes, memo lookups, and
// small change-propagation cycles.
//
//===----------------------------------------------------------------------===//

#include "apps/ListApps.h"
#include "om/OrderList.h"
#include "runtime/Runtime.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

using namespace ceal;
using namespace ceal::apps;

namespace {

void BM_OrderListAppend(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    OrderList L;
    OmNode *Cur = L.base();
    State.ResumeTiming();
    for (int I = 0; I < 1000; ++I)
      Cur = L.insertAfter(Cur);
    benchmark::DoNotOptimize(Cur);
  }
  State.SetItemsProcessed(State.iterations() * 1000);
}
BENCHMARK(BM_OrderListAppend);

void BM_OrderListFrontInsert(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    OrderList L;
    State.ResumeTiming();
    for (int I = 0; I < 1000; ++I)
      benchmark::DoNotOptimize(L.insertAfter(L.base()));
  }
  State.SetItemsProcessed(State.iterations() * 1000);
}
BENCHMARK(BM_OrderListFrontInsert);

void BM_OrderListCompare(benchmark::State &State) {
  OrderList L;
  Rng R(5);
  std::vector<OmNode *> Nodes{L.base()};
  for (int I = 0; I < 10000; ++I)
    Nodes.push_back(L.insertAfter(Nodes[R.below(Nodes.size())]));
  size_t I = 0;
  for (auto _ : State) {
    OmNode *A = Nodes[(I * 7919) % Nodes.size()];
    OmNode *B = Nodes[(I * 104729) % Nodes.size()];
    benchmark::DoNotOptimize(OrderList::precedes(A, B));
    ++I;
  }
}
BENCHMARK(BM_OrderListCompare);

Closure *noopBody(Runtime &, Word, Modref *) { return nullptr; }

void BM_ClosureMake(benchmark::State &State) {
  Runtime RT;
  Modref *M = RT.modref();
  for (auto _ : State) {
    Closure *C = RT.make<&noopBody>(Word(0), M);
    benchmark::DoNotOptimize(C);
    RT.arena().deallocate(C, C->byteSize());
  }
}
BENCHMARK(BM_ClosureMake);

Word identityMap(Word X, Word) { return X; }

void BM_InitialRunMapPerElement(benchmark::State &State) {
  std::vector<Word> In(size_t(State.range(0)));
  Rng R(9);
  for (Word &W : In)
    W = R.below(1000);
  for (auto _ : State) {
    Runtime RT;
    ListHandle L = buildList(RT, In);
    Modref *Dst = RT.modref();
    RT.runCore<&mapCore>(L.Head, Dst, &identityMap, Word(0));
    benchmark::DoNotOptimize(RT.deref(Dst));
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_InitialRunMapPerElement)->Arg(1000)->Arg(10000);

void BM_PropagateSingleEdit(benchmark::State &State) {
  std::vector<Word> In(10000);
  Rng R(10);
  for (Word &W : In)
    W = R.below(1000);
  Runtime RT;
  ListHandle L = buildList(RT, In);
  Modref *Dst = RT.modref();
  RT.runCore<&mapCore>(L.Head, Dst, &identityMap, Word(0));
  size_t I = 0;
  for (auto _ : State) {
    size_t Index = (I * 37) % In.size();
    detachCell(RT, L, Index);
    RT.propagate();
    reattachCell(RT, L, Index);
    RT.propagate();
    ++I;
  }
  State.SetItemsProcessed(State.iterations() * 2);
}
BENCHMARK(BM_PropagateSingleEdit);

/// The same edit loop with the trace sanitizer auditing after every
/// propagation. Not a performance target — it quantifies what
/// AuditLevel::EveryPropagation costs (the audit walks the whole trace,
/// so expect orders of magnitude) and keeps the audited path exercised
/// from the bench binary. Compare against BM_PropagateSingleEdit to see
/// the audit-off delta, which must stay at noise level.
void BM_PropagateSingleEditAudited(benchmark::State &State) {
  std::vector<Word> In(size_t(State.range(0)));
  Rng R(10);
  for (Word &W : In)
    W = R.below(1000);
  Runtime::Config Cfg;
  Cfg.Audit = AuditLevel::EveryPropagation;
  Runtime RT(Cfg);
  ListHandle L = buildList(RT, In);
  Modref *Dst = RT.modref();
  RT.runCore<&mapCore>(L.Head, Dst, &identityMap, Word(0));
  size_t I = 0;
  for (auto _ : State) {
    size_t Index = (I * 37) % In.size();
    detachCell(RT, L, Index);
    RT.propagate();
    reattachCell(RT, L, Index);
    RT.propagate();
    ++I;
  }
  State.SetItemsProcessed(State.iterations() * 2);
}
BENCHMARK(BM_PropagateSingleEditAudited)->Arg(1000);

void BM_MetaModifyDeref(benchmark::State &State) {
  Runtime RT;
  Modref *M = RT.modref<int64_t>(1);
  int64_t V = 0;
  for (auto _ : State) {
    RT.modifyT<int64_t>(M, ++V);
    benchmark::DoNotOptimize(RT.derefT<int64_t>(M));
  }
}
BENCHMARK(BM_MetaModifyDeref);

} // namespace

BENCHMARK_MAIN();
