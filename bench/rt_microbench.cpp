//===- bench/rt_microbench.cpp - Runtime primitive microbenchmarks --------===//
//
// google-benchmark microbenchmarks for the primitives whose constant
// factors determine the paper's overhead column: order-maintenance
// insertion, closure creation, traced reads/writes, memo lookups, and
// small change-propagation cycles.
//
// Before the timing loops run, main() writes BENCH_rt.json with four
// sections CI tracks PR over PR:
//
//  * "closure_env" — a deterministic closure-environment census over the
//    CL samples (the VM's per-closure word counts with and without the
//    analysis-driven pass pipeline), the trace-size win of closure
//    slimming without timing noise;
//  * "update_bench" — average update times and from-scratch overheads
//    (self_seconds / conv_seconds, the paper's Table 1 "Ovr." column) for
//    the headline applications through the shared AppBench harness
//    (--app-scale=F / --app-samples=K shrink it for smoke runs), plus
//    trace-persistence accounting per app: the checkpoint size
//    (snapshot_bytes) and the mmap warm-start time (warm_start_seconds;
//    scripts/check_warmstart.py gates warm_speedup on quickhull);
//  * "profiles" — per app (map, plus quicksort, whose update speedup is
//    an outlier needing a phase breakdown on record), a
//    "construction_profile" of the from-scratch run (run_core time, OM /
//    arena / memo / dispatch counters, deferred memo-build time) and a
//    "propagation_profile" of the update loop (re-execute / revoke /
//    memo-lookup / queue time, interval-size and use-scan histograms);
//  * "parallel_safety" — the determinacy-race audit (runtime/RaceCheck)
//    over the headline apps: batched-edit propagations partitioned into
//    OM-timestamp interval groups, with per-app conflict counts, the
//    detector-off vs. detector-on loop times, and the partitionability
//    verdict (scripts/check_parallel_safety.py gates on this section);
//  * "parallel_propagate" — the parallel change-propagation scaling
//    sweep (runtime/ParallelPropagate): the same batched-edit loop per
//    app at 1, 2, and 4 worker threads, with the phase counters
//    (parallel runs / fallbacks / conflicts), the loop wall time, the
//    recorded host CPU count, and the placement-abstract trace-shape
//    digest, which must be identical across thread counts
//    (scripts/check_parallel_speedup.py gates on this section);
//  * "simd_kernels" — per-kernel, per-compiled-variant ns/op for the
//    dispatched hot kernels (support/simd): streaming checksum, batched
//    memo hashing, handle bounds sweep, bucket-index gather, and the OM
//    relabel rewrite, each at two working-set sizes, plus the variant
//    the dispatcher selected and a differential check of every variant
//    against the scalar reference (scripts/check_simd_kernels.py gates
//    on this section).
//
//===----------------------------------------------------------------------===//

#include "AppBench.h"
#include "apps/ListApps.h"
#include "cl/Parser.h"
#include "cl/Samples.h"
#include "interp/Vm.h"
#include "normalize/Normalize.h"
#include "normalize/Optimize.h"
#include "om/OrderList.h"
#include "runtime/Runtime.h"
#include "support/Random.h"
#include "support/simd/Simd.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <fstream>
#include <thread>

using namespace ceal;
using namespace ceal::apps;

namespace {

void BM_OrderListAppend(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    OrderList L;
    OmNode *Cur = L.base();
    State.ResumeTiming();
    for (int I = 0; I < 1000; ++I)
      Cur = L.insertAfter(Cur);
    benchmark::DoNotOptimize(Cur);
  }
  State.SetItemsProcessed(State.iterations() * 1000);
}
BENCHMARK(BM_OrderListAppend);

void BM_OrderListFrontInsert(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    OrderList L;
    State.ResumeTiming();
    for (int I = 0; I < 1000; ++I)
      benchmark::DoNotOptimize(L.insertAfter(L.base()));
  }
  State.SetItemsProcessed(State.iterations() * 1000);
}
BENCHMARK(BM_OrderListFrontInsert);

void BM_OrderListCompare(benchmark::State &State) {
  OrderList L;
  Rng R(5);
  std::vector<OmNode *> Nodes{L.base()};
  for (int I = 0; I < 10000; ++I)
    Nodes.push_back(L.insertAfter(Nodes[R.below(Nodes.size())]));
  size_t I = 0;
  for (auto _ : State) {
    OmNode *A = Nodes[(I * 7919) % Nodes.size()];
    OmNode *B = Nodes[(I * 104729) % Nodes.size()];
    benchmark::DoNotOptimize(OrderList::precedes(A, B));
    ++I;
  }
}
BENCHMARK(BM_OrderListCompare);

Closure *noopBody(Runtime &, Word, Modref *) { return nullptr; }

void BM_ClosureMake(benchmark::State &State) {
  Runtime RT;
  Modref *M = RT.modref();
  for (auto _ : State) {
    Closure *C = RT.make<&noopBody>(Word(0), M);
    benchmark::DoNotOptimize(C);
    RT.arena().deallocate(C, C->byteSize());
  }
}
BENCHMARK(BM_ClosureMake);

Word identityMap(Word X, Word) { return X; }

void BM_InitialRunMapPerElement(benchmark::State &State) {
  std::vector<Word> In(size_t(State.range(0)));
  Rng R(9);
  for (Word &W : In)
    W = R.below(1000);
  for (auto _ : State) {
    Runtime RT;
    ListHandle L = buildList(RT, In);
    Modref *Dst = RT.modref();
    RT.runCore<&mapCore>(L.Head, Dst, &identityMap, Word(0));
    benchmark::DoNotOptimize(RT.deref(Dst));
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_InitialRunMapPerElement)->Arg(1000)->Arg(10000);

void BM_PropagateSingleEdit(benchmark::State &State) {
  std::vector<Word> In(10000);
  Rng R(10);
  for (Word &W : In)
    W = R.below(1000);
  Runtime RT;
  ListHandle L = buildList(RT, In);
  Modref *Dst = RT.modref();
  RT.runCore<&mapCore>(L.Head, Dst, &identityMap, Word(0));
  size_t I = 0;
  for (auto _ : State) {
    size_t Index = (I * 37) % In.size();
    detachCell(RT, L, Index);
    RT.propagate();
    reattachCell(RT, L, Index);
    RT.propagate();
    ++I;
  }
  State.SetItemsProcessed(State.iterations() * 2);
}
BENCHMARK(BM_PropagateSingleEdit);

/// The same edit loop with the trace sanitizer auditing after every
/// propagation. Not a performance target — it quantifies what
/// AuditLevel::EveryPropagation costs (the audit walks the whole trace,
/// so expect orders of magnitude) and keeps the audited path exercised
/// from the bench binary. Compare against BM_PropagateSingleEdit to see
/// the audit-off delta, which must stay at noise level.
void BM_PropagateSingleEditAudited(benchmark::State &State) {
  std::vector<Word> In(size_t(State.range(0)));
  Rng R(10);
  for (Word &W : In)
    W = R.below(1000);
  Runtime::Config Cfg;
  Cfg.Audit = AuditLevel::EveryPropagation;
  Runtime RT(Cfg);
  ListHandle L = buildList(RT, In);
  Modref *Dst = RT.modref();
  RT.runCore<&mapCore>(L.Head, Dst, &identityMap, Word(0));
  size_t I = 0;
  for (auto _ : State) {
    size_t Index = (I * 37) % In.size();
    detachCell(RT, L, Index);
    RT.propagate();
    reattachCell(RT, L, Index);
    RT.propagate();
    ++I;
  }
  State.SetItemsProcessed(State.iterations() * 2);
}
BENCHMARK(BM_PropagateSingleEditAudited)->Arg(1000);

void BM_MetaModifyDeref(benchmark::State &State) {
  Runtime RT;
  Modref *M = RT.modref<int64_t>(1);
  int64_t V = 0;
  for (auto _ : State) {
    RT.modifyT<int64_t>(M, ++V);
    benchmark::DoNotOptimize(RT.derefT<int64_t>(M));
  }
}
BENCHMARK(BM_MetaModifyDeref);

//===----------------------------------------------------------------------===//
// Closure-environment census (BENCH_rt.json)
//===----------------------------------------------------------------------===//

struct ClosureCensusRow {
  const char *Program;
  const char *Entry;
  size_t N;
  uint64_t ClosuresBase = 0, EnvWordsBase = 0;
  uint64_t ClosuresOpt = 0, EnvWordsOpt = 0;
  size_t StaticEnvBase = 0, StaticEnvOpt = 0;
};

/// Runs \p Entry over a deterministic modifiable list of \p N elements
/// and returns the VM's closure accounting.
void censusListRun(const cl::Program &Prog, const char *Entry, size_t N,
                   uint64_t &Closures, uint64_t &EnvWords) {
  Runtime RT;
  interp::Vm M(RT, Prog);
  Modref *Head = M.metaModref();
  Modref *Cur = Head;
  for (size_t I = 0; I < N; ++I) {
    auto *Blk = static_cast<Word *>(M.metaAlloc(16));
    Modref *Tail = M.metaModref();
    Blk[0] = toWord(int64_t((I * 7919) % 1000));
    Blk[1] = toWord(Tail);
    M.metaWrite(Cur, toWord(Blk));
    Cur = Tail;
  }
  Modref *Out = M.metaModref();
  M.runCore(Entry, {toWord(Head), toWord(Out)});
  Closures = M.closuresMade();
  EnvWords = M.closureEnvWords();
}

ClosureCensusRow censusRow(const char *Program, const char *Source,
                           const char *Entry, size_t N) {
  ClosureCensusRow Row{Program, Entry, N};
  auto Parsed = cl::parseProgram(Source);
  cl::Program Base = normalize::normalizeProgram(*Parsed.Prog).Prog;
  optimize::PipelineResult PR = optimize::runPassPipeline(*Parsed.Prog);
  Row.StaticEnvBase = optimize::readTailEnvWords(Base);
  Row.StaticEnvOpt = PR.Post.ReadEnvWordsAfter;
  censusListRun(Base, Entry, N, Row.ClosuresBase, Row.EnvWordsBase);
  censusListRun(PR.Prog, Entry, N, Row.ClosuresOpt, Row.EnvWordsOpt);
  return Row;
}

void writeClosureCensus(std::ostream &Out) {
  constexpr size_t N = 256;
  std::vector<ClosureCensusRow> Rows = {
      censusRow("listprims", cl::samples::ListPrims, "map", N),
      censusRow("listreduce", cl::samples::ListReduce, "lrsum", N),
      censusRow("mergesort", cl::samples::Mergesort, "msort", N),
  };
  Out << "  \"closure_env\": [\n";
  for (size_t I = 0; I < Rows.size(); ++I) {
    const ClosureCensusRow &R = Rows[I];
    double PerBase =
        R.ClosuresBase ? double(R.EnvWordsBase) / double(R.ClosuresBase) : 0;
    double PerOpt =
        R.ClosuresOpt ? double(R.EnvWordsOpt) / double(R.ClosuresOpt) : 0;
    Out << "    {\"program\": \"" << R.Program << "\", \"entry\": \""
        << R.Entry << "\", \"n\": " << R.N
        << ",\n     \"closures_base\": " << R.ClosuresBase
        << ", \"env_words_base\": " << R.EnvWordsBase
        << ", \"env_words_per_closure_base\": " << PerBase
        << ",\n     \"closures_opt\": " << R.ClosuresOpt
        << ", \"env_words_opt\": " << R.EnvWordsOpt
        << ", \"env_words_per_closure_opt\": " << PerOpt
        << ",\n     \"static_read_env_words_base\": " << R.StaticEnvBase
        << ", \"static_read_env_words_opt\": " << R.StaticEnvOpt << "}"
        << (I + 1 < Rows.size() ? ",\n" : "\n");
  }
  Out << "  ]";
}

//===----------------------------------------------------------------------===//
// Application update times and phase profiles (BENCH_rt.json)
//===----------------------------------------------------------------------===//

void writeUpdateBench(std::ostream &Out, double Scale, size_t Samples) {
  using namespace bench;
  auto Scaled = [&](size_t Base) {
    return std::max<size_t>(16, size_t(double(Base) * Scale));
  };
  std::vector<Measurement> Rows;
  Rows.push_back(benchList(ListKind::Filter, Scaled(100000), Samples));
  Rows.push_back(benchList(ListKind::Map, Scaled(100000), Samples));
  Rows.push_back(benchList(ListKind::Minimum, Scaled(100000), Samples));
  Rows.push_back(benchList(ListKind::Quicksort, Scaled(10000), Samples));
  Rows.push_back(benchExpTrees(Scaled(100000), Samples));
  Rows.push_back(benchGeometry(GeoKind::Quickhull, Scaled(20000), Samples));
  Rows.push_back(benchTreeContraction(Scaled(20000), Samples));

  Out << "  \"update_bench\": [\n";
  for (size_t I = 0; I < Rows.size(); ++I) {
    const Measurement &M = Rows[I];
    Out << "    {\"name\": \"" << M.Name << "\", \"n\": " << M.N
        << ", \"conv_seconds\": " << M.ConvSeconds
        << ", \"self_seconds\": " << M.SelfSeconds
        << ", \"avg_update_seconds\": " << M.AvgUpdateSeconds
        << ", \"speedup\": " << M.speedup()
        << ", \"fromscratch_overhead\": " << M.overhead()
        << ", \"max_live_bytes\": " << M.MaxLiveBytes
        << ",\n     \"warm_start_seconds\": " << M.WarmStartSeconds
        << ", \"snapshot_bytes\": " << M.SnapshotBytes
        << ", \"warm_speedup\": " << M.warmSpeedup() << "}"
        << (I + 1 < Rows.size() ? ",\n" : "\n");
  }
  Out << "  ],\n";

  // Per-kind live-byte accounting for the same runs: where every live
  // arena byte went (nodes, closures, user blocks, meta), plus OM and
  // memo-index footprints and arena occupancy. CI's check_max_live.py
  // gates on update_bench's max_live_bytes; this section explains any
  // movement in it.
  Out << "  \"memory\": [\n";
  for (size_t I = 0; I < Rows.size(); ++I) {
    const Measurement &M = Rows[I];
    Out << "    {\"name\": \"" << M.Name << "\", \"n\": " << M.N
        << ", \"stats\": ";
    M.Mem.writeJson(Out);
    Out << "}" << (I + 1 < Rows.size() ? ",\n" : "\n");
  }
  Out << "  ],\n";

  // Profiled runs for the phase breakdowns. Kept out of the rows above so
  // their timings stay comparable against unprofiled baselines. Map is
  // the representative list app; quicksort's update speedup is an order
  // of magnitude below the others', so its breakdown stays on record.
  Runtime::Config PCfg;
  PCfg.EnableProfile = true;
  std::vector<Measurement> Profiled;
  Profiled.push_back(benchList(ListKind::Map, Scaled(100000), Samples, PCfg));
  Profiled.push_back(
      benchList(ListKind::Quicksort, Scaled(10000), Samples, PCfg));
  Out << "  \"profiles\": [\n";
  for (size_t I = 0; I < Profiled.size(); ++I) {
    const Measurement &P = Profiled[I];
    Out << "    {\"name\": \"" << P.Name << "\", \"n\": " << P.N
        << ",\n     \"construction_profile\": ";
    P.BuildProf.writeJson(Out);
    Out << ",\n     \"propagation_profile\": ";
    P.Prof.writeJson(Out);
    Out << "}" << (I + 1 < Profiled.size() ? ",\n" : "\n");
  }
  Out << "  ]";
}

/// The determinacy-race audit over the seven headline apps: batched-edit
/// propagations partitioned into OM-timestamp interval groups
/// (runtime/RaceCheck), detector off vs. on on the same trace. CI's
/// check_parallel_safety.py gates on the conflict counts and the
/// detector-off/on ratio; docs/PARALLEL_SAFETY.md is regenerated from
/// this section.
void writeParallelSafety(std::ostream &Out, double Scale, size_t Samples) {
  using namespace bench;
  auto Scaled = [&](size_t Base) {
    return std::max<size_t>(16, size_t(double(Base) * Scale));
  };
  // Each round is two propagations (batch + inverse batch); scale the
  // round count off the update-sample knob so smoke runs stay fast.
  size_t Rounds = std::max<size_t>(4, Samples / 8);
  std::vector<ParallelSafetyRow> Rows;
  Rows.push_back(parallelSafetyList(ListKind::Filter, Scaled(100000), Rounds));
  Rows.push_back(parallelSafetyList(ListKind::Map, Scaled(100000), Rounds));
  Rows.push_back(
      parallelSafetyList(ListKind::Minimum, Scaled(100000), Rounds));
  Rows.push_back(
      parallelSafetyList(ListKind::Quicksort, Scaled(10000), Rounds));
  Rows.push_back(parallelSafetyExpTrees(Scaled(100000), Rounds));
  Rows.push_back(
      parallelSafetyGeometry(GeoKind::Quickhull, Scaled(20000), Rounds));
  Rows.push_back(parallelSafetyTreeContraction(Scaled(20000), Rounds));

  Runtime::Config Defaults;
  Out << "  \"parallel_safety\": {\n    \"detector_intervals\": "
      << Defaults.RaceCheckIntervals << ",\n    \"apps\": [\n";
  for (size_t I = 0; I < Rows.size(); ++I) {
    Out << "    ";
    Rows[I].writeJson(Out);
    Out << (I + 1 < Rows.size() ? ",\n" : "\n");
  }
  Out << "    ]\n  }";
}

/// The parallel change-propagation scaling sweep: the batched-edit loop
/// at 1 (sequential baseline), 2, and 4 worker threads per app. Every
/// row carries the final placement-abstract trace-shape digest;
/// digest_matches_sequential compares it against the app's 1-thread row
/// and must be true everywhere — a mismatch means a parallel phase
/// produced a trace a sequential propagation would not have. host_cpus
/// records the machine the numbers came from: on fewer cores than
/// threads the wall times oversubscribe one core and say nothing about
/// scaling (scripts/check_parallel_speedup.py skips its speedup gate
/// then, but still enforces the digests).
void writeParallelPropagate(std::ostream &Out, double Scale, size_t Samples) {
  using namespace bench;
  auto Scaled = [&](size_t Base) {
    return std::max<size_t>(16, size_t(double(Base) * Scale));
  };
  size_t Rounds = std::max<size_t>(4, Samples / 8);
  const unsigned ThreadCounts[] = {1, 2, 4};
  std::vector<ParallelPropagateRow> Rows;
  for (unsigned T : ThreadCounts)
    Rows.push_back(parallelPropagateList(ListKind::Map, Scaled(100000),
                                         Rounds, T));
  for (unsigned T : ThreadCounts)
    Rows.push_back(parallelPropagateQuickhull(Scaled(20000), Rounds, T));
  for (unsigned T : ThreadCounts)
    Rows.push_back(parallelPropagateExpTrees(Scaled(100000), Rounds, T));

  for (ParallelPropagateRow &R : Rows)
    for (const ParallelPropagateRow &Base : Rows)
      if (Base.Name == R.Name && Base.Threads == 1)
        R.DigestMatchesSequential = R.TraceDigest == Base.TraceDigest;

  Out << "  \"parallel_propagate\": {\n    \"host_cpus\": "
      << std::thread::hardware_concurrency() << ",\n    \"apps\": [\n";
  for (size_t I = 0; I < Rows.size(); ++I) {
    Out << "    ";
    Rows[I].writeJson(Out);
    Out << (I + 1 < Rows.size() ? ",\n" : "\n");
  }
  Out << "    ]\n  }";
}

//===----------------------------------------------------------------------===//
// SIMD kernel matrix (BENCH_rt.json)
//===----------------------------------------------------------------------===//

/// Best-of-reps wall time per call of \p Fn, in nanoseconds. The
/// iteration count is grown until one rep spans ~2ms so the clock's
/// granularity is noise-free, then the minimum of five reps is taken
/// (the minimum estimates the uncontended cost; these are single-core
/// throughput kernels, not end-to-end runs).
template <typename F> double nsPerCall(F &&Fn) {
  using Clock = std::chrono::steady_clock;
  Fn(); // warm (faults in the working set, primes the dispatch)
  size_t Iters = 1;
  for (;;) {
    auto T0 = Clock::now();
    for (size_t I = 0; I < Iters; ++I)
      Fn();
    double Ns = std::chrono::duration<double, std::nano>(Clock::now() - T0)
                    .count();
    if (Ns >= 2e6) {
      double Best = Ns / double(Iters);
      for (int R = 0; R < 4; ++R) {
        auto S = Clock::now();
        for (size_t I = 0; I < Iters; ++I)
          Fn();
        double N2 =
            std::chrono::duration<double, std::nano>(Clock::now() - S)
                .count();
        Best = std::min(Best, N2 / double(Iters));
      }
      return Best;
    }
    Iters *= 2;
  }
}

/// One timed row: ns/op for kernel \p K of variant table \p O at a
/// given size, where "op" is the kernel's natural element (a 256-byte
/// block, a hashed key, a swept element, an indexed node, a relabeled
/// node). Inputs are deterministic; every variant times the identical
/// input.
struct SimdBenchInput {
  // checksum / hash
  std::vector<uint64_t> Lanes;
  std::vector<unsigned char> Data;
  std::vector<uint64_t> Words;
  // bounds
  std::vector<uint32_t> U32;
  // bucket index
  struct FakeNode {
    uint64_t Pad;
    uint32_t Hash;
    uint32_t Pad2;
  };
  std::vector<FakeNode> Nodes;
  std::vector<const void *> NodePtrs;
  std::vector<uint32_t> Idx;
  // relabel — mirrors OmNode's layout (size and field offsets), so the
  // serial chase pays the same lines-per-node cost as production.
  struct FakeOm {
    void *Prev;
    void *Next;
    void *Group;
    uint64_t Label;
    uint64_t Item;
  };
  std::vector<FakeOm> Chain;

  explicit SimdBenchInput(size_t N) {
    Rng R(0x51D0 + N);
    Lanes.assign(simd::HashLanes, 0);
    for (uint64_t &L : Lanes)
      L = R.next();
    Data.resize(N * simd::ChecksumBlockBytes);
    for (unsigned char &B : Data)
      B = static_cast<unsigned char>(R.next());
    Words.resize(N * simd::HashLanes);
    for (uint64_t &W : Words)
      W = R.next();
    // Kept strictly below 0x80000000 so a sweep with that limit scans
    // the whole array (the audit's common case: nothing out of bounds).
    U32.resize(N);
    for (uint32_t &V : U32)
      V = static_cast<uint32_t>(R.next()) & 0x7fffffffu;
    Nodes.resize(N);
    NodePtrs.resize(N);
    Idx.resize(N);
    for (size_t I = 0; I < N; ++I) {
      Nodes[I].Hash = static_cast<uint32_t>(R.next());
      NodePtrs[I] = &Nodes[I];
    }
    Chain.resize(N);
    for (size_t I = 0; I < N; ++I)
      Chain[I].Next = I + 1 < N ? static_cast<void *>(&Chain[I + 1]) : nullptr;
  }
};

double simdKernelNsPerOp(simd::Kernel K, const simd::Ops &O,
                         SimdBenchInput &In, size_t N) {
  switch (K) {
  case simd::Kernel::ChecksumBlocks:
    return nsPerCall([&] {
      O.ChecksumBlocks(In.Lanes.data(), In.Data.data(), N);
      benchmark::DoNotOptimize(In.Lanes.data());
    }) / double(N);
  case simd::Kernel::HashBatch:
    // One call hashes HashLanes keys of N words each; op = one key.
    return nsPerCall([&] {
      O.HashBatch(In.Lanes.data(), In.Words.data(), N);
      benchmark::DoNotOptimize(In.Lanes.data());
    }) / double(simd::HashLanes);
  case simd::Kernel::BoundsCheckU32:
    return nsPerCall([&] {
      benchmark::DoNotOptimize(
          O.BoundsCheckU32(In.U32.data(), N, 0x80000000u));
    }) / double(N);
  case simd::Kernel::BucketIndex:
    return nsPerCall([&] {
      O.BucketIndex(In.NodePtrs.data(), N,
                    offsetof(SimdBenchInput::FakeNode, Hash), 0xffffu,
                    In.Idx.data());
      benchmark::DoNotOptimize(In.Idx.data());
    }) / double(N);
  case simd::Kernel::OmRelabel:
    return nsPerCall([&] {
      O.OmRelabel(In.Chain.data(), N, 0, UINT64_MAX / (N + 1),
                  offsetof(SimdBenchInput::FakeOm, Next),
                  offsetof(SimdBenchInput::FakeOm, Label), In.Chain.data(),
                  In.Chain.data() + N);
      benchmark::DoNotOptimize(In.Chain.data());
    }) / double(N);
  }
  return 0;
}

/// Differential check of variant table \p O against the scalar table on
/// the bench inputs: every kernel must produce byte-identical results.
bool simdVariantMatchesScalar(const simd::Ops &O, SimdBenchInput &In,
                              size_t N) {
  const simd::Ops &S = simd::scalarOps();
  bool Ok = true;
  {
    std::vector<uint64_t> A = In.Lanes, B = In.Lanes;
    S.ChecksumBlocks(A.data(), In.Data.data(), N);
    O.ChecksumBlocks(B.data(), In.Data.data(), N);
    Ok &= A == B;
    A = In.Lanes;
    B = In.Lanes;
    S.HashBatch(A.data(), In.Words.data(), N);
    O.HashBatch(B.data(), In.Words.data(), N);
    Ok &= A == B;
  }
  for (uint32_t Limit : {0u, 0x80000000u, 0xffffffffu, In.U32[N / 2]})
    Ok &= S.BoundsCheckU32(In.U32.data(), N, Limit) ==
          O.BoundsCheckU32(In.U32.data(), N, Limit);
  {
    std::vector<uint32_t> A(N), B(N);
    size_t Off = offsetof(SimdBenchInput::FakeNode, Hash);
    S.BucketIndex(In.NodePtrs.data(), N, Off, 0xffffu, A.data());
    O.BucketIndex(In.NodePtrs.data(), N, Off, 0xffffu, B.data());
    Ok &= A == B;
  }
  {
    size_t NextOff = offsetof(SimdBenchInput::FakeOm, Next);
    size_t LabelOff = offsetof(SimdBenchInput::FakeOm, Label);
    uint64_t Gap = UINT64_MAX / (N + 1);
    std::vector<SimdBenchInput::FakeOm> Copy = In.Chain;
    for (size_t I = 0; I < N; ++I)
      Copy[I].Next = I + 1 < N ? static_cast<void *>(&Copy[I + 1]) : nullptr;
    S.OmRelabel(In.Chain.data(), N, 7, Gap, NextOff, LabelOff,
                In.Chain.data(), In.Chain.data() + N);
    O.OmRelabel(Copy.data(), N, 7, Gap, NextOff, LabelOff, Copy.data(),
                Copy.data() + N);
    for (size_t I = 0; I < N; ++I)
      Ok &= In.Chain[I].Label == Copy[I].Label;
  }
  return Ok;
}

void writeSimdKernels(std::ostream &Out) {
  using simd::Kernel;
  using simd::Variant;
  const char *Env = std::getenv("CEAL_SIMD");
  Out << "  \"simd_kernels\": {\n    \"max_supported\": \""
      << simd::variantName(simd::maxSupported()) << "\",\n    \"selected\": \""
      << simd::variantName(simd::selected()) << "\",\n    \"env_override\": \""
      << (Env ? Env : "auto") << "\",\n    \"kernels\": [\n";
  // Two working-set sizes per kernel in its natural op unit: one
  // cache-resident, one matching the production shape (memory-spanning
  // sweeps for checksum/bounds/bucket/relabel; realistic key lengths
  // for the hash, whose memo keys are a handful of words).
  const size_t KernelSizes[simd::NumKernels][2] = {
      {64, 4096},     // checksum_blocks: 256-byte blocks per call
      {4, 16},        // hash_batch: words per key (32 keys per call)
      {4096, 262144}, // bounds_check_u32: swept elements
      {4096, 65536},  // bucket_index: nodes
      {4096, 65536},  // om_relabel: chain nodes
  };
  for (size_t KI = 0; KI < simd::NumKernels; ++KI) {
    Kernel K = static_cast<Kernel>(KI);
    const size_t *Sizes = KernelSizes[KI];
    Out << "      {\"kernel\": \"" << simd::kernelName(K)
        << "\", \"sizes\": [" << Sizes[0] << ", " << Sizes[1]
        << "], \"differential_checked\": ";
    bool AllMatch = true;
    {
      SimdBenchInput In(257); // deliberately not a lane multiple
      for (size_t VI = 0; VI < simd::NumVariants; ++VI)
        if (const simd::Ops *O =
                simd::variantOps(static_cast<Variant>(VI)))
          AllMatch &= simdVariantMatchesScalar(*O, In, 257);
    }
    Out << (AllMatch ? "true" : "false") << ", \"variants\": [";
    bool FirstV = true;
    for (size_t VI = 0; VI < simd::NumVariants; ++VI) {
      Variant V = static_cast<Variant>(VI);
      const simd::Ops *O = simd::variantOps(V);
      if (!O)
        continue;
      Out << (FirstV ? "\n" : ",\n") << "        {\"variant\": \""
          << simd::variantName(V) << "\", \"ns_per_op\": [";
      FirstV = false;
      for (size_t SI = 0; SI < 2; ++SI) {
        SimdBenchInput In(Sizes[SI]);
        Out << (SI ? ", " : "") << simdKernelNsPerOp(K, *O, In, Sizes[SI]);
      }
      Out << "]}";
    }
    Out << "]}" << (KI + 1 < simd::NumKernels ? ",\n" : "\n");
  }
  Out << "    ]\n  }";
}

void writeBenchJson(const char *Path, double Scale, size_t Samples) {
  std::ofstream Out(Path);
  Out << "{\n";
  writeClosureCensus(Out);
  Out << ",\n";
  writeUpdateBench(Out, Scale, Samples);
  Out << ",\n";
  writeParallelSafety(Out, Scale, Samples);
  Out << ",\n";
  writeParallelPropagate(Out, Scale, Samples);
  Out << ",\n";
  writeSimdKernels(Out);
  Out << "\n}\n";
  std::printf("wrote closure census, update bench, phase profiles, "
              "parallel-safety audit, parallel-propagation sweep, and SIMD "
              "kernel matrix to %s\n",
              Path);
}

} // namespace

int main(int argc, char **argv) {
  // Harness-specific arguments must be stripped before google-benchmark
  // sees argv (it rejects flags it does not know).
  double AppScale = 1.0;
  size_t AppSamples = 200;
  int Kept = 1;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A.rfind("--app-scale=", 0) == 0)
      AppScale = std::stod(A.substr(12));
    else if (A.rfind("--app-samples=", 0) == 0)
      AppSamples = std::stoul(A.substr(14));
    else
      argv[Kept++] = argv[I];
  }
  argc = Kept;
  writeBenchJson("BENCH_rt.json", AppScale, AppSamples);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
