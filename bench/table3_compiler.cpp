//===- bench/table3_compiler.cpp - Reproduces Table 3 ---------------------===//
//
// "Compilation times and binary sizes for some CEAL programs": for each
// benchmark's CL source, the cealc pipeline (parse + graph + dominators +
// liveness + NORMALIZE + monomorphizing translation) versus the
// passthrough baseline (parse + print), which substitutes for the paper's
// raw gcc column (DESIGN.md sec. 3): both columns traverse the same
// representation, so the ratios isolate the cost of cealc's extra phases.
// The paper measures cealc 3-8x slower than gcc with 2-5x larger output.
//
//===----------------------------------------------------------------------===//

#include "cl/Parser.h"
#include "cl/Samples.h"
#include "normalize/Normalize.h"
#include "support/Timer.h"
#include "translate/EmitC.h"

#include <cstdio>

using namespace ceal;
using namespace ceal::cl;

int main() {
  std::printf("Table 3: cealc versus the passthrough pipeline "
              "(the paper's gcc substitution; see DESIGN.md)\n\n");
  std::printf("%-12s %6s %6s | %10s %9s | %10s %9s | %6s %6s\n", "Program",
              "lines", "blocks", "cealc(ms)", "out(B)", "pass(ms)",
              "out(B)", "t-rat", "s-rat");
  std::printf("%.*s\n", 92,
              "------------------------------------------------------------"
              "--------------------------------");

  for (const auto &[Name, Source] : samples::allPrograms()) {
    size_t Lines = 1;
    for (char C : Source)
      Lines += C == '\n';

    // cealc pipeline, repeated for a stable timing.
    double CealcMs = 1e99;
    size_t CealcBytes = 0;
    for (int Rep = 0; Rep < 5; ++Rep) {
      Timer T;
      auto Parsed = parseProgram(Source);
      if (!Parsed) {
        std::fprintf(stderr, "parse error in %s: %s\n", Name.c_str(),
                     Parsed.Error.c_str());
        return 1;
      }
      auto Norm = normalize::normalizeProgram(*Parsed.Prog);
      auto Emitted = translate::emitC(Norm.Prog, translate::Mode::Refined);
      CealcMs = std::min(CealcMs, T.milliseconds());
      CealcBytes = Emitted.EmittedBytes;
    }

    // Passthrough pipeline.
    double PassMs = 1e99;
    size_t PassBytes = 0;
    size_t Blocks = 0;
    for (int Rep = 0; Rep < 5; ++Rep) {
      Timer T;
      auto Parsed = parseProgram(Source);
      auto Out = translate::emitPassthrough(*Parsed.Prog);
      PassMs = std::min(PassMs, T.milliseconds());
      PassBytes = Out.EmittedBytes;
      Blocks = Parsed.Prog->blockCount();
    }

    std::printf("%-12s %6zu %6zu | %10.3f %9zu | %10.3f %9zu | %6.1f %6.1f\n",
                Name.c_str(), Lines, Blocks, CealcMs, CealcBytes, PassMs,
                PassBytes, CealcMs / PassMs,
                double(CealcBytes) / double(PassBytes));
  }
  std::printf("\n(paper: cealc 3-8x slower than gcc, binaries 2-5x "
              "larger)\n");
  return 0;
}
