//===- bench/ablation.cpp - Ablations of the design choices ---------------===//
//
// Quantifies the design decisions DESIGN.md calls out:
//
//  1. Memo-keyed allocation. The paper's splicing depends on re-executions
//     recovering the *same* modifiables/blocks (Sec. 6.1, ISMM'08). We
//     compile the CL `map` benchmark twice — once with keyed `modref(c)`
//     allocations, once with the keys stripped — and compare update
//     times. Without keys, a deletion misaligns allocation reuse and the
//     re-execution cascades to the end of the list.
//
//  2. The equality cut. Writes that re-produce the value a reader saw do
//     not invalidate it, and invalidated reads whose value is restored
//     are skipped. We disable both and replace expression-tree leaves by
//     equal-valued fresh leaves: with the cut, propagation stops at the
//     leaf's parent; without it, the whole leaf-to-root path re-runs.
//
//===----------------------------------------------------------------------===//

#include "AppBench.h"
#include "apps/ExpTrees.h"
#include "cl/Parser.h"
#include "cl/Samples.h"
#include "interp/Vm.h"
#include "normalize/Normalize.h"

#include <cstdio>

using namespace ceal;
using namespace ceal::bench;

namespace {

/// Strips the memo keys from every modref() in \p P.
cl::Program stripModrefKeys(cl::Program P) {
  for (cl::Function &F : P.Funcs)
    for (cl::BasicBlock &B : F.Blocks)
      if (B.K == cl::BasicBlock::Cmd &&
          B.C.K == cl::Command::ModrefAlloc)
        B.C.Args.clear();
  return P;
}

/// Average map-update time through the CL VM for \p Prog.
double vmMapUpdateSeconds(const cl::Program &Prog, size_t N,
                          size_t Samples) {
  Runtime RT;
  interp::Vm M(RT, Prog);
  Rng R(123);
  // Build the modifiable input list in the VM heap.
  Modref *Head = M.metaModref();
  std::vector<Modref *> Tails;
  std::vector<Word *> Cells;
  {
    Modref *Cur = Head;
    for (size_t I = 0; I < N; ++I) {
      auto *Blk = static_cast<Word *>(M.metaAlloc(16));
      Modref *Tail = M.metaModref();
      Blk[0] = R.below(1 << 30);
      Blk[1] = toWord(Tail);
      M.metaWrite(Cur, toWord(Blk));
      Cells.push_back(Blk);
      Tails.push_back(Tail);
      Cur = Tail;
    }
  }
  Modref *Out = M.metaModref();
  M.runCore("map", {toWord(Head), toWord(Out)});

  Timer T;
  for (size_t S = 0; S < Samples; ++S) {
    size_t I = R.below(N);
    Modref *Before = I == 0 ? Head : Tails[I - 1];
    Word Detached = M.metaRead(Before);
    M.metaWrite(Before, M.metaRead(Tails[I]));
    M.propagate();
    M.metaWrite(Before, Detached);
    M.propagate();
  }
  return T.seconds() / double(2 * Samples);
}

} // namespace

int main(int argc, char **argv) {
  BenchArgs Args(argc, argv);
  size_t N = Args.scaled(4000);
  size_t Samples = std::min<size_t>(Args.Samples, 60);

  std::printf("Ablation 1: memo-keyed allocation (CL map via the VM, "
              "n=%s)\n", fmtCount(N).c_str());
  auto Parsed = cl::parseProgram(cl::samples::ListPrims);
  if (!Parsed) {
    std::fprintf(stderr, "parse error: %s\n", Parsed.Error.c_str());
    return 1;
  }
  cl::Program Keyed = normalize::normalizeProgram(*Parsed.Prog).Prog;
  cl::Program Unkeyed =
      normalize::normalizeProgram(stripModrefKeys(*Parsed.Prog)).Prog;
  double KeyedUpd = vmMapUpdateSeconds(Keyed, N, Samples);
  double UnkeyedUpd = vmMapUpdateSeconds(Unkeyed, N, Samples);
  std::printf("  keyed modref(c):   %.3e s/update\n", KeyedUpd);
  std::printf("  keyless modref():  %.3e s/update\n", UnkeyedUpd);
  std::printf("  keying speedup:    %.1fx  (keyless reuse misaligns and "
              "updates cascade)\n\n",
              UnkeyedUpd / KeyedUpd);

  size_t Leaves = Args.scaled(50000);
  std::printf("Ablation 2: the equality cut (exptrees with %s leaves; "
              "each update replaces a leaf by a fresh leaf with the SAME "
              "value)\n",
              fmtCount(Leaves).c_str());
  auto ExpUpdate = [&](bool DisableCut) {
    using namespace apps;
    Runtime::Config Cfg;
    Cfg.DisableEqualityCut = DisableCut;
    Runtime RT(Cfg);
    Rng R(99);
    ExpTree T = buildExpTree(RT, R, Leaves);
    Modref *Res = RT.modref();
    RT.runCore<&evalExpCore>(T.Root, Res);
    Timer Tm;
    for (size_t S = 0; S < Samples; ++S) {
      size_t I = R.below(T.Leaves.size());
      replaceLeaf(RT, T, I, T.Leaves[I]->Num); // Same value, new node.
      RT.propagate();
    }
    return Tm.seconds() / double(Samples);
  };
  double WithCut = ExpUpdate(false);
  double WithoutCut = ExpUpdate(true);
  std::printf("  with equality cut:    %.3e s/update (stops at the "
              "leaf's parent)\n", WithCut);
  std::printf("  without equality cut: %.3e s/update (re-evaluates the "
              "leaf-to-root path)\n", WithoutCut);
  std::printf("  cut speedup:          %.1fx\n", WithoutCut / WithCut);
  return 0;
}
