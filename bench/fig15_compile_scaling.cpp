//===- bench/fig15_compile_scaling.cpp - Reproduces Figure 15 -------------===//
//
// cealc compilation time versus the size of the compiled output: the
// paper observes a near-linear relationship (Theorem 5 predicts
// O(m + n*ML + liveness)). Data points come from the benchmark programs
// plus synthetically scaled translation units (the list-primitive
// program replicated K times with renamed functions).
//
//===----------------------------------------------------------------------===//

#include "cl/Parser.h"
#include "cl/Samples.h"
#include "normalize/Normalize.h"
#include "support/Timer.h"
#include "translate/EmitC.h"

#include <cstdio>
#include <string>

using namespace ceal;
using namespace ceal::cl;

namespace {

/// Replicates the list-primitives unit \p K times with unique names.
std::string replicatedUnit(int K) {
  std::string Out;
  std::string Base = samples::ListPrims;
  for (int I = 0; I < K; ++I) {
    std::string Copy = Base;
    // Rename every function; their names are unique tokens.
    for (const char *Fn :
         {"lp_cellinit", "map", "filter", "reverse", "rev_go", "sum_go",
          "sum"}) {
      std::string From = Fn;
      std::string To = "u" + std::to_string(I) + "_" + Fn;
      size_t Pos = 0;
      while ((Pos = Copy.find(From, Pos)) != std::string::npos) {
        // Token boundary check to avoid renaming inside longer names.
        bool LeftOk = Pos == 0 || !(isalnum(Copy[Pos - 1]) || Copy[Pos - 1] == '_');
        size_t End = Pos + From.size();
        bool RightOk =
            End >= Copy.size() || !(isalnum(Copy[End]) || Copy[End] == '_');
        if (LeftOk && RightOk) {
          Copy.replace(Pos, From.size(), To);
          Pos += To.size();
        } else {
          Pos += 1;
        }
      }
    }
    Out += Copy;
  }
  return Out;
}

struct PointData {
  std::string Name;
  double CompileMs;
  size_t OutBytes;
};

PointData measure(const std::string &Name, const std::string &Source) {
  double Ms = 1e99;
  size_t Bytes = 0;
  for (int Rep = 0; Rep < 3; ++Rep) {
    Timer T;
    auto Parsed = parseProgram(Source);
    if (!Parsed) {
      std::fprintf(stderr, "parse error: %s\n", Parsed.Error.c_str());
      std::exit(1);
    }
    auto Norm = normalize::normalizeProgram(*Parsed.Prog);
    auto Emitted = translate::emitC(Norm.Prog, translate::Mode::Refined);
    Ms = std::min(Ms, T.milliseconds());
    Bytes = Emitted.EmittedBytes;
  }
  return {Name, Ms, Bytes};
}

} // namespace

int main() {
  std::printf("Figure 15: cealc compile time versus size of compiled "
              "output\n\n");
  std::printf("%-16s %12s %12s %14s\n", "program", "compile(ms)", "out(KB)",
              "ms per 100KB");
  std::printf("%.*s\n", 58,
              "----------------------------------------------------------");

  std::vector<PointData> Points;
  for (const auto &[Name, Source] : samples::allPrograms())
    Points.push_back(measure(Name, Source));
  for (int K : {2, 4, 8, 16, 32})
    Points.push_back(
        measure("listprims x" + std::to_string(K), replicatedUnit(K)));

  for (const PointData &P : Points)
    std::printf("%-16s %12.3f %12.1f %14.2f\n", P.Name.c_str(), P.CompileMs,
                double(P.OutBytes) / 1024.0,
                P.CompileMs / (double(P.OutBytes) / 102400.0));
  std::printf("\n(near-constant ms-per-output-byte across a ~50x size "
              "range indicates the\n near-linear scaling of the paper's "
              "Fig. 15)\n");
  return 0;
}
