//===- bench/fig13_tcon.cpp - Reproduces Figure 13 ------------------------===//
//
// Tree contraction over a size sweep: (left) conventional and
// self-adjusting from-scratch times, (middle) average update time —
// growing slowly/logarithmically — and (right) the speedup, which grows
// roughly linearly with n and exceeds orders of magnitude even at
// moderate sizes.
//
//===----------------------------------------------------------------------===//

#include "AppBench.h"

#include <cstdio>

using namespace ceal;
using namespace ceal::bench;

int main(int argc, char **argv) {
  BenchArgs Args(argc, argv);
  std::printf("Figure 13: tree contraction (tcon) versus input size\n\n");
  std::printf("%10s %12s %12s %8s %14s %12s\n", "n", "Cnv.(s)", "Self.(s)",
              "O.H.", "Ave.Update(s)", "Speedup");
  std::printf("%.*s\n", 74,
              "-----------------------------------------------------------"
              "---------------");
  for (size_t Base : {1000, 2000, 4000, 8000, 16000, 32000}) {
    size_t N = Args.scaled(Base);
    Measurement M = benchTreeContraction(N, std::min<size_t>(Args.Samples, 100));
    std::printf("%10s %12.5f %12.5f %8.1f %14.3e %12.2e\n",
                fmtCount(N).c_str(), M.ConvSeconds, M.SelfSeconds,
                M.overhead(), M.AvgUpdateSeconds, M.speedup());
  }
  std::printf("\n(paper: overhead a constant ~8x, update time growing "
              "logarithmically,\n speedup exceeding 10^4 at moderate "
              "sizes and scaling with n)\n");
  return 0;
}
