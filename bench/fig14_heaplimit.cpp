//===- bench/fig14_heaplimit.cpp - Reproduces Figure 14 -------------------===//
//
// Change-propagation slowdown of the SaSML-style runtime relative to
// CEAL for quicksort, as the simulated collected heap shrinks. Each line
// (one per input size) ends where the heap no longer holds the live
// trace — the paper's observation that tracing collection is inherently
// incompatible with self-adjusting computation's long-lived trace: the
// slowdown is not constant and grows super-linearly as headroom vanishes.
//
//===----------------------------------------------------------------------===//

#include "AppBench.h"
#include "baseline/SaSmlSim.h"

#include <cstdio>
#include <vector>

using namespace ceal;
using namespace ceal::bench;

namespace {

/// Average update time for quicksort under \p Cfg; returns a negative
/// value if the runtime exhausted the simulated heap.
double qsortUpdateSeconds(size_t N, size_t Samples,
                          const Runtime::Config &Cfg) {
  using namespace apps;
  Rng R(77);
  std::vector<Word> In = randomWords(R, N);
  Runtime RT(Cfg);
  ListHandle L = buildList(RT, In);
  Modref *Dst = RT.modref();
  RT.runCore<&quicksortCore>(L.Head, Dst, &cmpWordKeys);
  if (RT.outOfMemory())
    return -1.0;
  Samples = std::min(Samples, N);
  Timer T;
  for (size_t S = 0; S < Samples; ++S) {
    size_t Index = R.below(N);
    detachCell(RT, L, Index);
    RT.propagate();
    reattachCell(RT, L, Index);
    RT.propagate();
    if (RT.outOfMemory())
      return -1.0;
  }
  return T.seconds() / double(2 * Samples);
}

} // namespace

int main(int argc, char **argv) {
  BenchArgs Args(argc, argv);
  size_t Samples = std::min<size_t>(Args.Samples, 60);

  std::printf("Figure 14: SaSML/CEAL propagation slowdown for quicksort "
              "under heap limits\n\n");
  std::vector<size_t> Sizes = {Args.scaled(2500), Args.scaled(5000),
                               Args.scaled(10000)};

  std::printf("%-10s", "headroom");
  for (size_t N : Sizes)
    std::printf(" %14s", ("n=" + fmtCount(N)).c_str());
  std::printf("\n%.*s\n", 56,
              "--------------------------------------------------------");

  // Per size: the CEAL reference update time and the SaSML live size
  // (which determines where its line ends).
  std::vector<double> CealUpdate(Sizes.size());
  std::vector<size_t> SasmlLive(Sizes.size());
  for (size_t I = 0; I < Sizes.size(); ++I) {
    CealUpdate[I] =
        qsortUpdateSeconds(Sizes[I], Samples, Runtime::Config());
    Runtime Probe(baseline::sasmlConfig());
    {
      using namespace apps;
      Rng R(77);
      std::vector<Word> In = randomWords(R, Sizes[I]);
      ListHandle L = buildList(Probe, In);
      Modref *D = Probe.modref();
      Probe.runCore<&quicksortCore>(L.Head, D, &cmpWordKeys);
    }
    SasmlLive[I] = Probe.maxLiveBytes();
  }

  // Sweep heap headroom factors from plentiful to exhausted.
  for (double Factor : {6.0, 3.0, 2.0, 1.5, 1.25, 1.1, 1.02, 0.9}) {
    std::printf("%9.2fx", Factor);
    for (size_t I = 0; I < Sizes.size(); ++I) {
      double Update = qsortUpdateSeconds(
          Sizes[I], Samples,
          baseline::sasmlConfig(size_t(double(SasmlLive[I]) * Factor)));
      if (Update < 0) {
        std::printf(" %14s", "OOM");
      } else {
        std::printf(" %13.1fx", Update / CealUpdate[I]);
      }
    }
    std::printf("\n");
  }
  std::printf("\n(paper: the slowdown is not constant; it grows "
              "super-linearly as the heap\n tightens — up to ~75x — and "
              "each line ends when memory is insufficient)\n");
  return 0;
}
