//===- bench/table2_vs_sasml.cpp - Reproduces Table 2 ---------------------===//
//
// "Times and space for CEAL versus SaSML": the common benchmark set,
// comparing the CEAL runtime against the SaSML-style comparator (see
// src/baseline/SaSmlSim.h for the substitution rationale). The paper
// reports CEAL 5-27x faster from scratch, 3-16x faster in change
// propagation, and up to 5x smaller with plentiful memory; this harness
// reproduces that uniform constant-factor gap (the super-linear collapse
// under memory pressure is fig14_heaplimit).
//
//===----------------------------------------------------------------------===//

#include "AppBench.h"
#include "baseline/SaSmlSim.h"

#include <cstdio>
#include <vector>

using namespace ceal;
using namespace ceal::bench;

int main(int argc, char **argv) {
  BenchArgs Args(argc, argv);
  size_t NBig = Args.scaled(50000);   // Paper: 1M.
  size_t NSmall = Args.scaled(10000); // Paper: 100K.

  struct Row {
    Measurement Ceal, Sasml;
  };
  std::vector<Row> Rows;
  Runtime::Config Plain;
  Runtime::Config Sim = baseline::sasmlConfig();

  auto AddList = [&](ListKind K, size_t N) {
    Rows.push_back({benchList(K, N, Args.Samples, Plain),
                    benchList(K, N, Args.Samples, Sim)});
  };
  AddList(ListKind::Filter, NBig);
  AddList(ListKind::Map, NBig);
  AddList(ListKind::Reverse, NBig);
  AddList(ListKind::Minimum, NBig);
  AddList(ListKind::Sum, NBig);
  AddList(ListKind::Quicksort, NSmall);
  Rows.push_back(
      {benchGeometry(GeoKind::Quickhull, NSmall, Args.Samples, Plain),
       benchGeometry(GeoKind::Quickhull, NSmall, Args.Samples, Sim)});
  Rows.push_back(
      {benchGeometry(GeoKind::Diameter, NSmall, Args.Samples, Plain),
       benchGeometry(GeoKind::Diameter, NSmall, Args.Samples, Sim)});

  std::printf("Table 2: CEAL versus SaSML (simulated comparator; see "
              "DESIGN.md sec. 3)\n\n");
  std::printf("%-10s %8s | %9s %9s %6s | %10s %10s %6s | %8s %8s %6s\n",
              "App", "n", "FS CEAL", "FS SaSML", "ratio", "Prop CEAL",
              "Prop SaSML", "ratio", "Sp CEAL", "Sp SaSML", "ratio");
  std::printf("%.*s\n", 112,
              "------------------------------------------------------------"
              "------------------------------------------------------------");
  for (const Row &R : Rows) {
    const Measurement &C = R.Ceal;
    const Measurement &S = R.Sasml;
    std::printf(
        "%-10s %8s | %9.4f %9.4f %6.1f | %10.3e %10.3e %6.1f | %8s %8s "
        "%6.1f\n",
        C.Name.c_str(), fmtCount(C.N).c_str(), C.SelfSeconds, S.SelfSeconds,
        S.SelfSeconds / C.SelfSeconds, C.AvgUpdateSeconds,
        S.AvgUpdateSeconds, S.AvgUpdateSeconds / C.AvgUpdateSeconds,
        fmtBytes(C.MaxLiveBytes).c_str(), fmtBytes(S.MaxLiveBytes).c_str(),
        double(S.MaxLiveBytes) / double(C.MaxLiveBytes));
  }
  return 0;
}
