//===- bench/AppBench.h - Shared measurement harness -----------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measurement drivers shared by the table/figure harnesses. Each driver
/// reproduces the paper's methodology (Sec. 8.1):
///
///  * a conventional from-scratch run (the "Cnv." column),
///  * a self-adjusting from-scratch run (the "Self." column; their ratio
///    is the overhead),
///  * a test mutator that deletes an element, propagates, reinserts it,
///    and propagates again; the average time per propagate is the "Ave.
///    Update" column and conventional-time / update-time is the speedup,
///  * the maximum live bytes of the self-adjusting runtime.
///
/// Deviation from the paper: the test mutator samples uniformly random
/// element positions (default a few hundred) instead of cycling through
/// all n elements — the estimator matches the full sweep in expectation,
/// and full cycles would take hours at the larger sizes on one core.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_BENCH_APPBENCH_H
#define CEAL_BENCH_APPBENCH_H

#include "apps/ExpTrees.h"
#include "apps/Geometry.h"
#include "apps/ListApps.h"
#include "apps/ListConv.h"
#include "apps/TreeContraction.h"
#include "runtime/Snapshot.h"
#include "support/Timer.h"

#include <cstdio>
#include <memory>
#include <string>

#include <unistd.h>

namespace ceal {
namespace bench {

struct Measurement {
  std::string Name;
  size_t N = 0;
  double ConvSeconds = 0;
  double SelfSeconds = 0;
  double AvgUpdateSeconds = 0;
  size_t MaxLiveBytes = 0;
  /// Captured when Config::EnableProfile is set: BuildProf covers the
  /// from-scratch run (construction counters, run_core time), Prof the
  /// update loop (the profile is reset in between, so the two phases are
  /// cleanly separated).
  bool HasProfile = false;
  PropagationProfile BuildProf;
  PropagationProfile Prof;
  /// Per-kind live-byte accounting, captured after the update loop (the
  /// trace is back to its steady-state shape by then).
  MemoryStats Mem;
  /// Trace-persistence accounting: the checkpoint's on-disk size and the
  /// min-of-reps wall time of an mmap warm-start (Snapshot::mmapWarmStart
  /// into a fresh runtime, including the mandatory load-time trace
  /// validation). Zero when the driver could not checkpoint (e.g. the
  /// temp file could not be created).
  double WarmStartSeconds = 0;
  size_t SnapshotBytes = 0;

  /// From-scratch overhead over the conventional baseline — the paper's
  /// Table 1 "Ovr." column (3-10x there; tracked in BENCH_*.json).
  double overhead() const { return SelfSeconds / ConvSeconds; }
  double speedup() const { return ConvSeconds / AvgUpdateSeconds; }
  /// How much a warm start beats re-running the self-adjusting
  /// construction — the payoff of persisting the trace.
  double warmSpeedup() const {
    return WarmStartSeconds > 0 ? SelfSeconds / WarmStartSeconds : 0;
  }
};

inline std::vector<Word> randomWords(Rng &R, size_t N) {
  std::vector<Word> V(N);
  for (Word &W : V)
    W = R.below(1u << 30);
  return V;
}

/// Checkpoints \p RT, destroys it (snapshots are same-base, so the saved
/// regions must be unmapped before a loader can claim them), and times
/// Snapshot::mmapWarmStart into fresh runtimes, min over \p Reps. Runs
/// last in each driver, after every timing and memory capture, so the
/// extra churn cannot perturb them. Fills M.SnapshotBytes and
/// M.WarmStartSeconds; leaves both zero on any save/load failure rather
/// than failing the bench.
/// Owns the bench's snapshot temp file and unlinks it on destruction, so
/// the file cannot leak on any exit path — early gate returns, load
/// failures, or an exception thrown from a later bench step (save, the
/// runtime destructor, or a warm-start load). The manual ::unlink calls
/// this replaces left the file behind on every throwing path.
struct ScopedBenchFile {
  std::string Path;
  ScopedBenchFile() {
    char Buf[] = "/tmp/ceal-bench-snap-XXXXXX";
    int Fd = ::mkstemp(Buf);
    if (Fd < 0)
      return;
    ::close(Fd);
    Path = Buf;
  }
  ~ScopedBenchFile() {
    if (!Path.empty())
      ::unlink(Path.c_str());
  }
  ScopedBenchFile(const ScopedBenchFile &) = delete;
  ScopedBenchFile &operator=(const ScopedBenchFile &) = delete;
  bool ok() const { return !Path.empty(); }
};

inline void measureWarmStart(std::unique_ptr<Runtime> RT, Measurement &M,
                             const Runtime::Config &Cfg, int Reps = 3) {
  if (!Snapshot::readyToSave(*RT))
    return;
  ScopedBenchFile Snap;
  if (!Snap.ok())
    return;
  Snapshot::SaveResult SR = Snapshot::save(*RT, Snap.Path);
  if (!SR.ok())
    return;
  RT.reset();
  double Best = 1e99;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    Runtime Fresh(Cfg);
    Timer T;
    Snapshot::LoadResult LR = Snapshot::mmapWarmStart(Fresh, Snap.Path);
    double Sec = T.seconds();
    if (!LR.ok()) {
      std::fprintf(stderr, "warm-start (%s): %s: %s\n", M.Name.c_str(),
                   Snapshot::statusName(LR.St), LR.Diagnostic.c_str());
      return;
    }
    Best = std::min(Best, Sec);
  }
  M.SnapshotBytes = size_t(SR.FileBytes);
  M.WarmStartSeconds = Best;
}

//===----------------------------------------------------------------------===//
// Element functions (the paper's choices, Sec. 8.2)
//===----------------------------------------------------------------------===//

inline Word paperMapFn(Word X, Word) { return X / 3 + X / 7 + X / 9; }
inline bool paperFilterFn(Word X, Word) {
  return (paperMapFn(X, 0) & 1) == 0;
}
inline Word combineMinW(Word A, Word B, Word) { return A < B ? A : B; }
inline Word combineSumW(Word A, Word B, Word) { return A + B; }
inline int cmpWordKeys(Word A, Word B) {
  return A < B ? -1 : (A > B ? 1 : 0);
}

//===----------------------------------------------------------------------===//
// List benchmarks
//===----------------------------------------------------------------------===//

enum class ListKind { Filter, Map, Reverse, Minimum, Sum, Quicksort,
                      Mergesort };

inline const char *listKindName(ListKind K) {
  switch (K) {
  case ListKind::Filter:    return "filter";
  case ListKind::Map:       return "map";
  case ListKind::Reverse:   return "reverse";
  case ListKind::Minimum:   return "minimum";
  case ListKind::Sum:       return "sum";
  case ListKind::Quicksort: return "quicksort";
  case ListKind::Mergesort: return "mergesort";
  }
  return "?";
}

/// Rough traced-operation counts (reads + writes + allocations) per app,
/// used as the Runtime::reserveTrace input-size hint. Measured once per
/// app; being off in either direction is harmless (tables and chunks
/// still grow on demand, extra reservation is untouched address space).
inline size_t listExpectedOps(ListKind K, size_t N) {
  size_t Log2 = 1;
  for (size_t X = N; X >>= 1;)
    ++Log2;
  switch (K) {
  case ListKind::Filter:
  case ListKind::Map:
  case ListKind::Reverse:
    return 4 * N;
  case ListKind::Minimum:
  case ListKind::Sum:
    // Contraction rounds: ~3x the list length summed over rounds, times
    // reads+writes+allocs per element.
    return 16 * N;
  case ListKind::Quicksort:
  case ListKind::Mergesort:
    return 6 * N * Log2;
  }
  return 4 * N;
}

inline double convListSeconds(ListKind K, const std::vector<Word> &In,
                              int Reps = 3) {
  using namespace apps;
  double Best = 1e99;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    Arena A;
    conv::PCell *L = conv::buildList(A, In);
    Timer T;
    switch (K) {
    case ListKind::Filter:
      conv::filterList(A, L, &paperFilterFn, 0);
      break;
    case ListKind::Map:
      conv::mapList(A, L, &paperMapFn, 0);
      break;
    case ListKind::Reverse:
      conv::reverseList(A, L);
      break;
    case ListKind::Minimum:
      // The paper derives the conventional version from the same CEAL
      // code (modrefs -> words), so the baseline runs the same
      // contraction-rounds algorithm.
      conv::reduceRoundsList(A, L, &combineMinW, 0, ~Word(0));
      break;
    case ListKind::Sum:
      conv::reduceRoundsList(A, L, &combineSumW, 0, 0);
      break;
    case ListKind::Quicksort:
      conv::quicksortList(A, L, &cmpWordKeys);
      break;
    case ListKind::Mergesort:
      conv::mergesortList(A, L, &cmpWordKeys);
      break;
    }
    Best = std::min(Best, T.seconds());
  }
  return Best;
}

inline void runListCore(Runtime &RT, ListKind K, Modref *Src, Modref *Dst) {
  using namespace apps;
  switch (K) {
  case ListKind::Filter:
    RT.runCore<&filterCore>(Src, Dst, &paperFilterFn, Word(0));
    break;
  case ListKind::Map:
    RT.runCore<&mapCore>(Src, Dst, &paperMapFn, Word(0));
    break;
  case ListKind::Reverse:
    RT.runCore<&reverseCore>(Src, Dst);
    break;
  case ListKind::Minimum:
    RT.runCore<&reduceCore>(Src, Dst, &combineMinW, Word(0), ~Word(0));
    break;
  case ListKind::Sum:
    RT.runCore<&reduceCore>(Src, Dst, &combineSumW, Word(0), Word(0));
    break;
  case ListKind::Quicksort:
    RT.runCore<&quicksortCore>(Src, Dst, &cmpWordKeys);
    break;
  case ListKind::Mergesort:
    RT.runCore<&mergesortCore>(Src, Dst, &cmpWordKeys);
    break;
  }
}

inline Measurement benchList(ListKind K, size_t N, size_t UpdateSamples,
                             const Runtime::Config &Cfg = Runtime::Config(),
                             uint64_t Seed = 42) {
  using namespace apps;
  Measurement M;
  M.Name = listKindName(K);
  M.N = N;
  Rng R(Seed);
  std::vector<Word> In = randomWords(R, N);
  M.ConvSeconds = convListSeconds(K, In);

  // A construction is one-shot per runtime, so time it the way the
  // conventional side is timed — min over reps — and record the
  // machine's floor rather than one draw from its noise (single draws
  // of these 40-300ms runs swing +-20% on a busy box). The throwaway
  // reps run *before* the kept runtime: their memory churn would
  // otherwise evict the kept trace between construction and the update
  // loop and inflate the update times with cold-cache misses.
  double RepBest = 1e99;
  for (int Rep = 1; Rep < 3; ++Rep) {
    Runtime RepRT(Cfg);
    RepRT.reserveTrace(listExpectedOps(K, N));
    ListHandle RepL = buildList(RepRT, In);
    Modref *RepDst = RepRT.modref();
    Timer T;
    runListCore(RepRT, K, RepL.Head, RepDst);
    RepBest = std::min(RepBest, T.seconds());
  }

  // Heap-allocated so measureWarmStart can destroy the source runtime
  // before timing loads against its checkpoint.
  auto RTH = std::make_unique<Runtime>(Cfg);
  Runtime &RT = *RTH;
  RT.reserveTrace(listExpectedOps(K, N));
  ListHandle L = buildList(RT, In);
  Modref *Dst = RT.modref();
  {
    Timer T;
    runListCore(RT, K, L.Head, Dst);
    M.SelfSeconds = std::min(T.seconds(), RepBest);
  }

  size_t Samples = std::min(UpdateSamples, N);
  if (Cfg.EnableProfile) {
    M.HasProfile = true;
    M.BuildProf = RT.profile(); // The from-scratch construction phases.
    RT.resetProfile();          // Scope the second profile to the updates.
  }
  Timer T;
  for (size_t S = 0; S < Samples; ++S) {
    size_t Index = R.below(N);
    detachCell(RT, L, Index);
    RT.propagate();
    reattachCell(RT, L, Index);
    RT.propagate();
  }
  M.AvgUpdateSeconds = T.seconds() / double(2 * Samples);
  M.MaxLiveBytes = RT.maxLiveBytes();
  M.Mem = RT.memoryStats();
  if (Cfg.EnableProfile)
    M.Prof = RT.profile();
  measureWarmStart(std::move(RTH), M, Cfg);
  return M;
}

//===----------------------------------------------------------------------===//
// Geometry benchmarks
//===----------------------------------------------------------------------===//

enum class GeoKind { Quickhull, Diameter, Distance };

inline Measurement benchGeometry(GeoKind K, size_t N, size_t UpdateSamples,
                                 const Runtime::Config &Cfg = Runtime::Config(),
                                 uint64_t Seed = 43) {
  using namespace apps;
  Measurement M;
  M.Name = K == GeoKind::Quickhull  ? "quickhull"
           : K == GeoKind::Diameter ? "diameter"
                                    : "distance";
  M.N = N;
  Rng R(Seed);

  auto RTH = std::make_unique<Runtime>(Cfg);
  Runtime &RT = *RTH;
  RT.reserveTrace(8 * N);
  std::vector<Point *> A = randomPoints(RT, R, K == GeoKind::Distance
                                                   ? N / 2
                                                   : N);
  std::vector<Point *> B =
      K == GeoKind::Distance ? randomPoints(RT, R, N - N / 2, 2.5)
                             : std::vector<Point *>();

  // Conventional runs.
  {
    std::vector<const Point *> CA(A.begin(), A.end());
    std::vector<const Point *> CB(B.begin(), B.end());
    double Best = 1e99;
    for (int Rep = 0; Rep < 3; ++Rep) {
      Timer T;
      switch (K) {
      case GeoKind::Quickhull:
        conv::quickhull(CA);
        break;
      case GeoKind::Diameter:
        conv::diameter2(CA);
        break;
      case GeoKind::Distance:
        conv::distance2(CA, CB);
        break;
      }
      Best = std::min(Best, T.seconds());
    }
    M.ConvSeconds = Best;
  }

  auto TimeGeoCore = [K](Runtime &R, ListHandle &PA, ListHandle &PB,
                         Modref *D) {
    Timer T;
    switch (K) {
    case GeoKind::Quickhull:
      R.runCore<&quickhullCore>(PA.Head, D);
      break;
    case GeoKind::Diameter:
      R.runCore<&diameterCore>(PA.Head, D);
      break;
    case GeoKind::Distance:
      R.runCore<&distanceCore>(PA.Head, PB.Head, D);
      break;
    }
    return T.seconds();
  };
  // Min-of-reps, symmetric with the conventional timing; throwaway reps
  // run before the kept trace is built (see benchList for why).
  double RepBest = 1e99;
  for (int Rep = 1; Rep < 3; ++Rep) {
    Runtime RepRT(Cfg);
    RepRT.reserveTrace(8 * N);
    Rng RepR(Seed);
    std::vector<Point *> RepA =
        randomPoints(RepRT, RepR, K == GeoKind::Distance ? N / 2 : N);
    std::vector<Point *> RepB =
        K == GeoKind::Distance
            ? randomPoints(RepRT, RepR, N - N / 2, 2.5)
            : std::vector<Point *>();
    ListHandle RepLA = buildPointList(RepRT, RepA);
    ListHandle RepLB = K == GeoKind::Distance ? buildPointList(RepRT, RepB)
                                              : ListHandle();
    Modref *RepDst = RepRT.modref();
    RepBest = std::min(RepBest, TimeGeoCore(RepRT, RepLA, RepLB, RepDst));
  }

  ListHandle LA = buildPointList(RT, A);
  ListHandle LB = K == GeoKind::Distance ? buildPointList(RT, B)
                                         : ListHandle();
  Modref *Dst = RT.modref();
  M.SelfSeconds = std::min(TimeGeoCore(RT, LA, LB, Dst), RepBest);

  size_t Samples = std::min(UpdateSamples, LA.Cells.size());
  if (Cfg.EnableProfile) {
    M.HasProfile = true;
    M.BuildProf = RT.profile();
    RT.resetProfile();
  }
  Timer T;
  for (size_t S = 0; S < Samples; ++S) {
    size_t Index = R.below(LA.Cells.size());
    detachCell(RT, LA, Index);
    RT.propagate();
    reattachCell(RT, LA, Index);
    RT.propagate();
  }
  M.AvgUpdateSeconds = T.seconds() / double(2 * Samples);
  M.MaxLiveBytes = RT.maxLiveBytes();
  M.Mem = RT.memoryStats();
  if (Cfg.EnableProfile)
    M.Prof = RT.profile();
  measureWarmStart(std::move(RTH), M, Cfg);
  return M;
}

//===----------------------------------------------------------------------===//
// Expression trees
//===----------------------------------------------------------------------===//

inline Measurement benchExpTrees(size_t NumLeaves, size_t UpdateSamples,
                                 const Runtime::Config &Cfg = Runtime::Config(),
                                 uint64_t Seed = 44) {
  using namespace apps;
  Measurement M;
  M.Name = "exptrees";
  M.N = NumLeaves;
  Rng R(Seed);

  auto RTH = std::make_unique<Runtime>(Cfg);
  Runtime &RT = *RTH;
  RT.reserveTrace(8 * NumLeaves);
  ExpTree T = buildExpTree(RT, R, NumLeaves);
  {
    double Best = 1e99;
    for (int Rep = 0; Rep < 3; ++Rep) {
      Timer Tm;
      evalExpConventional(RT, T.Root);
      Best = std::min(Best, Tm.seconds());
    }
    M.ConvSeconds = Best;
  }
  // Min-of-reps, symmetric with the conventional timing; throwaway reps
  // run before the kept trace is built (see benchList for why).
  double RepBest = 1e99;
  for (int Rep = 1; Rep < 3; ++Rep) {
    Runtime RepRT(Cfg);
    RepRT.reserveTrace(8 * NumLeaves);
    Rng RepR(Seed);
    ExpTree RepT = buildExpTree(RepRT, RepR, NumLeaves);
    Modref *RepRes = RepRT.modref();
    Timer Tm;
    RepRT.runCore<&evalExpCore>(RepT.Root, RepRes);
    RepBest = std::min(RepBest, Tm.seconds());
  }
  Modref *Res = RT.modref();
  {
    Timer Tm;
    RT.runCore<&evalExpCore>(T.Root, Res);
    M.SelfSeconds = std::min(Tm.seconds(), RepBest);
  }
  size_t Samples = std::min(UpdateSamples, T.Leaves.size());
  if (Cfg.EnableProfile) {
    M.HasProfile = true;
    M.BuildProf = RT.profile();
    RT.resetProfile();
  }
  Timer Tm;
  for (size_t S = 0; S < Samples; ++S) {
    size_t Index = R.below(T.Leaves.size());
    // Replace the leaf twice (new value, then a fresh leaf with the old
    // value), mirroring delete+insert.
    double Old = T.Leaves[Index]->Num;
    replaceLeaf(RT, T, Index, Old + 1.0);
    RT.propagate();
    replaceLeaf(RT, T, Index, Old);
    RT.propagate();
  }
  M.AvgUpdateSeconds = Tm.seconds() / double(2 * Samples);
  M.MaxLiveBytes = RT.maxLiveBytes();
  M.Mem = RT.memoryStats();
  if (Cfg.EnableProfile)
    M.Prof = RT.profile();
  measureWarmStart(std::move(RTH), M, Cfg);
  return M;
}

//===----------------------------------------------------------------------===//
// Tree contraction
//===----------------------------------------------------------------------===//

inline Measurement benchTreeContraction(size_t N, size_t UpdateSamples,
                                        const Runtime::Config &Cfg =
                                            Runtime::Config(),
                                        uint64_t Seed = 45) {
  using namespace apps;
  Measurement M;
  M.Name = "rctree-opt";
  M.N = N;
  Rng R(Seed);

  auto RTH = std::make_unique<Runtime>(Cfg);
  Runtime &RT = *RTH;
  RT.reserveTrace(16 * N);
  TcForest F = buildRandomTree(RT, R, N);
  {
    double Best = 1e99;
    for (int Rep = 0; Rep < 2; ++Rep) {
      Timer T;
      tcContractConventional(F.Adj);
      Best = std::min(Best, T.seconds());
    }
    M.ConvSeconds = Best;
  }
  // Min-of-reps, symmetric with the conventional timing; throwaway reps
  // run before the kept trace is built (see benchList for why).
  double RepBest = 1e99;
  for (int Rep = 1; Rep < 2; ++Rep) {
    Runtime RepRT(Cfg);
    RepRT.reserveTrace(16 * N);
    Rng RepR(Seed);
    TcForest RepF = buildRandomTree(RepRT, RepR, N);
    Modref *RepDst = RepRT.modref();
    Timer T;
    RepRT.runCore<&treeContractCore>(RepF.Live.Head, RepF.Table0,
                                     Word(RepF.N), RepDst);
    RepBest = std::min(RepBest, T.seconds());
  }
  Modref *Dst = RT.modref();
  {
    Timer T;
    RT.runCore<&treeContractCore>(F.Live.Head, F.Table0, Word(F.N), Dst);
    M.SelfSeconds = std::min(T.seconds(), RepBest);
  }
  auto Edges = F.edges();
  size_t Samples = std::min(UpdateSamples, Edges.size());
  if (Cfg.EnableProfile) {
    M.HasProfile = true;
    M.BuildProf = RT.profile();
    RT.resetProfile();
  }
  Timer T;
  for (size_t S = 0; S < Samples; ++S) {
    auto [P, C] = Edges[R.below(Edges.size())];
    tcDeleteEdge(RT, F, P, C);
    RT.propagate();
    tcInsertEdge(RT, F, P, C);
    RT.propagate();
  }
  M.AvgUpdateSeconds = T.seconds() / double(2 * Samples);
  M.MaxLiveBytes = RT.maxLiveBytes();
  M.Mem = RT.memoryStats();
  if (Cfg.EnableProfile)
    M.Prof = RT.profile();
  measureWarmStart(std::move(RTH), M, Cfg);
  return M;
}

//===----------------------------------------------------------------------===//
// Parallel-safety accounting (runtime/RaceCheck)
//===----------------------------------------------------------------------===//

/// One app's determinacy-race audit. The drivers below build the app's
/// trace once, then drive it through rounds of *batched* edits — B
/// spread-out positions mutated, one propagate, the inverse batch,
/// another propagate — so each propagation carries a dirty set the
/// detector can actually partition (the Table-1 single-edit loop yields
/// one or two dirty reads and a vacuous single interval). The same loop
/// runs twice on the same runtime: detector off (timed) and detector on
/// (timed, reports accumulated), so the row carries both the overhead
/// ratio and the partitionability verdict.
struct ParallelSafetyRow {
  std::string Name;
  size_t N = 0;
  size_t BatchEdits = 0;
  uint64_t Propagations = 0;
  /// Largest partition any propagation achieved.
  uint32_t MaxIntervals = 0;
  uint32_t MaxClusters = 0;
  uint64_t InitialDirtyReads = 0;
  uint64_t TaggedReads = 0, TaggedWrites = 0, TaggedMemoHits = 0;
  uint64_t CascadeInvalidations = 0;
  uint64_t WwConflicts = 0, RwConflicts = 0, CascadeConflicts = 0;
  double DetectorOffSeconds = 0, DetectorOnSeconds = 0;
  /// True iff every checked propagation was conflict-free.
  bool Partitionable = true;

  uint64_t conflictCount() const {
    return WwConflicts + RwConflicts + CascadeConflicts;
  }
  double detectorOverhead() const {
    return DetectorOffSeconds > 0 ? DetectorOnSeconds / DetectorOffSeconds
                                  : 0;
  }

  void writeJson(std::ostream &Out) const {
    Out << "{\"name\": \"" << Name << "\", \"n\": " << N
        << ", \"batch_edits\": " << BatchEdits
        << ", \"propagations\": " << Propagations
        << ", \"max_intervals\": " << MaxIntervals
        << ", \"max_clusters\": " << MaxClusters
        << ",\n     \"initial_dirty_reads\": " << InitialDirtyReads
        << ", \"tagged_reads\": " << TaggedReads
        << ", \"tagged_writes\": " << TaggedWrites
        << ", \"tagged_memo_hits\": " << TaggedMemoHits
        << ", \"cascade_invalidations\": " << CascadeInvalidations
        << ",\n     \"ww_conflicts\": " << WwConflicts
        << ", \"rw_conflicts\": " << RwConflicts
        << ", \"cascade_conflicts\": " << CascadeConflicts
        << ", \"detector_off_seconds\": " << DetectorOffSeconds
        << ", \"detector_on_seconds\": " << DetectorOnSeconds
        << ", \"detector_overhead\": " << detectorOverhead()
        << ", \"partitionable\": " << (Partitionable ? "true" : "false")
        << "}";
  }
};

inline void accumulateRace(ParallelSafetyRow &Row, const RaceReport &R) {
  ++Row.Propagations;
  Row.MaxIntervals = std::max(Row.MaxIntervals, R.Intervals);
  Row.MaxClusters = std::max(Row.MaxClusters, R.Clusters);
  Row.InitialDirtyReads += R.InitialDirtyReads;
  Row.TaggedReads += R.TaggedReads;
  Row.TaggedWrites += R.TaggedWrites;
  Row.TaggedMemoHits += R.TaggedMemoHits;
  Row.CascadeInvalidations += R.CascadeInvalidations;
  Row.WwConflicts += R.WwConflicts;
  Row.RwConflicts += R.RwConflicts;
  Row.CascadeConflicts += R.CascadeConflicts;
  Row.Partitionable &= R.partitionable();
}

/// The shared batched-edit loop: \p Edit(Round, J) applies the J-th edit
/// of a round, \p Undo(Round, J) its inverse (applied in reverse order).
/// Runs one untimed warm-up round, then the detector-off loop (timed),
/// then the detector-on loop (timed, reports folded into \p Row), all on
/// the same runtime; the edits are position-identical so the off/on
/// ratio is the detector's true propagation cost.
template <typename EditFn, typename UndoFn>
inline void runSafetyLoops(Runtime &RT, ParallelSafetyRow &Row, size_t Rounds,
                           size_t B, EditFn Edit, UndoFn Undo) {
  Row.BatchEdits = B;
  auto Loop = [&](bool Collect) {
    Timer T;
    for (size_t Round = 0; Round < Rounds; ++Round) {
      for (size_t J = 0; J < B; ++J)
        Edit(Round, J);
      RT.propagate();
      if (Collect)
        accumulateRace(Row, RT.raceReport());
      for (size_t J = B; J-- > 0;)
        Undo(Round, J);
      RT.propagate();
      if (Collect)
        accumulateRace(Row, RT.raceReport());
    }
    return T.seconds();
  };
  // Untimed warm-up round: the first propagation after construction pays
  // cold-cache misses both loops should not.
  for (size_t J = 0; J < B; ++J)
    Edit(0, J);
  RT.propagate();
  for (size_t J = B; J-- > 0;)
    Undo(0, J);
  RT.propagate();
  RT.setRaceCheck(false);
  Row.DetectorOffSeconds = Loop(false);
  RT.setRaceCheck(true);
  Row.DetectorOnSeconds = Loop(true);
  RT.setRaceCheck(false);
}

/// Edit positions for a round: B slots evenly spread across \p N,
/// rotated per round. Spacing is at least N/B (>= 2 for the sizes the
/// harnesses use), so no edit's predecessor is itself edited and the
/// batch members are pairwise independent structure positions.
inline size_t safetyPos(size_t N, size_t B, size_t Round, size_t J) {
  return (J * (N / B) + Round * 7919) % N;
}

inline ParallelSafetyRow
parallelSafetyList(ListKind K, size_t N, size_t Rounds,
                   const Runtime::Config &Cfg = Runtime::Config(),
                   uint64_t Seed = 46) {
  using namespace apps;
  ParallelSafetyRow Row;
  Row.Name = listKindName(K);
  Row.N = N;
  Rng R(Seed);
  std::vector<Word> In = randomWords(R, N);
  Runtime RT(Cfg);
  RT.reserveTrace(listExpectedOps(K, N));
  ListHandle L = buildList(RT, In);
  Modref *Dst = RT.modref();
  runListCore(RT, K, L.Head, Dst);
  const size_t B = std::min<size_t>(8, N / 2);
  runSafetyLoops(
      RT, Row, Rounds, B,
      [&](size_t Round, size_t J) { detachCell(RT, L, safetyPos(N, B, Round, J)); },
      [&](size_t Round, size_t J) { reattachCell(RT, L, safetyPos(N, B, Round, J)); });
  return Row;
}

inline ParallelSafetyRow
parallelSafetyGeometry(GeoKind K, size_t N, size_t Rounds,
                       const Runtime::Config &Cfg = Runtime::Config(),
                       uint64_t Seed = 47) {
  using namespace apps;
  ParallelSafetyRow Row;
  Row.Name = K == GeoKind::Quickhull  ? "quickhull"
             : K == GeoKind::Diameter ? "diameter"
                                      : "distance";
  Row.N = N;
  Rng R(Seed);
  Runtime RT(Cfg);
  RT.reserveTrace(8 * N);
  std::vector<Point *> A = randomPoints(RT, R, N);
  ListHandle LA = buildPointList(RT, A);
  Modref *Dst = RT.modref();
  if (K == GeoKind::Quickhull)
    RT.runCore<&quickhullCore>(LA.Head, Dst);
  else
    RT.runCore<&diameterCore>(LA.Head, Dst);
  const size_t Cells = LA.Cells.size();
  const size_t B = std::min<size_t>(8, Cells / 2);
  runSafetyLoops(RT, Row, Rounds, B,
                 [&](size_t Round, size_t J) {
                   detachCell(RT, LA, safetyPos(Cells, B, Round, J));
                 },
                 [&](size_t Round, size_t J) {
                   reattachCell(RT, LA, safetyPos(Cells, B, Round, J));
                 });
  return Row;
}

inline ParallelSafetyRow
parallelSafetyExpTrees(size_t NumLeaves, size_t Rounds,
                       const Runtime::Config &Cfg = Runtime::Config(),
                       uint64_t Seed = 48) {
  using namespace apps;
  ParallelSafetyRow Row;
  Row.Name = "exptrees";
  Row.N = NumLeaves;
  Rng R(Seed);
  Runtime RT(Cfg);
  RT.reserveTrace(8 * NumLeaves);
  ExpTree T = buildExpTree(RT, R, NumLeaves);
  Modref *Res = RT.modref();
  RT.runCore<&evalExpCore>(T.Root, Res);
  const size_t Leaves = T.Leaves.size();
  const size_t B = std::min<size_t>(8, Leaves / 2);
  std::vector<double> Olds(B);
  runSafetyLoops(RT, Row, Rounds, B,
                 [&](size_t Round, size_t J) {
                   size_t Index = safetyPos(Leaves, B, Round, J);
                   Olds[J] = T.Leaves[Index]->Num;
                   replaceLeaf(RT, T, Index, Olds[J] + 1.0);
                 },
                 [&](size_t Round, size_t J) {
                   replaceLeaf(RT, T, safetyPos(Leaves, B, Round, J), Olds[J]);
                 });
  return Row;
}

inline ParallelSafetyRow
parallelSafetyTreeContraction(size_t N, size_t Rounds,
                              const Runtime::Config &Cfg = Runtime::Config(),
                              uint64_t Seed = 49) {
  using namespace apps;
  ParallelSafetyRow Row;
  Row.Name = "rctree-opt";
  Row.N = N;
  Rng R(Seed);
  Runtime RT(Cfg);
  RT.reserveTrace(16 * N);
  TcForest F = buildRandomTree(RT, R, N);
  Modref *Dst = RT.modref();
  RT.runCore<&treeContractCore>(F.Live.Head, F.Table0, Word(F.N), Dst);
  auto Edges = F.edges();
  const size_t E = Edges.size();
  const size_t B = std::min<size_t>(8, E / 2);
  runSafetyLoops(RT, Row, Rounds, B,
                 [&](size_t Round, size_t J) {
                   auto [P, C] = Edges[safetyPos(E, B, Round, J)];
                   tcDeleteEdge(RT, F, P, C);
                 },
                 [&](size_t Round, size_t J) {
                   auto [P, C] = Edges[safetyPos(E, B, Round, J)];
                   tcInsertEdge(RT, F, P, C);
                 });
  return Row;
}

//===----------------------------------------------------------------------===//
// Parallel propagation scaling (runtime/ParallelPropagate)
//===----------------------------------------------------------------------===//

/// One (app, thread-count) row of the parallel-propagation scaling
/// sweep. Threads == 1 is the sequential baseline the other rows are
/// digest-checked and speedup-normalized against; the digest is the
/// placement-abstract trace-shape digest after the whole edit loop, so
/// equality across thread counts certifies the parallel phases were
/// observationally identical to sequential propagation.
struct ParallelPropagateRow {
  std::string Name;
  size_t N = 0;
  unsigned Threads = 1;
  size_t BatchEdits = 0;
  uint64_t Propagations = 0;
  /// From the propagation profiler: phases that ran parallel, phases
  /// refused up front (gates/clustering), phases demoted mid-flight by a
  /// dynamic cross-group conflict.
  uint64_t ParallelRuns = 0;
  uint64_t Fallbacks = 0;
  uint64_t Conflicts = 0;
  double UpdateLoopSeconds = 0;
  uint64_t TraceDigest = 0;
  /// Filled by the emitter comparing against the Threads == 1 row.
  bool DigestMatchesSequential = true;

  void writeJson(std::ostream &Out) const {
    char Dig[24];
    std::snprintf(Dig, sizeof(Dig), "%016llx",
                  static_cast<unsigned long long>(TraceDigest));
    Out << "{\"name\": \"" << Name << "\", \"n\": " << N
        << ", \"threads\": " << Threads
        << ", \"batch_edits\": " << BatchEdits
        << ", \"propagations\": " << Propagations
        << ",\n     \"parallel_runs\": " << ParallelRuns
        << ", \"fallbacks\": " << Fallbacks
        << ", \"conflicts\": " << Conflicts
        << ", \"update_loop_seconds\": " << UpdateLoopSeconds
        << ",\n     \"trace_digest\": \"" << Dig << "\""
        << ", \"digest_matches_sequential\": "
        << (DigestMatchesSequential ? "true" : "false") << "}";
  }
};

/// The shared batched-edit loop for the scaling rows: one untimed
/// warm-up round, then \p Rounds timed rounds of batch-edit / propagate
/// / inverse-batch / propagate (the same schedule the safety audit uses,
/// so the dirty sets actually cluster), then the profiler counters and
/// the final trace-shape digest.
template <typename EditFn, typename UndoFn>
inline void runParallelLoop(Runtime &RT, ParallelPropagateRow &Row,
                            size_t Rounds, size_t B, EditFn Edit,
                            UndoFn Undo) {
  Row.BatchEdits = B;
  for (size_t J = 0; J < B; ++J)
    Edit(0, J);
  RT.propagate();
  for (size_t J = B; J-- > 0;)
    Undo(0, J);
  RT.propagate();
  RT.resetProfile();
  Timer T;
  for (size_t Round = 0; Round < Rounds; ++Round) {
    for (size_t J = 0; J < B; ++J)
      Edit(Round, J);
    RT.propagate();
    for (size_t J = B; J-- > 0;)
      Undo(Round, J);
    RT.propagate();
  }
  Row.UpdateLoopSeconds = T.seconds();
  Row.Propagations = 2 * Rounds;
  const PropagationProfile &P = RT.profile();
  Row.ParallelRuns = P.ParallelRuns;
  Row.Fallbacks = P.ParallelFallbacks;
  Row.Conflicts = P.ParallelConflicts;
  Row.TraceDigest = Snapshot::traceShapeDigest(RT);
}

/// Builds a parallel-propagation Config: profiler on (the counters above
/// come from it), parallel phases armed iff \p Threads >= 2.
inline Runtime::Config parallelBenchConfig(unsigned Threads) {
  Runtime::Config Cfg;
  Cfg.EnableProfile = true;
  Cfg.ParallelPropagate = Threads >= 2;
  Cfg.ParallelThreads = Threads >= 2 ? Threads : 2;
  return Cfg;
}

inline ParallelPropagateRow
parallelPropagateList(ListKind K, size_t N, size_t Rounds, unsigned Threads,
                      uint64_t Seed = 46) {
  using namespace apps;
  ParallelPropagateRow Row;
  Row.Name = listKindName(K);
  Row.N = N;
  Row.Threads = Threads;
  Rng R(Seed);
  std::vector<Word> In = randomWords(R, N);
  Runtime RT(parallelBenchConfig(Threads));
  RT.reserveTrace(listExpectedOps(K, N));
  ListHandle L = buildList(RT, In);
  Modref *Dst = RT.modref();
  runListCore(RT, K, L.Head, Dst);
  const size_t B = std::min<size_t>(8, N / 2);
  runParallelLoop(
      RT, Row, Rounds, B,
      [&](size_t Round, size_t J) { detachCell(RT, L, safetyPos(N, B, Round, J)); },
      [&](size_t Round, size_t J) { reattachCell(RT, L, safetyPos(N, B, Round, J)); });
  return Row;
}

inline ParallelPropagateRow
parallelPropagateQuickhull(size_t N, size_t Rounds, unsigned Threads,
                           uint64_t Seed = 47) {
  using namespace apps;
  ParallelPropagateRow Row;
  Row.Name = "quickhull";
  Row.N = N;
  Row.Threads = Threads;
  Rng R(Seed);
  Runtime RT(parallelBenchConfig(Threads));
  RT.reserveTrace(8 * N);
  std::vector<Point *> A = randomPoints(RT, R, N);
  ListHandle LA = buildPointList(RT, A);
  Modref *Dst = RT.modref();
  RT.runCore<&quickhullCore>(LA.Head, Dst);
  const size_t Cells = LA.Cells.size();
  const size_t B = std::min<size_t>(8, Cells / 2);
  runParallelLoop(RT, Row, Rounds, B,
                  [&](size_t Round, size_t J) {
                    detachCell(RT, LA, safetyPos(Cells, B, Round, J));
                  },
                  [&](size_t Round, size_t J) {
                    reattachCell(RT, LA, safetyPos(Cells, B, Round, J));
                  });
  return Row;
}

inline ParallelPropagateRow
parallelPropagateExpTrees(size_t NumLeaves, size_t Rounds, unsigned Threads,
                          uint64_t Seed = 48) {
  using namespace apps;
  ParallelPropagateRow Row;
  Row.Name = "exptrees";
  Row.N = NumLeaves;
  Row.Threads = Threads;
  Rng R(Seed);
  Runtime RT(parallelBenchConfig(Threads));
  RT.reserveTrace(8 * NumLeaves);
  ExpTree T = buildExpTree(RT, R, NumLeaves);
  Modref *Res = RT.modref();
  RT.runCore<&evalExpCore>(T.Root, Res);
  const size_t Leaves = T.Leaves.size();
  const size_t B = std::min<size_t>(8, Leaves / 2);
  std::vector<double> Olds(B);
  runParallelLoop(RT, Row, Rounds, B,
                  [&](size_t Round, size_t J) {
                    size_t Index = safetyPos(Leaves, B, Round, J);
                    Olds[J] = T.Leaves[Index]->Num;
                    replaceLeaf(RT, T, Index, Olds[J] + 1.0);
                  },
                  [&](size_t Round, size_t J) {
                    replaceLeaf(RT, T, safetyPos(Leaves, B, Round, J),
                                Olds[J]);
                  });
  return Row;
}

//===----------------------------------------------------------------------===//
// Output helpers
//===----------------------------------------------------------------------===//

inline std::string fmtCount(size_t N) {
  char Buf[32];
  if (N >= 1000000 && N % 100000 == 0)
    std::snprintf(Buf, sizeof(Buf), "%.1fM", double(N) / 1e6);
  else if (N >= 1000 && N % 100 == 0)
    std::snprintf(Buf, sizeof(Buf), "%.1fK", double(N) / 1e3);
  else
    std::snprintf(Buf, sizeof(Buf), "%zu", N);
  return Buf;
}

inline std::string fmtBytes(size_t B) {
  char Buf[32];
  if (B >= (size_t(1) << 30))
    std::snprintf(Buf, sizeof(Buf), "%.1fG", double(B) / double(1 << 30));
  else if (B >= (1 << 20))
    std::snprintf(Buf, sizeof(Buf), "%.1fM", double(B) / double(1 << 20));
  else
    std::snprintf(Buf, sizeof(Buf), "%.1fK", double(B) / double(1 << 10));
  return Buf;
}

/// Parses `--scale=F` (multiplies default sizes), `--samples=K`, and
/// `--profile` (run with the propagation profiler enabled and emit its
/// phase breakdown alongside the timings).
struct BenchArgs {
  double Scale = 1.0;
  size_t Samples = 200;
  bool Profile = false;

  BenchArgs(int Argc, char **Argv) {
    for (int I = 1; I < Argc; ++I) {
      std::string A = Argv[I];
      if (A.rfind("--scale=", 0) == 0)
        Scale = std::stod(A.substr(8));
      else if (A.rfind("--samples=", 0) == 0)
        Samples = std::stoul(A.substr(10));
      else if (A == "--profile")
        Profile = true;
      else
        std::fprintf(stderr, "unknown argument: %s\n", A.c_str());
    }
  }

  size_t scaled(size_t Base) const {
    return std::max<size_t>(16, size_t(double(Base) * Scale));
  }
};

} // namespace bench
} // namespace ceal

#endif // CEAL_BENCH_APPBENCH_H
