//===- om/OrderList.cpp - Order-maintenance list --------------------------===//

#include "om/OrderList.h"

#include <cassert>
#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace ceal;

OrderList::OrderList() {
  auto *G = Allocator.create<OmGroup>();
  G->Prev = G->Next = nullptr;
  G->Label = GroupLabelSpace / 2;
  G->Count = 1;
  FirstGroup = G;

  auto *N = Allocator.create<OmNode>();
  N->Prev = N->Next = nullptr;
  N->Group = G;
  N->Label = UINT64_MAX / 2;
  N->Item = nullptr;
  G->First = N;
  Base = N;
  Size = 1;
}

OmNode *OrderList::insertAfter(OmNode *X, void *Item) {
  assert(X && "insertAfter requires a position");
  // Appending halves the remaining label space if done by midpoint, which
  // exhausts it after ~64 insertions and triggers pathological
  // relabeling; bound the gap so appends consume label space linearly.
  constexpr uint64_t AppendGap = uint64_t(1) << 32;
  for (;;) {
    OmGroup *G = X->Group;
    uint64_t Lo = X->Label;
    bool NextInGroup = X->Next && X->Next->Group == G;
    uint64_t Hi = NextInGroup ? X->Next->Label : UINT64_MAX;
    if (Hi - Lo >= 2) {
      auto *N = Allocator.create<OmNode>();
      N->Label = Lo + std::min((Hi - Lo) / 2, AppendGap);
      N->Group = G;
      N->Item = Item;
      N->Prev = X;
      N->Next = X->Next;
      if (X->Next)
        X->Next->Prev = N;
      X->Next = N;
      ++G->Count;
      ++Size;
      if (G->Count > GroupLimit)
        splitGroup(G);
      return N;
    }
    // No room between the labels: rebalance and retry. Splitting changes
    // group membership and labels, so recompute everything afterwards.
    if (G->Count >= GroupLimit)
      splitGroup(G);
    else
      relabelGroupItems(G);
  }
}

void OrderList::remove(OmNode *X) {
  assert(X != Base && "the base timestamp cannot be removed");
  OmGroup *G = X->Group;
  if (G->First == X)
    G->First = (G->Count > 1) ? X->Next : nullptr;
  if (X->Prev)
    X->Prev->Next = X->Next;
  if (X->Next)
    X->Next->Prev = X->Prev;
  --G->Count;
  --Size;
  Allocator.destroy(X);
  if (G->Count != 0)
    return;
  // Unlink and free the now-empty group.
  if (G->Prev)
    G->Prev->Next = G->Next;
  else
    FirstGroup = G->Next;
  if (G->Next)
    G->Next->Prev = G->Prev;
  Allocator.destroy(G);
}

void OrderList::relabelGroupItems(OmGroup *G) {
  ++Relabels;
  assert(G->Count > 0 && "relabeling an empty group");
  uint64_t Gap = UINT64_MAX / (uint64_t(G->Count) + 1);
  OmNode *N = G->First;
  for (uint32_t I = 0; I < G->Count; ++I) {
    N->Label = Gap * (uint64_t(I) + 1);
    N = N->Next;
  }
}

OmGroup *OrderList::createGroupAfter(OmGroup *G, uint64_t Label) {
  auto *NewG = Allocator.create<OmGroup>();
  NewG->Label = Label;
  NewG->Count = 0;
  NewG->First = nullptr;
  NewG->Prev = G;
  NewG->Next = G->Next;
  if (G->Next)
    G->Next->Prev = NewG;
  G->Next = NewG;
  return NewG;
}

void OrderList::splitGroup(OmGroup *G) {
  ++Relabels;
  // Leave the first GroupTarget members in G and distribute the remainder
  // into fresh groups of GroupTarget members each, inserted after G.
  uint32_t Total = G->Count;
  assert(Total > GroupTarget && "splitting a small group");
  OmNode *N = G->First;
  for (uint32_t I = 0; I < GroupTarget; ++I)
    N = N->Next;
  G->Count = GroupTarget;
  relabelGroupItems(G);

  uint32_t Remaining = Total - GroupTarget;
  OmGroup *Pred = G;
  while (Remaining > 0) {
    uint32_t Take = Remaining < GroupTarget ? Remaining : GroupTarget;
    uint64_t Lo = Pred->Label;
    uint64_t Hi = Pred->Next ? Pred->Next->Label : GroupLabelSpace;
    if (Hi - Lo < 2) {
      Lo = makeGroupGapAfter(Pred);
      Hi = Pred->Next ? Pred->Next->Label : GroupLabelSpace;
      assert(Hi - Lo >= 2 && "group relabel failed to open a gap");
    }
    OmGroup *NewG = createGroupAfter(
        Pred, Lo + std::min((Hi - Lo) / 2, uint64_t(1) << 31));
    NewG->First = N;
    NewG->Count = Take;
    for (uint32_t I = 0; I < Take; ++I) {
      N->Group = NewG;
      N = N->Next;
    }
    relabelGroupItems(NewG);
    Remaining -= Take;
    Pred = NewG;
  }
}

uint64_t OrderList::makeGroupGapAfter(OmGroup *G) {
  ++Relabels;
  ++RangeRelabels;
  // Find the smallest aligned label range [RangeBase, RangeBase + Width)
  // around G whose density is at most 1/2, then spread its groups evenly.
  // This is the list-labeling strategy of Bender et al.; it gives
  // amortized O(log n) group relabeling, which the two-level structure
  // turns into amortized O(1) per insertion.
  for (uint64_t Width = 4; Width <= GroupLabelSpace; Width <<= 1) {
    uint64_t RangeBase =
        Width >= GroupLabelSpace ? 0 : (G->Label & ~(Width - 1));
    uint64_t RangeEnd = RangeBase + Width; // Exclusive; no overflow: <= 2^62.
    // Count member groups by walking outward from G.
    OmGroup *Lo = G;
    while (Lo->Prev && Lo->Prev->Label >= RangeBase)
      Lo = Lo->Prev;
    uint64_t Count = 0;
    OmGroup *Cursor = Lo;
    while (Cursor && Cursor->Label < RangeEnd) {
      ++Count;
      Cursor = Cursor->Next;
    }
    if (Width < 2 * (Count + 1))
      continue; // Too dense to leave a usable gap; widen the range.
    uint64_t Gap = Width / (Count + 1);
    assert(Gap >= 2 && "density bound guarantees usable gaps");
    Cursor = Lo;
    uint64_t Index = 1;
    while (Cursor && Index <= Count) {
      Cursor->Label = RangeBase + Gap * Index;
      Cursor = Cursor->Next;
      ++Index;
    }
    return G->Label;
  }
  std::fprintf(stderr, "OrderList: group label space exhausted\n");
  std::abort();
}

void OrderList::verifyInvariants() const {
  size_t SeenNodes = 0;
  const OmGroup *G = FirstGroup;
  const OmNode *Expected = Base;
  uint64_t PrevGroupLabel = 0;
  bool FirstGroupSeen = true;
  while (G) {
    if (!FirstGroupSeen)
      assert(G->Label > PrevGroupLabel && "group labels must increase");
    FirstGroupSeen = false;
    PrevGroupLabel = G->Label;
    assert(G->Count > 0 && "empty group left in list");
    assert(G->First == Expected && "group First out of sync");
    const OmNode *N = G->First;
    uint64_t PrevLabel = 0;
    for (uint32_t I = 0; I < G->Count; ++I) {
      assert(N && "group count exceeds chain length");
      assert(N->Group == G && "node points at wrong group");
      if (I > 0)
        assert(N->Label > PrevLabel && "item labels must increase");
      PrevLabel = N->Label;
      ++SeenNodes;
      Expected = N->Next;
      N = N->Next;
    }
    G = G->Next;
  }
  assert(Expected == nullptr && "trailing nodes beyond last group");
  assert(SeenNodes == Size && "size accounting out of sync");
  (void)SeenNodes;
  (void)Expected;
  (void)PrevGroupLabel;
}
