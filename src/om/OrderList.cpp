//===- om/OrderList.cpp - Order-maintenance list --------------------------===//

#include "om/OrderList.h"

#include <cassert>
#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace ceal;

OrderList::OrderList() { rebuildEmpty(); }

void OrderList::rebuildEmpty() {
  FillLimit = GroupLimit;
  AppendActive = false;
  auto *G = Allocator.create<OmGroup>();
  G->Prev = G->Next = nullptr;
  G->Label = GroupLabelSpace / 2;
  G->Count = 1;
  FirstGroup = G;

  auto *N = Allocator.create<OmNode>();
  N->Prev = N->Next = nullptr;
  N->Group = G;
  N->Label = UINT64_MAX / 2;
  N->Item = 0;
  G->First = N;
  Base = N;
  Size = 1;
}

/// Out-of-line continuation of insertAfter: the group is full or the
/// labels left no room, so rebalance (split or relabel) and retry. The
/// retry loop re-runs the fast-path placement logic because rebalancing
/// changes group membership and labels.
OmNode *OrderList::insertAfterSlow(OmNode *X, OmItem Item) {
  if (AppendActive)
    return appendSlow(X, Item);
  for (;;) {
    OmGroup *G = X->Group;
    uint64_t Lo = X->Label;
    bool NextInGroup = X->Next && X->Next->Group == G;
    uint64_t Hi = NextInGroup ? X->Next->Label : UINT64_MAX;
    if (Hi - Lo >= 2 && G->Count < GroupLimit) {
      auto *N = Allocator.create<OmNode>();
      N->Label = Lo + std::min((Hi - Lo) / 2, AppendGap);
      N->Group = G;
      N->Item = Item;
      N->Prev = X;
      N->Next = X->Next;
      if (X->Next)
        X->Next->Prev = N;
      X->Next = N;
      ++G->Count;
      ++Size;
      return N;
    }
    if (G->Count >= GroupLimit)
      splitGroup(G);
    else
      relabelGroupItems(G);
  }
}

/// Append-mode slow path (see beginAppend): never rewrites an existing
/// label. A monotone insertion run only ever lands here when the group at
/// the cursor is full or the in-group label gap is spent, and both cases
/// resolve by opening a fresh group — O(1) per insertion (the suffix peel
/// is bounded by GroupLimit and each peeled node prepays the fresh group
/// it lands in).
OmNode *OrderList::appendSlow(OmNode *X, OmItem Item) {
  for (;;) {
    OmGroup *G = X->Group;
    if (X->Next && X->Next->Group == G) {
      // Mid-group position (the cursor re-entered an interval): peel the
      // in-group suffix after X into a fresh group under bump labels, so
      // X becomes a group tail with the full label space above it.
      OmGroup *NewG = freshGroupAfter(G);
      OmNode *N = X->Next;
      NewG->First = N;
      uint32_t Moved = 0;
      uint64_t Label = AppendGap;
      while (N && N->Group == G) {
        N->Group = NewG;
        N->Label = Label;
        Label += AppendGap;
        ++Moved;
        N = N->Next;
      }
      NewG->Count = Moved;
      assert(G->Count > Moved && "peel must leave X behind");
      G->Count -= Moved;
      continue;
    }
    if (G->Count >= FillLimit || UINT64_MAX - X->Label < 2) {
      // Group tail, but the group is at the append-mode fill target or
      // the label space above X is gone: start a fresh group after G and
      // put the new node there.
      OmGroup *NewG = freshGroupAfter(G);
      auto *N = Allocator.create<OmNode>();
      N->Label = AppendGap;
      N->Group = NewG;
      N->Item = Item;
      N->Prev = X;
      N->Next = X->Next;
      if (X->Next)
        X->Next->Prev = N;
      X->Next = N;
      NewG->First = N;
      NewG->Count = 1;
      ++Size;
      return N;
    }
    // A peel above turned X into a group tail with room: bump insert.
    auto *N = Allocator.create<OmNode>();
    N->Label = X->Label + std::min((UINT64_MAX - X->Label) / 2, AppendGap);
    N->Group = G;
    N->Item = Item;
    N->Prev = X;
    N->Next = X->Next;
    if (X->Next)
      X->Next->Prev = N;
    X->Next = N;
    ++G->Count;
    ++Size;
    return N;
  }
}

/// Unlinks and frees a group whose last member was just removed.
void OrderList::removeEmptyGroup(OmGroup *G) {
  if (G->Prev)
    G->Prev->Next = G->Next;
  else
    FirstGroup = G->Next;
  if (G->Next)
    G->Next->Prev = G->Prev;
  Allocator.destroy(G);
}

void OrderList::relabelGroupItems(OmGroup *G) {
  ++Relabels;
  assert(G->Count > 0 && "relabeling an empty group");
  uint64_t Gap = UINT64_MAX / (uint64_t(G->Count) + 1);
  OmNode *N = G->First;
  for (uint32_t I = 0; I < G->Count; ++I) {
    N->Label = Gap * (uint64_t(I) + 1);
    N = N->Next;
  }
}

OmGroup *OrderList::createGroupAfter(OmGroup *G, uint64_t Label) {
  auto *NewG = Allocator.create<OmGroup>();
  NewG->Label = Label;
  NewG->Count = 0;
  NewG->First = nullptr;
  NewG->Prev = G;
  NewG->Next = G->Next;
  if (G->Next)
    G->Next->Prev = NewG;
  G->Next = NewG;
  return NewG;
}

OmGroup *OrderList::freshGroupAfter(OmGroup *G) {
  uint64_t Lo = G->Label;
  uint64_t Hi = G->Next ? G->Next->Label : GroupLabelSpace;
  if (Hi - Lo < 2) {
    Lo = makeGroupGapAfter(G);
    Hi = G->Next ? G->Next->Label : GroupLabelSpace;
    assert(Hi - Lo >= 2 && "group relabel failed to open a gap");
  }
  return createGroupAfter(G,
                          Lo + std::min((Hi - Lo) / 2, uint64_t(1) << 31));
}

void OrderList::splitGroup(OmGroup *G) {
  ++Relabels;
  // Leave the first GroupTarget members in G and distribute the remainder
  // into fresh groups of GroupTarget members each, inserted after G.
  uint32_t Total = G->Count;
  assert(Total > GroupTarget && "splitting a small group");
  OmNode *N = G->First;
  for (uint32_t I = 0; I < GroupTarget; ++I)
    N = N->Next;
  G->Count = GroupTarget;
  relabelGroupItems(G);

  uint32_t Remaining = Total - GroupTarget;
  OmGroup *Pred = G;
  while (Remaining > 0) {
    uint32_t Take = Remaining < GroupTarget ? Remaining : GroupTarget;
    OmGroup *NewG = freshGroupAfter(Pred);
    NewG->First = N;
    NewG->Count = Take;
    for (uint32_t I = 0; I < Take; ++I) {
      N->Group = NewG;
      N = N->Next;
    }
    relabelGroupItems(NewG);
    Remaining -= Take;
    Pred = NewG;
  }
}

uint64_t OrderList::makeGroupGapAfter(OmGroup *G) {
  ++Relabels;
  ++RangeRelabels;
  // Find the smallest aligned label range [RangeBase, RangeBase + Width)
  // around G whose density is below the threshold for its height, then
  // spread its groups evenly. This is the list-labeling strategy of
  // Bender et al.; it gives amortized O(log n) group relabeling, which
  // the two-level structure turns into amortized O(1) per insertion.
  //
  // The threshold must *decrease geometrically with height*: a flat
  // cutoff (say 1/2 at every width) accepts the smallest window that
  // barely clears it, redistributes with gaps of ~2, and the very next
  // split at the same position exhausts the gap again — a relabeling
  // cascade that turns steady-state churn at one trace position (the
  // change-propagation cursor) into a near-every-propagation O(groups)
  // relabel. Shrinking the allowance by Alpha per doubling means an
  // accepted window is redistributed with gaps that grow exponentially
  // in its height, so the same position absorbs many more splits before
  // the window overflows again.
  constexpr double Alpha = 0.9;
  double Tau = 1.0;
  for (uint64_t Width = 4; Width <= GroupLabelSpace; Width <<= 1) {
    Tau *= Alpha;
    uint64_t RangeBase =
        Width >= GroupLabelSpace ? 0 : (G->Label & ~(Width - 1));
    uint64_t RangeEnd = RangeBase + Width; // Exclusive; no overflow: <= 2^62.
    // Count member groups by walking outward from G.
    OmGroup *Lo = G;
    while (Lo->Prev && Lo->Prev->Label >= RangeBase)
      Lo = Lo->Prev;
    uint64_t Count = 0;
    OmGroup *Cursor = Lo;
    while (Cursor && Cursor->Label < RangeEnd) {
      ++Count;
      Cursor = Cursor->Next;
    }
    if (2.0 * double(Count + 1) > Tau * double(Width))
      continue; // Too dense for this height; widen the range.
    uint64_t Gap = Width / (Count + 1);
    assert(Gap >= 2 && "density bound guarantees usable gaps");
    Cursor = Lo;
    uint64_t Index = 1;
    while (Cursor && Index <= Count) {
      Cursor->Label = RangeBase + Gap * Index;
      Cursor = Cursor->Next;
      ++Index;
    }
    return G->Label;
  }
  std::fprintf(stderr, "OrderList: group label space exhausted\n");
  std::abort();
}

void OrderList::verifyInvariants() const {
  size_t SeenNodes = 0;
  const OmGroup *G = FirstGroup;
  const OmNode *Expected = Base;
  uint64_t PrevGroupLabel = 0;
  bool FirstGroupSeen = true;
  while (G) {
    if (!FirstGroupSeen)
      assert(G->Label > PrevGroupLabel && "group labels must increase");
    FirstGroupSeen = false;
    PrevGroupLabel = G->Label;
    assert(G->Count > 0 && "empty group left in list");
    assert(G->First == Expected && "group First out of sync");
    const OmNode *N = G->First;
    uint64_t PrevLabel = 0;
    for (uint32_t I = 0; I < G->Count; ++I) {
      assert(N && "group count exceeds chain length");
      assert(N->Group == G && "node points at wrong group");
      if (I > 0)
        assert(N->Label > PrevLabel && "item labels must increase");
      PrevLabel = N->Label;
      ++SeenNodes;
      Expected = N->Next;
      N = N->Next;
    }
    G = G->Next;
  }
  assert(Expected == nullptr && "trailing nodes beyond last group");
  assert(SeenNodes == Size && "size accounting out of sync");
  (void)SeenNodes;
  (void)Expected;
  (void)PrevGroupLabel;
}
