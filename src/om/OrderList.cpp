//===- om/OrderList.cpp - Order-maintenance list --------------------------===//

#include "om/OrderList.h"

#include "support/simd/Simd.h"

#include <cassert>
#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstdlib>

using namespace ceal;

OrderList::OrderList() { rebuildEmpty(); }

void OrderList::rebuildEmpty() {
  FillLimit = GroupLimit;
  AppendActive = false;
  auto *G = Allocator.create<OmGroup>();
  G->Prev = G->Next = nullptr;
  G->Label = GroupLabelSpace / 2;
  G->Count = 1;
  FirstGroup = G;

  auto *N = Allocator.create<OmNode>();
  N->Prev = N->Next = nullptr;
  N->Group = G;
  N->Label = UINT64_MAX / 2;
  N->Item = 0;
  G->First = N;
  Base = N;
  Size = 1;
}

/// Out-of-line continuation of insertAfter: the group is full or the
/// labels left no room, so rebalance (split or relabel) and retry. The
/// retry loop re-runs the fast-path placement logic because rebalancing
/// changes group membership and labels.
OmNode *OrderList::insertAfterSlow(OmNode *X, OmItem Item) {
  if (AppendActive)
    return appendSlow(X, Item);
  for (;;) {
    OmGroup *G = X->Group;
    uint64_t Lo = X->Label;
    bool NextInGroup = X->Next && X->Next->Group == G;
    uint64_t Hi = NextInGroup ? X->Next->Label : UINT64_MAX;
    if (Hi - Lo >= 2 && G->Count < GroupLimit) {
      auto *N = Allocator.create<OmNode>();
      N->Label = Lo + std::min((Hi - Lo) / 2, AppendGap);
      N->Group = G;
      N->Item = Item;
      N->Prev = X;
      N->Next = X->Next;
      if (X->Next)
        X->Next->Prev = N;
      X->Next = N;
      ++G->Count;
      bumpSize(1);
      return N;
    }
    if (G->Count >= GroupLimit) {
      // Group-structure edits (splits create groups and may trigger a
      // range relabel) serialize across workers while armed.
      MaybeLockGuard L(ArmedHere, StructLock);
      splitGroup(G);
    } else {
      // Item relabels stay within G — a group never spans two worker
      // regions after isolateBoundary, so no lock is needed.
      relabelGroupItems(G);
    }
  }
}

/// Append-mode slow path (see beginAppend): never rewrites an existing
/// label. A monotone insertion run only ever lands here when the group at
/// the cursor is full or the in-group label gap is spent, and both cases
/// resolve by opening a fresh group — O(1) per insertion (the suffix peel
/// is bounded by GroupLimit and each peeled node prepays the fresh group
/// it lands in).
OmNode *OrderList::appendSlow(OmNode *X, OmItem Item) {
  assert(!ParallelArmed && "append mode is single-threaded");
  for (;;) {
    OmGroup *G = X->Group;
    if (X->Next && X->Next->Group == G) {
      // Mid-group position (the cursor re-entered an interval): peel the
      // in-group suffix after X into a fresh group under bump labels, so
      // X becomes a group tail with the full label space above it.
      OmGroup *NewG = freshGroupAfter(G);
      OmNode *N = X->Next;
      NewG->First = N;
      uint32_t Moved = 0;
      uint64_t Label = AppendGap;
      while (N && N->Group == G) {
        N->Group = NewG;
        N->Label = Label;
        Label += AppendGap;
        ++Moved;
        N = N->Next;
      }
      NewG->Count = Moved;
      assert(G->Count > Moved && "peel must leave X behind");
      G->Count -= Moved;
      continue;
    }
    if (G->Count >= FillLimit || UINT64_MAX - X->Label < 2) {
      // Group tail, but the group is at the append-mode fill target or
      // the label space above X is gone: start a fresh group after G and
      // put the new node there.
      OmGroup *NewG = freshGroupAfter(G);
      auto *N = Allocator.create<OmNode>();
      N->Label = AppendGap;
      N->Group = NewG;
      N->Item = Item;
      N->Prev = X;
      N->Next = X->Next;
      if (X->Next)
        X->Next->Prev = N;
      X->Next = N;
      NewG->First = N;
      NewG->Count = 1;
      ++Size;
      return N;
    }
    // A peel above turned X into a group tail with room: bump insert.
    auto *N = Allocator.create<OmNode>();
    N->Label = X->Label + std::min((UINT64_MAX - X->Label) / 2, AppendGap);
    N->Group = G;
    N->Item = Item;
    N->Prev = X;
    N->Next = X->Next;
    if (X->Next)
      X->Next->Prev = N;
    X->Next = N;
    ++G->Count;
    ++Size;
    return N;
  }
}

/// Unlinks and frees a group whose last member was just removed.
void OrderList::removeEmptyGroup(OmGroup *G) {
  if (__builtin_expect(ArmedHere, 0)) {
    // Keep the group linked and labeled: a concurrent cross-region order
    // query may have loaded a node's group pointer just before its last
    // member migrated or died, and will still dereference this group's
    // label. Deferred groups stay in the chain (so range relabels keep
    // their labels current) and are unlinked by endParallel.
    SpinLockGuard L(StructLock);
    EmptyGroups.push_back(G);
    return;
  }
  if (G->Prev)
    G->Prev->Next = G->Next;
  else
    FirstGroup = G->Next;
  if (G->Next)
    G->Next->Prev = G->Prev;
  Allocator.destroy(G);
}

void OrderList::relabelGroupItems(OmGroup *G) {
  ++Relabels;
  assert(G->Count > 0 && "relabeling an empty group");
  uint64_t Gap = UINT64_MAX / (uint64_t(G->Count) + 1);
  // The label rewrite goes through the vectorized relabel kernel, which
  // may speculatively *read* Next fields of arena addresses near the
  // chain; hand it the arena's bump extent as the speculation window
  // only when no parallel phase is armed — a concurrent worker may be
  // writing neighboring nodes, and the serial chase (null window)
  // touches exactly the chain's own nodes, exactly as the plain loop
  // did. Label stores stay plain either way: a group never spans worker
  // regions, so armed-mode item labels are read only by their owner.
  const void *WinLo = nullptr, *WinHi = nullptr;
  if (!ParallelArmed) {
    WinLo = Allocator.regionBase();
    WinHi = static_cast<const char *>(WinLo) + Allocator.bumpUsedBytes();
  }
  simd::omRelabel(G->First, G->Count, /*Base=*/0, Gap, offsetof(OmNode, Next),
                  offsetof(OmNode, Label), WinLo, WinHi);
}

OmGroup *OrderList::createGroupAfter(OmGroup *G, uint64_t Label) {
  auto *NewG = Allocator.create<OmGroup>();
  NewG->Label = Label;
  NewG->Count = 0;
  NewG->First = nullptr;
  NewG->Prev = G;
  NewG->Next = G->Next;
  if (G->Next)
    G->Next->Prev = NewG;
  G->Next = NewG;
  return NewG;
}

OmGroup *OrderList::freshGroupAfter(OmGroup *G) {
  uint64_t Lo = G->Label;
  uint64_t Hi = G->Next ? G->Next->Label : GroupLabelSpace;
  if (Hi - Lo < 2) {
    Lo = makeGroupGapAfter(G);
    Hi = G->Next ? G->Next->Label : GroupLabelSpace;
    assert(Hi - Lo >= 2 && "group relabel failed to open a gap");
  }
  return createGroupAfter(G,
                          Lo + std::min((Hi - Lo) / 2, uint64_t(1) << 31));
}

void OrderList::splitGroup(OmGroup *G) {
  ++Relabels;
  // Leave the first GroupTarget members in G and distribute the remainder
  // into fresh groups of GroupTarget members each, inserted after G.
  uint32_t Total = G->Count;
  assert(Total > GroupTarget && "splitting a small group");
  OmNode *N = G->First;
  for (uint32_t I = 0; I < GroupTarget; ++I)
    N = N->Next;
  G->Count = GroupTarget;
  relabelGroupItems(G);

  uint32_t Remaining = Total - GroupTarget;
  OmGroup *Pred = G;
  while (Remaining > 0) {
    uint32_t Take = Remaining < GroupTarget ? Remaining : GroupTarget;
    OmGroup *NewG = freshGroupAfter(Pred);
    NewG->First = N;
    NewG->Count = Take;
    for (uint32_t I = 0; I < Take; ++I) {
      if (ArmedHere)
        // Release pairs with the acquire group-pointer load in
        // precedesArmed: a cross-region query that observes the
        // migration must also see NewG's label.
        __atomic_store_n(&N->Group, NewG, __ATOMIC_RELEASE);
      else
        N->Group = NewG;
      N = N->Next;
    }
    relabelGroupItems(NewG);
    Remaining -= Take;
    Pred = NewG;
  }
}

uint64_t OrderList::makeGroupGapAfter(OmGroup *G) {
  ++Relabels;
  ++RangeRelabels;
  // Find the smallest aligned label range [RangeBase, RangeBase + Width)
  // around G whose density is below the threshold for its height, then
  // spread its groups evenly. This is the list-labeling strategy of
  // Bender et al.; it gives amortized O(log n) group relabeling, which
  // the two-level structure turns into amortized O(1) per insertion.
  //
  // The threshold must *decrease geometrically with height*: a flat
  // cutoff (say 1/2 at every width) accepts the smallest window that
  // barely clears it, redistributes with gaps of ~2, and the very next
  // split at the same position exhausts the gap again — a relabeling
  // cascade that turns steady-state churn at one trace position (the
  // change-propagation cursor) into a near-every-propagation O(groups)
  // relabel. Shrinking the allowance by Alpha per doubling means an
  // accepted window is redistributed with gaps that grow exponentially
  // in its height, so the same position absorbs many more splits before
  // the window overflows again.
  constexpr double Alpha = 0.9;
  double Tau = 1.0;
  for (uint64_t Width = 4; Width <= GroupLabelSpace; Width <<= 1) {
    Tau *= Alpha;
    uint64_t RangeBase =
        Width >= GroupLabelSpace ? 0 : (G->Label & ~(Width - 1));
    uint64_t RangeEnd = RangeBase + Width; // Exclusive; no overflow: <= 2^62.
    // Count member groups by walking outward from G.
    OmGroup *Lo = G;
    while (Lo->Prev && Lo->Prev->Label >= RangeBase)
      Lo = Lo->Prev;
    uint64_t Count = 0;
    OmGroup *Cursor = Lo;
    while (Cursor && Cursor->Label < RangeEnd) {
      ++Count;
      Cursor = Cursor->Next;
    }
    if (2.0 * double(Count + 1) > Tau * double(Width))
      continue; // Too dense for this height; widen the range.
    uint64_t Gap = Width / (Count + 1);
    assert(Gap >= 2 && "density bound guarantees usable gaps");
    Cursor = Lo;
    uint64_t Index = 1;
    if (__builtin_expect(ParallelArmed, 0)) {
      // Seqlock write side: make the epoch odd, publish the new labels
      // with atomic stores, make it even again. precedesArmed retries
      // any query whose label loads overlapped the odd window.
      LabelEpoch.fetch_add(1, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_release);
      while (Cursor && Index <= Count) {
        __atomic_store_n(&Cursor->Label, RangeBase + Gap * Index,
                         __ATOMIC_RELAXED);
        Cursor = Cursor->Next;
        ++Index;
      }
      LabelEpoch.fetch_add(1, std::memory_order_release);
    } else {
      // Same chain-relabel shape as relabelGroupItems, over the group
      // chain instead of a node chain; single-threaded here, so the
      // kernel gets the full arena extent as its speculation window.
      const void *WinLo = Allocator.regionBase();
      const void *WinHi =
          static_cast<const char *>(WinLo) + Allocator.bumpUsedBytes();
      simd::omRelabel(Lo, Count, RangeBase, Gap, offsetof(OmGroup, Next),
                      offsetof(OmGroup, Label), WinLo, WinHi);
    }
    return G->Label;
  }
  std::fprintf(stderr, "OrderList: group label space exhausted\n");
  std::abort();
}

bool OrderList::precedesArmed(const OmNode *A, const OmNode *B) {
  // Seqlock read side. Group pointers are acquire-loaded: a node may be
  // mid-migration into a freshly split group, and the acquire pairs with
  // the release store in splitGroup so the new group's label is visible
  // before the migration is. Group labels are validated against the
  // relabel epoch; a range relabel overlapping the two loads forces a
  // retry. Deferred empty-group reclamation (removeEmptyGroup while
  // armed) guarantees both group pointers stay dereferenceable and
  // currently labeled for the whole window.
  for (;;) {
    uint64_t E0 = LabelEpoch.load(std::memory_order_acquire);
    if (E0 & 1) {
      cpuRelax();
      continue;
    }
    const OmGroup *GA = __atomic_load_n(&A->Group, __ATOMIC_ACQUIRE);
    const OmGroup *GB = __atomic_load_n(&B->Group, __ATOMIC_ACQUIRE);
    if (GA == GB)
      // One group never spans two worker regions (isolateBoundary), so
      // both nodes belong to the calling worker and their item labels
      // are quiescent from its perspective.
      return A->Label < B->Label;
    uint64_t LA = __atomic_load_n(&GA->Label, __ATOMIC_RELAXED);
    uint64_t LB = __atomic_load_n(&GB->Label, __ATOMIC_RELAXED);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (LabelEpoch.load(std::memory_order_relaxed) == E0)
      return LA < LB;
    cpuRelax();
  }
}

void OrderList::isolateBoundary(OmNode *N) {
  assert(!ArmedHere && "isolate boundaries before arming");
  OmGroup *G = N->Group;
  if (G->First == N)
    return;
  // Peel N and its in-group successors into a fresh group, keeping every
  // node label (the suffix's labels are increasing, and the fresh group's
  // label sits strictly between G's and its successor's, so the total
  // order is unchanged).
  OmGroup *NewG = freshGroupAfter(G);
  NewG->First = N;
  uint32_t Moved = 0;
  for (OmNode *C = N; C && C->Group == G; C = C->Next) {
    C->Group = NewG;
    ++Moved;
  }
  NewG->Count = Moved;
  assert(G->Count > Moved && "peel must leave the prefix behind");
  G->Count -= Moved;
}

void OrderList::beginParallel(unsigned Shards) {
  assert(!ParallelArmed && "a list is already armed for parallel mode");
  assert(!AppendActive && "cannot arm during append mode");
  assert(EmptyGroups.empty() && "deferred groups left from a prior phase");
  Allocator.beginShards(Shards);
  ArmedHere = true;
  ParallelArmed = true;
}

void OrderList::endParallel() {
  assert(ArmedHere && "endParallel without beginParallel");
  ParallelArmed = false;
  ArmedHere = false;
  Allocator.endShards();
  for (OmGroup *G : EmptyGroups) {
    assert(G->Count == 0 && "deferred empty group gained members");
    if (G->Prev)
      G->Prev->Next = G->Next;
    else
      FirstGroup = G->Next;
    if (G->Next)
      G->Next->Prev = G->Prev;
    Allocator.destroy(G);
  }
  EmptyGroups.clear();
}

void OrderList::verifyInvariants() const {
  size_t SeenNodes = 0;
  const OmGroup *G = FirstGroup;
  const OmNode *Expected = Base;
  uint64_t PrevGroupLabel = 0;
  bool FirstGroupSeen = true;
  while (G) {
    if (!FirstGroupSeen)
      assert(G->Label > PrevGroupLabel && "group labels must increase");
    FirstGroupSeen = false;
    PrevGroupLabel = G->Label;
    assert(G->Count > 0 && "empty group left in list");
    assert(G->First == Expected && "group First out of sync");
    const OmNode *N = G->First;
    uint64_t PrevLabel = 0;
    for (uint32_t I = 0; I < G->Count; ++I) {
      assert(N && "group count exceeds chain length");
      assert(N->Group == G && "node points at wrong group");
      if (I > 0)
        assert(N->Label > PrevLabel && "item labels must increase");
      PrevLabel = N->Label;
      ++SeenNodes;
      Expected = N->Next;
      N = N->Next;
    }
    G = G->Next;
  }
  assert(Expected == nullptr && "trailing nodes beyond last group");
  assert(SeenNodes == Size && "size accounting out of sync");
  (void)SeenNodes;
  (void)Expected;
  (void)PrevGroupLabel;
}
