//===- om/OrderList.h - Order-maintenance list -----------------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An order-maintenance data structure supporting insert-after, delete, and
/// order queries in amortized O(1) time (Dietz and Sleator, 1987-style,
/// using the two-level scheme with list relabeling in the upper level).
///
/// The self-adjusting run-time system uses one OrderList as its global
/// trace: every traced action (read, write, allocation, interval end) owns
/// one node, order queries implement "did this read happen before that
/// write", and in-order traversal between two nodes enumerates the trace
/// interval that change propagation must revoke.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_OM_ORDERLIST_H
#define CEAL_OM_ORDERLIST_H

#include "support/Arena.h"
#include "support/SpinLock.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

namespace ceal {

class OrderList;
struct OmGroup;

/// The opaque client payload of a timestamp: the run-time system stores a
/// back-reference to the owning trace node here. Under the compressed
/// trace layout this is a 32-bit arena handle (with the top bit free for
/// the end-marker tag — see runtime/Trace.h); under CEAL_WIDE_TRACE it is
/// pointer-sized and carries raw pointer bits (low-bit tag). Zero means
/// "no payload" in both.
#ifdef CEAL_WIDE_TRACE
using OmItem = uintptr_t;
#else
using OmItem = uint32_t;
#endif

/// One position in the total order. Nodes carry an opaque client payload
/// (the run-time system stores its trace item here).
struct OmNode {
  OmNode *Prev;
  OmNode *Next;
  OmGroup *Group;
  uint64_t Label;
  OmItem Item;
};

/// A group of up to OrderList::GroupLimit consecutive nodes. Groups carry
/// the upper-level labels that make cross-group comparisons O(1).
struct OmGroup {
  OmGroup *Prev;
  OmGroup *Next;
  OmNode *First; ///< First member in order; members are Count nodes from
                 ///< here via OmNode::Next.
  uint64_t Label;
  uint32_t Count;
};

/// The order-maintenance list. Always contains at least the base() node,
/// which precedes every other node and cannot be removed.
class OrderList {
public:
  OrderList();
  OrderList(const OrderList &) = delete;
  OrderList &operator=(const OrderList &) = delete;
  ~OrderList() = default; // Arena reclaims all nodes.

  /// The minimum node; created by the constructor, never removed.
  OmNode *base() { return Base; }
  const OmNode *base() const { return Base; }

  /// Inserts a new node immediately after \p X in the order and returns
  /// it. The common case — label room between X and its in-group
  /// successor, group under its member limit — is inlined; rebalancing
  /// (group split or item relabel) goes out of line.
  OmNode *insertAfter(OmNode *X, OmItem Item = 0) {
    assert(X && "insertAfter requires a position");
    OmGroup *G = X->Group;
    uint64_t Lo = X->Label;
    bool NextInGroup = X->Next && X->Next->Group == G;
    uint64_t Hi = NextInGroup ? X->Next->Label : UINT64_MAX;
    if (Hi - Lo >= 2 && G->Count < FillLimit) {
      auto *N = Allocator.create<OmNode>();
      N->Label = Lo + std::min((Hi - Lo) / 2, AppendGap);
      N->Group = G;
      N->Item = Item;
      N->Prev = X;
      N->Next = X->Next;
      if (X->Next)
        X->Next->Prev = N;
      X->Next = N;
      ++G->Count;
      bumpSize(1);
      return N;
    }
    return insertAfterSlow(X, Item);
  }

  /// Removes \p X (which must not be base()) from the order and frees it.
  void remove(OmNode *X) {
    assert(X != Base && "the base timestamp cannot be removed");
    OmGroup *G = X->Group;
    if (G->First == X)
      G->First = (G->Count > 1) ? X->Next : nullptr;
    if (X->Prev)
      X->Prev->Next = X->Next;
    if (X->Next)
      X->Next->Prev = X->Prev;
    --G->Count;
    bumpSize(-1);
    Allocator.destroy(X);
    if (G->Count == 0)
      removeEmptyGroup(G);
  }

  /// Enters append mode: a construction-time policy switch for monotone
  /// insertion. The inlined insertAfter fast path is already a label bump;
  /// append mode changes what happens when that bump runs out of room.
  /// Instead of splitting or relabeling (which touches existing nodes and
  /// pays the Bender density machinery), a full group at the insertion
  /// point opens a *fresh* group after it, and a mid-group position whose
  /// label gap is exhausted peels its in-group suffix into a fresh group
  /// so the position becomes a group tail with the whole 64-bit label
  /// space above it. No existing label is ever rewritten, so a monotone
  /// run of insertions — the initial trace run, or the re-traced prefix
  /// of a re-executed interval — costs O(1) worst case per insertion, not
  /// just amortized. All structural invariants are maintained
  /// continuously (interleaved remove() calls are fine), so
  /// finalizeAppend() needs no repair pass; it only restores the
  /// density-balanced rebalancing policy for general-order insertions.
  ///
  /// While appending, groups are filled only to GroupTarget — the same
  /// occupancy a split leaves behind — so the trace construction ends
  /// with every group half-open and later general-order insertions (the
  /// propagation churn) do not pay a split at each fresh position.
  void beginAppend() {
    AppendActive = true;
    FillLimit = GroupTarget;
  }

  /// Leaves append mode (see beginAppend). The structure is valid at
  /// every point in between, so this is just the policy switch back.
  void finalizeAppend() {
    AppendActive = false;
    FillLimit = GroupLimit;
  }

  /// True while the append-mode insertion policy is active.
  bool inAppendMode() const { return AppendActive; }

  /// Returns true iff \p A is strictly before \p B in the order.
  static bool precedes(const OmNode *A, const OmNode *B) {
    if (__builtin_expect(ParallelArmed, 0))
      return precedesArmed(A, B);
    if (A->Group == B->Group)
      return A->Label < B->Label;
    return A->Group->Label < B->Group->Label;
  }

  /// Splits \p N's group (if needed) so that \p N becomes the first member
  /// of a group, without changing any label. Afterwards no group spans the
  /// boundary between N->Prev and N, so node-level mutations strictly
  /// before N and at-or-after N touch disjoint groups. Single-threaded;
  /// call before beginParallel().
  void isolateBoundary(OmNode *N);

  /// Arms the list for concurrent per-region mutation by the parallel
  /// propagator: order queries switch to a seqlock over group labels,
  /// group-structure edits serialize on an internal lock, empty groups are
  /// deferred rather than freed (a concurrent cross-region query may still
  /// be reading their label), and the node arena enters shard mode. The
  /// regions must first be separated with isolateBoundary so that plain
  /// node-level operations stay group-disjoint across workers.
  void beginParallel(unsigned Shards);

  /// Disarms parallel mode: frees deferred empty groups and merges the
  /// arena shards. Single-threaded; call after all workers joined.
  void endParallel();

  /// True while armed by beginParallel.
  bool inParallelMode() const { return ArmedHere; }

  /// Successor of \p X in the order, or null if X is the maximum.
  static OmNode *next(OmNode *X) { return X->Next; }
  /// Predecessor of \p X in the order, or null if X is base().
  static OmNode *prev(OmNode *X) { return X->Prev; }

  /// Handle minting/resolution against this list's node arena, so trace
  /// nodes can reference their timestamps in 4 bytes (see Arena::Handle).
  OmNode *nodeAt(Handle<OmNode> H) const { return Allocator.ptr(H); }

  /// The arena the timestamps live in (memory accounting).
  const Arena &arena() const { return Allocator; }
  Handle<OmNode> handleOf(const OmNode *N) const {
    return Allocator.handle(N);
  }

  /// Pre-reserves node and group storage for about \p ExpectedNodes
  /// further insertions (input-size hint; see Arena::reserve).
  void reserve(size_t ExpectedNodes) {
    Allocator.reserve(ExpectedNodes * Arena::accountedSize(sizeof(OmNode)) +
                      (ExpectedNodes / GroupTarget + 1) *
                          Arena::accountedSize(sizeof(OmGroup)));
  }

  /// Number of nodes currently in the list (including base()).
  size_t size() const { return Size; }

  /// Number of group-relabel operations performed (for tests/stats).
  size_t relabelCount() const { return Relabels; }

  /// Number of expensive group-range relabelings (the Bender-style
  /// redistribution); regression guard against label-space pathologies.
  size_t rangeRelabelCount() const { return RangeRelabels; }

  /// Verifies all internal invariants; used by tests. Aborts on violation.
  void verifyInvariants() const;

private:
  friend struct OmGroup;
  /// The trace sanitizer walks groups/nodes directly so it can *report*
  /// violations (verifyInvariants aborts on the first one).
  friend class TraceAudit;
  /// The snapshot subsystem serializes and restores the list's scalar
  /// state (base/first-group pointers, size, policy) around an arena
  /// remap (see runtime/Snapshot).
  friend class Snapshot;

  /// (Re)creates the pristine one-node list inside the current region;
  /// the constructor's body, also used to recover a usable empty list
  /// after a failed snapshot claim remapped the arena.
  void rebuildEmpty();

  static constexpr uint32_t GroupLimit = 64;
  static constexpr uint32_t GroupTarget = 32;
  /// Upper-level label space: [0, 2^62).
  static constexpr uint64_t GroupLabelSpace = uint64_t(1) << 62;
  /// Appending halves the remaining label space if done by midpoint,
  /// which exhausts it after ~64 insertions and triggers pathological
  /// relabeling; bound the gap so appends consume label space linearly.
  static constexpr uint64_t AppendGap = uint64_t(1) << 32;

  /// Armed-mode order query: validates an epoch-stamped snapshot of the
  /// two group labels against concurrent range relabels (seqlock).
  static bool precedesArmed(const OmNode *A, const OmNode *B);

  /// Size accounting: plain in sequential mode, atomic while any list in
  /// the process is armed (cross-worker inserts/removes race on it).
  void bumpSize(int64_t Delta) {
    if (__builtin_expect(ParallelArmed, 0))
      __atomic_fetch_add(&Size, size_t(Delta), __ATOMIC_RELAXED);
    else
      Size += size_t(Delta);
  }

  OmNode *insertAfterSlow(OmNode *X, OmItem Item);
  OmNode *appendSlow(OmNode *X, OmItem Item);
  void removeEmptyGroup(OmGroup *G);
  OmGroup *createGroupAfter(OmGroup *G, uint64_t Label);
  /// Creates an empty group after \p G with a label midway to its
  /// successor (bounded by the append stride), relabeling the enclosing
  /// group range first if the upper-level label space is exhausted there.
  OmGroup *freshGroupAfter(OmGroup *G);
  void splitGroup(OmGroup *G);
  void relabelGroupItems(OmGroup *G);
  /// Makes room in the group-label space around \p G so that a new group
  /// can be inserted after it; relabels a low-density enclosing range.
  uint64_t makeGroupGapAfter(OmGroup *G);

  Arena Allocator;
  OmNode *Base = nullptr;
  OmGroup *FirstGroup = nullptr;
  size_t Size = 0;
  size_t Relabels = 0;
  size_t RangeRelabels = 0;
  /// Group occupancy at which insertAfter leaves the fast path: the
  /// GroupLimit capacity normally, GroupTarget during append mode (see
  /// beginAppend).
  uint32_t FillLimit = GroupLimit;
  bool AppendActive = false;

  /// Process-wide "some list is armed" flag, consulted by the static
  /// precedes(). Toggled only single-threaded (before worker spawn /
  /// after join), so the plain read is race-free: workers inherit the
  /// armed value via the thread-start happens-before edge.
  inline static bool ParallelArmed = false;
  /// Seqlock epoch over group labels: makeGroupGapAfter (the only
  /// mutation of an *existing* group's label) makes it odd for the
  /// duration of a relabel; precedesArmed retries across odd epochs.
  inline static std::atomic<uint64_t> LabelEpoch{0};
  /// True on the instance beginParallel() armed (the propagating trace).
  bool ArmedHere = false;
  /// Serializes group-structure edits (split, fresh/create group, range
  /// relabel, empty-group deferral) across workers while armed.
  SpinLock StructLock;
  /// Groups emptied while armed: kept linked and labeled until
  /// endParallel so concurrent order queries that cached a pointer to
  /// them keep reading a current label.
  std::vector<OmGroup *> EmptyGroups;
};

} // namespace ceal

#endif // CEAL_OM_ORDERLIST_H
