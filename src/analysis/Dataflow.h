//===- analysis/Dataflow.h - Generic dataflow framework --------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reusable iterative dataflow framework over CL control-flow graphs:
/// a dense bitset domain (\c BitVec), a per-function CFG view (\c
/// BlockCfg, optionally treating read-continuation entries as extra
/// roots, matching analysis::ProgramGraph), and a worklist solver for
/// forward/backward gen-kill problems under union or intersection meet.
///
/// NORMALIZE's liveness, reaching definitions, redundant-read and
/// dead-write detection, and the cl-lint checks are all instances.
/// Control flow may be arbitrary (including irreducible graphs); the
/// solver iterates to the unique fixed point of the monotone gen-kill
/// transfer functions.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_ANALYSIS_DATAFLOW_H
#define CEAL_ANALYSIS_DATAFLOW_H

#include "cl/Ir.h"

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

namespace ceal {
namespace analysis {

//===----------------------------------------------------------------------===//
// BitVec
//===----------------------------------------------------------------------===//

/// A dense, fixed-size bit vector backed by 64-bit words, so counting
/// (popcount) and set algebra run a word at a time instead of a bit at a
/// time as the previous vector<bool> rows did.
class BitVec {
public:
  BitVec() = default;
  explicit BitVec(size_t N, bool Value = false)
      : NumBits(N), Words((N + 63) / 64, Value ? ~uint64_t(0) : 0) {
    trim();
  }

  size_t size() const { return NumBits; }
  bool empty() const { return NumBits == 0; }

  bool test(size_t I) const {
    return (Words[I / 64] >> (I % 64)) & 1;
  }
  void set(size_t I) { Words[I / 64] |= uint64_t(1) << (I % 64); }
  void reset(size_t I) { Words[I / 64] &= ~(uint64_t(1) << (I % 64)); }

  void clearAll() {
    for (uint64_t &W : Words)
      W = 0;
  }
  void setAll() {
    for (uint64_t &W : Words)
      W = ~uint64_t(0);
    trim();
  }

  /// Number of set bits (word-at-a-time popcount).
  size_t count() const {
    size_t N = 0;
    for (uint64_t W : Words)
      N += static_cast<size_t>(std::popcount(W));
    return N;
  }
  bool none() const {
    for (uint64_t W : Words)
      if (W)
        return false;
    return true;
  }

  /// this |= O; returns true iff any bit changed.
  bool unionWith(const BitVec &O) {
    assert(NumBits == O.NumBits && "bit vector sizes must match");
    bool Changed = false;
    for (size_t I = 0; I < Words.size(); ++I) {
      uint64_t New = Words[I] | O.Words[I];
      Changed |= New != Words[I];
      Words[I] = New;
    }
    return Changed;
  }

  /// this &= O; returns true iff any bit changed.
  bool intersectWith(const BitVec &O) {
    assert(NumBits == O.NumBits && "bit vector sizes must match");
    bool Changed = false;
    for (size_t I = 0; I < Words.size(); ++I) {
      uint64_t New = Words[I] & O.Words[I];
      Changed |= New != Words[I];
      Words[I] = New;
    }
    return Changed;
  }

  /// this &= ~O.
  void subtract(const BitVec &O) {
    assert(NumBits == O.NumBits && "bit vector sizes must match");
    for (size_t I = 0; I < Words.size(); ++I)
      Words[I] &= ~O.Words[I];
  }

  bool operator==(const BitVec &O) const {
    return NumBits == O.NumBits && Words == O.Words;
  }
  bool operator!=(const BitVec &O) const { return !(*this == O); }

  /// Calls \p Fn(index) for every set bit, in ascending order.
  template <typename FnT> void forEach(FnT Fn) const {
    for (size_t WI = 0; WI < Words.size(); ++WI) {
      uint64_t W = Words[WI];
      while (W) {
        unsigned B = static_cast<unsigned>(std::countr_zero(W));
        Fn(WI * 64 + B);
        W &= W - 1;
      }
    }
  }

  /// The set bits in ascending order (deterministic enumeration).
  std::vector<uint32_t> bits() const {
    std::vector<uint32_t> Out;
    forEach([&](size_t I) { Out.push_back(static_cast<uint32_t>(I)); });
    return Out;
  }

private:
  void trim() {
    if (NumBits % 64)
      Words.back() &= (uint64_t(1) << (NumBits % 64)) - 1;
  }

  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

//===----------------------------------------------------------------------===//
// BlockCfg
//===----------------------------------------------------------------------===//

/// The intra-function control-flow graph of a CL function: nodes are
/// block ids, edges are gotos (tails and done leave the function).
///
/// With \p ReadEntriesAreEntries, the continuation block after every
/// read command is an additional entry, mirroring the root edges of
/// analysis::ProgramGraph: change propagation may re-enter the function
/// there. Analyses about a single from-entry execution (reaching defs,
/// availability) use the plain graph; see the soundness note in
/// RedundantOps.h for why that is still correct under re-execution.
struct BlockCfg {
  std::vector<std::vector<cl::BlockId>> Succs;
  std::vector<std::vector<cl::BlockId>> Preds;
  /// Forward entry nodes: block 0, plus read continuations if requested.
  std::vector<cl::BlockId> Entries;
  /// Backward entry nodes: blocks with a tail jump or done.
  std::vector<cl::BlockId> Exits;
  /// Reachable from any entry along Succs.
  std::vector<bool> Reachable;

  size_t size() const { return Succs.size(); }

  static BlockCfg build(const cl::Function &F,
                        bool ReadEntriesAreEntries = false);
};

/// Loop headers of \p F's CFG: targets of DFS back/cross edges that
/// close a cycle (any node that heads a cycle in an irreducible region
/// is reported). Deterministic, ascending block order.
std::vector<cl::BlockId> findLoopHeaders(const BlockCfg &G);

//===----------------------------------------------------------------------===//
// Worklist solver
//===----------------------------------------------------------------------===//

enum class Direction { Forward, Backward };
enum class Meet { Union, Intersect };

/// Per-node gen-kill transfer function: out = Gen ∪ (in \ Kill).
/// ("in" is the meet-side value: In for forward problems, Out for
/// backward ones.) Sequential effects within a block are encoded by the
/// caller: a command that first invalidates everything and then
/// generates one fact is Kill = universe, Gen = {fact}.
struct GenKill {
  BitVec Gen;
  BitVec Kill;
};

struct DataflowProblem {
  Direction Dir = Direction::Forward;
  Meet M = Meet::Union;
  size_t DomainSize = 0;
  /// One transfer function per block.
  std::vector<GenKill> Transfer;
  /// The value at the boundary: In at Entries (forward) or Out at Exits
  /// (backward). Defaults to the empty set.
  BitVec Boundary;
  /// For Meet::Union, unreachable blocks are still solved (they start at
  /// bottom = ∅ and converge; liveness historically included them). For
  /// Meet::Intersect, unreachable blocks keep the universe value and
  /// consumers must filter on BlockCfg::Reachable.
};

struct DataflowResult {
  /// In[b]: value at block entry. Out[b]: value at block exit.
  std::vector<BitVec> In;
  std::vector<BitVec> Out;
};

/// Solves \p P over \p G to the maximal (Intersect) or minimal (Union)
/// fixed point. Deterministic: the worklist is seeded and processed in a
/// fixed order.
DataflowResult solveDataflow(const BlockCfg &G, const DataflowProblem &P);

} // namespace analysis
} // namespace ceal

#endif // CEAL_ANALYSIS_DATAFLOW_H
