//===- analysis/Dataflow.cpp - Generic dataflow framework ------------------===//

#include "analysis/Dataflow.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace ceal;
using namespace ceal::analysis;
using namespace ceal::cl;

BlockCfg BlockCfg::build(const Function &F, bool ReadEntriesAreEntries) {
  size_t N = F.Blocks.size();
  BlockCfg G;
  G.Succs.resize(N);
  G.Preds.resize(N);
  for (BlockId B = 0; B < N; ++B) {
    const BasicBlock &BB = F.Blocks[B];
    auto Add = [&](const Jump &J) {
      if (J.K == Jump::Goto) {
        G.Succs[B].push_back(J.Target);
        G.Preds[J.Target].push_back(B);
      }
    };
    if (BB.K == BasicBlock::Cond) {
      Add(BB.J1);
      Add(BB.J2);
    } else if (BB.K == BasicBlock::Cmd) {
      Add(BB.J);
    }
    bool IsExit = BB.K == BasicBlock::Done ||
                  (BB.K == BasicBlock::Cmd && BB.J.K == Jump::Tail) ||
                  (BB.K == BasicBlock::Cond &&
                   (BB.J1.K == Jump::Tail || BB.J2.K == Jump::Tail));
    if (IsExit)
      G.Exits.push_back(B);
  }
  if (N > 0)
    G.Entries.push_back(0);
  if (ReadEntriesAreEntries) {
    // A read suspends the function; propagation may restart execution at
    // the read's continuation (the tail target is in another function,
    // but a pre-normalization read followed by a goto re-enters here).
    for (BlockId B = 0; B < N; ++B) {
      const BasicBlock &BB = F.Blocks[B];
      if (BB.K == BasicBlock::Cmd && BB.C.K == Command::Read &&
          BB.J.K == Jump::Goto)
        G.Entries.push_back(BB.J.Target);
    }
    std::sort(G.Entries.begin(), G.Entries.end());
    G.Entries.erase(std::unique(G.Entries.begin(), G.Entries.end()),
                    G.Entries.end());
  }

  G.Reachable.assign(N, false);
  std::deque<BlockId> Work(G.Entries.begin(), G.Entries.end());
  for (BlockId E : G.Entries)
    G.Reachable[E] = true;
  while (!Work.empty()) {
    BlockId B = Work.front();
    Work.pop_front();
    for (BlockId S : G.Succs[B])
      if (!G.Reachable[S]) {
        G.Reachable[S] = true;
        Work.push_back(S);
      }
  }
  return G;
}

std::vector<BlockId> analysis::findLoopHeaders(const BlockCfg &G) {
  size_t N = G.size();
  std::vector<BlockId> Headers;
  // Iterative DFS; an edge into a node currently on the DFS stack closes
  // a cycle through that node.
  enum Color : uint8_t { White, Grey, Black };
  std::vector<uint8_t> Col(N, White);
  std::vector<bool> IsHeader(N, false);
  for (BlockId Root : G.Entries) {
    if (Col[Root] != White)
      continue;
    // Stack of (node, next-successor-index).
    std::vector<std::pair<BlockId, size_t>> Stack{{Root, 0}};
    Col[Root] = Grey;
    while (!Stack.empty()) {
      auto &[B, NextI] = Stack.back();
      if (NextI < G.Succs[B].size()) {
        BlockId S = G.Succs[B][NextI++];
        if (Col[S] == White) {
          Col[S] = Grey;
          Stack.emplace_back(S, 0);
        } else if (Col[S] == Grey) {
          IsHeader[S] = true;
        }
      } else {
        Col[B] = Black;
        Stack.pop_back();
      }
    }
  }
  for (BlockId B = 0; B < N; ++B)
    if (IsHeader[B])
      Headers.push_back(B);
  return Headers;
}

DataflowResult analysis::solveDataflow(const BlockCfg &G,
                                       const DataflowProblem &P) {
  size_t N = G.size();
  assert(P.Transfer.size() == N && "one transfer function per block");
  bool Fwd = P.Dir == Direction::Forward;
  BitVec Boundary = P.Boundary.size() == P.DomainSize
                        ? P.Boundary
                        : BitVec(P.DomainSize);

  DataflowResult R;
  R.In.assign(N, BitVec(P.DomainSize));
  R.Out.assign(N, BitVec(P.DomainSize));

  // "MeetIn" is the meet-side slot (In for forward, Out for backward);
  // "FlowOut" the transfer output. Initialize the meet side: bottom for
  // union problems, top (universe) for intersection problems — except at
  // boundary nodes, which hold the boundary value.
  std::vector<BitVec> &MeetIn = Fwd ? R.In : R.Out;
  std::vector<BitVec> &FlowOut = Fwd ? R.Out : R.In;
  const std::vector<std::vector<BlockId>> &MeetPreds =
      Fwd ? G.Preds : G.Succs;
  const std::vector<std::vector<BlockId>> &FlowSuccs =
      Fwd ? G.Succs : G.Preds;
  const std::vector<BlockId> &BoundaryNodes = Fwd ? G.Entries : G.Exits;

  std::vector<bool> IsBoundary(N, false);
  for (BlockId B : BoundaryNodes)
    IsBoundary[B] = true;

  if (P.M == Meet::Intersect)
    for (size_t B = 0; B < N; ++B)
      MeetIn[B].setAll();
  for (BlockId B : BoundaryNodes)
    MeetIn[B] = Boundary;

  auto Apply = [&](size_t B) {
    // FlowOut = Gen ∪ (MeetIn \ Kill).
    BitVec V = MeetIn[B];
    V.subtract(P.Transfer[B].Kill);
    V.unionWith(P.Transfer[B].Gen);
    bool Changed = V != FlowOut[B];
    FlowOut[B] = std::move(V);
    return Changed;
  };

  // Prime every FlowOut from the initialized meet side. Without this,
  // an intersect problem reading a back edge before its source block is
  // processed would meet with an empty (bottom) FlowOut and wrongly
  // drain the set — descending from top requires starting at top.
  for (size_t B = 0; B < N; ++B)
    Apply(B);

  // Seed every node in a deterministic flow order: ascending block id
  // for forward problems, descending for backward (cheap approximations
  // of RPO that match how the builder lays blocks out).
  std::deque<BlockId> Work;
  std::vector<bool> InWork(N, true);
  for (size_t I = 0; I < N; ++I)
    Work.push_back(static_cast<BlockId>(Fwd ? I : N - 1 - I));

  while (!Work.empty()) {
    BlockId B = Work.front();
    Work.pop_front();
    InWork[B] = false;

    // Meet over incoming edges; a boundary node additionally has a
    // virtual edge carrying the boundary value (so a loop back to the
    // entry still meets with Boundary, not just its predecessors).
    if (IsBoundary[B] || !MeetPreds[B].empty()) {
      BitVec V(P.DomainSize);
      if (IsBoundary[B])
        V = Boundary;
      else if (P.M == Meet::Intersect)
        V.setAll();
      for (BlockId Pd : MeetPreds[B]) {
        if (P.M == Meet::Intersect)
          V.intersectWith(FlowOut[Pd]);
        else
          V.unionWith(FlowOut[Pd]);
      }
      MeetIn[B] = std::move(V);
    }
    if (Apply(B))
      for (BlockId S : FlowSuccs[B])
        if (!InWork[S]) {
          InWork[S] = true;
          Work.push_back(S);
        }
  }
  return R;
}
