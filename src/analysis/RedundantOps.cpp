//===- analysis/RedundantOps.cpp - Redundant reads & dead writes -----------===//

#include "analysis/RedundantOps.h"

#include "analysis/Liveness.h"

#include <algorithm>

using namespace ceal;
using namespace ceal::analysis;
using namespace ceal::cl;

namespace {

bool calleeMayWrite(const std::vector<FuncEffects> &FX, FuncId F) {
  return F >= FX.size() || !FX[F].writesNothing();
}
bool calleeMayRead(const std::vector<FuncEffects> &FX, FuncId F) {
  return F >= FX.size() || !FX[F].readsNothing();
}

/// Forward must-availability of read results. Domain: block ids of read
/// commands ("that read has executed, its Src still names the same
/// modref, the modref is unwritten since, and its Dst still holds the
/// value").
void findRedundantReads(const Function &F, const std::vector<FuncEffects> &FX,
                        FuncRedundancy &Out) {
  size_t N = F.Blocks.size();
  DataflowProblem P;
  P.Dir = Direction::Forward;
  P.M = Meet::Intersect;
  P.DomainSize = N;
  P.Transfer.resize(N);

  // Sites keyed by the variables they depend on.
  std::vector<std::vector<BlockId>> SitesUsing(F.Vars.size());
  std::vector<BlockId> ReadSites;
  for (BlockId B = 0; B < N; ++B) {
    const BasicBlock &BB = F.Blocks[B];
    if (BB.K == BasicBlock::Cmd && BB.C.K == Command::Read &&
        BB.C.Src < F.Vars.size() && BB.C.Dst < F.Vars.size()) {
      ReadSites.push_back(B);
      SitesUsing[BB.C.Src].push_back(B);
      if (BB.C.Dst != BB.C.Src)
        SitesUsing[BB.C.Dst].push_back(B);
    }
  }

  for (BlockId B = 0; B < N; ++B) {
    GenKill &T = P.Transfer[B];
    T.Gen = BitVec(N);
    T.Kill = BitVec(N);
    const BasicBlock &BB = F.Blocks[B];
    if (BB.K != BasicBlock::Cmd)
      continue;
    const Command &C = BB.C;
    auto KillDef = [&](VarId V) {
      if (V < F.Vars.size())
        for (BlockId S : SitesUsing[V])
          T.Kill.set(S);
    };
    switch (C.K) {
    case Command::Nop:
    case Command::Store: // Stores never hit modref value cells.
      break;
    case Command::Assign:
      KillDef(C.Dst);
      break;
    case Command::Write:
      // May write any modref the available reads saw (var aliasing).
      T.Kill.setAll();
      break;
    case Command::ModrefAlloc:
      // Allocation (even a memo match) does not write a cell.
      KillDef(C.Dst);
      break;
    case Command::Read:
      KillDef(C.Dst);
      if (C.Src < F.Vars.size() && C.Dst < F.Vars.size())
        T.Gen.set(B);
      break;
    case Command::Alloc:
      if (calleeMayWrite(FX, C.Fn))
        T.Kill.setAll();
      else
        KillDef(C.Dst);
      break;
    case Command::Call:
      if (calleeMayWrite(FX, C.Fn))
        T.Kill.setAll();
      break;
    }
  }

  BlockCfg G = BlockCfg::build(F);
  DataflowResult R = solveDataflow(G, P);
  for (BlockId B : ReadSites) {
    if (!G.Reachable[B])
      continue;
    const Command &C = F.Blocks[B].C;
    // The lowest-numbered available read of the same modref variable.
    BlockId Provider = InvalidId;
    R.In[B].forEach([&](size_t S) {
      if (Provider != InvalidId || S == B)
        return;
      const BasicBlock &SB = F.Blocks[S];
      if (SB.K == BasicBlock::Cmd && SB.C.K == Command::Read &&
          SB.C.Src == C.Src)
        Provider = static_cast<BlockId>(S);
    });
    if (Provider != InvalidId)
      Out.RedundantReads.emplace_back(B, Provider);
  }
}

/// Backward must-analysis: "the modref currently held by variable v is
/// surely written again through v before anything could observe its
/// value". Domain: VarId.
void findDeadWrites(const Function &F, const std::vector<FuncEffects> &FX,
                    FuncRedundancy &Out) {
  size_t N = F.Blocks.size();
  size_t NumVars = F.Vars.size();
  DataflowProblem P;
  P.Dir = Direction::Backward;
  P.M = Meet::Intersect;
  P.DomainSize = NumVars;
  P.Transfer.resize(N);
  // At exits (tail/done) every value may still be observed: Out = ∅.

  for (BlockId B = 0; B < N; ++B) {
    GenKill &T = P.Transfer[B];
    T.Gen = BitVec(NumVars);
    T.Kill = BitVec(NumVars);
    const BasicBlock &BB = F.Blocks[B];
    if (BB.K != BasicBlock::Cmd)
      continue;
    const Command &C = BB.C;
    auto KillDef = [&](VarId V) {
      // v now holds a different modref; later writes through v no
      // longer overwrite the old cell.
      if (V < NumVars)
        T.Kill.set(V);
    };
    switch (C.K) {
    case Command::Nop:
    case Command::Store:
      break;
    case Command::Assign:
      KillDef(C.Dst);
      break;
    case Command::Write:
      // Overwrites exactly the cell v holds; other variables may or may
      // not alias it, so this neither helps nor hurts them.
      if (C.Ref < NumVars)
        T.Gen.set(C.Ref);
      break;
    case Command::ModrefAlloc:
      KillDef(C.Dst);
      break;
    case Command::Read:
      // Observes a cell that may alias anything.
      T.Kill.setAll();
      KillDef(C.Dst);
      break;
    case Command::Alloc:
      if (calleeMayRead(FX, C.Fn))
        T.Kill.setAll();
      KillDef(C.Dst);
      break;
    case Command::Call:
      if (calleeMayRead(FX, C.Fn))
        T.Kill.setAll();
      break;
    }
  }

  BlockCfg G = BlockCfg::build(F);
  DataflowResult R = solveDataflow(G, P);
  for (BlockId B = 0; B < N; ++B) {
    if (!G.Reachable[B])
      continue;
    const BasicBlock &BB = F.Blocks[B];
    if (BB.K == BasicBlock::Cmd && BB.C.K == Command::Write &&
        BB.C.Ref < NumVars && R.Out[B].test(BB.C.Ref))
      Out.DeadWrites.push_back(B);
  }
}

void findLivenessDead(const Function &F, const std::vector<FuncEffects> &FX,
                      FuncRedundancy &Out) {
  LivenessInfo Live = computeLiveness(F);
  BlockCfg G = BlockCfg::build(F);
  for (BlockId B = 0; B < F.Blocks.size(); ++B) {
    if (!G.Reachable[B])
      continue;
    const BasicBlock &BB = F.Blocks[B];
    if (BB.K != BasicBlock::Cmd)
      continue;
    const Command &C = BB.C;
    if (C.K != Command::Assign && C.K != Command::Read &&
        C.K != Command::ModrefAlloc && C.K != Command::Alloc)
      continue;
    if (C.Dst >= F.Vars.size())
      continue;
    bool DstLiveOut = false;
    for (BlockId S : G.Succs[B])
      DstLiveOut |= Live.liveInAt(S, C.Dst);
    if (BB.J.K == Jump::Tail)
      for (VarId A : BB.J.Args)
        DstLiveOut |= A == C.Dst;
    if (DstLiveOut)
      continue;
    switch (C.K) {
    case Command::Assign:
      Out.DeadAssigns.push_back(B);
      break;
    case Command::Read:
      Out.DeadReads.push_back(B);
      break;
    case Command::ModrefAlloc:
      Out.DeadAllocs.push_back(B);
      break;
    case Command::Alloc:
      // The initializer runs; dropping it is unobservable only if it
      // cannot write a modref (its reads create trace dependencies,
      // which never change outputs).
      if (!calleeMayWrite(FX, C.Fn))
        Out.DeadAllocs.push_back(B);
      break;
    default:
      break;
    }
  }
}

} // namespace

RedundancyInfo analysis::computeRedundantOps(const Program &P,
                                             const std::vector<FuncEffects> &FX) {
  RedundancyInfo Info;
  Info.Funcs.resize(P.Funcs.size());
  for (FuncId FI = 0; FI < P.Funcs.size(); ++FI) {
    const Function &F = P.Funcs[FI];
    FuncRedundancy &FR = Info.Funcs[FI];
    findRedundantReads(F, FX, FR);
    findDeadWrites(F, FX, FR);
    findLivenessDead(F, FX, FR);
    std::sort(FR.RedundantReads.begin(), FR.RedundantReads.end());
  }
  return Info;
}
