//===- analysis/Interference.cpp - Parallel-safety interference ------------===//

#include "analysis/Interference.h"

#include "analysis/ReachingDefs.h"

#include <cassert>

using namespace ceal;
using namespace ceal::analysis;
using namespace ceal::cl;

//===----------------------------------------------------------------------===//
// Names
//===----------------------------------------------------------------------===//

static std::string blockLabel(const Program &P, FuncId F, BlockId B) {
  if (F < P.Funcs.size() && B < P.Funcs[F].Blocks.size()) {
    const std::string &L = P.Funcs[F].Blocks[B].Label;
    if (!L.empty())
      return L;
  }
  return "#" + std::to_string(B);
}

std::string RegionClass::name(const Program &Prog) const {
  switch (K) {
  case Site:
    return "site:" + Prog.Funcs[F].Name + ":" + blockLabel(Prog, F, B);
  case Input:
    return "in:" + Prog.Funcs[F].Name + ":" + Prog.Funcs[F].Vars[P].Name;
  case Unknown:
    return "unknown";
  }
  return "?";
}

std::string EntryPoint::name(const Program &Prog) const {
  if (!IsReadEntry)
    return "fn:" + Prog.Funcs[F].Name;
  return "read:" + Prog.Funcs[F].Name + ":" + blockLabel(Prog, F, EntryBlock);
}

const char *analysis::pairRelationName(PairRelation R) {
  switch (R) {
  case PairRelation::Disjoint:
    return "disjoint";
  case PairRelation::Ordered:
    return "ordered";
  case PairRelation::Conflicting:
    return "conflicting";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Summary queries
//===----------------------------------------------------------------------===//

bool InterferenceSummary::overlaps(const BitVec &A, const BitVec &B) const {
  if (A.none() || B.none())
    return false;
  if (A.test(UnknownClass) || B.test(UnknownClass))
    return true;
  BitVec T = A;
  T.intersectWith(B);
  return !T.none();
}

PairRelation InterferenceSummary::classify(const EntryPoint &X,
                                           const EntryPoint &Y) const {
  bool WW = overlaps(X.Writes, Y.Writes);
  bool XReadsY = overlaps(X.Reads, Y.Writes);
  bool YReadsX = overlaps(Y.Reads, X.Writes);
  if (WW || (XReadsY && YReadsX))
    return PairRelation::Conflicting;
  if (XReadsY || YReadsX)
    return PairRelation::Ordered;
  return PairRelation::Disjoint;
}

//===----------------------------------------------------------------------===//
// The analysis
//===----------------------------------------------------------------------===//

namespace {

/// A variable can carry a tracked region value iff its declared type has
/// at least one level of indirection (modref* handles and t* block
/// pointers alike; plain ints never name regions).
bool trackable(const Function &F, VarId V) {
  return V < F.Vars.size() && F.Vars[V].Ty.Indirection >= 1;
}

bool isAllocSite(const BasicBlock &B) {
  return B.K == BasicBlock::Cmd &&
         (B.C.K == Command::ModrefAlloc || B.C.K == Command::Alloc);
}

class Builder {
public:
  explicit Builder(const Program &P) : P(P) {}

  InterferenceSummary run() {
    buildClasses();
    seed();
    solve();
    return finalize();
  }

private:
  //--- Domain construction ----------------------------------------------

  void buildClasses() {
    size_t N = P.Funcs.size();
    InputOf.resize(N);
    SiteOf.resize(N);
    for (FuncId F = 0; F < N; ++F) {
      const Function &Fn = P.Funcs[F];
      InputOf[F].assign(Fn.NumParams, SIZE_MAX);
      SiteOf[F].assign(Fn.Blocks.size(), SIZE_MAX);
      for (VarId Pm = 0; Pm < Fn.NumParams; ++Pm)
        if (trackable(Fn, Pm)) {
          InputOf[F][Pm] = S.Classes.size();
          S.Classes.push_back({RegionClass::Input, F, InvalidId, Pm});
        }
      for (BlockId B = 0; B < Fn.Blocks.size(); ++B)
        if (isAllocSite(Fn.Blocks[B])) {
          SiteOf[F][B] = S.Classes.size();
          S.Classes.push_back({RegionClass::Site, F, B, InvalidId});
        }
    }
    S.UnknownClass = S.Classes.size();
    S.Classes.push_back({RegionClass::Unknown, InvalidId, InvalidId, InvalidId});
    NC = S.Classes.size();
  }

  void seed() {
    size_t N = P.Funcs.size();
    S.Contents.assign(NC, BitVec(NC));
    // Container collapse: everything reachable from an input is the
    // input; unknown contains unknown.
    for (size_t C = 0; C < NC; ++C)
      if (S.Classes[C].K != RegionClass::Site)
        S.Contents[C].set(C);

    S.ParamBind.resize(N);
    S.Funcs.resize(N);
    Org.resize(N);
    for (FuncId F = 0; F < N; ++F) {
      const Function &Fn = P.Funcs[F];
      S.ParamBind[F].assign(Fn.NumParams, BitVec(NC));
      for (VarId Pm = 0; Pm < Fn.NumParams; ++Pm)
        if (InputOf[F][Pm] != SIZE_MAX)
          S.ParamBind[F][Pm].set(InputOf[F][Pm]);
      FuncInterference &FI = S.Funcs[F];
      FI.ParamReads = BitVec(Fn.NumParams);
      FI.ParamWrites = BitVec(Fn.NumParams);
      FI.ClassReads = BitVec(NC);
      FI.ClassWrites = BitVec(NC);
      Org[F].assign(Fn.Vars.size(), BitVec(Fn.NumParams + NC));
      for (VarId Pm = 0; Pm < Fn.NumParams; ++Pm)
        Org[F][Pm].set(Pm);
    }
  }

  //--- Lattice helpers --------------------------------------------------

  /// Resolves a local origin set of function F (param bits + class bits)
  /// to global classes, mapping parameter bits through ParamBind.
  BitVec globalize(FuncId F, const BitVec &Local) const {
    size_t NumParams = P.Funcs[F].NumParams;
    BitVec G(NC);
    Local.forEach([&](size_t Bit) {
      if (Bit < NumParams)
        G.unionWith(S.ParamBind[F][Bit]);
      else
        G.set(Bit - NumParams);
    });
    return G;
  }

  /// Global classes of the value loaded *out of* the regions named by
  /// \p Local: union of Contents over the globalized container classes.
  BitVec loadClasses(FuncId F, const BitVec &Local) const {
    BitVec Out(NC);
    globalize(F, Local).forEach([&](size_t C) { Out.unionWith(S.Contents[C]); });
    return Out;
  }

  BitVec toLocal(FuncId F, const BitVec &Global) const {
    BitVec L(P.Funcs[F].NumParams + NC);
    Global.forEach([&](size_t C) { L.set(P.Funcs[F].NumParams + C); });
    return L;
  }

  void markOrigin(FuncId F, VarId V, size_t LocalBit) {
    if (!Org[F][V].test(LocalBit)) {
      Org[F][V].set(LocalBit);
      Changed = true;
    }
  }

  /// Records a read or write effect through variable \p V of F: symbolic
  /// for own-parameter origins, direct for class origins, Unknown when
  /// the target has no origin at all.
  void addEffect(FuncId F, VarId V, bool Write) {
    if (V >= Org[F].size())
      return;
    FuncInterference &FI = S.Funcs[F];
    BitVec &Params = Write ? FI.ParamWrites : FI.ParamReads;
    BitVec &Klass = Write ? FI.ClassWrites : FI.ClassReads;
    size_t NumParams = P.Funcs[F].NumParams;
    const BitVec &O = Org[F][V];
    if (O.none()) {
      if (!Klass.test(S.UnknownClass)) {
        Klass.set(S.UnknownClass);
        Changed = true;
      }
      return;
    }
    O.forEach([&](size_t Bit) {
      BitVec &Dst = Bit < NumParams ? Params : Klass;
      size_t B = Bit < NumParams ? Bit : Bit - NumParams;
      if (!Dst.test(B)) {
        Dst.set(B);
        Changed = true;
      }
    });
  }

  /// Records that a value with classes \p Val may be stored inside every
  /// region the container \p Ref (a variable of F) may name.
  void flowContents(FuncId F, VarId Ref, const BitVec &ValClasses) {
    if (ValClasses.none() || Ref >= Org[F].size())
      return;
    BitVec Containers = globalize(F, Org[F][Ref]);
    if (Containers.none())
      Containers.set(S.UnknownClass);
    Containers.forEach(
        [&](size_t C) { Changed |= S.Contents[C].unionWith(ValClasses); });
  }

  /// Classes of a pointer value read from variable \p V; Unknown when
  /// the variable is trackable but class-less.
  BitVec valueClasses(FuncId F, VarId V) const {
    BitVec G = globalize(F, Org[F][V]);
    if (G.none() && trackable(P.Funcs[F], V))
      G.set(S.UnknownClass);
    return G;
  }

  //--- Transfer ---------------------------------------------------------

  /// Folds callee summary effects and bindings into caller F.
  /// \p SiteClass is the alloc-site class bound to implicit leading
  /// parameters (ArgOffset of them), SIZE_MAX otherwise.
  void merge(FuncId F, FuncId Callee, const std::vector<VarId> &Args,
             size_t ArgOffset, size_t SiteClass) {
    if (Callee >= P.Funcs.size())
      return; // Invalid reference; the verifier reports it.
    FuncInterference &FI = S.Funcs[F];
    const FuncInterference &CE = S.Funcs[Callee];
    Changed |= FI.ClassReads.unionWith(CE.ClassReads);
    Changed |= FI.ClassWrites.unionWith(CE.ClassWrites);
    const Function &CF = P.Funcs[Callee];
    for (size_t J = 0; J < CF.NumParams; ++J) {
      if (J < ArgOffset) {
        // The implicit alloc'd-block parameter: effects land on the
        // site class, and the callee sees the site bound there.
        size_t C = SiteClass == SIZE_MAX ? S.UnknownClass : SiteClass;
        if (CE.ParamReads.test(J) && !FI.ClassReads.test(C)) {
          FI.ClassReads.set(C);
          Changed = true;
        }
        if (CE.ParamWrites.test(J) && !FI.ClassWrites.test(C)) {
          FI.ClassWrites.set(C);
          Changed = true;
        }
        if (!S.ParamBind[Callee][J].test(C)) {
          S.ParamBind[Callee][J].set(C);
          Changed = true;
        }
        continue;
      }
      size_t AI = J - ArgOffset;
      if (AI >= Args.size() || Args[AI] >= Org[F].size())
        continue; // Arity mismatch / bad ref; the verifier reports it.
      VarId Arg = Args[AI];
      if (CE.ParamReads.test(J))
        addEffect(F, Arg, /*Write=*/false);
      if (CE.ParamWrites.test(J))
        addEffect(F, Arg, /*Write=*/true);
      if (trackable(CF, static_cast<VarId>(J))) {
        BitVec G = valueClasses(F, Arg);
        Changed |= S.ParamBind[Callee][J].unionWith(G);
      }
    }
  }

  /// One flow-insensitive pass over function F.
  void transfer(FuncId F) {
    const Function &Fn = P.Funcs[F];
    auto MergeJump = [&](const Jump &J) {
      if (J.K == Jump::Tail)
        merge(F, J.Fn, J.Args, 0, SIZE_MAX);
    };
    for (BlockId B = 0; B < Fn.Blocks.size(); ++B) {
      const BasicBlock &BB = Fn.Blocks[B];
      if (BB.K == BasicBlock::Cond) {
        MergeJump(BB.J1);
        MergeJump(BB.J2);
        continue;
      }
      if (BB.K != BasicBlock::Cmd)
        continue;
      const Command &C = BB.C;
      switch (C.K) {
      case Command::Assign:
        if (C.Dst >= Org[F].size())
          break;
        switch (C.E.K) {
        case Expr::Var:
          if (C.E.V < Org[F].size())
            Changed |= Org[F][C.Dst].unionWith(Org[F][C.E.V]);
          break;
        case Expr::Index:
          // A load: reads the container, yields its contents.
          if (C.E.V < Org[F].size()) {
            addEffect(F, C.E.V, /*Write=*/false);
            if (trackable(Fn, C.Dst))
              Changed |=
                  Org[F][C.Dst].unionWith(toLocal(F, loadClasses(F, Org[F][C.E.V])));
          }
          break;
        case Expr::Prim:
          // Pointer arithmetic escapes the domain.
          if (trackable(Fn, C.Dst))
            markOrigin(F, C.Dst, Fn.NumParams + S.UnknownClass);
          break;
        case Expr::Const:
          break; // Null/int constants name no region.
        }
        break;
      case Command::Store:
        // Writes the container's memory; a stored pointer value becomes
        // part of the container's contents.
        addEffect(F, C.Base, /*Write=*/true);
        if (C.E.K == Expr::Var && C.E.V < Org[F].size() &&
            trackable(Fn, C.E.V))
          flowContents(F, C.Base, valueClasses(F, C.E.V));
        else if (C.E.K == Expr::Index && C.E.V < Org[F].size()) {
          addEffect(F, C.E.V, /*Write=*/false);
          flowContents(F, C.Base, loadClasses(F, Org[F][C.E.V]));
        }
        break;
      case Command::ModrefAlloc:
        if (C.Dst < Org[F].size() && SiteOf[F][B] != SIZE_MAX)
          markOrigin(F, C.Dst, Fn.NumParams + SiteOf[F][B]);
        break;
      case Command::Read:
        addEffect(F, C.Src, /*Write=*/false);
        if (C.Dst < Org[F].size() && C.Src < Org[F].size() &&
            trackable(Fn, C.Dst))
          Changed |=
              Org[F][C.Dst].unionWith(toLocal(F, loadClasses(F, Org[F][C.Src])));
        break;
      case Command::Write:
        addEffect(F, C.Ref, /*Write=*/true);
        if (C.Val < Org[F].size() && trackable(Fn, C.Val))
          flowContents(F, C.Ref, valueClasses(F, C.Val));
        break;
      case Command::Alloc:
        if (C.Dst < Org[F].size() && SiteOf[F][B] != SIZE_MAX)
          markOrigin(F, C.Dst, Fn.NumParams + SiteOf[F][B]);
        merge(F, C.Fn, C.Args, /*ArgOffset=*/1, SiteOf[F][B]);
        break;
      case Command::Call:
        merge(F, C.Fn, C.Args, 0, SIZE_MAX);
        break;
      case Command::Nop:
        break;
      }
      MergeJump(BB.J);
    }
  }

  void solve() {
    // Everything is monotone over finite lattices (origins, contents,
    // bindings, summaries only grow), so iterating to quiescence
    // terminates at the least fixed point.
    Changed = true;
    while (Changed) {
      Changed = false;
      for (FuncId F = 0; F < P.Funcs.size(); ++F)
        transfer(F);
    }
  }

  //--- Instantiation ----------------------------------------------------

  /// The fully resolved (global) effect of one block, callees included.
  void blockEffects(FuncId F, BlockId B, BitVec &Reads, BitVec &Writes) const {
    const Function &Fn = P.Funcs[F];
    auto AddGlobal = [&](BitVec &Set, VarId V) {
      if (V >= Org[F].size())
        return;
      BitVec G = globalize(F, Org[F][V]);
      if (G.none())
        G.set(S.UnknownClass);
      Set.unionWith(G);
    };
    auto MergeGlobal = [&](FuncId Callee, const std::vector<VarId> &Args,
                           size_t ArgOffset, size_t SiteClass) {
      if (Callee >= P.Funcs.size())
        return;
      const FuncInterference &CE = S.Funcs[Callee];
      Reads.unionWith(CE.ClassReads);
      Writes.unionWith(CE.ClassWrites);
      for (size_t J = 0; J < P.Funcs[Callee].NumParams; ++J) {
        if (J < ArgOffset) {
          size_t C = SiteClass == SIZE_MAX ? S.UnknownClass : SiteClass;
          if (CE.ParamReads.test(J))
            Reads.set(C);
          if (CE.ParamWrites.test(J))
            Writes.set(C);
          continue;
        }
        size_t AI = J - ArgOffset;
        if (AI >= Args.size())
          continue;
        if (CE.ParamReads.test(J))
          AddGlobal(Reads, Args[AI]);
        if (CE.ParamWrites.test(J))
          AddGlobal(Writes, Args[AI]);
      }
    };
    auto DoJump = [&](const Jump &J) {
      if (J.K == Jump::Tail)
        MergeGlobal(J.Fn, J.Args, 0, SIZE_MAX);
    };
    const BasicBlock &BB = Fn.Blocks[B];
    if (BB.K == BasicBlock::Cond) {
      DoJump(BB.J1);
      DoJump(BB.J2);
      return;
    }
    if (BB.K != BasicBlock::Cmd)
      return;
    const Command &C = BB.C;
    switch (C.K) {
    case Command::Assign:
      if (C.E.K == Expr::Index)
        AddGlobal(Reads, C.E.V);
      break;
    case Command::Store:
      AddGlobal(Writes, C.Base);
      if (C.E.K == Expr::Index)
        AddGlobal(Reads, C.E.V);
      break;
    case Command::Read:
      AddGlobal(Reads, C.Src);
      break;
    case Command::Write:
      AddGlobal(Writes, C.Ref);
      break;
    case Command::Alloc:
      MergeGlobal(C.Fn, C.Args, 1, SiteOf[F][B]);
      break;
    case Command::Call:
      MergeGlobal(C.Fn, C.Args, 0, SIZE_MAX);
      break;
    default:
      break;
    }
    DoJump(BB.J);
  }

  /// Union of block effects over the blocks forward-reachable from
  /// \p Entry within the function (intra-function gotos only; tails and
  /// calls are already folded into block effects).
  EntryPoint instantiate(FuncId F, BlockId Entry, bool IsRead,
                         const BlockCfg &G) const {
    EntryPoint E;
    E.F = F;
    E.EntryBlock = Entry;
    E.IsReadEntry = IsRead;
    E.Reads = BitVec(NC);
    E.Writes = BitVec(NC);
    std::vector<bool> Seen(P.Funcs[F].Blocks.size(), false);
    std::vector<BlockId> Stack{Entry};
    Seen[Entry] = true;
    while (!Stack.empty()) {
      BlockId B = Stack.back();
      Stack.pop_back();
      blockEffects(F, B, E.Reads, E.Writes);
      for (BlockId Succ : G.Succs[B])
        if (!Seen[Succ]) {
          Seen[Succ] = true;
          Stack.push_back(Succ);
        }
    }
    return E;
  }

  /// Flow-sensitive origin set of \p V at the entry of \p B: the union,
  /// over the definitions of V that actually reach B, of that
  /// definition's one-step origins. Sharper than Org (which merges
  /// mutually exclusive paths) and used only for write-site records —
  /// the effect summaries stay flow-insensitive and conservative.
  BitVec flowOrigins(FuncId F, const ReachingDefs &RD, BlockId B,
                     VarId V) const {
    const Function &Fn = P.Funcs[F];
    BitVec L(Fn.NumParams + NC);
    if (V >= Org[F].size())
      return L;
    if (V < Fn.NumParams && RD.maybeEntryValueAt(B, V))
      L.set(V);
    for (BlockId D = 0; D < Fn.Blocks.size(); ++D) {
      if (!RD.In[B].test(D) || Fn.Blocks[D].K != BasicBlock::Cmd)
        continue;
      const Command &DC = Fn.Blocks[D].C;
      bool Defines = (DC.K == Command::Assign || DC.K == Command::Read ||
                      DC.K == Command::ModrefAlloc || DC.K == Command::Alloc) &&
                     DC.Dst == V;
      if (!Defines)
        continue;
      switch (DC.K) {
      case Command::ModrefAlloc:
      case Command::Alloc:
        if (SiteOf[F][D] != SIZE_MAX)
          L.set(Fn.NumParams + SiteOf[F][D]);
        break;
      case Command::Read:
        if (DC.Src < Org[F].size() && trackable(Fn, V))
          L.unionWith(toLocal(F, loadClasses(F, Org[F][DC.Src])));
        break;
      case Command::Assign:
        switch (DC.E.K) {
        case Expr::Var:
          if (DC.E.V < Org[F].size())
            L.unionWith(Org[F][DC.E.V]);
          break;
        case Expr::Index:
          if (DC.E.V < Org[F].size() && trackable(Fn, V))
            L.unionWith(toLocal(F, loadClasses(F, Org[F][DC.E.V])));
          break;
        case Expr::Prim:
          if (trackable(Fn, V))
            L.set(Fn.NumParams + S.UnknownClass);
          break;
        case Expr::Const:
          break;
        }
        break;
      default:
        break;
      }
    }
    return L;
  }

  InterferenceSummary finalize() {
    for (FuncId F = 0; F < P.Funcs.size(); ++F) {
      const Function &Fn = P.Funcs[F];
      if (Fn.Blocks.empty())
        continue;
      // Write-site records for the linter (flow-sensitive targets).
      ReachingDefs RD = computeReachingDefs(Fn);
      for (BlockId B = 0; B < Fn.Blocks.size(); ++B) {
        const BasicBlock &BB = Fn.Blocks[B];
        if (BB.K != BasicBlock::Cmd || BB.C.K != Command::Write)
          continue;
        WriteSite W;
        W.Block = B;
        W.Ref = BB.C.Ref;
        W.Local = flowOrigins(F, RD, B, BB.C.Ref);
        W.Global = globalize(F, W.Local);
        if (W.Global.none())
          W.Global.set(S.UnknownClass);
        S.Funcs[F].Writes.push_back(std::move(W));
      }
      // Entry points: the function entry plus every read continuation
      // (propagation re-enters at the read block itself).
      if (Fn.Blocks.empty())
        continue;
      BlockCfg G = BlockCfg::build(Fn);
      S.Entries.push_back(instantiate(F, 0, /*IsRead=*/false, G));
      for (BlockId B = 0; B < Fn.Blocks.size(); ++B)
        if (Fn.Blocks[B].K == BasicBlock::Cmd &&
            Fn.Blocks[B].C.K == Command::Read)
          S.Entries.push_back(instantiate(F, B, /*IsRead=*/true, G));
    }
    return std::move(S);
  }

  const Program &P;
  InterferenceSummary S;
  size_t NC = 0;
  bool Changed = false;
  /// Class index of each function's pointer params / alloc blocks
  /// (SIZE_MAX where none).
  std::vector<std::vector<size_t>> InputOf;
  std::vector<std::vector<size_t>> SiteOf;
  /// Per-function variable origins: NumParams symbolic bits, then one
  /// bit per global class.
  std::vector<std::vector<BitVec>> Org;
};

} // namespace

InterferenceSummary analysis::computeInterference(const Program &P) {
  return Builder(P).run();
}
