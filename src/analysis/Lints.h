//===- analysis/Lints.h - CEAL-specific CL lints ---------------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cl-lint rule set: structural verification plus CEAL-specific
/// checks built on the dataflow framework. Every rule emits located
/// cl::Diagnostic values with a stable Check slug:
///
///   verify          malformed IR (errors; suppresses deeper lints)
///   read-not-tail   a read command without a tail jump (only with
///                   RequireNormalForm; errors — translation and the VM
///                   need the Sec. 5 normal form)
///   use-before-def  a local is used on some path before any definition
///                   (it holds its zero-initial value; warning)
///   redundant-read  the modref was already read on every path with no
///                   intervening write (warning)
///   dead-write      the written value is surely overwritten before any
///                   observation (warning)
///   unused-alloc    a modref()/alloc() destination is never used
///                   (warning)
///   dead-code       an assign/read destination is never used (note)
///   memo-key-write  a modref is written after escaping into a modref()
///                   memo key — the key no longer identifies the cell's
///                   contents across runs (warning)
///   loop-live       the live set at an intra-function loop header
///                   exceeds the threshold: every trace node in the loop
///                   carries that many closure words, the ML(P) factor
///                   of Theorems 3-5 (warning)
///   unreachable     a block unreachable from entry and from every read
///                   continuation (note)
///   parallel-unsafe-write
///                   a write whose target may lie in the unknown region
///                   class (no allocation site or input structure can be
///                   named for it) — interval-partitioned propagation
///                   cannot prove any partition claims it (warning)
///   cross-region-alias
///                   a write whose target may alias two distinct direct
///                   region roots of the function (two parameters, two
///                   local allocation sites, or one of each), so the
///                   write straddles region classes (warning)
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_ANALYSIS_LINTS_H
#define CEAL_ANALYSIS_LINTS_H

#include "cl/Diagnostic.h"
#include "cl/Ir.h"

#include <cstddef>
#include <vector>

namespace ceal {
namespace analysis {

struct LintOptions {
  /// Require the Sec. 5 normal form (reads tail); errors otherwise.
  bool RequireNormalForm = false;
  /// Live-set size at a loop header above which loop-live fires.
  size_t LoopLiveThreshold = 12;
  /// Emit dead-code notes (dead assigns/reads) in addition to warnings.
  bool DeadCodeNotes = true;
};

struct LintReport {
  std::vector<cl::Diagnostic> Diags;
  /// ML(P): the maximum live-set size over all blocks of all functions
  /// (Theorems 3-5); reported in loop-live messages.
  size_t MaxLiveProgram = 0;

  size_t errorCount() const { return cl::countErrors(Diags); }
};

/// Runs all lints over \p P. If structural verification fails, only the
/// verify diagnostics are returned (the dataflow lints assume valid
/// references).
LintReport runLints(const cl::Program &P, const LintOptions &O = {});

} // namespace analysis
} // namespace ceal

#endif // CEAL_ANALYSIS_LINTS_H
