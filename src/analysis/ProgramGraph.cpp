//===- analysis/ProgramGraph.cpp - Rooted program graphs -------------------===//

#include "analysis/ProgramGraph.h"

using namespace ceal;
using namespace ceal::analysis;
using namespace ceal::cl;

ProgramGraph analysis::buildProgramGraph(const Function &F) {
  ProgramGraph G;
  size_t N = F.Blocks.size() + 2;
  G.Succs.assign(N, {});
  G.Preds.assign(N, {});
  G.IsReadEntry.assign(N, false);

  auto AddEdge = [&](uint32_t From, uint32_t To) {
    G.Succs[From].push_back(To);
    G.Preds[To].push_back(From);
  };

  // The function node is an entry node; its body starts at block 0.
  AddEdge(ProgramGraph::Root, ProgramGraph::FuncNode);
  if (!F.Blocks.empty())
    AddEdge(ProgramGraph::FuncNode, ProgramGraph::blockNode(0));

  // Intra-procedural control transfers: gotos and cond branches. Tail
  // jumps target other functions' nodes and are omitted here.
  auto AddJump = [&](uint32_t From, const Jump &J) {
    if (J.K == Jump::Goto)
      AddEdge(From, ProgramGraph::blockNode(J.Target));
  };
  for (BlockId B = 0; B < F.Blocks.size(); ++B) {
    const BasicBlock &BB = F.Blocks[B];
    uint32_t Node = ProgramGraph::blockNode(B);
    switch (BB.K) {
    case BasicBlock::Done:
      break;
    case BasicBlock::Cond:
      AddJump(Node, BB.J1);
      AddJump(Node, BB.J2);
      break;
    case BasicBlock::Cmd:
      AddJump(Node, BB.J);
      // The target of a read block's jump is a read entry and therefore
      // an entry node (Sec. 5.1).
      if (BB.C.K == Command::Read && BB.J.K == Jump::Goto)
        G.IsReadEntry[ProgramGraph::blockNode(BB.J.Target)] = true;
      break;
    }
  }
  for (uint32_t Node = 2; Node < N; ++Node)
    if (G.IsReadEntry[Node])
      AddEdge(ProgramGraph::Root, Node);
  return G;
}
