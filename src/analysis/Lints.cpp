//===- analysis/Lints.cpp - CEAL-specific CL lints -------------------------===//

#include "analysis/Lints.h"

#include "analysis/Dataflow.h"
#include "analysis/Interference.h"
#include "analysis/Liveness.h"
#include "analysis/ModrefEffects.h"
#include "analysis/ReachingDefs.h"
#include "analysis/RedundantOps.h"
#include "cl/Verifier.h"

#include <algorithm>

using namespace ceal;
using namespace ceal::analysis;
using namespace ceal::cl;

namespace {

class Linter {
public:
  Linter(const Program &P, const LintOptions &O) : Prog(P), Opts(O) {}

  LintReport run() {
    LintReport R;
    R.Diags = verifyProgramDiags(Prog);
    if (!R.Diags.empty())
      return R; // Dataflow lints assume structurally valid IR.

    FX = computeModrefEffects(Prog);
    Interf = computeInterference(Prog);
    Redundancy = computeRedundantOps(Prog, FX);
    for (FuncId F = 0; F < Prog.Funcs.size(); ++F)
      R.MaxLiveProgram =
          std::max(R.MaxLiveProgram, computeLiveness(Prog.Funcs[F]).maxLive());
    MaxLiveProgram = R.MaxLiveProgram;

    for (FuncId F = 0; F < Prog.Funcs.size(); ++F)
      function(F);

    std::stable_sort(Diags.begin(), Diags.end(),
                     [](const Diagnostic &A, const Diagnostic &B) {
                       if (A.Function != B.Function)
                         return A.Function < B.Function;
                       if (A.Block != B.Block)
                         return A.Block < B.Block;
                       return A.Index < B.Index;
                     });
    R.Diags = std::move(Diags);
    return R;
  }

private:
  void diag(FuncId F, BlockId B, uint32_t Index, Severity Sev,
            const char *Check, std::string Msg) {
    Diagnostic D;
    D.Function = F;
    D.Block = B;
    D.Index = Index;
    D.Sev = Sev;
    D.Check = Check;
    D.Message = std::move(Msg);
    Diags.push_back(std::move(D));
  }

  const std::string &var(const Function &F, VarId V) {
    return F.Vars[V].Name;
  }

  void function(FuncId FI) {
    const Function &F = Prog.Funcs[FI];
    BlockCfg G = BlockCfg::build(F, /*ReadEntriesAreEntries=*/true);
    const FuncRedundancy &FR = Redundancy.Funcs[FI];

    // -- read-not-tail -----------------------------------------------
    if (Opts.RequireNormalForm)
      for (BlockId B = 0; B < F.Blocks.size(); ++B) {
        const BasicBlock &BB = F.Blocks[B];
        if (BB.K == BasicBlock::Cmd && BB.C.K == Command::Read &&
            BB.J.K != Jump::Tail)
          diag(FI, B, 0, Severity::Error, "read-not-tail",
               "read of '" + var(F, BB.C.Src) +
                   "' is not followed by a tail jump (normal form, "
                   "Sec. 5, required for translation and the VM)");
      }

    // -- use-before-def ----------------------------------------------
    // A block's command reads its operands before its definition takes
    // effect; the jump's arguments are read after it. Check the former
    // against In, the latter against Out.
    ReachingDefs RD = computeReachingDefs(F);
    for (BlockId B = 0; B < F.Blocks.size(); ++B) {
      if (!RD.Cfg.Reachable[B])
        continue;
      const BasicBlock &BB = F.Blocks[B];
      auto Undefined = [&](VarId V, bool AfterCommand) {
        return V >= F.NumParams &&
               (AfterCommand ? RD.Out[B].test(RD.NumBlocks + V)
                             : RD.maybeEntryValueAt(B, V));
      };
      VarId Hit = InvalidId;
      uint32_t HitIndex = 0;
      if (BB.K == BasicBlock::Cmd) {
        BasicBlock Cmd = BB;
        Cmd.J = Jump::gotoBlock(0); // Strip jump uses.
        Function Probe; // blockUses only touches Blocks[0].
        Probe.Blocks.push_back(std::move(Cmd));
        for (VarId V : blockUses(Probe, 0))
          if (Hit == InvalidId && Undefined(V, /*AfterCommand=*/false))
            Hit = V;
        if (Hit == InvalidId && BB.J.K == Jump::Tail)
          for (VarId V : BB.J.Args)
            if (Hit == InvalidId && Undefined(V, /*AfterCommand=*/true)) {
              Hit = V;
              HitIndex = 1;
            }
      } else if (BB.K == BasicBlock::Cond) {
        for (VarId V : blockUses(F, B))
          if (Hit == InvalidId && Undefined(V, /*AfterCommand=*/false))
            Hit = V;
      }
      if (Hit != InvalidId)
        diag(FI, B, HitIndex, Severity::Warning, "use-before-def",
             "'" + var(F, Hit) +
                 "' may be used before any definition (it still holds "
                 "its zero-initial value on some path)");
    }

    // -- redundant-read / dead-write / dead code ---------------------
    for (auto [B, Provider] : FR.RedundantReads)
      diag(FI, B, 0, Severity::Warning, "redundant-read",
           "'" + var(F, F.Blocks[B].C.Src) +
               "' was already read into '" +
               var(F, F.Blocks[Provider].C.Dst) + "' (block '" +
               F.Blocks[Provider].Label +
               "') on every path with no intervening write");
    for (BlockId B : FR.DeadWrites)
      diag(FI, B, 0, Severity::Warning, "dead-write",
           "value written to '" + var(F, F.Blocks[B].C.Ref) +
               "' is surely overwritten before it can be observed");
    for (BlockId B : FR.DeadAllocs)
      diag(FI, B, 0, Severity::Warning, "unused-alloc",
           "allocation into '" + var(F, F.Blocks[B].C.Dst) +
               "' is never used");
    if (Opts.DeadCodeNotes) {
      for (BlockId B : FR.DeadReads)
        diag(FI, B, 0, Severity::Note, "dead-code",
             "read into '" + var(F, F.Blocks[B].C.Dst) +
                 "' is never used");
      for (BlockId B : FR.DeadAssigns)
        diag(FI, B, 0, Severity::Note, "dead-code",
             "assignment to '" + var(F, F.Blocks[B].C.Dst) +
                 "' is never used");
    }

    // -- memo-key-write ----------------------------------------------
    // Forward may-analysis: a modref* variable that escaped into a
    // modref() memo key and is then written through makes the key no
    // longer identify the cell's contents across runs.
    {
      size_t NumVars = F.Vars.size();
      DataflowProblem P;
      P.Dir = Direction::Forward;
      P.M = Meet::Union;
      P.DomainSize = NumVars;
      P.Transfer.resize(F.Blocks.size());
      for (BlockId B = 0; B < F.Blocks.size(); ++B) {
        GenKill &T = P.Transfer[B];
        T.Gen = BitVec(NumVars);
        T.Kill = BitVec(NumVars);
        const BasicBlock &BB = F.Blocks[B];
        if (BB.K != BasicBlock::Cmd)
          continue;
        if (BB.C.K == Command::ModrefAlloc)
          for (VarId A : BB.C.Args)
            if (F.Vars[A].Ty.isModrefPtr())
              T.Gen.set(A);
        for (VarId V : blockDefs(F, B))
          T.Kill.set(V);
      }
      DataflowResult R = solveDataflow(G, P);
      for (BlockId B = 0; B < F.Blocks.size(); ++B) {
        const BasicBlock &BB = F.Blocks[B];
        if (BB.K == BasicBlock::Cmd && BB.C.K == Command::Write &&
            R.In[B].test(BB.C.Ref))
          diag(FI, B, 0, Severity::Warning, "memo-key-write",
               "'" + var(F, BB.C.Ref) +
                   "' is written after escaping into a modref() memo "
                   "key; the memo match may revive a cell whose "
                   "contents this write has changed");
      }
    }

    // -- loop-live ----------------------------------------------------
    {
      LivenessInfo Live = computeLiveness(F);
      for (BlockId H : findLoopHeaders(G)) {
        size_t N = Live.liveCountAt(H);
        if (N <= Opts.LoopLiveThreshold)
          continue;
        diag(FI, H, 0, Severity::Warning, "loop-live",
             std::to_string(N) +
                 " variables are live at this loop header; every trace "
                 "node in the loop carries that many closure words "
                 "(function ML = " +
                 std::to_string(Live.maxLive()) + ", program ML(P) = " +
                 std::to_string(MaxLiveProgram) +
                 "; Theorems 3-5 charge O(ML(P)) per trace node)");
      }
    }

    // -- unreachable --------------------------------------------------
    for (BlockId B = 0; B < F.Blocks.size(); ++B)
      if (!G.Reachable[B])
        diag(FI, B, 0, Severity::Note, "unreachable",
             "block is unreachable from the entry and from every read "
             "continuation");

    // -- parallel-unsafe-write / cross-region-alias -------------------
    // Interval-partitioned propagation assigns region classes to
    // partitions. A write that may land in the unknown class, or that
    // may alias two distinct direct roots of this function, defeats any
    // such assignment.
    for (const WriteSite &W : Interf.Funcs[FI].Writes) {
      if (!G.Reachable[W.Block])
        continue;
      if (W.Global.test(Interf.UnknownClass))
        diag(FI, W.Block, 0, Severity::Warning, "parallel-unsafe-write",
             "write through '" + var(F, W.Ref) +
                 "' may target the unknown region class (no allocation "
                 "site or input structure names it); interval-partitioned "
                 "propagation cannot prove any partition claims this "
                 "write");
      std::vector<std::string> Roots;
      W.Local.forEach([&](size_t Bit) {
        if (Bit < F.NumParams) {
          Roots.push_back("parameter '" + var(F, Bit) + "'");
          return;
        }
        const RegionClass &C = Interf.Classes[Bit - F.NumParams];
        if (C.K == RegionClass::Site && C.F == FI)
          Roots.push_back("allocation site '" + F.Blocks[C.B].Label + "'");
      });
      if (Roots.size() >= 2) {
        std::string List = Roots[0];
        for (size_t I = 1; I < Roots.size(); ++I)
          List += (I + 1 == Roots.size() ? " and " : ", ") + Roots[I];
        diag(FI, W.Block, 0, Severity::Warning, "cross-region-alias",
             "write through '" + var(F, W.Ref) +
                 "' may alias distinct region roots: " + List +
                 "; the write straddles region classes");
      }
    }
  }

  const Program &Prog;
  const LintOptions &Opts;
  std::vector<FuncEffects> FX;
  InterferenceSummary Interf;
  RedundancyInfo Redundancy;
  size_t MaxLiveProgram = 0;
  std::vector<Diagnostic> Diags;
};

} // namespace

LintReport analysis::runLints(const Program &P, const LintOptions &O) {
  return Linter(P, O).run();
}
