//===- analysis/Liveness.h - Live-variable analysis ------------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iterative live-variable analysis, per function (Sec. 7). NORMALIZE
/// uses live(l) — the variables live at the start of block l — as the
/// formal parameters of the fresh function created for a critical node
/// (Fig. 7, line 13).
///
/// Control flow may be arbitrary (non-reducible); the analysis iterates
/// to a fixed point, worst case O(n^3) as the paper notes, which is fine
/// because functions are small.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_ANALYSIS_LIVENESS_H
#define CEAL_ANALYSIS_LIVENESS_H

#include "cl/Ir.h"

#include <vector>

namespace ceal {
namespace analysis {

/// Live-variable sets for one function, as bit vectors over VarId.
struct LivenessInfo {
  /// LiveIn[b][v]: variable v is live at the start of block b.
  std::vector<std::vector<bool>> LiveIn;

  /// The variables live at the start of \p B, in ascending VarId order
  /// (the deterministic parameter order used by NORMALIZE).
  std::vector<cl::VarId> liveAt(cl::BlockId B) const {
    std::vector<cl::VarId> Result;
    for (cl::VarId V = 0; V < LiveIn[B].size(); ++V)
      if (LiveIn[B][V])
        Result.push_back(V);
    return Result;
  }

  /// The maximum number of live variables over all blocks — the ML(P)
  /// of Theorems 3-5.
  size_t maxLive() const {
    size_t Max = 0;
    for (const auto &Row : LiveIn) {
      size_t Count = 0;
      for (bool Bit : Row)
        Count += Bit;
      if (Count > Max)
        Max = Count;
    }
    return Max;
  }
};

/// Computes per-block live-in sets for \p F. Tail jumps and calls use
/// their arguments; reads/assigns define their destinations.
LivenessInfo computeLiveness(const cl::Function &F);

/// The variables used anywhere in block \p B of \p F (helper shared with
/// the free-variable computation of NORMALIZE).
std::vector<cl::VarId> blockUses(const cl::Function &F, cl::BlockId B);

/// The variables defined by block \p B of \p F.
std::vector<cl::VarId> blockDefs(const cl::Function &F, cl::BlockId B);

} // namespace analysis
} // namespace ceal

#endif // CEAL_ANALYSIS_LIVENESS_H
