//===- analysis/Liveness.h - Live-variable analysis ------------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iterative live-variable analysis, per function (Sec. 7). NORMALIZE
/// uses live(l) — the variables live at the start of block l — as the
/// formal parameters of the fresh function created for a critical node
/// (Fig. 7, line 13).
///
/// Control flow may be arbitrary (non-reducible); the analysis iterates
/// to a fixed point, worst case O(n^3) as the paper notes, which is fine
/// because functions are small.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_ANALYSIS_LIVENESS_H
#define CEAL_ANALYSIS_LIVENESS_H

#include "analysis/Dataflow.h"
#include "cl/Ir.h"

#include <algorithm>
#include <vector>

namespace ceal {
namespace analysis {

/// Live-variable sets for one function, as dense bit vectors over VarId
/// (popcount-friendly; see Dataflow.h).
struct LivenessInfo {
  /// LiveIn[b]: the variables live at the start of block b.
  std::vector<BitVec> LiveIn;

  /// True iff \p V is live at the start of \p B.
  bool liveInAt(cl::BlockId B, cl::VarId V) const {
    return LiveIn[B].test(V);
  }

  /// The variables live at the start of \p B, in ascending VarId order
  /// (the deterministic parameter order used by NORMALIZE).
  std::vector<cl::VarId> liveAt(cl::BlockId B) const {
    return LiveIn[B].bits();
  }

  /// The number of variables live at the start of \p B (one popcount
  /// sweep, no row scan).
  size_t liveCountAt(cl::BlockId B) const { return LiveIn[B].count(); }

  /// The maximum number of live variables over all blocks — the ML(P)
  /// of Theorems 3-5.
  size_t maxLive() const {
    size_t Max = 0;
    for (const BitVec &Row : LiveIn)
      Max = std::max(Max, Row.count());
    return Max;
  }
};

/// Computes per-block live-in sets for \p F. Tail jumps and calls use
/// their arguments; reads/assigns define their destinations.
LivenessInfo computeLiveness(const cl::Function &F);

/// The variables used anywhere in block \p B of \p F (helper shared with
/// the free-variable computation of NORMALIZE).
std::vector<cl::VarId> blockUses(const cl::Function &F, cl::BlockId B);

/// The variables defined by block \p B of \p F.
std::vector<cl::VarId> blockDefs(const cl::Function &F, cl::BlockId B);

} // namespace analysis
} // namespace ceal

#endif // CEAL_ANALYSIS_LIVENESS_H
