//===- analysis/ProgramGraph.h - Rooted program graphs ---------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The rooted program graph of Sec. 5.1, in the intra-procedural variant
/// the compiler actually uses (Sec. 7): one graph per function, with a
/// distinguished root, the function node, and one node per basic block.
/// Entry nodes — the function node and every read-entry node (the goto
/// target of a read block) — receive an edge from the root. Tail jumps
/// and calls leave the function, so they contribute no intra-procedural
/// edges (the immediate dominator of every function node is the root, so
/// per-function analysis computes the same units as the whole-program
/// graph, as the paper observes).
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_ANALYSIS_PROGRAMGRAPH_H
#define CEAL_ANALYSIS_PROGRAMGRAPH_H

#include "cl/Ir.h"

#include <vector>

namespace ceal {
namespace analysis {

/// The rooted control-flow graph of one function.
///
/// Node numbering: 0 is the root, 1 is the function node, and block b of
/// the function is node b + 2.
struct ProgramGraph {
  static constexpr uint32_t Root = 0;
  static constexpr uint32_t FuncNode = 1;

  static uint32_t blockNode(cl::BlockId B) { return B + 2; }
  static cl::BlockId nodeBlock(uint32_t N) { return N - 2; }
  static bool isBlockNode(uint32_t N) { return N >= 2; }

  size_t size() const { return Succs.size(); }

  std::vector<std::vector<uint32_t>> Succs;
  std::vector<std::vector<uint32_t>> Preds;
  /// True for block nodes that are read entries (targets of a read
  /// block's jump).
  std::vector<bool> IsReadEntry;
};

/// Builds the rooted graph of \p F (Property 1: linear time).
ProgramGraph buildProgramGraph(const cl::Function &F);

} // namespace analysis
} // namespace ceal

#endif // CEAL_ANALYSIS_PROGRAMGRAPH_H
