//===- analysis/Liveness.cpp - Live-variable analysis ----------------------===//

#include "analysis/Liveness.h"

using namespace ceal;
using namespace ceal::analysis;
using namespace ceal::cl;

namespace {

void exprUses(const Expr &E, std::vector<VarId> &Out) {
  switch (E.K) {
  case Expr::Const:
    break;
  case Expr::Var:
    Out.push_back(E.V);
    break;
  case Expr::Prim:
    for (VarId V : E.Args)
      Out.push_back(V);
    break;
  case Expr::Index:
    Out.push_back(E.V);
    Out.push_back(E.Idx);
    break;
  }
}

void jumpUses(const Jump &J, std::vector<VarId> &Out) {
  if (J.K == Jump::Tail)
    for (VarId V : J.Args)
      Out.push_back(V);
}

} // namespace

std::vector<VarId> analysis::blockUses(const Function &F, BlockId B) {
  std::vector<VarId> Uses;
  const BasicBlock &BB = F.Blocks[B];
  switch (BB.K) {
  case BasicBlock::Done:
    break;
  case BasicBlock::Cond:
    Uses.push_back(BB.CondVar);
    jumpUses(BB.J1, Uses);
    jumpUses(BB.J2, Uses);
    break;
  case BasicBlock::Cmd: {
    const Command &C = BB.C;
    switch (C.K) {
    case Command::Nop:
      break;
    case Command::Assign:
      exprUses(C.E, Uses);
      break;
    case Command::Store:
      Uses.push_back(C.Base);
      Uses.push_back(C.Idx);
      exprUses(C.E, Uses);
      break;
    case Command::ModrefAlloc:
      for (VarId V : C.Args)
        Uses.push_back(V);
      break;
    case Command::Read:
      Uses.push_back(C.Src);
      break;
    case Command::Write:
      Uses.push_back(C.Ref);
      Uses.push_back(C.Val);
      break;
    case Command::Alloc:
      Uses.push_back(C.SizeVar);
      for (VarId V : C.Args)
        Uses.push_back(V);
      break;
    case Command::Call:
      for (VarId V : C.Args)
        Uses.push_back(V);
      break;
    }
    jumpUses(BB.J, Uses);
    break;
  }
  }
  return Uses;
}

std::vector<VarId> analysis::blockDefs(const Function &F, BlockId B) {
  const BasicBlock &BB = F.Blocks[B];
  if (BB.K != BasicBlock::Cmd)
    return {};
  const Command &C = BB.C;
  switch (C.K) {
  case Command::Assign:
  case Command::ModrefAlloc:
  case Command::Read:
  case Command::Alloc:
    return {C.Dst};
  default:
    return {};
  }
}

LivenessInfo analysis::computeLiveness(const Function &F) {
  size_t NumBlocks = F.Blocks.size();
  size_t NumVars = F.Vars.size();
  LivenessInfo Info;
  Info.LiveIn.assign(NumBlocks, std::vector<bool>(NumVars, false));

  // Successor lists (gotos only; tails leave the function).
  std::vector<std::vector<BlockId>> Succs(NumBlocks);
  for (BlockId B = 0; B < NumBlocks; ++B) {
    const BasicBlock &BB = F.Blocks[B];
    auto Add = [&](const Jump &J) {
      if (J.K == Jump::Goto)
        Succs[B].push_back(J.Target);
    };
    if (BB.K == BasicBlock::Cond) {
      Add(BB.J1);
      Add(BB.J2);
    } else if (BB.K == BasicBlock::Cmd) {
      Add(BB.J);
    }
  }

  // Precompute use/def bit rows.
  std::vector<std::vector<bool>> Use(NumBlocks,
                                     std::vector<bool>(NumVars, false));
  std::vector<std::vector<bool>> Def(NumBlocks,
                                     std::vector<bool>(NumVars, false));
  for (BlockId B = 0; B < NumBlocks; ++B) {
    // A block is a single command: uses happen before the (single) def,
    // except that the def of `x := e` does not kill a use of x in e —
    // uses are read first, so LiveIn = Use ∪ (LiveOut \ Def) is exact at
    // block granularity.
    for (VarId V : blockUses(F, B))
      Use[B][V] = true;
    for (VarId V : blockDefs(F, B))
      Def[B][V] = true;
  }

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = NumBlocks; I > 0; --I) {
      BlockId B = static_cast<BlockId>(I - 1);
      std::vector<bool> New(NumVars, false);
      // LiveOut = union of successors' LiveIn.
      for (BlockId S : Succs[B])
        for (VarId V = 0; V < NumVars; ++V)
          if (Info.LiveIn[S][V])
            New[V] = true;
      // LiveIn = Use ∪ (LiveOut \ Def).
      for (VarId V = 0; V < NumVars; ++V) {
        New[V] = Use[B][V] || (New[V] && !Def[B][V]);
        if (New[V] && !Info.LiveIn[B][V]) {
          Info.LiveIn[B][V] = true;
          Changed = true;
        }
      }
    }
  }
  return Info;
}
