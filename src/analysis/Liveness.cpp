//===- analysis/Liveness.cpp - Live-variable analysis ----------------------===//

#include "analysis/Liveness.h"

using namespace ceal;
using namespace ceal::analysis;
using namespace ceal::cl;

namespace {

void exprUses(const Expr &E, std::vector<VarId> &Out) {
  switch (E.K) {
  case Expr::Const:
    break;
  case Expr::Var:
    Out.push_back(E.V);
    break;
  case Expr::Prim:
    for (VarId V : E.Args)
      Out.push_back(V);
    break;
  case Expr::Index:
    Out.push_back(E.V);
    Out.push_back(E.Idx);
    break;
  }
}

void jumpUses(const Jump &J, std::vector<VarId> &Out) {
  if (J.K == Jump::Tail)
    for (VarId V : J.Args)
      Out.push_back(V);
}

} // namespace

std::vector<VarId> analysis::blockUses(const Function &F, BlockId B) {
  std::vector<VarId> Uses;
  const BasicBlock &BB = F.Blocks[B];
  switch (BB.K) {
  case BasicBlock::Done:
    break;
  case BasicBlock::Cond:
    Uses.push_back(BB.CondVar);
    jumpUses(BB.J1, Uses);
    jumpUses(BB.J2, Uses);
    break;
  case BasicBlock::Cmd: {
    const Command &C = BB.C;
    switch (C.K) {
    case Command::Nop:
      break;
    case Command::Assign:
      exprUses(C.E, Uses);
      break;
    case Command::Store:
      Uses.push_back(C.Base);
      Uses.push_back(C.Idx);
      exprUses(C.E, Uses);
      break;
    case Command::ModrefAlloc:
      for (VarId V : C.Args)
        Uses.push_back(V);
      break;
    case Command::Read:
      Uses.push_back(C.Src);
      break;
    case Command::Write:
      Uses.push_back(C.Ref);
      Uses.push_back(C.Val);
      break;
    case Command::Alloc:
      Uses.push_back(C.SizeVar);
      for (VarId V : C.Args)
        Uses.push_back(V);
      break;
    case Command::Call:
      for (VarId V : C.Args)
        Uses.push_back(V);
      break;
    }
    jumpUses(BB.J, Uses);
    break;
  }
  }
  return Uses;
}

std::vector<VarId> analysis::blockDefs(const Function &F, BlockId B) {
  const BasicBlock &BB = F.Blocks[B];
  if (BB.K != BasicBlock::Cmd)
    return {};
  const Command &C = BB.C;
  switch (C.K) {
  case Command::Assign:
  case Command::ModrefAlloc:
  case Command::Read:
  case Command::Alloc:
    return {C.Dst};
  default:
    return {};
  }
}

LivenessInfo analysis::computeLiveness(const Function &F) {
  size_t NumBlocks = F.Blocks.size();
  size_t NumVars = F.Vars.size();

  // Backward union problem over the intra-function CFG. A block is a
  // single command: uses happen before the (single) def, and the def of
  // `x := e` does not kill a use of x in e — uses are read first, so
  // LiveIn = Use ∪ (LiveOut \ Def) is exact at block granularity.
  DataflowProblem P;
  P.Dir = Direction::Backward;
  P.M = Meet::Union;
  P.DomainSize = NumVars;
  P.Transfer.resize(NumBlocks);
  for (BlockId B = 0; B < NumBlocks; ++B) {
    GenKill &T = P.Transfer[B];
    T.Gen = BitVec(NumVars);
    T.Kill = BitVec(NumVars);
    for (VarId V : blockDefs(F, B))
      T.Kill.set(V);
    for (VarId V : blockUses(F, B))
      T.Gen.set(V);
  }

  LivenessInfo Info;
  Info.LiveIn =
      std::move(solveDataflow(BlockCfg::build(F), P).In);
  return Info;
}
