//===- analysis/ReachingDefs.cpp - Reaching definitions --------------------===//

#include "analysis/ReachingDefs.h"

#include "analysis/Liveness.h"

using namespace ceal;
using namespace ceal::analysis;
using namespace ceal::cl;

ReachingDefs analysis::computeReachingDefs(const Function &F) {
  size_t NumBlocks = F.Blocks.size();
  size_t NumVars = F.Vars.size();
  size_t Domain = NumBlocks + NumVars;

  // Def sites per variable (a CL block defines at most one variable).
  std::vector<std::vector<BlockId>> SitesOf(NumVars);
  for (BlockId B = 0; B < NumBlocks; ++B)
    for (VarId V : blockDefs(F, B))
      SitesOf[V].push_back(B);

  DataflowProblem P;
  P.Dir = Direction::Forward;
  P.M = Meet::Union;
  P.DomainSize = Domain;
  P.Transfer.resize(NumBlocks);
  for (BlockId B = 0; B < NumBlocks; ++B) {
    GenKill &T = P.Transfer[B];
    T.Gen = BitVec(Domain);
    T.Kill = BitVec(Domain);
    for (VarId V : blockDefs(F, B)) {
      T.Gen.set(B);
      for (BlockId S : SitesOf[V])
        T.Kill.set(S);
      T.Kill.set(NumBlocks + V); // The entry value no longer flows.
    }
  }
  // At function entry every variable holds its entry value.
  P.Boundary = BitVec(Domain);
  for (VarId V = 0; V < NumVars; ++V)
    P.Boundary.set(NumBlocks + V);

  ReachingDefs RD;
  RD.NumBlocks = NumBlocks;
  RD.NumVars = NumVars;
  RD.Cfg = BlockCfg::build(F);
  DataflowResult R = solveDataflow(RD.Cfg, P);
  RD.In = std::move(R.In);
  RD.Out = std::move(R.Out);
  return RD;
}

std::optional<int64_t> analysis::constantAtExit(const Function &F,
                                                const ReachingDefs &RD,
                                                BlockId B, VarId V) {
  if (!RD.Cfg.Reachable[B])
    return std::nullopt;
  std::optional<int64_t> Value;
  bool Unknown = false;
  auto Join = [&](int64_t C) {
    if (Value && *Value != C)
      Unknown = true;
    Value = C;
  };
  RD.Out[B].forEach([&](size_t Slot) {
    if (Unknown)
      return;
    if (Slot >= RD.NumBlocks) {
      VarId W = static_cast<VarId>(Slot - RD.NumBlocks);
      if (W != V)
        return;
      if (W < F.NumParams)
        Unknown = true; // The incoming argument value may flow here.
      else
        Join(0); // Locals are zero-initialized in every semantics.
      return;
    }
    const BasicBlock &Site = F.Blocks[Slot];
    if (Site.K != BasicBlock::Cmd)
      return;
    const Command &C = Site.C;
    if (C.K == Command::Assign && C.Dst == V) {
      if (C.E.K == Expr::Const)
        Join(C.E.IntVal);
      else
        Unknown = true;
    } else if ((C.K == Command::ModrefAlloc || C.K == Command::Read ||
                C.K == Command::Alloc) &&
               C.Dst == V) {
      Unknown = true;
    }
  });
  if (Unknown || !Value)
    return std::nullopt;
  return Value;
}
