//===- analysis/Dominators.h - Dominator trees -----------------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator-tree construction over rooted program graphs (Sec. 5.2).
/// Two algorithms are provided:
///
///  * computeDominatorsIterative — the simple iterative algorithm of
///    Cooper, Harvey and Kennedy, which cealc uses because per-function
///    graphs are small (Sec. 7);
///  * computeDominatorsSemiNca — the semi-NCA variant of the
///    Lengauer-Tarjan family, near-linear, standing in for the
///    asymptotically optimal algorithm [Georgiadis-Tarjan] the paper
///    cites for the whole-program bound.
///
/// Both return the immediate-dominator array (idom of the root is the
/// root itself; unreachable nodes get InvalidNode) and are cross-checked
/// against each other and a brute-force oracle in the tests.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_ANALYSIS_DOMINATORS_H
#define CEAL_ANALYSIS_DOMINATORS_H

#include "analysis/ProgramGraph.h"

#include <cstdint>
#include <vector>

namespace ceal {
namespace analysis {

constexpr uint32_t InvalidNode = ~uint32_t(0);

/// A generic rooted digraph view for the dominator algorithms (program
/// graphs convert trivially; tests also feed random graphs).
struct RootedGraph {
  uint32_t Root = 0;
  std::vector<std::vector<uint32_t>> Succs;
  std::vector<std::vector<uint32_t>> Preds;

  static RootedGraph fromProgramGraph(const ProgramGraph &G) {
    return {ProgramGraph::Root, G.Succs, G.Preds};
  }
  size_t size() const { return Succs.size(); }
};

/// Immediate dominators by reverse-postorder iteration
/// [Cooper-Harvey-Kennedy 2001].
std::vector<uint32_t> computeDominatorsIterative(const RootedGraph &G);

/// Immediate dominators by semi-NCA [Georgiadis et al.].
std::vector<uint32_t> computeDominatorsSemiNca(const RootedGraph &G);

/// The dominator tree as child lists, from an idom array.
std::vector<std::vector<uint32_t>>
dominatorTreeChildren(const std::vector<uint32_t> &Idom, uint32_t Root);

} // namespace analysis
} // namespace ceal

#endif // CEAL_ANALYSIS_DOMINATORS_H
