//===- analysis/ModrefEffects.h - Modref effect summaries ------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interprocedural may-effect summaries: which modrefs a function (and
/// everything it transitively tails into, calls, or allocates with) may
/// read, write, or allocate. Modrefs are tracked by *origin*: a modref
/// value in a variable either came in through a parameter, was allocated
/// locally, or was loaded from memory / a read result ("other").
///
/// The summaries are deliberately conservative about aliasing:
///  * Writes/reads of locally allocated modrefs count as "other" because
///    a keyed modref() allocation may memo-match a cell the caller also
///    holds during change propagation.
///  * Store commands are assumed never to overwrite a modref's value
///    cell — CL code only mutates modref contents through write (this is
///    how the runtime and both interpreters behave).
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_ANALYSIS_MODREFEFFECTS_H
#define CEAL_ANALYSIS_MODREFEFFECTS_H

#include "analysis/Dataflow.h"
#include "cl/Ir.h"

#include <vector>

namespace ceal {
namespace analysis {

/// The may-effects of one function, including everything reachable from
/// it through tails, calls, and alloc initializers.
struct FuncEffects {
  /// Bit p set: the modref passed as parameter p may be read / written.
  BitVec ReadsParams;
  BitVec WritesParams;
  /// May read / write a modref that did not arrive as a parameter
  /// (loaded from memory, a read result, or locally allocated).
  bool ReadsOther = false;
  bool WritesOther = false;
  /// May allocate (modref() or alloc()).
  bool Allocates = false;

  bool readsNothing() const { return !ReadsOther && ReadsParams.none(); }
  bool writesNothing() const { return !WritesOther && WritesParams.none(); }
};

/// Computes effect summaries for every function of \p P, iterating the
/// call graph (tails, calls, alloc initializers) to a fixed point.
std::vector<FuncEffects> computeModrefEffects(const cl::Program &P);

} // namespace analysis
} // namespace ceal

#endif // CEAL_ANALYSIS_MODREFEFFECTS_H
