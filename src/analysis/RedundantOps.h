//===- analysis/RedundantOps.h - Redundant reads & dead writes -*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Detects CL operations whose removal is unobservable in both the
/// conventional and the self-adjusting semantics:
///
///  * Redundant reads — `x := read m` where, on every path from entry,
///    an earlier `y := read m` of the same variable m already executed
///    with no intervening write to any modref, no redefinition of m or
///    y, and no call/alloc that may write (forward must-availability).
///    Such a read can become `x := y`.
///  * Dead writes — `write(m, v)` where on every path to a function
///    exit the modref held by m is written again through m before any
///    read or escape could observe it (backward must-analysis).
///  * Liveness-dead operations — assigns/reads/allocations whose
///    destination is dead (never observed afterwards).
///
/// Soundness under change propagation: availability is computed on the
/// plain CFG (read continuations are *not* extra entries). A
/// re-execution that restarts at a read between the providing and the
/// redundant read resumes from a closure whose environment captured y —
/// the value the providing read last produced — so `x := y` still sees a
/// value consistent with m: if m changed, the providing read's own trace
/// node re-executes first and rebuilds those closures. Memo matches
/// cannot smuggle in a stale y because y is part of every intervening
/// closure's arguments (y is live) and therefore of its memo key.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_ANALYSIS_REDUNDANTOPS_H
#define CEAL_ANALYSIS_REDUNDANTOPS_H

#include "analysis/ModrefEffects.h"
#include "cl/Ir.h"

#include <utility>
#include <vector>

namespace ceal {
namespace analysis {

struct FuncRedundancy {
  /// (redundant read block, providing read block): the later read may be
  /// replaced by an assignment from the provider's destination.
  std::vector<std::pair<cl::BlockId, cl::BlockId>> RedundantReads;
  /// write(m, v) blocks whose value is surely overwritten before any
  /// possible observation.
  std::vector<cl::BlockId> DeadWrites;
  /// ModrefAlloc blocks (and Alloc blocks with an effect-free
  /// initializer) whose destination is dead.
  std::vector<cl::BlockId> DeadAllocs;
  /// Read blocks whose destination is dead.
  std::vector<cl::BlockId> DeadReads;
  /// Assign blocks whose destination is dead.
  std::vector<cl::BlockId> DeadAssigns;

  bool empty() const {
    return RedundantReads.empty() && DeadWrites.empty() &&
           DeadAllocs.empty() && DeadReads.empty() && DeadAssigns.empty();
  }
};

struct RedundancyInfo {
  std::vector<FuncRedundancy> Funcs; // One per program function.
};

/// Runs all three detections over \p P using the effect summaries \p FX
/// (from computeModrefEffects) to decide whether calls/allocs may write
/// or read modrefs. All reported blocks are reachable from their
/// function's entry; results are in ascending block order.
RedundancyInfo computeRedundantOps(const cl::Program &P,
                                   const std::vector<FuncEffects> &FX);

} // namespace analysis
} // namespace ceal

#endif // CEAL_ANALYSIS_REDUNDANTOPS_H
