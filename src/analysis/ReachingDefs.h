//===- analysis/ReachingDefs.h - Reaching definitions ----------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reaching-definitions analysis over a CL function. CL blocks carry at
/// most one command, so a definition site is identified by its block id.
/// The domain also tracks, per variable, a "zero-initial" pseudo-def:
/// locals start at 0 in every semantics (ConvInterp, the VM, and emitted
/// C all zero-initialize), so a use reached by the pseudo-def is not
/// undefined behaviour — but it is worth a lint (use-before-def), and it
/// participates in constant propagation as the constant 0.
///
/// Domain layout: slot b (b < NumBlocks) is "block b's definition
/// reaches here"; slot NumBlocks + v is "variable v may still hold its
/// entry value here" (the incoming argument for parameters, the zero
/// initial value for locals).
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_ANALYSIS_REACHINGDEFS_H
#define CEAL_ANALYSIS_REACHINGDEFS_H

#include "analysis/Dataflow.h"
#include "cl/Ir.h"

#include <optional>
#include <vector>

namespace ceal {
namespace analysis {

struct ReachingDefs {
  size_t NumBlocks = 0;
  size_t NumVars = 0;
  /// In[b] / Out[b] over the layout described above.
  std::vector<BitVec> In;
  std::vector<BitVec> Out;
  /// The CFG the analysis ran on (for Reachable filtering).
  BlockCfg Cfg;

  bool defReachesEntry(cl::BlockId Site, cl::BlockId B) const {
    return In[B].test(Site);
  }
  /// May \p V still hold its entry value (argument / zero) at the entry
  /// of \p B?
  bool maybeEntryValueAt(cl::BlockId B, cl::VarId V) const {
    return In[B].test(NumBlocks + V);
  }
};

/// Runs reaching definitions on \p F.
ReachingDefs computeReachingDefs(const cl::Function &F);

/// If every definition of \p V reaching the *exit* of \p B assigns the
/// same integer constant (the zero-initial pseudo-def counts as 0),
/// returns that constant; otherwise nullopt. Parameters never qualify
/// at blocks where the entry value may still flow.
std::optional<int64_t> constantAtExit(const cl::Function &F,
                                      const ReachingDefs &RD, cl::BlockId B,
                                      cl::VarId V);

} // namespace analysis
} // namespace ceal

#endif // CEAL_ANALYSIS_REACHINGDEFS_H
