//===- analysis/Dominators.cpp - Dominator trees ---------------------------===//

#include "analysis/Dominators.h"

#include <cassert>

using namespace ceal;
using namespace ceal::analysis;

namespace {

/// DFS numbering shared by both algorithms.
struct DfsOrder {
  std::vector<uint32_t> Order;   ///< Nodes in DFS preorder.
  std::vector<uint32_t> Number;  ///< Node -> preorder index (or Invalid).
  std::vector<uint32_t> Parent;  ///< DFS tree parent (by node id).

  explicit DfsOrder(const RootedGraph &G) {
    Number.assign(G.size(), InvalidNode);
    Parent.assign(G.size(), InvalidNode);
    std::vector<std::pair<uint32_t, uint32_t>> Stack{{G.Root, InvalidNode}};
    while (!Stack.empty()) {
      auto [N, From] = Stack.back();
      Stack.pop_back();
      if (Number[N] != InvalidNode)
        continue;
      Number[N] = static_cast<uint32_t>(Order.size());
      Order.push_back(N);
      Parent[N] = From;
      for (size_t I = G.Succs[N].size(); I > 0; --I)
        Stack.push_back({G.Succs[N][I - 1], N});
    }
  }
};

} // namespace

std::vector<uint32_t>
analysis::computeDominatorsIterative(const RootedGraph &G) {
  // Cooper-Harvey-Kennedy: iterate to a fixed point over reverse
  // postorder, intersecting predecessor dominators by walking up the
  // current idom approximation.
  std::vector<uint32_t> Post;      // Postorder sequence of nodes.
  std::vector<uint32_t> PostNum(G.size(), InvalidNode);
  {
    std::vector<std::pair<uint32_t, size_t>> Stack{{G.Root, 0}};
    std::vector<uint8_t> State(G.size(), 0);
    State[G.Root] = 1;
    while (!Stack.empty()) {
      auto &[N, Next] = Stack.back();
      if (Next < G.Succs[N].size()) {
        uint32_t S = G.Succs[N][Next++];
        if (!State[S]) {
          State[S] = 1;
          Stack.push_back({S, 0});
        }
        continue;
      }
      PostNum[N] = static_cast<uint32_t>(Post.size());
      Post.push_back(N);
      Stack.pop_back();
    }
  }

  std::vector<uint32_t> Idom(G.size(), InvalidNode);
  Idom[G.Root] = G.Root;
  auto Intersect = [&](uint32_t A, uint32_t B) {
    while (A != B) {
      while (PostNum[A] < PostNum[B])
        A = Idom[A];
      while (PostNum[B] < PostNum[A])
        B = Idom[B];
    }
    return A;
  };
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = Post.size(); I > 0; --I) { // Reverse postorder.
      uint32_t N = Post[I - 1];
      if (N == G.Root)
        continue;
      uint32_t NewIdom = InvalidNode;
      for (uint32_t P : G.Preds[N]) {
        if (Idom[P] == InvalidNode)
          continue; // Unreachable or not yet processed.
        NewIdom = NewIdom == InvalidNode ? P : Intersect(P, NewIdom);
      }
      if (NewIdom != InvalidNode && Idom[N] != NewIdom) {
        Idom[N] = NewIdom;
        Changed = true;
      }
    }
  }
  return Idom;
}

std::vector<uint32_t> analysis::computeDominatorsSemiNca(const RootedGraph &G) {
  // Semi-NCA: compute semidominators with path compression (as in
  // Lengauer-Tarjan), then derive immediate dominators by ancestor
  // walking in the DFS tree.
  DfsOrder Dfs(G);
  size_t NumReached = Dfs.Order.size();
  if (NumReached == 0)
    return std::vector<uint32_t>(G.size(), InvalidNode);

  // Everything below works in DFS-number space.
  std::vector<uint32_t> Sdom(NumReached), Ancestor(NumReached, InvalidNode),
      Label(NumReached), IdomN(NumReached);
  for (uint32_t I = 0; I < NumReached; ++I) {
    Sdom[I] = I;
    Label[I] = I;
  }

  // Eval with path compression: returns the label with minimal sdom on
  // the compressed path to the forest root.
  auto Compress = [&](uint32_t V) {
    // Iterative path compression.
    std::vector<uint32_t> Path;
    while (Ancestor[Ancestor[V]] != InvalidNode) {
      Path.push_back(V);
      V = Ancestor[V];
    }
    for (size_t I = Path.size(); I > 0; --I) {
      uint32_t U = Path[I - 1];
      if (Sdom[Label[Ancestor[U]]] < Sdom[Label[U]])
        Label[U] = Label[Ancestor[U]];
      Ancestor[U] = Ancestor[Ancestor[U]];
    }
  };
  auto Eval = [&](uint32_t V) {
    if (Ancestor[V] == InvalidNode)
      return V;
    Compress(V);
    return Sdom[Label[Ancestor[V]]] < Sdom[Label[V]] ? Label[Ancestor[V]]
                                                     : Label[V];
  };

  // Process in reverse preorder, computing semidominators.
  for (uint32_t W = static_cast<uint32_t>(NumReached) - 1; W > 0; --W) {
    uint32_t Node = Dfs.Order[W];
    for (uint32_t PredNode : G.Preds[Node]) {
      uint32_t V = Dfs.Number[PredNode];
      if (V == InvalidNode)
        continue; // Unreachable predecessor.
      uint32_t U = Eval(V);
      if (Sdom[U] < Sdom[W])
        Sdom[W] = Sdom[U];
    }
    // Link W into the forest under its DFS parent.
    Ancestor[W] = Dfs.Number[Dfs.Parent[Node]];
    IdomN[W] = Sdom[W]; // Provisional: idom = sdom, fixed below.
  }

  // Semi-NCA fixup: idom(w) = NCA in the (partially built) dominator
  // tree of parent(w) and sdom(w); since we process in preorder, walking
  // up from the DFS parent until the number drops to <= sdom(w) works.
  IdomN[0] = 0;
  for (uint32_t W = 1; W < NumReached; ++W) {
    uint32_t Cand = Dfs.Number[Dfs.Parent[Dfs.Order[W]]];
    while (Cand > Sdom[W])
      Cand = IdomN[Cand];
    IdomN[W] = Cand;
  }

  std::vector<uint32_t> Idom(G.size(), InvalidNode);
  Idom[G.Root] = G.Root;
  for (uint32_t W = 1; W < NumReached; ++W)
    Idom[Dfs.Order[W]] = Dfs.Order[IdomN[W]];
  return Idom;
}

std::vector<std::vector<uint32_t>>
analysis::dominatorTreeChildren(const std::vector<uint32_t> &Idom,
                                uint32_t Root) {
  std::vector<std::vector<uint32_t>> Children(Idom.size());
  for (uint32_t N = 0; N < Idom.size(); ++N) {
    if (N == Root || Idom[N] == InvalidNode)
      continue;
    assert(Idom[N] < Idom.size() && "invalid idom entry");
    Children[Idom[N]].push_back(N);
  }
  return Children;
}
