//===- analysis/Interference.h - Parallel-safety interference --*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interprocedural interference analysis for parallel change
/// propagation: which *region classes* of the store may each CL entry
/// point read or write, and which pairs of entry points could therefore
/// race if their trace intervals re-executed concurrently.
///
/// Region classes are allocation-site based, with two extensions that
/// make the domain closed under the ways CL code actually obtains
/// pointers:
///
///  * A **site** class per modref()/alloc() block. Memo-keyed
///    reallocation may return the same cell to two different intervals,
///    so two executions reaching the same site share the class.
///  * An **input** class per pointer-typed parameter of every function.
///    Any function can be a run_core entry, so each such parameter names
///    the (mutator-built) structure handed to it. Input classes are
///    *container-collapsed*: everything reachable from the input is the
///    input (the analysis cannot see the mutator's stores), which is
///    encoded by self-seeding the contents relation below.
///  * A single **unknown** class for values the analysis cannot place
///    (pointer arithmetic, loads whose source has no class). Unknown
///    overlaps everything.
///
/// On top of the classes the analysis computes, to a global fixed point
/// across the call graph (tails, calls, alloc initializers):
///
///  * `Contents[c]` — classes of values that may be stored *inside*
///    region c (via write/store of a pointer-typed value).
///  * `ParamBind[F][p]` — classes that may be bound to parameter p of F:
///    its own input class plus every class passed at some call site.
///  * Per-function split summaries: effects on the function's own
///    parameters stay symbolic (`ParamReads`/`ParamWrites`, resolved
///    per call site like ModrefEffects does) while effects on values
///    with known classes land in `ClassReads`/`ClassWrites` directly.
///
/// Entry points are instantiated per function (`fn:F`, entered at block
/// 0) and per read continuation (`read:F:B`, change propagation may
/// re-enter at the read block B itself); their effects are the union of
/// per-block global effects over the blocks forward-reachable within the
/// function, with parameter bits resolved through ParamBind. Every entry
/// pair is then classified:
///
///   Disjoint    no overlap between either side's reads/writes and the
///               other's writes — safe to run concurrently.
///   Ordered     overlap in exactly one direction (one side reads what
///               the other writes) — safe if trace order is preserved.
///   Conflicting write/write overlap, or read/write overlap in both
///               directions.
///
/// The write-site records back the two cl-lint rules:
/// `parallel-unsafe-write` (a write whose target has no trackable
/// region, i.e. globalizes to unknown) and `cross-region-alias` (a write
/// whose target may alias two distinct direct roots of the function —
/// two parameters, two local sites, or one of each — so no partition by
/// region can claim it).
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_ANALYSIS_INTERFERENCE_H
#define CEAL_ANALYSIS_INTERFERENCE_H

#include "analysis/Dataflow.h"
#include "cl/Ir.h"

#include <string>
#include <vector>

namespace ceal {
namespace analysis {

/// One region class of the interference domain.
struct RegionClass {
  enum Kind : uint8_t {
    Site,    ///< modref()/alloc() at block B of function F.
    Input,   ///< the structure bound to pointer parameter P of F.
    Unknown, ///< unplaceable values; overlaps everything.
  } K = Unknown;
  cl::FuncId F = cl::InvalidId;
  cl::BlockId B = cl::InvalidId; ///< Site.
  cl::VarId P = cl::InvalidId;   ///< Input.

  /// Stable name: "site:F:label", "in:F:param", "unknown".
  std::string name(const cl::Program &Prog) const;
};

/// One write command of a function, with its may-target sets. Local
/// bits: [0, NumParams) the function's own parameters, then one bit per
/// global class. Global is Local with parameter bits resolved through
/// ParamBind.
struct WriteSite {
  cl::BlockId Block = cl::InvalidId;
  cl::VarId Ref = cl::InvalidId;
  BitVec Local;
  BitVec Global;
};

/// The split interference summary of one function (see file comment).
struct FuncInterference {
  BitVec ParamReads;  ///< NumParams bits; effect through own parameter.
  BitVec ParamWrites;
  BitVec ClassReads;  ///< NumClasses bits; effect on a known class.
  BitVec ClassWrites;
  std::vector<WriteSite> Writes; ///< Every Write command, in block order.
};

enum class PairRelation : uint8_t { Disjoint, Ordered, Conflicting };

const char *pairRelationName(PairRelation R);

/// An instantiated entry point with its resolved global effect sets
/// (NumClasses bits each).
struct EntryPoint {
  cl::FuncId F = cl::InvalidId;
  /// The block re-entered: 0 for the function entry, the read block for
  /// a read continuation. EntryBlock==0 means the function entry.
  cl::BlockId EntryBlock = 0;
  bool IsReadEntry = false;
  BitVec Reads;
  BitVec Writes;

  /// "fn:name" or "read:name:label".
  std::string name(const cl::Program &Prog) const;
};

/// The whole-program interference result.
struct InterferenceSummary {
  /// All region classes; Unknown is always last (index UnknownClass).
  std::vector<RegionClass> Classes;
  size_t UnknownClass = 0;
  /// Classes of values that may be stored inside each class's region.
  std::vector<BitVec> Contents;
  /// Per function, per parameter: classes that may be bound there
  /// (empty BitVec for non-pointer parameters).
  std::vector<std::vector<BitVec>> ParamBind;
  /// Per-function split summaries, indexed by FuncId.
  std::vector<FuncInterference> Funcs;
  /// All instantiated entry points: fn:F for every function, then every
  /// read continuation, grouped by function in program order.
  std::vector<EntryPoint> Entries;

  size_t numClasses() const { return Classes.size(); }

  /// Classifies one entry pair (symmetric; Ordered means exactly one
  /// side's writes meet the other's reads). Unknown overlaps every
  /// non-empty set.
  PairRelation classify(const EntryPoint &X, const EntryPoint &Y) const;

  /// True if A and B share a class, treating Unknown as a wildcard.
  bool overlaps(const BitVec &A, const BitVec &B) const;
};

/// Computes the interference summary of \p P. The program should be
/// structurally valid (run the verifier first); invalid references are
/// skipped conservatively.
InterferenceSummary computeInterference(const cl::Program &P);

} // namespace analysis
} // namespace ceal

#endif // CEAL_ANALYSIS_INTERFERENCE_H
