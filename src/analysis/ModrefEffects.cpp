//===- analysis/ModrefEffects.cpp - Modref effect summaries ----------------===//

#include "analysis/ModrefEffects.h"

using namespace ceal;
using namespace ceal::analysis;
using namespace ceal::cl;

namespace {

/// Per-variable origin sets within one function: bits [0, NumParams) are
/// parameter origins; bit NumParams is "other" (memory load, read
/// result, arithmetic); bit NumParams+1 is "locally allocated".
struct Origins {
  size_t NumParams = 0;
  std::vector<BitVec> Of; // One per variable.

  size_t otherBit() const { return NumParams; }
  size_t freshBit() const { return NumParams + 1; }
};

Origins computeOrigins(const Function &F) {
  Origins O;
  O.NumParams = F.NumParams;
  O.Of.assign(F.Vars.size(), BitVec(F.NumParams + 2));
  for (VarId P = 0; P < F.NumParams; ++P)
    O.Of[P].set(P);

  // Flow-insensitive: iterate copies until stable. Any non-copy
  // definition contributes "other" or "fresh".
  bool Changed = true;
  auto Mark = [&](VarId V, size_t Bit) {
    if (!O.Of[V].test(Bit)) {
      O.Of[V].set(Bit);
      Changed = true;
    }
  };
  while (Changed) {
    Changed = false;
    for (const BasicBlock &B : F.Blocks) {
      if (B.K != BasicBlock::Cmd)
        continue;
      const Command &C = B.C;
      switch (C.K) {
      case Command::Assign:
        if (C.E.K == Expr::Var)
          Changed |= O.Of[C.Dst].unionWith(O.Of[C.E.V]);
        else
          Mark(C.Dst, O.otherBit());
        break;
      case Command::Read:
        Mark(C.Dst, O.otherBit());
        break;
      case Command::ModrefAlloc:
      case Command::Alloc:
        Mark(C.Dst, O.freshBit());
        break;
      default:
        break;
      }
    }
  }
  return O;
}

/// Folds callee param effects into the caller summary, mapping callee
/// parameter \p J onto the caller-side origins of argument \p Arg.
void mapParamEffect(FuncEffects &E, const Origins &O, VarId Arg, bool Write) {
  BitVec &Params = Write ? E.WritesParams : E.ReadsParams;
  bool &Other = Write ? E.WritesOther : E.ReadsOther;
  O.Of[Arg].forEach([&](size_t Bit) {
    if (Bit < O.NumParams)
      Params.set(Bit);
    else
      Other = true; // "other" and "fresh" both escape the summary.
  });
}

} // namespace

std::vector<FuncEffects> analysis::computeModrefEffects(const Program &P) {
  size_t N = P.Funcs.size();
  std::vector<FuncEffects> FX(N);
  std::vector<Origins> Org(N);
  for (FuncId F = 0; F < N; ++F) {
    FX[F].ReadsParams = BitVec(P.Funcs[F].NumParams);
    FX[F].WritesParams = BitVec(P.Funcs[F].NumParams);
    Org[F] = computeOrigins(P.Funcs[F]);
  }

  auto Merge = [&](FuncEffects &E, const Origins &O, FuncId Callee,
                   const std::vector<VarId> &Args, size_t ArgOffset) {
    if (Callee >= N)
      return false; // Invalid reference; the verifier reports it.
    FuncEffects Before = E;
    const FuncEffects &CE = FX[Callee];
    E.ReadsOther |= CE.ReadsOther;
    E.WritesOther |= CE.WritesOther;
    E.Allocates |= CE.Allocates;
    for (size_t J = 0; J < P.Funcs[Callee].NumParams; ++J) {
      if (J < ArgOffset) {
        // Implicit leading parameter (the alloc'd block): fresh memory.
        if (CE.ReadsParams.test(J))
          E.ReadsOther = true;
        if (CE.WritesParams.test(J))
          E.WritesOther = true;
        continue;
      }
      size_t AI = J - ArgOffset;
      if (AI >= Args.size() || Args[AI] >= O.Of.size())
        continue; // Arity mismatch / bad ref; the verifier reports it.
      if (CE.ReadsParams.test(J))
        mapParamEffect(E, O, Args[AI], /*Write=*/false);
      if (CE.WritesParams.test(J))
        mapParamEffect(E, O, Args[AI], /*Write=*/true);
    }
    return E.ReadsOther != Before.ReadsOther ||
           E.WritesOther != Before.WritesOther ||
           E.Allocates != Before.Allocates ||
           E.ReadsParams != Before.ReadsParams ||
           E.WritesParams != Before.WritesParams;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (FuncId FI = 0; FI < N; ++FI) {
      const Function &F = P.Funcs[FI];
      FuncEffects &E = FX[FI];
      const Origins &O = Org[FI];
      auto MergeJump = [&](const Jump &J) {
        if (J.K == Jump::Tail)
          Changed |= Merge(E, O, J.Fn, J.Args, 0);
      };
      for (const BasicBlock &B : F.Blocks) {
        if (B.K == BasicBlock::Cond) {
          MergeJump(B.J1);
          MergeJump(B.J2);
          continue;
        }
        if (B.K != BasicBlock::Cmd)
          continue;
        const Command &C = B.C;
        switch (C.K) {
        case Command::Read:
          if (C.Src < F.Vars.size())
            Changed |= [&] {
              FuncEffects Before = E;
              mapParamEffect(E, O, C.Src, /*Write=*/false);
              return E.ReadsOther != Before.ReadsOther ||
                     E.ReadsParams != Before.ReadsParams;
            }();
          break;
        case Command::Write:
          if (C.Ref < F.Vars.size())
            Changed |= [&] {
              FuncEffects Before = E;
              mapParamEffect(E, O, C.Ref, /*Write=*/true);
              return E.WritesOther != Before.WritesOther ||
                     E.WritesParams != Before.WritesParams;
            }();
          break;
        case Command::ModrefAlloc:
          if (!E.Allocates) {
            E.Allocates = true;
            Changed = true;
          }
          break;
        case Command::Alloc:
          if (!E.Allocates) {
            E.Allocates = true;
            Changed = true;
          }
          Changed |= Merge(E, O, C.Fn, C.Args, /*ArgOffset=*/1);
          break;
        case Command::Call:
          Changed |= Merge(E, O, C.Fn, C.Args, 0);
          break;
        default:
          break;
        }
        MergeJump(B.J);
      }
    }
  }
  return FX;
}
