//===- cl/Parser.cpp - CL parser -------------------------------------------===//

#include "cl/Parser.h"

#include "cl/Lexer.h"

#include <map>

using namespace ceal;
using namespace ceal::cl;

namespace {

const std::map<std::string, OpKind> &opTable() {
  static const std::map<std::string, OpKind> Table = {
      {"add", OpKind::Add}, {"sub", OpKind::Sub}, {"mul", OpKind::Mul},
      {"div", OpKind::Div}, {"mod", OpKind::Mod}, {"lt", OpKind::Lt},
      {"le", OpKind::Le},   {"gt", OpKind::Gt},   {"ge", OpKind::Ge},
      {"eq", OpKind::Eq},   {"ne", OpKind::Ne},   {"and", OpKind::And},
      {"or", OpKind::Or},   {"not", OpKind::Not}, {"neg", OpKind::Neg},
  };
  return Table;
}

class Parser {
public:
  explicit Parser(const std::string &Source) : Tokens(lex(Source)) {}

  ParseResult run() {
    // Pre-scan function names so references may be forward.
    for (size_t I = 0; I + 1 < Tokens.size(); ++I)
      if (Tokens[I].K == Token::Ident && Tokens[I].Text == "func" &&
          Tokens[I + 1].K == Token::Ident) {
        if (FuncIds.count(Tokens[I + 1].Text))
          return fail(Tokens[I + 1].Line,
                      "duplicate function '" + Tokens[I + 1].Text + "'");
        FuncIds[Tokens[I + 1].Text] = static_cast<FuncId>(FuncIds.size());
      }
    Prog.Funcs.resize(FuncIds.size());
    while (!Failed && peek().K != Token::EndOfFile)
      parseFunc();
    if (Failed)
      return {std::nullopt, Error};
    if (Prog.Funcs.empty())
      return fail(1, "empty program");
    return {std::move(Prog), ""};
  }

private:
  const Token &peek() const { return Tokens[Pos]; }
  Token next() { return Tokens[Pos++]; }

  ParseResult fail(unsigned Line, const std::string &Msg) {
    if (!Failed) {
      Failed = true;
      Error = "line " + std::to_string(Line) + ": " + Msg;
    }
    return {std::nullopt, Error};
  }
  void err(const std::string &Msg) { fail(peek().Line, Msg); }

  bool expect(Token::Kind K, const char *What) {
    if (peek().K != K) {
      err(std::string("expected ") + What + ", found '" + peek().Text + "'");
      return false;
    }
    ++Pos;
    return true;
  }

  bool expectKeyword(const char *KW) {
    if (peek().K != Token::Ident || peek().Text != KW) {
      err(std::string("expected '") + KW + "', found '" + peek().Text + "'");
      return false;
    }
    ++Pos;
    return true;
  }

  std::string parseIdent(const char *What) {
    if (peek().K != Token::Ident) {
      err(std::string("expected ") + What);
      return "";
    }
    return next().Text;
  }

  std::optional<Type> parseType() {
    std::string Base = parseIdent("type");
    if (Failed)
      return std::nullopt;
    Type T;
    if (Base == "int")
      T.Base = Type::Int;
    else if (Base == "modref")
      T.Base = Type::Modref;
    else {
      err("unknown type '" + Base + "'");
      return std::nullopt;
    }
    while (peek().K == Token::Star) {
      ++Pos;
      ++T.Indirection;
    }
    return T;
  }

  VarId lookupVar(const std::string &Name) {
    auto It = VarIds.find(Name);
    if (It == VarIds.end()) {
      err("unknown variable '" + Name + "'");
      return InvalidId;
    }
    return It->second;
  }

  VarId parseVarRef() { return lookupVar(parseIdent("variable")); }

  FuncId lookupFunc(const std::string &Name) {
    auto It = FuncIds.find(Name);
    if (It == FuncIds.end()) {
      err("unknown function '" + Name + "'");
      return InvalidId;
    }
    return It->second;
  }

  /// Parses "( [x ("," x)*] )".
  std::vector<VarId> parseVarList() {
    std::vector<VarId> Args;
    if (!expect(Token::LParen, "'('"))
      return Args;
    if (peek().K != Token::RParen) {
      Args.push_back(parseVarRef());
      while (!Failed && peek().K == Token::Comma) {
        ++Pos;
        Args.push_back(parseVarRef());
      }
    }
    expect(Token::RParen, "')'");
    return Args;
  }

  Jump parseJump() {
    std::string KW = parseIdent("jump");
    if (KW == "goto") {
      std::string Label = parseIdent("label");
      Jump J;
      J.K = Jump::Goto;
      // Targets may be forward references; store an index into
      // PendingLabels (tagged) and resolve at function end.
      PendingLabels.push_back(Label);
      J.Target = static_cast<BlockId>(PendingLabels.size() - 1) | LabelTag;
      return J;
    }
    if (KW == "tail") {
      std::string Name = parseIdent("function");
      Jump J;
      J.K = Jump::Tail;
      J.Fn = Failed ? InvalidId : lookupFunc(Name);
      J.Args = parseVarList();
      return J;
    }
    err("expected 'goto' or 'tail'");
    return Jump();
  }

  Expr parseExpr() {
    if (peek().K == Token::Number)
      return Expr::makeConst(next().Value);
    std::string Name = parseIdent("expression");
    if (Failed)
      return Expr();
    auto OpIt = opTable().find(Name);
    if (OpIt != opTable().end() && peek().K == Token::LParen) {
      std::vector<VarId> Args = parseVarList();
      if (!Failed && Args.size() != opArity(OpIt->second))
        err("operator '" + Name + "' expects " +
            std::to_string(opArity(OpIt->second)) + " operands");
      return Expr::makePrim(OpIt->second, std::move(Args));
    }
    VarId V = lookupVar(Name);
    if (peek().K == Token::LBracket) {
      ++Pos;
      VarId Idx = parseVarRef();
      expect(Token::RBracket, "']'");
      return Expr::makeIndex(V, Idx);
    }
    return Expr::makeVar(V);
  }

  Command parseCommandStartingWithIdent(const std::string &First) {
    Command C;
    if (First == "nop") {
      C.K = Command::Nop;
      return C;
    }
    if (First == "write") {
      C.K = Command::Write;
      expect(Token::LParen, "'('");
      C.Ref = parseVarRef();
      expect(Token::Comma, "','");
      C.Val = parseVarRef();
      expect(Token::RParen, "')'");
      return C;
    }
    if (First == "call") {
      C.K = Command::Call;
      std::string Name = parseIdent("function");
      if (!Failed)
        C.Fn = lookupFunc(Name);
      C.Args = parseVarList();
      return C;
    }
    // Assignment forms: x := ... or x[y] := ...
    VarId Dst = lookupVar(First);
    if (peek().K == Token::LBracket) {
      ++Pos;
      C.K = Command::Store;
      C.Base = Dst;
      C.Idx = parseVarRef();
      expect(Token::RBracket, "']'");
      expect(Token::Assign, "':='");
      C.E = parseExpr();
      return C;
    }
    if (!expect(Token::Assign, "':='"))
      return C;
    if (peek().K == Token::Ident) {
      const std::string &KW = peek().Text;
      if (KW == "modref" && Tokens[Pos + 1].K == Token::LParen) {
        ++Pos;
        C.K = Command::ModrefAlloc;
        C.Dst = Dst;
        C.Args = parseVarList(); // Optional memo-key arguments.
        return C;
      }
      if (KW == "read") {
        ++Pos;
        C.K = Command::Read;
        C.Dst = Dst;
        C.Src = parseVarRef();
        return C;
      }
      if (KW == "alloc") {
        ++Pos;
        C.K = Command::Alloc;
        C.Dst = Dst;
        expect(Token::LParen, "'('");
        C.SizeVar = parseVarRef();
        expect(Token::Comma, "','");
        std::string Init = parseIdent("init function");
        if (!Failed)
          C.Fn = lookupFunc(Init);
        while (!Failed && peek().K == Token::Comma) {
          ++Pos;
          C.Args.push_back(parseVarRef());
        }
        expect(Token::RParen, "')'");
        return C;
      }
    }
    C.K = Command::Assign;
    C.Dst = Dst;
    C.E = parseExpr();
    return C;
  }

  void parseBlock(Function &F) {
    std::string Label = parseIdent("label");
    if (!expect(Token::Colon, "':'"))
      return;
    if (Labels.count(Label)) {
      err("duplicate label '" + Label + "'");
      return;
    }
    Labels[Label] = static_cast<BlockId>(F.Blocks.size());
    BasicBlock B;
    B.Label = Label;
    if (peek().K == Token::Ident && peek().Text == "done") {
      ++Pos;
      B.K = BasicBlock::Done;
      expect(Token::Semi, "';'");
    } else if (peek().K == Token::Ident && peek().Text == "if") {
      ++Pos;
      B.K = BasicBlock::Cond;
      B.CondVar = parseVarRef();
      expectKeyword("then");
      B.J1 = parseJump();
      expectKeyword("else");
      B.J2 = parseJump();
      expect(Token::Semi, "';'");
    } else {
      B.K = BasicBlock::Cmd;
      std::string First = parseIdent("command");
      if (Failed)
        return;
      B.C = parseCommandStartingWithIdent(First);
      expect(Token::Semi, "';'");
      B.J = parseJump();
      expect(Token::Semi, "';'");
    }
    F.Blocks.push_back(std::move(B));
  }

  void resolveLabels(Function &F, unsigned Line) {
    auto Resolve = [&](Jump &J) {
      if (J.K != Jump::Goto || !(J.Target & LabelTag))
        return;
      const std::string &Label = PendingLabels[J.Target & ~LabelTag];
      auto It = Labels.find(Label);
      if (It == Labels.end()) {
        fail(Line, "undefined label '" + Label + "' in function " + F.Name);
        return;
      }
      J.Target = It->second;
    };
    for (BasicBlock &B : F.Blocks) {
      if (B.K == BasicBlock::Cond) {
        Resolve(B.J1);
        Resolve(B.J2);
      } else if (B.K == BasicBlock::Cmd) {
        Resolve(B.J);
      }
    }
  }

  void parseFunc() {
    unsigned StartLine = peek().Line;
    if (!expectKeyword("func"))
      return;
    std::string Name = parseIdent("function name");
    if (Failed)
      return;
    FuncId Id = FuncIds.at(Name);
    Function &F = Prog.Funcs[Id];
    F.Name = Name;
    VarIds.clear();
    Labels.clear();
    PendingLabels.clear();
    expect(Token::LParen, "'('");
    if (peek().K != Token::RParen) {
      do {
        auto Ty = parseType();
        if (!Ty)
          return;
        std::string VarName = parseIdent("parameter name");
        if (Failed)
          return;
        if (VarIds.count(VarName)) {
          err("duplicate parameter '" + VarName + "'");
          return;
        }
        VarIds[VarName] = static_cast<VarId>(F.Vars.size());
        F.Vars.push_back({VarName, *Ty});
        ++F.NumParams;
      } while (!Failed && peek().K == Token::Comma && (++Pos, true));
    }
    expect(Token::RParen, "')'");
    expect(Token::LBrace, "'{'");
    while (!Failed && peek().K == Token::Ident && peek().Text == "var") {
      ++Pos;
      auto Ty = parseType();
      if (!Ty)
        return;
      std::string VarName = parseIdent("variable name");
      if (Failed)
        return;
      if (VarIds.count(VarName)) {
        err("duplicate variable '" + VarName + "'");
        return;
      }
      VarIds[VarName] = static_cast<VarId>(F.Vars.size());
      F.Vars.push_back({VarName, *Ty});
      expect(Token::Semi, "';'");
    }
    while (!Failed && peek().K != Token::RBrace &&
           peek().K != Token::EndOfFile)
      parseBlock(F);
    expect(Token::RBrace, "'}'");
    if (!Failed && F.Blocks.empty()) {
      fail(StartLine, "function '" + Name + "' has no blocks");
      return;
    }
    if (!Failed)
      resolveLabels(F, StartLine);
  }

  static constexpr BlockId LabelTag = BlockId(1) << 30;

  std::vector<Token> Tokens;
  size_t Pos = 0;
  Program Prog;
  std::map<std::string, FuncId> FuncIds;
  std::map<std::string, VarId> VarIds;   // Per current function.
  std::map<std::string, BlockId> Labels; // Per current function.
  std::vector<std::string> PendingLabels;
  bool Failed = false;
  std::string Error;
};

} // namespace

ParseResult cl::parseProgram(const std::string &Source) {
  return Parser(Source).run();
}
