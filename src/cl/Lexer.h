//===- cl/Lexer.h - CL lexer -----------------------------------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small hand-rolled lexer for CL concrete syntax. Tokens carry their
/// line number for diagnostics. `//` comments run to end of line.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_CL_LEXER_H
#define CEAL_CL_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace ceal {
namespace cl {

struct Token {
  enum Kind : uint8_t {
    Ident,
    Number,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Colon,
    Assign, // :=
    Star,
    EndOfFile,
    Error,
  } K;
  std::string Text;
  int64_t Value = 0;
  unsigned Line = 0;
};

/// Lexes \p Source completely; the last token is EndOfFile (or Error with
/// the offending text).
std::vector<Token> lex(const std::string &Source);

} // namespace cl
} // namespace ceal

#endif // CEAL_CL_LEXER_H
