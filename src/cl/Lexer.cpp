//===- cl/Lexer.cpp - CL lexer ---------------------------------------------===//

#include "cl/Lexer.h"

#include <cctype>

using namespace ceal;
using namespace ceal::cl;

std::vector<Token> cl::lex(const std::string &Source) {
  std::vector<Token> Tokens;
  unsigned Line = 1;
  size_t I = 0, N = Source.size();
  auto Push = [&](Token::Kind K, std::string Text, int64_t Value = 0) {
    Tokens.push_back({K, std::move(Text), Value, Line});
  };
  while (I < N) {
    char C = Source[I];
    if (C == '\n') {
      ++Line;
      ++I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    if (C == '/' && I + 1 < N && Source[I + 1] == '/') {
      while (I < N && Source[I] != '\n')
        ++I;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_'))
        ++I;
      Push(Token::Ident, Source.substr(Start, I - Start));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '-' && I + 1 < N &&
         std::isdigit(static_cast<unsigned char>(Source[I + 1])))) {
      size_t Start = I;
      if (C == '-')
        ++I;
      while (I < N && std::isdigit(static_cast<unsigned char>(Source[I])))
        ++I;
      std::string Text = Source.substr(Start, I - Start);
      Push(Token::Number, Text, std::stoll(Text));
      continue;
    }
    switch (C) {
    case '(':
      Push(Token::LParen, "(");
      ++I;
      continue;
    case ')':
      Push(Token::RParen, ")");
      ++I;
      continue;
    case '[':
      Push(Token::LBracket, "[");
      ++I;
      continue;
    case ']':
      Push(Token::RBracket, "]");
      ++I;
      continue;
    case '{':
      Push(Token::LBrace, "{");
      ++I;
      continue;
    case '}':
      Push(Token::RBrace, "}");
      ++I;
      continue;
    case ',':
      Push(Token::Comma, ",");
      ++I;
      continue;
    case ';':
      Push(Token::Semi, ";");
      ++I;
      continue;
    case '*':
      Push(Token::Star, "*");
      ++I;
      continue;
    case ':':
      if (I + 1 < N && Source[I + 1] == '=') {
        Push(Token::Assign, ":=");
        I += 2;
      } else {
        Push(Token::Colon, ":");
        ++I;
      }
      continue;
    default:
      Push(Token::Error, std::string(1, C));
      return Tokens;
    }
  }
  Push(Token::EndOfFile, "");
  return Tokens;
}
