//===- cl/Diagnostic.h - Located CL diagnostics ----------------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A located diagnostic for CL programs, shared by the verifier, the
/// dataflow analyses, and cl-lint. Locations are IR coordinates
/// (function, block, index-within-block); Printer.h renders them against
/// the program source.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_CL_DIAGNOSTIC_H
#define CEAL_CL_DIAGNOSTIC_H

#include "cl/Ir.h"

#include <string>
#include <vector>

namespace ceal {
namespace cl {

enum class Severity { Error, Warning, Note };

inline const char *severityName(Severity S) {
  switch (S) {
  case Severity::Error:
    return "error";
  case Severity::Warning:
    return "warning";
  case Severity::Note:
    return "note";
  }
  return "?";
}

/// A diagnostic anchored to a position in the CL IR.
///
/// \c Block may be InvalidId for function-level diagnostics (e.g. "has no
/// blocks"). \c Index locates the element within the block: 0 is the
/// command (or the cond variable / done marker), 1 the first jump (J, or
/// J1 of a cond), 2 the second jump (J2 of a cond).
struct Diagnostic {
  FuncId Function = InvalidId;
  BlockId Block = InvalidId;
  uint32_t Index = 0;
  Severity Sev = Severity::Error;
  /// Stable machine-readable check name (e.g. "verify", "redundant-read").
  std::string Check;
  std::string Message;

  bool isError() const { return Sev == Severity::Error; }
};

inline size_t countErrors(const std::vector<Diagnostic> &Ds) {
  size_t N = 0;
  for (const Diagnostic &D : Ds)
    N += D.isError();
  return N;
}

} // namespace cl
} // namespace ceal

#endif // CEAL_CL_DIAGNOSTIC_H
