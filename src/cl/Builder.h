//===- cl/Builder.h - Convenience construction of CL programs --*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fluent builder for CL programs, used by tests, the random
/// program generator, and the normalizer (which synthesizes fresh
/// functions, Sec. 5.3).
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_CL_BUILDER_H
#define CEAL_CL_BUILDER_H

#include "cl/Ir.h"

namespace ceal {
namespace cl {

/// Builds one function; obtain from ProgramBuilder::beginFunc.
class FuncBuilder {
public:
  FuncBuilder(Program &P, FuncId F) : Prog(P), Func(F) {}

  FuncId id() const { return Func; }

  VarId param(const std::string &Name, Type Ty);
  VarId local(const std::string &Name, Type Ty);

  /// Creates an empty block with a fresh (or given) label; blocks are
  /// created in order, the first being the entry.
  BlockId block(const std::string &Label = "");

  // Block-filling helpers; each finalizes the given block.
  void setDone(BlockId B);
  void setCond(BlockId B, VarId V, Jump Then, Jump Else);
  void setCmd(BlockId B, Command C, Jump J);

  // Command constructors.
  static Command nop();
  static Command assign(VarId Dst, Expr E);
  static Command store(VarId Base, VarId Idx, Expr E);
  static Command modrefAlloc(VarId Dst, std::vector<VarId> Keys = {});
  static Command read(VarId Dst, VarId Src);
  static Command write(VarId Ref, VarId Val);
  static Command alloc(VarId Dst, VarId SizeVar, FuncId Init,
                       std::vector<VarId> Args);
  static Command call(FuncId Fn, std::vector<VarId> Args);

private:
  Function &func() { return Prog.Funcs[Func]; }
  Program &Prog;
  FuncId Func;
};

/// Builds a whole program.
class ProgramBuilder {
public:
  FuncBuilder beginFunc(const std::string &Name);
  Program take() { return std::move(Prog); }
  Program &program() { return Prog; }

private:
  Program Prog;
};

} // namespace cl
} // namespace ceal

#endif // CEAL_CL_BUILDER_H
