//===- cl/Ir.cpp - The CL core language IR ---------------------------------===//

#include "cl/Ir.h"

using namespace ceal;
using namespace ceal::cl;

const char *cl::opName(OpKind Op) {
  switch (Op) {
  case OpKind::Add: return "add";
  case OpKind::Sub: return "sub";
  case OpKind::Mul: return "mul";
  case OpKind::Div: return "div";
  case OpKind::Mod: return "mod";
  case OpKind::Lt:  return "lt";
  case OpKind::Le:  return "le";
  case OpKind::Gt:  return "gt";
  case OpKind::Ge:  return "ge";
  case OpKind::Eq:  return "eq";
  case OpKind::Ne:  return "ne";
  case OpKind::And: return "and";
  case OpKind::Or:  return "or";
  case OpKind::Not: return "not";
  case OpKind::Neg: return "neg";
  }
  return "?";
}

unsigned cl::opArity(OpKind Op) {
  switch (Op) {
  case OpKind::Not:
  case OpKind::Neg:
    return 1;
  default:
    return 2;
  }
}

static size_t exprWords(const Expr &E) {
  switch (E.K) {
  case Expr::Const:
  case Expr::Var:
    return 1;
  case Expr::Prim:
    return 1 + E.Args.size();
  case Expr::Index:
    return 2;
  }
  return 1;
}

static size_t jumpWords(const Jump &J) {
  return J.K == Jump::Goto ? 1 : 1 + J.Args.size();
}

static size_t commandWords(const Command &C) {
  switch (C.K) {
  case Command::Nop:
    return 1;
  case Command::Assign:
    return 1 + exprWords(C.E);
  case Command::Store:
    return 2 + exprWords(C.E);
  case Command::ModrefAlloc:
    return 1;
  case Command::Read:
    return 2;
  case Command::Write:
    return 2;
  case Command::Alloc:
    return 3 + C.Args.size();
  case Command::Call:
    return 1 + C.Args.size();
  }
  return 1;
}

size_t Program::sizeInWords() const {
  size_t Words = 0;
  for (const Function &F : Funcs) {
    Words += 1 + F.Vars.size(); // Name + declarations.
    for (const BasicBlock &B : F.Blocks) {
      Words += 1; // Label.
      switch (B.K) {
      case BasicBlock::Done:
        Words += 1;
        break;
      case BasicBlock::Cond:
        Words += 1 + jumpWords(B.J1) + jumpWords(B.J2);
        break;
      case BasicBlock::Cmd:
        Words += commandWords(B.C) + jumpWords(B.J);
        break;
      }
    }
  }
  return Words;
}
