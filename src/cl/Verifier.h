//===- cl/Verifier.h - CL structural checks --------------------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural verification of CL programs: reference validity, call
/// arities, and the normal-form predicate of Sec. 5 ("every read command
/// is in a tail-jump block"), which translation and the self-adjusting VM
/// require.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_CL_VERIFIER_H
#define CEAL_CL_VERIFIER_H

#include "cl/Diagnostic.h"
#include "cl/Ir.h"

#include <string>
#include <vector>

namespace ceal {
namespace cl {

/// Checks structural well-formedness; returns located diagnostics
/// (empty if OK). Every diagnostic has Check == "verify" and Severity
/// Error, anchored at the offending block/index.
std::vector<Diagnostic> verifyProgramDiags(const Program &P);

/// String-compat shim over verifyProgramDiags: one "function 'f': ..."
/// line per diagnostic, as the original interface produced.
std::vector<std::string> verifyProgram(const Program &P);

/// True iff every read command is immediately followed by a tail jump
/// (the normal form produced by NORMALIZE, Sec. 5).
bool isNormalForm(const Program &P);

} // namespace cl
} // namespace ceal

#endif // CEAL_CL_VERIFIER_H
