//===- cl/Verifier.h - CL structural checks --------------------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural verification of CL programs: reference validity, call
/// arities, and the normal-form predicate of Sec. 5 ("every read command
/// is in a tail-jump block"), which translation and the self-adjusting VM
/// require.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_CL_VERIFIER_H
#define CEAL_CL_VERIFIER_H

#include "cl/Ir.h"

#include <string>
#include <vector>

namespace ceal {
namespace cl {

/// Checks structural well-formedness; returns diagnostics (empty if OK).
std::vector<std::string> verifyProgram(const Program &P);

/// True iff every read command is immediately followed by a tail jump
/// (the normal form produced by NORMALIZE, Sec. 5).
bool isNormalForm(const Program &P);

} // namespace cl
} // namespace ceal

#endif // CEAL_CL_VERIFIER_H
