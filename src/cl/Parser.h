//===- cl/Parser.h - CL parser ---------------------------------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for CL concrete syntax. The grammar (comments with `//`):
///
///   program  := funcdef*
///   funcdef  := "func" IDENT "(" [param ("," param)*] ")" "{"
///                 vardecl* block+ "}"
///   param    := type IDENT
///   vardecl  := "var" type IDENT ";"
///   type     := ("int" | "modref") "*"*
///   block    := IDENT ":" body
///   body     := "done" ";"
///             | "if" IDENT "then" jump "else" jump ";"
///             | command ";" jump ";"
///   command  := "nop"
///             | IDENT ":=" "modref" "(" ")"
///             | IDENT ":=" "read" IDENT
///             | IDENT ":=" "alloc" "(" IDENT "," IDENT ("," IDENT)* ")"
///             | IDENT ":=" expr
///             | IDENT "[" IDENT "]" ":=" expr
///             | "write" "(" IDENT "," IDENT ")"
///             | "call" IDENT "(" [IDENT ("," IDENT)*] ")"
///   jump     := "goto" IDENT | "tail" IDENT "(" [IDENT ("," IDENT)*] ")"
///   expr     := NUMBER | IDENT | IDENT "[" IDENT "]"
///             | OP "(" [IDENT ("," IDENT)*] ")"
///
/// Function and label references may be forward.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_CL_PARSER_H
#define CEAL_CL_PARSER_H

#include "cl/Ir.h"

#include <optional>
#include <string>

namespace ceal {
namespace cl {

struct ParseResult {
  std::optional<Program> Prog;
  std::string Error; ///< Empty on success; "line N: message" otherwise.

  explicit operator bool() const { return Prog.has_value(); }
};

ParseResult parseProgram(const std::string &Source);

} // namespace cl
} // namespace ceal

#endif // CEAL_CL_PARSER_H
