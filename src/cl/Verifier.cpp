//===- cl/Verifier.cpp - CL structural checks ------------------------------===//

#include "cl/Verifier.h"

using namespace ceal;
using namespace ceal::cl;

namespace {

class Verifier {
public:
  explicit Verifier(const Program &P) : Prog(P) {}

  std::vector<Diagnostic> run() {
    for (FuncId I = 0; I < Prog.Funcs.size(); ++I)
      function(I);
    return std::move(Diags);
  }

private:
  void diag(const std::string &Msg) {
    Diagnostic D;
    D.Function = CurFuncId;
    D.Block = CurBlock;
    D.Index = CurIndex;
    D.Sev = Severity::Error;
    D.Check = "verify";
    D.Message = Msg;
    Diags.push_back(std::move(D));
  }

  void checkVar(VarId V, const char *What) {
    if (V == InvalidId || V >= CurFunc->Vars.size())
      diag(std::string("invalid variable reference in ") + What);
  }

  void checkVars(const std::vector<VarId> &Vs, const char *What) {
    for (VarId V : Vs)
      checkVar(V, What);
  }

  void checkFuncRef(FuncId F, size_t NumArgs, const char *What) {
    if (F == InvalidId || F >= Prog.Funcs.size()) {
      diag(std::string("invalid function reference in ") + What);
      return;
    }
    if (Prog.Funcs[F].NumParams != NumArgs)
      diag(std::string(What) + " to '" + Prog.Funcs[F].Name + "' passes " +
           std::to_string(NumArgs) + " arguments, expected " +
           std::to_string(Prog.Funcs[F].NumParams));
  }

  void checkExpr(const Expr &E) {
    switch (E.K) {
    case Expr::Const:
      break;
    case Expr::Var:
      checkVar(E.V, "expression");
      break;
    case Expr::Prim:
      if (E.Args.size() != opArity(E.Op))
        diag(std::string("operator '") + opName(E.Op) +
             "' has wrong operand count");
      checkVars(E.Args, "expression");
      break;
    case Expr::Index:
      checkVar(E.V, "index base");
      checkVar(E.Idx, "index subscript");
      break;
    }
  }

  void checkJump(const Jump &J, const char *Where) {
    if (J.K == Jump::Goto) {
      if (J.Target >= CurFunc->Blocks.size())
        diag(std::string("goto to invalid block in ") + Where);
      return;
    }
    checkFuncRef(J.Fn, J.Args.size(), "tail jump");
    checkVars(J.Args, "tail jump");
  }

  void checkCommand(const Command &C) {
    switch (C.K) {
    case Command::Nop:
      break;
    case Command::Assign:
      checkVar(C.Dst, "assignment");
      checkExpr(C.E);
      break;
    case Command::Store:
      checkVar(C.Base, "store base");
      checkVar(C.Idx, "store subscript");
      checkExpr(C.E);
      break;
    case Command::ModrefAlloc:
      checkVar(C.Dst, "modref()");
      checkVars(C.Args, "modref() key");
      break;
    case Command::Read:
      checkVar(C.Dst, "read");
      checkVar(C.Src, "read");
      if (C.Src < CurFunc->Vars.size() &&
          !CurFunc->Vars[C.Src].Ty.isModrefPtr())
        diag("read of non-modref* variable '" + CurFunc->Vars[C.Src].Name +
             "'");
      break;
    case Command::Write:
      checkVar(C.Ref, "write");
      checkVar(C.Val, "write");
      if (C.Ref < CurFunc->Vars.size() &&
          !CurFunc->Vars[C.Ref].Ty.isModrefPtr())
        diag("write to non-modref* variable '" + CurFunc->Vars[C.Ref].Name +
             "'");
      break;
    case Command::Alloc:
      checkVar(C.Dst, "alloc");
      checkVar(C.SizeVar, "alloc size");
      // The init function receives the block plus the extra arguments.
      checkFuncRef(C.Fn, C.Args.size() + 1, "alloc initializer");
      checkVars(C.Args, "alloc");
      break;
    case Command::Call:
      checkFuncRef(C.Fn, C.Args.size(), "call");
      checkVars(C.Args, "call");
      break;
    }
  }

  void function(FuncId Id) {
    CurFuncId = Id;
    CurFunc = &Prog.Funcs[Id];
    CurBlock = InvalidId;
    CurIndex = 0;
    if (CurFunc->Blocks.empty()) {
      diag("has no blocks");
      return;
    }
    if (CurFunc->NumParams > CurFunc->Vars.size())
      diag("parameter count exceeds variable count");
    for (BlockId B = 0; B < CurFunc->Blocks.size(); ++B) {
      const BasicBlock &BB = CurFunc->Blocks[B];
      CurBlock = B;
      CurIndex = 0;
      switch (BB.K) {
      case BasicBlock::Done:
        break;
      case BasicBlock::Cond:
        checkVar(BB.CondVar, "cond");
        CurIndex = 1;
        checkJump(BB.J1, "cond then");
        CurIndex = 2;
        checkJump(BB.J2, "cond else");
        break;
      case BasicBlock::Cmd:
        checkCommand(BB.C);
        CurIndex = 1;
        checkJump(BB.J, "block jump");
        break;
      }
    }
  }

  const Program &Prog;
  FuncId CurFuncId = InvalidId;
  const Function *CurFunc = nullptr;
  BlockId CurBlock = InvalidId;
  uint32_t CurIndex = 0;
  std::vector<Diagnostic> Diags;
};

} // namespace

std::vector<Diagnostic> cl::verifyProgramDiags(const Program &P) {
  return Verifier(P).run();
}

std::vector<std::string> cl::verifyProgram(const Program &P) {
  std::vector<std::string> Out;
  for (const Diagnostic &D : verifyProgramDiags(P)) {
    const std::string &FName =
        D.Function < P.Funcs.size() ? P.Funcs[D.Function].Name : "?";
    Out.push_back("function '" + FName + "': " + D.Message);
  }
  return Out;
}

bool cl::isNormalForm(const Program &P) {
  for (const Function &F : P.Funcs)
    for (const BasicBlock &B : F.Blocks)
      if (B.K == BasicBlock::Cmd && B.C.K == Command::Read &&
          B.J.K != Jump::Tail)
        return false;
  return true;
}
