//===- cl/Ir.h - The CL core language IR -----------------------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CL, the paper's core language (Sec. 4.1, Fig. 6):
///
///   Types  t ::= int | modref_t | t*
///   Exprs  e ::= v | o(x...) | x[y]
///   Cmds   c ::= nop | x := e | x[y] := e | x := modref()
///              | x := read y | write x y | x := alloc y f z | call f(x)
///   Jumps  j ::= goto l | tail f(x)
///   Blocks b ::= {l: done} | {l: cond x j1 j2} | {l: c ; j}
///   Funs   F ::= f(t1 x) { t2 y; b }
///
/// Programs are sets of functions; each function owns its variables
/// (parameters + locals) and its basic blocks (block 0 is the entry).
/// There are no return values: results flow through modifiables
/// (destination-passing style, Sec. 10).
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_CL_IR_H
#define CEAL_CL_IR_H

#include <cstdint>
#include <string>
#include <vector>

namespace ceal {
namespace cl {

using VarId = uint32_t;
using BlockId = uint32_t;
using FuncId = uint32_t;
constexpr uint32_t InvalidId = ~uint32_t(0);

/// A CL type: a base (int or modref_t) with some levels of indirection.
struct Type {
  enum BaseKind : uint8_t { Int, Modref } Base = Int;
  uint8_t Indirection = 0; ///< Number of trailing '*'.

  static Type intTy() { return {Int, 0}; }
  static Type modrefTy() { return {Modref, 0}; }
  static Type ptrTo(Type T) {
    ++T.Indirection;
    return T;
  }
  bool isModrefPtr() const { return Base == Modref && Indirection == 1; }
  bool operator==(const Type &O) const {
    return Base == O.Base && Indirection == O.Indirection;
  }
  std::string str() const {
    std::string S = Base == Int ? "int" : "modref";
    S.append(Indirection, '*');
    return S;
  }
};

/// Primitive operators (the unspecified `o` of the grammar).
enum class OpKind : uint8_t {
  Add, Sub, Mul, Div, Mod,
  Lt, Le, Gt, Ge, Eq, Ne,
  And, Or, Not, Neg,
};

const char *opName(OpKind Op);
unsigned opArity(OpKind Op);

/// An expression: constant, variable, primitive application over
/// variables, or array dereference x[y].
struct Expr {
  enum Kind : uint8_t { Const, Var, Prim, Index } K = Const;
  int64_t IntVal = 0;          ///< Const.
  VarId V = InvalidId;         ///< Var, or base of Index.
  VarId Idx = InvalidId;       ///< Index subscript.
  OpKind Op = OpKind::Add;     ///< Prim.
  std::vector<VarId> Args;     ///< Prim operands.

  static Expr makeConst(int64_t N) {
    Expr E;
    E.K = Const;
    E.IntVal = N;
    return E;
  }
  static Expr makeVar(VarId V) {
    Expr E;
    E.K = Var;
    E.V = V;
    return E;
  }
  static Expr makePrim(OpKind Op, std::vector<VarId> Args) {
    Expr E;
    E.K = Prim;
    E.Op = Op;
    E.Args = std::move(Args);
    return E;
  }
  static Expr makeIndex(VarId Base, VarId Idx) {
    Expr E;
    E.K = Index;
    E.V = Base;
    E.Idx = Idx;
    return E;
  }
};

/// A command (the `c` of the grammar).
struct Command {
  enum Kind : uint8_t {
    Nop,         ///< nop
    Assign,      ///< Dst := E
    Store,       ///< Base[Idx] := E
    ModrefAlloc, ///< Dst := modref(Keys...) — keys identify the
                 ///< modifiable for memoized reallocation
    Read,        ///< Dst := read Src
    Write,       ///< write Ref Val
    Alloc,       ///< Dst := alloc SizeVar InitFn Args
    Call,        ///< call Fn(Args)
  } K = Nop;

  VarId Dst = InvalidId;
  Expr E;
  VarId Base = InvalidId, Idx = InvalidId; ///< Store target.
  VarId Src = InvalidId;                   ///< Read source (modref*).
  VarId Ref = InvalidId, Val = InvalidId;  ///< Write operands.
  VarId SizeVar = InvalidId;               ///< Alloc size (bytes).
  FuncId Fn = InvalidId;                   ///< Alloc init / Call target.
  std::vector<VarId> Args;                 ///< Alloc extra / Call args.
};

/// A jump (the `j` of the grammar).
struct Jump {
  enum Kind : uint8_t { Goto, Tail } K = Goto;
  BlockId Target = InvalidId;  ///< Goto.
  FuncId Fn = InvalidId;       ///< Tail target.
  std::vector<VarId> Args;     ///< Tail arguments.

  static Jump gotoBlock(BlockId B) {
    Jump J;
    J.K = Goto;
    J.Target = B;
    return J;
  }
  static Jump tailCall(FuncId F, std::vector<VarId> Args) {
    Jump J;
    J.K = Tail;
    J.Fn = F;
    J.Args = std::move(Args);
    return J;
  }
};

/// A basic block (the `b` of the grammar), labeled for printing.
struct BasicBlock {
  enum Kind : uint8_t { Done, Cond, Cmd } K = Done;
  std::string Label;
  VarId CondVar = InvalidId; ///< Cond.
  Jump J1, J2;               ///< Cond branches (then/else).
  Command C;                 ///< Cmd.
  Jump J;                    ///< Cmd's jump.
};

struct Variable {
  std::string Name;
  Type Ty;
};

/// A function definition: parameters, locals, and a body of blocks with
/// block 0 as the entry.
struct Function {
  std::string Name;
  std::vector<Variable> Vars; ///< Parameters first, then locals.
  uint32_t NumParams = 0;
  std::vector<BasicBlock> Blocks;

  bool isParam(VarId V) const { return V < NumParams; }
};

/// A CL program: a set of functions. Entry points are chosen by the
/// mutator (Sec. 4.2: execution begins via run_core).
struct Program {
  std::vector<Function> Funcs;

  FuncId findFunc(const std::string &Name) const {
    for (FuncId I = 0; I < Funcs.size(); ++I)
      if (Funcs[I].Name == Name)
        return I;
    return InvalidId;
  }

  /// Total number of basic blocks (the `n` of Theorems 3-5).
  size_t blockCount() const {
    size_t N = 0;
    for (const Function &F : Funcs)
      N += F.Blocks.size();
    return N;
  }

  /// Approximate size in words (variables, blocks, operands), the `m` of
  /// Theorem 3.
  size_t sizeInWords() const;
};

} // namespace cl
} // namespace ceal

#endif // CEAL_CL_IR_H
