//===- cl/Printer.h - CL textual printer -----------------------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints CL programs in the concrete syntax accepted by cl::parse (see
/// Parser.h); printing and reparsing round-trips.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_CL_PRINTER_H
#define CEAL_CL_PRINTER_H

#include "cl/Diagnostic.h"
#include "cl/Ir.h"

#include <string>
#include <vector>

namespace ceal {
namespace cl {

std::string printProgram(const Program &P);
std::string printFunction(const Program &P, FuncId F);

/// Renders one located diagnostic against its program source, e.g.
///
///   warning[redundant-read]: function 'kk', block 'n7': modref 'mb'
///       was already read on every path
///     --> n7: y := read mb; tail k(y)    [at the command]
///
/// Out-of-range locations degrade gracefully (no block line).
std::string renderDiagnostic(const Program &P, const Diagnostic &D);

/// Renders a batch, one diagnostic per renderDiagnostic block.
std::string renderDiagnostics(const Program &P,
                              const std::vector<Diagnostic> &Ds);

} // namespace cl
} // namespace ceal

#endif // CEAL_CL_PRINTER_H
