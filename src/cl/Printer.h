//===- cl/Printer.h - CL textual printer -----------------------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints CL programs in the concrete syntax accepted by cl::parse (see
/// Parser.h); printing and reparsing round-trips.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_CL_PRINTER_H
#define CEAL_CL_PRINTER_H

#include "cl/Ir.h"

#include <string>

namespace ceal {
namespace cl {

std::string printProgram(const Program &P);
std::string printFunction(const Program &P, FuncId F);

} // namespace cl
} // namespace ceal

#endif // CEAL_CL_PRINTER_H
