//===- cl/Printer.cpp - CL textual printer ---------------------------------===//

#include "cl/Printer.h"

#include <sstream>

using namespace ceal;
using namespace ceal::cl;

namespace {

class Printer {
public:
  explicit Printer(const Program &P) : Prog(P) {}

  /// The single-line text of one block (without the trailing newline),
  /// for source-anchored diagnostics.
  std::string blockText(FuncId F, BlockId B) {
    CurFunc = &Prog.Funcs[F];
    block(CurFunc->Blocks[B]);
    std::string S = Out.str();
    Out.str("");
    // Strip the leading indent and trailing newline added by block().
    if (S.size() >= 2 && S[0] == ' ' && S[1] == ' ')
      S.erase(0, 2);
    while (!S.empty() && S.back() == '\n')
      S.pop_back();
    return S;
  }

  void function(FuncId Id) {
    const Function &F = Prog.Funcs[Id];
    Out << "func " << F.Name << "(";
    for (uint32_t I = 0; I < F.NumParams; ++I) {
      if (I)
        Out << ", ";
      Out << F.Vars[I].Ty.str() << " " << F.Vars[I].Name;
    }
    Out << ") {\n";
    for (uint32_t I = F.NumParams; I < F.Vars.size(); ++I)
      Out << "  var " << F.Vars[I].Ty.str() << " " << F.Vars[I].Name
          << ";\n";
    CurFunc = &F;
    for (const BasicBlock &B : F.Blocks)
      block(B);
    Out << "}\n";
  }

  std::string str() { return Out.str(); }

private:
  const std::string &var(VarId V) { return CurFunc->Vars[V].Name; }
  const std::string &funcName(FuncId F) { return Prog.Funcs[F].Name; }
  const std::string &label(BlockId B) { return CurFunc->Blocks[B].Label; }

  void args(const std::vector<VarId> &As) {
    for (size_t I = 0; I < As.size(); ++I) {
      if (I)
        Out << ", ";
      Out << var(As[I]);
    }
  }

  void expr(const Expr &E) {
    switch (E.K) {
    case Expr::Const:
      Out << E.IntVal;
      break;
    case Expr::Var:
      Out << var(E.V);
      break;
    case Expr::Prim:
      Out << opName(E.Op) << "(";
      args(E.Args);
      Out << ")";
      break;
    case Expr::Index:
      Out << var(E.V) << "[" << var(E.Idx) << "]";
      break;
    }
  }

  void command(const Command &C) {
    switch (C.K) {
    case Command::Nop:
      Out << "nop";
      break;
    case Command::Assign:
      Out << var(C.Dst) << " := ";
      expr(C.E);
      break;
    case Command::Store:
      Out << var(C.Base) << "[" << var(C.Idx) << "] := ";
      expr(C.E);
      break;
    case Command::ModrefAlloc:
      Out << var(C.Dst) << " := modref(";
      args(C.Args);
      Out << ")";
      break;
    case Command::Read:
      Out << var(C.Dst) << " := read " << var(C.Src);
      break;
    case Command::Write:
      Out << "write(" << var(C.Ref) << ", " << var(C.Val) << ")";
      break;
    case Command::Alloc:
      Out << var(C.Dst) << " := alloc(" << var(C.SizeVar) << ", "
          << funcName(C.Fn);
      for (VarId A : C.Args)
        Out << ", " << var(A);
      Out << ")";
      break;
    case Command::Call:
      Out << "call " << funcName(C.Fn) << "(";
      args(C.Args);
      Out << ")";
      break;
    }
  }

  void jump(const Jump &J) {
    if (J.K == Jump::Goto) {
      Out << "goto " << label(J.Target);
      return;
    }
    Out << "tail " << funcName(J.Fn) << "(";
    args(J.Args);
    Out << ")";
  }

  void block(const BasicBlock &B) {
    Out << "  " << B.Label << ": ";
    switch (B.K) {
    case BasicBlock::Done:
      Out << "done;";
      break;
    case BasicBlock::Cond:
      Out << "if " << var(B.CondVar) << " then ";
      jump(B.J1);
      Out << " else ";
      jump(B.J2);
      Out << ";";
      break;
    case BasicBlock::Cmd:
      command(B.C);
      Out << "; ";
      jump(B.J);
      Out << ";";
      break;
    }
    Out << "\n";
  }

  const Program &Prog;
  const Function *CurFunc = nullptr;
  std::ostringstream Out;
};

} // namespace

std::string cl::printFunction(const Program &P, FuncId F) {
  Printer Pr(P);
  Pr.function(F);
  return Pr.str();
}

std::string cl::printProgram(const Program &P) {
  Printer Pr(P);
  for (FuncId I = 0; I < P.Funcs.size(); ++I)
    Pr.function(I);
  return Pr.str();
}

std::string cl::renderDiagnostic(const Program &P, const Diagnostic &D) {
  std::ostringstream Out;
  Out << severityName(D.Sev);
  if (!D.Check.empty())
    Out << "[" << D.Check << "]";
  Out << ": ";
  bool HaveFunc = D.Function < P.Funcs.size();
  if (HaveFunc) {
    const Function &F = P.Funcs[D.Function];
    Out << "function '" << F.Name << "'";
    if (D.Block < F.Blocks.size())
      Out << ", block '" << F.Blocks[D.Block].Label << "' (#" << D.Block
          << ")";
    Out << ": ";
  }
  Out << D.Message << "\n";
  if (HaveFunc && D.Block < P.Funcs[D.Function].Blocks.size()) {
    Printer Pr(P);
    Out << "  --> " << Pr.blockText(D.Function, D.Block);
    const BasicBlock &B = P.Funcs[D.Function].Blocks[D.Block];
    if (B.K == BasicBlock::Cond)
      Out << (D.Index == 0 ? "    [at the condition]"
              : D.Index == 1 ? "    [at the then-jump]"
                             : "    [at the else-jump]");
    else if (B.K == BasicBlock::Cmd)
      Out << (D.Index == 0 ? "    [at the command]" : "    [at the jump]");
    Out << "\n";
  }
  return Out.str();
}

std::string cl::renderDiagnostics(const Program &P,
                                  const std::vector<Diagnostic> &Ds) {
  std::string Out;
  for (const Diagnostic &D : Ds)
    Out += renderDiagnostic(P, D);
  return Out;
}
