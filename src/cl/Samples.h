//===- cl/Samples.h - Sample CL programs -----------------------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CL sources for the paper's benchmark programs (the compiler-side
/// counterparts of Table 3): the expression-tree evaluator of Fig. 2,
/// the list primitives, the sorting algorithms, and integer quickhull.
/// Tests execute them through the VM against the conventional
/// interpreter; the Table 3 / Fig. 15 harnesses compile them.
///
/// Shared data layouts (word-indexed):
///   list cell:  [0] head, [1] tail modref
///   tree node:  [0] kind (1 = leaf), [1] op/num, [2] left mr, [3] right mr
///   point:      [0] x, [1] y
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_CL_SAMPLES_H
#define CEAL_CL_SAMPLES_H

#include <string>
#include <vector>

namespace ceal {
namespace cl {
namespace samples {

/// The expression-tree evaluator (paper Fig. 2 in CL form).
extern const char *ExpTrees;

/// map, filter, reverse and sum over modifiable lists.
extern const char *ListPrims;

/// Sum by randomized contraction rounds (incremental reduce).
extern const char *ListReduce;

/// List quicksort (partition + recursive sort, DPS).
extern const char *Quicksort;

/// List mergesort (split + merge, DPS).
extern const char *Mergesort;

/// Integer-coordinate quickhull over point lists.
extern const char *Quickhull;

/// Name/source pairs for all samples plus the combined test driver,
/// mirroring the program set of Table 3.
std::vector<std::pair<std::string, std::string>> allPrograms();

} // namespace samples
} // namespace cl
} // namespace ceal

#endif // CEAL_CL_SAMPLES_H
