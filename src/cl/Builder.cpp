//===- cl/Builder.cpp - Convenience construction of CL programs ------------===//

#include "cl/Builder.h"

#include <cassert>

using namespace ceal;
using namespace ceal::cl;

VarId FuncBuilder::param(const std::string &Name, Type Ty) {
  Function &F = func();
  assert(F.Vars.size() == F.NumParams &&
         "parameters must be declared before locals");
  F.Vars.push_back({Name, Ty});
  return F.NumParams++;
}

VarId FuncBuilder::local(const std::string &Name, Type Ty) {
  Function &F = func();
  F.Vars.push_back({Name, Ty});
  return static_cast<VarId>(F.Vars.size() - 1);
}

BlockId FuncBuilder::block(const std::string &Label) {
  Function &F = func();
  BasicBlock B;
  B.Label = Label.empty()
                ? F.Name + "_b" + std::to_string(F.Blocks.size())
                : Label;
  F.Blocks.push_back(std::move(B));
  return static_cast<BlockId>(F.Blocks.size() - 1);
}

void FuncBuilder::setDone(BlockId B) {
  func().Blocks[B].K = BasicBlock::Done;
}

void FuncBuilder::setCond(BlockId B, VarId V, Jump Then, Jump Else) {
  BasicBlock &BB = func().Blocks[B];
  BB.K = BasicBlock::Cond;
  BB.CondVar = V;
  BB.J1 = std::move(Then);
  BB.J2 = std::move(Else);
}

void FuncBuilder::setCmd(BlockId B, Command C, Jump J) {
  BasicBlock &BB = func().Blocks[B];
  BB.K = BasicBlock::Cmd;
  BB.C = std::move(C);
  BB.J = std::move(J);
}

Command FuncBuilder::nop() { return Command(); }

Command FuncBuilder::assign(VarId Dst, Expr E) {
  Command C;
  C.K = Command::Assign;
  C.Dst = Dst;
  C.E = std::move(E);
  return C;
}

Command FuncBuilder::store(VarId Base, VarId Idx, Expr E) {
  Command C;
  C.K = Command::Store;
  C.Base = Base;
  C.Idx = Idx;
  C.E = std::move(E);
  return C;
}

Command FuncBuilder::modrefAlloc(VarId Dst, std::vector<VarId> Keys) {
  Command C;
  C.K = Command::ModrefAlloc;
  C.Dst = Dst;
  C.Args = std::move(Keys);
  return C;
}

Command FuncBuilder::read(VarId Dst, VarId Src) {
  Command C;
  C.K = Command::Read;
  C.Dst = Dst;
  C.Src = Src;
  return C;
}

Command FuncBuilder::write(VarId Ref, VarId Val) {
  Command C;
  C.K = Command::Write;
  C.Ref = Ref;
  C.Val = Val;
  return C;
}

Command FuncBuilder::alloc(VarId Dst, VarId SizeVar, FuncId Init,
                           std::vector<VarId> Args) {
  Command C;
  C.K = Command::Alloc;
  C.Dst = Dst;
  C.SizeVar = SizeVar;
  C.Fn = Init;
  C.Args = std::move(Args);
  return C;
}

Command FuncBuilder::call(FuncId Fn, std::vector<VarId> Args) {
  Command C;
  C.K = Command::Call;
  C.Fn = Fn;
  C.Args = std::move(Args);
  return C;
}

FuncBuilder ProgramBuilder::beginFunc(const std::string &Name) {
  Function F;
  F.Name = Name;
  Prog.Funcs.push_back(std::move(F));
  return FuncBuilder(Prog, static_cast<FuncId>(Prog.Funcs.size() - 1));
}
