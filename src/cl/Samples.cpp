//===- cl/Samples.cpp - Sample CL programs ----------------------------------===//
//
// Hand-written CL sources. CL has no nested expressions, so every
// intermediate lands in its own block — this is the flat form the
// paper's front end produces from CEAL source (Sec. 4.3).
//
//===----------------------------------------------------------------------===//

#include "cl/Samples.h"

using namespace ceal;
using namespace ceal::cl;

//===----------------------------------------------------------------------===//
// Expression trees (paper Fig. 2). Node: [0] kind(1=leaf), [1] op/num,
// [2] left modref, [3] right modref. Ops: 0 = plus, 1 = minus.
//===----------------------------------------------------------------------===//

const char *samples::ExpTrees = R"(
func eval(modref* root, modref* res) {
  var int* t;
  var int k;  var int a;  var int b;  var int op; var int v;
  var modref* ma;   var modref* mb;
  var modref* lref; var modref* rref;
  var int i0; var int i1; var int i2; var int i3;
  c0: i0 := 0; goto c1;
  c1: i1 := 1; goto c2;
  c2: i2 := 2; goto c3;
  c3: i3 := 3; goto rd;
  rd: t := read root; goto kk;
  kk: k := t[i0]; goto br;
  br: if k then goto leaf else goto node;
  leaf: v := t[i1]; goto lw;
  lw: write(res, v); goto fin;
  fin: done;
  node: ma := modref(t, i0); goto n1;
  n1: mb := modref(t, i1); goto n2;
  n2: lref := t[i2]; goto n3;
  n3: rref := t[i3]; goto n4;
  n4: call eval(lref, ma); goto n5;
  n5: call eval(rref, mb); goto n6;
  n6: a := read ma; goto n7;
  n7: b := read mb; goto n8;
  n8: op := t[i1]; goto n9;
  n9: if op then goto nsub else goto nadd;
  nadd: v := add(a, b); goto nw;
  nsub: v := sub(a, b); goto nw;
  nw: write(res, v); goto nfin;
  nfin: done;
}
)";

//===----------------------------------------------------------------------===//
// List primitives. Cell: [0] head, [1] tail modref.
//===----------------------------------------------------------------------===//

const char *samples::ListPrims = R"(
func lp_cellinit(int* blk, int h, modref* t) {
  var int i0; var int i1;
  e0: i0 := 0; goto e1;
  e1: i1 := 1; goto e2;
  e2: blk[i0] := h; goto e3;
  e3: blk[i1] := t; goto e4;
  e4: done;
}

// map: d := [h/3 + h/7 + h/9 | h <- l]  (the paper's f).
func map(modref* l, modref* d) {
  var int* c; var int* out;
  var int h; var int fh; var int h3; var int h7; var int h9;
  var modref* od; var modref* tl;
  var int i0; var int i1; var int sz;
  var int k3; var int k7; var int k9; var int z;
  rd: c := read l; goto br;
  br: if c then goto cons else goto nil;
  nil: z := 0; goto nw;
  nw: write(d, z); goto fin;
  fin: done;
  cons: i0 := 0; goto a1;
  a1: i1 := 1; goto a2;
  a2: k3 := 3; goto a3;
  a3: k7 := 7; goto a4;
  a4: k9 := 9; goto a5;
  a5: sz := 16; goto a6;
  a6: h := c[i0]; goto a7;
  a7: h3 := div(h, k3); goto a8;
  a8: h7 := div(h, k7); goto a9;
  a9: h9 := div(h, k9); goto a10;
  a10: fh := add(h3, h7); goto a11;
  a11: fh := add(fh, h9); goto a12;
  a12: od := modref(c); goto a13;
  a13: out := alloc(sz, lp_cellinit, fh, od); goto a14;
  a14: write(d, out); goto a15;
  a15: tl := c[i1]; tail map(tl, od);
}

// filter: keep h iff f(h) is even.
func filter(modref* l, modref* d) {
  var int* c; var int* out;
  var int h; var int fh; var int h3; var int h7; var int h9; var int p;
  var modref* od; var modref* tl;
  var int i0; var int i1; var int sz;
  var int k2; var int k3; var int k7; var int k9; var int z;
  rd: c := read l; goto br;
  br: if c then goto cons else goto nil;
  nil: z := 0; goto nw;
  nw: write(d, z); goto fin;
  fin: done;
  cons: i0 := 0; goto f1;
  f1: i1 := 1; goto f2;
  f2: k2 := 2; goto f3;
  f3: k3 := 3; goto f4;
  f4: k7 := 7; goto f5;
  f5: k9 := 9; goto f6;
  f6: sz := 16; goto f7;
  f7: h := c[i0]; goto f8;
  f8: h3 := div(h, k3); goto f9;
  f9: h7 := div(h, k7); goto f10;
  f10: h9 := div(h, k9); goto f11;
  f11: fh := add(h3, h7); goto f12;
  f12: fh := add(fh, h9); goto f13;
  f13: p := mod(fh, k2); goto f14;
  f14: if p then goto skip else goto keep;
  keep: od := modref(c); goto k1;
  k1: out := alloc(sz, lp_cellinit, h, od); goto k4;
  k4: write(d, out); goto k5;
  k5: tl := c[i1]; tail filter(tl, od);
  skip: tl := c[i1]; tail filter(tl, d);
}

// reverse via an output-cell accumulator.
func reverse(modref* l, modref* d) {
  var int z;
  e: z := 0; tail rev_go(l, z, d);
}
func rev_go(modref* l, int* acc, modref* d) {
  var int* c; var int* out;
  var int h; var modref* od; var modref* tl;
  var int i0; var int i1; var int sz;
  rd: c := read l; goto br;
  br: if c then goto cons else goto base;
  base: write(d, acc); goto fin;
  fin: done;
  cons: i0 := 0; goto r1;
  r1: i1 := 1; goto r2;
  r2: sz := 16; goto r3;
  r3: h := c[i0]; goto r4;
  r4: od := modref(c); goto r5;
  r5: out := alloc(sz, lp_cellinit, h, od); goto r6;
  r6: write(od, acc); goto r7;
  r7: tl := c[i1]; tail rev_go(tl, out, d);
}

// sum via an accumulator chain.
func sum(modref* l, modref* d) {
  var int z;
  e: z := 0; tail sum_go(l, z, d);
}
func sum_go(modref* l, int acc, modref* d) {
  var int* c; var int h; var int acc2; var modref* tl;
  var int i0; var int i1;
  rd: c := read l; goto br;
  br: if c then goto cons else goto base;
  base: write(d, acc); goto fin;
  fin: done;
  cons: i0 := 0; goto s1;
  s1: i1 := 1; goto s2;
  s2: h := c[i0]; goto s3;
  s3: acc2 := add(acc, h); goto s4;
  s4: tl := c[i1]; tail sum_go(tl, acc2, d);
}
)";

//===----------------------------------------------------------------------===//
// Quicksort.
//===----------------------------------------------------------------------===//

const char *samples::Quicksort = R"(
func qs_cellinit(int* blk, int h, modref* t) {
  var int i0; var int i1;
  e0: i0 := 0; goto e1;
  e1: i1 := 1; goto e2;
  e2: blk[i0] := h; goto e3;
  e3: blk[i1] := t; goto e4;
  e4: done;
}

func qsort(modref* l, modref* d) {
  var int z;
  e: z := 0; tail qs_go(l, d, z);
}

// qs_go(l, d, rest): d := sort(l) ++ rest.
func qs_go(modref* l, modref* d, int* rest) {
  var int* c; var int* pcell;
  var int pivot; var int sz;
  var modref* less; var modref* geq; var modref* pd; var modref* tl;
  var int i0; var int i1;
  rd: c := read l; goto br;
  br: if c then goto cons else goto base;
  base: write(d, rest); goto fin;
  fin: done;
  cons: i0 := 0; goto q1;
  q1: i1 := 1; goto q2;
  q2: sz := 16; goto q3;
  q3: pivot := c[i0]; goto q4;
  q4: less := modref(c, i0); goto q5;
  q5: geq := modref(c, i1); goto q6;
  q6: tl := c[i1]; goto q7;
  q7: call qs_part(tl, less, geq, pivot); goto q8;
  q8: pd := modref(c, sz); goto q9;
  q9: pcell := alloc(sz, qs_cellinit, pivot, pd); goto q10;
  q10: call qs_go(geq, pd, rest); goto q11;
  q11: nop; tail qs_go(less, d, pcell);
}

func qs_part(modref* l, modref* dl, modref* dg, int pivot) {
  var int* c; var int* out;
  var int h; var int cc; var int sz; var int z;
  var modref* ot; var modref* t2;
  var int i0; var int i1;
  rd: c := read l; goto br;
  br: if c then goto cons else goto base;
  base: z := 0; goto b1;
  b1: write(dl, z); goto b2;
  b2: write(dg, z); goto fin;
  fin: done;
  cons: i0 := 0; goto p1;
  p1: i1 := 1; goto p2;
  p2: sz := 16; goto p3;
  p3: h := c[i0]; goto p4;
  p4: cc := lt(h, pivot); goto p5;
  p5: if cc then goto toless else goto togeq;
  toless: ot := modref(c, pivot); goto la;
  la: out := alloc(sz, qs_cellinit, h, ot); goto lb;
  lb: write(dl, out); goto lc;
  lc: t2 := c[i1]; tail qs_part(t2, ot, dg, pivot);
  togeq: ot := modref(c, pivot); goto ga;
  ga: out := alloc(sz, qs_cellinit, h, ot); goto gb;
  gb: write(dg, out); goto gc;
  gc: t2 := c[i1]; tail qs_part(t2, dl, ot, pivot);
}
)";

//===----------------------------------------------------------------------===//
// Mergesort (parity split).
//===----------------------------------------------------------------------===//

const char *samples::Mergesort = R"(
func ms_cellinit(int* blk, int h, modref* t) {
  var int i0; var int i1;
  e0: i0 := 0; goto e1;
  e1: i1 := 1; goto e2;
  e2: blk[i0] := h; goto e3;
  e3: blk[i1] := t; goto e4;
  e4: done;
}

func msort(modref* l, modref* d) {
  var int* c; var int* t2; var int* out;
  var int h; var int sz; var int z;
  var modref* tl; var modref* ot;
  var modref* a; var modref* b; var modref* sa; var modref* sb;
  var int i0; var int i1; var int side;
  var int k2; var int k3; var int k4; var int k5;
  rd: c := read l; goto br;
  br: if c then goto probe else goto base;
  base: z := 0; goto bw;
  bw: write(d, z); goto fin;
  fin: done;
  probe: i1 := 1; goto pr1;
  pr1: tl := c[i1]; goto pr2;
  pr2: t2 := read tl; goto br2;
  br2: if t2 then goto split else goto single;
  single: i0 := 0; goto sg1;
  sg1: sz := 16; goto sg2;
  sg2: h := c[i0]; goto sg3;
  sg3: ot := modref(c, i0); goto sg4;
  sg4: out := alloc(sz, ms_cellinit, h, ot); goto sg5;
  sg5: z := 0; goto sg6;
  sg6: write(ot, z); goto sg7;
  sg7: write(d, out); goto sg8;
  sg8: done;
  split: k2 := 2; goto sk3;
  sk3: k3 := 3; goto sk4;
  sk4: k4 := 4; goto sk5;
  sk5: k5 := 5; goto sk6;
  sk6: a := modref(c, k2); goto sp1;
  sp1: b := modref(c, k3); goto sp2;
  sp2: side := 0; goto sp3;
  sp3: call ms_split(c, a, b, side); goto sp4;
  sp4: sa := modref(c, k4); goto sp5;
  sp5: sb := modref(c, k5); goto sp6;
  sp6: call msort(a, sa); goto sp7;
  sp7: call msort(b, sb); goto sp8;
  sp8: nop; tail ms_merge(sa, sb, d);
}

// Distributes the chain starting at cell c alternately onto da / db.
func ms_split(int* c, modref* da, modref* db, int side) {
  var int* out;
  var int h; var int sz; var int z; var int ns; var int* nx;
  var modref* ot; var modref* tlr;
  var int i0; var int i1;
  e0: i0 := 0; goto e1;
  e1: i1 := 1; goto e2;
  e2: sz := 16; goto e3;
  e3: h := c[i0]; goto e4;
  e4: ot := modref(c, i0); goto e5;
  e5: out := alloc(sz, ms_cellinit, h, ot); goto e6;
  e6: if side then goto pb else goto pa;
  pa: write(da, out); goto pa1;
  pa1: tlr := c[i1]; goto pa2;
  pa2: ns := 1; goto pa3;
  pa3: nx := read tlr; goto pa4;
  pa4: if nx then goto pa5 else goto paz;
  pa5: nop; tail ms_split(nx, ot, db, ns);
  paz: z := 0; goto paz1;
  paz1: write(ot, z); goto paz2;
  paz2: write(db, z); goto finz;
  finz: done;
  pb: write(db, out); goto pb1;
  pb1: tlr := c[i1]; goto pb2;
  pb2: ns := 0; goto pb3;
  pb3: nx := read tlr; goto pb4;
  pb4: if nx then goto pb5 else goto pbz;
  pb5: nop; tail ms_split(nx, da, ot, ns);
  pbz: z := 0; goto pbz1;
  pbz1: write(ot, z); goto pbz2;
  pbz2: write(da, z); goto finz2;
  finz2: done;
}

func ms_merge(modref* sa, modref* sb, modref* d) {
  var int* a; var int* b;
  r1: a := read sa; goto r2;
  r2: b := read sb; goto go;
  go: nop; tail ms_mergego(a, b, d);
}

func ms_mergego(int* a, int* b, modref* d) {
  var int* out; var int* na; var int* nb;
  var int x; var int y; var int cc; var int sz;
  var modref* ot; var modref* tlr;
  var int i0; var int i1;
  e: if a then goto ha else goto useb;
  useb: write(d, b); goto fin;
  fin: done;
  ha: if b then goto both else goto usea;
  usea: write(d, a); goto fin2;
  fin2: done;
  both: i0 := 0; goto m1;
  m1: i1 := 1; goto m2;
  m2: sz := 16; goto m3;
  m3: x := a[i0]; goto m4;
  m4: y := b[i0]; goto m5;
  m5: cc := le(x, y); goto m6;
  m6: if cc then goto ea else goto eb;
  ea: ot := modref(a, i0); goto ea1;
  ea1: out := alloc(sz, ms_cellinit, x, ot); goto ea2;
  ea2: write(d, out); goto ea3;
  ea3: tlr := a[i1]; goto ea4;
  ea4: na := read tlr; tail ms_mergego(na, b, ot);
  eb: ot := modref(b, i1); goto eb1;
  eb1: out := alloc(sz, ms_cellinit, y, ot); goto eb2;
  eb2: write(d, out); goto eb3;
  eb3: tlr := b[i1]; goto eb4;
  eb4: nb := read tlr; tail ms_mergego(a, nb, ot);
}
)";

//===----------------------------------------------------------------------===//
// Integer quickhull. Point: [0] x, [1] y. Cell: [0] point ptr, [1] tail.
//===----------------------------------------------------------------------===//

const char *samples::Quickhull = R"(
func qh_cellinit(int* blk, int* p, modref* t) {
  var int i0; var int i1;
  e0: i0 := 0; goto e1;
  e1: i1 := 1; goto e2;
  e2: blk[i0] := p; goto e3;
  e3: blk[i1] := t; goto e4;
  e4: done;
}

func qh(modref* l, modref* d) {
  var int* c; var int* p; var int* a; var int* b; var int* out; var int* mm;
  var modref* dmn; var modref* dmx; var modref* tlr;
  var modref* above; var modref* below; var modref* md; var modref* t;
  var int i0; var int i1; var int sz; var int z; var int same;
  rd: c := read l; goto br;
  br: if c then goto go else goto nil;
  nil: z := 0; goto nw;
  nw: write(d, z); goto fin;
  fin: done;
  go: i0 := 0; goto g1;
  g1: i1 := 1; goto g2;
  g2: sz := 16; goto g3;
  g3: p := c[i0]; goto g4;
  g4: dmn := modref(c, i0); goto g5;
  g5: dmx := modref(c, i1); goto g6;
  g6: tlr := c[i1]; goto g7;
  g7: call qh_scan(tlr, p, p, dmn, dmx); goto g8;
  g8: a := read dmn; goto g9;
  g9: b := read dmx; goto g10;
  g10: same := eq(a, b); goto g11;
  g11: if same then goto single else goto full;
  single: t := modref(a, i0); goto s1;
  s1: out := alloc(sz, qh_cellinit, a, t); goto s2;
  s2: z := 0; goto s3;
  s3: write(t, z); goto s4;
  s4: write(d, out); goto s5;
  s5: done;
  full: above := modref(a, i0); goto u1;
  u1: below := modref(b, i0); goto u2;
  u2: call qh_filter(l, above, a, b); goto u3;
  u3: call qh_filter(l, below, b, a); goto u4;
  u4: md := modref(b, i1); goto u5;
  u5: z := 0; goto u6;
  u6: call qh_go(below, b, a, md, z); goto u7;
  u7: mm := read md; tail qh_go(above, a, b, d, mm);
}

// Chain scan for the min-x and max-x points (ties by y).
func qh_scan(modref* l, int* mn, int* mx, modref* dmn, modref* dmx) {
  var int* c; var int* p; var int* mn2; var int* mx2;
  var modref* tlr;
  var int i0; var int i1;
  var int px; var int py; var int qx; var int qy;
  var int lt1; var int eq1; var int lt2; var int take;
  rd: c := read l; goto br;
  br: if c then goto step else goto base;
  base: write(dmn, mn); goto b1;
  b1: write(dmx, mx); goto fin;
  fin: done;
  step: i0 := 0; goto t1;
  t1: i1 := 1; goto t2;
  t2: p := c[i0]; goto t3;
  t3: px := p[i0]; goto t4;
  t4: py := p[i1]; goto t5;
  t5: qx := mn[i0]; goto t6;
  t6: qy := mn[i1]; goto t7;
  t7: lt1 := lt(px, qx); goto t8;
  t8: eq1 := eq(px, qx); goto t9;
  t9: lt2 := lt(py, qy); goto t10;
  t10: lt2 := and(eq1, lt2); goto t11;
  t11: take := or(lt1, lt2); goto t12;
  t12: if take then goto newmn else goto oldmn;
  newmn: mn2 := p; goto mx0;
  oldmn: mn2 := mn; goto mx0;
  mx0: qx := mx[i0]; goto x1;
  x1: qy := mx[i1]; goto x2;
  x2: lt1 := gt(px, qx); goto x3;
  x3: eq1 := eq(px, qx); goto x4;
  x4: lt2 := gt(py, qy); goto x5;
  x5: lt2 := and(eq1, lt2); goto x6;
  x6: take := or(lt1, lt2); goto x7;
  x7: if take then goto newmx else goto oldmx;
  newmx: mx2 := p; goto nxt;
  oldmx: mx2 := mx; goto nxt;
  nxt: tlr := c[i1]; tail qh_scan(tlr, mn2, mx2, dmn, dmx);
}

// Keep points strictly left of pa -> pb.
func qh_filter(modref* l, modref* dd, int* pa, int* pb) {
  var int* c; var int* p; var int* out;
  var modref* ot; var modref* tlr;
  var int i0; var int i1; var int sz; var int z;
  var int ax; var int ay; var int bx; var int by; var int px; var int py;
  var int d1; var int d2; var int d3; var int d4;
  var int m1; var int m2; var int v; var int pos;
  rd: c := read l; goto br;
  br: if c then goto chk else goto nil;
  nil: z := 0; goto nw;
  nw: write(dd, z); goto fin;
  fin: done;
  chk: i0 := 0; goto c1;
  c1: i1 := 1; goto c2;
  c2: sz := 16; goto c3;
  c3: p := c[i0]; goto c4;
  c4: ax := pa[i0]; goto c5;
  c5: ay := pa[i1]; goto c6;
  c6: bx := pb[i0]; goto c7;
  c7: by := pb[i1]; goto c8;
  c8: px := p[i0]; goto c9;
  c9: py := p[i1]; goto c10;
  c10: d1 := sub(bx, ax); goto c11;
  c11: d2 := sub(py, ay); goto c12;
  c12: m1 := mul(d1, d2); goto c13;
  c13: d3 := sub(by, ay); goto c14;
  c14: d4 := sub(px, ax); goto c15;
  c15: m2 := mul(d3, d4); goto c16;
  c16: v := sub(m1, m2); goto c17;
  c17: z := 0; goto c18;
  c18: pos := gt(v, z); goto c19;
  c19: if pos then goto keep else goto skip;
  keep: ot := modref(c, pa); goto k1;
  k1: out := alloc(sz, qh_cellinit, p, ot); goto k2;
  k2: write(dd, out); goto k3;
  k3: tlr := c[i1]; tail qh_filter(tlr, ot, pa, pb);
  skip: tlr := c[i1]; tail qh_filter(tlr, dd, pa, pb);
}

// qh_go(s, pa, pb, d, rest): d := hull vertices from pa (inclusive)
// to pb (exclusive) over candidate set s, then rest.
func qh_go(modref* s, int* pa, int* pb, modref* d, int* rest) {
  var int* c; var int* out;
  var modref* t;
  var int sz; var int z; var int zp;
  rd: c := read s; goto br;
  br: if c then goto scan else goto leaf;
  leaf: sz := 16; goto l1;
  l1: t := modref(pa, pb); goto l2;
  l2: out := alloc(sz, qh_cellinit, pa, t); goto l3;
  l3: write(d, out); goto l4;
  l4: write(t, rest); goto fin;
  fin: done;
  scan: z := 0; goto s1;
  s1: zp := 0; goto s2;
  s2: nop; tail qh_far(c, pa, pb, zp, z, s, d, rest);
}

// Finds the farthest strictly-left point; bp/bv accumulate the best.
func qh_far(int* c, int* pa, int* pb, int* bp, int bv, modref* s,
            modref* d, int* rest) {
  var int* p; var int* out; var int* bp2; var int* nx; var int* mm;
  var modref* tlr; var modref* t; var modref* sl; var modref* sr;
  var modref* md;
  var int i0; var int i1; var int sz;
  var int ax; var int ay; var int bx; var int by; var int px; var int py;
  var int d1; var int d2; var int d3; var int d4;
  var int m1; var int m2; var int v; var int better; var int bv2;
  e0: i0 := 0; goto e1;
  e1: i1 := 1; goto e2;
  e2: sz := 16; goto e3;
  e3: p := c[i0]; goto e4;
  e4: ax := pa[i0]; goto e5;
  e5: ay := pa[i1]; goto e6;
  e6: bx := pb[i0]; goto e7;
  e7: by := pb[i1]; goto e8;
  e8: px := p[i0]; goto e9;
  e9: py := p[i1]; goto e10;
  e10: d1 := sub(bx, ax); goto e11;
  e11: d2 := sub(py, ay); goto e12;
  e12: m1 := mul(d1, d2); goto e13;
  e13: d3 := sub(by, ay); goto e14;
  e14: d4 := sub(px, ax); goto e15;
  e15: m2 := mul(d3, d4); goto e16;
  e16: v := sub(m1, m2); goto e17;
  e17: better := gt(v, bv); goto e18;
  e18: if better then goto takeit else goto keep;
  takeit: bp2 := p; goto tk1;
  tk1: bv2 := v; goto nxt;
  keep: bp2 := bp; goto kp1;
  kp1: bv2 := bv; goto nxt;
  nxt: tlr := c[i1]; goto nrd;
  nrd: nx := read tlr; goto nbr;
  nbr: if nx then goto cont else goto donech;
  cont: nop; tail qh_far(nx, pa, pb, bp2, bv2, s, d, rest);
  donech: if bp2 then goto recurse else goto leaf2;
  leaf2: t := modref(pa, pb); goto z1;
  z1: out := alloc(sz, qh_cellinit, pa, t); goto z2;
  z2: write(d, out); goto z3;
  z3: write(t, rest); goto finz;
  finz: done;
  recurse: sl := modref(pa, bp2); goto r1;
  r1: sr := modref(bp2, pb); goto r2;
  r2: call qh_filter(s, sl, pa, bp2); goto r3;
  r3: call qh_filter(s, sr, bp2, pb); goto r4;
  r4: md := modref(bp2, i0); goto r5;
  r5: call qh_go(sr, bp2, pb, md, rest); goto r6;
  r6: mm := read md; tail qh_go(sl, pa, bp2, d, mm);
}
)";

//===----------------------------------------------------------------------===//
// List reduction by randomized contraction rounds (the structure behind
// the minimum/sum rows of Table 1 and the per-round organization of tree
// contraction). Values travel in modifiables ("VCells": [0] value modref,
// [1] tail modref) so unaffected combines equality-cut; run boundaries
// come from a multiplicative hash of the cell pointer and the round.
//===----------------------------------------------------------------------===//

const char *samples::ListReduce = R"(
func lr_vcellinit(int* blk, modref* v, modref* t) {
  var int i0; var int i1;
  e0: i0 := 0; goto e1;
  e1: i1 := 1; goto e2;
  e2: blk[i0] := v; goto e3;
  e3: blk[i1] := t; goto e4;
  e4: done;
}

// lrsum(l, d): d := sum of the list l.
func lrsum(modref* l, modref* d) {
  var modref* vh; var int z;
  e0: vh := modref(d); goto e1;
  e1: call lr_conv(l, vh); goto e2;
  e2: z := 0; tail lr_rounds(vh, d, z);
}

// Converts input cells into VCells keyed by their source cell.
func lr_conv(modref* l, modref* vd) {
  var int* c; var int* vc;
  var modref* v; var modref* t; var modref* tl;
  var int h; var int z; var int i0; var int i1; var int sz;
  rd: c := read l; goto br;
  br: if c then goto cons else goto nil;
  nil: z := 0; goto nw;
  nw: write(vd, z); goto fin;
  fin: done;
  cons: i0 := 0; goto c1;
  c1: i1 := 1; goto c2;
  c2: sz := 16; goto c3;
  c3: v := modref(c); goto c4;
  c4: t := modref(c, i1); goto c5;
  c5: vc := alloc(sz, lr_vcellinit, v, t); goto c6;
  c6: h := c[i0]; goto c7;
  c7: write(v, h); goto c8;
  c8: write(vd, vc); goto c9;
  c9: tl := c[i1]; tail lr_conv(tl, t);
}

// One level of contraction, then recurse until a singleton remains.
func lr_rounds(modref* lh, modref* d, int round) {
  var int* c; var int* t2;
  var modref* tl; var modref* oh; var modref* vm;
  var int z; var int i0; var int i1; var int round2;
  rd: c := read lh; goto br;
  br: if c then goto probe else goto base;
  base: z := 0; goto bw;
  bw: write(d, z); goto fin;
  fin: done;
  probe: i1 := 1; goto p1;
  p1: tl := c[i1]; goto p2;
  p2: t2 := read tl; goto br2;
  br2: if t2 then goto level else goto single;
  single: i0 := 0; goto s1;
  s1: vm := c[i0]; goto s2;
  s2: nop; tail lr_copy(vm, d);
  level: oh := modref(c, round); goto l1;
  l1: call lr_runstart(c, oh, round); goto l2;
  l2: round2 := add(round, i1); tail lr_rounds(oh, d, round2);
}

func lr_copy(modref* src, modref* d) {
  var int v;
  rd: v := read src; goto wr;
  wr: write(d, v); goto fin;
  fin: done;
}

// Begins a run at cell f, accumulating into the emitted output VCell.
func lr_runstart(int* f, modref* dst, int round) {
  var modref* vm; var modref* tl;
  var int acc; var int i0; var int i1;
  e0: i0 := 0; goto e1;
  e1: i1 := 1; goto e2;
  e2: vm := f[i0]; goto e3;
  e3: acc := read vm; goto e4;
  e4: tl := f[i1]; tail lr_runnext(tl, acc, f, dst, round);
}

// Extends or closes the current run; boundaries come from a hash coin.
func lr_runnext(modref* tl, int acc, int* f, modref* dst, int round) {
  var int* n; var int* oc;
  var modref* vm; var modref* ov; var modref* ot; var modref* tl2;
  var int v; var int acc2; var int z; var int i0; var int i1; var int sz;
  var int hk; var int hd; var int s; var int s2; var int s3; var int coin;
  var int k2;
  rd: n := read tl; goto br;
  br: if n then goto chk else goto emitlast;
  chk: hk := 2654435761; goto h1;
  h1: hd := 65536; goto h2;
  h2: k2 := 2; goto h3;
  h3: s := add(n, round); goto h4;
  h4: s2 := mul(s, hk); goto h5;
  h5: s3 := div(s2, hd); goto h6;
  h6: coin := mod(s3, k2); goto h7;
  h7: if coin then goto emit else goto join;
  join: i0 := 0; goto j1;
  j1: i1 := 1; goto j2;
  j2: vm := n[i0]; goto j3;
  j3: v := read vm; goto j4;
  j4: acc2 := add(acc, v); goto j5;
  j5: tl2 := n[i1]; tail lr_runnext(tl2, acc2, f, dst, round);
  emit: i1 := 1; goto m1;
  m1: sz := 16; goto m2;
  m2: ov := modref(f, round); goto m3;
  m3: ot := modref(f, round, i1); goto m4;
  m4: oc := alloc(sz, lr_vcellinit, ov, ot); goto m5;
  m5: write(ov, acc); goto m6;
  m6: write(dst, oc); goto m7;
  m7: nop; tail lr_runstart(n, ot, round);
  emitlast: i1 := 1; goto q1;
  q1: sz := 16; goto q2;
  q2: ov := modref(f, round); goto q3;
  q3: ot := modref(f, round, i1); goto q4;
  q4: oc := alloc(sz, lr_vcellinit, ov, ot); goto q5;
  q5: write(ov, acc); goto q6;
  q6: write(dst, oc); goto q7;
  q7: z := 0; goto q8;
  q8: write(ot, z); goto q9;
  q9: done;
}
)";

std::vector<std::pair<std::string, std::string>> samples::allPrograms() {
  std::vector<std::pair<std::string, std::string>> Programs = {
      {"exptrees", ExpTrees},
      {"listprims", ListPrims},
      {"listreduce", ListReduce},
      {"quicksort", Quicksort},
      {"mergesort", Mergesort},
      {"quickhull", Quickhull},
  };
  // The combined "test driver" of Table 3: every benchmark core in one
  // translation unit.
  std::string Driver;
  for (const auto &[Name, Source] : Programs)
    Driver += Source;
  Programs.push_back({"testdriver", Driver});
  return Programs;
}
