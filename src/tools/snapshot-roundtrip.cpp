//===- tools/snapshot-roundtrip.cpp - Cross-process persistence gate ------===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// The cross-process half of the snapshot test story: `save` builds a
// deterministic list computation (map + reverse over a seeded input),
// checkpoints it with the mutator's handles as roots, and exits; `load`
// — typically a *different process*, same binary — restores the
// checkpoint, reconstructs the mutator from the returned roots, then
// drives thirty seeded detach/reattach edits through propagation,
// verifying every output against a conventional recomputation with the
// trace sanitizer on.
//
// Snapshots are position-dependent (region bases and code addresses must
// coincide), so both ends run under `setarch -R` (ASLR off) in CI.
//
// Exit codes: 0 success; 2 verification failure; 3 AddressUnavailable
// (environment cannot honor the base claim — CI treats this as a skip);
// 4 CodeMoved (ASLR not actually disabled); 5 any other error.
//
//===----------------------------------------------------------------------===//

#include "apps/ListApps.h"
#include "runtime/Runtime.h"
#include "runtime/Snapshot.h"
#include "runtime/TraceAudit.h"
#include "support/Random.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace ceal;

namespace {

constexpr uint64_t BaseSeed = 0x5eedcea15a9f00dULL;
constexpr size_t InputWords = 48;
constexpr int EditSteps = 30;

Word mapPaper(Word X, Word) { return X / 3 + X / 7 + X / 9; }

Runtime::Config toolConfig() {
  Runtime::Config C;
  C.Audit = AuditLevel::EveryPropagation;
  return C;
}

std::vector<Word> seededInput() {
  Rng R(BaseSeed);
  std::vector<Word> In(InputWords);
  for (Word &W : In)
    W = R.below(1000000);
  return In;
}

/// The LIFO detach/reattach discipline from the oracle harness, inlined
/// so the tool only depends on src/. Reattachment always undoes the most
/// recent detach, so a reattached cell's stored tail is still correct.
struct Editor {
  apps::ListHandle L;
  std::vector<bool> Attached;
  std::vector<size_t> DetachStack;

  void randomEdit(Runtime &RT, Rng &R) {
    bool CanReattach = !DetachStack.empty();
    if ((!CanReattach || R.flip()) && DetachStack.size() < L.Cells.size()) {
      std::vector<size_t> Eligible;
      for (size_t I = 0; I < L.Cells.size(); ++I)
        if (Attached[I] && (I == 0 || Attached[I - 1]))
          Eligible.push_back(I);
      if (!Eligible.empty()) {
        size_t Index = Eligible[R.below(Eligible.size())];
        apps::detachCell(RT, L, Index);
        Attached[Index] = false;
        DetachStack.push_back(Index);
        return;
      }
    }
    if (CanReattach) {
      size_t Index = DetachStack.back();
      DetachStack.pop_back();
      apps::reattachCell(RT, L, Index);
      Attached[Index] = true;
    }
  }
};

std::vector<Word> expectedOutput(Runtime &RT, Modref *Head) {
  std::vector<Word> Cur = apps::readList(RT, Head);
  std::vector<Word> Out;
  for (Word W : Cur)
    Out.push_back(mapPaper(W, 0));
  Out.insert(Out.end(), Cur.rbegin(), Cur.rend());
  return Out;
}

std::vector<Word> actualOutput(Runtime &RT, Modref *DstMap, Modref *DstRev) {
  std::vector<Word> Out = apps::readList(RT, DstMap);
  std::vector<Word> Rev = apps::readList(RT, DstRev);
  Out.insert(Out.end(), Rev.begin(), Rev.end());
  return Out;
}

int runSave(const std::string &Path) {
  Runtime RT(toolConfig());
  apps::ListHandle L = apps::buildList(RT, seededInput());
  Modref *DstMap = RT.modref();
  Modref *DstRev = RT.modref();
  RT.runCore<&apps::mapCore>(L.Head, DstMap, &mapPaper, Word(0));
  RT.runCore<&apps::reverseCore>(L.Head, DstRev);

  if (actualOutput(RT, DstMap, DstRev) != expectedOutput(RT, L.Head)) {
    std::fprintf(stderr, "save: fresh run output mismatch\n");
    return 2;
  }

  Snapshot::SaveOptions Opt;
  Opt.Roots.push_back(L.Head);
  Opt.Roots.push_back(DstMap);
  Opt.Roots.push_back(DstRev);
  for (apps::Cell *C : L.Cells)
    Opt.Roots.push_back(C);

  Snapshot::SaveResult SR = Snapshot::save(RT, Path, Opt);
  if (!SR.ok()) {
    std::fprintf(stderr, "save: %s: %s\n", Snapshot::statusName(SR.St),
                 SR.Diagnostic.c_str());
    return 5;
  }
  std::printf("saved %llu bytes, digest %016llx\n",
              (unsigned long long)SR.FileBytes,
              (unsigned long long)Snapshot::traceShapeDigest(RT));
  return 0;
}

int runLoad(const std::string &Path, bool UseMmap) {
  Runtime RT(toolConfig());
  // The checkpoint crossed a process boundary (and in CI, a job-artifact
  // boundary), so the mmap side runs fully verified rather than on the
  // trusted-file fast path.
  Snapshot::WarmStartOptions Verified;
  Verified.VerifyTrace = true;
  Snapshot::LoadResult LR = UseMmap
                                ? Snapshot::mmapWarmStart(RT, Path, Verified)
                                : Snapshot::load(RT, Path);
  if (!LR.ok()) {
    std::fprintf(stderr, "load: %s: %s\n", Snapshot::statusName(LR.St),
                 LR.Diagnostic.c_str());
    if (LR.St == Snapshot::Status::AddressUnavailable)
      return 3;
    if (LR.St == Snapshot::Status::CodeMoved)
      return 4;
    return 5;
  }
  if (LR.Roots.size() != 3 + InputWords) {
    std::fprintf(stderr, "load: expected %zu roots, got %zu\n",
                 3 + InputWords, LR.Roots.size());
    return 2;
  }

  Editor E;
  E.L.Head = static_cast<Modref *>(LR.Roots[0]);
  Modref *DstMap = static_cast<Modref *>(LR.Roots[1]);
  Modref *DstRev = static_cast<Modref *>(LR.Roots[2]);
  for (size_t I = 3; I < LR.Roots.size(); ++I)
    E.L.Cells.push_back(static_cast<apps::Cell *>(LR.Roots[I]));
  E.Attached.assign(E.L.Cells.size(), true); // Checkpoint taken pre-edit.

  std::printf("loaded (%s), digest %016llx\n", UseMmap ? "mmap" : "copy",
              (unsigned long long)Snapshot::traceShapeDigest(RT));

  if (actualOutput(RT, DstMap, DstRev) != expectedOutput(RT, E.L.Head)) {
    std::fprintf(stderr, "load: restored output mismatch\n");
    return 2;
  }

  for (int Step = 0; Step < EditSteps; ++Step) {
    uint64_t StepSeed = BaseSeed + uint64_t(Step) + 1;
    Rng R(splitMix64(StepSeed));
    E.randomEdit(RT, R);
    RT.propagate();
    TraceAudit::Report Audit = TraceAudit::inspect(RT);
    if (!Audit.ok()) {
      std::fprintf(stderr, "load: audit failed at step %d:\n%s\n", Step,
                   Audit.summary().c_str());
      return 2;
    }
    if (actualOutput(RT, DstMap, DstRev) != expectedOutput(RT, E.L.Head)) {
      std::fprintf(stderr, "load: output mismatch at step %d\n", Step);
      return 2;
    }
  }
  std::printf("propagated %d edits against the restored trace: ok\n",
              EditSteps);
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> Args(argv + 1, argv + argc);
  bool UseMmap = false;
  for (auto It = Args.begin(); It != Args.end();)
    if (*It == "--mmap") {
      UseMmap = true;
      It = Args.erase(It);
    } else {
      ++It;
    }
  if (Args.size() != 2 || (Args[0] != "save" && Args[0] != "load")) {
    std::fprintf(stderr,
                 "usage: snapshot-roundtrip save <file>\n"
                 "       snapshot-roundtrip load [--mmap] <file>\n");
    return 5;
  }
  return Args[0] == "save" ? runSave(Args[1]) : runLoad(Args[1], UseMmap);
}
