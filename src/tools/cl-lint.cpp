//===- tools/cl-lint.cpp - CL lint driver ----------------------------------===//
//
// Command-line front end for analysis::runLints: parses CL sources (or
// loads the shipped samples), runs the verifier plus the CEAL-specific
// dataflow lints, and prints located diagnostics.
//
// Usage:
//   cl-lint [options] [file.cl ...]
//   cl-lint --sample=all            # lint every shipped sample
//   cl-lint --sample=quicksort      # one shipped sample by name
//
// Options:
//   --normal-form    require the Sec. 5 normal form (reads must tail)
//   --max-live=N     loop-header live-set warning threshold (default 12)
//   --no-notes       suppress note-severity diagnostics
//   --json           machine-readable output (one JSON object)
//   -q, --quiet      only the per-program summary lines
//
// Exit status: 1 if any error-severity diagnostic was produced (or an
// input failed to parse), 0 otherwise — warnings and notes do not fail
// the run, matching the "zero errors on shipped samples" CI gate.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lints.h"
#include "cl/Parser.h"
#include "cl/Printer.h"
#include "cl/Samples.h"

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace ceal;
using namespace ceal::cl;

namespace {

struct Options {
  analysis::LintOptions Lint;
  bool Json = false;
  bool Quiet = false;
  bool ShowNotes = true;
  std::vector<std::string> Files;
  std::string Sample;
};

void escapeJson(std::ostream &Out, const std::string &S) {
  Out << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out << "\\\"";
      break;
    case '\\':
      Out << "\\\\";
      break;
    case '\n':
      Out << "\\n";
      break;
    case '\t':
      Out << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out << "\\u00" << "0123456789abcdef"[(C >> 4) & 0xf]
            << "0123456789abcdef"[C & 0xf];
      else
        Out << C;
    }
  }
  Out << '"';
}

struct LintRun {
  std::string Name;
  std::string ParseError; // Non-empty: the source did not parse.
  std::optional<Program> Prog;
  analysis::LintReport Report;
};

LintRun lintSource(const std::string &Name, const std::string &Source,
                   const Options &O) {
  LintRun Run;
  Run.Name = Name;
  ParseResult R = parseProgram(Source);
  if (!R) {
    Run.ParseError = R.Error;
    return Run;
  }
  Run.Prog = std::move(R.Prog);
  Run.Report = analysis::runLints(*Run.Prog, O.Lint);
  return Run;
}

void printJson(const std::vector<LintRun> &Runs, const Options &O) {
  std::ostream &Out = std::cout;
  Out << "{\n  \"programs\": [\n";
  for (size_t RI = 0; RI < Runs.size(); ++RI) {
    const LintRun &Run = Runs[RI];
    Out << "    {\n      \"name\": ";
    escapeJson(Out, Run.Name);
    if (!Run.ParseError.empty()) {
      Out << ",\n      \"parse_error\": ";
      escapeJson(Out, Run.ParseError);
      Out << ",\n      \"diagnostics\": []\n    }";
    } else {
      Out << ",\n      \"max_live\": " << Run.Report.MaxLiveProgram
          << ",\n      \"errors\": " << Run.Report.errorCount()
          << ",\n      \"diagnostics\": [\n";
      bool First = true;
      for (const Diagnostic &D : Run.Report.Diags) {
        if (D.Sev == Severity::Note && !O.ShowNotes)
          continue;
        if (!First)
          Out << ",\n";
        First = false;
        const Program &P = *Run.Prog;
        Out << "        {\"check\": ";
        escapeJson(Out, D.Check);
        Out << ", \"severity\": \"" << severityName(D.Sev) << "\"";
        if (D.Function < P.Funcs.size()) {
          Out << ", \"function\": ";
          escapeJson(Out, P.Funcs[D.Function].Name);
          if (D.Block < P.Funcs[D.Function].Blocks.size()) {
            Out << ", \"block\": ";
            escapeJson(Out, P.Funcs[D.Function].Blocks[D.Block].Label);
            Out << ", \"block_id\": " << D.Block
                << ", \"index\": " << D.Index;
          }
        }
        Out << ", \"message\": ";
        escapeJson(Out, D.Message);
        Out << "}";
      }
      Out << "\n      ]\n    }";
    }
    Out << (RI + 1 < Runs.size() ? ",\n" : "\n");
  }
  Out << "  ]\n}\n";
}

void printText(const std::vector<LintRun> &Runs, const Options &O) {
  for (const LintRun &Run : Runs) {
    if (!Run.ParseError.empty()) {
      std::cout << Run.Name << ": parse error: " << Run.ParseError << "\n";
      continue;
    }
    size_t Errors = 0, Warnings = 0, Notes = 0;
    for (const Diagnostic &D : Run.Report.Diags) {
      switch (D.Sev) {
      case Severity::Error:
        ++Errors;
        break;
      case Severity::Warning:
        ++Warnings;
        break;
      case Severity::Note:
        ++Notes;
        break;
      }
      if (O.Quiet || (D.Sev == Severity::Note && !O.ShowNotes))
        continue;
      std::cout << renderDiagnostic(*Run.Prog, D);
    }
    std::cout << Run.Name << ": " << Errors << " error(s), " << Warnings
              << " warning(s), " << Notes << " note(s), ML(P) = "
              << Run.Report.MaxLiveProgram << "\n";
  }
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Value = [&](const char *Prefix) {
      return A.substr(std::string(Prefix).size());
    };
    if (A == "--normal-form") {
      O.Lint.RequireNormalForm = true;
    } else if (A.rfind("--max-live=", 0) == 0) {
      O.Lint.LoopLiveThreshold = std::stoul(Value("--max-live="));
    } else if (A == "--no-notes") {
      O.ShowNotes = false;
      O.Lint.DeadCodeNotes = false;
    } else if (A == "--json") {
      O.Json = true;
    } else if (A == "-q" || A == "--quiet") {
      O.Quiet = true;
    } else if (A.rfind("--sample=", 0) == 0) {
      O.Sample = Value("--sample=");
    } else if (A == "--help" || A == "-h") {
      std::cout << "usage: cl-lint [--sample=NAME|all] [--normal-form] "
                   "[--max-live=N] [--no-notes] [--json] [-q] [file.cl ...]\n";
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::cerr << "cl-lint: unknown option '" << A << "'\n";
      return 2;
    } else {
      O.Files.push_back(A);
    }
  }
  if (O.Files.empty() && O.Sample.empty())
    O.Sample = "all";

  std::vector<LintRun> Runs;
  if (!O.Sample.empty()) {
    bool Found = false;
    for (const auto &[Name, Source] : samples::allPrograms()) {
      if (O.Sample != "all" && O.Sample != Name)
        continue;
      Found = true;
      Runs.push_back(lintSource(Name, Source, O));
    }
    if (!Found) {
      std::cerr << "cl-lint: unknown sample '" << O.Sample << "'\n";
      return 2;
    }
  }
  for (const std::string &File : O.Files) {
    std::ifstream In(File);
    if (!In) {
      std::cerr << "cl-lint: cannot open '" << File << "'\n";
      return 2;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Runs.push_back(lintSource(File, Buf.str(), O));
  }

  if (O.Json)
    printJson(Runs, O);
  else
    printText(Runs, O);

  for (const LintRun &Run : Runs)
    if (!Run.ParseError.empty() || Run.Report.errorCount() > 0)
      return 1;
  return 0;
}
