//===- tools/cl-lint.cpp - CL lint driver ----------------------------------===//
//
// Command-line front end for analysis::runLints: parses CL sources (or
// loads the shipped samples), runs the verifier plus the CEAL-specific
// dataflow lints, and prints located diagnostics.
//
// Usage:
//   cl-lint [options] [file.cl ...]
//   cl-lint --sample=all            # lint every shipped sample
//   cl-lint --sample=quicksort      # one shipped sample by name
//
// Options:
//   --normal-form    require the Sec. 5 normal form (reads must tail)
//   --max-live=N     loop-header live-set warning threshold (default 12)
//   --no-notes       suppress note-severity diagnostics
//   --json           machine-readable output (one JSON object, including
//                    the per-program interference report: region
//                    classes, entry-point effects, and every non-disjoint
//                    entry pair)
//   -q, --quiet      only the per-program summary lines
//
// Exit status (stable, consumed by the cl_lint_gate ctest):
//   0  clean — no diagnostics of any severity
//   1  lints — warnings or notes were produced, but no errors
//   2  errors — error-severity diagnostics, a parse failure, or a usage
//      error (unknown option/sample, unreadable file)
//
//===----------------------------------------------------------------------===//

#include "analysis/Interference.h"
#include "analysis/Lints.h"
#include "cl/Parser.h"
#include "cl/Printer.h"
#include "cl/Samples.h"

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace ceal;
using namespace ceal::cl;

namespace {

struct Options {
  analysis::LintOptions Lint;
  bool Json = false;
  bool Quiet = false;
  bool ShowNotes = true;
  std::vector<std::string> Files;
  std::string Sample;
};

void escapeJson(std::ostream &Out, const std::string &S) {
  Out << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out << "\\\"";
      break;
    case '\\':
      Out << "\\\\";
      break;
    case '\n':
      Out << "\\n";
      break;
    case '\t':
      Out << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out << "\\u00" << "0123456789abcdef"[(C >> 4) & 0xf]
            << "0123456789abcdef"[C & 0xf];
      else
        Out << C;
    }
  }
  Out << '"';
}

struct LintRun {
  std::string Name;
  std::string ParseError; // Non-empty: the source did not parse.
  std::optional<Program> Prog;
  analysis::LintReport Report;
  analysis::InterferenceSummary Interf;

  size_t warningCount() const {
    size_t N = 0;
    for (const Diagnostic &D : Report.Diags)
      N += D.Sev == Severity::Warning;
    return N;
  }
  size_t noteCount() const {
    size_t N = 0;
    for (const Diagnostic &D : Report.Diags)
      N += D.Sev == Severity::Note;
    return N;
  }
};

LintRun lintSource(const std::string &Name, const std::string &Source,
                   const Options &O) {
  LintRun Run;
  Run.Name = Name;
  ParseResult R = parseProgram(Source);
  if (!R) {
    Run.ParseError = R.Error;
    return Run;
  }
  Run.Prog = std::move(R.Prog);
  Run.Report = analysis::runLints(*Run.Prog, O.Lint);
  if (Run.Report.errorCount() == 0)
    Run.Interf = analysis::computeInterference(*Run.Prog);
  return Run;
}

/// The machine-readable interference report of one program: the region
/// classes, every entry point with its resolved effect class lists, the
/// non-disjoint entry pairs, and the pair tally.
void printInterferenceJson(std::ostream &Out, const LintRun &Run,
                           const char *Indent) {
  const analysis::InterferenceSummary &S = Run.Interf;
  const Program &P = *Run.Prog;
  auto ClassList = [&](const analysis::BitVec &Set) {
    Out << "[";
    bool First = true;
    Set.forEach([&](size_t C) {
      if (!First)
        Out << ", ";
      First = false;
      escapeJson(Out, S.Classes[C].name(P));
    });
    Out << "]";
  };
  Out << "{\n" << Indent << "  \"classes\": [";
  for (size_t C = 0; C < S.Classes.size(); ++C) {
    if (C)
      Out << ", ";
    escapeJson(Out, S.Classes[C].name(P));
  }
  Out << "],\n" << Indent << "  \"entries\": [\n";
  for (size_t E = 0; E < S.Entries.size(); ++E) {
    Out << Indent << "    {\"name\": ";
    escapeJson(Out, S.Entries[E].name(P));
    Out << ", \"reads\": ";
    ClassList(S.Entries[E].Reads);
    Out << ", \"writes\": ";
    ClassList(S.Entries[E].Writes);
    Out << "}" << (E + 1 < S.Entries.size() ? ",\n" : "\n");
  }
  size_t Disjoint = 0, Ordered = 0, Conflicting = 0;
  Out << Indent << "  ],\n" << Indent << "  \"pairs\": [";
  bool FirstPair = true;
  for (size_t I = 0; I < S.Entries.size(); ++I)
    for (size_t J = I + 1; J < S.Entries.size(); ++J) {
      analysis::PairRelation R = S.classify(S.Entries[I], S.Entries[J]);
      switch (R) {
      case analysis::PairRelation::Disjoint:
        ++Disjoint;
        continue; // Disjoint pairs are counted, not listed.
      case analysis::PairRelation::Ordered:
        ++Ordered;
        break;
      case analysis::PairRelation::Conflicting:
        ++Conflicting;
        break;
      }
      Out << (FirstPair ? "\n" : ",\n") << Indent << "    {\"a\": ";
      FirstPair = false;
      escapeJson(Out, S.Entries[I].name(P));
      Out << ", \"b\": ";
      escapeJson(Out, S.Entries[J].name(P));
      Out << ", \"relation\": \"" << analysis::pairRelationName(R) << "\"}";
    }
  if (!FirstPair)
    Out << "\n" << Indent << "  ";
  Out << "],\n"
      << Indent << "  \"pair_counts\": {\"disjoint\": " << Disjoint
      << ", \"ordered\": " << Ordered << ", \"conflicting\": " << Conflicting
      << "}\n" << Indent << "}";
}

void printJson(const std::vector<LintRun> &Runs, const Options &O) {
  std::ostream &Out = std::cout;
  Out << "{\n  \"programs\": [\n";
  for (size_t RI = 0; RI < Runs.size(); ++RI) {
    const LintRun &Run = Runs[RI];
    Out << "    {\n      \"name\": ";
    escapeJson(Out, Run.Name);
    if (!Run.ParseError.empty()) {
      Out << ",\n      \"parse_error\": ";
      escapeJson(Out, Run.ParseError);
      Out << ",\n      \"diagnostics\": []\n    }";
    } else {
      Out << ",\n      \"max_live\": " << Run.Report.MaxLiveProgram
          << ",\n      \"errors\": " << Run.Report.errorCount()
          << ",\n      \"warnings\": " << Run.warningCount()
          << ",\n      \"notes\": " << Run.noteCount()
          << ",\n      \"diagnostics\": [\n";
      bool First = true;
      for (const Diagnostic &D : Run.Report.Diags) {
        if (D.Sev == Severity::Note && !O.ShowNotes)
          continue;
        if (!First)
          Out << ",\n";
        First = false;
        const Program &P = *Run.Prog;
        Out << "        {\"check\": ";
        escapeJson(Out, D.Check);
        Out << ", \"severity\": \"" << severityName(D.Sev) << "\"";
        if (D.Function < P.Funcs.size()) {
          Out << ", \"function\": ";
          escapeJson(Out, P.Funcs[D.Function].Name);
          if (D.Block < P.Funcs[D.Function].Blocks.size()) {
            Out << ", \"block\": ";
            escapeJson(Out, P.Funcs[D.Function].Blocks[D.Block].Label);
            Out << ", \"block_id\": " << D.Block
                << ", \"index\": " << D.Index;
          }
        }
        Out << ", \"message\": ";
        escapeJson(Out, D.Message);
        Out << "}";
      }
      Out << "\n      ]";
      if (Run.Report.errorCount() == 0) {
        Out << ",\n      \"interference\": ";
        printInterferenceJson(Out, Run, "      ");
      }
      Out << "\n    }";
    }
    Out << (RI + 1 < Runs.size() ? ",\n" : "\n");
  }
  Out << "  ]\n}\n";
}

void printText(const std::vector<LintRun> &Runs, const Options &O) {
  for (const LintRun &Run : Runs) {
    if (!Run.ParseError.empty()) {
      std::cout << Run.Name << ": parse error: " << Run.ParseError << "\n";
      continue;
    }
    size_t Errors = 0, Warnings = 0, Notes = 0;
    for (const Diagnostic &D : Run.Report.Diags) {
      switch (D.Sev) {
      case Severity::Error:
        ++Errors;
        break;
      case Severity::Warning:
        ++Warnings;
        break;
      case Severity::Note:
        ++Notes;
        break;
      }
      if (O.Quiet || (D.Sev == Severity::Note && !O.ShowNotes))
        continue;
      std::cout << renderDiagnostic(*Run.Prog, D);
    }
    std::cout << Run.Name << ": " << Errors << " error(s), " << Warnings
              << " warning(s), " << Notes << " note(s), ML(P) = "
              << Run.Report.MaxLiveProgram << "\n";
  }
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Value = [&](const char *Prefix) {
      return A.substr(std::string(Prefix).size());
    };
    if (A == "--normal-form") {
      O.Lint.RequireNormalForm = true;
    } else if (A.rfind("--max-live=", 0) == 0) {
      O.Lint.LoopLiveThreshold = std::stoul(Value("--max-live="));
    } else if (A == "--no-notes") {
      O.ShowNotes = false;
      O.Lint.DeadCodeNotes = false;
    } else if (A == "--json") {
      O.Json = true;
    } else if (A == "-q" || A == "--quiet") {
      O.Quiet = true;
    } else if (A.rfind("--sample=", 0) == 0) {
      O.Sample = Value("--sample=");
    } else if (A == "--help" || A == "-h") {
      std::cout << "usage: cl-lint [--sample=NAME|all] [--normal-form] "
                   "[--max-live=N] [--no-notes] [--json] [-q] [file.cl ...]\n";
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::cerr << "cl-lint: unknown option '" << A << "'\n";
      return 2;
    } else {
      O.Files.push_back(A);
    }
  }
  if (O.Files.empty() && O.Sample.empty())
    O.Sample = "all";

  std::vector<LintRun> Runs;
  if (!O.Sample.empty()) {
    bool Found = false;
    for (const auto &[Name, Source] : samples::allPrograms()) {
      if (O.Sample != "all" && O.Sample != Name)
        continue;
      Found = true;
      Runs.push_back(lintSource(Name, Source, O));
    }
    if (!Found) {
      std::cerr << "cl-lint: unknown sample '" << O.Sample << "'\n";
      return 2;
    }
  }
  for (const std::string &File : O.Files) {
    std::ifstream In(File);
    if (!In) {
      std::cerr << "cl-lint: cannot open '" << File << "'\n";
      return 2;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Runs.push_back(lintSource(File, Buf.str(), O));
  }

  if (O.Json)
    printJson(Runs, O);
  else
    printText(Runs, O);

  // Stable exit contract: 2 errors / 1 lints / 0 clean.
  bool Errors = false, Lints = false;
  for (const LintRun &Run : Runs) {
    Errors |= !Run.ParseError.empty() || Run.Report.errorCount() > 0;
    Lints |= Run.warningCount() > 0 || Run.noteCount() > 0;
  }
  return Errors ? 2 : Lints ? 1 : 0;
}
