//===- interp/Vm.h - CL execution ------------------------------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two executors for CL programs:
///
///  * Vm — the self-adjusting virtual machine. It runs *normalized* CL
///    (every read tails) against the run-time system, implementing the
///    operational semantics of Sec. 4.2 with the translated behaviour of
///    Sec. 6: tail jumps iterate (no stack growth), reads hand closures
///    to the trampoline, allocations are memo-keyed by (initializer,
///    size, arguments). The mutator drives it through the meta helpers
///    and Runtime::propagate.
///
///  * ConvInterp — the conventional interpreter: modifiables are plain
///    word cells, reads are loads, writes are stores. It defines the
///    from-scratch semantics and serves as the oracle for the
///    normalization-preserves-semantics and propagation-correctness
///    property tests.
///
/// Semantics shared by both: integers are signed 64-bit; division and
/// modulus by zero yield zero (totality keeps random-program tests
/// deterministic); uninitialized locals are zero; array indexing is in
/// words while alloc sizes are in bytes (as in the paper).
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_INTERP_VM_H
#define CEAL_INTERP_VM_H

#include "cl/Ir.h"
#include "runtime/Runtime.h"

#include <string>
#include <vector>

namespace ceal {
namespace interp {

/// The self-adjusting CL virtual machine.
class Vm {
public:
  /// \p P must verify cleanly and be in normal form.
  Vm(Runtime &RT, const cl::Program &P);

  Runtime &runtime() { return RT; }
  const cl::Program &program() const { return Prog; }

  //===------------------------------------------------------------===//
  // Meta (mutator) surface
  //===------------------------------------------------------------===//

  Modref *metaModref() { return RT.modref(); }
  void metaWrite(Modref *M, Word V) { RT.modify(M, V); }
  Word metaRead(const Modref *M) const { return RT.deref(M); }
  /// A plain input block (for mutator-built structures).
  void *metaAlloc(size_t Bytes) { return RT.metaAlloc(Bytes); }

  /// Runs core function \p Name from scratch with word arguments.
  void runCore(const std::string &Name, const std::vector<Word> &Args);
  void propagate() { RT.propagate(); }

  /// Closure-environment accounting: every closure this VM built (reads,
  /// tail calls, allocation initializers) and the total CL-argument words
  /// those closures carried. The ratio approximates the per-trace-node
  /// environment cost ML(P) that closure slimming shrinks.
  uint64_t closuresMade() const { return ClosuresMade; }
  uint64_t closureEnvWords() const { return ClosureEnvWords; }

private:
  friend struct VmEntryHook;
  static Closure *vmEntry(Runtime &RT, Closure *C, Word Subst);
  Closure *exec(cl::FuncId F, std::vector<Word> Regs0);
  Closure *makeVmClosure(cl::FuncId F, Word SubstPos,
                         const std::vector<Word> &Args);

  Runtime &RT;
  const cl::Program &Prog;
  uint64_t ClosuresMade = 0;
  uint64_t ClosureEnvWords = 0;
};

/// The conventional interpreter (plain memory, direct execution).
class ConvInterp {
public:
  explicit ConvInterp(const cl::Program &P) : Prog(P) {}

  /// A conventional "modifiable": one word of storage.
  Word *newCell(Word Init = 0);
  void *alloc(size_t Bytes);
  void run(const std::string &Name, const std::vector<Word> &Args);

  /// Number of commands executed (a deterministic work measure).
  uint64_t steps() const { return Steps; }

private:
  void exec(cl::FuncId F, std::vector<Word> Args);

  const cl::Program &Prog;
  std::vector<std::vector<Word>> Blocks; ///< Owned storage.
  uint64_t Steps = 0;
};

} // namespace interp
} // namespace ceal

#endif // CEAL_INTERP_VM_H
