//===- interp/Vm.cpp - CL execution -----------------------------------------===//

#include "interp/Vm.h"

#include "cl/Verifier.h"
#include "support/Check.h"

#include <cassert>

using namespace ceal;
using namespace ceal::interp;
using namespace ceal::cl;

//===----------------------------------------------------------------------===//
// Shared expression semantics
//===----------------------------------------------------------------------===//

namespace {

int64_t asInt(Word W) { return fromWord<int64_t>(W); }

Word applyOp(OpKind Op, Word AW, Word BW) {
  int64_t A = asInt(AW), B = asInt(BW);
  switch (Op) {
  // Add/Sub/Mul wrap modulo 2^64 (defined by computing unsigned), so CL
  // programs can build multiplicative hashes.
  case OpKind::Add: return AW + BW;
  case OpKind::Sub: return AW - BW;
  case OpKind::Mul: return AW * BW;
  case OpKind::Div: return toWord(B == 0 ? int64_t(0) : A / B);
  case OpKind::Mod: return toWord(B == 0 ? int64_t(0) : A % B);
  case OpKind::Lt:  return toWord(int64_t(A < B));
  case OpKind::Le:  return toWord(int64_t(A <= B));
  case OpKind::Gt:  return toWord(int64_t(A > B));
  case OpKind::Ge:  return toWord(int64_t(A >= B));
  case OpKind::Eq:  return toWord(int64_t(A == B));
  case OpKind::Ne:  return toWord(int64_t(A != B));
  case OpKind::And: return toWord(int64_t(A && B));
  case OpKind::Or:  return toWord(int64_t(A || B));
  case OpKind::Not: return toWord(int64_t(!A));
  case OpKind::Neg: return toWord(-A);
  }
  return 0;
}

Word evalExpr(const Expr &E, const std::vector<Word> &Regs) {
  switch (E.K) {
  case Expr::Const:
    return toWord(E.IntVal);
  case Expr::Var:
    return Regs[E.V];
  case Expr::Prim:
    if (opArity(E.Op) == 1)
      return applyOp(E.Op, Regs[E.Args[0]], 0);
    return applyOp(E.Op, Regs[E.Args[0]], Regs[E.Args[1]]);
  case Expr::Index:
    return fromWord<Word *>(Regs[E.V])[asInt(Regs[E.Idx])];
  }
  return 0;
}

constexpr Word NoSubst = ~Word(0);

} // namespace

//===----------------------------------------------------------------------===//
// The self-adjusting VM
//===----------------------------------------------------------------------===//

Vm::Vm(Runtime &RT, const Program &P) : RT(RT), Prog(P) {
  assert(verifyProgram(P).empty() && "VM requires a well-formed program");
  assert(isNormalForm(P) && "VM requires normalized CL (run NORMALIZE)");
}

/// Closure layout: [0] Vm*, [1] function id, [2] substitution position
/// within the CL arguments (NoSubst if none), [3..] CL argument words.
/// The read value / block address has no frame slot — it arrives in the
/// trampoline's substitution register. The stored CL arguments are never
/// mutated (the substitution position keeps its placeholder), so memo
/// keys — which cover every stored arg — are stable across re-executions.
Closure *Vm::makeVmClosure(FuncId F, Word SubstPos,
                           const std::vector<Word> &Args) {
  ++ClosuresMade;
  ClosureEnvWords += Args.size();
  std::vector<Word> Frame(3 + Args.size());
  Frame[0] = toWord(this);
  Frame[1] = F;
  Frame[2] = SubstPos;
  for (size_t I = 0; I < Args.size(); ++I)
    Frame[3 + I] = Args[I];
  return RT.makeRaw(&Vm::vmEntry, Frame.data(), Frame.size());
}

Closure *Vm::vmEntry(Runtime &RT, Closure *C, Word Subst) {
  (void)RT;
  const Word *A = C->args();
  Vm *Self = fromWord<Vm *>(A[0]);
  auto F = static_cast<FuncId>(A[1]);
  Word SubstPos = A[2];
  size_t NumArgs = C->numArgs() - 3;
  const Function &Fn = Self->Prog.Funcs[F];
  std::vector<Word> Regs(Fn.Vars.size(), 0);
  assert(NumArgs == Fn.NumParams && "VM closure arity mismatch");
  for (size_t I = 0; I < NumArgs; ++I)
    Regs[I] = A[3 + I];
  if (SubstPos != NoSubst)
    Regs[SubstPos] = Subst; // The read value / block address arrives here.
  return Self->exec(F, std::move(Regs));
}

Closure *Vm::exec(FuncId F, std::vector<Word> Regs) {
  for (;;) { // Tail-jump loop: tails iterate instead of growing the stack.
    const Function &Fn = Prog.Funcs[F];
    BlockId B = 0;
    const Jump *Next = nullptr;
    for (;;) { // Intra-function block loop.
      const BasicBlock &BB = Fn.Blocks[B];
      switch (BB.K) {
      case BasicBlock::Done:
        return nullptr;
      case BasicBlock::Cond:
        Next = asInt(Regs[BB.CondVar]) ? &BB.J1 : &BB.J2;
        break;
      case BasicBlock::Cmd: {
        const Command &C = BB.C;
        switch (C.K) {
        case Command::Nop:
          break;
        case Command::Assign:
          Regs[C.Dst] = evalExpr(C.E, Regs);
          break;
        case Command::Store:
          fromWord<Word *>(Regs[C.Base])[asInt(Regs[C.Idx])] =
              evalExpr(C.E, Regs);
          break;
        case Command::ModrefAlloc: {
          // Key words identify this modifiable across re-executions; the
          // fresh-allocation path matches keyless modref() too. Keys go
          // through a stack buffer: this runs once per VM-executed
          // modref(keys...), and a transient heap vector dominated the
          // instruction's cost. CL key arity is bounded by program text.
          constexpr size_t MaxModrefKeys = 16;
          checkAlways(C.Args.size() <= MaxModrefKeys,
                      "modref key arity exceeds the VM limit");
          Word Keys[MaxModrefKeys];
          for (size_t I = 0; I < C.Args.size(); ++I)
            Keys[I] = Regs[C.Args[I]];
          Regs[C.Dst] = toWord(RT.coreModrefDynamic(Keys, C.Args.size()));
          break;
        }
        case Command::Read: {
          // Normal form: the jump is a tail. Build the dependent closure
          // and hand it to the trampoline via the traced read; the read
          // value substitutes at the destination's position in the tail
          // arguments (if the destination is passed at all).
          assert(BB.J.K == Jump::Tail && "read must tail (normal form)");
          Word SubstPos = NoSubst;
          std::vector<Word> Args(BB.J.Args.size());
          for (size_t I = 0; I < Args.size(); ++I) {
            if (BB.J.Args[I] == C.Dst && SubstPos == NoSubst) {
              SubstPos = I;
              Args[I] = 0; // Placeholder: keeps the memo key stable.
            } else {
              Args[I] = Regs[BB.J.Args[I]];
            }
          }
          Closure *K = makeVmClosure(BB.J.Fn, SubstPos, Args);
          return RT.read(fromWord<Modref *>(Regs[C.Src]), K);
        }
        case Command::Write:
          RT.write(fromWord<Modref *>(Regs[C.Ref]), Regs[C.Val]);
          break;
        case Command::Alloc: {
          // The initializer's first parameter receives the block; the
          // allocation is memo-keyed by (initializer, size, arguments).
          std::vector<Word> Args(1 + C.Args.size());
          Args[0] = 0; // Block placeholder.
          for (size_t I = 0; I < C.Args.size(); ++I)
            Args[1 + I] = Regs[C.Args[I]];
          Closure *Init = makeVmClosure(C.Fn, /*SubstPos=*/0, Args);
          Regs[C.Dst] =
              toWord(RT.allocate(static_cast<size_t>(Regs[C.SizeVar]), Init));
          break;
        }
        case Command::Call: {
          std::vector<Word> Args(C.Args.size());
          for (size_t I = 0; I < Args.size(); ++I)
            Args[I] = Regs[C.Args[I]];
          RT.call(makeVmClosure(C.Fn, NoSubst, Args));
          break;
        }
        }
        Next = &BB.J;
        break;
      }
      }
      if (Next->K == Jump::Goto) {
        B = Next->Target;
        continue;
      }
      // Tail jump: gather arguments and iterate into the next function.
      const Function &Callee = Prog.Funcs[Next->Fn];
      std::vector<Word> NewRegs(Callee.Vars.size(), 0);
      for (size_t I = 0; I < Next->Args.size(); ++I)
        NewRegs[I] = Regs[Next->Args[I]];
      F = Next->Fn;
      Regs = std::move(NewRegs);
      break;
    }
  }
}

void Vm::runCore(const std::string &Name, const std::vector<Word> &Args) {
  FuncId F = Prog.findFunc(Name);
  assert(F != InvalidId && "unknown core function");
  assert(Args.size() == Prog.Funcs[F].NumParams && "entry arity mismatch");
  RT.run(makeVmClosure(F, NoSubst, Args));
}

//===----------------------------------------------------------------------===//
// The conventional interpreter
//===----------------------------------------------------------------------===//

Word *ConvInterp::newCell(Word Init) {
  Blocks.emplace_back(1, Init);
  return Blocks.back().data();
}

void *ConvInterp::alloc(size_t Bytes) {
  Blocks.emplace_back((Bytes + sizeof(Word) - 1) / sizeof(Word) + 1, 0);
  return Blocks.back().data();
}

void ConvInterp::run(const std::string &Name, const std::vector<Word> &Args) {
  FuncId F = Prog.findFunc(Name);
  assert(F != InvalidId && "unknown function");
  exec(F, Args);
}

void ConvInterp::exec(FuncId F, std::vector<Word> Args) {
  for (;;) {
    const Function &Fn = Prog.Funcs[F];
    std::vector<Word> Regs(Fn.Vars.size(), 0);
    assert(Args.size() == Fn.NumParams && "arity mismatch");
    for (size_t I = 0; I < Args.size(); ++I)
      Regs[I] = Args[I];
    BlockId B = 0;
    const Jump *Next = nullptr;
    for (;;) {
      ++Steps;
      const BasicBlock &BB = Fn.Blocks[B];
      switch (BB.K) {
      case BasicBlock::Done:
        return;
      case BasicBlock::Cond:
        Next = asInt(Regs[BB.CondVar]) ? &BB.J1 : &BB.J2;
        break;
      case BasicBlock::Cmd: {
        const Command &C = BB.C;
        switch (C.K) {
        case Command::Nop:
          break;
        case Command::Assign:
          Regs[C.Dst] = evalExpr(C.E, Regs);
          break;
        case Command::Store:
          fromWord<Word *>(Regs[C.Base])[asInt(Regs[C.Idx])] =
              evalExpr(C.E, Regs);
          break;
        case Command::ModrefAlloc:
          Regs[C.Dst] = toWord(newCell());
          break;
        case Command::Read:
          // Conventional semantics: a read is a load.
          Regs[C.Dst] = *fromWord<Word *>(Regs[C.Src]);
          break;
        case Command::Write:
          *fromWord<Word *>(Regs[C.Ref]) = Regs[C.Val];
          break;
        case Command::Alloc: {
          void *Block = alloc(static_cast<size_t>(Regs[C.SizeVar]));
          std::vector<Word> InitArgs(1 + C.Args.size());
          InitArgs[0] = toWord(Block);
          for (size_t I = 0; I < C.Args.size(); ++I)
            InitArgs[1 + I] = Regs[C.Args[I]];
          exec(C.Fn, std::move(InitArgs));
          Regs[C.Dst] = toWord(Block);
          break;
        }
        case Command::Call: {
          std::vector<Word> CallArgs(C.Args.size());
          for (size_t I = 0; I < CallArgs.size(); ++I)
            CallArgs[I] = Regs[C.Args[I]];
          exec(C.Fn, std::move(CallArgs));
          break;
        }
        }
        Next = &BB.J;
        break;
      }
      }
      if (Next->K == Jump::Goto) {
        B = Next->Target;
        continue;
      }
      std::vector<Word> TailArgs(Next->Args.size());
      for (size_t I = 0; I < TailArgs.size(); ++I)
        TailArgs[I] = Regs[Next->Args[I]];
      F = Next->Fn;
      Args = std::move(TailArgs);
      break;
    }
  }
}
