//===- translate/RtsShim.h - C ABI for compiled CEAL code -------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The run-time-library side of the translation: the C functions of the
/// paper's Fig. 11 interface (closure_make / closure_run / modref_* /
/// allocate), backed by a ceal::Runtime. C code emitted by
/// translate::emitC with external linkage can be compiled by a real C
/// compiler, loaded (e.g. with dlopen), and executed self-adjustingly —
/// the complete CEAL pipeline, machine code included.
///
/// The ABI routes every call through one installed Runtime (the paper's
/// RTS is a process-global library too). Closures carry the target C
/// function, its arity, and the substitution position that modref_read /
/// allocate fill in (the generalization of the paper's value-goes-first
/// convention; see normalize/Normalize.h).
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_TRANSLATE_RTSSHIM_H
#define CEAL_TRANSLATE_RTSSHIM_H

#include "runtime/Runtime.h"

#include <vector>

namespace ceal {
namespace shim {

/// Installs the runtime the C ABI operates on. Not thread-safe; one
/// compiled core at a time (matching the paper's single-RTS model).
void setRuntime(Runtime *RT);
Runtime *currentRuntime();

/// Builds a trampoline-ready closure that invokes the compiled C core
/// function \p CFn (signature `closure_t *f(word, word, ...)`) with the
/// given word arguments — how a mutator starts a compiled core:
/// `RT.run(makeEntryClosure(RT, dlsym(...), {args...}))`.
Closure *makeEntryClosure(Runtime &RT, void *CFn,
                          const std::vector<Word> &Args);

/// Maximum arity of compiled core functions the shim can invoke.
constexpr unsigned MaxCArity = 12;

} // namespace shim
} // namespace ceal

#endif // CEAL_TRANSLATE_RTSSHIM_H
