//===- translate/EmitC.h - CL to C translation -----------------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The translation phase (paper Sec. 6, Fig. 12): normalized CL becomes a
/// C translation unit against the run-time-system interface of Fig. 11
/// (closure_make / closure_run / modref_* / allocate). Two modes:
///
///  * Basic — every tail jump returns a fresh closure to the trampoline
///    (Fig. 12 verbatim);
///  * Refined — read trampolining (Sec. 6.3): only the tail jumps that
///    follow reads go through closures (the read already makes one);
///    other tail jumps become direct calls, `[tail f(x)] = return f(x)`.
///
/// Both modes monomorphize closure_make: one statically generated maker
/// per (function, arity) use, as the paper does following MLton.
///
/// The emitted unit is self-contained C (an embedded prelude declares the
/// RTS interface), so tests can syntax-check it with a real C compiler.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_TRANSLATE_EMITC_H
#define CEAL_TRANSLATE_EMITC_H

#include "cl/Ir.h"

#include <string>

namespace ceal {
namespace translate {

enum class Mode {
  Basic,   ///< Closure per tail jump (Sec. 6.2).
  Refined, ///< Read trampolining + direct tails (Sec. 6.3).
};

struct EmitResult {
  std::string Code;
  size_t MonomorphInstances = 0; ///< Generated closure_make_* makers.
  size_t EmittedBytes = 0;       ///< == Code.size(); the "binary size"
                                 ///< proxy of Table 3 / Fig. 15.
  size_t ReadTailEnvWords = 0;   ///< Static closure-environment words
                                 ///< over all read continuations (the
                                 ///< per-trace-node ML(P) proxy that
                                 ///< closure slimming shrinks).
};

/// Linkage of the emitted core functions: Static yields a self-contained
/// translation unit for inspection/syntax checks; External exports them
/// so the unit can be compiled, loaded, and run against the RTS shim
/// (translate/RtsShim.h).
enum class Linkage { Static, External };

/// Translates normalized \p P (asserts cl::isNormalForm) into C.
EmitResult emitC(const cl::Program &P, Mode M,
                 Linkage L = Linkage::Static);

/// The passthrough pipeline of the Table 3 "gcc" substitution: prints the
/// program without normalization or translation (see DESIGN.md Sec. 3).
EmitResult emitPassthrough(const cl::Program &P);

} // namespace translate
} // namespace ceal

#endif // CEAL_TRANSLATE_EMITC_H
