//===- translate/RtsShim.cpp - C ABI for compiled CEAL code ----------------===//
//
// Closure layout used for compiled C functions (cf. interp/Vm.cpp, which
// uses the same scheme for interpreted functions):
//
//   args[0]  the C function pointer;
//   args[1]  its arity;
//   args[2]  the index of the parameter that receives the substitution
//            value (~0 if none);
//   args[3+] the parameter words (the substitution position holds a 0
//            placeholder so memo keys stay stable).
//
// The substitution value itself (read value, block address) has no frame
// slot: the runtime hands it to the invoker in the trampoline's
// substitution register (the ClosureFn Subst parameter).
//
//===----------------------------------------------------------------------===//

#include "translate/RtsShim.h"

#include <cassert>
#include <cstdint>

using namespace ceal;

// The C-side declarations (mirrors the emitted prelude).
extern "C" {
typedef struct ceal_modref_c {
  void *Opaque[4];
} modref_t_c;

Closure *ceal_closure_make_words(void *Fn, int NumArgs,
                                 const intptr_t *Args);
Closure *ceal_closure_with_subst(Closure *C, int Pos);
void closure_run(Closure *C);
void modref_init(modref_t_c *M);
void modref_write(modref_t_c *M, void *V);
Closure *modref_read(modref_t_c *M, Closure *C);
void *allocate(size_t N, Closure *C);
} // extern "C"

namespace {

Runtime *GlobalRT = nullptr;

constexpr Word NoSubst = ~Word(0);

Runtime &rt() {
  assert(GlobalRT && "shim::setRuntime not called");
  return *GlobalRT;
}

/// Calls a compiled C core function with \p N word arguments.
Closure *callCFunction(void *Fn, const Word *W, size_t N) {
  using W1 = Word;
  switch (N) {
  case 0:
    return ((Closure * (*)()) Fn)();
  case 1:
    return ((Closure * (*)(W1)) Fn)(W[0]);
  case 2:
    return ((Closure * (*)(W1, W1)) Fn)(W[0], W[1]);
  case 3:
    return ((Closure * (*)(W1, W1, W1)) Fn)(W[0], W[1], W[2]);
  case 4:
    return ((Closure * (*)(W1, W1, W1, W1)) Fn)(W[0], W[1], W[2], W[3]);
  case 5:
    return ((Closure * (*)(W1, W1, W1, W1, W1)) Fn)(W[0], W[1], W[2], W[3],
                                                    W[4]);
  case 6:
    return ((Closure * (*)(W1, W1, W1, W1, W1, W1)) Fn)(W[0], W[1], W[2],
                                                        W[3], W[4], W[5]);
  case 7:
    return ((Closure * (*)(W1, W1, W1, W1, W1, W1, W1)) Fn)(
        W[0], W[1], W[2], W[3], W[4], W[5], W[6]);
  case 8:
    return ((Closure * (*)(W1, W1, W1, W1, W1, W1, W1, W1)) Fn)(
        W[0], W[1], W[2], W[3], W[4], W[5], W[6], W[7]);
  case 9:
    return ((Closure * (*)(W1, W1, W1, W1, W1, W1, W1, W1, W1)) Fn)(
        W[0], W[1], W[2], W[3], W[4], W[5], W[6], W[7], W[8]);
  case 10:
    return ((Closure * (*)(W1, W1, W1, W1, W1, W1, W1, W1, W1, W1)) Fn)(
        W[0], W[1], W[2], W[3], W[4], W[5], W[6], W[7], W[8], W[9]);
  case 11:
    return (
        (Closure * (*)(W1, W1, W1, W1, W1, W1, W1, W1, W1, W1, W1)) Fn)(
        W[0], W[1], W[2], W[3], W[4], W[5], W[6], W[7], W[8], W[9], W[10]);
  case 12:
    return ((Closure *
             (*)(W1, W1, W1, W1, W1, W1, W1, W1, W1, W1, W1, W1)) Fn)(
        W[0], W[1], W[2], W[3], W[4], W[5], W[6], W[7], W[8], W[9], W[10],
        W[11]);
  default:
    assert(false && "compiled function arity exceeds shim limit");
    return nullptr;
  }
}

/// The trampoline entry for shim closures.
Closure *shimInvoker(Runtime &, Closure *C, Word Subst) {
  const Word *A = C->args();
  void *Fn = fromWord<void *>(A[0]);
  size_t N = static_cast<size_t>(A[1]);
  Word SubstPos = A[2];
  assert(C->numArgs() == N + 3 && "shim closure frame corrupt");
  // Initializers of modifiables are handled in the shim itself: the
  // block address arrives in the substitution register.
  if (Fn == reinterpret_cast<void *>(&modref_init)) {
    new (fromWord<void *>(Subst)) Modref();
    return nullptr;
  }
  Word W[shim::MaxCArity];
  assert(N <= shim::MaxCArity && "compiled function arity exceeds limit");
  for (size_t I = 0; I < N; ++I)
    W[I] = A[3 + I];
  if (SubstPos != NoSubst)
    W[SubstPos] = Subst;
  return callCFunction(Fn, W, N);
}

} // namespace

void shim::setRuntime(Runtime *RT) { GlobalRT = RT; }
Runtime *shim::currentRuntime() { return GlobalRT; }

Closure *shim::makeEntryClosure(Runtime &RT, void *CFn,
                                const std::vector<Word> &Args) {
  std::vector<Word> Frame(3 + Args.size());
  Frame[0] = toWord(CFn);
  Frame[1] = Args.size();
  Frame[2] = NoSubst;
  for (size_t I = 0; I < Args.size(); ++I)
    Frame[3 + I] = Args[I];
  return RT.makeRaw(&shimInvoker, Frame.data(), Frame.size());
}

//===----------------------------------------------------------------------===//
// The C ABI (paper Fig. 11)
//===----------------------------------------------------------------------===//

Closure *ceal_closure_make_words(void *Fn, int NumArgs,
                                 const intptr_t *Args) {
  Runtime &RT = rt();
  std::vector<Word> Frame(3 + NumArgs);
  Frame[0] = toWord(Fn);
  Frame[1] = static_cast<Word>(NumArgs);
  Frame[2] = NoSubst;
  for (int I = 0; I < NumArgs; ++I)
    Frame[3 + I] = static_cast<Word>(Args[I]);
  return RT.makeRaw(&shimInvoker, Frame.data(), Frame.size());
}

Closure *ceal_closure_with_subst(Closure *C, int Pos) {
  assert(Pos >= 0 && static_cast<Word>(Pos) < C->args()[1] &&
         "substitution position out of range");
  C->args()[2] = static_cast<Word>(Pos);
  return C;
}

void closure_run(Closure *C) { rt().call(C); }

void modref_init(modref_t_c *M) {
  // Normally intercepted by shimInvoker (the address is the marker);
  // callable directly for completeness.
  new (M) Modref();
}

void modref_write(modref_t_c *M, void *V) {
  rt().write(reinterpret_cast<Modref *>(M), toWord(V));
}

Closure *modref_read(modref_t_c *M, Closure *C) {
  return rt().read(reinterpret_cast<Modref *>(M), C);
}

void *allocate(size_t N, Closure *C) {
  // Blocks initialized by modref_init are modifiables and participate in
  // the runtime's trace collection accordingly.
  uint8_t Flags = 0;
  if (C->numArgs() >= 1 &&
      fromWord<void *>(C->args()[0]) ==
          reinterpret_cast<void *>(&modref_init))
    Flags = AllocNode::FlagModref;
  return rt().allocate(N, C, Flags);
}
