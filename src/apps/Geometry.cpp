//===- apps/Geometry.cpp - Computational-geometry benchmarks --------------===//
//
// Self-adjusting quickhull and its derived benchmarks. The recursion
// mirrors the classic algorithm: find extreme points, filter the points
// strictly outside each hull edge, recurse on the farthest point. All
// intermediate structure (edges, sub-lists, destination modifiables) is
// memo-keyed by the hull edge's endpoint pair, which is unique per
// recursion node, so an inserted or deleted point re-executes only the
// recursion path whose filtered sets actually change.
//
//===----------------------------------------------------------------------===//

#include "apps/Geometry.h"

#include <algorithm>
#include <cmath>

using namespace ceal;
using namespace ceal::apps;

namespace {

//===----------------------------------------------------------------------===//
// Combine / predicate functions (shared by the self-adjusting cores and
// the conventional baselines so tie-breaking matches exactly).
//===----------------------------------------------------------------------===//

/// A directed hull edge; reduce/filter environments point at one of
/// these. Core-allocated and keyed by the endpoints.
struct Edge {
  const Point *A;
  const Point *B;
};

const Point *pt(Word W) { return fromWord<const Point *>(W); }

/// Deterministic total order used for all geometric tie-breaks.
bool pointBefore(const Point *P, const Point *Q) {
  if (P->X != Q->X)
    return P->X < Q->X;
  if (P->Y != Q->Y)
    return P->Y < Q->Y;
  return P < Q;
}

Word combineMinX(Word AW, Word BW, Word) {
  const Point *A = pt(AW), *B = pt(BW);
  if (!A)
    return BW;
  if (!B)
    return AW;
  return pointBefore(A, B) ? AW : BW;
}

Word combineMaxX(Word AW, Word BW, Word) {
  const Point *A = pt(AW), *B = pt(BW);
  if (!A)
    return BW;
  if (!B)
    return AW;
  return pointBefore(A, B) ? BW : AW;
}

/// Picks the point farther from the environment edge (null = identity).
Word combineFarthest(Word AW, Word BW, Word EnvW) {
  const Point *A = pt(AW), *B = pt(BW);
  if (!A)
    return BW;
  if (!B)
    return AW;
  const Edge *E = fromWord<const Edge *>(EnvW);
  double DA = orient(E->A, E->B, A), DB = orient(E->A, E->B, B);
  if (DA != DB)
    return DA > DB ? AW : BW;
  return pointBefore(A, B) ? AW : BW;
}

bool outsideEdge(Word PW, Word EnvW) {
  const Edge *E = fromWord<const Edge *>(EnvW);
  return orient(E->A, E->B, pt(PW)) > 0.0;
}

Word pairDist2(Word QW, Word EnvP) {
  return toWord(dist2(pt(EnvP), pt(QW)));
}

Word combineMaxD(Word AW, Word BW, Word) {
  return fromWord<double>(AW) >= fromWord<double>(BW) ? AW : BW;
}

Word combineMinD(Word AW, Word BW, Word) {
  return fromWord<double>(AW) <= fromWord<double>(BW) ? AW : BW;
}

//===----------------------------------------------------------------------===//
// Core allocation helpers
//===----------------------------------------------------------------------===//

Closure *edgeInit(Runtime &, void *Block, const Point *A, const Point *B) {
  auto *E = static_cast<Edge *>(Block);
  E->A = A;
  E->B = B;
  return nullptr;
}

Edge *allocEdge(Runtime &RT, const Point *A, const Point *B) {
  return static_cast<Edge *>(RT.alloc<&edgeInit>(sizeof(Edge), A, B));
}

Closure *gcellInit(Runtime &, void *Block, Word Head, Modref *Tail) {
  auto *C = static_cast<Cell *>(Block);
  C->Head = Head;
  C->Id = 0; // Unused here: this app's decisions never hash cell identity.
  C->Tail = Tail;
  return nullptr;
}

Cell *allocGCell(Runtime &RT, Word Head, Modref *Tail) {
  return static_cast<Cell *>(RT.alloc<&gcellInit>(sizeof(Cell), Head, Tail));
}

//===----------------------------------------------------------------------===//
// quickhull recursion
//===----------------------------------------------------------------------===//

Closure *qhEnter(Runtime &RT, Modref *S, const Point *A, const Point *B,
                 Modref *Dst, Cell *Rest);

/// Continues the left sub-problem once the right one's head cell is known.
Closure *qhGotMid(Runtime &RT, Cell *Mid, Modref *SL, const Point *A,
                  const Point *C, Modref *Dst) {
  return qhEnter(RT, SL, A, C, Dst, Mid);
}

/// The farthest point from edge (A, B) has arrived; emit A (leaf case) or
/// split the problem at C.
Closure *qhGotFar(Runtime &RT, const Point *C, Modref *S, const Point *A,
                  const Point *B, Modref *Dst, Cell *Rest) {
  if (!C) {
    Modref *Tail = RT.coreModref(A, B, 35);
    Cell *Out = allocGCell(RT, toWord(A), Tail);
    RT.writeT(Dst, Out);
    RT.writeT(Tail, Rest);
    return nullptr;
  }
  Edge *EAC = allocEdge(RT, A, C);
  Edge *ECB = allocEdge(RT, C, B);
  Modref *SL = RT.coreModref(A, C, 36);
  Modref *SR = RT.coreModref(C, B, 36);
  RT.callFn<&filterCore>(S, SL, &outsideEdge, toWord(EAC));
  RT.callFn<&filterCore>(S, SR, &outsideEdge, toWord(ECB));
  Modref *MidDst = RT.coreModref(C, B, 37);
  RT.callFn<&qhEnter>(SR, C, B, MidDst, Rest);
  return RT.readTail<&qhGotMid>(MidDst, SL, A, C, Dst);
}

/// qh(S, A, B, Dst, Rest): Dst := hull vertices from A (inclusive)
/// counter-clockwise to B (exclusive), then Rest.
Closure *qhEnter(Runtime &RT, Modref *S, const Point *A, const Point *B,
                 Modref *Dst, Cell *Rest) {
  Modref *FarDst = RT.coreModref(A, B, 34);
  Edge *EAB = allocEdge(RT, A, B);
  RT.callFn<&reduceCore>(S, FarDst, &combineFarthest, toWord(EAB),
                         toWord(static_cast<const Point *>(nullptr)));
  return RT.readTail<&qhGotFar>(FarDst, S, A, B, Dst, Rest);
}

Closure *qhGotMax(Runtime &RT, const Point *B, const Point *A, Modref *Src,
                  Modref *Dst) {
  if (!A) { // Empty input.
    RT.writeT(Dst, static_cast<Cell *>(nullptr));
    return nullptr;
  }
  if (A == B) { // Single-point (or all-equal) input.
    Modref *Tail = RT.coreModref(A, B, 38);
    Cell *Out = allocGCell(RT, toWord(A), Tail);
    RT.writeT(Tail, static_cast<Cell *>(nullptr));
    RT.writeT(Dst, Out);
    return nullptr;
  }
  Edge *EAB = allocEdge(RT, A, B);
  Edge *EBA = allocEdge(RT, B, A);
  Modref *Above = RT.coreModref(A, B, 32);
  Modref *Below = RT.coreModref(B, A, 32);
  RT.callFn<&filterCore>(Src, Above, &outsideEdge, toWord(EAB));
  RT.callFn<&filterCore>(Src, Below, &outsideEdge, toWord(EBA));
  Modref *MidDst = RT.coreModref(B, A, 39);
  RT.callFn<&qhEnter>(Below, B, A, MidDst, static_cast<Cell *>(nullptr));
  return RT.readTail<&qhGotMid>(MidDst, Above, A, B, Dst);
}

Closure *qhGotMin(Runtime &RT, const Point *A, Modref *MaxDst, Modref *Src,
                  Modref *Dst) {
  return RT.readTail<&qhGotMax>(MaxDst, A, Src, Dst);
}

//===----------------------------------------------------------------------===//
// Per-element reductions over another list (diameter / distance)
//===----------------------------------------------------------------------===//

Closure *perElemGot(Runtime &RT, Cell *C, Modref *Dst, Modref *Other,
                    MapFn Pair, CombineFn Comb, Word Id);

Closure *perElemGotVal(Runtime &RT, Word V, Cell *C, Modref *Dst,
                       Modref *Other, MapFn Pair, CombineFn Comb, Word Id) {
  Modref *OutTail = RT.coreModref(C, 43);
  Cell *Out = allocGCell(RT, V, OutTail);
  RT.writeT(Dst, Out);
  return RT.readTail<&perElemGot>(C->Tail, OutTail, Other, Pair, Comb, Id);
}

/// For each element p of the walked list: value(p) = reduce(Comb,
/// map(Pair(., p), Other)). Used with Pair = squared distance.
Closure *perElemGot(Runtime &RT, Cell *C, Modref *Dst, Modref *Other,
                    MapFn Pair, CombineFn Comb, Word Id) {
  if (!C) {
    RT.writeT(Dst, static_cast<Cell *>(nullptr));
    return nullptr;
  }
  Modref *Mapped = RT.coreModref(C, 44);
  RT.callFn<&mapCore>(Other, Mapped, Pair, C->Head);
  Modref *Reduced = RT.coreModref(C, 42);
  RT.callFn<&reduceCore>(Mapped, Reduced, Comb, Word(0), Id);
  return RT.readTail<&perElemGotVal>(Reduced, C, Dst, Other, Pair, Comb, Id);
}

Closure *perElemEnter(Runtime &RT, Modref *L, Modref *Dst, Modref *Other,
                      MapFn Pair, CombineFn Comb, Word Id) {
  return RT.readTail<&perElemGot>(L, Dst, Other, Pair, Comb, Id);
}

} // namespace

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

Closure *apps::quickhullCore(Runtime &RT, Modref *Src, Modref *Dst) {
  Modref *MinDst = RT.coreModref(Dst, 30);
  Modref *MaxDst = RT.coreModref(Dst, 31);
  Word NullPt = toWord(static_cast<const Point *>(nullptr));
  RT.callFn<&reduceCore>(Src, MinDst, &combineMinX, Word(0), NullPt);
  RT.callFn<&reduceCore>(Src, MaxDst, &combineMaxX, Word(0), NullPt);
  return RT.readTail<&qhGotMin>(MinDst, MaxDst, Src, Dst);
}

Closure *apps::diameterCore(Runtime &RT, Modref *Src, Modref *Dst) {
  Modref *Hull = RT.coreModref(Dst, 40);
  RT.callFn<&quickhullCore>(Src, Hull);
  Modref *PerPt = RT.coreModref(Dst, 41);
  RT.callFn<&perElemEnter>(Hull, PerPt, Hull, &pairDist2, &combineMaxD,
                           toWord(0.0));
  return reduceCore(RT, PerPt, Dst, &combineMaxD, Word(0), toWord(0.0));
}

Closure *apps::distanceCore(Runtime &RT, Modref *SrcA, Modref *SrcB,
                            Modref *Dst) {
  Modref *HullA = RT.coreModref(Dst, 45);
  Modref *HullB = RT.coreModref(Dst, 46);
  RT.callFn<&quickhullCore>(SrcA, HullA);
  RT.callFn<&quickhullCore>(SrcB, HullB);
  Modref *PerPt = RT.coreModref(Dst, 47);
  double Inf = HUGE_VAL;
  RT.callFn<&perElemEnter>(HullA, PerPt, HullB, &pairDist2, &combineMinD,
                           toWord(Inf));
  return reduceCore(RT, PerPt, Dst, &combineMinD, Word(0), toWord(Inf));
}

//===----------------------------------------------------------------------===//
// Builders
//===----------------------------------------------------------------------===//

std::vector<Point *> apps::randomPoints(Runtime &RT, Rng &R, size_t N,
                                        double ShiftX) {
  std::vector<Point *> Pts;
  Pts.reserve(N);
  for (size_t I = 0; I < N; ++I) {
    auto *P = static_cast<Point *>(RT.metaAlloc(sizeof(Point)));
    P->X = R.unit() + ShiftX;
    P->Y = R.unit();
    Pts.push_back(P);
  }
  return Pts;
}

ListHandle apps::buildPointList(Runtime &RT,
                                const std::vector<Point *> &Points) {
  std::vector<Word> Words;
  Words.reserve(Points.size());
  for (Point *P : Points)
    Words.push_back(toWord(P));
  return buildList(RT, Words);
}

//===----------------------------------------------------------------------===//
// Conventional baselines (same combine functions, plain recursion)
//===----------------------------------------------------------------------===//

namespace {

void qhConvRec(const std::vector<const Point *> &S, const Point *A,
               const Point *B, std::vector<const Point *> &Out) {
  Edge E{A, B};
  Word Far = toWord(static_cast<const Point *>(nullptr));
  for (const Point *P : S)
    Far = combineFarthest(Far, toWord(P), toWord(&E));
  const Point *C = pt(Far);
  if (!C) {
    Out.push_back(A);
    return;
  }
  std::vector<const Point *> SL, SR;
  Edge EAC{A, C}, ECB{C, B};
  for (const Point *P : S) {
    if (outsideEdge(toWord(P), toWord(&EAC)))
      SL.push_back(P);
    if (outsideEdge(toWord(P), toWord(&ECB)))
      SR.push_back(P);
  }
  qhConvRec(SL, A, C, Out);
  qhConvRec(SR, C, B, Out);
}

} // namespace

std::vector<const Point *>
apps::conv::quickhull(const std::vector<const Point *> &Pts) {
  std::vector<const Point *> Out;
  if (Pts.empty())
    return Out;
  Word MinW = toWord(static_cast<const Point *>(nullptr)), MaxW = MinW;
  for (const Point *P : Pts) {
    MinW = combineMinX(MinW, toWord(P), 0);
    MaxW = combineMaxX(MaxW, toWord(P), 0);
  }
  const Point *A = pt(MinW), *B = pt(MaxW);
  if (A == B) {
    Out.push_back(A);
    return Out;
  }
  Edge EAB{A, B}, EBA{B, A};
  std::vector<const Point *> Above, Below;
  for (const Point *P : Pts) {
    if (outsideEdge(toWord(P), toWord(&EAB)))
      Above.push_back(P);
    if (outsideEdge(toWord(P), toWord(&EBA)))
      Below.push_back(P);
  }
  qhConvRec(Above, A, B, Out);
  qhConvRec(Below, B, A, Out);
  return Out;
}

double apps::conv::diameter2(const std::vector<const Point *> &Pts) {
  std::vector<const Point *> Hull = quickhull(Pts);
  double Best = 0.0;
  for (const Point *P : Hull)
    for (const Point *Q : Hull)
      Best = std::max(Best, dist2(P, Q));
  return Best;
}

double apps::conv::distance2(const std::vector<const Point *> &A,
                             const std::vector<const Point *> &B) {
  std::vector<const Point *> HA = quickhull(A), HB = quickhull(B);
  double Best = HUGE_VAL;
  for (const Point *P : HA)
    for (const Point *Q : HB)
      Best = std::min(Best, dist2(P, Q));
  return Best;
}
