//===- apps/TreeContraction.cpp - Miller-Reif tree contraction ------------===//
//
// The self-adjusting contraction pass. Per round, the pass walks the
// round's live list; for each live node it reads its own record and the
// records of its parent and children (a chain of up to four traced
// reads), applies the rake/compress rule, writes the node's next-round
// record, and emits survivors onto the next round's live list. The
// driver then reduces an "any survivor non-isolated?" flag over the
// emitted list and either recurses into the next round or finishes.
//
//===----------------------------------------------------------------------===//

#include "apps/TreeContraction.h"

#include <cassert>

using namespace ceal;
using namespace ceal::apps;

namespace {

//===----------------------------------------------------------------------===//
// Core allocation helpers
//===----------------------------------------------------------------------===//

Closure *recInit(Runtime &, void *Block, Word /*IdKey*/, Word /*RoundKey*/,
                 Word P, Word C0, Word C1) {
  auto *R = static_cast<TcRec *>(Block);
  R->P = P;
  R->C0 = C0;
  R->C1 = C1;
  return nullptr;
}

TcRec *allocRec(Runtime &RT, Word Id, Word Round, Word P, Word C0, Word C1) {
  return static_cast<TcRec *>(
      RT.alloc<&recInit>(sizeof(TcRec), Id, Round, P, C0, C1));
}

Closure *tcCellInit(Runtime &, void *Block, Word Head, Modref *Tail) {
  auto *C = static_cast<Cell *>(Block);
  C->Head = Head;
  C->Id = 0; // Unused here: this app's decisions never hash cell identity.
  C->Tail = Tail;
  return nullptr;
}

Cell *allocTcCell(Runtime &RT, Word Head, Modref *Tail) {
  return static_cast<Cell *>(
      RT.alloc<&tcCellInit>(sizeof(Cell), Head, Tail));
}

//===----------------------------------------------------------------------===//
// The per-node decision, once all neighbor records have arrived
//===----------------------------------------------------------------------===//

Closure *tcPassGot(Runtime &RT, Cell *C, Modref *Table, Modref *NextTable,
                   Modref *NextLive, Word Round);

Closure *tcGotC1(Runtime &RT, TcRec *RC1, TcRec *RC0, TcRec *RP, TcRec *RV,
                 Cell *C, Modref *Table, Modref *NextTable, Modref *NextLive,
                 Word Round) {
  Word V = C->Head >> 1;
  if (tcRakes(RV, V, Round, RP) || tcCompresses(RV, V, Round))
    // The node dies this round; its next-round slot stays unwritten and
    // survivors never link to it.
    return RT.readTail<&tcPassGot>(C->Tail, Table, NextTable, NextLive,
                                   Round);

  // New parent: hop over a compressing parent.
  Word NewP = RV->P;
  if (RP && tcCompresses(RP, RV->P, Round))
    NewP = RP->P;
  // New children: raked children disappear; compressing children are
  // replaced by their only child.
  auto NewChild = [&](Word Child, const TcRec *RC) -> Word {
    if (Child == TcNone)
      return TcNone;
    if (tcRakes(RC, Child, Round, RV))
      return TcNone;
    if (tcCompresses(RC, Child, Round))
      return tcOnlyChild(RC);
    return Child;
  };
  Word NewC0 = NewChild(RV->C0, RC0);
  Word NewC1 = NewChild(RV->C1, RC1);

  TcRec *NewRec = allocRec(RT, V, Round + 1, NewP, NewC0, NewC1);
  RT.writeT(&NextTable[V], NewRec);

  bool NonIsolated =
      NewP != TcNone || NewC0 != TcNone || NewC1 != TcNone;
  Modref *OutTail = RT.coreModref(V, Round, 63);
  Cell *Out = allocTcCell(RT, (V << 1) | Word(NonIsolated), OutTail);
  RT.writeT(NextLive, Out);
  return RT.readTail<&tcPassGot>(C->Tail, Table, NextTable, OutTail, Round);
}

Closure *tcGotC0(Runtime &RT, TcRec *RC0, TcRec *RP, TcRec *RV, Cell *C,
                 Modref *Table, Modref *NextTable, Modref *NextLive,
                 Word Round) {
  if (RV->C1 != TcNone)
    return RT.readTail<&tcGotC1>(&Table[RV->C1], RC0, RP, RV, C, Table,
                                 NextTable, NextLive, Round);
  return tcGotC1(RT, nullptr, RC0, RP, RV, C, Table, NextTable, NextLive,
                 Round);
}

Closure *tcGotP(Runtime &RT, TcRec *RP, TcRec *RV, Cell *C, Modref *Table,
                Modref *NextTable, Modref *NextLive, Word Round) {
  if (RV->C0 != TcNone)
    return RT.readTail<&tcGotC0>(&Table[RV->C0], RP, RV, C, Table, NextTable,
                                 NextLive, Round);
  return tcGotC0(RT, nullptr, RP, RV, C, Table, NextTable, NextLive, Round);
}

Closure *tcGotSelf(Runtime &RT, TcRec *RV, Cell *C, Modref *Table,
                   Modref *NextTable, Modref *NextLive, Word Round) {
  assert(RV && "live node with no state record");
  if (RV->P != TcNone)
    return RT.readTail<&tcGotP>(&Table[RV->P], RV, C, Table, NextTable,
                                NextLive, Round);
  return tcGotP(RT, nullptr, RV, C, Table, NextTable, NextLive, Round);
}

Closure *tcPassGot(Runtime &RT, Cell *C, Modref *Table, Modref *NextTable,
                   Modref *NextLive, Word Round) {
  if (!C) {
    RT.writeT(NextLive, static_cast<Cell *>(nullptr));
    return nullptr;
  }
  Word V = C->Head >> 1;
  return RT.readTail<&tcGotSelf>(&Table[V], C, Table, NextTable, NextLive,
                                 Round);
}

Closure *tcPassEnter(Runtime &RT, Modref *LiveHead, Modref *Table,
                     Modref *NextTable, Modref *NextLive, Word Round) {
  return RT.readTail<&tcPassGot>(LiveHead, Table, NextTable, NextLive, Round);
}

//===----------------------------------------------------------------------===//
// Round driver
//===----------------------------------------------------------------------===//

Word combineOrBit(Word A, Word B, Word) { return (A | B) & 1; }
Word mapToOne(Word, Word) { return 1; }
Word combineSumW(Word A, Word B, Word) { return A + B; }

Closure *tcRounds(Runtime &RT, Modref *LiveHead, Modref *Table, Word N,
                  Modref *Dst, Word Round);

Closure *tcGotCount(Runtime &RT, Word Count, Modref *Dst, Word Round) {
  RT.write(Dst, (Round << 32) | Count);
  return nullptr;
}

Closure *tcGotFlag(Runtime &RT, Word Flag, Modref *NextLive,
                   Modref *NextTable, Word N, Modref *Dst, Word Round) {
  if (Flag & 1)
    return tcRounds(RT, NextLive, NextTable, N, Dst, Round);
  // Contraction finished: every survivor is an isolated component root.
  Modref *Ones = RT.coreModref(Round, 64);
  RT.callFn<&mapCore>(NextLive, Ones, &mapToOne, Word(0));
  Modref *CountDst = RT.coreModref(Round, 65);
  RT.callFn<&reduceCore>(Ones, CountDst, &combineSumW, Word(0), Word(0));
  return RT.readTail<&tcGotCount>(CountDst, Dst, Round);
}

Closure *tcRounds(Runtime &RT, Modref *LiveHead, Modref *Table, Word N,
                  Modref *Dst, Word Round) {
  Modref *NextTable = RT.coreModrefArray(N, Round + 1, 60);
  Modref *NextLive = RT.coreModref(Round + 1, 61);
  RT.callFn<&tcPassEnter>(LiveHead, Table, NextTable, NextLive, Round);
  Modref *FlagDst = RT.coreModref(Round + 1, 62);
  RT.callFn<&reduceCore>(NextLive, FlagDst, &combineOrBit, Word(0), Word(0));
  return RT.readTail<&tcGotFlag>(FlagDst, NextLive, NextTable, N, Dst,
                                 Round + 1);
}

} // namespace

Closure *apps::treeContractCore(Runtime &RT, Modref *LiveHead, Modref *Table,
                                Word N, Modref *Dst) {
  return tcRounds(RT, LiveHead, Table, N, Dst, Word(0));
}

//===----------------------------------------------------------------------===//
// Mutator side
//===----------------------------------------------------------------------===//

std::vector<std::pair<Word, Word>> TcForest::edges() const {
  std::vector<std::pair<Word, Word>> Result;
  for (Word V = 0; V < N; ++V)
    if (Adj[V].P != TcNone)
      Result.push_back({Adj[V].P, V});
  return Result;
}

/// Publishes node \p V's current adjacency as a fresh meta record.
static void tcPublish(Runtime &RT, TcForest &F, Word V) {
  auto *R = static_cast<TcRec *>(RT.metaAlloc(sizeof(TcRec)));
  *R = F.Adj[V];
  RT.modifyT(&F.Table0[V], R);
}

TcForest apps::buildRandomTree(Runtime &RT, Rng &R, size_t N) {
  assert(N > 0 && "tree needs at least one node");
  TcForest F;
  F.N = N;
  F.Adj.assign(N, TcRec{TcNone, TcNone, TcNone});
  // Attach each node to a random earlier node with a free child slot.
  std::vector<Word> Open{0};
  for (Word V = 1; V < N; ++V) {
    size_t Pick = R.below(Open.size());
    Word P = Open[Pick];
    F.Adj[V].P = P;
    if (F.Adj[P].C0 == TcNone) {
      F.Adj[P].C0 = V;
    } else {
      F.Adj[P].C1 = V;
      Open[Pick] = Open.back();
      Open.pop_back();
    }
    Open.push_back(V);
  }
  F.Table0 = static_cast<Modref *>(RT.metaAlloc(N * sizeof(Modref)));
  for (size_t I = 0; I < N; ++I)
    new (F.Table0 + I) Modref();
  for (Word V = 0; V < N; ++V)
    tcPublish(RT, F, V);
  std::vector<Word> Heads;
  Heads.reserve(N);
  for (Word V = 0; V < N; ++V)
    Heads.push_back((V << 1) | 1);
  F.Live = buildList(RT, Heads);
  return F;
}

void apps::tcDeleteEdge(Runtime &RT, TcForest &F, Word Parent, Word Child) {
  assert(F.Adj[Child].P == Parent && "edge does not exist");
  F.Adj[Child].P = TcNone;
  if (F.Adj[Parent].C0 == Child)
    F.Adj[Parent].C0 = TcNone;
  else {
    assert(F.Adj[Parent].C1 == Child && "parent does not list child");
    F.Adj[Parent].C1 = TcNone;
  }
  tcPublish(RT, F, Parent);
  tcPublish(RT, F, Child);
}

void apps::tcInsertEdge(Runtime &RT, TcForest &F, Word Parent, Word Child) {
  assert(F.Adj[Child].P == TcNone && "child already attached");
  F.Adj[Child].P = Parent;
  if (F.Adj[Parent].C0 == TcNone)
    F.Adj[Parent].C0 = Child;
  else {
    assert(F.Adj[Parent].C1 == TcNone && "parent has no free slot");
    F.Adj[Parent].C1 = Child;
  }
  tcPublish(RT, F, Parent);
  tcPublish(RT, F, Child);
}

//===----------------------------------------------------------------------===//
// Conventional baseline: the same synchronous rule on plain arrays
//===----------------------------------------------------------------------===//

Word apps::tcContractConventional(const std::vector<TcRec> &Adj) {
  size_t N = Adj.size();
  std::vector<TcRec> Cur = Adj;
  std::vector<bool> Alive(N, true);
  Word Round = 0;
  for (;;) {
    std::vector<TcRec> Next(N, TcRec{TcNone, TcNone, TcNone});
    std::vector<bool> NextAlive(N, false);
    bool AnyNonIsolated = false;
    Word Survivors = 0;
    for (Word V = 0; V < N; ++V) {
      if (!Alive[V])
        continue;
      const TcRec *RV = &Cur[V];
      const TcRec *RP = RV->P != TcNone ? &Cur[RV->P] : nullptr;
      if (tcRakes(RV, V, Round, RP) || tcCompresses(RV, V, Round))
        continue;
      Word NewP = RV->P;
      if (RP && tcCompresses(RP, RV->P, Round))
        NewP = RP->P;
      auto NewChild = [&](Word Child) -> Word {
        if (Child == TcNone)
          return TcNone;
        const TcRec *RC = &Cur[Child];
        if (tcRakes(RC, Child, Round, RV))
          return TcNone;
        if (tcCompresses(RC, Child, Round))
          return tcOnlyChild(RC);
        return Child;
      };
      Next[V] = TcRec{NewP, NewChild(RV->C0), NewChild(RV->C1)};
      NextAlive[V] = true;
      ++Survivors;
      if (Next[V].P != TcNone || Next[V].C0 != TcNone ||
          Next[V].C1 != TcNone)
        AnyNonIsolated = true;
    }
    Cur = std::move(Next);
    Alive = std::move(NextAlive);
    ++Round;
    if (!AnyNonIsolated)
      return (Round << 32) | Survivors;
    assert(Round < 10000 && "contraction failed to converge");
  }
}
