//===- apps/ListConv.cpp - Conventional list baselines --------------------===//

#include "apps/ListConv.h"

#include "support/Random.h"

using namespace ceal;
using namespace ceal::apps;
using namespace ceal::apps::conv;

static PCell *newCell(Arena &A, Word Head, PCell *Next) {
  auto *C = static_cast<PCell *>(A.allocate(sizeof(PCell)));
  C->Head = Head;
  C->Next = Next;
  return C;
}

PCell *conv::buildList(Arena &A, const std::vector<Word> &Values) {
  PCell *Head = nullptr;
  PCell **Link = &Head;
  for (Word V : Values) {
    *Link = newCell(A, V, nullptr);
    Link = &(*Link)->Next;
  }
  return Head;
}

std::vector<Word> conv::toVector(const PCell *L) {
  std::vector<Word> Result;
  for (; L; L = L->Next)
    Result.push_back(L->Head);
  return Result;
}

PCell *conv::mapList(Arena &A, const PCell *L, MapFn Fn, Word Env) {
  PCell *Head = nullptr;
  PCell **Link = &Head;
  for (; L; L = L->Next) {
    *Link = newCell(A, Fn(L->Head, Env), nullptr);
    Link = &(*Link)->Next;
  }
  return Head;
}

PCell *conv::filterList(Arena &A, const PCell *L, PredFn Pred, Word Env) {
  PCell *Head = nullptr;
  PCell **Link = &Head;
  for (; L; L = L->Next) {
    if (!Pred(L->Head, Env))
      continue;
    *Link = newCell(A, L->Head, nullptr);
    Link = &(*Link)->Next;
  }
  return Head;
}

PCell *conv::reverseList(Arena &A, const PCell *L) {
  PCell *Out = nullptr;
  for (; L; L = L->Next)
    Out = newCell(A, L->Head, Out);
  return Out;
}

Word conv::reduceList(const PCell *L, CombineFn Fn, Word Env, Word Id) {
  if (!L)
    return Id;
  Word Acc = L->Head;
  for (L = L->Next; L; L = L->Next)
    Acc = Fn(Acc, L->Head, Env);
  return Acc;
}

Word conv::reduceRoundsList(Arena &A, const PCell *L, CombineFn Fn,
                            Word Env, Word Id) {
  if (!L)
    return Id;
  Word Round = 0;
  while (L->Next) {
    // Combine maximal runs; a cell starts a new run iff its round coin
    // is heads (mirrors the self-adjusting rounds).
    PCell *Out = nullptr;
    PCell **Link = &Out;
    const PCell *C = L;
    while (C) {
      Word Acc = C->Head;
      const PCell *N = C->Next;
      while (N && !(hashPair(reinterpret_cast<uintptr_t>(N), Round) & 1)) {
        Acc = Fn(Acc, N->Head, Env);
        N = N->Next;
      }
      auto *Cell = static_cast<PCell *>(A.allocate(sizeof(PCell)));
      Cell->Head = Acc;
      Cell->Next = nullptr;
      *Link = Cell;
      Link = &Cell->Next;
      C = N;
    }
    L = Out;
    ++Round;
  }
  return L->Head;
}

static PCell *qsortRec(Arena &A, const PCell *L, PCell *Rest, CmpFn Cmp) {
  if (!L)
    return Rest;
  Word Pivot = L->Head;
  PCell *Less = nullptr, *Geq = nullptr;
  for (const PCell *C = L->Next; C; C = C->Next) {
    if (Cmp(C->Head, Pivot) < 0)
      Less = newCell(A, C->Head, Less);
    else
      Geq = newCell(A, C->Head, Geq);
  }
  PCell *PivotCell = newCell(A, Pivot, qsortRec(A, Geq, Rest, Cmp));
  return qsortRec(A, Less, PivotCell, Cmp);
}

PCell *conv::quicksortList(Arena &A, const PCell *L, CmpFn Cmp) {
  return qsortRec(A, L, nullptr, Cmp);
}

static PCell *mergeLists(PCell *X, PCell *Y, CmpFn Cmp) {
  PCell Dummy{0, nullptr};
  PCell *Tail = &Dummy;
  while (X && Y) {
    if (Cmp(X->Head, Y->Head) <= 0) {
      Tail->Next = X;
      X = X->Next;
    } else {
      Tail->Next = Y;
      Y = Y->Next;
    }
    Tail = Tail->Next;
  }
  Tail->Next = X ? X : Y;
  return Dummy.Next;
}

static PCell *msortRec(PCell *L, CmpFn Cmp) {
  if (!L || !L->Next)
    return L;
  // Split by alternation (conventional code need not be stable under
  // incremental edits).
  PCell *A = nullptr, *B = nullptr;
  bool Side = false;
  while (L) {
    PCell *Next = L->Next;
    if (Side) {
      L->Next = B;
      B = L;
    } else {
      L->Next = A;
      A = L;
    }
    Side = !Side;
    L = Next;
  }
  return mergeLists(msortRec(A, Cmp), msortRec(B, Cmp), Cmp);
}

PCell *conv::mergesortList(Arena &A, PCell *L, CmpFn Cmp) {
  // Sorts a fresh copy so the input remains usable.
  return msortRec(buildList(A, toVector(L)), Cmp);
}
