//===- apps/ListApps.cpp - Self-adjusting list primitives -----------------===//
//
// Core programs in the compiled closure style (paper Sec. 6.2): every
// read returns its continuation to the trampoline; results flow through
// destination-passing style (Sec. 10, "Support for Return Values");
// output structure is allocated through memo-keyed allocations so change
// propagation recovers identity and splices (Sec. 1, Sec. 6.1).
//
// Key choices, mirroring the CEAL benchmark suite:
//  * Output cells are keyed by the input cell that produced them, so a
//    deletion/insertion re-executes O(1) reads before memo-matching the
//    unchanged suffix.
//  * Reductions contract the list in randomized runs (coin = hash of cell
//    identity and round), giving expected O(log n) rounds and expected
//    O(1) affected runs per round per edit.
//  * Sorts use value-carrying cells and per-recursion-node keys (pivot
//    cell / split level) so that each recursive instance has a disjoint
//    key space.
//
//===----------------------------------------------------------------------===//

#include "apps/ListApps.h"

#include "support/Random.h"

#include <cassert>

using namespace ceal;
using namespace ceal::apps;

namespace {

//===----------------------------------------------------------------------===//
// Shared cell initializer
//===----------------------------------------------------------------------===//

Closure *cellInit(Runtime &, void *Block, Word Head, Word Id, Modref *Tail) {
  auto *C = static_cast<Cell *>(Block);
  C->Head = Head;
  C->Id = Id;
  C->Tail = Tail;
  return nullptr;
}

/// \p Id is the new cell's lineage identity (see Cell::Id): derived from
/// the source cell's Id and the call-site tag, never from placement. It
/// rides in the initializer arguments, so it is part of the memo key —
/// harmless, since it is itself a function of the other key components.
Cell *allocCell(Runtime &RT, Word Head, Word Id, Modref *Tail) {
  return static_cast<Cell *>(
      RT.alloc<&cellInit>(sizeof(Cell), Head, Id, Tail));
}

//===----------------------------------------------------------------------===//
// map
//===----------------------------------------------------------------------===//

Closure *mapGot(Runtime &RT, Cell *C, Modref *Dst, MapFn Fn, Word Env,
                Word Tag) {
  if (!C) {
    RT.writeT(Dst, static_cast<Cell *>(nullptr));
    return nullptr;
  }
  Modref *OutTail = RT.coreModref(C, Tag, 22);
  Cell *Out = allocCell(RT, Fn(C->Head, Env), hashPair(C->Id, 22), OutTail);
  RT.writeT(Dst, Out);
  return RT.readTail<&mapGot>(C->Tail, OutTail, Fn, Env, Tag);
}

//===----------------------------------------------------------------------===//
// filter
//===----------------------------------------------------------------------===//

Closure *filterGot(Runtime &RT, Cell *C, Modref *Dst, PredFn Pred, Word Env,
                   Word Tag) {
  if (!C) {
    RT.writeT(Dst, static_cast<Cell *>(nullptr));
    return nullptr;
  }
  if (Pred(C->Head, Env)) {
    Modref *OutTail = RT.coreModref(C, Tag, 21);
    Cell *Out = allocCell(RT, C->Head, hashPair(C->Id, 21), OutTail);
    RT.writeT(Dst, Out);
    return RT.readTail<&filterGot>(C->Tail, OutTail, Pred, Env, Tag);
  }
  return RT.readTail<&filterGot>(C->Tail, Dst, Pred, Env, Tag);
}

//===----------------------------------------------------------------------===//
// reverse
//===----------------------------------------------------------------------===//

Closure *reverseGot(Runtime &RT, Cell *C, Cell *Acc, Modref *Dst) {
  if (!C) {
    RT.writeT(Dst, Acc);
    return nullptr;
  }
  Modref *OutTail = RT.coreModref(C, 20);
  Cell *Out = allocCell(RT, C->Head, hashPair(C->Id, 20), OutTail);
  RT.writeT(OutTail, Acc);
  return RT.readTail<&reverseGot>(C->Tail, Out, Dst);
}

//===----------------------------------------------------------------------===//
// reduce (randomized run contraction)
//===----------------------------------------------------------------------===//

/// Round cells carry their value in a modifiable so that value changes
/// flow through writes (and equality-cut when a combine is unaffected).
struct VCell {
  Word Id;      ///< Lineage identity for contraction coins (see Cell::Id).
  Modref *Val;  ///< Holds a Word.
  Modref *Tail; ///< Holds VCell *.
};

Closure *vcellInit(Runtime &, void *Block, Word Id, Modref *Val,
                   Modref *Tail) {
  auto *C = static_cast<VCell *>(Block);
  C->Id = Id;
  C->Val = Val;
  C->Tail = Tail;
  return nullptr;
}

VCell *allocVCell(Runtime &RT, Word Id, Modref *Val, Modref *Tail) {
  return static_cast<VCell *>(
      RT.alloc<&vcellInit>(sizeof(VCell), Id, Val, Tail));
}

/// True if \p N starts a new run in \p Round. A pure function of the
/// cell's lineage identity, so decisions are reproducible across
/// re-executions, across runtimes, and across propagation modes (a cell
/// placed in a parallel worker's shard chunk flips the same coin the
/// sequentially placed cell would; region offsets would not be).
bool runBoundary(const VCell *N, Word Round) {
  return hashPair(N->Id, Round) & 1;
}

/// Converts the input list into a VCell list (values behind modifiables).
Closure *convGot(Runtime &RT, Cell *C, Modref *VDst, Word Tag) {
  if (!C) {
    RT.writeT(VDst, static_cast<VCell *>(nullptr));
    return nullptr;
  }
  Modref *Val = RT.coreModref(C, Tag, 10);
  Modref *Tail = RT.coreModref(C, Tag, 11);
  VCell *VC = allocVCell(RT, hashPair(C->Id, 40), Val, Tail);
  RT.write(Val, C->Head);
  RT.writeT(VDst, VC);
  return RT.readTail<&convGot>(C->Tail, Tail, Tag);
}

Closure *convEnter(Runtime &RT, Modref *Src, Modref *VDst, Word Tag) {
  return RT.readTail<&convGot>(Src, VDst, Tag);
}

Closure *runStart(Runtime &RT, VCell *F, Modref *Dst, CombineFn Fn, Word Env,
                  Word Round);
Closure *runJoin(Runtime &RT, Word V, Word Acc, VCell *N, VCell *F,
                 Modref *Dst, CombineFn Fn, Word Env, Word Round);

Closure *runNext(Runtime &RT, VCell *N, Word Acc, VCell *F, Modref *Dst,
                 CombineFn Fn, Word Env, Word Round) {
  if (!N || runBoundary(N, Round)) {
    // The run that started at F ends here; emit its combined value. The
    // round cell inherits F's lineage, salted with the round so coins of
    // successive rounds stay independent.
    Modref *OVal = RT.coreModref(F, Round, 13);
    Modref *OTail = RT.coreModref(F, Round, 14);
    VCell *Out = allocVCell(RT, hashPair(F->Id, Round * 2 + 0x9d1), OVal,
                            OTail);
    RT.write(OVal, Acc);
    RT.writeT(Dst, Out);
    if (!N) {
      RT.writeT(OTail, static_cast<VCell *>(nullptr));
      return nullptr;
    }
    return runStart(RT, N, OTail, Fn, Env, Round);
  }
  return RT.readTail<&runJoin>(N->Val, Acc, N, F, Dst, Fn, Env, Round);
}

/// Folds \p V into the running accumulator... the value of N has arrived.
Closure *runJoin(Runtime &RT, Word V, Word Acc, VCell *N, VCell *F,
                 Modref *Dst, CombineFn Fn, Word Env, Word Round) {
  return RT.readTail<&runNext>(N->Tail, Fn(Acc, V, Env), F, Dst, Fn, Env,
                               Round);
}

Closure *runFirst(Runtime &RT, Word V, VCell *F, Modref *Dst, CombineFn Fn,
                  Word Env, Word Round) {
  return RT.readTail<&runNext>(F->Tail, V, F, Dst, Fn, Env, Round);
}

Closure *runStart(Runtime &RT, VCell *F, Modref *Dst, CombineFn Fn, Word Env,
                  Word Round) {
  return RT.readTail<&runFirst>(F->Val, F, Dst, Fn, Env, Round);
}

Closure *writeThrough(Runtime &RT, Word V, Modref *Dst) {
  RT.write(Dst, V);
  return nullptr;
}

Closure *roundEnter(Runtime &RT, VCell *F, Modref *Dst, CombineFn Fn,
                    Word Env, Word Round) {
  return runStart(RT, F, Dst, Fn, Env, Round);
}

Closure *rrGot(Runtime &RT, VCell *C, Modref *Dst, CombineFn Fn, Word Env,
               Word Id, Word Round);

Closure *rrGot2(Runtime &RT, VCell *T, VCell *C, Modref *Dst, CombineFn Fn,
                Word Env, Word Id, Word Round) {
  if (!T) // Singleton: the reduction is this cell's value.
    return RT.readTail<&writeThrough>(C->Val, Dst);
  Modref *OutHead = RT.coreModref(C, Round, 12);
  RT.callFn<&roundEnter>(C, OutHead, Fn, Env, Round);
  return RT.readTail<&rrGot>(OutHead, Dst, Fn, Env, Id, Round + 1);
}

Closure *rrGot(Runtime &RT, VCell *C, Modref *Dst, CombineFn Fn, Word Env,
               Word Id, Word Round) {
  if (!C) {
    RT.write(Dst, Id);
    return nullptr;
  }
  return RT.readTail<&rrGot2>(C->Tail, C, Dst, Fn, Env, Id, Round);
}

//===----------------------------------------------------------------------===//
// quicksort
//===----------------------------------------------------------------------===//

/// One-pass partition around \p Pivot into destinations \p DL / \p DG.
/// Output cells are keyed by (input cell, pivot cell): the same input
/// cell is partitioned once per recursion node.
Closure *partGot(Runtime &RT, Cell *C, Modref *DL, Modref *DG, Word Pivot,
                 Cell *PivotCell, CmpFn Cmp) {
  if (!C) {
    RT.writeT(DL, static_cast<Cell *>(nullptr));
    RT.writeT(DG, static_cast<Cell *>(nullptr));
    return nullptr;
  }
  if (Cmp(C->Head, Pivot) < 0) {
    Modref *OutTail = RT.coreModref(C, PivotCell, 0);
    Cell *Out = allocCell(RT, C->Head, hashPair(C->Id, 30), OutTail);
    RT.writeT(DL, Out);
    return RT.readTail<&partGot>(C->Tail, OutTail, DG, Pivot, PivotCell, Cmp);
  }
  Modref *OutTail = RT.coreModref(C, PivotCell, 1);
  Cell *Out = allocCell(RT, C->Head, hashPair(C->Id, 31), OutTail);
  RT.writeT(DG, Out);
  return RT.readTail<&partGot>(C->Tail, DL, OutTail, Pivot, PivotCell, Cmp);
}

Closure *partEnter(Runtime &RT, Modref *L, Modref *DL, Modref *DG, Word Pivot,
                   Cell *PivotCell, CmpFn Cmp) {
  return RT.readTail<&partGot>(L, DL, DG, Pivot, PivotCell, Cmp);
}

Closure *qsGot(Runtime &RT, Cell *C, Modref *Dst, Cell *Rest, CmpFn Cmp);

Closure *qsEnter(Runtime &RT, Modref *L, Modref *Dst, Cell *Rest, CmpFn Cmp) {
  return RT.readTail<&qsGot>(L, Dst, Rest, Cmp);
}

/// qs(l, dst, rest): dst := sort(l) ++ rest, with the pivot cell linking
/// the sorted halves (the classic self-adjusting quicksort).
Closure *qsGot(Runtime &RT, Cell *C, Modref *Dst, Cell *Rest, CmpFn Cmp) {
  if (!C) {
    RT.writeT(Dst, Rest);
    return nullptr;
  }
  Word Pivot = C->Head;
  Modref *Less = RT.coreModref(C, 2);
  Modref *Geq = RT.coreModref(C, 3);
  RT.callFn<&partEnter>(C->Tail, Less, Geq, Pivot, C, Cmp);
  Modref *PivotTail = RT.coreModref(C, 4);
  Cell *PivotOut = allocCell(RT, Pivot, hashPair(C->Id, 34), PivotTail);
  RT.callFn<&qsEnter>(Geq, PivotTail, Rest, Cmp);
  return RT.readTail<&qsGot>(Less, Dst, PivotOut, Cmp);
}

//===----------------------------------------------------------------------===//
// mergesort
//===----------------------------------------------------------------------===//

Closure *mergeStep(Runtime &RT, Cell *A, Cell *B, Modref *Dst, CmpFn Cmp);

Closure *mergeNextA(Runtime &RT, Cell *A, Cell *B, Modref *Dst, CmpFn Cmp) {
  return mergeStep(RT, A, B, Dst, Cmp);
}

Closure *mergeNextB(Runtime &RT, Cell *B, Cell *A, Modref *Dst, CmpFn Cmp) {
  return mergeStep(RT, A, B, Dst, Cmp);
}

Closure *mergeStep(Runtime &RT, Cell *A, Cell *B, Modref *Dst, CmpFn Cmp) {
  if (!A) {
    RT.writeT(Dst, B);
    return nullptr;
  }
  if (!B) {
    RT.writeT(Dst, A);
    return nullptr;
  }
  if (Cmp(A->Head, B->Head) <= 0) {
    Modref *OutTail = RT.coreModref(A, 6);
    Cell *Out = allocCell(RT, A->Head, hashPair(A->Id, 36), OutTail);
    RT.writeT(Dst, Out);
    return RT.readTail<&mergeNextA>(A->Tail, B, OutTail, Cmp);
  }
  Modref *OutTail = RT.coreModref(B, 7);
  Cell *Out = allocCell(RT, B->Head, hashPair(B->Id, 37), OutTail);
  RT.writeT(Dst, Out);
  return RT.readTail<&mergeNextB>(B->Tail, A, OutTail, Cmp);
}

Closure *mergeGotB(Runtime &RT, Cell *B, Cell *A, Modref *Dst, CmpFn Cmp) {
  return mergeStep(RT, A, B, Dst, Cmp);
}

Closure *mergeGotA(Runtime &RT, Cell *A, Modref *SB, Modref *Dst, CmpFn Cmp) {
  return RT.readTail<&mergeGotB>(SB, A, Dst, Cmp);
}

/// Coin-split of the input list into \p DA / \p DB; stable under edits
/// because each cell's side is a function of its identity and the level.
Closure *splitGot(Runtime &RT, Cell *C, Modref *DA, Modref *DB, Word Level);

Closure *splitStep(Runtime &RT, Cell *C, Modref *DA, Modref *DB, Word Level) {
  bool GoesRight = hashPair(C->Id, Level * 2 + 0x517) & 1;
  Modref *OutTail = RT.coreModref(C, Level, 5);
  Cell *Out = allocCell(RT, C->Head, hashPair(C->Id, Level * 2 + 0x518),
                        OutTail);
  if (GoesRight) {
    RT.writeT(DB, Out);
    return RT.readTail<&splitGot>(C->Tail, DA, OutTail, Level);
  }
  RT.writeT(DA, Out);
  return RT.readTail<&splitGot>(C->Tail, OutTail, DB, Level);
}

Closure *splitGot(Runtime &RT, Cell *C, Modref *DA, Modref *DB, Word Level) {
  if (!C) {
    RT.writeT(DA, static_cast<Cell *>(nullptr));
    RT.writeT(DB, static_cast<Cell *>(nullptr));
    return nullptr;
  }
  return splitStep(RT, C, DA, DB, Level);
}

Closure *splitEnter(Runtime &RT, Cell *C, Modref *DA, Modref *DB, Word Level) {
  return splitStep(RT, C, DA, DB, Level);
}

Closure *msGot(Runtime &RT, Cell *C, Modref *Dst, CmpFn Cmp, Word Level);

Closure *msEnter(Runtime &RT, Modref *L, Modref *Dst, CmpFn Cmp, Word Level) {
  return RT.readTail<&msGot>(L, Dst, Cmp, Level);
}

Closure *msGot2(Runtime &RT, Cell *T, Cell *C, Modref *Dst, CmpFn Cmp,
                Word Level) {
  if (!T) {
    // Singleton list: already sorted.
    Modref *OutTail = RT.coreModref(C, Level, 8);
    Cell *Out = allocCell(RT, C->Head, hashPair(C->Id, 38), OutTail);
    RT.writeT(OutTail, static_cast<Cell *>(nullptr));
    RT.writeT(Dst, Out);
    return nullptr;
  }
  Modref *A = RT.coreModref(C, Level, 0);
  Modref *B = RT.coreModref(C, Level, 1);
  RT.callFn<&splitEnter>(C, A, B, Level);
  Modref *SA = RT.coreModref(C, Level, 2);
  Modref *SB = RT.coreModref(C, Level, 3);
  RT.callFn<&msEnter>(A, SA, Cmp, Level + 1);
  RT.callFn<&msEnter>(B, SB, Cmp, Level + 1);
  return RT.readTail<&mergeGotA>(SA, SB, Dst, Cmp);
}

Closure *msGot(Runtime &RT, Cell *C, Modref *Dst, CmpFn Cmp, Word Level) {
  if (!C) {
    RT.writeT(Dst, static_cast<Cell *>(nullptr));
    return nullptr;
  }
  return RT.readTail<&msGot2>(C->Tail, C, Dst, Cmp, Level);
}

} // namespace

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

Closure *apps::mapCore(Runtime &RT, Modref *Src, Modref *Dst, MapFn Fn,
                       Word Env) {
  // The destination modifiable identifies this instance; keying output
  // cells with it keeps simultaneous maps over the same list apart.
  return RT.readTail<&mapGot>(Src, Dst, Fn, Env, toWord(Dst));
}

Closure *apps::filterCore(Runtime &RT, Modref *Src, Modref *Dst, PredFn Pred,
                          Word Env) {
  return RT.readTail<&filterGot>(Src, Dst, Pred, Env, toWord(Dst));
}

Closure *apps::reverseCore(Runtime &RT, Modref *Src, Modref *Dst) {
  return RT.readTail<&reverseGot>(Src, static_cast<Cell *>(nullptr), Dst);
}

Closure *apps::reduceCore(Runtime &RT, Modref *Src, Modref *Dst, CombineFn Fn,
                          Word Env, Word Id) {
  Modref *VHead = RT.coreModref(Dst, 9);
  RT.callFn<&convEnter>(Src, VHead, toWord(Dst));
  return RT.readTail<&rrGot>(VHead, Dst, Fn, Env, Id, Word(0));
}

Closure *apps::quicksortCore(Runtime &RT, Modref *Src, Modref *Dst,
                             CmpFn Cmp) {
  return RT.readTail<&qsGot>(Src, Dst, static_cast<Cell *>(nullptr), Cmp);
}

Closure *apps::mergesortCore(Runtime &RT, Modref *Src, Modref *Dst,
                             CmpFn Cmp) {
  return RT.readTail<&msGot>(Src, Dst, Cmp, Word(0));
}

//===----------------------------------------------------------------------===//
// Mutator-side helpers
//===----------------------------------------------------------------------===//

ListHandle apps::buildList(Runtime &RT, const std::vector<Word> &Values) {
  ListHandle L;
  L.Head = RT.modref<Cell *>(nullptr);
  L.Cells.reserve(Values.size());
  Modref *Cur = L.Head;
  for (Word V : Values) {
    auto *C = static_cast<Cell *>(RT.metaAlloc(sizeof(Cell)));
    C->Head = V;
    // Lineage root: the cell's construction index. Deterministic given
    // the input sequence, so every derived identity — and every coin —
    // is a pure function of the input, independent of placement.
    C->Id = hashPair(0x9e3779b97f4a7c15ULL, L.Cells.size());
    C->Tail = RT.modref<Cell *>(nullptr);
    RT.modifyT(Cur, C);
    L.Cells.push_back(C);
    Cur = C->Tail;
  }
  return L;
}

void apps::detachCell(Runtime &RT, ListHandle &L, size_t Index) {
  assert(Index < L.Cells.size() && "detach out of range");
  Cell *Next = RT.derefT<Cell *>(L.Cells[Index]->Tail);
  RT.modifyT(L.tailRefBefore(Index), Next);
}

void apps::reattachCell(Runtime &RT, ListHandle &L, size_t Index) {
  assert(Index < L.Cells.size() && "reattach out of range");
  RT.modifyT(L.tailRefBefore(Index), L.Cells[Index]);
}

std::vector<Word> apps::readList(Runtime &RT, Modref *Head) {
  std::vector<Word> Result;
  for (auto *C = RT.derefT<Cell *>(Head); C; C = RT.derefT<Cell *>(C->Tail))
    Result.push_back(C->Head);
  return Result;
}
