//===- apps/ExpTrees.h - Expression-tree benchmark -------------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The exptrees benchmark (paper Secs. 3 and 8.2): evaluating an
/// expression tree of +/- nodes over floating-point leaves, responding to
/// leaf modifications in time proportional to the leaf-to-root path. This
/// is the paper's running example (Figs. 1-5) with floats in place of
/// integers.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_APPS_EXPTREES_H
#define CEAL_APPS_EXPTREES_H

#include "runtime/Runtime.h"
#include "support/Random.h"

#include <vector>

namespace ceal {
namespace apps {

/// An expression-tree node (paper Fig. 1). Internal nodes hold their
/// children in modifiables so the mutator can substitute subtrees.
struct ExpNode {
  enum KindType : uint8_t { Leaf, Node } Kind;
  enum OpType : uint8_t { Plus, Minus } Op;
  double Num;    ///< Leaf payload.
  Modref *Left;  ///< Holds ExpNode *.
  Modref *Right; ///< Holds ExpNode *.
};

/// Core entry (paper Fig. 2): evaluates the tree in \p Root into \p Res
/// (a bit-cast double).
Closure *evalExpCore(Runtime &RT, Modref *Root, Modref *Res);

/// A mutator-owned expression tree: the root modifiable plus the leaves
/// (the edit points of the benchmark).
struct ExpTree {
  Modref *Root = nullptr;
  std::vector<ExpNode *> Leaves;
  /// Leaves[I] is the value of ParentRef[I] (the modifiable to write when
  /// substituting that leaf).
  std::vector<Modref *> ParentRef;
};

/// Builds a random balanced expression tree with \p NumLeaves leaves
/// (random ops, leaf values uniform in [-1, 1]).
ExpTree buildExpTree(Runtime &RT, Rng &R, size_t NumLeaves);

/// Replaces leaf \p Index with a fresh leaf of value \p Value.
void replaceLeaf(Runtime &RT, ExpTree &T, size_t Index, double Value);

/// Conventional recursive evaluation through the meta interface (the
/// oracle for tests and the baseline for benchmarks).
double evalExpConventional(Runtime &RT, Modref *Root);

} // namespace apps
} // namespace ceal

#endif // CEAL_APPS_EXPTREES_H
