//===- apps/ListConv.h - Conventional list baselines -----------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conventional (non-self-adjusting) versions of the list benchmarks.
/// The paper derives these from the CEAL sources by replacing modifiable
/// references with plain word-sized locations (Sec. 8.1); here that means
/// plain singly-linked cells and direct recursion/loops. They provide the
/// "Cnv." columns of Table 1 and the overhead/speedup denominators.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_APPS_LISTCONV_H
#define CEAL_APPS_LISTCONV_H

#include "apps/ListApps.h"
#include "support/Arena.h"

#include <vector>

namespace ceal {
namespace apps {
namespace conv {

/// A conventional list cell: what a CEAL Cell compiles to when modifiable
/// references become plain pointers.
struct PCell {
  Word Head;
  PCell *Next;
};

PCell *buildList(Arena &A, const std::vector<Word> &Values);
std::vector<Word> toVector(const PCell *L);

PCell *mapList(Arena &A, const PCell *L, MapFn Fn, Word Env);
PCell *filterList(Arena &A, const PCell *L, PredFn Pred, Word Env);
PCell *reverseList(Arena &A, const PCell *L);
Word reduceList(const PCell *L, CombineFn Fn, Word Env, Word Id);

/// Reduction by the same randomized contraction rounds the
/// self-adjusting version uses (what the CEAL reduce code compiles to
/// conventionally); the single-pass reduceList is the textbook loop.
Word reduceRoundsList(Arena &A, const PCell *L, CombineFn Fn, Word Env,
                      Word Id);
PCell *quicksortList(Arena &A, const PCell *L, CmpFn Cmp);
PCell *mergesortList(Arena &A, PCell *L, CmpFn Cmp);

} // namespace conv
} // namespace apps
} // namespace ceal

#endif // CEAL_APPS_LISTCONV_H
