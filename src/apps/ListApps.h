//===- apps/ListApps.h - Self-adjusting list primitives --------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The list benchmarks of the paper's evaluation (Sec. 8.2): map, filter,
/// reverse, the reductions minimum and sum, and the sorting algorithms
/// quicksort and mergesort — written as self-adjusting core programs in
/// the compiled closure style the CEAL compiler emits.
///
/// Lists are modifiable lists: a list handle is a modifiable holding a
/// `Cell *` (null for nil); each cell carries a word head and a
/// modifiable tail. Mutators edit lists by writing tail modifiables,
/// which is exactly the paper's insertion/deletion model.
///
/// Reductions use randomized run-contraction rounds (coins hashed from
/// cell identity and round number), which is what gives minimum and sum
/// their logarithmic update times in Table 1; a positional pairing would
/// degrade to linear updates under insertion.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_APPS_LISTAPPS_H
#define CEAL_APPS_LISTAPPS_H

#include "runtime/Runtime.h"

#include <cstddef>
#include <vector>

namespace ceal {
namespace apps {

/// A modifiable list cell. Heads are plain words (an element change is a
/// cell replacement); tails are modifiables so the mutator and change
/// propagation can restructure the spine. Id is the cell's identity for
/// randomized decisions (contraction-run coins, mergesort split sides):
/// input cells get it from the builder, derived cells hash it from their
/// source cell's Id and the derivation site. An explicit lineage-based
/// identity — rather than the cell's address or region offset — keeps
/// every coin a pure function of the input structure, so the whole trace
/// shape is reproducible across allocators; in particular, a parallel
/// propagation phase (which places fresh blocks in per-worker shard
/// chunks) must flip the same coins a sequential one would, or the
/// parallel-vs-sequential trace oracle could never hold.
struct Cell {
  Word Head;
  Word Id;
  Modref *Tail; ///< Holds Cell *.
};

/// Element transformer: receives the element and a caller environment.
using MapFn = Word (*)(Word Element, Word Env);
/// Element predicate for filter.
using PredFn = bool (*)(Word Element, Word Env);
/// Total order; negative/zero/positive like strcmp.
using CmpFn = int (*)(Word A, Word B);
/// Associative combiner for reductions.
using CombineFn = Word (*)(Word A, Word B, Word Env);

//===----------------------------------------------------------------------===//
// Core entry points (pass to Runtime::runCore<&fn>(...)).
//===----------------------------------------------------------------------===//

/// Writes into \p Dst the list mapping \p Fn over \p Src.
Closure *mapCore(Runtime &RT, Modref *Src, Modref *Dst, MapFn Fn, Word Env);

/// Writes into \p Dst the elements of \p Src satisfying \p Pred.
Closure *filterCore(Runtime &RT, Modref *Src, Modref *Dst, PredFn Pred,
                    Word Env);

/// Writes into \p Dst the reversal of \p Src.
Closure *reverseCore(Runtime &RT, Modref *Src, Modref *Dst);

/// Writes into \p Dst the reduction of \p Src under \p Fn (with identity
/// \p Id), computed with randomized contraction rounds.
Closure *reduceCore(Runtime &RT, Modref *Src, Modref *Dst, CombineFn Fn,
                    Word Env, Word Id);

/// Writes into \p Dst the list \p Src sorted by \p Cmp (classic
/// randomized-by-input quicksort on lists).
Closure *quicksortCore(Runtime &RT, Modref *Src, Modref *Dst, CmpFn Cmp);

/// Writes into \p Dst the list \p Src sorted by \p Cmp (mergesort with
/// randomized splitting).
Closure *mergesortCore(Runtime &RT, Modref *Src, Modref *Dst, CmpFn Cmp);

//===----------------------------------------------------------------------===//
// Mutator-side helpers
//===----------------------------------------------------------------------===//

/// A mutator-owned modifiable list: the head modifiable plus the cells in
/// construction order, for O(1) single-element edits.
struct ListHandle {
  Modref *Head = nullptr;
  std::vector<Cell *> Cells;

  /// The tail modifiable whose value is cell \p Index (the edit point for
  /// deleting/reinserting that cell).
  Modref *tailRefBefore(size_t Index) const {
    return Index == 0 ? Head : Cells[Index - 1]->Tail;
  }
};

/// Builds a modifiable list over \p Values; cells are allocated at the
/// meta level (from the runtime arena) and stay valid for the runtime's
/// lifetime.
ListHandle buildList(Runtime &RT, const std::vector<Word> &Values);

/// Unlinks cell \p Index (which must currently be linked).
void detachCell(Runtime &RT, ListHandle &L, size_t Index);

/// Relinks cell \p Index after a detachCell of the same index.
void reattachCell(Runtime &RT, ListHandle &L, size_t Index);

/// Reads a runtime list back through the meta interface.
std::vector<Word> readList(Runtime &RT, Modref *Head);

} // namespace apps
} // namespace ceal

#endif // CEAL_APPS_LISTAPPS_H
