//===- apps/ExpTrees.cpp - Expression-tree benchmark ----------------------===//
//
// The compiled form of the paper's Fig. 2/Fig. 5 evaluator: each internal
// node allocates result modifiables for its children (keyed by the node),
// evaluates both sides via calls, then reads the two results in sequence
// — exactly the normalized read_r/read_a/read_b structure of Fig. 5.
//
//===----------------------------------------------------------------------===//

#include "apps/ExpTrees.h"

using namespace ceal;
using namespace ceal::apps;

namespace {

Closure *evalGotB(Runtime &RT, Word BW, Word AW, ExpNode *T, Modref *Res) {
  double A = fromWord<double>(AW), B = fromWord<double>(BW);
  RT.writeT(Res, T->Op == ExpNode::Plus ? A + B : A - B);
  return nullptr;
}

Closure *evalGotA(Runtime &RT, Word AW, Modref *Mb, ExpNode *T, Modref *Res) {
  return RT.readTail<&evalGotB>(Mb, AW, T, Res);
}

Closure *evalNode(Runtime &RT, ExpNode *T, Modref *Res) {
  if (T->Kind == ExpNode::Leaf) {
    RT.writeT(Res, T->Num);
    return nullptr;
  }
  Modref *Ma = RT.coreModref(T, 0);
  Modref *Mb = RT.coreModref(T, 1);
  RT.callFn<&evalExpCore>(T->Left, Ma);
  RT.callFn<&evalExpCore>(T->Right, Mb);
  return RT.readTail<&evalGotA>(Ma, Mb, T, Res);
}

ExpNode *newNode(Runtime &RT) {
  return static_cast<ExpNode *>(RT.metaAlloc(sizeof(ExpNode)));
}

ExpNode *makeLeafNode(Runtime &RT, double Value) {
  ExpNode *N = newNode(RT);
  N->Kind = ExpNode::Leaf;
  N->Op = ExpNode::Plus;
  N->Num = Value;
  N->Left = N->Right = nullptr;
  return N;
}

/// Builds a balanced tree over leaf indices [Lo, Hi); records leaves and
/// their parent modifiables in \p T.
ExpNode *buildRange(Runtime &RT, Rng &R, ExpTree &T, size_t Lo, size_t Hi,
                    Modref *ParentRef) {
  if (Hi - Lo == 1) {
    ExpNode *L = makeLeafNode(RT, R.unit() * 2.0 - 1.0);
    T.Leaves.push_back(L);
    T.ParentRef.push_back(ParentRef);
    return L;
  }
  ExpNode *N = newNode(RT);
  N->Kind = ExpNode::Node;
  N->Op = R.flip() ? ExpNode::Plus : ExpNode::Minus;
  N->Num = 0;
  N->Left = RT.modref();
  N->Right = RT.modref();
  size_t Mid = Lo + (Hi - Lo) / 2;
  RT.modifyT(N->Left, buildRange(RT, R, T, Lo, Mid, N->Left));
  RT.modifyT(N->Right, buildRange(RT, R, T, Mid, Hi, N->Right));
  return N;
}

double evalConvRec(Runtime &RT, ExpNode *N) {
  if (N->Kind == ExpNode::Leaf)
    return N->Num;
  double A = evalConvRec(RT, RT.derefT<ExpNode *>(N->Left));
  double B = evalConvRec(RT, RT.derefT<ExpNode *>(N->Right));
  return N->Op == ExpNode::Plus ? A + B : A - B;
}

} // namespace

Closure *apps::evalExpCore(Runtime &RT, Modref *Root, Modref *Res) {
  return RT.readTail<&evalNode>(Root, Res);
}

ExpTree apps::buildExpTree(Runtime &RT, Rng &R, size_t NumLeaves) {
  ExpTree T;
  T.Root = RT.modref();
  if (NumLeaves == 0)
    NumLeaves = 1;
  RT.modifyT(T.Root, buildRange(RT, R, T, 0, NumLeaves, T.Root));
  return T;
}

void apps::replaceLeaf(Runtime &RT, ExpTree &T, size_t Index, double Value) {
  // A fresh leaf node, so the parent's read sees a changed pointer (leaf
  // payloads are plain fields and must not be mutated in place).
  ExpNode *Fresh = makeLeafNode(RT, Value);
  T.Leaves[Index] = Fresh;
  RT.modifyT(T.ParentRef[Index], Fresh);
}

double apps::evalExpConventional(Runtime &RT, Modref *Root) {
  return evalConvRec(RT, RT.derefT<ExpNode *>(Root));
}
