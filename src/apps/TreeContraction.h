//===- apps/TreeContraction.h - Miller-Reif tree contraction ---*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tcon benchmark (paper Sec. 8.2): a self-adjusting implementation
/// of Miller-Reif tree contraction over binary forests, performing a
/// generalized contraction with no application-specific data, and
/// responding to edge insertions/deletions via change propagation.
///
/// Contraction proceeds in synchronous rounds. In each round a node
///  * RAKES (is deleted, conceptually merging into its parent) if it is a
///    leaf with a parent whose parent is not compressing this round, and
///  * COMPRESSES (is spliced out, its child reattaching to its parent) if
///    it is unary, has a parent, its coin is heads and its parent's coin
///    is tails.
/// Coins are a pure hash of (node id, round), so decisions are stable
/// under re-execution — the property that makes the contraction
/// self-adjust in expected O(log n) time per edge edit.
///
/// Per-round node states live in per-round tables of modifiables keyed by
/// round number; live nodes are threaded on a modifiable list per round.
/// A round's pass reads each live node's record and those of its
/// neighbors, writes the node's next-round record (a memo-keyed
/// allocation, so unchanged regions are recovered), and emits survivors.
/// Contraction finishes when no survivor has a neighbor; the core then
/// writes `(rounds << 32) | components` into its destination.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_APPS_TREECONTRACTION_H
#define CEAL_APPS_TREECONTRACTION_H

#include "apps/ListApps.h"
#include "support/Random.h"

#include <vector>

namespace ceal {
namespace apps {

/// Sentinel for "no neighbor".
constexpr Word TcNone = ~Word(0);

/// A node's adjacency at one round: parent and up to two children, by
/// node id. Records are immutable; changes allocate fresh records.
struct TcRec {
  Word P, C0, C1;
};

inline bool tcIsLeaf(const TcRec *R) {
  return R->C0 == TcNone && R->C1 == TcNone;
}
inline bool tcIsUnary(const TcRec *R) {
  return (R->C0 == TcNone) != (R->C1 == TcNone);
}
inline Word tcOnlyChild(const TcRec *R) {
  return R->C0 != TcNone ? R->C0 : R->C1;
}

/// The round coin: a pure function of node identity and round.
inline bool tcCoin(Word Id, Word Round) {
  return hashPair(Id + 1, Round * 2 + 99) & 1;
}

/// True if the node with record \p R and id \p Id compresses this round.
inline bool tcCompresses(const TcRec *R, Word Id, Word Round) {
  return tcIsUnary(R) && R->P != TcNone && tcCoin(Id, Round) &&
         !tcCoin(R->P, Round);
}

/// True if the node rakes this round; \p RP is its parent's record (null
/// for roots).
inline bool tcRakes(const TcRec *R, Word Id, Word Round, const TcRec *RP) {
  (void)Id;
  if (!tcIsLeaf(R) || R->P == TcNone)
    return false;
  // A leaf whose parent compresses this round is reattached instead.
  return !(RP && tcCompresses(RP, R->P, Round));
}

/// Core entry: contracts the forest whose round-0 live list is
/// \p LiveHead and whose round-0 state table is \p Table (N modifiables,
/// each holding a TcRec *). Writes `(rounds << 32) | components` into
/// \p Dst.
Closure *treeContractCore(Runtime &RT, Modref *LiveHead, Modref *Table,
                          Word N, Modref *Dst);

/// A mutator-owned forest: the meta-level round-0 table and live list,
/// plus a mirror of the current adjacency for edit bookkeeping.
struct TcForest {
  size_t N = 0;
  Modref *Table0 = nullptr; ///< Array of N modifiables holding TcRec *.
  ListHandle Live;          ///< Round-0 live list (heads are id << 1 | 1).
  std::vector<TcRec> Adj;   ///< Mutator's mirror of the adjacency.

  /// Edges as (parent, child) pairs, for the test mutator.
  std::vector<std::pair<Word, Word>> edges() const;
};

/// Builds a random binary tree with \p N nodes (node 0 is the root).
TcForest buildRandomTree(Runtime &RT, Rng &R, size_t N);

/// Removes the edge (\p Parent, \p Child), which must exist.
void tcDeleteEdge(Runtime &RT, TcForest &F, Word Parent, Word Child);

/// Adds the edge (\p Parent, \p Child); the parent must have a free child
/// slot and the child must currently be a root.
void tcInsertEdge(Runtime &RT, TcForest &F, Word Parent, Word Child);

/// Conventional synchronous contraction over the same rule and coins;
/// returns the same `(rounds << 32) | components` encoding.
Word tcContractConventional(const std::vector<TcRec> &Adj);

} // namespace apps
} // namespace ceal

#endif // CEAL_APPS_TREECONTRACTION_H
