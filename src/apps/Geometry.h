//===- apps/Geometry.h - Computational-geometry benchmarks -----*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The computational-geometry benchmarks of the paper's evaluation
/// (Sec. 8.2): quickhull (convex hull of a point set), diameter (maximum
/// pairwise distance of a point set), and distance (minimum distance
/// between two point sets) — with diameter and distance using quickhull
/// as a subroutine, exactly as the paper describes.
///
/// Point sets are modifiable lists of `Point *` (apps::Cell with the
/// point pointer as the head word). Distances are squared Euclidean
/// distances carried as bit-cast doubles; callers take square roots at
/// the meta level if they want metric values.
///
/// Diameter and distance take the max/min over hull *vertices*; for the
/// uniform-square and disjoint-square inputs of the evaluation this
/// equals the true set diameter/distance.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_APPS_GEOMETRY_H
#define CEAL_APPS_GEOMETRY_H

#include "apps/ListApps.h"
#include "support/Random.h"

#include <vector>

namespace ceal {
namespace apps {

/// A planar point. Coordinates never change; geometric edits insert or
/// delete points.
struct Point {
  double X, Y;
};

/// Twice the signed area of triangle (A, B, P): positive iff P lies
/// strictly to the left of the directed line A -> B.
inline double orient(const Point *A, const Point *B, const Point *P) {
  return (B->X - A->X) * (P->Y - A->Y) - (B->Y - A->Y) * (P->X - A->X);
}

inline double dist2(const Point *A, const Point *B) {
  double DX = A->X - B->X, DY = A->Y - B->Y;
  return DX * DX + DY * DY;
}

/// Writes into \p Dst the convex hull of \p Src as a list of `Point *` in
/// clockwise order starting from the minimum-x vertex (across the upper
/// chain first).
Closure *quickhullCore(Runtime &RT, Modref *Src, Modref *Dst);

/// Writes into \p Dst (as a bit-cast double) the squared diameter of the
/// point set \p Src.
Closure *diameterCore(Runtime &RT, Modref *Src, Modref *Dst);

/// Writes into \p Dst (as a bit-cast double) the squared minimum
/// vertex-to-vertex distance between the hulls of \p SrcA and \p SrcB.
Closure *distanceCore(Runtime &RT, Modref *SrcA, Modref *SrcB, Modref *Dst);

/// Generates \p N points uniform in the unit square, shifted by
/// (\p ShiftX, 0); arena-allocated from \p RT so they live as long as the
/// runtime.
std::vector<Point *> randomPoints(Runtime &RT, Rng &R, size_t N,
                                  double ShiftX = 0.0);

/// Builds a modifiable point list over \p Points.
ListHandle buildPointList(Runtime &RT, const std::vector<Point *> &Points);

namespace conv {

/// Conventional quickhull with the same deterministic tie-breaks as the
/// self-adjusting version (so tests can compare vertex sequences).
std::vector<const Point *> quickhull(const std::vector<const Point *> &Pts);

/// Conventional squared diameter (max over hull vertex pairs).
double diameter2(const std::vector<const Point *> &Pts);

/// Conventional squared minimum distance (min over hull vertex pairs).
double distance2(const std::vector<const Point *> &A,
                 const std::vector<const Point *> &B);

} // namespace conv
} // namespace apps
} // namespace ceal

#endif // CEAL_APPS_GEOMETRY_H
