//===- runtime/Runtime.h - Self-adjusting-computation RTS ------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The self-adjusting-computation run-time system of the paper (Sec. 6.1):
/// modifiables, traced reads/writes, memo-keyed allocation, trampolined
/// tail calls, and change propagation. A Runtime hosts one trace; the
/// mutator drives it through the meta interface (modref / modify / deref /
/// runCore / propagate) and core code — whether hand-written in the
/// compiled closure style or executed by the CL virtual machine — uses the
/// core interface (read / write / allocate / call).
///
/// Core functions have the translated shape of Sec. 6.2: they return a
/// `Closure *` that the active trampoline runs next. `read` hands back the
/// dependent closure (a tail jump, per normalization), so user code must
/// `return RT.readTail<&f>(m, ...)`. Direct tail calls may simply call the
/// next function and return its result (the paper's read-trampolining
/// refinement, Sec. 6.3).
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_RUNTIME_RUNTIME_H
#define CEAL_RUNTIME_RUNTIME_H

#include "om/OrderList.h"
#include "runtime/Closure.h"
#include "runtime/MemoTable.h"
#include "runtime/Profile.h"
#include "runtime/RaceCheck.h"
#include "runtime/Trace.h"
#include "runtime/Word.h"
#include "support/Arena.h"
#include "support/Check.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ceal {

class TraceAudit;
class ParallelPropagate;

/// How aggressively the trace sanitizer (TraceAudit) runs.
enum class AuditLevel : uint8_t {
  /// Never; auditNow() is a no-op. The only cost is one branch per
  /// propagate/run, so release builds pay nothing per traced operation.
  Off,
  /// Only when the mutator explicitly calls auditNow() (e.g. the oracle
  /// harness between change sequences).
  Checkpoints,
  /// Additionally after every runCore and every propagate.
  EveryPropagation,
};

/// The run-time system. See the file comment for the programming model.
class Runtime {
public:
  /// Behaviour knobs. The defaults model the paper's refined translation;
  /// the non-default settings implement the SaSML-style comparator (see
  /// DESIGN.md Sec. 3 and src/baseline/).
  struct Config {
    /// Extra transient closure-sized allocations per traced read,
    /// simulating the unrefined basic translation (a heap closure per
    /// tail jump) used by SaSML-style continuation runtimes.
    unsigned ExtraAllocsPerRead = 0;
    /// Busy-work iterations per traced node, modelling the per-operation
    /// interpretation/boxing overhead of the comparator; calibrated so
    /// the from-scratch and propagation ratios land in the bands the
    /// paper reports for SaSML (Table 2).
    unsigned SimSpinPerNode = 0;
    /// Extra bytes retained with every trace node, simulating boxed
    /// values and fatter closure records.
    unsigned BoxBytesPerNode = 0;
    /// Ablation: disable the equality cut (re-execute invalidated reads
    /// even when the value they would see is unchanged, and invalidate
    /// readers on writes regardless of value). Correctness is unaffected;
    /// update times degrade (bench/ablation).
    bool DisableEqualityCut = false;
    /// If nonzero, simulate a tracing garbage collector over a heap of
    /// this many bytes: when allocation exhausts headroom, a scan
    /// proportional to the live trace runs; if the live trace itself
    /// exceeds the limit, the runtime reports out-of-memory.
    size_t HeapLimitBytes = 0;
    /// Ablation/debug: fall back to the pay-as-you-go construction path
    /// (general-order OM insertion policy, immediate memo-table inserts).
    /// The default exploits the monotone timestamp order of trace
    /// construction: run_core and re-executed intervals build their trace
    /// under the OM append-mode policy (OrderList::beginAppend) and a
    /// from-scratch run defers its memo-index inserts into a bulk build
    /// at the end of run(). Correctness is unaffected either way.
    bool DisableConstructionFastPath = false;
    /// Trace-sanitizer level (see TraceAudit.h). A violation prints every
    /// finding and aborts, valgrind-style.
    AuditLevel Audit = AuditLevel::Off;
    /// Enables the propagation profiler (phase timers and work
    /// histograms; see runtime/Profile.h). Always compiled in; when off,
    /// the only hot-path cost is a predictable branch per instrumented
    /// site.
    bool EnableProfile = false;
    /// Enables the determinacy-race detector (runtime/RaceCheck.h):
    /// every propagation partitions its dirty set into OM-timestamp
    /// interval groups and reports cross-interval conflicts. Same
    /// discipline as EnableProfile — always compiled, one predictable
    /// branch per hook when off. Togglable per phase via setRaceCheck.
    bool RaceCheck = false;
    /// Maximum interval groups per checked propagation (clamped to 32,
    /// the mask width). More groups test a finer parallel partition.
    unsigned RaceCheckIntervals = 8;
    /// Enables parallel change propagation over certified interval
    /// groups (runtime/ParallelPropagate.h): each propagation's dirty
    /// set is clustered exactly as the race detector would, disjoint
    /// groups re-execute on worker threads, and any cross-group effect
    /// falls back to sequential propagation. Kill switch: defaults off;
    /// the CEAL_PARALLEL_PROPAGATE environment variable (>= 2 enables
    /// with that thread count, 0/1 disables) overrides for CI sweeps.
    bool ParallelPropagate = false;
    /// Worker threads for the parallel phase (clamped to [2, 8]).
    unsigned ParallelThreads = 4;
  };

  /// Counters for tests and the benchmark harnesses.
  struct Stats {
    uint64_t ReadsTraced = 0;
    uint64_t WritesTraced = 0;
    uint64_t AllocsTraced = 0;
    uint64_t ReadsReexecuted = 0;
    uint64_t ReadsSkippedClean = 0;
    uint64_t MemoReadHits = 0;
    uint64_t MemoAllocHits = 0;
    uint64_t NodesRevoked = 0;
    uint64_t Propagations = 0;
    uint64_t GcScans = 0;
    /// Total placement-scan steps across all use-list insertions; the
    /// regression guard for the insertUse cursor hint (pure appends and
    /// runs of adjacent insertions contribute zero).
    uint64_t UseScanSteps = 0;

    /// Folds a parallel worker's per-phase counters into this record
    /// (the join barrier merges instead of sharing hot counters).
    void merge(const Stats &W) {
      ReadsTraced += W.ReadsTraced;
      WritesTraced += W.WritesTraced;
      AllocsTraced += W.AllocsTraced;
      ReadsReexecuted += W.ReadsReexecuted;
      ReadsSkippedClean += W.ReadsSkippedClean;
      MemoReadHits += W.MemoReadHits;
      MemoAllocHits += W.MemoAllocHits;
      NodesRevoked += W.NodesRevoked;
      Propagations += W.Propagations;
      GcScans += W.GcScans;
      UseScanSteps += W.UseScanSteps;
    }
  };

  Runtime() : Runtime(Config()) {}
  explicit Runtime(const Config &C);
  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;
  ~Runtime();

  //===--------------------------------------------------------------===//
  // Meta (mutator) interface
  //===--------------------------------------------------------------===//

  /// Allocates a meta-level modifiable (paper: `modref` in the meta
  /// language). Meta modifiables are not traced or collected; free them
  /// with metaFree if needed.
  Modref *modref();
  template <WordSized T> Modref *modref(T V) {
    Modref *M = this->modref();
    M->Initial = toWord(V);
    return M;
  }
  void metaFree(Modref *M);

  /// Allocates mutator-owned storage (input cells, points, records) from
  /// the runtime arena, tracked so the trace sanitizer can reconcile
  /// arena liveBytes with trace-reachable blocks. Mutator code should
  /// prefer this over arena().allocate(): untracked meta allocations show
  /// up as leaks under TraceAudit's arena reconciliation.
  void *metaAlloc(size_t Size) {
    MetaBytes += Arena::accountedSize(Size);
    return Mem.allocate(Size);
  }
  /// Returns a block obtained from metaAlloc.
  void metaRelease(void *Ptr, size_t Size) {
    assert(MetaBytes >= Arena::accountedSize(Size) &&
           "releasing more meta bytes than allocated");
    MetaBytes -= Arena::accountedSize(Size);
    Mem.deallocate(Ptr, Size);
  }

  /// Mutator write (paper: `modify`): updates the value the core saw at
  /// the start of time and invalidates exactly the affected readers.
  void modify(Modref *M, Word V);
  template <WordSized T> void modifyT(Modref *M, T V) { modify(M, toWord(V)); }

  /// Mutator read (paper: `deref`): the value at the current end of time.
  Word deref(const Modref *M) const;
  template <WordSized T> T derefT(const Modref *M) const {
    return fromWord<T>(deref(M));
  }

  /// Runs a core function from scratch (paper: `run_core`).
  template <auto Fn, typename... Actual> void runCore(Actual... As) {
    run(make<Fn>(As...));
  }
  void run(Closure *C);

  /// Input-size hint: pre-sizes the trace containers (memo tables, arena
  /// chunks, pending-read stack, OM node storage) for a run_core expected
  /// to perform about \p ExpectedOps traced operations (reads + writes +
  /// allocations). Purely an optimization — construction is correct with
  /// any hint including none; the hint only removes incremental grows and
  /// chunk refills from the from-scratch path.
  void reserveTrace(size_t ExpectedOps);

  /// Propagates all pending modifications (paper: `propagate`).
  void propagate();

  //===--------------------------------------------------------------===//
  // Core interface
  //===--------------------------------------------------------------===//

  /// Creates a closure for core function \p Fn with arguments \p As.
  /// The C++ template instantiation is the paper's monomorphized
  /// closure_make (Sec. 6.3).
  template <auto Fn, typename... Actual> Closure *make(Actual... As) {
    using Maker =
        detail::ClosureMaker<Fn,
                             typename CoreFnTraits<decltype(Fn)>::ArgsTuple>;
    constexpr size_t Arity = CoreFnTraits<decltype(Fn)>::Arity;
    static_assert(sizeof...(Actual) == Arity, "closure arity mismatch");
    auto *C = static_cast<Closure *>(Mem.allocate(Closure::byteSize(Arity)));
    Maker::fill(C, As...);
    return C;
  }

  /// Creates a closure with a dynamic argument list (used by the CL
  /// virtual machine, whose arities are only known at run time). The
  /// typed make<Fn> is preferable wherever signatures are static.
  Closure *makeRaw(ClosureFn Fn, const Word *Args, size_t NumArgs) {
    // Hard failure in all build types: truncating the arity would make
    // the closure silently drop arguments and corrupt memo keys.
    checkAlways(NumArgs <= UINT16_MAX,
                "closure arity exceeds the 16-bit frame limit");
    auto *C = static_cast<Closure *>(Mem.allocate(Closure::byteSize(NumArgs)));
    C->setHeader(Fn, NumArgs);
    for (size_t I = 0; I < NumArgs; ++I)
      C->args()[I] = Args[I];
    return C;
  }

  /// Traced read (paper: `modref_read`). Substitutes the modifiable's
  /// value as the closure's first argument and returns the closure for
  /// the active trampoline; returns null after a memo splice. The caller
  /// must return the result immediately (the read body is everything
  /// after it, per normalization).
  Closure *read(Modref *M, Closure *C);

  /// Sugar: read \p M and tail-jump to \p Fn whose first core parameter
  /// receives the value. `Closure *Fn(Runtime &, T0 Value, Rest...)`.
  template <auto Fn, typename... Rest>
  Closure *readTail(Modref *M, Rest... Rs) {
    return read(M, makeWithPlaceholder<Fn>(Rs...));
  }

  /// Traced write (paper: `modref_write`).
  void write(Modref *M, Word V);
  template <WordSized T> void writeT(Modref *M, T V) { write(M, toWord(V)); }

  /// Traced, memo-keyed allocation (paper: `allocate`). The block is
  /// initialized by running \p Init once (its first argument becomes the
  /// block address); a re-execution allocating with an equal key (init
  /// function, size, trailing arguments) steals the previous block.
  void *allocate(size_t Size, Closure *Init, uint8_t NodeFlags = 0);

  /// Sugar: allocate with `Closure *Fn(Runtime &, void *Block, Rest...)`.
  template <auto Fn, typename... Rest> void *alloc(size_t Size, Rest... Rs) {
    return allocate(Size, makeWithPlaceholder<Fn>(Rs...));
  }

  /// Core-level modifiable, memo-keyed by the given key words so that
  /// re-executions recover the same modifiable (and with it, the
  /// downstream trace). With no keys, modifiables are matched in
  /// allocation order.
  template <typename... Keys> Modref *coreModref(Keys... Ks) {
    void *Block =
        allocate(sizeof(Modref), makeWithPlaceholder<&modrefInit<Keys...>>(Ks...),
                 AllocNode::FlagModref);
    return static_cast<Modref *>(Block);
  }

  /// Core-level array of \p Count modifiables under one memo key; used by
  /// applications that keep per-round state tables (e.g. tree
  /// contraction). Indexable as a plain Modref array.
  template <typename... Keys>
  Modref *coreModrefArray(size_t Count, Keys... Ks) {
    assert(Count > 0 && "empty modifiable array");
    void *Block = allocate(
        Count * sizeof(Modref),
        makeWithPlaceholder<&modrefArrayInit<Keys...>>(Word(Count), Ks...),
        AllocNode::FlagModref);
    return static_cast<Modref *>(Block);
  }

  /// Core-level modifiable with a run-time-sized key (the CL VM's
  /// `modref(keys...)`); equivalent to coreModref but for dynamic keys.
  Modref *coreModrefDynamic(const Word *Keys, size_t NumKeys);

  /// Non-tail function call (paper: `closure_run`): runs \p C and the
  /// chain it unleashes on a nested trampoline, then returns.
  void call(Closure *C) { trampoline(C); }
  template <auto Fn, typename... Actual> void callFn(Actual... As) {
    call(make<Fn>(As...));
  }

  //===--------------------------------------------------------------===//
  // Introspection
  //===--------------------------------------------------------------===//

  const Stats &stats() const { return Main.S; }
  /// Resets the runtime counters and the arena statistics together; the
  /// simulated-GC allocation mark is re-anchored at the same time so a
  /// stats reset can never leave it ahead of totalAllocatedBytes() (which
  /// would underflow the headroom test and force a collection on every
  /// allocation).
  void resetStats() {
    Main.S = Stats();
    Mem.resetStats();
    GcAllocMark = Mem.totalAllocatedBytes();
  }
  /// Propagation profiler state (phase timers, work histograms). Only
  /// populated when Config::EnableProfile is set.
  const PropagationProfile &profile() const { return Main.Prof; }
  void resetProfile() { Main.Prof.reset(); }
  /// True when this runtime was constructed with the parallel
  /// propagator armed (Config::ParallelPropagate or the environment
  /// override); individual propagations may still run sequentially.
  bool parallelEnabled() const { return Par != nullptr; }
  /// Toggles the determinacy-race detector between propagations (meta
  /// phase only), so one runtime can time a detector-off loop and then
  /// audit the same trace with it on.
  void setRaceCheck(bool On) {
    assert(CurPhase == Phase::Meta && "toggle the detector between phases");
    Cfg.RaceCheck = On;
  }
  /// What the most recent checked propagation observed (empty if the
  /// detector has never run). See runtime/RaceCheck.h.
  const RaceReport &raceReport() const { return Race.report(); }
  Arena &arena() { return Mem; }
  size_t liveBytes() const { return Mem.liveBytes(); }
  size_t maxLiveBytes() const { return Mem.maxLiveBytes(); }
  /// True once the simulated bounded heap has been exhausted.
  bool outOfMemory() const { return Oom; }
  /// Number of trace timestamps currently live (incl. the base).
  size_t traceSize() const { return Om.size(); }
  /// Bytes currently held by tracked mutator-owned blocks (metaAlloc).
  size_t metaBytes() const { return MetaBytes; }
  const Config &config() const { return Cfg; }

  /// Per-kind live-memory accounting: walks the trace (meta phase only)
  /// and attributes every live arena byte to reads, writes, allocations,
  /// user blocks, closures, or meta blocks, alongside OM/memo-index
  /// footprints and arena occupancy. See MemoryStats in Profile.h.
  MemoryStats memoryStats() const;

  /// Runs the trace sanitizer if Config::Audit is not Off; prints all
  /// violations and aborts if any invariant fails. Must be called from
  /// the meta phase (between runCore/propagate calls).
  void auditNow(const char *Where = "checkpoint") const;

  /// True when the runtime is at a checkpointable quiescent point: meta
  /// phase, no pending invalidations, every construction-time deferral
  /// flushed. Snapshot::save (runtime/Snapshot.h) requires this and
  /// reports BadState otherwise; \p Why receives the reason on false.
  bool readyForCheckpoint(std::string *Why = nullptr) const;

private:
  friend class TraceAudit;
  /// Trace persistence (runtime/Snapshot): serializes and restores the
  /// runtime's scalar state around the arenas' same-base remap.
  friend class Snapshot;
  /// The race detector partitions the propagation queue (Heap) and
  /// reuses the OM order queries (heapLess) for its clustering.
  friend class RaceCheck;
  /// The parallel propagator drives per-worker ExecStates through the
  /// same tracing entry points via the thread-local binding below.
  friend class ParallelPropagate;
  /// Test-only peer (tests reach the propagation queue to inject edge
  /// states the public API cannot, e.g. duplicate heap entries).
  friend struct RuntimeTestPeer;
  template <typename... Keys>
  static Closure *modrefInit(Runtime &, void *Block, Keys...) {
    new (Block) Modref();
    return nullptr;
  }

  template <typename... Keys>
  static Closure *modrefArrayInit(Runtime &, void *Block, Word Count,
                                  Keys...) {
    auto *Arr = static_cast<Modref *>(Block);
    for (Word I = 0; I < Count; ++I)
      new (Arr + I) Modref();
    return nullptr;
  }

  /// Builds a closure whose first declared parameter is a placeholder
  /// bound later through the trampoline's substitution register (the read
  /// value or the allocated block address). The placeholder has no frame
  /// slot — the frame stores only the trailing arguments, one word less
  /// than the function's arity.
  template <auto Fn, typename... Rest>
  Closure *makeWithPlaceholder(Rest... Rs) {
    using Traits = CoreFnTraits<decltype(Fn)>;
    static_assert(Traits::Arity == sizeof...(Rest) + 1,
                  "expected one placeholder parameter plus Rest");
    return makePlaceholderImpl<Fn, typename Traits::ArgsTuple>::fill(*this,
                                                                     Rs...);
  }

  template <auto Fn, typename Tuple> struct makePlaceholderImpl;
  template <auto Fn, typename T0, typename... As>
  struct makePlaceholderImpl<Fn, std::tuple<T0, As...>> {
    static Closure *fill(Runtime &RT, As... Vs) {
      auto *C = static_cast<Closure *>(
          RT.Mem.allocate(Closure::byteSize(sizeof...(As))));
      detail::SubstClosureMaker<Fn, std::tuple<T0, As...>>::fill(C, Vs...);
      return C;
    }
  };

  enum class Phase : uint8_t { Meta, Running, Propagating };

  /// A user block whose revocation is deferred to the end of propagation
  /// (memo reuse may steal the block back mid-phase).
  struct DeferredFree {
    void *Block;
    uint32_t Size;
    bool IsModref;
  };

  /// Everything the tracing and propagation entry points mutate per
  /// executing strand. Sequential execution uses the single Main
  /// instance; a parallel propagation binds one ExecState per worker
  /// through the thread-local ExecBind below, so read / write / allocate
  /// / reexecute run unchanged on workers and their counters, queues,
  /// and deferred frees merge into Main at the join barrier.
  struct ExecState {
    /// The pending substitution value for the next closure the
    /// trampoline invokes: read() parks the value seen here, allocate()
    /// the fresh block. Subst-flavor invokers (makeWithPlaceholder)
    /// consume it as their first declared parameter; plain closures
    /// ignore it.
    Word PendingSubst = 0;
    OmNode *Cursor = nullptr;
    OmNode *IntervalEnd = nullptr;
    bool SplicedFlag = false;
    /// Certified region bounds for a parallel worker: the OM timestamps
    /// delimiting the cluster group it owns (both inclusive). Null when
    /// sequential. An invalidation landing outside [RegionLo, RegionHi]
    /// is forwarded to the coordinator instead of enqueued locally.
    OmNode *RegionLo = nullptr;
    OmNode *RegionHi = nullptr;
    /// Worker index during a parallel phase (-1 when sequential).
    int WorkerId = -1;
    std::vector<ReadNode *> PendingReads;
    /// Propagation queue (intrusive binary heap ordered by start time).
    std::vector<ReadNode *> Heap;
    std::vector<DeferredFree> DeferredFrees;
    /// Memo inserts parked during a parallel phase (FlagMemoDeferred set
    /// on each node). Bucket-chain order determines which same-key
    /// candidate a later probe steals, so concurrent head-inserts would
    /// make the trace's future shape depend on worker scheduling; the
    /// coordinator applies these at the join in worker-id order, which
    /// equals the sequential insert order because the groups are
    /// disjoint and timestamp-ordered. Entries revoked before the join
    /// are nulled in place (order of the rest must be preserved).
    std::vector<ReadNode *> PhaseReadMemo;
    std::vector<AllocNode *> PhaseAllocMemo;
    Stats S;
    PropagationProfile Prof;
  };

  // Trace construction.
  template <typename NodeT> NodeT *newNode();
  template <typename NodeT> void destroyNode(NodeT *N);
  void freeClosure(Closure *C);
  OmNode *stampAfterCursor(OmItem Item);
  void insertUse(Modref *M, Use *U);
  void insertUseTail(Modref *M, Use *U);
  void unlinkUse(Use *U);
  Word valueGoverning(const ReadNode *R) const;
  Handle<WriteNode> writeGoverning(const Use *U) const;

  // Execution.
  bool trampoline(Closure *C);
  /// Bulk-builds the memo indexes from the inserts deferred during
  /// construction; runs before run() returns to the meta phase (audits
  /// and propagation require complete memo membership).
  void flushConstructionMemo();

  /// Trace operations performed so far on one strand, as a monotone work
  /// measure; the profiler records the delta across one re-execution as
  /// the re-executed interval's size.
  uint64_t traceWorkOps(const ExecState &E) const {
    return E.S.ReadsTraced + E.S.WritesTraced + E.S.AllocsTraced +
           E.S.NodesRevoked + E.S.MemoReadHits + E.S.MemoAllocHits;
  }

  // Change propagation.
  void reexecute(ReadNode *R);
  void invalidate(ReadNode *R);
  void revokeInterval(OmNode *From, OmNode *To);
  void revokeRead(ReadNode *R);
  void revokeWrite(WriteNode *W);
  void revokeAlloc(AllocNode *A);
  void flushDeferredFrees();

  // Memo indexes.
  uint64_t readMemoHash(const Modref *M, const Closure *C) const;
  uint64_t allocMemoHash(const Closure *Init, size_t Size) const;
  ReadNode *findReadMemo(const Modref *M, const Closure *C, uint64_t Hash);
  AllocNode *findAllocMemo(const Closure *Init, size_t Size, uint64_t Hash);
  bool inReuseWindow(const OmNode *Start) const;

  // Propagation queue operations over a strand's intrusive binary heap
  // (ordered by start time, position cached in ReadNode::HeapIndex).
  bool heapLess(const ReadNode *A, const ReadNode *B) const;
  void heapPush(ExecState &E, ReadNode *R);
  ReadNode *heapPopMin(ExecState &E);
  void heapRemove(ExecState &E, ReadNode *R);
  void heapSiftUp(ExecState &E, size_t Index);
  void heapSiftDown(ExecState &E, size_t Index);

  // Simulated GC for the SaSML-style configuration.
  void maybeSimulateGc();

  Config Cfg;
  Arena Mem;
  OrderList Om;
  /// The maximum stamped position: where a subsequent run_core appends.
  OmNode *TraceEnd;
  Phase CurPhase = Phase::Meta;

  /// The sequential execution strand, and the merge target of parallel
  /// phases. See ExecState.
  ExecState Main;

  /// Thread-local routing of the tracing entry points to an ExecState: a
  /// parallel worker binds {this runtime, its ExecState} for the phase;
  /// every other thread — and this runtime's own thread outside a phase
  /// — falls through to Main. Keyed by the runtime pointer so multiple
  /// runtimes on one thread, and one runtime across threads, stay
  /// independent.
  struct ExecBind {
    const Runtime *RT;
    ExecState *E;
  };
  inline static thread_local ExecBind TlsBind{nullptr, nullptr};
  ExecState &exec() {
    return __builtin_expect(TlsBind.RT == this, 0) ? *TlsBind.E : Main;
  }
  const ExecState &exec() const {
    return __builtin_expect(TlsBind.RT == this, 0) ? *TlsBind.E : Main;
  }

  /// The memo indexes chain through 32-bit handles, so each table is
  /// bound to the arena that owns its nodes (Mem, declared above).
  MemoTable<ReadNode> ReadMemo{Mem};
  MemoTable<AllocNode> AllocMemo{Mem};
  /// Memo-index inserts deferred by the construction fast path; flushed
  /// (bulk-built with an up-front reserve) at the end of run().
  std::vector<ReadNode *> PendingReadMemo;
  std::vector<AllocNode *> PendingAllocMemo;

  RaceCheck Race;
  /// The parallel propagator (runtime/ParallelPropagate.h), present only
  /// when Config::ParallelPropagate or the environment override enabled
  /// it; owns the worker pool. ParArmed is true exactly while a parallel
  /// phase is live — it arms the striped modref locks and the atomic
  /// dirty-bit paths on the tracing entry points.
  std::unique_ptr<ParallelPropagate> Par;
  bool ParArmed = false;
  size_t GcAllocMark = 0;
  size_t MetaBytes = 0;
  bool Oom = false;
};

} // namespace ceal

#endif // CEAL_RUNTIME_RUNTIME_H
