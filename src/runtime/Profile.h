//===- runtime/Profile.h - Propagation profiler ----------------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The propagation profiler: always-compiled phase timers and work
/// histograms for the change-propagation hot paths. Profiling is a
/// runtime knob (Runtime::Config::EnableProfile); when it is off the only
/// cost left on a hot path is a predictable branch, so release numbers
/// are unaffected (the acceptance bar is <= 2% against a build without
/// the profiler). When it is on, the runtime accumulates:
///
///  * phase wall time — runCore trampolines, whole propagate() calls,
///    and within propagation the re-executions (inclusive of the revoke
///    and memo work they trigger), revokeInterval walks, memo-index
///    probes, and priority-queue pops;
///  * a histogram of re-executed interval sizes, measured as the number
///    of trace operations (nodes traced, revoked, or memo-spliced)
///    performed per re-execution;
///  * a histogram of use-list insertion scan lengths (the placement
///    walk in Runtime::insertUse).
///
/// The benchmark harnesses (bench/rt_microbench, bench/table1_summary)
/// serialize the profile as JSON so CI can track where propagation time
/// goes PR over PR.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_RUNTIME_PROFILE_H
#define CEAL_RUNTIME_PROFILE_H

#include "support/Timer.h"
#include "support/simd/Simd.h"

#include <cstdint>
#include <ostream>

namespace ceal {

/// A power-of-two histogram over non-negative 64-bit values. Bucket 0
/// counts zeros; bucket b >= 1 counts values in [2^(b-1), 2^b).
struct ProfileHistogram {
  static constexpr unsigned NumBuckets = 40;

  uint64_t Buckets[NumBuckets] = {};
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Max = 0;

  void record(uint64_t V) {
    unsigned B = 0;
    for (uint64_t X = V; X; X >>= 1)
      ++B;
    if (B >= NumBuckets)
      B = NumBuckets - 1;
    ++Buckets[B];
    ++Count;
    Sum += V;
    if (V > Max)
      Max = V;
  }

  double mean() const { return Count ? double(Sum) / double(Count) : 0.0; }

  /// Folds another histogram into this one (parallel-worker profiles are
  /// merged into the main profile at the join barrier).
  void merge(const ProfileHistogram &O) {
    for (unsigned B = 0; B < NumBuckets; ++B)
      Buckets[B] += O.Buckets[B];
    Count += O.Count;
    Sum += O.Sum;
    if (O.Max > Max)
      Max = O.Max;
  }

  /// Emits `{"count":...,"sum":...,"max":...,"mean":...,"buckets":[[lo,
  /// n],...]}` with one `[lower_bound, count]` pair per non-empty bucket.
  void writeJson(std::ostream &Out) const {
    Out << "{\"count\": " << Count << ", \"sum\": " << Sum
        << ", \"max\": " << Max << ", \"mean\": " << mean()
        << ", \"buckets\": [";
    bool First = true;
    for (unsigned B = 0; B < NumBuckets; ++B) {
      if (!Buckets[B])
        continue;
      uint64_t Lo = B == 0 ? 0 : uint64_t(1) << (B - 1);
      Out << (First ? "" : ", ") << "[" << Lo << ", " << Buckets[B] << "]";
      First = false;
    }
    Out << "]}";
  }
};

/// Accumulated propagation profile; owned by Runtime, read through
/// Runtime::profile(). All times are monotonic-clock nanoseconds.
/// Nesting: ReexecNs is inside PropagateNs; RevokeNs and MemoLookupNs
/// are (mostly) inside ReexecNs; QueueNs is inside PropagateNs but
/// outside ReexecNs.
struct PropagationProfile {
  /// Mirrors Config::EnableProfile; hot paths test this single flag.
  bool Enabled = false;

  uint64_t RunCoreNs = 0;    ///< runCore trampoline wall time.
  uint64_t PropagateNs = 0;  ///< whole propagate() calls.
  uint64_t ReexecNs = 0;     ///< re-executions (inclusive).
  uint64_t RevokeNs = 0;     ///< revokeInterval walks.
  uint64_t MemoLookupNs = 0; ///< read/alloc memo-index probes.
  uint64_t QueueNs = 0;      ///< priority-queue pops in propagate().

  uint64_t RunCoreCalls = 0;
  uint64_t ReexecCalls = 0;
  uint64_t RevokeCalls = 0;
  uint64_t MemoLookups = 0;
  uint64_t QueuePops = 0;

  /// Construction section: the primitive operations trace construction
  /// performs, counted wherever they happen (from-scratch runs and the
  /// re-traced parts of re-executions), plus the deferred memo-index
  /// build that the construction fast path runs at the end of run()
  /// (inside RunCoreNs).
  uint64_t MemoBuildNs = 0;        ///< deferred memo-table bulk build.
  uint64_t OmInserts = 0;          ///< order-maintenance timestamps created.
  uint64_t ArenaAllocs = 0;        ///< arena blocks handed out during runCore.
  uint64_t MemoInserts = 0;        ///< read/alloc memo-index insertions.
  uint64_t ClosureDispatches = 0;  ///< trampoline closure invocations.

  /// Trace operations (traced + revoked + memo-spliced nodes) per
  /// re-execution: the distribution of re-executed interval sizes.
  ProfileHistogram ReexecWork;
  /// Placement-scan steps per use-list insertion.
  ProfileHistogram UseScan;

  /// Parallel-propagation section (runtime/ParallelPropagate). Counters
  /// are zero unless the feature ran; per-worker slots beyond the used
  /// thread count stay zero.
  static constexpr unsigned MaxWorkers = 8;
  uint64_t ParallelRuns = 0;      ///< propagations that ran parallel.
  uint64_t ParallelFallbacks = 0; ///< propagations refused up front.
  uint64_t ParallelConflicts = 0; ///< phases demoted by a dynamic conflict.
  uint64_t ForwardedReads = 0;    ///< cross-region invalidations forwarded.
  uint64_t JoinWaitNs = 0;        ///< leader wall time waiting at the join.
  uint64_t WorkersUsed = 0;       ///< max workers any phase actually used.
  uint64_t WorkerBusyNs[MaxWorkers] = {};
  uint64_t WorkerPops[MaxWorkers] = {};

  void reset() {
    bool E = Enabled;
    *this = PropagationProfile();
    Enabled = E;
  }

  /// Folds a worker's phase-local profile into this (main) profile at the
  /// join barrier, crediting the worker's busy time to its slot. The
  /// worker profile holds only hot-path accumulators (its RunCore and
  /// Propagate timers never run).
  void mergeWorker(const PropagationProfile &W, unsigned Id,
                   uint64_t BusyNs) {
    ReexecNs += W.ReexecNs;
    RevokeNs += W.RevokeNs;
    MemoLookupNs += W.MemoLookupNs;
    QueueNs += W.QueueNs;
    ReexecCalls += W.ReexecCalls;
    RevokeCalls += W.RevokeCalls;
    MemoLookups += W.MemoLookups;
    QueuePops += W.QueuePops;
    OmInserts += W.OmInserts;
    MemoInserts += W.MemoInserts;
    ClosureDispatches += W.ClosureDispatches;
    ReexecWork.merge(W.ReexecWork);
    UseScan.merge(W.UseScan);
    if (Id < MaxWorkers) {
      WorkerBusyNs[Id] += BusyNs;
      WorkerPops[Id] += W.QueuePops;
    }
  }

  /// Emits the profile as one JSON object (no trailing newline).
  void writeJson(std::ostream &Out) const {
    Out << "{\"enabled\": " << (Enabled ? "true" : "false")
        << ", \"run_core_ns\": " << RunCoreNs
        << ", \"propagate_ns\": " << PropagateNs
        << ", \"reexec_ns\": " << ReexecNs << ", \"revoke_ns\": " << RevokeNs
        << ", \"memo_lookup_ns\": " << MemoLookupNs
        << ", \"queue_ns\": " << QueueNs
        << ", \"run_core_calls\": " << RunCoreCalls
        << ", \"reexec_calls\": " << ReexecCalls
        << ", \"revoke_calls\": " << RevokeCalls
        << ", \"memo_lookups\": " << MemoLookups
        << ", \"queue_pops\": " << QueuePops
        << ", \"memo_build_ns\": " << MemoBuildNs
        << ", \"om_inserts\": " << OmInserts
        << ", \"arena_allocs\": " << ArenaAllocs
        << ", \"memo_inserts\": " << MemoInserts
        << ", \"closure_dispatches\": " << ClosureDispatches
        << ", \"reexec_work_hist\": ";
    ReexecWork.writeJson(Out);
    Out << ", \"use_scan_hist\": ";
    UseScan.writeJson(Out);
    Out << ", \"parallel\": {\"runs\": " << ParallelRuns
        << ", \"fallbacks\": " << ParallelFallbacks
        << ", \"conflicts\": " << ParallelConflicts
        << ", \"forwarded_reads\": " << ForwardedReads
        << ", \"join_wait_ns\": " << JoinWaitNs
        << ", \"workers_used\": " << WorkersUsed
        << ", \"worker_busy_ns\": [";
    for (unsigned I = 0; I < MaxWorkers; ++I)
      Out << (I ? ", " : "") << WorkerBusyNs[I];
    Out << "], \"worker_pops\": [";
    for (unsigned I = 0; I < MaxWorkers; ++I)
      Out << (I ? ", " : "") << WorkerPops[I];
    Out << "]}, \"simd\": ";
    // Process-global dispatch counters (variant selected per kernel,
    // calls, bytes), not per-propagation state; included here so every
    // profile dump records which kernels actually ran and how wide.
    simd::writeCountersJson(Out);
    Out << "}";
  }
};

/// Per-kind live-memory accounting, filled by Runtime::memoryStats() from
/// a meta-phase walk of the trace. Byte counts are arena-accounted (they
/// include the 8-byte size-class rounding), so the per-kind numbers sum
/// to what the arena actually charges:
///
///   ReadBytes + WriteBytes + AllocBytes + UserBlockBytes + ClosureBytes
///     + MetaBytes == ArenaLiveBytes
///
/// (TraceAudit enforces the same identity). OM timestamps and the memo
/// bucket arrays live outside the trace arena and are reported
/// separately.
struct MemoryStats {
  uint64_t ReadBytes = 0;      ///< ReadNode records (+ per-node box).
  uint64_t WriteBytes = 0;     ///< WriteNode records (+ per-node box).
  uint64_t AllocBytes = 0;     ///< AllocNode records (+ per-node box).
  uint64_t UserBlockBytes = 0; ///< memo-keyed allocations' user blocks.
  uint64_t ClosureBytes = 0;   ///< read closures + alloc initializers.
  uint64_t MetaBytes = 0;      ///< tracked meta blocks (inputs, modrefs).
  uint64_t OmBytes = 0;        ///< order-list arena live bytes.
  uint64_t MemoIndexBytes = 0; ///< memo-table bucket arrays (malloc side).

  uint64_t Reads = 0, Writes = 0, Allocs = 0, Timestamps = 0;

  /// Trace-arena occupancy: live vs. high-water vs. touched region.
  uint64_t ArenaLiveBytes = 0;
  uint64_t ArenaMaxLiveBytes = 0;
  uint64_t ArenaBumpUsedBytes = 0;

  /// Fraction of the touched region currently live; the remainder is
  /// size-class freelist inventory (fragmentation()).
  double utilization() const {
    return ArenaBumpUsedBytes
               ? double(ArenaLiveBytes) / double(ArenaBumpUsedBytes)
               : 1.0;
  }
  double fragmentation() const { return 1.0 - utilization(); }

  /// Emits the stats as one JSON object (no trailing newline).
  void writeJson(std::ostream &Out) const {
    Out << "{\"read_bytes\": " << ReadBytes
        << ", \"write_bytes\": " << WriteBytes
        << ", \"alloc_bytes\": " << AllocBytes
        << ", \"user_block_bytes\": " << UserBlockBytes
        << ", \"closure_bytes\": " << ClosureBytes
        << ", \"meta_bytes\": " << MetaBytes
        << ", \"om_bytes\": " << OmBytes
        << ", \"memo_index_bytes\": " << MemoIndexBytes
        << ", \"reads\": " << Reads << ", \"writes\": " << Writes
        << ", \"allocs\": " << Allocs
        << ", \"timestamps\": " << Timestamps
        << ", \"arena_live_bytes\": " << ArenaLiveBytes
        << ", \"arena_max_live_bytes\": " << ArenaMaxLiveBytes
        << ", \"arena_bump_used_bytes\": " << ArenaBumpUsedBytes
        << ", \"utilization\": " << utilization()
        << ", \"fragmentation\": " << fragmentation() << "}";
  }
};

/// RAII phase timer. When profiling is disabled the constructor and
/// destructor each cost one branch; when enabled, one clock read each.
class ProfileTimer {
public:
  ProfileTimer(const PropagationProfile &P, uint64_t &Accumulator)
      : Acc(P.Enabled ? &Accumulator : nullptr) {
    if (Acc)
      T0 = Timer::nowNs();
  }
  ProfileTimer(const ProfileTimer &) = delete;
  ProfileTimer &operator=(const ProfileTimer &) = delete;
  ~ProfileTimer() {
    if (Acc)
      *Acc += Timer::nowNs() - T0;
  }

private:
  uint64_t *Acc;
  uint64_t T0 = 0;
};

} // namespace ceal

#endif // CEAL_RUNTIME_PROFILE_H
