//===- runtime/ParallelPropagate.cpp - Parallel change propagation --------===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "runtime/ParallelPropagate.h"

#include "runtime/RaceCheck.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>

using namespace ceal;

ParallelPropagate::ParallelPropagate(Runtime &R, unsigned Threads)
    : RT(R),
      NumThreads(std::clamp(Threads, 2u, PropagationProfile::MaxWorkers)) {
  // Persistent pool: NumThreads - 1 parked workers plus the leader (the
  // propagating thread itself runs group 0). Spawned once; a phase is two
  // condvar handshakes, not thread churn.
  Pool.reserve(NumThreads - 1);
  for (unsigned Id = 1; Id < NumThreads; ++Id)
    Pool.emplace_back([this, Id] { poolMain(Id); });
}

ParallelPropagate::~ParallelPropagate() {
  {
    std::lock_guard<std::mutex> L(Mu);
    Shutdown = true;
  }
  Cv.notify_all();
  for (std::thread &T : Pool)
    T.join();
}

void ParallelPropagate::poolMain(unsigned Id) {
  uint64_t SeenSeq = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> L(Mu);
      Cv.wait(L, [&] { return Shutdown || PhaseSeq != SeenSeq; });
      if (Shutdown)
        return;
      SeenSeq = PhaseSeq;
      // Fewer groups than pool threads this phase: sit it out. Remaining
      // counts only the ActiveWorkers ids, so no decrement here.
      if (Id >= ActiveWorkers)
        continue;
    }
    runWorker(Id);
    finishWorker();
  }
}

void ParallelPropagate::finishWorker() {
  bool Done;
  {
    std::lock_guard<std::mutex> L(Mu);
    Done = --Remaining == 0;
  }
  if (Done)
    DoneCv.notify_all();
}

void ParallelPropagate::runWorker(unsigned Id) {
  Runtime::ExecState &E = States[Id];
  // Route this thread's traced operations to its own strand and its
  // arena allocations to its own shard for the duration of the phase.
  Arena::ShardTls = static_cast<int>(Id);
  Runtime::TlsBind = {&RT, &E};
  const uint64_t T0 = Timer::nowNs();
  for (;;) {
    ReadNode *R = RT.heapPopMin(E);
    if (!R)
      break;
    if (E.Prof.Enabled)
      ++E.Prof.QueuePops;
    // The dirty bit is the worker/invalidator handshake: a read can be
    // re-marked between pop and clear (a foreign writer saw it dirty and
    // skipped enqueueing); clearing first means any write that lands
    // after the clear re-marks and forwards, so nothing is lost. A clean
    // pop is a duplicate or an equality-cut leftover.
    if (!R->isDirtyAtomic())
      continue;
    R->clearDirtyAtomic();
    RT.reexecute(R);
  }
  BusyNs[Id] = Timer::nowNs() - T0;
  Runtime::TlsBind = {nullptr, nullptr};
  Arena::ShardTls = -1;
}

bool ParallelPropagate::tryRun() {
  Runtime::ExecState &Main = RT.Main;
  PropagationProfile &Prof = Main.Prof;
  auto Refuse = [&] {
    if (Prof.Enabled)
      ++Prof.ParallelFallbacks;
    return false;
  };

  // Static gates. Sticky: a previous phase saw a dynamic conflict — this
  // workload couples its intervals (exptrees), stay sequential. The race
  // detector and the simulated bounded heap are inherently sequential
  // instruments; a recorded static-interference conflict from the last
  // checked propagation demotes permanently, matching the detector's
  // verdict semantics (docs/PARALLEL_SAFETY.md).
  if (Sticky || RT.Cfg.RaceCheck || RT.Cfg.HeapLimitBytes != 0 ||
      Main.Heap.size() < 2)
    return Refuse();
  if (RT.Race.report().conflictCount() > 0) {
    Sticky = true;
    return Refuse();
  }

  DirtyClustering C = RaceCheck::clusterDirty(RT);
  if (C.NumClusters < 2)
    return Refuse();
  const unsigned K =
      std::min({NumThreads, C.NumClusters, PropagationProfile::MaxWorkers});

  // Contiguous balanced split of clusters into K groups (same rule as
  // RaceCheck::beginPropagate), then per-group region bounds: Lo is the
  // first read's start (Sorted is in start order), Hi the maximal end.
  auto GroupOf = [&](uint32_t Cluster) {
    return static_cast<unsigned>(uint64_t(Cluster) * K / C.NumClusters);
  };
  OmNode *Lo[PropagationProfile::MaxWorkers] = {};
  OmNode *Hi[PropagationProfile::MaxWorkers] = {};
  for (size_t I = 0; I < C.Sorted.size(); ++I) {
    const unsigned G = GroupOf(C.ClusterOf[I]);
    OmNode *Start = RT.Om.nodeAt(C.Sorted[I]->Start);
    OmNode *End = RT.Om.nodeAt(C.Sorted[I]->End);
    if (!Lo[G])
      Lo[G] = Start;
    if (!Hi[G] || OrderList::precedes(Hi[G], End))
      Hi[G] = End;
  }

  // Certify the regions structurally: after isolation, no OM group spans
  // a region boundary, so worker-local structural mutations (splits,
  // relabels of own-region node labels) stay inside the owning region.
  // Single-threaded — must precede arming.
  for (unsigned G = 0; G < K; ++G) {
    RT.Om.isolateBoundary(Lo[G]);
    if (OmNode *After = Hi[G]->Next)
      RT.Om.isolateBoundary(After);
  }

  // Redistribute the dirty heap into the per-worker queues. The main
  // heap may hold duplicate entries; C.Sorted is deduplicated, so clear
  // all membership first and push each read exactly once.
  for (ReadNode *R : Main.Heap)
    R->HeapIndex = -1;
  Main.Heap.clear();
  for (unsigned G = 0; G < K; ++G) {
    Runtime::ExecState &E = States[G];
    assert(E.Heap.empty() && E.PendingReads.empty() &&
           E.DeferredFrees.empty() && E.PhaseReadMemo.empty() &&
           E.PhaseAllocMemo.empty() && "worker strand not quiescent");
    E.S = Runtime::Stats();
    E.Prof.reset();
    E.Prof.Enabled = Prof.Enabled;
    E.PendingSubst = 0;
    E.Cursor = nullptr;
    E.IntervalEnd = nullptr;
    E.SplicedFlag = false;
    E.RegionLo = Lo[G];
    E.RegionHi = Hi[G];
    E.WorkerId = static_cast<int>(G);
    BusyNs[G] = 0;
  }
  for (size_t I = 0; I < C.Sorted.size(); ++I)
    RT.heapPush(States[GroupOf(C.ClusterOf[I])], C.Sorted[I]);

  // Arm the concurrent substructures, release the pool, and work group 0
  // on this thread.
  Overflow.clear();
  ForwardedCount = 0;
  AnyForwarded = false;
  RT.Mem.beginShards(K);
  RT.Om.beginParallel(K);
  RT.ReadMemo.setSharded(true);
  RT.AllocMemo.setSharded(true);
  RT.ParArmed = true;
  {
    std::lock_guard<std::mutex> L(Mu);
    ActiveWorkers = K;
    Remaining = K;
    ++PhaseSeq;
  }
  Cv.notify_all();
  runWorker(0);
  finishWorker();
  const uint64_t J0 = Prof.Enabled ? Timer::nowNs() : 0;
  {
    std::unique_lock<std::mutex> L(Mu);
    DoneCv.wait(L, [&] { return Remaining == 0; });
  }
  if (Prof.Enabled)
    Prof.JoinWaitNs += Timer::nowNs() - J0;

  // Disarm (single-threaded again: the join above is the happens-before
  // edge for everything the workers wrote).
  RT.ParArmed = false;
  RT.Om.endParallel();
  RT.Mem.endShards();
  RT.ReadMemo.setSharded(false);
  RT.AllocMemo.setSharded(false);

  // Merge the worker strands into Main. The parked memo inserts go in
  // first, in worker-id order: the groups are disjoint and timestamp-
  // ordered and each worker's pops were timestamp-monotone, so this
  // concatenation is exactly the order a sequential propagation would
  // have head-inserted them — every later probe walks identical bucket
  // chains and steals identical candidates. Nulls are strand entries
  // revoked before the join.
  for (unsigned G = 0; G < K; ++G) {
    Runtime::ExecState &E = States[G];
    for (ReadNode *R : E.PhaseReadMemo) {
      if (!R)
        continue;
      R->clearMemoDeferredAtomic();
      RT.ReadMemo.insert(R);
    }
    E.PhaseReadMemo.clear();
    for (AllocNode *A : E.PhaseAllocMemo) {
      if (!A)
        continue;
      A->Flags &= ~TraceNode::FlagMemoDeferred;
      RT.AllocMemo.insert(A);
    }
    E.PhaseAllocMemo.clear();
  }
  for (unsigned G = 0; G < K; ++G) {
    Runtime::ExecState &E = States[G];
    assert(E.Heap.empty() && "worker queue not drained at the join");
    Main.S.merge(E.S);
    if (Prof.Enabled)
      Prof.mergeWorker(E.Prof, G, BusyNs[G]);
    Main.DeferredFrees.insert(Main.DeferredFrees.end(),
                              E.DeferredFrees.begin(), E.DeferredFrees.end());
    E.DeferredFrees.clear();
    E.RegionLo = nullptr;
    E.RegionHi = nullptr;
    E.WorkerId = -1;
  }

  // Re-queue forwarded work for the sequential drain in propagate();
  // the entries are dirty and in no heap (forward() is only reachable
  // for reads that failed the in-region test).
  for (ReadNode *R : Overflow)
    RT.heapPush(Main, R);
  Overflow.clear();

  if (Prof.Enabled) {
    ++Prof.ParallelRuns;
    Prof.ForwardedReads += ForwardedCount;
    Prof.WorkersUsed = std::max<uint64_t>(Prof.WorkersUsed, K);
  }
  if (AnyForwarded) {
    // A cross-GROUP effect surfaced at run time (one group's write
    // invalidated a read placed in another group's region): the
    // certified split was too coarse for this workload's dependence
    // structure. Correctness is preserved (the drain handles the
    // forwarded reads), but later propagations stop paying for phases
    // that will conflict again. Forwards outside every region do not
    // demote — see forward().
    Sticky = true;
    if (Prof.Enabled)
      ++Prof.ParallelConflicts;
  }
  return true;
}

void ParallelPropagate::forward(ReadNode *R) {
  // Classify before queuing. A forwarded read whose interval lies
  // outside every certified region is benign spillover: sequential
  // propagation would cascade-invalidate it exactly the same way, and
  // the post-join drain re-executes it in timestamp order regardless of
  // thread count. Only an interval touching ANOTHER group's region is
  // evidence that the certified split undercut the workload's dependence
  // structure (the next phase would couple the same groups again), so
  // only that demotes to sticky-sequential. Open reads (End not yet
  // stamped — mid-construction on some worker) cannot be placed and are
  // conservatively conflicts. Region bounds are set before arming and
  // cleared after the join, so reading them here is race-free; precedes
  // is seqlock-safe while armed.
  bool Conflict = true;
  Handle<OmNode> EndH = R->endAcquire();
  if (EndH) {
    const int Self = RT.exec().WorkerId;
    OmNode *Start = RT.Om.nodeAt(R->Start);
    OmNode *End = RT.Om.nodeAt(EndH);
    Conflict = false;
    for (unsigned G = 0; G < ActiveWorkers; ++G) {
      if (static_cast<int>(G) == Self)
        continue;
      const Runtime::ExecState &S = States[G];
      if (!S.RegionLo)
        continue;
      if (!OrderList::precedes(End, S.RegionLo) &&
          !OrderList::precedes(S.RegionHi, Start)) {
        Conflict = true;
        break;
      }
    }
  }
  SpinLockGuard L(OverflowLock);
  Overflow.push_back(R);
  ++ForwardedCount;
  if (Conflict)
    AnyForwarded = true;
}

void ParallelPropagate::revokedWhileQueued(ReadNode *R) {
  // Same stripe as forward() (the owning modifiable's), so the scan
  // cannot race a concurrent forward of the same read. Overflow stays
  // tiny — any entry at all demotes the runtime to sequential — so the
  // linear scan is fine.
  SpinLockGuard L(OverflowLock);
  for (size_t I = 0; I < Overflow.size(); ++I) {
    if (Overflow[I] == R) {
      Overflow[I] = Overflow.back();
      Overflow.pop_back();
      return;
    }
  }
}
