//===- runtime/TraceAudit.h - Trace sanitizer ------------------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A debug-time auditor over the run-time system's dynamic dependence
/// graph. Change propagation is only correct if the structural invariants
/// the paper's algorithms assume actually hold between operations; the
/// auditor walks the whole RTS state and checks them:
///
///  * Order maintenance: node labels strictly increase inside each group,
///    group labels strictly increase along the group chain, and the
///    two levels agree — `precedes` is a strict total order consistent
///    with the linked-list order (Dietz-Sleator consistency).
///
///  * Trace shape: every timestamp's payload points back at it, read
///    intervals are well-formed (Start before End) and properly nested,
///    and the global TraceEnd is the maximum timestamp.
///
///  * Modifiable use-lists: doubly linked, sorted by timestamp, members
///    all live trace nodes, and every clean (non-dirty) read's SeenValue
///    equals the value its position governs — the equality-cut soundness
///    condition.
///
///  * Propagation queue: dirty flags and HeapIndex agree exactly, the
///    intrusive heap indices are self-consistent, and the heap property
///    (parent starts before child) holds.
///
///  * Memo indexes: chains are acyclic and back-linked, every entry's
///    stored hash matches a recomputation from its key, entries sit in
///    the bucket their hash selects, and table membership is exactly the
///    set of live read/alloc nodes.
///
///  * Arena accounting: the bytes reachable from live trace nodes (nodes,
///    trace-owned closures, allocation blocks) plus tracked mutator
///    blocks (Runtime::metaAlloc) reconcile exactly with Arena
///    liveBytes — a leak or double-free shows up as a delta.
///
/// The audit is read-only and meta-phase only. Runtime::Config::Audit
/// picks the level: Off (auditNow is a no-op), Checkpoints (explicit
/// auditNow calls only), EveryPropagation (automatic after every
/// run_core and propagate). The hooks cost one branch per propagation
/// when off, nothing per traced operation.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_RUNTIME_TRACEAUDIT_H
#define CEAL_RUNTIME_TRACEAUDIT_H

#include <cstddef>
#include <string>
#include <vector>

namespace ceal {

class Runtime;

/// The trace sanitizer. Stateless; both entry points walk the runtime's
/// entire live state.
class TraceAudit {
public:
  /// One invariant violation, human-readable.
  struct Report {
    std::vector<std::string> Violations;
    /// Counters the walk collected (useful in tests and messages).
    size_t Reads = 0, Writes = 0, Allocs = 0, Timestamps = 0;
    size_t TraceBytes = 0;

    bool ok() const { return Violations.empty(); }
    /// All violations joined with newlines ("" when ok).
    std::string summary() const;
  };

  /// Walks the runtime and returns every violation found (never aborts).
  static Report inspect(const Runtime &RT);

  /// inspect() + print-and-abort on violation; the Runtime's audit hooks
  /// call this. \p Where names the checkpoint for the failure banner.
  static void enforce(const Runtime &RT, const char *Where);

  /// Load-mode validation: a single linear sweep over a runtime freshly
  /// restored from a snapshot (runtime/Snapshot), treating every handle,
  /// pointer, and length as untrusted — each one is bounds- and
  /// alignment-checked against the serialized arena extents *before* any
  /// dereference, and validation stops at the first violation (a located
  /// diagnostic) rather than walking on through garbage. Mandatory on
  /// both snapshot load paths; deliberately cheaper than inspect() (no
  /// hash maps, no quadratic cross-checks) because it is what keeps an
  /// mmap warm start faster than re-running the core from scratch.
  static Report validateLoaded(const Runtime &RT);

private:
  /// The walker; nested so it inherits this class's friendship with
  /// Runtime and OrderList.
  struct Impl;
  /// The load-mode validator (validateLoaded); nested for the same
  /// friendship inheritance.
  struct LoadImpl;
};

} // namespace ceal

#endif // CEAL_RUNTIME_TRACEAUDIT_H
