//===- runtime/MemoTable.h - Intrusive chained memo tables -----*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small intrusive chained hash table used for the read and allocation
/// memo indexes. Nodes provide MemoNext/MemoPrev/MemoHash members; key
/// equality is the caller's business (the table only buckets by hash), so
/// one template serves both ReadNode and AllocNode.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_RUNTIME_MEMOTABLE_H
#define CEAL_RUNTIME_MEMOTABLE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ceal {

/// Mixes a sequence of 64-bit words into a hash (xorshift-multiply).
inline uint64_t hashMixWord(uint64_t H, uint64_t W) {
  H ^= W + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  H *= 0xff51afd7ed558ccdULL;
  H ^= H >> 33;
  return H;
}

/// Intrusive chained hash table over NodeT with MemoNext/MemoPrev/MemoHash.
template <typename NodeT> class MemoTable {
public:
  MemoTable() : Buckets(64, nullptr) {}

  /// Inserts \p N; N->MemoHash must already be set.
  void insert(NodeT *N) {
    // Load factor 1: every chain probe is a dependent cache miss on the
    // propagation hot path, so buckets are kept at least as numerous as
    // entries (growing at 2 measurably lengthened memo lookups).
    if (Count >= Buckets.size())
      grow();
    size_t Index = bucketIndex(N->MemoHash);
    N->MemoPrev = nullptr;
    N->MemoNext = Buckets[Index];
    if (Buckets[Index])
      Buckets[Index]->MemoPrev = N;
    Buckets[Index] = N;
    ++Count;
  }

  /// Ensures at least \p Expected buckets (rounded up to a power of two)
  /// so that \p Expected insertions proceed without an intermediate grow
  /// or rehash. Never shrinks.
  void reserve(size_t Expected) {
    size_t Want = 64;
    while (Want < Expected)
      Want <<= 1;
    if (Want > Buckets.size())
      rehashTo(Want);
  }

  /// Bulk-inserts \p N nodes (each with MemoHash already set) after a
  /// single up-front reserve. The initial run inserts every traced
  /// read/alloc into a memo index it will not probe until the first
  /// propagation, so construction defers the inserts and lands them here:
  /// a flat array walk whose bucket accesses — the random-address cache
  /// misses that dominate pay-as-you-go insertion — are hidden by a
  /// two-stage software prefetch (fetch the node line first, then the
  /// bucket line its hash names once the node line has arrived).
  void insertBulk(NodeT *const *Nodes, size_t N) {
    reserve(Count + N);
    constexpr size_t NodeAhead = 16;
    constexpr size_t BucketAhead = 8;
    for (size_t I = 0; I < N; ++I) {
      if (I + NodeAhead < N)
        __builtin_prefetch(Nodes[I + NodeAhead], 1);
      if (I + BucketAhead < N)
        __builtin_prefetch(&Buckets[bucketIndex(Nodes[I + BucketAhead]->MemoHash)],
                           1);
      NodeT *Node = Nodes[I];
      size_t Index = bucketIndex(Node->MemoHash);
      Node->MemoPrev = nullptr;
      Node->MemoNext = Buckets[Index];
      if (Buckets[Index])
        Buckets[Index]->MemoPrev = Node;
      Buckets[Index] = Node;
    }
    Count += N;
  }

  /// Removes \p N, which must currently be in the table.
  void remove(NodeT *N) {
    if (N->MemoPrev)
      N->MemoPrev->MemoNext = N->MemoNext;
    else
      Buckets[bucketIndex(N->MemoHash)] = N->MemoNext;
    if (N->MemoNext)
      N->MemoNext->MemoPrev = N->MemoPrev;
    N->MemoPrev = N->MemoNext = nullptr;
    --Count;
  }

  /// Head of the chain that would contain nodes with \p Hash.
  NodeT *chainHead(uint64_t Hash) const { return Buckets[bucketIndex(Hash)]; }

  size_t size() const { return Count; }

  /// Bucket enumeration for auditors (TraceAudit walks every chain to
  /// check acyclicity, hash placement, and membership).
  size_t bucketCount() const { return Buckets.size(); }
  NodeT *bucketHead(size_t Index) const { return Buckets[Index]; }
  /// The bucket \p Hash maps to under the current table size.
  size_t bucketFor(uint64_t Hash) const { return bucketIndex(Hash); }

private:
  size_t bucketIndex(uint64_t Hash) const {
    return Hash & (Buckets.size() - 1);
  }

  void grow() { rehashTo(Buckets.size() * 4); }

  void rehashTo(size_t NewBucketCount) {
    std::vector<NodeT *> Old = std::move(Buckets);
    Buckets.assign(NewBucketCount, nullptr);
    for (NodeT *Chain : Old) {
      while (Chain) {
        NodeT *Next = Chain->MemoNext;
        size_t Index = bucketIndex(Chain->MemoHash);
        Chain->MemoPrev = nullptr;
        Chain->MemoNext = Buckets[Index];
        if (Buckets[Index])
          Buckets[Index]->MemoPrev = Chain;
        Buckets[Index] = Chain;
        Chain = Next;
      }
    }
  }

  std::vector<NodeT *> Buckets;
  size_t Count = 0;
};

} // namespace ceal

#endif // CEAL_RUNTIME_MEMOTABLE_H
