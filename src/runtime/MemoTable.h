//===- runtime/MemoTable.h - Intrusive chained memo tables -----*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small intrusive chained hash table used for the read and allocation
/// memo indexes. Nodes embed a MemoLinks record (chain handles plus the
/// stored hash); key equality is the caller's business (the table only
/// buckets by hash), so one template serves both ReadNode and AllocNode.
///
/// Chain links are 32-bit arena handles (Arena::Handle), which is why the
/// table carries a reference to the arena that owns its nodes: every
/// probe resolves handles against that one region base.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_RUNTIME_MEMOTABLE_H
#define CEAL_RUNTIME_MEMOTABLE_H

#include "support/Arena.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ceal {

/// Mixes a sequence of 64-bit words into a hash (xorshift-multiply).
inline uint64_t hashMixWord(uint64_t H, uint64_t W) {
  H ^= W + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  H *= 0xff51afd7ed558ccdULL;
  H ^= H >> 33;
  return H;
}

/// The intrusive memo-chain record every memoized trace node embeds as a
/// member named `Memo`. Hash stores the low 32 bits of the node's 64-bit
/// memo hash — the table buckets by those bits, and key comparisons
/// re-verify the full key anyway, so the upper half buys nothing at the
/// cost of four bytes per node. Members are deliberately uninitialized
/// (the RawInit trace-node constructors skip them; Hash is stamped by the
/// tracing op and the links by table insertion).
template <typename NodeT> struct MemoLinks {
  Handle<NodeT> Next;
  Handle<NodeT> Prev;
  uint32_t Hash;
};

/// Intrusive chained hash table over NodeT with a MemoLinks member `Memo`.
/// All nodes must come from the single Arena the table is bound to.
template <typename NodeT> class MemoTable {
public:
  explicit MemoTable(Arena &A) : Mem(&A), Buckets(64, Handle<NodeT>{}) {}

  /// Resolves a chain handle (auditors and chain walks).
  NodeT *resolve(Handle<NodeT> H) const { return Mem->ptr(H); }
  /// The node after \p N on its chain, or null.
  NodeT *next(const NodeT *N) const { return Mem->ptr(N->Memo.Next); }

  /// Inserts \p N; N->Memo.Hash must already be set.
  void insert(NodeT *N) {
    // Load factor 1: every chain probe is a dependent cache miss on the
    // propagation hot path, so buckets are kept at least as numerous as
    // entries (growing at 2 measurably lengthened memo lookups).
    if (Count >= Buckets.size())
      grow();
    size_t Index = bucketIndex(N->Memo.Hash);
    Handle<NodeT> HN = Mem->handle(N);
    N->Memo.Prev = Handle<NodeT>{};
    N->Memo.Next = Buckets[Index];
    if (NodeT *Head = Mem->ptr(Buckets[Index]))
      Head->Memo.Prev = HN;
    Buckets[Index] = HN;
    ++Count;
  }

  /// Ensures at least \p Expected buckets (rounded up to a power of two)
  /// so that \p Expected insertions proceed without an intermediate grow
  /// or rehash. Never shrinks.
  void reserve(size_t Expected) {
    size_t Want = 64;
    while (Want < Expected)
      Want <<= 1;
    if (Want > Buckets.size())
      rehashTo(Want);
  }

  /// Bulk-inserts \p N nodes (each with Memo.Hash already set) after a
  /// single up-front reserve. The initial run inserts every traced
  /// read/alloc into a memo index it will not probe until the first
  /// propagation, so construction defers the inserts and lands them here:
  /// a flat array walk whose bucket accesses — the random-address cache
  /// misses that dominate pay-as-you-go insertion — are hidden by a
  /// two-stage software prefetch (fetch the node line first, then the
  /// bucket line its hash names once the node line has arrived).
  void insertBulk(NodeT *const *Nodes, size_t N) {
    reserve(Count + N);
    constexpr size_t NodeAhead = 16;
    constexpr size_t BucketAhead = 8;
    for (size_t I = 0; I < N; ++I) {
      if (I + NodeAhead < N)
        __builtin_prefetch(Nodes[I + NodeAhead], 1);
      if (I + BucketAhead < N)
        __builtin_prefetch(
            &Buckets[bucketIndex(Nodes[I + BucketAhead]->Memo.Hash)], 1);
      NodeT *Node = Nodes[I];
      size_t Index = bucketIndex(Node->Memo.Hash);
      Handle<NodeT> HN = Mem->handle(Node);
      Node->Memo.Prev = Handle<NodeT>{};
      Node->Memo.Next = Buckets[Index];
      if (NodeT *Head = Mem->ptr(Buckets[Index]))
        Head->Memo.Prev = HN;
      Buckets[Index] = HN;
    }
    Count += N;
  }

  /// Removes \p N, which must currently be in the table.
  void remove(NodeT *N) {
    if (NodeT *Prev = Mem->ptr(N->Memo.Prev))
      Prev->Memo.Next = N->Memo.Next;
    else
      Buckets[bucketIndex(N->Memo.Hash)] = N->Memo.Next;
    if (NodeT *Next = Mem->ptr(N->Memo.Next))
      Next->Memo.Prev = N->Memo.Prev;
    N->Memo.Prev = N->Memo.Next = Handle<NodeT>{};
    --Count;
  }

  /// Head of the chain that would contain nodes with \p Hash.
  NodeT *chainHead(uint64_t Hash) const {
    return Mem->ptr(Buckets[bucketIndex(Hash)]);
  }

  size_t size() const { return Count; }

  /// Bucket enumeration for auditors (TraceAudit walks every chain to
  /// check acyclicity, hash placement, and membership).
  size_t bucketCount() const { return Buckets.size(); }
  NodeT *bucketHead(size_t Index) const { return Mem->ptr(Buckets[Index]); }
  /// The bucket \p Hash maps to under the current table size.
  size_t bucketFor(uint64_t Hash) const { return bucketIndex(Hash); }

private:
  /// The snapshot subsystem serializes and restores the bucket array and
  /// count directly (chain links live inside the nodes themselves).
  friend class Snapshot;

  size_t bucketIndex(uint64_t Hash) const {
    // Bucket counts stay well under 2^32, so bucketing by the stored
    // 32-bit hash and by the full 64-bit hash agree.
    return Hash & (Buckets.size() - 1);
  }

  void grow() { rehashTo(Buckets.size() * 4); }

  void rehashTo(size_t NewBucketCount) {
    std::vector<Handle<NodeT>> Old = std::move(Buckets);
    Buckets.assign(NewBucketCount, Handle<NodeT>{});
    for (Handle<NodeT> ChainH : Old) {
      NodeT *Chain = Mem->ptr(ChainH);
      while (Chain) {
        NodeT *Next = Mem->ptr(Chain->Memo.Next);
        size_t Index = bucketIndex(Chain->Memo.Hash);
        Handle<NodeT> HC = Mem->handle(Chain);
        Chain->Memo.Prev = Handle<NodeT>{};
        Chain->Memo.Next = Buckets[Index];
        if (NodeT *Head = Mem->ptr(Buckets[Index]))
          Head->Memo.Prev = HC;
        Buckets[Index] = HC;
        Chain = Next;
      }
    }
  }

  Arena *Mem;
  std::vector<Handle<NodeT>> Buckets;
  size_t Count = 0;
};

} // namespace ceal

#endif // CEAL_RUNTIME_MEMOTABLE_H
