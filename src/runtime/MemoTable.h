//===- runtime/MemoTable.h - Intrusive chained memo tables -----*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small intrusive chained hash table used for the read and allocation
/// memo indexes. Nodes embed a MemoLinks record (chain handles plus the
/// stored hash); key equality is the caller's business (the table only
/// buckets by hash), so one template serves both ReadNode and AllocNode.
///
/// Chain links are 32-bit arena handles (Arena::Handle), which is why the
/// table carries a reference to the arena that owns its nodes: every
/// probe resolves handles against that one region base.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_RUNTIME_MEMOTABLE_H
#define CEAL_RUNTIME_MEMOTABLE_H

#include "support/Arena.h"
#include "support/SpinLock.h"
#include "support/simd/Simd.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ceal {

/// Mixes a sequence of 64-bit words into a hash (xorshift-multiply).
inline uint64_t hashMixWord(uint64_t H, uint64_t W) {
  H ^= W + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  H *= 0xff51afd7ed558ccdULL;
  H ^= H >> 33;
  return H;
}

/// The intrusive memo-chain record every memoized trace node embeds as a
/// member named `Memo`. Hash stores the low 32 bits of the node's 64-bit
/// memo hash — the table buckets by those bits, and key comparisons
/// re-verify the full key anyway, so the upper half buys nothing at the
/// cost of four bytes per node. Members are deliberately uninitialized
/// (the RawInit trace-node constructors skip them; Hash is stamped by the
/// tracing op and the links by table insertion).
template <typename NodeT> struct MemoLinks {
  Handle<NodeT> Next;
  Handle<NodeT> Prev;
  uint32_t Hash;
};

/// Intrusive chained hash table over NodeT with a MemoLinks member `Memo`.
/// All nodes must come from the single Arena the table is bound to.
template <typename NodeT> class MemoTable {
public:
  explicit MemoTable(Arena &A) : Mem(&A), Buckets(64, Handle<NodeT>{}) {}

  /// Resolves a chain handle (auditors and chain walks).
  NodeT *resolve(Handle<NodeT> H) const { return Mem->ptr(H); }
  /// The node after \p N on its chain, or null.
  NodeT *next(const NodeT *N) const { return Mem->ptr(N->Memo.Next); }

  /// Inserts \p N; N->Memo.Hash must already be set.
  void insert(NodeT *N) {
    // Load factor 1: every chain probe is a dependent cache miss on the
    // propagation hot path, so buckets are kept at least as numerous as
    // entries (growing at 2 measurably lengthened memo lookups).
    if (__builtin_expect(Sharded, 0)) {
      // The bucket array cannot move under concurrent probes; the leader
      // rehashes when the phase disarms.
      if (__atomic_load_n(&Count, __ATOMIC_RELAXED) >= Buckets.size())
        __atomic_store_n(&NeedGrow, true, __ATOMIC_RELAXED);
    } else if (!DeferGrow && Count >= Buckets.size()) {
      grow();
    }
    MaybeLockGuard L(Sharded, stripe(N->Memo.Hash));
    size_t Index = bucketIndex(N->Memo.Hash);
    Handle<NodeT> HN = Mem->handle(N);
    N->Memo.Prev = Handle<NodeT>{};
    N->Memo.Next = Buckets[Index];
    if (NodeT *Head = Mem->ptr(Buckets[Index]))
      Head->Memo.Prev = HN;
    Buckets[Index] = HN;
    bumpCount(1);
  }

  /// Ensures at least \p Expected buckets (rounded up to a power of two)
  /// so that \p Expected insertions proceed without an intermediate grow
  /// or rehash. Never shrinks.
  void reserve(size_t Expected) {
    size_t Want = 64;
    while (Want < Expected)
      Want <<= 1;
    if (Want > Buckets.size())
      rehashTo(Want);
  }

  /// Bulk-inserts \p N nodes (each with Memo.Hash already set) after a
  /// single up-front reserve. The initial run inserts every traced
  /// read/alloc into a memo index it will not probe until the first
  /// propagation, so construction defers the inserts and lands them here.
  /// The walk is blocked: each block prefetches its node lines, computes
  /// every bucket index in one vectorized gather-and-mask pass
  /// (simd::bucketIndex — the hash field is loaded by byte offset, which
  /// is why the offset is computed at runtime rather than via offsetof on
  /// a non-standard-layout node type), then runs the inserts with the
  /// bucket lines — the random-address cache misses that dominate
  /// pay-as-you-go insertion — prefetched from the precomputed indexes.
  void insertBulk(NodeT *const *Nodes, size_t N) {
    assert(!Sharded && "bulk insertion is an initial-run operation");
    reserve(Count + N);
    constexpr size_t Block = 256;
    constexpr size_t BucketAhead = 8;
    const uint32_t Mask = uint32_t(Buckets.size() - 1);
    uint32_t Idx[Block];
    for (size_t Base = 0; Base < N; Base += Block) {
      const size_t BN = N - Base < Block ? N - Base : Block;
      for (size_t I = 0; I < BN; ++I)
        __builtin_prefetch(Nodes[Base + I], 1);
      const size_t HashOff =
          size_t(reinterpret_cast<const char *>(&Nodes[Base]->Memo.Hash) -
                 reinterpret_cast<const char *>(Nodes[Base]));
      simd::bucketIndex(
          reinterpret_cast<const void *const *>(Nodes + Base), BN, HashOff,
          Mask, Idx);
      for (size_t I = 0; I < BucketAhead && I < BN; ++I)
        __builtin_prefetch(&Buckets[Idx[I]], 1);
      for (size_t I = 0; I < BN; ++I) {
        if (I + BucketAhead < BN)
          __builtin_prefetch(&Buckets[Idx[I + BucketAhead]], 1);
        NodeT *Node = Nodes[Base + I];
        size_t Index = Idx[I];
        Handle<NodeT> HN = Mem->handle(Node);
        Node->Memo.Prev = Handle<NodeT>{};
        Node->Memo.Next = Buckets[Index];
        if (NodeT *Head = Mem->ptr(Buckets[Index]))
          Head->Memo.Prev = HN;
        Buckets[Index] = HN;
      }
    }
    Count += N;
  }

  /// Removes \p N, which must currently be in the table.
  void remove(NodeT *N) {
    MaybeLockGuard L(Sharded, stripe(N->Memo.Hash));
    if (NodeT *Prev = Mem->ptr(N->Memo.Prev))
      Prev->Memo.Next = N->Memo.Next;
    else
      Buckets[bucketIndex(N->Memo.Hash)] = N->Memo.Next;
    if (NodeT *Next = Mem->ptr(N->Memo.Next))
      Next->Memo.Prev = N->Memo.Prev;
    N->Memo.Prev = N->Memo.Next = Handle<NodeT>{};
    bumpCount(-1);
  }

  /// Head of the chain that would contain nodes with \p Hash.
  NodeT *chainHead(uint64_t Hash) const {
    return Mem->ptr(Buckets[bucketIndex(Hash)]);
  }

  size_t size() const { return Count; }

  /// Bucket enumeration for auditors (TraceAudit walks every chain to
  /// check acyclicity, hash placement, and membership).
  size_t bucketCount() const { return Buckets.size(); }
  NodeT *bucketHead(size_t Index) const { return Mem->ptr(Buckets[Index]); }
  /// The packed bucket array itself, for auditors that sweep every head
  /// handle at once (TraceAudit's vectorized bounds pre-check) rather
  /// than resolving them one by one.
  const Handle<NodeT> *bucketArray() const { return Buckets.data(); }
  /// The bucket \p Hash maps to under the current table size.
  size_t bucketFor(uint64_t Hash) const { return bucketIndex(Hash); }

  /// Arms/disarms sharded (striped) mode for a parallel propagation
  /// phase. While sharded, insert/remove serialize per hash stripe, the
  /// count is maintained atomically, and bucket-array growth is deferred;
  /// disarming performs the deferred grow. Toggled single-threaded.
  void setSharded(bool On) {
    Sharded = On;
    if (!On && NeedGrow) {
      NeedGrow = false;
      if (!DeferGrow && Count >= Buckets.size())
        grow();
    }
  }
  bool sharded() const { return Sharded; }

  /// Defers bucket-array growth to a canonical point. Rehashing reverses
  /// same-bucket chain order, so WHEN a grow fires determines the chain
  /// order every later probe sees; a parallel propagation's count
  /// trajectory (removes during the phase, parked inserts applied at the
  /// join) differs from the sequential interleaving, so a mid-step grow
  /// could fire in one mode and not the other. Both modes therefore arm
  /// this for the whole propagate step and disarm at its end, where the
  /// table state — and hence the rehash — is identical. Load factor may
  /// transiently exceed 1 within the step; harmless.
  void deferGrowth(bool On) {
    DeferGrow = On;
    if (!On && Count >= Buckets.size())
      grow();
  }

  /// The stripe lock covering \p Hash's bucket. Bucket counts are powers
  /// of two and never below NumStripes, so same-bucket implies
  /// same-stripe: a caller holding this lock may walk the whole chain.
  /// Callers that probe chains while sharded (the runtime's memo
  /// lookups) must hold it across chainHead() plus the walk.
  SpinLock &stripe(uint64_t Hash) { return Stripes[Hash & (NumStripes - 1)]; }

private:
  /// The snapshot subsystem serializes and restores the bucket array and
  /// count directly (chain links live inside the nodes themselves).
  friend class Snapshot;

  size_t bucketIndex(uint64_t Hash) const {
    // Bucket counts stay well under 2^32, so bucketing by the stored
    // 32-bit hash and by the full 64-bit hash agree.
    return Hash & (Buckets.size() - 1);
  }

  void grow() { rehashTo(Buckets.size() * 4); }

  void rehashTo(size_t NewBucketCount) {
    std::vector<Handle<NodeT>> Old = std::move(Buckets);
    Buckets.assign(NewBucketCount, Handle<NodeT>{});
    for (Handle<NodeT> ChainH : Old) {
      NodeT *Chain = Mem->ptr(ChainH);
      while (Chain) {
        NodeT *Next = Mem->ptr(Chain->Memo.Next);
        size_t Index = bucketIndex(Chain->Memo.Hash);
        Handle<NodeT> HC = Mem->handle(Chain);
        Chain->Memo.Prev = Handle<NodeT>{};
        Chain->Memo.Next = Buckets[Index];
        if (NodeT *Head = Mem->ptr(Buckets[Index]))
          Head->Memo.Prev = HC;
        Buckets[Index] = HC;
        Chain = Next;
      }
    }
  }

  void bumpCount(int64_t Delta) {
    if (__builtin_expect(Sharded, 0))
      __atomic_fetch_add(&Count, size_t(Delta), __ATOMIC_RELAXED);
    else
      Count += size_t(Delta);
  }

  static constexpr size_t NumStripes = 64;

  Arena *Mem;
  std::vector<Handle<NodeT>> Buckets;
  size_t Count = 0;
  bool Sharded = false;
  /// Set under sharded mode when the load factor crosses 1; consumed by
  /// setSharded(false).
  bool NeedGrow = false;
  /// Growth parked until deferGrowth(false); see that method.
  bool DeferGrow = false;
  /// Per-hash-stripe locks (one cache line each would be overkill: these
  /// are uncontended except when two workers memoize colliding keys).
  SpinLock Stripes[NumStripes];
};

} // namespace ceal

#endif // CEAL_RUNTIME_MEMOTABLE_H
