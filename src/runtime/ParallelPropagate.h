//===- runtime/ParallelPropagate.h - Parallel change propagation -*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel change propagation over certified interval groups. At the
/// start of propagate(), the pending dirty reads are clustered exactly as
/// the determinacy-race detector would (RaceCheck::clusterDirty): sorted
/// by start timestamp and merged into clusters of overlapping [Start,
/// End] trace intervals. Clusters are disjoint timestamp ranges, so the
/// re-executions they trigger build trace in disjoint regions of the
/// order-maintenance list; the propagator splits the cluster sequence
/// contiguously into up to Config::ParallelThreads groups and hands each
/// group to a worker with its own priority queue, its own arena shard
/// (support/Arena shard mode), and sharded memo-table access.
///
/// The certification is dynamic and conservative. Before the phase, each
/// group's region bounds are isolated to order-list group boundaries
/// (OrderList::isolateBoundary) so structural OM mutations cannot cross
/// regions. During the phase, any effect that escapes its region — a
/// write invalidating a reader outside the invalidator's bounds, or a
/// reader whose interval is still open — is *forwarded* to a shared
/// overflow list instead of being handled by the wrong worker. After the
/// join, the sequential loop in propagate() drains the overflow (and any
/// stragglers) to the usual fixpoint, and the phase marks the sticky
/// fallback: a workload that demonstrably couples its intervals (the
/// paper's exptrees) runs sequentially from then on. Output values and
/// trace shape are therefore identical to a sequential propagation —
/// enforced by the oracle harness digest comparison in the tests.
///
/// Kill switch: Config::ParallelPropagate defaults off, and the
/// CEAL_PARALLEL_PROPAGATE environment variable overrides in either
/// direction (see Runtime::Config).
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_RUNTIME_PARALLELPROPAGATE_H
#define CEAL_RUNTIME_PARALLELPROPAGATE_H

#include "runtime/Runtime.h"
#include "support/SpinLock.h"

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace ceal {

/// The parallel propagator; owned by Runtime (present only when the
/// feature is enabled) and driven from Runtime::propagate().
class ParallelPropagate {
public:
  ParallelPropagate(Runtime &R, unsigned Threads);
  ParallelPropagate(const ParallelPropagate &) = delete;
  ParallelPropagate &operator=(const ParallelPropagate &) = delete;
  ~ParallelPropagate();

  /// Attempts one parallel phase over the current dirty set. Returns
  /// false on refusal (nothing consumed: the dirty heap is untouched and
  /// the sequential loop propagates as always); returns true after a
  /// completed phase (worker state merged, overflow re-queued on the
  /// main heap for the sequential drain).
  bool tryRun();

  /// Queues a cross-region (or open-interval) invalidation for the
  /// post-join sequential drain. Called from Runtime::invalidate with
  /// the owning modifiable's stripe held; \p R is dirty and in no
  /// worker heap.
  void forward(ReadNode *R);

  /// Purges \p R from the overflow list (no-op if absent). Called from
  /// Runtime::revokeRead under the same stripe forward() runs under, so
  /// a revoked read can never leave a dangling overflow entry.
  void revokedWhileQueued(ReadNode *R);

  /// True once a phase observed a dynamic cross-region conflict (every
  /// later propagation runs sequentially).
  bool stickyFallback() const { return Sticky; }

  unsigned threadCount() const { return NumThreads; }

private:
  void poolMain(unsigned Id);
  void runWorker(unsigned Id);
  void finishWorker();

  Runtime &RT;
  const unsigned NumThreads;

  /// Per-worker execution strands (index = worker id; 0 is the leader).
  Runtime::ExecState States[PropagationProfile::MaxWorkers];
  uint64_t BusyNs[PropagationProfile::MaxWorkers] = {};

  /// Phase handshake: the leader bumps PhaseSeq to release the parked
  /// pool threads, runs group 0 itself, and waits for Remaining to hit
  /// zero. Pool threads with id >= ActiveWorkers skip the phase.
  std::mutex Mu;
  std::condition_variable Cv;
  std::condition_variable DoneCv;
  uint64_t PhaseSeq = 0;
  unsigned ActiveWorkers = 0;
  unsigned Remaining = 0;
  bool Shutdown = false;
  std::vector<std::thread> Pool;

  /// Cross-region invalidations parked for the post-join drain.
  SpinLock OverflowLock;
  std::vector<ReadNode *> Overflow;
  uint64_t ForwardedCount = 0;
  bool AnyForwarded = false;

  bool Sticky = false;
};

} // namespace ceal

#endif // CEAL_RUNTIME_PARALLELPROPAGATE_H
