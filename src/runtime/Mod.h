//===- runtime/Mod.h - Typed modifiable references --------------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typed modifiables — the paper's first "future directions" item
/// (Sec. 10, "Syntax and Types for Modifiables"): CEAL's `read`/`write`
/// traffic in `void *` and forces coercions at every use; the paper
/// proposes modifiable fields that carry their content type. C++
/// templates provide exactly that: `Mod<T>` is a modifiable whose reads
/// and writes are statically typed, encoded losslessly into the runtime's
/// word-sized representation.
///
/// \code
///   Closure *gotLen(Runtime &RT, double Len, Mod<int64_t> Out) {
///     Out.write(RT, static_cast<int64_t>(Len));
///     return nullptr;
///   }
///   Closure *core(Runtime &RT, Mod<double> In, Mod<int64_t> Out) {
///     return In.readTail<&gotLen>(RT, Out);
///   }
/// \endcode
///
/// Mod<T> is a one-word handle (the untyped Modref pointer), so it can be
/// passed through closures, stored in structures, and mixed freely with
/// the untyped API.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_RUNTIME_MOD_H
#define CEAL_RUNTIME_MOD_H

#include "runtime/Runtime.h"

namespace ceal {

/// A typed modifiable reference holding a T.
template <WordSized T> class Mod {
public:
  Mod() = default;
  explicit Mod(Modref *Raw) : Ref(Raw) {}

  /// Meta-level constructors (mutator side).
  static Mod create(Runtime &RT) { return Mod(RT.modref()); }
  static Mod create(Runtime &RT, T Initial) {
    return Mod(RT.modref<T>(Initial));
  }

  /// Core-level constructor: memo-keyed like Runtime::coreModref.
  template <typename... Keys> static Mod coreCreate(Runtime &RT, Keys... Ks) {
    return Mod(RT.coreModref(Ks...));
  }

  bool valid() const { return Ref != nullptr; }
  Modref *raw() const { return Ref; }

  //===--------------------------------------------------------------===//
  // Core operations
  //===--------------------------------------------------------------===//

  /// Traced write.
  void write(Runtime &RT, T Value) const { RT.writeT<T>(Ref, Value); }

  /// Traced read tail-jumping to \p Fn, whose first core parameter must
  /// be exactly T: `Closure *Fn(Runtime &, T Value, Rest...)`.
  template <auto Fn, typename... Rest>
  Closure *readTail(Runtime &RT, Rest... Rs) const {
    static_assert(
        std::is_same_v<
            std::tuple_element_t<
                0, typename CoreFnTraits<decltype(Fn)>::ArgsTuple>,
            T>,
        "continuation's first parameter must match the Mod's type");
    return RT.readTail<Fn>(Ref, Rs...);
  }

  //===--------------------------------------------------------------===//
  // Meta operations
  //===--------------------------------------------------------------===//

  void modify(Runtime &RT, T Value) const { RT.modifyT<T>(Ref, Value); }
  T deref(Runtime &RT) const { return RT.derefT<T>(Ref); }

  bool operator==(const Mod &O) const { return Ref == O.Ref; }

private:
  Modref *Ref = nullptr;
};

// Mod<T> is trivially copyable and one word wide, so the generic
// toWord/fromWord codec moves it through closures unchanged.
static_assert(sizeof(Mod<int64_t>) == sizeof(Modref *),
              "Mod<T> must stay a one-word handle so it is closure-safe");
static_assert(WordSized<Mod<int64_t>>,
              "Mod<T> must be directly usable as a closure argument");

} // namespace ceal

#endif // CEAL_RUNTIME_MOD_H
