//===- runtime/Word.h - Word-sized value encoding --------------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CL values are word-sized (Sec. 4.1: integers, modifiable locations,
/// pointers). The run-time system stores everything as 64-bit words; this
/// header provides the lossless encode/decode used by the typed closure
/// veneer, which is how C++ templates give us the paper's monomorphization
/// (Sec. 6.3) for free.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_RUNTIME_WORD_H
#define CEAL_RUNTIME_WORD_H

#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace ceal {

/// The universal value type of the run-time system.
using Word = uint64_t;

static_assert(sizeof(void *) <= sizeof(Word),
              "CEAL runtime requires pointers to fit in a 64-bit word");

/// True for types that can live in a modifiable or a closure slot.
template <typename T>
concept WordSized = std::is_trivially_copyable_v<T> && sizeof(T) <= 8;

/// Encodes \p Value into a word, zero-extending smaller types.
template <WordSized T> Word toWord(T Value) {
  if constexpr (sizeof(T) == sizeof(Word)) {
    return std::bit_cast<Word>(Value);
  } else {
    Word W = 0;
    std::memcpy(&W, &Value, sizeof(T));
    return W;
  }
}

/// Decodes a word produced by toWord<T>.
template <WordSized T> T fromWord(Word W) {
  if constexpr (sizeof(T) == sizeof(Word)) {
    return std::bit_cast<T>(W);
  } else {
    alignas(T) unsigned char Buf[sizeof(T)];
    std::memcpy(Buf, &W, sizeof(T));
    return std::bit_cast<T>(Buf);
  }
}

} // namespace ceal

#endif // CEAL_RUNTIME_WORD_H
