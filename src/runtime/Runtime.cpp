//===- runtime/Runtime.cpp - Self-adjusting-computation RTS ---------------===//
//
// Change-propagation mechanics, following the paper and its substrates:
//
//  * Execution is trampolined (Sec. 6.2): core functions return the next
//    closure; a read hands its dependent closure to the trampoline, so a
//    read body is the rest of the tail-call chain — exactly the dynamic
//    extent normalization assigns to it (Sec. 5).
//
//  * Each read owns a time interval (Start, End). Change propagation
//    re-executes the earliest invalidated read inside its own interval:
//    fresh trace is created at the time cursor, and a read or allocation
//    performed during re-execution that matches an not-yet-reached node of
//    the old trace *splices*: the skipped old prefix is revoked and the
//    matched suffix is kept (memoization, Sec. 1). When re-execution
//    finishes without a match, the remainder of the old interval is
//    revoked.
//
//  * Modifiables are imperative and multi-write (Acar et al., POPL 2008):
//    per modifiable, reads and writes are kept in timestamp order, and a
//    write invalidates exactly the readers between itself and the next
//    write whose seen value actually changed.
//
//  * Blocks freed by revoked allocations are reclaimed at the end of
//    propagation (Hammer & Acar, ISMM 2008), after every read that could
//    reference them has been revoked or re-executed.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include "runtime/ParallelPropagate.h"
#include "runtime/TraceAudit.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace ceal;

namespace {

/// Striped locks serializing per-modifiable state during a parallel
/// propagation phase (Runtime::ParArmed): one modifiable's stripe covers
/// its use-list links, the governing-write caches and seen values of its
/// readers, and the forwarding of its readers' invalidations. Process-wide
/// and hashed by address; outside a phase every MaybeLockGuard below is
/// one predictable branch.
SpinLock ModrefLocks[512];

SpinLock &modrefLock(const Modref *M) {
  return ModrefLocks[(reinterpret_cast<uintptr_t>(M) >> 3) & 511];
}

} // namespace

Runtime::Runtime(const Config &C) : Cfg(C) {
  Main.Cursor = Om.base();
  TraceEnd = Main.Cursor;
  GcAllocMark = 0;
  Main.Prof.Enabled = Cfg.EnableProfile;
  // Kill switch: the parallel propagator exists only when explicitly
  // enabled, and CEAL_PARALLEL_PROPAGATE overrides the config in either
  // direction (>= 2 enables with that thread count, 0/1 disables) so CI
  // can sweep thread counts without rebuilding harnesses.
  bool WantParallel = Cfg.ParallelPropagate;
  unsigned Threads = Cfg.ParallelThreads;
  if (const char *Env = std::getenv("CEAL_PARALLEL_PROPAGATE")) {
    char *EnvEnd = nullptr;
    long N = std::strtol(Env, &EnvEnd, 10);
    if (EnvEnd != Env) {
      WantParallel = N >= 2;
      if (N >= 2)
        Threads = static_cast<unsigned>(N);
    }
  }
  if (WantParallel) {
    Threads = std::clamp(Threads, 2u, PropagationProfile::MaxWorkers);
    Cfg.ParallelPropagate = true;
    Cfg.ParallelThreads = Threads;
    Par = std::make_unique<ParallelPropagate>(*this, Threads);
  }
}

Runtime::~Runtime() = default; // Arena reclaims all trace storage.

//===----------------------------------------------------------------------===//
// Small helpers
//===----------------------------------------------------------------------===//

template <typename NodeT> NodeT *Runtime::newNode() {
  // The simulation knobs are off in every real configuration; keep their
  // work (and the out-of-line GC call) behind one predictable branch.
  if (Cfg.HeapLimitBytes || Cfg.SimSpinPerNode) {
    maybeSimulateGc();
    // Comparator cost model: per-operation boxing/interpretation work.
    uint64_t X = 0x9e3779b97f4a7c15ULL;
    for (unsigned I = 0; I < Cfg.SimSpinPerNode; ++I)
      X = X * 6364136223846793005ULL + 1442695040888963407ULL;
    asm volatile("" : : "r"(X));
  }
  void *Raw = Mem.allocate(sizeof(NodeT) + Cfg.BoxBytesPerNode);
  // RawInit contract: every caller stamps, links, and memo-keys the node
  // before anything inspects it (audits run only between core phases), so
  // the default constructor's zero stores would all be dead.
  return new (Raw) NodeT(TraceNode::RawInit{});
}

template <typename NodeT> void Runtime::destroyNode(NodeT *N) {
  N->~NodeT();
  Mem.deallocate(N, sizeof(NodeT) + Cfg.BoxBytesPerNode);
}

void Runtime::freeClosure(Closure *C) { Mem.deallocate(C, C->byteSize()); }

OmNode *Runtime::stampAfterCursor(OmItem Item) {
  ExecState &E = exec();
  if (E.Prof.Enabled)
    ++E.Prof.OmInserts;
  E.Cursor = Om.insertAfter(E.Cursor, Item);
  return E.Cursor;
}

/// insertUse specialized for construction: the cursor is the global
/// timestamp maximum, so \p U always belongs at the tail of \p M's use
/// list and the order query of the general path (three dependent loads
/// through the timestamp and its group) is dead weight. Correct whenever
/// no interval is being re-executed, independent of any fast-path config.
void Runtime::insertUseTail(Modref *M, Use *U) {
  Use *T = Mem.ptr(M->Tail);
  assert((!T || OrderList::precedes(Om.nodeAt(T->Start), Om.nodeAt(U->Start))) &&
         "construction use out of timestamp order");
  Handle<Use> HU = Mem.handle(U);
  U->PrevUse = M->Tail;
  U->NextUse = Handle<Use>{};
  if (T)
    T->NextUse = HU;
  else
    M->Head = HU;
  M->Tail = HU;
  M->Hint = HU;
  if (U->Kind == TraceKind::Read)
    static_cast<ReadNode *>(U)->Gov = writeGoverning(U);
  ExecState &E = exec();
  if (E.Prof.Enabled)
    E.Prof.UseScan.record(0);
}

/// Inserts \p U into its modifiable's use list at the position given by
/// its timestamp. The placement scan starts from the modifiable's cursor
/// hint (the use most recently inserted) and walks toward the position in
/// either direction, so an initial run appends in O(1) and mid-interval
/// re-execution pays O(distance from the previous insertion) instead of
/// O(uses after the position). Also seeds the governing-write cache from
/// the predecessor.
void Runtime::insertUse(Modref *M, Use *U) {
  ExecState &E = exec();
  Use *T = Mem.ptr(M->Tail);
  OmNode *UStart = Om.nodeAt(U->Start);
  Handle<Use> HU = Mem.handle(U);
  if (!T || OrderList::precedes(Om.nodeAt(T->Start), UStart)) {
    // Tail append, including the first use of a fresh modifiable: no
    // placement scan, no hint to consult. This is every insertion of the
    // initial run and the overwhelmingly common case in re-execution.
    U->PrevUse = M->Tail;
    U->NextUse = Handle<Use>{};
    if (T)
      T->NextUse = HU;
    else
      M->Head = HU;
    M->Tail = HU;
    M->Hint = HU;
    if (U->Kind == TraceKind::Read)
      static_cast<ReadNode *>(U)->Gov = writeGoverning(U);
    if (E.Prof.Enabled)
      E.Prof.UseScan.record(0);
    return;
  }
  uint64_t Steps = 0;
  Use *After = M->Hint ? Mem.ptr(M->Hint) : T;
  // Too late: back up until the candidate precedes U.
  while (After && OrderList::precedes(UStart, Om.nodeAt(After->Start))) {
    After = Mem.ptr(After->PrevUse);
    ++Steps;
  }
  // Too early (stale hint): advance while the successor still precedes U.
  for (;;) {
    Use *Next = After ? Mem.ptr(After->NextUse) : Mem.ptr(M->Head);
    if (!Next || OrderList::precedes(UStart, Om.nodeAt(Next->Start)))
      break;
    After = Next;
    ++Steps;
  }
  if (After) {
    U->PrevUse = Mem.handle(After);
    U->NextUse = After->NextUse;
    After->NextUse = HU;
  } else {
    U->PrevUse = Handle<Use>{};
    U->NextUse = M->Head;
    M->Head = HU;
  }
  if (U->Kind == TraceKind::Read)
    static_cast<ReadNode *>(U)->Gov = writeGoverning(U);
  if (Use *Next = Mem.ptr(U->NextUse))
    Next->PrevUse = HU;
  else
    M->Tail = HU;
  M->Hint = HU;
  E.S.UseScanSteps += Steps;
  if (E.Prof.Enabled)
    E.Prof.UseScan.record(Steps);
}

void Runtime::unlinkUse(Use *U) {
  Modref *M = Mem.ptr(U->Ref);
  Handle<Use> HU = Mem.handle(U);
  if (M->Hint == HU)
    M->Hint = U->PrevUse ? U->PrevUse : U->NextUse;
  if (Use *Prev = Mem.ptr(U->PrevUse))
    Prev->NextUse = U->NextUse;
  else
    M->Head = U->NextUse;
  if (Use *Next = Mem.ptr(U->NextUse))
    Next->PrevUse = U->PrevUse;
  else
    M->Tail = U->PrevUse;
  U->PrevUse = U->NextUse = Handle<Use>{};
}

/// The value a read at this position observes: the latest preceding
/// traced write (cached on the read itself), else the modifiable's
/// meta-written initial value.
Word Runtime::valueGoverning(const ReadNode *R) const {
  if (const WriteNode *G = Mem.ptr(R->Gov))
    return G->Value;
  return Mem.ptr(R->Ref)->Initial;
}

/// The latest traced write strictly preceding U in its use list, derived
/// in O(1): the predecessor is either that write itself or a read whose
/// cache names it. Writes therefore need not store the cache.
Handle<WriteNode> Runtime::writeGoverning(const Use *U) const {
  Use *P = Mem.ptr(U->PrevUse);
  if (!P)
    return Handle<WriteNode>{};
  if (P->Kind == TraceKind::Write)
    return handle_cast<WriteNode>(U->PrevUse);
  return static_cast<ReadNode *>(P)->Gov;
}

//===----------------------------------------------------------------------===//
// Meta interface
//===----------------------------------------------------------------------===//

Modref *Runtime::modref() {
  void *Raw = metaAlloc(sizeof(Modref));
  return new (Raw) Modref();
}

void Runtime::metaFree(Modref *M) {
  assert(!M->Head && "freeing a modifiable with live traced uses");
  M->~Modref();
  metaRelease(M, sizeof(Modref));
}

void Runtime::modify(Modref *M, Word V) {
  assert(CurPhase == Phase::Meta && "modify is a mutator operation");
  M->Initial = V;
  // Readers governed by the initial value are the prefix of the use list
  // up to the first traced write.
  for (Use *U = Mem.ptr(M->Head); U && U->Kind == TraceKind::Read;
       U = Mem.ptr(U->NextUse)) {
    auto *R = static_cast<ReadNode *>(U);
    if (R->SeenValue != V || Cfg.DisableEqualityCut)
      invalidate(R);
  }
}

Word Runtime::deref(const Modref *M) const {
  assert(CurPhase == Phase::Meta && "deref is a mutator operation");
  // The latest traced write is the tail itself or the tail's cached
  // governing write; no backward walk.
  const Use *T = Mem.ptr(M->Tail);
  if (!T)
    return M->Initial;
  const WriteNode *W = T->Kind == TraceKind::Write
                           ? static_cast<const WriteNode *>(T)
                           : Mem.ptr(static_cast<const ReadNode *>(T)->Gov);
  return W ? W->Value : M->Initial;
}

void Runtime::run(Closure *C) {
  assert(CurPhase == Phase::Meta && "run_core is a mutator operation");
  CurPhase = Phase::Running;
  Main.Cursor = TraceEnd; // Append this run's trace after all previous runs.
  const bool FastPath = !Cfg.DisableConstructionFastPath;
  uint64_t Allocs0 = Main.Prof.Enabled ? Mem.allocationCount() : 0;
  if (FastPath)
    Om.beginAppend(); // Construction stamps in monotone order.
  {
    ProfileTimer T(Main.Prof, Main.Prof.RunCoreNs);
    trampoline(C);
    // The memo inserts deferred during construction must land before the
    // meta phase resumes: propagation probes the indexes, and the audits
    // check exact membership. Counted inside RunCoreNs (it is part of the
    // from-scratch cost), itemized under MemoBuildNs.
    flushConstructionMemo();
  }
  if (FastPath)
    Om.finalizeAppend();
  if (Main.Prof.Enabled) {
    ++Main.Prof.RunCoreCalls;
    Main.Prof.ArenaAllocs += Mem.allocationCount() - Allocs0;
  }
  TraceEnd = Main.Cursor;
  CurPhase = Phase::Meta;
  if (Cfg.Audit == AuditLevel::EveryPropagation)
    auditNow("after run_core");
}

void Runtime::reserveTrace(size_t ExpectedOps) {
  // Ratios measured across the bench apps: reads and allocations are each
  // roughly a third to a half of traced operations, timestamps about 1.5x
  // (two per read, one per write/alloc), and a traced operation retains
  // about 80 arena bytes under the compressed node layouts (trace node,
  // closure, user block).
  ReadMemo.reserve(ExpectedOps / 2);
  AllocMemo.reserve(ExpectedOps / 2);
  PendingReadMemo.reserve(ExpectedOps / 2);
  PendingAllocMemo.reserve(ExpectedOps / 2);
  Main.PendingReads.reserve(ExpectedOps / 2);
  Om.reserve(ExpectedOps + ExpectedOps / 2);
#ifdef CEAL_WIDE_TRACE
  constexpr size_t BytesPerOp = 128;
#else
  constexpr size_t BytesPerOp = 80;
#endif
  constexpr size_t MaxReserve = size_t(1) << 30;
  Mem.reserve(std::min(ExpectedOps * BytesPerOp, MaxReserve));
}

void Runtime::flushConstructionMemo() {
  if (PendingReadMemo.empty() && PendingAllocMemo.empty())
    return;
  ProfileTimer T(Main.Prof, Main.Prof.MemoBuildNs);
  ReadMemo.insertBulk(PendingReadMemo.data(), PendingReadMemo.size());
  PendingReadMemo.clear();
  AllocMemo.insertBulk(PendingAllocMemo.data(), PendingAllocMemo.size());
  PendingAllocMemo.clear();
}

void Runtime::propagate() {
  assert(CurPhase == Phase::Meta && "propagate is a mutator operation");
  CurPhase = Phase::Propagating;
  ++Main.S.Propagations;
  if (Cfg.RaceCheck)
    Race.beginPropagate(*this, Cfg.RaceCheckIntervals);
  {
    ProfileTimer Total(Main.Prof, Main.Prof.PropagateNs);
    // Memo-bucket growth is parked for the whole step so it fires at one
    // canonical point regardless of propagation mode — rehash order, and
    // with it every later probe's candidate choice, must not depend on
    // whether the step ran parallel (see MemoTable::deferGrowth).
    ReadMemo.deferGrowth(true);
    AllocMemo.deferGrowth(true);
    // The parallel phase drains the certified disjoint groups; whatever
    // it could not take (refusal, forwarded cross-region work, stragglers
    // marked after the join) is propagated by the sequential loop below,
    // which is also the only propagator when the feature is off.
    if (Par)
      Par->tryRun();
    for (;;) {
      ReadNode *R;
      {
        ProfileTimer T(Main.Prof, Main.Prof.QueueNs);
        R = heapPopMin(Main);
      }
      if (!R)
        break;
      if (Main.Prof.Enabled)
        ++Main.Prof.QueuePops;
      if (!R->isDirty())
        continue;
      R->setDirty(false);
      if (Race.Active)
        Race.setCurrent(R);
      reexecute(R);
    }
    flushDeferredFrees();
    ReadMemo.deferGrowth(false);
    AllocMemo.deferGrowth(false);
  }
  if (Race.Active)
    Race.finishPropagate();
  CurPhase = Phase::Meta;
  if (Cfg.Audit == AuditLevel::EveryPropagation)
    auditNow("after propagate");
}

void Runtime::auditNow(const char *Where) const {
  if (Cfg.Audit == AuditLevel::Off)
    return;
  TraceAudit::enforce(*this, Where);
}

MemoryStats Runtime::memoryStats() const {
  assert(CurPhase == Phase::Meta &&
         "memory accounting requires a quiescent trace");
  MemoryStats S;
  const size_t Box = Cfg.BoxBytesPerNode;
  for (const OmNode *N = Om.base()->Next; N; N = N->Next) {
    ++S.Timestamps;
    OmItem Item = N->Item;
    if (!Item || isEndItem(Item))
      continue;
    const TraceNode *T = itemNode(Mem, Item);
    switch (T->Kind) {
    case TraceKind::Read: {
      const auto *R = static_cast<const ReadNode *>(T);
      ++S.Reads;
      S.ReadBytes += Arena::accountedSize(sizeof(ReadNode) + Box);
      if (const Closure *C = Mem.ptr(R->Clo))
        S.ClosureBytes += Arena::accountedSize(C->byteSize());
      break;
    }
    case TraceKind::Write:
      ++S.Writes;
      S.WriteBytes += Arena::accountedSize(sizeof(WriteNode) + Box);
      break;
    case TraceKind::Alloc: {
      const auto *A = static_cast<const AllocNode *>(T);
      ++S.Allocs;
      S.AllocBytes += Arena::accountedSize(sizeof(AllocNode) + Box);
      if (const Closure *Init = Mem.ptr(A->Init))
        S.ClosureBytes += Arena::accountedSize(Init->byteSize());
      if (A->Size)
        S.UserBlockBytes += Arena::accountedSize(A->Size);
      break;
    }
    }
  }
  S.MetaBytes = MetaBytes;
  S.OmBytes = Om.arena().liveBytes();
  S.MemoIndexBytes = ReadMemo.bucketCount() * sizeof(Handle<ReadNode>) +
                     AllocMemo.bucketCount() * sizeof(Handle<AllocNode>);
  S.ArenaLiveBytes = Mem.liveBytes();
  S.ArenaMaxLiveBytes = Mem.maxLiveBytes();
  S.ArenaBumpUsedBytes = Mem.bumpUsedBytes();
  return S;
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

/// Runs the closure chain rooted at \p C. Returns true if the chain ended
/// in a memo splice (the remainder of the computation was recovered from
/// the old trace) rather than by running to completion.
///
/// Reads begun on this trampoline have their interval ends stamped here,
/// innermost (most recent) first, which produces the proper nesting
/// r1.start < r2.start < ... < r2.end < r1.end.
bool Runtime::trampoline(Closure *C) {
  ExecState &E = exec();
  size_t PendingBase = E.PendingReads.size();
  bool DidSplice = false;
  while (C) {
    if (E.Prof.Enabled)
      ++E.Prof.ClosureDispatches;
    // Hand the parked substitution value (read value, block address) to
    // the closure and clear it: only the dispatch immediately after the
    // read/alloc that parked it may consume it.
    Word Sub = E.PendingSubst;
    E.PendingSubst = 0;
    Closure *Next = C->fn()(*this, C, Sub);
    if (!C->ownedByTrace())
      freeClosure(C);
    C = Next;
    if (E.SplicedFlag) {
      E.SplicedFlag = false;
      DidSplice = true;
      assert(!C && "a spliced read must be returned immediately");
      break;
    }
  }
  for (size_t I = E.PendingReads.size(); I > PendingBase; --I) {
    ReadNode *R = E.PendingReads[I - 1];
    Handle<OmNode> EndH = Om.handleOf(stampAfterCursor(endItemOf(Mem, R)));
    // During a parallel phase the end stamp races with cross-region
    // invalidators inspecting the interval (they treat a null End as
    // "open" and forward); publish it with release ordering.
    if (__builtin_expect(ParArmed, 0))
      R->endRelease(EndH);
    else
      R->End = EndH;
  }
  E.PendingReads.resize(PendingBase);
  return DidSplice;
}

Closure *Runtime::read(Modref *M, Closure *C) {
  assert(CurPhase != Phase::Meta && "read is a core operation");
  ExecState &E = exec();
  // The modifiable's header line is not touched until the use-list link,
  // ~50ns of node setup from now; start the (usually cold) fill early.
  __builtin_prefetch(M, 1);
  // SaSML-style simulation: the basic translation allocates one heap
  // continuation per tail jump; model that garbage with transient
  // allocations of a typical boxed-continuation size, so a bounded heap
  // fills at a realistic rate.
  constexpr size_t SimContinuationBytes = 256;
  for (unsigned I = 0; I < Cfg.ExtraAllocsPerRead; ++I) {
    void *Extra = Mem.allocate(SimContinuationBytes);
    Mem.deallocate(Extra, SimContinuationBytes);
  }
  // Construction (no interval being re-executed) never probes the memo
  // index, so its inserts are deferred to the bulk build at the end of
  // run(). The hash itself is still computed here, while the closure's
  // key words sit in cache (hashing at flush time was measurably slower:
  // it re-misses on every closure line).
  const bool EagerMemo = E.IntervalEnd || Cfg.DisableConstructionFastPath;
  uint64_t Hash = readMemoHash(M, C);
  if (E.IntervalEnd) {
    ReadNode *Hit;
    {
      ProfileTimer T(E.Prof, E.Prof.MemoLookupNs);
      // Sharded probe: the stripe serializes the chain walk against
      // concurrent inserts/removes by other workers. Any surviving hit
      // lies in this worker's own reuse window (its own region), so the
      // splice below needs no foreign coordination.
      MaybeLockGuard ML(ParArmed, ReadMemo.stripe(Hash));
      Hit = findReadMemo(M, C, Hash);
    }
    if (E.Prof.Enabled)
      ++E.Prof.MemoLookups;
    if (Hit) {
      ++E.S.MemoReadHits;
      if (Race.Active)
        Race.onMemoHit();
      assert(!C->ownedByTrace() && "memo-spliced closure must be transient");
      freeClosure(C);
      revokeInterval(E.Cursor, Om.nodeAt(Hit->Start));
      E.Cursor = Om.nodeAt(Hit->End);
      E.SplicedFlag = true;
      return nullptr;
    }
  }
  ++E.S.ReadsTraced;
  ReadNode *R = newNode<ReadNode>();
  R->Ref = Mem.handle(M);
  R->Clo = Mem.handle(C);
  C->setOwnedByTrace(true);
  R->Start = Om.handleOf(stampAfterCursor(itemOf(Mem, R)));
  Word V;
  {
    // The use-list link, the governing-write derivation, and the seen
    // value must be one atomic step against concurrent writers of M
    // during a parallel phase (a foreign write sweeping this list both
    // retargets Gov and compares SeenValue).
    MaybeLockGuard ML(ParArmed, modrefLock(M));
    if (E.IntervalEnd)
      insertUse(M, R);
    else
      insertUseTail(M, R);
    V = valueGoverning(R);
    R->SeenValue = V;
  }
  // The value reaches the closure through the trampoline's substitution
  // register, not a frame slot (the frame has none for it).
  E.PendingSubst = V;
  if (E.Prof.Enabled)
    ++E.Prof.MemoInserts;
  // Propagation both probes and revokes the memo index, so its inserts
  // must be immediate; construction defers them to the bulk build. A
  // parallel phase parks them instead: the join applies all phase
  // inserts in worker-id order, keeping bucket-chain order (and hence
  // every later probe's candidate choice) sequential-identical.
  R->Memo.Hash = static_cast<uint32_t>(Hash);
  if (ParArmed) {
    R->setMemoDeferredAtomic();
    E.PhaseReadMemo.push_back(R);
  } else if (EagerMemo) {
    ReadMemo.insert(R);
  } else {
    PendingReadMemo.push_back(R);
  }
  if (Race.Active)
    Race.onRead(M, R);
  E.PendingReads.push_back(R);
  return C;
}

void Runtime::write(Modref *M, Word V) {
  assert(CurPhase != Phase::Meta && "write is a core operation");
  ExecState &E = exec();
  __builtin_prefetch(M, 1); // See read(): cold until the use-list link.
  ++E.S.WritesTraced;
  if (Race.Active)
    Race.onWrite(M);
  WriteNode *W = newNode<WriteNode>();
  W->Ref = Mem.handle(M);
  W->Value = V;
  W->Start = Om.handleOf(stampAfterCursor(itemOf(Mem, W)));
  // The whole link-plus-sweep is one critical section per modifiable:
  // the sweep invalidates (possibly forwarding) under the same stripe,
  // so a reader revocation elsewhere can never interleave mid-sweep.
  MaybeLockGuard ML(ParArmed, modrefLock(M));
  if (!M->Head) {
    // Fresh modifiable, no trace history: nothing to scan for placement,
    // no governing-write bookkeeping to derive, no readers downstream to
    // retarget or invalidate. This covers every write of the initial run
    // against a just-allocated modifiable (the common CEAL idiom: each
    // output cell is written exactly once, right after its allocation).
    W->PrevUse = W->NextUse = Handle<Use>{};
    M->Head = M->Tail = M->Hint = Mem.handle(static_cast<Use *>(W));
    if (E.Prof.Enabled)
      E.Prof.UseScan.record(0);
    return;
  }
  if (!E.IntervalEnd) {
    // Construction with trace history on the modifiable (a multi-write
    // modref): still a guaranteed tail append, with no readers after it
    // to retarget.
    insertUseTail(M, W);
    return;
  }
  insertUse(M, W);
  // This write governs the readers between itself and the next write:
  // retarget their governing-write cache and invalidate those that saw a
  // different value. The first non-read successor (if any) is the next
  // write, whose previous-write pointer becomes W.
  Handle<WriteNode> HW = Mem.handle(W);
  for (Use *U = Mem.ptr(W->NextUse); U && U->Kind == TraceKind::Read;
       U = Mem.ptr(U->NextUse)) {
    auto *R = static_cast<ReadNode *>(U);
    R->Gov = HW;
    if (R->SeenValue != V || Cfg.DisableEqualityCut)
      invalidate(R);
  }
}

void *Runtime::allocate(size_t Size, Closure *Init, uint8_t NodeFlags) {
  assert(CurPhase != Phase::Meta && "allocate is a core operation");
  ExecState &E = exec();
  // Hard failure in all build types: AllocNode::Size is 32-bit, and a
  // truncated size would corrupt the deferred-free accounting.
  checkAlways(Size < UINT32_MAX,
              "traced allocation exceeds the 32-bit size limit");
  // See read(): construction defers the memo insert, not the hashing.
  const bool EagerMemo = E.IntervalEnd || Cfg.DisableConstructionFastPath;
  uint64_t Hash = allocMemoHash(Init, Size);
  if (E.IntervalEnd) {
    AllocNode *Hit;
    {
      ProfileTimer T(E.Prof, E.Prof.MemoLookupNs);
      // See read(): the stripe covers the probe only; the steal below
      // re-locks inside AllocMemo.remove (the hit is region-owned, so
      // nothing else can steal it between the two sections).
      MaybeLockGuard ML(ParArmed, AllocMemo.stripe(Hash));
      Hit = findAllocMemo(Init, Size, Hash);
    }
    if (E.Prof.Enabled)
      ++E.Prof.MemoLookups;
    if (Hit) {
      ++E.S.MemoAllocHits;
      Handle<void> BlockH = Hit->Block;
      void *Block = Mem.ptr(BlockH);
      uint8_t Flags = Hit->Flags;
      // Steal the block: consume the old node and re-trace the
      // allocation at the cursor. The initializer is not re-run — by the
      // correct-usage restrictions (Sec. 4.2) the block was only
      // side-effected by an initializer that is a function of the key.
      AllocMemo.remove(Hit);
      Om.remove(Om.nodeAt(Hit->Start));
      freeClosure(Mem.ptr(Hit->Init));
      destroyNode(Hit);
      AllocNode *A = newNode<AllocNode>();
      A->Flags = Flags;
      A->Block = BlockH;
      A->Size = static_cast<uint32_t>(Size);
      A->Init = Mem.handle(Init);
      Init->setOwnedByTrace(true);
      A->Start = Om.handleOf(stampAfterCursor(itemOf(Mem, A)));
      A->Memo.Hash = static_cast<uint32_t>(Hash);
      if (E.Prof.Enabled)
        ++E.Prof.MemoInserts;
      if (ParArmed) {
        // See read(): parked until the join for deterministic chain
        // order. Plain flag ops — nothing foreign touches alloc flags.
        A->Flags |= TraceNode::FlagMemoDeferred;
        E.PhaseAllocMemo.push_back(A);
      } else {
        AllocMemo.insert(A);
      }
      return Block;
    }
  }
  ++E.S.AllocsTraced;
  void *Block = Mem.allocate(Size);
  AllocNode *A = newNode<AllocNode>();
  A->Flags = NodeFlags;
  A->Block = Mem.handle(Block);
  A->Size = static_cast<uint32_t>(Size);
  A->Init = Mem.handle(Init);
  Init->setOwnedByTrace(true);
  A->Start = Om.handleOf(stampAfterCursor(itemOf(Mem, A)));
  if (E.Prof.Enabled)
    ++E.Prof.MemoInserts;
  A->Memo.Hash = static_cast<uint32_t>(Hash);
  if (ParArmed) {
    A->Flags |= TraceNode::FlagMemoDeferred;
    E.PhaseAllocMemo.push_back(A);
  } else if (EagerMemo) {
    AllocMemo.insert(A);
  } else {
    PendingAllocMemo.push_back(A);
  }
  // Run the initializer now; it may not read or write modifiables
  // (correct-usage restriction 2), so it cannot splice or extend traces.
  // The block address travels in the substitution register.
  Closure *Result = Init->fn()(*this, Init, toWord(Block));
  assert(!Result && "initializers must not continue a tail-call chain");
  (void)Result;
  return Block;
}

/// Initializer for dynamically keyed modifiables: the block address
/// arrives in the substitution register; the frame slots are memo-key
/// words it ignores.
static Closure *modrefInitDynamic(Runtime &, Closure *, Word Block) {
  new (fromWord<void *>(Block)) Modref();
  return nullptr;
}

Modref *Runtime::coreModrefDynamic(const Word *Keys, size_t NumKeys) {
  // Hot path of every VM-executed `modref(keys...)`: build the
  // initializer closure in place instead of staging the key words through
  // a heap-allocated frame (the arena closure is needed either way, so
  // this is the minimum — one arena block, no transient allocation).
  checkAlways(NumKeys <= UINT16_MAX,
              "closure arity exceeds the 16-bit frame limit");
  auto *Init = static_cast<Closure *>(Mem.allocate(Closure::byteSize(NumKeys)));
  Init->setHeader(&modrefInitDynamic, NumKeys);
  for (size_t I = 0; I < NumKeys; ++I)
    Init->args()[I] = Keys[I];
  void *Block = allocate(sizeof(Modref), Init, AllocNode::FlagModref);
  return static_cast<Modref *>(Block);
}

//===----------------------------------------------------------------------===//
// Change propagation
//===----------------------------------------------------------------------===//

void Runtime::invalidate(ReadNode *R) {
  if (__builtin_expect(ParArmed, 0)) {
    // Parallel phase. Callers hold the modifiable's stripe, so the mark
    // and the routing below are atomic against revocation of R. Exactly
    // one marker proceeds past the RMW.
    if (R->markDirtyAtomic())
      return;
    ExecState &E = exec();
    Handle<OmNode> EndH = R->endAcquire();
    // In-region iff RegionLo <= R.Start and R.End <= RegionHi. An open
    // read (End not yet stamped — it is mid-construction on some worker)
    // cannot be placed and is forwarded; the post-join sequential drain
    // re-examines it.
    if (E.RegionLo && EndH &&
        !OrderList::precedes(Om.nodeAt(R->Start), E.RegionLo) &&
        !OrderList::precedes(E.RegionHi, Om.nodeAt(EndH))) {
      heapPush(E, R);
      return;
    }
    Par->forward(R);
    return;
  }
  if (R->isDirty())
    return;
  R->setDirty(true);
  if (Race.Active)
    Race.onInvalidate(R);
  heapPush(Main, R);
}

void Runtime::reexecute(ReadNode *R) {
  ExecState &E = exec();
  Word V;
  {
    // The governing-value load and the seen-value update must not
    // interleave with a foreign write sweeping R's modifiable; released
    // before the trampoline (which takes stripes of its own).
    MaybeLockGuard ML(ParArmed, modrefLock(Mem.ptr(R->Ref)));
    V = valueGoverning(R);
    if (V == R->SeenValue && !Cfg.DisableEqualityCut) {
      // The modification history restored the value this read saw; its
      // trace is still consistent.
      ++E.S.ReadsSkippedClean;
      return;
    }
    R->SeenValue = V;
  }
  ++E.S.ReadsReexecuted;
  // Re-executed interval size, measured as the trace operations the
  // re-execution performs (nodes traced, revoked, or memo-spliced).
  bool ProfOn = E.Prof.Enabled;
  uint64_t Work0 = ProfOn ? traceWorkOps(E) : 0;
  if (ProfOn)
    ++E.Prof.ReexecCalls;
  {
    ProfileTimer T(E.Prof, E.Prof.ReexecNs);
    E.PendingSubst = V; // Consumed by the first trampoline dispatch below.
    E.Cursor = Om.nodeAt(R->Start);
    OmNode *End = Om.nodeAt(R->End);
    E.IntervalEnd = End;
    bool Spliced = trampoline(Mem.ptr(R->Clo));
    if (!Spliced)
      revokeInterval(E.Cursor, End);
    E.IntervalEnd = nullptr;
  }
  if (ProfOn)
    E.Prof.ReexecWork.record(traceWorkOps(E) - Work0);
}

/// Revokes every old trace node strictly between \p From and \p To.
/// Read nodes remove both their start and end timestamps; end markers
/// encountered directly belong to reads whose start lies in the interval
/// as well and are handled when the start is visited.
void Runtime::revokeInterval(OmNode *From, OmNode *To) {
  ExecState &E = exec();
  ProfileTimer T(E.Prof, E.Prof.RevokeNs);
  if (E.Prof.Enabled)
    ++E.Prof.RevokeCalls;
  OmNode *N = From->Next;
  while (N && N != To) {
    OmItem Item = N->Item;
    OmNode *Next = N->Next;
    if (isEndItem(Item)) {
      // Skipped: removed together with its read's start. A read whose
      // start precedes the interval cannot end inside it (intervals
      // nest), so the owning read is always revoked by this same walk.
      N = Next;
      continue;
    }
    TraceNode *T = itemNode(Mem, Item);
    switch (T->Kind) {
    case TraceKind::Read: {
      auto *R = static_cast<ReadNode *>(T);
      // The read's end node is ahead of us and about to be deleted; if it
      // is the immediate successor, step over it.
      if (Om.nodeAt(R->End) == Next)
        Next = Next->Next;
      revokeRead(R);
      break;
    }
    case TraceKind::Write:
      revokeWrite(static_cast<WriteNode *>(T));
      break;
    case TraceKind::Alloc:
      revokeAlloc(static_cast<AllocNode *>(T));
      break;
    }
    N = Next;
  }
}

void Runtime::revokeRead(ReadNode *R) {
  ExecState &E = exec();
  ++E.S.NodesRevoked;
  if (Race.Active)
    Race.onRevokeRead(R);
  if (R->HeapIndex >= 0)
    heapRemove(E, R);
  if (__builtin_expect(R->isMemoDeferred(), 0)) {
    // The parked insert never reached the table. Null the strand entry
    // in place — the join preserves the order of the survivors. Only
    // the owning worker can revoke a node it created this phase, so the
    // entry is always in this strand's own vector.
    R->clearMemoDeferredAtomic();
    auto &Pend = E.PhaseReadMemo;
    for (size_t I = Pend.size(); I-- > 0;)
      if (Pend[I] == R) {
        Pend[I] = nullptr;
        break;
      }
  } else {
    ReadMemo.remove(R);
  }
  {
    // Unlinking under the stripe makes R unreachable to foreign write
    // sweeps; the overflow purge inside the same section closes the
    // window where a just-forwarded R would otherwise dangle.
    MaybeLockGuard ML(ParArmed, modrefLock(Mem.ptr(R->Ref)));
    unlinkUse(R);
    if (__builtin_expect(ParArmed, 0))
      Par->revokedWhileQueued(R);
  }
  Om.remove(Om.nodeAt(R->Start));
  assert(R->End && "revoking a read whose interval is still open");
  Om.remove(Om.nodeAt(R->End));
  freeClosure(Mem.ptr(R->Clo));
  destroyNode(R);
}

void Runtime::revokeWrite(WriteNode *W) {
  ExecState &E = exec();
  ++E.S.NodesRevoked;
  Modref *M = Mem.ptr(W->Ref);
  {
    // Same critical section shape as write(): retarget-plus-invalidate
    // is atomic per modifiable during a parallel phase.
    MaybeLockGuard ML(ParArmed, modrefLock(M));
    // Readers this write governed fall back to the previous write (or the
    // initial value); invalidate those that saw something different.
    Handle<WriteNode> PrevH = writeGoverning(W);
    WriteNode *Prev = Mem.ptr(PrevH);
    Word PrevValue = Prev ? Prev->Value : M->Initial;
    for (Use *U = Mem.ptr(W->NextUse); U && U->Kind == TraceKind::Read;
         U = Mem.ptr(U->NextUse)) {
      auto *R = static_cast<ReadNode *>(U);
      // Retarget the governing-write cache to the write this one shadowed.
      R->Gov = PrevH;
      if (R->SeenValue != PrevValue || Cfg.DisableEqualityCut)
        invalidate(R);
    }
    unlinkUse(W);
  }
  Om.remove(Om.nodeAt(W->Start));
  destroyNode(W);
}

void Runtime::revokeAlloc(AllocNode *A) {
  ExecState &E = exec();
  ++E.S.NodesRevoked;
  if (__builtin_expect(A->isMemoDeferred(), 0)) {
    // See revokeRead: the parked insert is strand-local; null it there.
    A->Flags &= ~TraceNode::FlagMemoDeferred;
    auto &Pend = E.PhaseAllocMemo;
    for (size_t I = Pend.size(); I-- > 0;)
      if (Pend[I] == A) {
        Pend[I] = nullptr;
        break;
      }
  } else {
    AllocMemo.remove(A);
  }
  Om.remove(Om.nodeAt(A->Start));
  freeClosure(Mem.ptr(A->Init));
  E.DeferredFrees.push_back({Mem.ptr(A->Block), A->Size, A->isModrefBlock()});
  destroyNode(A);
}

void Runtime::flushDeferredFrees() {
  for (const DeferredFree &F : Main.DeferredFrees) {
    if (F.IsModref) {
      // The block is an array of modifiables (coreModref allocates an
      // array of one). By this point every use must have been revoked or
      // re-targeted; a live use means the core program violated the
      // correct-usage restrictions, in which case we leak rather than
      // dangle.
      auto *Arr = static_cast<Modref *>(F.Block);
      size_t Count = F.Size / sizeof(Modref);
      bool AnyLive = false;
      for (size_t I = 0; I < Count; ++I) {
        assert(!Arr[I].Head &&
               "collected modifiable still has live uses; core program "
               "violates the correct-usage restrictions");
        AnyLive |= static_cast<bool>(Arr[I].Head);
      }
      if (AnyLive)
        continue;
      for (size_t I = 0; I < Count; ++I)
        Arr[I].~Modref();
    }
    Mem.deallocate(F.Block, F.Size);
  }
  Main.DeferredFrees.clear();
}

//===----------------------------------------------------------------------===//
// Memo indexes
//===----------------------------------------------------------------------===//

uint64_t Runtime::readMemoHash(const Modref *M, const Closure *C) const {
  // identityBits covers the code pointer and the arity; the frame holds
  // only key words (the pending value has no slot), so every stored
  // argument participates.
  uint64_t H = hashMixWord(0x51ab5eed, C->identityBits());
  H = hashMixWord(H, reinterpret_cast<uintptr_t>(M));
  for (size_t I = 0, N = C->numArgs(); I < N; ++I)
    H = hashMixWord(H, C->args()[I]);
  return H;
}

uint64_t Runtime::allocMemoHash(const Closure *Init, size_t Size) const {
  uint64_t H = hashMixWord(0xa110c5eed, Init->identityBits());
  H = hashMixWord(H, Size);
  for (size_t I = 0, N = Init->numArgs(); I < N; ++I)
    H = hashMixWord(H, Init->args()[I]);
  return H;
}

/// True if an old trace node starting at \p Start may be reused: it must
/// lie strictly between the cursor and the end of the interval being
/// re-executed.
bool Runtime::inReuseWindow(const OmNode *Start) const {
  const ExecState &E = exec();
  return OrderList::precedes(E.Cursor, Start) &&
         OrderList::precedes(Start, E.IntervalEnd);
}

static bool sameTrailingArgs(const Closure *A, const Closure *B) {
  if (A->identityBits() != B->identityBits())
    return false;
  for (size_t I = 0, N = A->numArgs(); I < N; ++I)
    if (A->args()[I] != B->args()[I])
      return false;
  return true;
}

ReadNode *Runtime::findReadMemo(const Modref *M, const Closure *C,
                                uint64_t Hash) {
  const uint32_t H32 = static_cast<uint32_t>(Hash);
  ReadNode *Best = nullptr;
  for (ReadNode *N = ReadMemo.chainHead(Hash); N; N = ReadMemo.next(N)) {
    if (N->Memo.Hash != H32 || Mem.ptr(N->Ref) != M ||
        !sameTrailingArgs(Mem.ptr(N->Clo), C))
      continue;
    if (!inReuseWindow(Om.nodeAt(N->Start)))
      continue;
    if (!Best ||
        OrderList::precedes(Om.nodeAt(N->Start), Om.nodeAt(Best->Start)))
      Best = N;
  }
  return Best;
}

AllocNode *Runtime::findAllocMemo(const Closure *Init, size_t Size,
                                  uint64_t Hash) {
  const uint32_t H32 = static_cast<uint32_t>(Hash);
  AllocNode *Best = nullptr;
  for (AllocNode *N = AllocMemo.chainHead(Hash); N; N = AllocMemo.next(N)) {
    if (N->Memo.Hash != H32 || N->Size != Size ||
        !sameTrailingArgs(Mem.ptr(N->Init), Init))
      continue;
    if (!inReuseWindow(Om.nodeAt(N->Start)))
      continue;
    if (!Best ||
        OrderList::precedes(Om.nodeAt(N->Start), Om.nodeAt(Best->Start)))
      Best = N;
  }
  return Best;
}

//===----------------------------------------------------------------------===//
// Propagation queue: intrusive binary heap ordered by start timestamp
//===----------------------------------------------------------------------===//

bool Runtime::heapLess(const ReadNode *A, const ReadNode *B) const {
  return OrderList::precedes(Om.nodeAt(A->Start), Om.nodeAt(B->Start));
}

void Runtime::heapPush(ExecState &E, ReadNode *R) {
  assert(R->HeapIndex < 0 && "node already queued");
  R->HeapIndex = static_cast<int32_t>(E.Heap.size());
  E.Heap.push_back(R);
  heapSiftUp(E, E.Heap.size() - 1);
}

ReadNode *Runtime::heapPopMin(ExecState &E) {
  if (E.Heap.empty())
    return nullptr;
  ReadNode *Min = E.Heap.front();
  Min->HeapIndex = -1;
  ReadNode *Last = E.Heap.back();
  E.Heap.pop_back();
  if (!E.Heap.empty()) {
    E.Heap[0] = Last;
    Last->HeapIndex = 0;
    heapSiftDown(E, 0);
  }
  return Min;
}

void Runtime::heapRemove(ExecState &E, ReadNode *R) {
  size_t Index = static_cast<size_t>(R->HeapIndex);
  assert(Index < E.Heap.size() && E.Heap[Index] == R && "heap index corrupt");
  R->HeapIndex = -1;
  ReadNode *Last = E.Heap.back();
  E.Heap.pop_back();
  if (Last == R)
    return;
  E.Heap[Index] = Last;
  Last->HeapIndex = static_cast<int32_t>(Index);
  heapSiftDown(E, Index);
  heapSiftUp(E, static_cast<size_t>(Last->HeapIndex));
}

void Runtime::heapSiftUp(ExecState &E, size_t Index) {
  while (Index > 0) {
    size_t Parent = (Index - 1) / 2;
    if (!heapLess(E.Heap[Index], E.Heap[Parent]))
      break;
    std::swap(E.Heap[Index], E.Heap[Parent]);
    E.Heap[Index]->HeapIndex = static_cast<int32_t>(Index);
    E.Heap[Parent]->HeapIndex = static_cast<int32_t>(Parent);
    Index = Parent;
  }
}

void Runtime::heapSiftDown(ExecState &E, size_t Index) {
  for (;;) {
    size_t Left = Index * 2 + 1;
    if (Left >= E.Heap.size())
      return;
    size_t Small = Left;
    size_t Right = Left + 1;
    if (Right < E.Heap.size() && heapLess(E.Heap[Right], E.Heap[Left]))
      Small = Right;
    if (!heapLess(E.Heap[Small], E.Heap[Index]))
      return;
    std::swap(E.Heap[Index], E.Heap[Small]);
    E.Heap[Index]->HeapIndex = static_cast<int32_t>(Index);
    E.Heap[Small]->HeapIndex = static_cast<int32_t>(Small);
    Index = Small;
  }
}

//===----------------------------------------------------------------------===//
// Simulated tracing GC (SaSML-style configuration only)
//===----------------------------------------------------------------------===//

void Runtime::maybeSimulateGc() {
  if (Cfg.HeapLimitBytes == 0)
    return;
  size_t Live = Mem.liveBytes();
  if (Live >= Cfg.HeapLimitBytes) {
    Oom = true;
    return;
  }
  // A collection runs whenever allocation has consumed the free space —
  // which shrinks as the live trace approaches the limit, so collections
  // grow more frequent super-linearly under memory pressure.
  size_t Headroom = std::max<size_t>(Cfg.HeapLimitBytes - Live, 1 << 14);
  size_t Total = Mem.totalAllocatedBytes();
  // Defensive re-anchor: if the mark is ahead of the cumulative counter
  // (an arena stats reset without a matching mark reset), the subtraction
  // below would wrap and force a collection on every allocation.
  if (Total < GcAllocMark)
    GcAllocMark = Total;
  if (Total - GcAllocMark < Headroom)
    return;
  // "Collect": a tracing collector's cost is proportional to the live
  // data; walk every live timestamp and touch the trace object it marks
  // (the pointer chase is what makes real collections expensive).
  ++Main.S.GcScans;
  uint64_t Sink = 0;
  for (const OmNode *N = Om.base(); N; N = N->Next) {
    Sink += N->Label;
    if (N->Item && !isEndItem(N->Item))
      Sink += itemNode(Mem, N->Item)->Flags;
  }
  asm volatile("" : : "r"(Sink) : "memory");
  GcAllocMark = Mem.totalAllocatedBytes();
}
